// Package ftsched is a fault-tolerant scheduler for precedence task graphs
// on heterogeneous platforms, reproducing Benoit, Hakem and Robert, "Fault
// Tolerant Scheduling of Precedence Task Graphs on Heterogeneous Platforms"
// (INRIA RR-6418 / IPDPS 2008).
//
// The package maps a weighted DAG of tasks onto m fully connected
// heterogeneous processors so that the application still completes if up to
// ε processors fail-stop, using active replication: every task runs on ε+1
// distinct processors. Schedulers live in a pluggable registry (Schedulers
// lists the names, ScheduleByName dispatches) and share one pooled placement
// kernel; the built-ins are:
//
//   - FTSA — the paper's main algorithm: greedy list scheduling by task
//     criticalness with earliest-finish-time processor selection;
//   - MCFTSA — the Minimum Communications variant, cutting the message count
//     per precedence edge from (ε+1)² to ε+1 with a robust bipartite
//     matching;
//   - FTSAIns ("ftsa-ins") — FTSA's selection with HEFT-style
//     insertion-based placement;
//   - FTBAR — the re-implemented comparison baseline of Girault et al.;
//   - HEFT ("heft", registry-only) — the non-fault-tolerant literature
//     reference.
//
// Every schedule carries a lower bound (latency with no failure) and an
// upper bound (latency guaranteed under any ε failures). The sim
// subpackage replays schedules under failure scenarios; the reliability
// subpackage quantifies survival probabilities under exponential failure
// laws; the workload subpackage generates the paper's random task graphs and
// the classic structured families.
//
// Quick start:
//
//	rng := rand.New(rand.NewSource(1))
//	inst, _ := ftsched.NewInstance(rng, ftsched.DefaultPaperConfig(1.0))
//	s, _ := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 2})
//	fmt.Println(s.LowerBound(), s.UpperBound())
package ftsched

import (
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/exec"
	"ftsched/internal/ftbar"
	"ftsched/internal/platform"
	"ftsched/internal/reliability"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// Task-graph model (see internal/dag).
type (
	// Graph is a weighted directed acyclic task graph.
	Graph = dag.Graph
	// TaskID identifies a task of a Graph.
	TaskID = dag.TaskID
	// Edge is one precedence edge with its data volume.
	Edge = dag.Edge
)

// Platform model (see internal/platform).
type (
	// Platform is a fully connected heterogeneous processor set with a
	// unit-data delay matrix.
	Platform = platform.Platform
	// ProcID identifies a processor.
	ProcID = platform.ProcID
	// CostModel is the task × processor execution-time matrix E(t,Pk).
	CostModel = platform.CostModel
)

// Schedules (see internal/sched).
type (
	// Schedule is a complete fault-tolerant mapping with latency bounds.
	Schedule = sched.Schedule
	// Replica is one of the ε+1 copies of a task.
	Replica = sched.Replica
)

// Scheduler options (see internal/core and internal/ftbar).
type (
	// Options configures FTSA (ε, tie-breaking RNG, optional deadlines).
	Options = core.Options
	// MCFTSAOptions adds the matching policy for MCFTSA.
	MCFTSAOptions = core.MCFTSAOptions
	// FTBAROptions configures the FTBAR baseline.
	FTBAROptions = ftbar.Options
	// MatchPolicy selects greedy or bottleneck-optimal matching in MCFTSA.
	MatchPolicy = core.MatchPolicy
)

// Matching policies for MCFTSA.
const (
	MatchGreedy     = core.MatchGreedy
	MatchBottleneck = core.MatchBottleneck
)

// Workload generation (see internal/workload).
type (
	// Instance bundles a graph, a platform and a cost model.
	Instance = workload.Instance
	// PaperConfig holds the generation parameters of the paper's Section 6.
	PaperConfig = workload.PaperConfig
	// RandomDAGConfig parameterizes the layered random DAG generator.
	RandomDAGConfig = workload.RandomDAGConfig
)

// Simulation (see internal/sim).
type (
	// Scenario assigns a crash time to every processor.
	Scenario = sim.Scenario
	// SimResult reports one simulated execution.
	SimResult = sim.Result
	// CommModel computes message delivery times.
	CommModel = sim.CommModel
	// ScenarioGenerator draws one failure scenario per evaluation trial.
	ScenarioGenerator = sim.ScenarioGenerator
	// ScenarioSpec is the serializable description of a scenario generator.
	ScenarioSpec = sim.ScenarioSpec
	// EvalOptions tunes a batch fault-injection evaluation.
	EvalOptions = sim.EvalOptions
	// EvalResult aggregates a batch fault-injection evaluation.
	EvalResult = sim.EvalResult
)

// Reliability (see internal/reliability).
type (
	// Exponential models i.i.d. exponential processor lifetimes.
	Exponential = reliability.Exponential
	// Weibull models i.i.d. Weibull processor lifetimes (aging hardware).
	Weibull = reliability.Weibull
	// MonteCarloResult summarizes a sampled reliability estimate.
	MonteCarloResult = reliability.MonteCarloResult
)

// Scheduler registry (see internal/sched). Every scheduling algorithm is
// also reachable by name — the same dispatch the ftserved HTTP API, the
// campaign engine and the CLIs use — so callers can select schedulers from
// configuration without a switch of their own.
type (
	// RunOptions is the scheduler-independent option set of Schedule.
	RunOptions = sched.RunOptions
	// SchedulerInfo describes one registry entry (name, aliases, policies,
	// capability flags).
	SchedulerInfo = sched.Registration
)

// ScheduleByName resolves a scheduler by registry name or alias (matched
// case-insensitively: "ftsa", "mcftsa", "ftsa-ins", "ftbar", "heft", ...),
// validates opt against its registered capabilities and runs it.
func ScheduleByName(scheduler string, g *Graph, p *Platform, cm *CostModel, opt RunOptions) (*Schedule, error) {
	return sched.Run(scheduler, g, p, cm, opt)
}

// Schedulers returns the canonical names of every registered scheduler.
func Schedulers() []string { return sched.Names() }

// LookupScheduler returns the registry entry for a scheduler name or alias.
func LookupScheduler(name string) (SchedulerInfo, bool) { return sched.LookupInfo(name) }

// FTSA runs the paper's Fault Tolerant Scheduling Algorithm (Algorithm 4.1).
func FTSA(g *Graph, p *Platform, cm *CostModel, opt Options) (*Schedule, error) {
	return core.FTSA(g, p, cm, opt)
}

// FTSAIns runs the FTSA variant with HEFT-style insertion-based placement
// (registry name "ftsa-ins").
func FTSAIns(g *Graph, p *Platform, cm *CostModel, opt Options) (*Schedule, error) {
	return core.FTSAIns(g, p, cm, opt)
}

// MCFTSA runs the Minimum Communications variant (Section 4.2).
func MCFTSA(g *Graph, p *Platform, cm *CostModel, opt MCFTSAOptions) (*Schedule, error) {
	return core.MCFTSA(g, p, cm, opt)
}

// FTBAR runs the re-implemented baseline of Girault et al. (Section 5).
func FTBAR(g *Graph, p *Platform, cm *CostModel, opt FTBAROptions) (*Schedule, error) {
	return ftbar.Schedule(g, p, cm, opt)
}

// MaxToleratedFailures finds, by binary search, the largest ε whose
// guaranteed latency fits the budget (Section 4.3). The scheduler argument
// is typically FTSAScheduler or MCFTSAScheduler.
func MaxToleratedFailures(maxProcs int, latency float64, s core.Scheduler) (int, *Schedule, error) {
	return core.MaxToleratedFailures(maxProcs, latency, s)
}

// FTSAScheduler adapts FTSA for MaxToleratedFailures.
func FTSAScheduler(g *Graph, p *Platform, cm *CostModel, opt Options) core.Scheduler {
	return core.FTSAScheduler(g, p, cm, opt)
}

// MCFTSAScheduler adapts MCFTSA for MaxToleratedFailures.
func MCFTSAScheduler(g *Graph, p *Platform, cm *CostModel, opt MCFTSAOptions) core.Scheduler {
	return core.MCFTSAScheduler(g, p, cm, opt)
}

// ScheduleWithDeadlines schedules under both a latency budget and ε,
// aborting early when the combination is infeasible (Section 4.3).
func ScheduleWithDeadlines(g *Graph, p *Platform, cm *CostModel, opt Options, latency float64) (*Schedule, error) {
	return core.ScheduleWithDeadlines(g, p, cm, opt, latency)
}

// NewInstance draws one full scheduling problem per the paper's generation
// parameters.
func NewInstance(rng *rand.Rand, cfg PaperConfig) (*Instance, error) {
	return workload.NewInstance(rng, cfg)
}

// NewInstanceForGraph builds platform and costs for an existing graph.
func NewInstanceForGraph(rng *rand.Rand, g *Graph, cfg PaperConfig) (*Instance, error) {
	return workload.NewInstanceForGraph(rng, g, cfg)
}

// DefaultPaperConfig returns the Figures 1-3 generation parameters with the
// given target granularity.
func DefaultPaperConfig(granularity float64) PaperConfig {
	return workload.DefaultPaperConfig(granularity)
}

// Simulate replays a schedule under a failure scenario with the paper's
// contention-free communication model.
func Simulate(s *Schedule, sc Scenario) (*SimResult, error) {
	return sim.Run(s, sc, nil)
}

// SimulateWithModel replays a schedule under a failure scenario with a
// custom communication model (one-port, bounded multi-port).
func SimulateWithModel(s *Schedule, sc Scenario, model CommModel) (*SimResult, error) {
	return sim.Run(s, sc, model)
}

// NoFailures returns the all-alive scenario for m processors.
func NoFailures(m int) Scenario { return sim.NoFailures(m) }

// CrashAtZero crashes the listed processors before they do any work.
func CrashAtZero(m int, procs ...ProcID) (Scenario, error) {
	return sim.CrashAtZero(m, procs...)
}

// UniformCrashes crashes n uniformly drawn processors at time zero.
func UniformCrashes(rng *rand.Rand, m, n int) (Scenario, error) {
	return sim.UniformCrashes(rng, m, n)
}

// SurvivalLowerBound bounds the probability a schedule tolerating epsilon
// failures survives the mission (at most ε of m processors fail).
func SurvivalLowerBound(e Exponential, m, epsilon int, mission float64) (float64, error) {
	return reliability.SurvivalLowerBound(e, m, epsilon, mission)
}

// MonteCarloReliability estimates the survival probability by sampling crash
// scenarios and replaying the schedule. It is deterministic in the seed:
// equal seeds agree trial-for-trial with Evaluate under e.Generator().
func MonteCarloReliability(seed int64, s *Schedule, e Exponential, trials int) (*MonteCarloResult, error) {
	return reliability.MonteCarlo(seed, s, e, trials)
}

// Evaluate replays the schedule under trials failure scenarios drawn from
// gen — the batch fault-injection engine behind ftserved's /evaluate
// endpoint. The result is deterministic in opt.Seed at any worker count.
func Evaluate(s *Schedule, gen ScenarioGenerator, trials int, opt EvalOptions) (*EvalResult, error) {
	return sim.Evaluate(s, gen, trials, opt)
}

// ParseScenarioSpec reads the colon-separated flag form of a scenario spec,
// e.g. "uniform:2", "exp:0.001" or "weibull:1.5:2000".
func ParseScenarioSpec(s string) (ScenarioSpec, error) { return sim.ParseScenarioSpec(s) }

// Granularity computes g(G,P), the paper's computation/communication ratio.
func Granularity(g *Graph, cm *CostModel, p *Platform) (float64, error) {
	return platform.Granularity(g, cm, p)
}

// Concurrent execution (see internal/exec): run a schedule with real
// goroutine workers and channel links.
type (
	// TaskFunc is the user function executed by every replica of a task.
	TaskFunc = exec.Task
	// TaskPayload is the opaque data tasks exchange.
	TaskPayload = exec.Payload
	// ExecConfig tunes an execution (deterministic crash injection).
	ExecConfig = exec.Config
	// ExecReport summarizes a concurrent execution.
	ExecReport = exec.Report
)

// Execute runs the schedule with one goroutine per processor, applying the
// paper's active-replication protocol (first input wins) to the user's task
// functions. Up to ε processor crashes (ExecConfig.CrashAfter) are
// tolerated by construction.
func Execute(s *Schedule, fns []TaskFunc, cfg ExecConfig) (*ExecReport, error) {
	return exec.Run(s, fns, cfg)
}
