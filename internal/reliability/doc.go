// Package reliability implements the failure-probability extension sketched
// in the paper's conclusion ("we want to study a more complex failure model,
// in which we would also account for the failure probability of the
// application"): processors fail independently following exponential laws,
// and we quantify the probability that a fault-tolerant schedule delivers a
// result.
//
// Two estimators are provided:
//
//   - an exact combinatorial bound: a schedule tolerating ε crash-at-start
//     failures survives every scenario with at most ε failed processors, so
//     P(survival) >= P(at most ε of m processors fail during the mission);
//   - a Monte-Carlo estimator that samples crash times and replays the
//     schedule through the simulator, capturing mid-execution crashes and
//     the exact communication pattern.
//
// The combinatorial bound is what the serving layer reports per /schedule
// request (cheap, deterministic, cacheable). The Monte-Carlo estimator is a
// seed-deterministic view over the batch evaluation engine: each law
// (Exponential, Weibull) bridges to a sim.ScenarioGenerator via Generator(),
// and MonteCarlo delegates to sim.Evaluate, so MonteCarlo(seed, ...) agrees
// trial for trial with Evaluate at the same seed — one sampling loop for the
// whole system (see examples/reliability and the /evaluate endpoint).
package reliability
