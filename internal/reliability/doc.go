// Package reliability implements the failure-probability extension sketched
// in the paper's conclusion ("we want to study a more complex failure model,
// in which we would also account for the failure probability of the
// application"): processors fail independently following exponential laws,
// and we quantify the probability that a fault-tolerant schedule delivers a
// result.
//
// Two estimators are provided:
//
//   - an exact combinatorial bound: a schedule tolerating ε crash-at-start
//     failures survives every scenario with at most ε failed processors, so
//     P(survival) >= P(at most ε of m processors fail during the mission);
//   - a Monte-Carlo estimator that samples crash times and replays the
//     schedule through the simulator, capturing mid-execution crashes and
//     the exact communication pattern.
//
// The combinatorial bound is what the serving layer reports per request
// (cheap, deterministic, cacheable); the Monte-Carlo estimator is the
// offline validation tool (see examples/reliability).
package reliability
