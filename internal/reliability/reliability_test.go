package reliability

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

func TestSurvivalLowerBoundBasics(t *testing.T) {
	e := Exponential{Lambda: 0.01}
	// Zero mission time: nothing fails.
	p, err := SurvivalLowerBound(e, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("mission 0: survival %g, want 1", p)
	}
	// ε = m: every scenario tolerated.
	p, err = SurvivalLowerBound(e, 5, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("ε=m: survival %g, want 1", p)
	}
	// Monotone in ε.
	prev := -1.0
	for eps := 0; eps <= 10; eps++ {
		p, err := SurvivalLowerBound(e, 10, eps, 50)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("survival not monotone in ε: %g after %g", p, prev)
		}
		prev = p
	}
	// Monotone decreasing in mission time.
	prevT := 2.0
	for _, mission := range []float64{0, 10, 100, 1000} {
		p, err := SurvivalLowerBound(e, 10, 2, mission)
		if err != nil {
			t.Fatal(err)
		}
		if p > prevT {
			t.Errorf("survival not decreasing in mission time: %g then %g", prevT, p)
		}
		prevT = p
	}
}

func TestSurvivalLowerBoundMatchesHandComputation(t *testing.T) {
	// m=2, ε=1, p = 1−exp(−λT): survival = 1 − p².
	e := Exponential{Lambda: 0.1}
	mission := 5.0
	pFail := 1 - math.Exp(-e.Lambda*mission)
	want := 1 - pFail*pFail
	got, err := SurvivalLowerBound(e, 2, 1, mission)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("survival = %g, want %g", got, want)
	}
}

func TestSurvivalLowerBoundErrors(t *testing.T) {
	if _, err := SurvivalLowerBound(Exponential{Lambda: 0}, 5, 1, 10); err == nil {
		t.Error("want error for λ=0")
	}
	if _, err := SurvivalLowerBound(Exponential{Lambda: 1}, 0, 1, 10); err == nil {
		t.Error("want error for m=0")
	}
}

func TestMonteCarloAgreesWithBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 2
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Failure rate chosen so failures during the mission are common enough
	// to exercise both outcomes.
	e := Exponential{Lambda: 0.5 / s.UpperBound()}
	mc, err := MonteCarlo(17, s, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	lower, err := SurvivalLowerBound(e, 8, eps, s.UpperBound())
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo success can only exceed the combinatorial lower bound
	// (mid-run crashes after useful work still succeed); allow sampling
	// noise of a few percent.
	if mc.Success < lower-0.06 {
		t.Errorf("Monte-Carlo success %g below lower bound %g", mc.Success, lower)
	}
	if mc.Success > 0 && mc.MeanLatency <= 0 {
		t.Errorf("successful runs must report positive latency, got %g", mc.MeanLatency)
	}
}

func TestMonteCarlohigherEpsilonMoreReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 10
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := Exponential{Lambda: 1.0 / s3.UpperBound()}
	mc0, err := MonteCarlo(7, s0, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	mc3, err := MonteCarlo(7, s3, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mc3.Success <= mc0.Success {
		t.Errorf("ε=3 success %g should beat ε=0 success %g", mc3.Success, mc0.Success)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	if _, err := MonteCarlo(1, nil, Exponential{Lambda: 0}, 10); err == nil {
		t.Error("want error for λ=0")
	}
}

// The refactor's contract: MonteCarlo is sim.Evaluate under the law's
// generator, so at equal seeds the two agree trial for trial — not just in
// expectation.
func TestMonteCarloAgreesWithEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := Exponential{Lambda: 1.0 / s.UpperBound()}
	const seed, trials = 23, 300
	mc, err := MonteCarlo(seed, s, e, trials)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sim.Evaluate(s, e.Generator(), trials, sim.EvalOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Success != ev.SuccessRate || mc.MeanLatency != ev.Latency.Mean || mc.Trials != ev.Trials {
		t.Fatalf("MonteCarlo %+v disagrees with Evaluate (rate %g, mean %g, trials %d)",
			mc, ev.SuccessRate, ev.Latency.Mean, ev.Trials)
	}
	// Both should exercise successes and failures at this rate.
	if ev.Successes == 0 || ev.Successes == trials {
		t.Fatalf("degenerate sample: %d/%d successes", ev.Successes, trials)
	}
}

func TestWeibullLaw(t *testing.T) {
	w := Weibull{Shape: 2, Scale: 100}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Weibull{Shape: 0, Scale: 1}).Validate(); err == nil {
		t.Error("want error for shape 0")
	}
	// Survival decreases in t and matches exp(-(t/λ)^k).
	if got, want := w.ProcAlive(100), math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("ProcAlive(scale) = %g, want %g", got, want)
	}
	if w.ProcAlive(10) <= w.ProcAlive(200) {
		t.Error("survival not decreasing")
	}
	// Shape 1 degenerates to exponential: equal seeds, equal draws.
	a, b := rand.New(rand.NewSource(2)), rand.New(rand.NewSource(2))
	wd := Weibull{Shape: 1, Scale: 40}.Sample(a)
	ed := Exponential{Lambda: 1.0 / 40}.Sample(b)
	if math.Abs(wd-ed) > 1e-9*ed {
		t.Errorf("Weibull(1,40) drew %g, Exponential(1/40) drew %g", wd, ed)
	}
	// The law's sampler and its sim generator agree draw for draw.
	a, b = rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	sc := sim.NewScenario(4)
	if err := w.Generator().FillScenario(b, &sc, &sim.ScenarioScratch{}); err != nil {
		t.Fatal(err)
	}
	for p := range sc.CrashTime {
		if got, want := sc.CrashTime[p], w.Sample(a); got != want {
			t.Fatalf("processor %d: generator drew %g, law drew %g", p, got, want)
		}
	}
}
