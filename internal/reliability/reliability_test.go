package reliability

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

func TestSurvivalLowerBoundBasics(t *testing.T) {
	e := Exponential{Lambda: 0.01}
	// Zero mission time: nothing fails.
	p, err := SurvivalLowerBound(e, 10, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("mission 0: survival %g, want 1", p)
	}
	// ε = m: every scenario tolerated.
	p, err = SurvivalLowerBound(e, 5, 5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-1) > 1e-12 {
		t.Errorf("ε=m: survival %g, want 1", p)
	}
	// Monotone in ε.
	prev := -1.0
	for eps := 0; eps <= 10; eps++ {
		p, err := SurvivalLowerBound(e, 10, eps, 50)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev {
			t.Errorf("survival not monotone in ε: %g after %g", p, prev)
		}
		prev = p
	}
	// Monotone decreasing in mission time.
	prevT := 2.0
	for _, mission := range []float64{0, 10, 100, 1000} {
		p, err := SurvivalLowerBound(e, 10, 2, mission)
		if err != nil {
			t.Fatal(err)
		}
		if p > prevT {
			t.Errorf("survival not decreasing in mission time: %g then %g", prevT, p)
		}
		prevT = p
	}
}

func TestSurvivalLowerBoundMatchesHandComputation(t *testing.T) {
	// m=2, ε=1, p = 1−exp(−λT): survival = 1 − p².
	e := Exponential{Lambda: 0.1}
	mission := 5.0
	pFail := 1 - math.Exp(-e.Lambda*mission)
	want := 1 - pFail*pFail
	got, err := SurvivalLowerBound(e, 2, 1, mission)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("survival = %g, want %g", got, want)
	}
}

func TestSurvivalLowerBoundErrors(t *testing.T) {
	if _, err := SurvivalLowerBound(Exponential{Lambda: 0}, 5, 1, 10); err == nil {
		t.Error("want error for λ=0")
	}
	if _, err := SurvivalLowerBound(Exponential{Lambda: 1}, 0, 1, 10); err == nil {
		t.Error("want error for m=0")
	}
}

func TestMonteCarloAgreesWithBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 2
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Failure rate chosen so failures during the mission are common enough
	// to exercise both outcomes.
	e := Exponential{Lambda: 0.5 / s.UpperBound()}
	mc, err := MonteCarlo(rng, s, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	lower, err := SurvivalLowerBound(e, 8, eps, s.UpperBound())
	if err != nil {
		t.Fatal(err)
	}
	// Monte-Carlo success can only exceed the combinatorial lower bound
	// (mid-run crashes after useful work still succeed); allow sampling
	// noise of a few percent.
	if mc.Success < lower-0.06 {
		t.Errorf("Monte-Carlo success %g below lower bound %g", mc.Success, lower)
	}
	if mc.Success > 0 && mc.MeanLatency <= 0 {
		t.Errorf("successful runs must report positive latency, got %g", mc.MeanLatency)
	}
}

func TestMonteCarlohigherEpsilonMoreReliable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 10
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	s3, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := Exponential{Lambda: 1.0 / s3.UpperBound()}
	mc0, err := MonteCarlo(rand.New(rand.NewSource(7)), s0, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	mc3, err := MonteCarlo(rand.New(rand.NewSource(7)), s3, e, 400)
	if err != nil {
		t.Fatal(err)
	}
	if mc3.Success <= mc0.Success {
		t.Errorf("ε=3 success %g should beat ε=0 success %g", mc3.Success, mc0.Success)
	}
}

func TestMonteCarloErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(rng, nil, Exponential{Lambda: 0}, 10); err == nil {
		t.Error("want error for λ=0")
	}
}
