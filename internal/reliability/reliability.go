package reliability

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"ftsched/internal/sched"
	"ftsched/internal/sim"
)

// Exponential describes i.i.d. exponential processor lifetimes with the
// given failure rate λ (failures per unit time).
type Exponential struct {
	Lambda float64
}

// ErrBadRate reports a non-positive failure rate.
var ErrBadRate = errors.New("reliability: failure rate must be positive")

// ProcAlive returns the probability a processor survives past time t.
func (e Exponential) ProcAlive(t float64) float64 {
	return math.Exp(-e.Lambda * t)
}

// Sample draws one crash time.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Lambda
}

// Generator bridges the law to the simulator's batch evaluation engine:
// sim.Evaluate with this generator draws exactly the scenarios MonteCarlo
// scores.
func (e Exponential) Generator() sim.ScenarioGenerator {
	return sim.ExponentialGen{Lambda: e.Lambda}
}

// Weibull describes i.i.d. Weibull processor lifetimes — the hardware-aging
// law the exponential model cannot express: Shape < 1 captures infant
// mortality (failure rate decreasing in time), Shape > 1 wear-out, and
// Shape = 1 degenerates to Exponential with rate 1/Scale.
type Weibull struct {
	// Shape is the Weibull k parameter; Scale the characteristic life λ
	// (the time by which ~63.2% of processors have failed).
	Shape, Scale float64
}

// Validate checks the law's parameters.
func (w Weibull) Validate() error {
	if w.Shape <= 0 || w.Scale <= 0 {
		return fmt.Errorf("reliability: Weibull shape and scale must be positive, got k=%g λ=%g", w.Shape, w.Scale)
	}
	return nil
}

// ProcAlive returns the probability a processor survives past time t:
// exp(−(t/λ)^k).
func (w Weibull) ProcAlive(t float64) float64 {
	return math.Exp(-math.Pow(t/w.Scale, w.Shape))
}

// Sample draws one crash time by inverse transform: λ·E^(1/k) with E
// standard exponential — the same draw sim.WeibullGen makes, so a seeded
// stream here reproduces the generator's scenarios.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	return w.Scale * math.Pow(rng.ExpFloat64(), 1/w.Shape)
}

// Generator bridges the law to the simulator's batch evaluation engine.
func (w Weibull) Generator() sim.ScenarioGenerator {
	return sim.WeibullGen{Shape: w.Shape, Scale: w.Scale}
}

// SurvivalLowerBound returns the probability that at most epsilon of m
// processors fail within the mission time — a lower bound on the schedule's
// success probability, by Theorem 4.1. It sums the binomial tail
// Σ_{k=0..ε} C(m,k) p^k (1−p)^(m−k) with p = 1 − exp(−λ·mission).
func SurvivalLowerBound(e Exponential, m, epsilon int, mission float64) (float64, error) {
	if e.Lambda <= 0 {
		return 0, ErrBadRate
	}
	if m <= 0 || epsilon < 0 || mission < 0 {
		return 0, fmt.Errorf("reliability: invalid parameters m=%d ε=%d mission=%g", m, epsilon, mission)
	}
	p := 1 - math.Exp(-e.Lambda*mission)
	total := 0.0
	for k := 0; k <= epsilon && k <= m; k++ {
		total += binomPMF(m, k, p)
	}
	if total > 1 {
		total = 1
	}
	return total, nil
}

// binomPMF computes C(n,k) p^k (1-p)^(n-k) in log space for stability.
func binomPMF(n, k int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// MonteCarloResult summarizes a sampled reliability estimate.
type MonteCarloResult struct {
	// Success is the fraction of sampled failure scenarios in which the
	// schedule delivered a result.
	Success float64
	// MeanLatency averages the achieved latency over successful runs.
	MeanLatency float64
	// Trials is the sample count.
	Trials int
}

// MonteCarlo estimates the schedule's success probability by sampling crash
// times for every processor from the exponential law and replaying the
// schedule through the simulator. Unlike SurvivalLowerBound it credits runs
// where more than ε processors fail but only after their work is done, and
// debits nothing (crash-at-work is simulated exactly).
//
// It is a thin view over sim.Evaluate with the law's generator and
// deterministic per-trial seeding: MonteCarlo(seed, ...) and
// sim.Evaluate(..., EvalOptions{Seed: seed}) with e.Generator() see the same
// crash draws trial for trial, so the two reports always agree.
func MonteCarlo(seed int64, s *sched.Schedule, e Exponential, trials int) (*MonteCarloResult, error) {
	if e.Lambda <= 0 {
		return nil, ErrBadRate
	}
	res, err := sim.Evaluate(s, e.Generator(), trials, sim.EvalOptions{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("reliability: %w", err)
	}
	return &MonteCarloResult{
		Success:     res.SuccessRate,
		MeanLatency: res.Latency.Mean,
		Trials:      res.Trials,
	}, nil
}
