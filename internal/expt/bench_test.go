package expt

import (
	"fmt"
	"testing"
)

// benchCampaign is sized so one full run takes a fraction of a second:
// enough cells (64) to keep every worker busy, small enough to iterate.
func benchCampaign() Campaign {
	return Campaign{
		Name:          "bench",
		Schedulers:    []SchedulerID{SchedFTSA, SchedMCFTSA},
		Epsilons:      []int{2},
		Granularities: []float64{0.5, 1.0},
		Families:      []string{"random"},
		Instances:     16,
		Procs:         10,
		TasksMin:      60,
		TasksMax:      80,
		Seed:          1,
	}
}

// BenchmarkCampaign measures the engine's wall-clock scaling with worker
// count; compare ns/op across the workers sub-benchmarks. With 4 workers on
// a ≥4-core host it runs at least 2× faster than the serial configuration;
// on a single-CPU host the numbers stay flat (and, usefully, show that the
// pool adds no overhead when there is nothing to parallelize over).
func BenchmarkCampaign(b *testing.B) {
	c := benchCampaign()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			// The pool spawns `workers` goroutines regardless of host cores,
			// so allocs/op is host-independent — the CI bench gate relies on
			// that (ns/op is informational only).
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunCampaign(c, EngineOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunCell measures one cell end to end — instance generation, the
// cell's scheduler, the fault-free baseline and the crash replay — and
// reports allocations, tracking the scratch-buffer reuse in internal/core.
func BenchmarkRunCell(b *testing.B) {
	c := benchCampaign()
	cell := c.Cells()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunCell(cell); err != nil {
			b.Fatal(err)
		}
	}
}
