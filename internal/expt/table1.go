package expt

import (
	"fmt"
	"math/rand"
	"time"

	"ftsched/internal/core"
	"ftsched/internal/ftbar"
	"ftsched/internal/workload"
)

// Table1Config parameterizes the running-time comparison of Table 1: 50
// processors, ε = 5, task counts from 100 to 5000.
type Table1Config struct {
	TaskCounts []int
	Procs      int
	Epsilon    int
	Seed       int64
}

// DefaultTable1Config returns the paper's Table 1 setup.
func DefaultTable1Config() Table1Config {
	return Table1Config{
		TaskCounts: []int{100, 500, 1000, 2000, 3000, 5000},
		Procs:      50,
		Epsilon:    5,
		Seed:       1,
	}
}

// Table1Row is one line of the table: wall-clock seconds per algorithm.
type Table1Row struct {
	Tasks   int
	FTSA    float64
	MCFTSA  float64
	FTBAR   float64
	RatioBF float64 // FTBAR / FTSA, the headline scaling gap
}

// RunTable1 generates one instance per task count and times the three
// schedulers on it. Absolute values depend on the host (the paper used a C
// program on a 1.66 GHz Core 2 Duo); the reproduced claim is the scaling
// shape — FTBAR's running time growing orders of magnitude faster than
// FTSA's and MC-FTSA's.
func RunTable1(cfg Table1Config) ([]Table1Row, error) {
	if cfg.Procs < cfg.Epsilon+1 {
		return nil, fmt.Errorf("expt: ε=%d needs more than %d processors", cfg.Epsilon, cfg.Procs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]Table1Row, 0, len(cfg.TaskCounts))
	for _, v := range cfg.TaskCounts {
		wcfg := workload.PaperConfig{
			DAG: workload.RandomDAGConfig{
				MinTasks: v, MaxTasks: v,
				MinVolume: 50, MaxVolume: 150,
				ShapeFactor: 1.0, EdgeDensity: 0.25,
			},
			Procs:    cfg.Procs,
			MinDelay: 0.5, MaxDelay: 1.0,
			MinCost: 10, MaxCost: 100,
			Granularity: 1.0,
		}
		inst, err := workload.NewInstance(rng, wcfg)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Tasks: v}

		start := time.Now()
		if _, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: cfg.Epsilon}); err != nil {
			return nil, err
		}
		row.FTSA = time.Since(start).Seconds()

		start = time.Now()
		if _, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
			core.MCFTSAOptions{Options: core.Options{Epsilon: cfg.Epsilon}}); err != nil {
			return nil, err
		}
		row.MCFTSA = time.Since(start).Seconds()

		start = time.Now()
		if _, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: cfg.Epsilon}); err != nil {
			return nil, err
		}
		row.FTBAR = time.Since(start).Seconds()

		if row.FTSA > 0 {
			row.RatioBF = row.FTBAR / row.FTSA
		}
		rows = append(rows, row)
	}
	return rows, nil
}
