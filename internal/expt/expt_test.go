package expt

import (
	"bytes"
	"strings"
	"testing"
)

// smallConfig shrinks the paper configuration so the full pipeline runs in
// test time while preserving every code path.
func smallConfig(figure int, t *testing.T) Config {
	t.Helper()
	cfg, err := FigureConfig(figure)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Granularities = []float64{0.4, 1.0, 2.0}
	cfg.GraphsPerPoint = 4
	cfg.TasksMin, cfg.TasksMax = 40, 60
	return cfg
}

func TestFigureConfigs(t *testing.T) {
	for fig := 1; fig <= 4; fig++ {
		cfg, err := FigureConfig(fig)
		if err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
	if _, err := FigureConfig(9); err == nil {
		t.Error("want error for unknown figure")
	}
	if got := len(PaperGranularities()); got != 10 {
		t.Errorf("granularity sweep has %d points, want 10", got)
	}
}

func TestRunProducesAllSeries(t *testing.T) {
	cfg := smallConfig(1, t)
	set, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantBounds := []string{
		"FTSA-LowerBound", "FTSA-UpperBound",
		"FTBAR-LowerBound", "FTBAR-UpperBound",
		"MC-FTSA-LowerBound", "MC-FTSA-UpperBound",
		"FaultFree-FTSA", "FaultFree-FTBAR",
	}
	names := map[string]bool{}
	for _, s := range set.Bounds.Series {
		names[s.Name] = true
		if s.Len() != len(cfg.Granularities) {
			t.Errorf("series %q has %d points, want %d", s.Name, s.Len(), len(cfg.Granularities))
		}
		for _, p := range s.Points {
			if p.N() != cfg.GraphsPerPoint {
				t.Errorf("series %q point has %d samples, want %d", s.Name, p.N(), cfg.GraphsPerPoint)
			}
		}
	}
	for _, w := range wantBounds {
		if !names[w] {
			t.Errorf("missing bounds series %q", w)
		}
	}
	if len(set.Crash.Series) < 5 {
		t.Errorf("crash panel has %d series, want >= 5", len(set.Crash.Series))
	}
	if len(set.Overhead.Series) < 4 {
		t.Errorf("overhead panel has %d series, want >= 4", len(set.Overhead.Series))
	}
}

func TestRunQualitativeShape(t *testing.T) {
	// The paper's qualitative claims, checked on sweep averages:
	//  1. FTSA's lower bound beats FTBAR's lower bound;
	//  2. FTSA's lower bound is close to (and above) the fault-free latency;
	//  3. MC-FTSA's bound gap is smaller than FTSA's;
	//  4. normalized latency increases with granularity.
	cfg := smallConfig(1, t)
	cfg.GraphsPerPoint = 8
	set, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(name string) float64 {
		for _, s := range set.Bounds.Series {
			if s.Name == name {
				tot, n := 0.0, 0
				for _, p := range s.Points {
					tot += p.Mean()
					n++
				}
				return tot / float64(n)
			}
		}
		t.Fatalf("series %q missing", name)
		return 0
	}
	ftsaLB, ftbarLB := mean("FTSA-LowerBound"), mean("FTBAR-LowerBound")
	if ftsaLB >= ftbarLB {
		t.Errorf("FTSA LB %.3f should beat FTBAR LB %.3f", ftsaLB, ftbarLB)
	}
	// "FTSA achieves a really good lower bound, which is very close to the
	// fault free version" — within 20% either way. (It can dip *below* the
	// fault-free latency: equation (1) lets a replica use the earliest of
	// ε+1 predecessor copies, an option the single-copy schedule lacks.)
	ff := mean("FaultFree-FTSA")
	if ratio := ftsaLB / ff; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("FTSA LB %.3f not close to fault-free %.3f (ratio %.2f)", ftsaLB, ff, ratio)
	}
	if gap := mean("MC-FTSA-UpperBound") - mean("MC-FTSA-LowerBound"); gap >= mean("FTSA-UpperBound")-mean("FTSA-LowerBound") {
		t.Errorf("MC-FTSA gap %.3f not below FTSA gap", gap)
	}
	// Latency grows with granularity for the FTSA lower bound.
	for _, s := range set.Bounds.Series {
		if s.Name != "FTSA-LowerBound" {
			continue
		}
		first, last := s.Points[0].Mean(), s.Points[len(s.Points)-1].Mean()
		if last <= first {
			t.Errorf("normalized latency should grow with granularity: %.3f -> %.3f", first, last)
		}
	}
}

func TestRunFigure4(t *testing.T) {
	cfg := smallConfig(4, t)
	set, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if set.Crash == nil || set.Overhead == nil {
		t.Fatal("missing panels")
	}
	// Expect FTSA with 0..2 crashes plus the fault-free curve.
	if got := len(set.Crash.Series); got != 4 {
		t.Errorf("crash panel has %d series, want 4", got)
	}
	// More crashes cannot decrease latency on average (sweep-aggregate).
	means := map[string]float64{}
	for _, s := range set.Crash.Series {
		tot := 0.0
		for _, p := range s.Points {
			tot += p.Mean()
		}
		means[s.Name] = tot / float64(s.Len())
	}
	if means["FTSA with 2 Crash"] < means["FTSA with 0 Crash"]-1e-9 {
		t.Errorf("2-crash latency %.3f below 0-crash %.3f", means["FTSA with 2 Crash"], means["FTSA with 0 Crash"])
	}
}

func TestEmitters(t *testing.T) {
	cfg := smallConfig(1, t)
	cfg.GraphsPerPoint = 2
	set, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ascii, csv bytes.Buffer
	if err := WriteASCII(&ascii, set.Bounds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "FTSA-LowerBound") {
		t.Error("ASCII output missing header")
	}
	if err := WriteCSV(&csv, set.Crash); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(cfg.Granularities) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(cfg.Granularities))
	}
	if err := WriteASCII(&ascii, nil); err == nil {
		t.Error("want error for nil figure")
	}
	var stats bytes.Buffer
	if err := WriteASCIIStats(&stats, set.Bounds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "±") {
		t.Error("stats output missing confidence intervals")
	}
	if err := WriteASCIIStats(&stats, nil); err == nil {
		t.Error("want error for nil figure")
	}
	var svg bytes.Buffer
	if err := WriteSVG(&svg, set.Bounds); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("SVG output missing root element")
	}
	if err := WriteSVG(&svg, nil); err == nil {
		t.Error("want error for nil figure in SVG")
	}
}

func TestRunTable1Small(t *testing.T) {
	cfg := Table1Config{TaskCounts: []int{50, 150}, Procs: 20, Epsilon: 2, Seed: 1}
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.FTSA <= 0 || r.MCFTSA <= 0 || r.FTBAR <= 0 {
			t.Errorf("non-positive timing in row %+v", r)
		}
	}
	// FTBAR should already be slower at 150 tasks.
	if rows[1].FTBAR < rows[1].FTSA {
		t.Logf("note: FTBAR faster than FTSA at v=150 (%.4fs vs %.4fs); scaling shows at larger v",
			rows[1].FTBAR, rows[1].FTSA)
	}
	var buf bytes.Buffer
	if err := WriteTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Number of tasks") {
		t.Error("table output missing header")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := smallConfig(1, t)
	cfg.Epsilon = cfg.Procs
	if err := cfg.Validate(); err == nil {
		t.Error("want error for ε >= m")
	}
	cfg = smallConfig(1, t)
	cfg.Granularities = nil
	if err := cfg.Validate(); err == nil {
		t.Error("want error for empty sweep")
	}
	cfg = smallConfig(2, t)
	cfg.ExtraCrashCounts = []int{5}
	if err := cfg.Validate(); err == nil {
		t.Error("want error for crash count beyond ε")
	}
}
