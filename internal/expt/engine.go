package expt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
)

// ErrCheckpointMismatch is returned when a checkpoint file was produced by a
// different campaign spec than the one being resumed.
var ErrCheckpointMismatch = errors.New("expt: checkpoint belongs to a different campaign")

// EngineOptions configures one RunCampaign invocation. The zero value runs
// with GOMAXPROCS workers and no checkpointing.
type EngineOptions struct {
	// Workers is the worker-pool size; <= 0 means runtime.GOMAXPROCS(0).
	// The aggregated result is identical for every worker count.
	Workers int
	// Checkpoint, when non-empty, streams every completed cell to this
	// JSONL file, so an interrupted campaign can be resumed.
	Checkpoint string
	// Resume loads previously completed cells from Checkpoint (which must
	// exist and match the campaign's fingerprint) and only executes the
	// remainder.
	Resume bool
	// Progress, when non-nil, is called after every completed cell with
	// the running completion count and the grid size. Calls are serialized.
	Progress func(done, total int)
}

// CampaignResult is a fully executed campaign: the spec plus one result per
// cell, sorted by cell index.
type CampaignResult struct {
	Campaign Campaign
	Cells    []CellResult
}

// Fingerprint returns a stable hash of the campaign spec, used to guard
// checkpoint resume against spec drift.
func (c Campaign) Fingerprint() string {
	blob, err := json.Marshal(c)
	if err != nil {
		// Campaign is a plain data struct; Marshal cannot fail on it.
		panic(err)
	}
	h := fnv.New64a()
	h.Write(blob)
	return fmt.Sprintf("%016x", h.Sum64())
}

// checkpointHeader is the first line of a checkpoint file.
type checkpointHeader struct {
	Version     int    `json:"v"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Cells       int    `json:"cells"`
}

// LoadCheckpoint reads a campaign checkpoint, returning the completed cell
// results keyed by index. A truncated trailing line (interrupted mid-write)
// is tolerated; any other malformed content is an error.
func LoadCheckpoint(r io.Reader, c Campaign) (map[int]CellResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("expt: empty checkpoint")
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("expt: malformed checkpoint header: %w", err)
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("expt: unsupported checkpoint version %d (want 1)", hdr.Version)
	}
	if hdr.Fingerprint != c.Fingerprint() {
		return nil, fmt.Errorf("%w: checkpoint %q fingerprint %s, campaign %q fingerprint %s",
			ErrCheckpointMismatch, hdr.Name, hdr.Fingerprint, c.Name, c.Fingerprint())
	}
	total := c.NumCells()
	done := make(map[int]CellResult)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var res CellResult
		if err := json.Unmarshal(line, &res); err != nil {
			// A torn final line is the expected shape of an interrupt;
			// losing that one cell is fine — it will be recomputed. A
			// malformed line in the middle, or a scanner failure on the
			// lookahead, is real corruption and gets its own error.
			if sc.Scan() {
				return nil, fmt.Errorf("expt: malformed checkpoint line: %w", err)
			}
			if serr := sc.Err(); serr != nil {
				return nil, fmt.Errorf("expt: reading checkpoint: %w", serr)
			}
			break
		}
		if res.Index < 0 || res.Index >= total {
			return nil, fmt.Errorf("expt: checkpoint cell index %d outside grid of %d", res.Index, total)
		}
		done[res.Index] = res
	}
	return done, sc.Err()
}

// checkpointWriter appends completed cells to the checkpoint file, one JSON
// line per cell, flushing after every line so an interrupt loses at most the
// cell being written. It starts on a temporary sibling file and atomically
// renames over the target once the preamble (header plus any resumed cells)
// is durable, so a failure while rewriting a resumed checkpoint never
// destroys the progress already on disk.
type checkpointWriter struct {
	f         *os.File
	bw        *bufio.Writer
	tmp, path string // tmp is empty once promoted
}

func newCheckpointWriter(path string, c Campaign) (*checkpointWriter, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	w := &checkpointWriter{f: f, bw: bufio.NewWriter(f), tmp: tmp, path: path}
	hdr := checkpointHeader{Version: 1, Name: c.Name, Fingerprint: c.Fingerprint(), Cells: c.NumCells()}
	if err := w.writeJSON(hdr); err != nil {
		w.discard()
		return nil, err
	}
	return w, nil
}

// promote renames the temporary file onto the target path, syncing first so
// a power failure after the rename cannot surface an empty file where a
// complete checkpoint used to be. The open file descriptor tracks the inode
// across the rename, so subsequent appends land in the promoted file.
func (w *checkpointWriter) promote() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		return err
	}
	w.tmp = ""
	return nil
}

// discard abandons the writer, removing the temporary file if the target
// was never promoted.
func (w *checkpointWriter) discard() {
	w.f.Close()
	if w.tmp != "" {
		os.Remove(w.tmp)
	}
}

func (w *checkpointWriter) writeJSON(v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(blob); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *checkpointWriter) Close() error {
	if w.tmp != "" {
		// Never promoted: the run failed before the preamble was complete;
		// keep the original checkpoint and drop the partial rewrite.
		w.discard()
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// prepCache memoizes prepared (scheduler-independent) instances across
// workers, keyed by instance seed. A prepared value is immutable, so cache
// hits cannot perturb results — the memo only removes the redundant rebuild
// of one instance's workload, bottom levels and fault-free baseline across
// its ε × scheduler cells. Eviction is FIFO; cells sharing an instance are
// consecutive in the grid, so a capacity of a few× the worker count already
// captures essentially all reuse.
type prepCache struct {
	c     Campaign
	cap   int
	mu    sync.Mutex
	m     map[int64]*prepEntry
	order []int64
}

type prepEntry struct {
	once sync.Once
	p    *prepared
	err  error
}

func newPrepCache(c Campaign, workers int) *prepCache {
	capacity := 4 * workers
	if capacity < 16 {
		capacity = 16
	}
	return &prepCache{c: c, cap: capacity, m: make(map[int64]*prepEntry)}
}

func (pc *prepCache) get(cell Cell) (*prepared, error) {
	seed := pc.c.instanceSeed(cell)
	pc.mu.Lock()
	e, ok := pc.m[seed]
	if !ok {
		e = &prepEntry{}
		pc.m[seed] = e
		pc.order = append(pc.order, seed)
		if len(pc.order) > pc.cap {
			// Workers already holding the evicted entry keep their
			// pointer; only future lookups recompute.
			delete(pc.m, pc.order[0])
			pc.order = pc.order[1:]
		}
	}
	pc.mu.Unlock()
	e.once.Do(func() { e.p, e.err = pc.c.prepare(cell) })
	return e.p, e.err
}

// RunCampaign executes every cell of the campaign on a pool of workers and
// returns the index-sorted results. Because each cell is seeded from its own
// coordinates and aggregation happens in index order, the output is
// byte-for-byte identical for any worker count, and a resumed campaign is
// indistinguishable from an uninterrupted one.
func RunCampaign(c Campaign, opt EngineOptions) (*CampaignResult, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	done := make(map[int]CellResult)
	if opt.Resume {
		if opt.Checkpoint == "" {
			return nil, fmt.Errorf("expt: -resume needs a checkpoint path")
		}
		f, err := os.Open(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		done, err = LoadCheckpoint(f, c)
		f.Close()
		if err != nil {
			return nil, err
		}
	}

	var ckpt *checkpointWriter
	if opt.Checkpoint != "" {
		if !opt.Resume {
			// Refuse to clobber prior progress: a user rerunning after an
			// interrupt but forgetting -resume would otherwise wipe the
			// checkpoint at t=0.
			if _, err := os.Stat(opt.Checkpoint); err == nil {
				return nil, fmt.Errorf("expt: checkpoint %s already exists; pass Resume (-resume) to continue it or remove the file to start over", opt.Checkpoint)
			} else if !errors.Is(err, os.ErrNotExist) {
				return nil, err
			}
		}
		// The file is rewritten from the loaded cells rather than appended
		// to: an interrupt can leave a torn half-line at the tail, and
		// appending after one would corrupt the next resume. The rewrite
		// happens on a temp file promoted by an atomic rename, so the
		// previous checkpoint survives any failure before the new one
		// holds everything it held.
		var err error
		ckpt, err = newCheckpointWriter(opt.Checkpoint, c)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
		for _, cell := range c.Cells() {
			if res, ok := done[cell.Index]; ok {
				if err := ckpt.writeJSON(res); err != nil {
					return nil, err
				}
			}
		}
		if err := ckpt.promote(); err != nil {
			return nil, err
		}
	}

	var pending []Cell
	for _, cell := range c.Cells() {
		if _, ok := done[cell.Index]; !ok {
			pending = append(pending, cell)
		}
	}

	type outcome struct {
		res CellResult
		err error
	}
	workCh := make(chan Cell)
	outCh := make(chan outcome)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	cache := newPrepCache(c, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range workCh {
				res, err := func() (CellResult, error) {
					p, err := cache.get(cell)
					if err != nil {
						return CellResult{Cell: cell}, err
					}
					return c.runPrepared(cell, p)
				}()
				select {
				case outCh <- outcome{res: res, err: err}:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() {
		defer close(workCh)
		for _, cell := range pending {
			select {
			case workCh <- cell:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	total := c.NumCells()
	var firstErr error
	for o := range outCh {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			halt()
			continue
		}
		if firstErr != nil {
			continue // draining after failure
		}
		if ckpt != nil {
			if err := ckpt.writeJSON(o.res); err != nil {
				firstErr = fmt.Errorf("expt: writing checkpoint: %w", err)
				halt()
				continue
			}
		}
		done[o.res.Index] = o.res
		if opt.Progress != nil {
			opt.Progress(len(done), total)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	cells := make([]CellResult, 0, len(done))
	for _, res := range done {
		cells = append(cells, res)
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].Index < cells[b].Index })
	return &CampaignResult{Campaign: c, Cells: cells}, nil
}
