package expt

import (
	"bytes"
	"strings"
	"testing"
)

// evalCampaign is a small grid carrying the failure-scenario dimension.
func evalCampaign() Campaign {
	c := testCampaign()
	c.Name = "eval-test"
	c.Families = []string{"random"}
	c.Granularities = []float64{1.0}
	c.Scenarios = []string{"uniform:2", "exp:0.01", "group:3:0.01"}
	c.EvalTrials = 60
	return c
}

func TestEvalCampaignValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Campaign)
	}{
		{"trials without scenarios", func(c *Campaign) { c.Scenarios = nil }},
		{"scenarios without trials", func(c *Campaign) { c.EvalTrials = 0 }},
		{"bad scenario", func(c *Campaign) { c.Scenarios = []string{"meteor:1"} }},
		{"oversized crash count", func(c *Campaign) { c.Scenarios = []string{"uniform:99"} }},
		{"duplicate via alias", func(c *Campaign) { c.Scenarios = []string{"exp:0.01", "exponential:0.01"} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := evalCampaign()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatal("Validate accepted a bad evaluation campaign")
			}
		})
	}
	c := evalCampaign()
	if err := c.Validate(); err != nil {
		t.Fatalf("valid evaluation campaign rejected: %v", err)
	}
}

// The scenario dimension multiplies the grid and threads through every cell.
func TestEvalCampaignGrid(t *testing.T) {
	c := evalCampaign()
	if got, want := c.NumCells(), 2*2*1*2*3; got != want { // sched × eps × gran × inst × scn
		t.Fatalf("NumCells = %d, want %d", got, want)
	}
	cells := c.Cells()
	if len(cells) != c.NumCells() {
		t.Fatalf("Cells() returned %d, want %d", len(cells), c.NumCells())
	}
	seen := map[string]int{}
	for i, cell := range cells {
		if cell.Index != i {
			t.Fatalf("cell %d has index %d", i, cell.Index)
		}
		if cell.Scenario == "" {
			t.Fatalf("cell %d has no scenario", i)
		}
		seen[cell.Scenario]++
	}
	for _, scn := range c.Scenarios {
		if seen[scn] != c.NumCells()/len(c.Scenarios) {
			t.Fatalf("scenario %q covers %d cells, want %d", scn, seen[scn], c.NumCells()/len(c.Scenarios))
		}
	}
}

// Evaluation campaigns keep the engine's core guarantee: identical
// aggregates for any worker count, including the new success/p99 columns.
func TestEvalCampaignDeterministicAcrossWorkers(t *testing.T) {
	c := evalCampaign()
	serial, err := RunCampaign(c, EngineOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunCampaign(c, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := campaignCSV(t, serial), campaignCSV(t, parallel)
	if !bytes.Equal(a, b) {
		t.Fatalf("aggregated CSV differs between 1 and 4 workers:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(string(a), "scenario,trials,success_mean") {
		t.Fatalf("evaluation CSV missing scenario columns:\n%s", a)
	}
	// Within the guarantee region every uniform:2 cell of an ε=2 row must
	// succeed; sanity-check one aggregated value.
	foundGuaranteed := false
	for _, row := range serial.Rows() {
		if row.Scenario == "uniform:2" && row.Epsilon == 2 {
			foundGuaranteed = true
			if row.Success.Mean() != 1 {
				t.Fatalf("ε=2 under uniform:2 has success %g, want 1", row.Success.Mean())
			}
		}
		if row.Scenario != "" && row.Success.N() == 0 {
			t.Fatalf("row %+v has no success samples", row)
		}
	}
	if !foundGuaranteed {
		t.Fatal("no uniform:2 ε=2 rows aggregated")
	}
}

// All schedulers of one (instance, ε, scenario) point must face identical
// failure draws — the seed excludes the scheduler coordinate.
func TestEvalSeedSharedAcrossSchedulers(t *testing.T) {
	c := evalCampaign()
	var ftsa, mcftsa Cell
	for _, cell := range c.Cells() {
		if cell.Instance == 1 && cell.Epsilon == 2 && cell.Scenario == "exp:0.01" {
			switch cell.Scheduler {
			case SchedFTSA:
				ftsa = cell
			case SchedMCFTSA:
				mcftsa = cell
			}
		}
	}
	if c.evalSeed(ftsa) != c.evalSeed(mcftsa) {
		t.Fatal("schedulers of one grid point draw different failure samples")
	}
	other := ftsa
	other.Scenario = "uniform:2"
	if c.evalSeed(ftsa) == c.evalSeed(other) {
		t.Fatal("distinct scenarios share a failure-draw seed")
	}
}

// Adding the (omitempty) scenario fields must not disturb the fingerprints
// of classic campaigns — their checkpoints predate the dimension.
func TestClassicCampaignFingerprintStable(t *testing.T) {
	c := testCampaign()
	if got, want := c.Fingerprint(), "2c230d6327acd770"; got != want {
		// The literal pins the pre-scenario encoding; if this fails, legacy
		// checkpoints can no longer resume.
		t.Fatalf("classic campaign fingerprint drifted: %s, want %s", got, want)
	}
	e := evalCampaign()
	if c.Fingerprint() == e.Fingerprint() {
		t.Fatal("evaluation dimension invisible to the fingerprint")
	}
}
