package expt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// testCampaign returns a small grid that exercises every dimension while
// staying fast enough for the race detector.
func testCampaign() Campaign {
	return Campaign{
		Name:          "test",
		Schedulers:    []SchedulerID{SchedFTSA, SchedMCFTSA},
		Epsilons:      []int{1, 2},
		Granularities: []float64{0.5, 1.0},
		Families:      []string{"random", "forkjoin"},
		Instances:     2,
		Procs:         6,
		TasksMin:      20,
		TasksMax:      30,
		Seed:          7,
	}
}

func campaignCSV(t *testing.T, res *CampaignResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCampaignCSV(&buf, res); err != nil {
		t.Fatalf("WriteCampaignCSV: %v", err)
	}
	return buf.Bytes()
}

func TestCampaignValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Campaign)
	}{
		{"no schedulers", func(c *Campaign) { c.Schedulers = nil }},
		{"bad scheduler", func(c *Campaign) { c.Schedulers = []SchedulerID{"SLURM"} }},
		{"alias duplicates name", func(c *Campaign) { c.Schedulers = []SchedulerID{"mcftsa", "MC-FTSA"} }},
		{"non-FT scheduler with eps>0", func(c *Campaign) { c.Schedulers = []SchedulerID{"HEFT"} }},
		{"no epsilons", func(c *Campaign) { c.Epsilons = nil }},
		{"eps too large", func(c *Campaign) { c.Epsilons = []int{c.Procs} }},
		{"negative eps", func(c *Campaign) { c.Epsilons = []int{-1} }},
		{"no granularities", func(c *Campaign) { c.Granularities = nil }},
		{"zero granularity", func(c *Campaign) { c.Granularities = []float64{0} }},
		{"no families", func(c *Campaign) { c.Families = nil }},
		{"unknown family", func(c *Campaign) { c.Families = []string{"torus"} }},
		{"no instances", func(c *Campaign) { c.Instances = 0 }},
		{"no procs", func(c *Campaign) { c.Procs = 0 }},
		{"bad task range", func(c *Campaign) { c.TasksMin, c.TasksMax = 10, 5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := testCampaign()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate accepted invalid campaign %+v", c)
			}
		})
	}
	if err := testCampaign().Validate(); err != nil {
		t.Fatalf("Validate rejected valid campaign: %v", err)
	}
	if err := PaperCampaign().Validate(); err != nil {
		t.Fatalf("Validate rejected paper preset: %v", err)
	}
}

// A registry-only variant must be sweepable exactly like the paper's three
// schedulers: same grid, deterministic results, distinct from plain FTSA.
func TestCampaignRunsRegistryVariant(t *testing.T) {
	c := testCampaign()
	c.Schedulers = []SchedulerID{SchedFTSA, "ftsa-ins"}
	c.Granularities = []float64{1.0}
	c.Families = []string{"random"}
	if err := c.Validate(); err != nil {
		t.Fatalf("campaign with ftsa-ins rejected: %v", err)
	}
	res, err := RunCampaign(c, EngineOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var ftsa, ins []CellResult
	for _, cell := range res.Cells {
		switch cell.Scheduler {
		case SchedFTSA:
			ftsa = append(ftsa, cell)
		case "ftsa-ins":
			ins = append(ins, cell)
		}
	}
	if len(ins) == 0 || len(ins) != len(ftsa) {
		t.Fatalf("ftsa-ins cells = %d, ftsa cells = %d", len(ins), len(ftsa))
	}
	var insTotal, ftsaTotal float64
	differs := false
	for i := range ins {
		insTotal += ins[i].Lower
		ftsaTotal += ftsa[i].Lower
		if ins[i].Lower != ftsa[i].Lower {
			differs = true
		}
	}
	if !differs {
		t.Error("ftsa-ins produced identical lower bounds to ftsa on every cell; insertion is not wired through")
	}
	// A single cell can go either way (an inserted replica perturbs every
	// later greedy choice), but across the grid insertion must not lose.
	if insTotal > ftsaTotal+1e-9 {
		t.Errorf("ftsa-ins total normalized lower bound %g worse than ftsa %g", insTotal, ftsaTotal)
	}
}

func TestCampaignCellsEnumeration(t *testing.T) {
	c := testCampaign()
	cells := c.Cells()
	if len(cells) != c.NumCells() {
		t.Fatalf("got %d cells, NumCells says %d", len(cells), c.NumCells())
	}
	want := len(c.Schedulers) * len(c.Epsilons) * len(c.Granularities) * len(c.Families) * c.Instances
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for i, cell := range cells {
		if cell.Index != i {
			t.Fatalf("cell %d has index %d", i, cell.Index)
		}
	}
}

func TestRunCellDeterministic(t *testing.T) {
	c := testCampaign()
	cell := c.Cells()[3]
	a, err := c.RunCell(cell)
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	b, err := c.RunCell(cell)
	if err != nil {
		t.Fatalf("RunCell (repeat): %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("RunCell not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
	if a.Lower <= 0 || a.Upper < a.Lower {
		t.Fatalf("implausible bounds: %+v", a)
	}
}

// TestCampaignDeterminismAcrossWorkers is the engine's core guarantee: the
// same spec run with 1 worker and with N workers produces byte-identical
// aggregated output.
func TestCampaignDeterminismAcrossWorkers(t *testing.T) {
	c := testCampaign()
	serial, err := RunCampaign(c, EngineOptions{Workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := RunCampaign(c, EngineOptions{Workers: 4})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatal("per-cell results differ between 1 and 4 workers")
	}
	if got, want := campaignCSV(t, parallel), campaignCSV(t, serial); !bytes.Equal(got, want) {
		t.Fatalf("aggregated CSV differs between 1 and 4 workers:\n%s\n---\n%s", want, got)
	}
}

// TestCampaignResumeMatchesUninterrupted interrupts a campaign by truncating
// its checkpoint to a prefix, resumes, and demands the exact uninterrupted
// output.
func TestCampaignResumeMatchesUninterrupted(t *testing.T) {
	c := testCampaign()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")

	full, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	wantCSV := campaignCSV(t, full)

	blob, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 10 {
		t.Fatalf("checkpoint unexpectedly small: %d lines", len(lines))
	}
	// Keep the header plus a third of the cells, plus a torn half-line as
	// left behind by a mid-write interrupt.
	keep := 1 + (len(lines)-1)/3
	truncated := strings.Join(lines[:keep], "") + lines[keep][:len(lines[keep])/2]
	if err := os.WriteFile(ckpt, []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunCampaign(c, EngineOptions{Workers: 4, Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !reflect.DeepEqual(full.Cells, resumed.Cells) {
		t.Fatal("resumed per-cell results differ from uninterrupted run")
	}
	if got := campaignCSV(t, resumed); !bytes.Equal(got, wantCSV) {
		t.Fatal("resumed aggregated CSV differs from uninterrupted run")
	}

	// After the resume the checkpoint holds the complete campaign again:
	// resuming once more recomputes nothing and still agrees.
	again, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("second resume: %v", err)
	}
	if got := campaignCSV(t, again); !bytes.Equal(got, wantCSV) {
		t.Fatal("second resume diverged")
	}
}

func TestCampaignRefusesToClobberCheckpoint(t *testing.T) {
	c := testCampaign()
	c.Families, c.Epsilons = []string{"forkjoin"}, []int{1}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	if _, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatalf("full run: %v", err)
	}
	if _, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt}); err == nil {
		t.Fatal("second run without Resume overwrote an existing checkpoint")
	}
	if _, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt, Resume: true}); err != nil {
		t.Fatalf("resume of complete checkpoint: %v", err)
	}
}

func TestCampaignResumeRejectsForeignCheckpoint(t *testing.T) {
	c := testCampaign()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.jsonl")
	if _, err := RunCampaign(c, EngineOptions{Workers: 2, Checkpoint: ckpt}); err != nil {
		t.Fatalf("full run: %v", err)
	}
	other := c
	other.Seed++
	_, err := RunCampaign(other, EngineOptions{Workers: 2, Checkpoint: ckpt, Resume: true})
	if !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("resume with foreign checkpoint: got %v, want ErrCheckpointMismatch", err)
	}
}

func TestCampaignFingerprintTracksSpec(t *testing.T) {
	a, b := testCampaign(), testCampaign()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs hash differently")
	}
	b.Granularities = []float64{0.5}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different specs share a fingerprint")
	}
}

func TestCampaignFigure(t *testing.T) {
	c := testCampaign()
	res, err := RunCampaign(c, EngineOptions{})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	f, err := CampaignFigure(res, "random", 1, MetricCrash)
	if err != nil {
		t.Fatalf("CampaignFigure: %v", err)
	}
	if len(f.Series) != len(c.Schedulers) {
		t.Fatalf("figure has %d series, want %d", len(f.Series), len(c.Schedulers))
	}
	for _, s := range f.Series {
		if s.Len() != len(c.Granularities) {
			t.Fatalf("series %q has %d points, want %d", s.Name, s.Len(), len(c.Granularities))
		}
	}
	if _, err := CampaignFigure(res, "nope", 1, MetricCrash); err == nil {
		t.Fatal("CampaignFigure accepted unknown family")
	}
	if _, err := CampaignFigure(res, "random", 1, CampaignMetric("latency")); err == nil {
		t.Fatal("CampaignFigure accepted unknown metric")
	}
}

func TestCampaignProgressAndWorkerDefaults(t *testing.T) {
	c := testCampaign()
	c.Families = []string{"forkjoin"}
	c.Epsilons = []int{1}
	var calls int
	var lastDone, lastTotal int
	_, err := RunCampaign(c, EngineOptions{Progress: func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	}})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if want := c.NumCells(); calls != want || lastDone != want || lastTotal != want {
		t.Fatalf("progress saw %d calls ending at %d/%d, want %d", calls, lastDone, lastTotal, want)
	}
}

func TestCampaignSharesInstanceAcrossSchedulers(t *testing.T) {
	c := testCampaign()
	cells := c.Cells()
	// First two cells differ only in scheduler; their instances must match.
	a, b := cells[0], cells[1]
	if a.Scheduler == b.Scheduler || a.Instance != b.Instance || a.Granularity != b.Granularity {
		t.Fatalf("unexpected enumeration order: %+v then %+v", a, b)
	}
	if c.instanceSeed(a) != c.instanceSeed(b) {
		t.Fatal("schedulers at one grid point see different instances")
	}
	ra, err := c.RunCell(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.RunCell(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Tasks != rb.Tasks || ra.Edges != rb.Edges || ra.FaultFree != rb.FaultFree {
		t.Fatalf("shared instance diverged across schedulers: %+v vs %+v", ra, rb)
	}
}

// BuildInstance must agree with the campaign engine's own instance
// materialization coordinate for coordinate, so tuning a point and sweeping
// it in a campaign study the same workload.
func TestBuildInstanceMatchesCampaign(t *testing.T) {
	c := Campaign{
		Name:          "probe",
		Schedulers:    []SchedulerID{SchedFTSA},
		Epsilons:      []int{1},
		Granularities: []float64{0.5},
		Families:      []string{"random"},
		Instances:     2,
		Procs:         6,
		TasksMin:      20,
		TasksMax:      30,
		Seed:          9,
	}
	cell := c.Cells()[len(c.Cells())-1] // instance index 1
	want, err := c.instance(cell)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildInstance("random", 0.5, 6, 20, 30, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumTasks() != want.Graph.NumTasks() || got.Graph.NumEdges() != want.Graph.NumEdges() {
		t.Fatalf("BuildInstance diverged from the campaign instance: %d/%d tasks, %d/%d edges",
			got.Graph.NumTasks(), want.Graph.NumTasks(), got.Graph.NumEdges(), want.Graph.NumEdges())
	}
	for tsk := 0; tsk < got.Graph.NumTasks(); tsk++ {
		for pr := 0; pr < 6; pr++ {
			if got.Costs.Cost(dag.TaskID(tsk), platform.ProcID(pr)) != want.Costs.Cost(dag.TaskID(tsk), platform.ProcID(pr)) {
				t.Fatalf("cost matrix diverged at task %d proc %d", tsk, pr)
			}
		}
	}

	for _, bad := range []func() error{
		func() error { _, err := BuildInstance("nope", 1, 6, 20, 30, 0, 9); return err },
		func() error { _, err := BuildInstance("random", 0, 6, 20, 30, 0, 9); return err },
		func() error { _, err := BuildInstance("random", 1, 0, 20, 30, 0, 9); return err },
		func() error { _, err := BuildInstance("random", 1, 6, 30, 20, 0, 9); return err },
		func() error { _, err := BuildInstance("random", 1, 6, 20, 30, -1, 9); return err },
	} {
		if bad() == nil {
			t.Error("BuildInstance accepted an invalid argument set")
		}
	}
}
