package expt_test

import (
	"fmt"

	"ftsched/internal/expt"
)

// ExampleRunCampaign runs a small campaign grid on the worker-pool engine
// and aggregates it. Cell seeding is deterministic, so any Workers value —
// including the GOMAXPROCS default — produces this exact output.
func ExampleRunCampaign() {
	c := expt.Campaign{
		Name:          "demo",
		Schedulers:    []expt.SchedulerID{expt.SchedFTSA, expt.SchedMCFTSA},
		Epsilons:      []int{1},
		Granularities: []float64{0.5, 1.0},
		Families:      []string{"random"},
		Instances:     3,
		Procs:         6,
		TasksMin:      20,
		TasksMax:      30,
		Seed:          42,
	}
	res, err := expt.RunCampaign(c, expt.EngineOptions{Workers: 4})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cells:", len(res.Cells))
	for _, row := range res.Rows() {
		fmt.Printf("%s g=%g: %d instances, upper bound within %.0f%% of lower\n",
			row.Scheduler, row.Granularity, row.Lower.N(),
			100*(row.Upper.Mean()-row.Lower.Mean())/row.Lower.Mean())
	}
	// Output:
	// cells: 12
	// FTSA g=0.5: 3 instances, upper bound within 89% of lower
	// MC-FTSA g=0.5: 3 instances, upper bound within 15% of lower
	// FTSA g=1: 3 instances, upper bound within 60% of lower
	// MC-FTSA g=1: 3 instances, upper bound within 9% of lower
}

// ExamplePaperCampaign shows the preset that reproduces the paper's Figure
// 1-3 sweeps — all three schedulers, ε ∈ {1,2,5}, granularity 0.2..2.0 and
// 60 random instances per point — in a single campaign.
func ExamplePaperCampaign() {
	c := expt.PaperCampaign()
	fmt.Println("name:", c.Name)
	fmt.Println("cells:", c.NumCells())
	fmt.Println("families:", c.Families)
	// Output:
	// name: paper-figures-1-3
	// cells: 5400
	// families: [random]
}
