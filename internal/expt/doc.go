// Package expt is the experiment layer: it reproduces the paper's
// evaluation (Section 6) and runs large parameter-sweep campaigns on a
// parallel, resumable engine.
//
// # Campaign engine
//
// A Campaign declares a grid: the cross product of schedulers (FTSA,
// MC-FTSA, FTBAR), ε values, granularities, workload families and instance
// indices. RunCampaign executes the grid on a pool of workers (GOMAXPROCS
// by default) and aggregates per-cell metrics — normalized lower/upper
// bounds, fault-free latency, crash latency under a per-cell uniform crash
// scenario, overhead, and message counts — into per-point mean/95%-CI rows.
//
// Setting Campaign.Scenarios adds a failure-scenario dimension: each cell
// runs a Monte-Carlo fault-injection batch (sim.Evaluate, EvalTrials
// deterministic trials) instead of the single crash replay, so one grid can
// sweep whole failure families (uniform crashes, exponential or Weibull
// lifetimes, rack groups, bursts, rolling outages) and the aggregate gains
// success-rate and p99 columns. Every scheduler of one grid point shares
// the failure sample, extending the like-for-like discipline below.
//
// Three properties make campaigns production-grade:
//
//   - Determinism. Every cell derives its RNG seeds (instance generation,
//     scheduler tie-breaking, fault-free baseline, crash scenario) from the
//     campaign seed and its own grid coordinates, and aggregation consumes
//     results in canonical cell order. The output is therefore a pure
//     function of the spec: any -parallel value, any interleaving, and any
//     interrupt/resume boundary produce byte-identical aggregates.
//   - Resumability. With a checkpoint path set, each completed cell streams
//     to a JSONL file (header line carrying the spec fingerprint, then one
//     JSON object per cell). Resuming validates the fingerprint, loads the
//     completed cells — tolerating the torn final line an interrupt leaves
//     behind — and executes only the remainder.
//   - Shared instances. Schedulers and ε values at one grid point see the
//     same problem instance and the same crash draw (like the paper's
//     shared-workload batches), so curves compare like against like.
//
// Results feed WriteCampaignCSV/JSON/ASCII directly, or project through
// CampaignFigure into the Figure writers (WriteASCII, WriteCSV, WriteSVG)
// for plotting one (family, ε, metric) slice.
//
// # Paper figures and tables
//
// The legacy single-threaded drivers reproduce the paper's exact panels:
// Figures 1-3 (bounds, crash latencies and overheads for ε = 1, 2, 5 on 20
// processors), Figure 4 (5 processors, ε = 2) and Table 1 (running times
// for v up to 5000 tasks on 50 processors). Each figure point averages the
// metric over a batch of random task graphs (60 in the paper), with
// granularity swept from 0.2 to 2.0. PaperCampaign is the campaign-engine
// equivalent of the Figure 1-3 sweeps.
//
// Latencies are reported normalized by a per-instance constant (see
// normalizer); the paper plots "normalized latency" without defining the
// normalizer, and any per-instance constant preserves which algorithm wins.
package expt
