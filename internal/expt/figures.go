package expt

import (
	"fmt"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/ftbar"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
	"ftsched/internal/workload"
)

// Config parameterizes one figure-style experiment.
type Config struct {
	// Epsilon is ε, the number of tolerated failures (1, 2, 5 in Figures
	// 1-3; 2 in Figure 4).
	Epsilon int
	// Procs is the platform size (20 in Figures 1-3, 5 in Figure 4).
	Procs int
	// Granularities lists the x-axis sweep; the paper uses 0.2..2.0 in 0.2
	// steps.
	Granularities []float64
	// GraphsPerPoint is the batch size per granularity (60 in the paper).
	GraphsPerPoint int
	// TasksMin and TasksMax bound the task count ([100,150] in the paper).
	TasksMin, TasksMax int
	// Seed makes the experiment reproducible.
	Seed int64
	// ExtraCrashCounts adds "FTSA with k crash" series beyond the headline
	// k = ε one (Figure 2 adds k=1, Figure 3 adds k=2).
	ExtraCrashCounts []int
}

// normalizer returns the latency normalization constant for an instance: the
// mean communication cost of one edge (mean volume × mean unit delay).
// Unlike task execution costs, communication costs are *not* rescaled by the
// granularity sweep, so this normalizer is constant across a figure's x-axis
// and reproduces the paper's increasing normalized-latency curves (the paper
// never defines its normalizer; any per-instance constant preserves the
// relative positions of the curves, which is what the reproduction targets).
func normalizer(inst *workload.Instance) float64 {
	e := inst.Graph.NumEdges()
	if e == 0 {
		return inst.Costs.MeanOverTasks()
	}
	return inst.Graph.TotalVolume() / float64(e) * inst.Platform.MeanDelay()
}

// PaperGranularities returns the paper's sweep 0.2, 0.4, ..., 2.0.
func PaperGranularities() []float64 {
	out := make([]float64, 0, 10)
	for i := 1; i <= 10; i++ {
		out = append(out, float64(i)*0.2)
	}
	return out
}

// FigureConfig returns the configuration of paper Figure 1, 2 or 3 (ε = 1,
// 2, 5 on 20 processors) or Figure 4 (5 processors, ε = 2).
func FigureConfig(figure int) (Config, error) {
	base := Config{
		Procs:          20,
		Granularities:  PaperGranularities(),
		GraphsPerPoint: 60,
		TasksMin:       100,
		TasksMax:       150,
		Seed:           1,
	}
	switch figure {
	case 1:
		base.Epsilon = 1
	case 2:
		base.Epsilon = 2
		base.ExtraCrashCounts = []int{1}
	case 3:
		base.Epsilon = 5
		base.ExtraCrashCounts = []int{2}
	case 4:
		base.Epsilon = 2
		base.Procs = 5
		base.ExtraCrashCounts = []int{1}
	default:
		return Config{}, fmt.Errorf("expt: no figure %d in the paper", figure)
	}
	return base, nil
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Epsilon < 0 || c.Epsilon+1 > c.Procs {
		return fmt.Errorf("expt: ε=%d needs more processors than %d", c.Epsilon, c.Procs)
	}
	if len(c.Granularities) == 0 {
		return fmt.Errorf("expt: empty granularity sweep")
	}
	if c.GraphsPerPoint < 1 {
		return fmt.Errorf("expt: need at least one graph per point")
	}
	if c.TasksMin < 1 || c.TasksMax < c.TasksMin {
		return fmt.Errorf("expt: invalid task range [%d,%d]", c.TasksMin, c.TasksMax)
	}
	for _, k := range c.ExtraCrashCounts {
		if k < 0 || k > c.Epsilon {
			return fmt.Errorf("expt: crash count %d outside [0,ε=%d]", k, c.Epsilon)
		}
	}
	return nil
}

// Figure is the output of one sub-figure: named series over the granularity
// sweep.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*stats.Series
}

// FigureSet bundles the (a) bounds, (b) crash and (c) overhead sub-figures
// the paper presents for each ε.
type FigureSet struct {
	Bounds   *Figure
	Crash    *Figure
	Overhead *Figure
}

// series names, matching the paper's legends.
const (
	serFTSALower   = "FTSA-LowerBound"
	serFTSAUpper   = "FTSA-UpperBound"
	serFTBARLower  = "FTBAR-LowerBound"
	serFTBARUpper  = "FTBAR-UpperBound"
	serMCLower     = "MC-FTSA-LowerBound"
	serMCUpper     = "MC-FTSA-UpperBound"
	serFFFTSA      = "FaultFree-FTSA"
	serFFFTBAR     = "FaultFree-FTBAR"
	serFaultFree   = "Fault Free FTSA"
	serFTSA0Crash  = "FTSA with 0 Crash"
	crashFmt       = "FTSA with %d Crash"
	serMCCrashFmt  = "MC-FTSA with %d Crash"
	serBARCrashFmt = "FTBAR with %d Crash"
)

// Run executes the full experiment for one configuration, producing all
// three sub-figures in a single pass over the instances (the paper's (a),
// (b) and (c) panels share their workloads).
func Run(cfg Config) (*FigureSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eps := cfg.Epsilon

	bounds := &Figure{
		Title:  fmt.Sprintf("Bounds, ε=%d, m=%d", eps, cfg.Procs),
		XLabel: "Granularity", YLabel: "Normalized Latency",
	}
	crash := &Figure{
		Title:  fmt.Sprintf("Crash latencies, ε=%d, m=%d", eps, cfg.Procs),
		XLabel: "Granularity", YLabel: "Normalized Latency",
	}
	overhead := &Figure{
		Title:  fmt.Sprintf("Overhead, ε=%d, m=%d", eps, cfg.Procs),
		XLabel: "Granularity", YLabel: "Average OverHead (%)",
	}
	get := func(f *Figure, name string) *stats.Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		s := stats.NewSeries(name)
		f.Series = append(f.Series, s)
		return s
	}

	for _, g := range cfg.Granularities {
		for i := 0; i < cfg.GraphsPerPoint; i++ {
			wcfg := workload.PaperConfig{
				DAG: workload.RandomDAGConfig{
					MinTasks: cfg.TasksMin, MaxTasks: cfg.TasksMax,
					MinVolume: 50, MaxVolume: 150,
					ShapeFactor: 1.0, EdgeDensity: 0.25,
				},
				Procs:    cfg.Procs,
				MinDelay: 0.5, MaxDelay: 1.0,
				MinCost: 10, MaxCost: 100,
				Granularity: g,
			}
			inst, err := workload.NewInstance(rng, wcfg)
			if err != nil {
				return nil, err
			}
			norm := normalizer(inst)
			if norm <= 0 {
				return nil, fmt.Errorf("expt: degenerate instance with zero normalizer")
			}

			ftsaS, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps, Rng: rng})
			if err != nil {
				return nil, err
			}
			mcS, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				core.MCFTSAOptions{Options: core.Options{Epsilon: eps, Rng: rng}})
			if err != nil {
				return nil, err
			}
			barS, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: eps, Rng: rng})
			if err != nil {
				return nil, err
			}
			ffFTSA, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 0, Rng: rng})
			if err != nil {
				return nil, err
			}
			ffBAR, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: 0, Rng: rng})
			if err != nil {
				return nil, err
			}

			// (a) bounds.
			get(bounds, serFTSALower).At(g).Add(ftsaS.LowerBound() / norm)
			get(bounds, serFTSAUpper).At(g).Add(ftsaS.UpperBound() / norm)
			get(bounds, serFTBARLower).At(g).Add(barS.LowerBound() / norm)
			get(bounds, serFTBARUpper).At(g).Add(barS.UpperBound() / norm)
			get(bounds, serMCLower).At(g).Add(mcS.LowerBound() / norm)
			get(bounds, serMCUpper).At(g).Add(mcS.UpperBound() / norm)
			get(bounds, serFFFTSA).At(g).Add(ffFTSA.LowerBound() / norm)
			get(bounds, serFFFTBAR).At(g).Add(ffBAR.LowerBound() / norm)

			// (b) crash latencies: one uniformly drawn crash set of size ε
			// per instance, shared by all algorithms for a fair comparison.
			scenario, err := sim.UniformCrashes(rng, cfg.Procs, eps)
			if err != nil {
				return nil, err
			}
			ffLatency := ffFTSA.LowerBound()
			ftsaCrash, err := sim.Run(ftsaS, scenario, nil)
			if err != nil {
				return nil, fmt.Errorf("expt: FTSA crash run: %w", err)
			}
			mcCrash, err := sim.Run(mcS, scenario, nil)
			if err != nil {
				return nil, fmt.Errorf("expt: MC-FTSA crash run: %w", err)
			}
			barCrash, err := sim.Run(barS, scenario, nil)
			if err != nil {
				return nil, fmt.Errorf("expt: FTBAR crash run: %w", err)
			}
			name := fmt.Sprintf(crashFmt, eps)
			get(crash, name).At(g).Add(ftsaCrash.Latency / norm)
			get(crash, fmt.Sprintf(serMCCrashFmt, eps)).At(g).Add(mcCrash.Latency / norm)
			get(crash, fmt.Sprintf(serBARCrashFmt, eps)).At(g).Add(barCrash.Latency / norm)
			get(crash, serFTSA0Crash).At(g).Add(ftsaS.LowerBound() / norm)
			get(crash, serFaultFree).At(g).Add(ffLatency / norm)
			for _, k := range cfg.ExtraCrashCounts {
				sck, err := sim.UniformCrashes(rng, cfg.Procs, k)
				if err != nil {
					return nil, err
				}
				resK, err := sim.Run(ftsaS, sck, nil)
				if err != nil {
					return nil, fmt.Errorf("expt: FTSA %d-crash run: %w", k, err)
				}
				get(crash, fmt.Sprintf(crashFmt, k)).At(g).Add(resK.Latency / norm)
			}

			// (c) overheads, relative to the fault-free FTSA latency
			// (the paper's FTSA* denominator).
			ovh := func(x float64) float64 { return 100 * (x - ffLatency) / ffLatency }
			get(overhead, name).At(g).Add(ovh(ftsaCrash.Latency))
			get(overhead, fmt.Sprintf(serMCCrashFmt, eps)).At(g).Add(ovh(mcCrash.Latency))
			get(overhead, fmt.Sprintf(serBARCrashFmt, eps)).At(g).Add(ovh(barCrash.Latency))
			get(overhead, serFTSA0Crash).At(g).Add(ovh(ftsaS.LowerBound()))
			for _, k := range cfg.ExtraCrashCounts {
				// Reuse the headline scenario machinery: a fresh uniform
				// draw with k crashes.
				sck, err := sim.UniformCrashes(rng, cfg.Procs, k)
				if err != nil {
					return nil, err
				}
				resK, err := sim.Run(ftsaS, sck, nil)
				if err != nil {
					return nil, err
				}
				get(overhead, fmt.Sprintf(crashFmt, k)).At(g).Add(ovh(resK.Latency))
			}
		}
	}
	return &FigureSet{Bounds: bounds, Crash: crash, Overhead: overhead}, nil
}

// RunFigure4 reproduces Figure 4: FTSA only, on 5 processors with ε=2,
// comparing 0, 1 and 2 crashes (panel a: normalized latency; panel b:
// overhead).
func RunFigure4(cfg Config) (*FigureSet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	eps := cfg.Epsilon
	crash := &Figure{
		Title:  fmt.Sprintf("FTSA crash latencies, ε=%d, m=%d", eps, cfg.Procs),
		XLabel: "Granularity", YLabel: "Normalized Latency",
	}
	overhead := &Figure{
		Title:  fmt.Sprintf("FTSA overhead, ε=%d, m=%d", eps, cfg.Procs),
		XLabel: "Granularity", YLabel: "Average OverHead (%)",
	}
	get := func(f *Figure, name string) *stats.Series {
		for _, s := range f.Series {
			if s.Name == name {
				return s
			}
		}
		s := stats.NewSeries(name)
		f.Series = append(f.Series, s)
		return s
	}
	for _, g := range cfg.Granularities {
		for i := 0; i < cfg.GraphsPerPoint; i++ {
			wcfg := workload.PaperConfig{
				DAG: workload.RandomDAGConfig{
					MinTasks: cfg.TasksMin, MaxTasks: cfg.TasksMax,
					MinVolume: 50, MaxVolume: 150,
					ShapeFactor: 1.0, EdgeDensity: 0.25,
				},
				Procs:    cfg.Procs,
				MinDelay: 0.5, MaxDelay: 1.0,
				MinCost: 10, MaxCost: 100,
				Granularity: g,
			}
			inst, err := workload.NewInstance(rng, wcfg)
			if err != nil {
				return nil, err
			}
			norm := normalizer(inst)
			s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps, Rng: rng})
			if err != nil {
				return nil, err
			}
			ff, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 0, Rng: rng})
			if err != nil {
				return nil, err
			}
			ffLatency := ff.LowerBound()
			ovh := func(x float64) float64 { return 100 * (x - ffLatency) / ffLatency }
			for k := 0; k <= eps; k++ {
				sc, err := sim.UniformCrashes(rng, cfg.Procs, k)
				if err != nil {
					return nil, err
				}
				res, err := sim.Run(s, sc, nil)
				if err != nil {
					return nil, err
				}
				get(crash, fmt.Sprintf(crashFmt, k)).At(g).Add(res.Latency / norm)
				get(overhead, fmt.Sprintf(crashFmt, k)).At(g).Add(ovh(res.Latency))
			}
			get(crash, serFaultFree).At(g).Add(ffLatency / norm)
		}
	}
	return &FigureSet{Crash: crash, Overhead: overhead}, nil
}
