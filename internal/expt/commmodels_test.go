package expt

import "testing"

func TestRunCommModels(t *testing.T) {
	cfg := DefaultCommModelsConfig()
	cfg.Granularities = []float64{0.4, 1.6}
	cfg.GraphsPerPoint = 4
	cfg.TasksMin, cfg.TasksMax = 40, 60
	cfg.Procs = 10
	fig, err := RunCommModels(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 algorithms × 3 models.
	if len(fig.Series) != 9 {
		t.Fatalf("series = %d, want 9", len(fig.Series))
	}
	mean := func(name string) float64 {
		for _, s := range fig.Series {
			if s.Name == name {
				tot := 0.0
				for _, p := range s.Points {
					tot += p.Mean()
				}
				return tot / float64(s.Len())
			}
		}
		t.Fatalf("missing series %q", name)
		return 0
	}
	// Port limits can only slow things down, and wider ports recover.
	for _, algo := range []string{"FTSA", "MC-FTSA", "FTBAR"} {
		free := mean(algo + " (free)")
		one := mean(algo + " (1-port)")
		four := mean(algo + " (4-port)")
		if one < free-1e-9 {
			t.Errorf("%s: one-port %.2f below contention-free %.2f", algo, one, free)
		}
		if four > one+1e-9 {
			t.Errorf("%s: 4-port %.2f above one-port %.2f", algo, four, one)
		}
	}
	// The one-port penalty must hit the chatty schedules (FTSA, FTBAR)
	// harder than MC-FTSA, which sends (ε+1)x fewer messages.
	ftsaPenalty := mean("FTSA (1-port)") / mean("FTSA (free)")
	mcPenalty := mean("MC-FTSA (1-port)") / mean("MC-FTSA (free)")
	if mcPenalty > ftsaPenalty {
		t.Errorf("MC-FTSA one-port penalty %.3f exceeds FTSA's %.3f — the paper's §7 conjecture direction fails",
			mcPenalty, ftsaPenalty)
	}
}

func TestRunCommModelsValidation(t *testing.T) {
	cfg := DefaultCommModelsConfig()
	cfg.Ports = 1
	if _, err := RunCommModels(cfg); err == nil {
		t.Error("K=1 multi-port accepted")
	}
	cfg = DefaultCommModelsConfig()
	cfg.Granularities = nil
	if _, err := RunCommModels(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
}
