package expt

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ftsched/internal/stats"
)

// AggRow is one aggregated grid point: every metric accumulated over the
// campaign's instances at a fixed (family, scheduler, ε, granularity) —
// plus the scenario coordinate in evaluation campaigns (empty otherwise).
type AggRow struct {
	Family      string
	Scheduler   SchedulerID
	Epsilon     int
	Granularity float64
	Scenario    string

	Lower, Upper       stats.Accumulator
	FaultFree, Crash   stats.Accumulator
	Overhead, Messages stats.Accumulator
	// Success and EvalP99 aggregate the evaluation dimension (zero-sample
	// accumulators in classic campaigns).
	Success, EvalP99 stats.Accumulator
}

// key identifies a row; cells sorted by index arrive in canonical grid
// order, so insertion order of rows is deterministic too.
type aggKey struct {
	family      string
	scheduler   SchedulerID
	epsilon     int
	granularity float64
	scenario    string
}

// Rows aggregates the per-cell results into one row per grid point. Cells
// are consumed in index order, which fixes the floating-point accumulation
// order and makes the aggregate a pure function of the spec. Rows are then
// presented grouped as (family, ε, scenario, granularity, scheduler) —
// following each dimension's order in the spec — which reads as one block
// per figure (scenario is absent in classic campaigns).
func (r *CampaignResult) Rows() []*AggRow {
	index := make(map[aggKey]*AggRow)
	var rows []*AggRow
	for i := range r.Cells {
		c := &r.Cells[i]
		k := aggKey{c.Family, c.Scheduler, c.Epsilon, c.Granularity, c.Scenario}
		row, ok := index[k]
		if !ok {
			row = &AggRow{Family: c.Family, Scheduler: c.Scheduler,
				Epsilon: c.Epsilon, Granularity: c.Granularity, Scenario: c.Scenario}
			index[k] = row
			rows = append(rows, row)
		}
		row.Lower.Add(c.Lower)
		row.Upper.Add(c.Upper)
		row.FaultFree.Add(c.FaultFree)
		row.Messages.Add(float64(c.Messages))
		if c.Scenario == "" {
			row.Crash.Add(c.Crash)
			row.Overhead.Add(c.Overhead)
			continue
		}
		row.Success.Add(c.SuccessRate)
		// A cell whose every trial failed has no latency sample; folding
		// its zero-valued Crash/Overhead/EvalP99 into the means would drag
		// the harshest scenarios' crash latency toward zero — the opposite
		// of reality. Latency aggregates cover surviving cells only; the
		// success column says how many those are.
		if c.SuccessRate > 0 {
			row.Crash.Add(c.Crash)
			row.Overhead.Add(c.Overhead)
			row.EvalP99.Add(c.EvalP99)
		}
	}
	famPos := positions(r.Campaign.Families)
	epsPos := make(map[int]int, len(r.Campaign.Epsilons))
	for i, e := range r.Campaign.Epsilons {
		epsPos[e] = i
	}
	granPos := make(map[float64]int, len(r.Campaign.Granularities))
	for i, g := range r.Campaign.Granularities {
		granPos[g] = i
	}
	schedPos := make(map[SchedulerID]int, len(r.Campaign.Schedulers))
	for i, s := range r.Campaign.Schedulers {
		schedPos[s] = i
	}
	scnPos := positions(r.Campaign.Scenarios)
	sort.SliceStable(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		if famPos[ra.Family] != famPos[rb.Family] {
			return famPos[ra.Family] < famPos[rb.Family]
		}
		if epsPos[ra.Epsilon] != epsPos[rb.Epsilon] {
			return epsPos[ra.Epsilon] < epsPos[rb.Epsilon]
		}
		// Scenario sorts before granularity so the ASCII writer's
		// per-(family, ε, scenario) blocks hold a scenario's whole
		// granularity curve instead of fragmenting per granularity.
		if scnPos[ra.Scenario] != scnPos[rb.Scenario] {
			return scnPos[ra.Scenario] < scnPos[rb.Scenario]
		}
		if granPos[ra.Granularity] != granPos[rb.Granularity] {
			return granPos[ra.Granularity] < granPos[rb.Granularity]
		}
		return schedPos[ra.Scheduler] < schedPos[rb.Scheduler]
	})
	return rows
}

func positions(names []string) map[string]int {
	out := make(map[string]int, len(names))
	for i, n := range names {
		out[n] = i
	}
	return out
}

// ftoa formats a float with the shortest exact representation, so emitted
// aggregates are byte-stable across runs and worker counts.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var campaignCSVHeader = []string{
	"family", "scheduler", "epsilon", "granularity", "n",
	"lb_mean", "lb_ci95", "ub_mean", "ub_ci95", "ff_mean",
	"crash_mean", "crash_ci95", "overhead_mean", "overhead_ci95", "msgs_mean",
}

// evalCampaignCSVHeader extends the classic header for campaigns carrying
// the scenario dimension. The classic header is emitted unchanged otherwise,
// so existing consumers never see surprise columns.
var evalCampaignCSVHeader = []string{
	"scenario", "trials", "success_mean", "success_ci95", "p99_mean", "p99_ci95",
}

// WriteCampaignCSV emits the aggregated campaign as CSV: one row per grid
// point with mean and 95% CI columns per metric. Evaluation campaigns gain
// scenario/success/p99 columns.
func WriteCampaignCSV(w io.Writer, r *CampaignResult) error {
	header := campaignCSVHeader
	hasEval := len(r.Campaign.Scenarios) > 0
	if hasEval {
		header = append(append([]string(nil), header...), evalCampaignCSVHeader...)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range r.Rows() {
		cols := []string{
			row.Family, string(row.Scheduler),
			strconv.Itoa(row.Epsilon), ftoa(row.Granularity),
			strconv.Itoa(row.Lower.N()),
			ftoa(row.Lower.Mean()), ftoa(row.Lower.CI95()),
			ftoa(row.Upper.Mean()), ftoa(row.Upper.CI95()),
			ftoa(row.FaultFree.Mean()),
			ftoa(row.Crash.Mean()), ftoa(row.Crash.CI95()),
			ftoa(row.Overhead.Mean()), ftoa(row.Overhead.CI95()),
			ftoa(row.Messages.Mean()),
		}
		if hasEval {
			cols = append(cols,
				row.Scenario, strconv.Itoa(r.Campaign.EvalTrials),
				ftoa(row.Success.Mean()), ftoa(row.Success.CI95()),
				ftoa(row.EvalP99.Mean()), ftoa(row.EvalP99.CI95()),
			)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// campaignJSONRow is the exported JSON shape of one aggregated row.
type campaignJSONRow struct {
	Family      string   `json:"family"`
	Scheduler   string   `json:"scheduler"`
	Epsilon     int      `json:"epsilon"`
	Granularity float64  `json:"granularity"`
	N           int      `json:"n"`
	Lower       jsonStat `json:"lb"`
	Upper       jsonStat `json:"ub"`
	FaultFree   jsonStat `json:"ff"`
	Crash       jsonStat `json:"crash"`
	Overhead    jsonStat `json:"overhead"`
	Messages    jsonStat `json:"msgs"`
	// Evaluation-dimension fields, present only when the campaign set
	// Scenarios.
	Scenario string    `json:"scenario,omitempty"`
	Success  *jsonStat `json:"success,omitempty"`
	EvalP99  *jsonStat `json:"p99,omitempty"`
}

type jsonStat struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

func jstat(a *stats.Accumulator) jsonStat { return jsonStat{Mean: a.Mean(), CI95: a.CI95()} }

// WriteCampaignJSON emits the aggregated campaign as a JSON document with
// the spec and one object per grid point.
func WriteCampaignJSON(w io.Writer, r *CampaignResult) error {
	rows := r.Rows()
	out := struct {
		Campaign Campaign          `json:"campaign"`
		Rows     []campaignJSONRow `json:"rows"`
	}{Campaign: r.Campaign, Rows: make([]campaignJSONRow, 0, len(rows))}
	for _, row := range rows {
		jr := campaignJSONRow{
			Family: row.Family, Scheduler: string(row.Scheduler),
			Epsilon: row.Epsilon, Granularity: row.Granularity,
			N:     row.Lower.N(),
			Lower: jstat(&row.Lower), Upper: jstat(&row.Upper),
			FaultFree: jstat(&row.FaultFree), Crash: jstat(&row.Crash),
			Overhead: jstat(&row.Overhead), Messages: jstat(&row.Messages),
		}
		if row.Scenario != "" {
			jr.Scenario = row.Scenario
			s, p := jstat(&row.Success), jstat(&row.EvalP99)
			jr.Success, jr.EvalP99 = &s, &p
		}
		out.Rows = append(out.Rows, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteCampaignASCII renders the aggregate as a fixed-width table, one
// header per (family, ε) block — per (family, ε, scenario) in evaluation
// campaigns, which also gain success-rate and p99 columns.
func WriteCampaignASCII(w io.Writer, r *CampaignResult) error {
	rows := r.Rows()
	hasEval := len(r.Campaign.Scenarios) > 0
	lastBlock := ""
	for _, row := range rows {
		block := fmt.Sprintf("%s ε=%d", row.Family, row.Epsilon)
		if hasEval {
			block = fmt.Sprintf("%s scenario=%s (%d trials/cell)", block, row.Scenario, r.Campaign.EvalTrials)
		}
		if block != lastBlock {
			if lastBlock != "" {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			lastBlock = block
			if _, err := fmt.Fprintf(w, "# %s: campaign %q, m=%d, %d instances/point\n",
				block, r.Campaign.Name, r.Campaign.Procs, r.Campaign.Instances); err != nil {
				return err
			}
			cols := "%-9s %5s %4s %9s %9s %9s %9s %9s %9s"
			args := []any{"scheduler", "g", "n", "lb", "ub", "ff", "crash", "ovh%", "msgs"}
			if hasEval {
				cols += " %9s %9s"
				args = append(args, "success", "p99")
			}
			if _, err := fmt.Fprintf(w, cols+"\n", args...); err != nil {
				return err
			}
		}
		cols := "%-9s %5.2f %4d %9.3f %9.3f %9.3f %9.3f %9.2f %9.0f"
		args := []any{row.Scheduler, row.Granularity, row.Lower.N(),
			row.Lower.Mean(), row.Upper.Mean(), row.FaultFree.Mean(),
			row.Crash.Mean(), row.Overhead.Mean(), row.Messages.Mean()}
		if hasEval {
			cols += " %9.4f %9.3f"
			args = append(args, row.Success.Mean(), row.EvalP99.Mean())
		}
		if _, err := fmt.Fprintf(w, cols+"\n", args...); err != nil {
			return err
		}
	}
	return nil
}

// CampaignMetric selects which per-cell metric a derived figure plots.
type CampaignMetric string

// The plottable campaign metrics.
const (
	MetricLower    CampaignMetric = "lb"
	MetricUpper    CampaignMetric = "ub"
	MetricCrash    CampaignMetric = "crash"
	MetricOverhead CampaignMetric = "overhead"
)

func (m CampaignMetric) pick(row *AggRow) (*stats.Accumulator, error) {
	switch m {
	case MetricLower:
		return &row.Lower, nil
	case MetricUpper:
		return &row.Upper, nil
	case MetricCrash:
		return &row.Crash, nil
	case MetricOverhead:
		return &row.Overhead, nil
	default:
		return nil, fmt.Errorf("expt: unknown campaign metric %q", m)
	}
}

// CampaignFigure projects one (family, ε, metric) slice of the campaign
// into a Figure — one series per scheduler over the granularity sweep — so
// campaign output feeds the existing ASCII/CSV/SVG figure writers.
func CampaignFigure(r *CampaignResult, family string, epsilon int, metric CampaignMetric) (*Figure, error) {
	ylabel := "Normalized Latency"
	if metric == MetricOverhead {
		ylabel = "Average OverHead (%)"
	}
	f := &Figure{
		Title:  fmt.Sprintf("%s %s, ε=%d, m=%d", family, metric, epsilon, r.Campaign.Procs),
		XLabel: "Granularity", YLabel: ylabel,
	}
	series := make(map[SchedulerID]*stats.Series)
	for _, row := range r.Rows() {
		if row.Family != family || row.Epsilon != epsilon {
			continue
		}
		acc, err := metric.pick(row)
		if err != nil {
			return nil, err
		}
		s, ok := series[row.Scheduler]
		if !ok {
			s = stats.NewSeries(fmt.Sprintf("%s-%s", row.Scheduler, metric))
			series[row.Scheduler] = s
			f.Series = append(f.Series, s)
		}
		// Re-accumulate the already aggregated mean so the series point
		// carries the campaign's per-point average.
		s.At(row.Granularity).Add(acc.Mean())
	}
	if len(f.Series) == 0 {
		return nil, fmt.Errorf("expt: campaign has no rows for family %q ε=%d", family, epsilon)
	}
	return f, nil
}
