package expt

import (
	"testing"
)

func TestRunStarvation(t *testing.T) {
	cfg := StarvationConfig{
		Epsilon:        2,
		Procs:          8,
		TaskCounts:     []int{10, 60},
		GraphsPerPoint: 4,
		Seed:           1,
	}
	fig, err := RunStarvation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	var strict, control *seriesView
	for _, s := range fig.Series {
		switch s.Name {
		case "MC-FTSA strict starvation":
			strict = &seriesView{means: s.Means(), xs: s.Xs}
		case "FTSA starvation (control)":
			control = &seriesView{means: s.Means()}
		}
	}
	if strict == nil || control == nil {
		t.Fatal("missing series")
	}
	// The control must be identically zero (Theorem 4.1).
	for i, m := range control.means {
		if m != 0 {
			t.Errorf("FTSA starved at point %d: %g%%", i, m)
		}
	}
	// Starvation must grow with graph size and be severe for deep graphs.
	if strict.means[len(strict.means)-1] < strict.means[0] {
		t.Errorf("starvation not growing with size: %v", strict.means)
	}
	if strict.means[len(strict.means)-1] < 50 {
		t.Errorf("expected severe starvation at v=60, got %.1f%%", strict.means[len(strict.means)-1])
	}
}

type seriesView struct {
	means []float64
	xs    []float64
}

func TestRunStarvationValidation(t *testing.T) {
	cfg := DefaultStarvationConfig()
	cfg.Epsilon = 0
	if _, err := RunStarvation(cfg); err == nil {
		t.Error("ε=0 accepted")
	}
	cfg = DefaultStarvationConfig()
	cfg.TaskCounts = nil
	if _, err := RunStarvation(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
}
