package expt

import (
	"fmt"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/platform"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
	"ftsched/internal/workload"
)

// StarvationConfig parameterizes experiment X4 (ours): quantifying finding
// F1 of EXPERIMENTS.md — under strict matched-only communication, how often
// does a *single* processor crash starve an MC-FTSA schedule, as a function
// of graph size (and hence depth)?
type StarvationConfig struct {
	Epsilon        int
	Procs          int
	TaskCounts     []int
	GraphsPerPoint int
	Seed           int64
}

// DefaultStarvationConfig returns the X4 setup: ε=2 on 10 processors,
// graph sizes from 10 to 150 tasks.
func DefaultStarvationConfig() StarvationConfig {
	return StarvationConfig{
		Epsilon:        2,
		Procs:          10,
		TaskCounts:     []int{10, 20, 40, 80, 150},
		GraphsPerPoint: 20,
		Seed:           1,
	}
}

// RunStarvation measures, per graph size:
//
//   - the fraction of single-crash scenarios that starve the schedule under
//     strict matched semantics (no replica of some exit task can run);
//   - the fraction of single-crash scenarios where the degraded-mode
//     (rerouting) latency exceeds the schedule's upper bound — the
//     corollary of F1 that the MC-FTSA "guarantee" is soft.
//
// FTSA is measured alongside as a control: its full communication pattern
// must show zero starvation and zero bound violations.
func RunStarvation(cfg StarvationConfig) (*Figure, error) {
	if cfg.Epsilon < 1 || cfg.Epsilon+1 > cfg.Procs {
		return nil, fmt.Errorf("expt: starvation needs 1 <= ε < m, got ε=%d m=%d", cfg.Epsilon, cfg.Procs)
	}
	if cfg.GraphsPerPoint < 1 || len(cfg.TaskCounts) == 0 {
		return nil, fmt.Errorf("expt: empty starvation sweep")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fig := &Figure{
		Title:  fmt.Sprintf("X4: single-crash starvation under strict matched semantics, ε=%d, m=%d", cfg.Epsilon, cfg.Procs),
		XLabel: "Tasks", YLabel: "Rate (%)",
	}
	strict := stats.NewSeries("MC-FTSA strict starvation")
	soft := stats.NewSeries("MC-FTSA degraded bound violations")
	control := stats.NewSeries("FTSA starvation (control)")
	fig.Series = []*stats.Series{strict, soft, control}

	for _, v := range cfg.TaskCounts {
		for i := 0; i < cfg.GraphsPerPoint; i++ {
			wcfg := workload.PaperConfig{
				DAG: workload.RandomDAGConfig{
					MinTasks: v, MaxTasks: v,
					MinVolume: 50, MaxVolume: 150,
					ShapeFactor: 1.0, EdgeDensity: 0.25,
				},
				Procs:    cfg.Procs,
				MinDelay: 0.5, MaxDelay: 1.0,
				MinCost: 10, MaxCost: 100,
				Granularity: 1.0,
			}
			inst, err := workload.NewInstance(rng, wcfg)
			if err != nil {
				return nil, err
			}
			mc, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				core.MCFTSAOptions{Options: core.Options{Epsilon: cfg.Epsilon, Rng: rng}})
			if err != nil {
				return nil, err
			}
			ftsa, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs,
				core.Options{Epsilon: cfg.Epsilon, Rng: rng})
			if err != nil {
				return nil, err
			}
			starved, violated, ctrl := 0, 0, 0
			for j := 0; j < cfg.Procs; j++ {
				sc, err := sim.CrashAtZero(cfg.Procs, platform.ProcID(j))
				if err != nil {
					return nil, err
				}
				if _, err := sim.RunWithOptions(mc, sc, sim.Options{StrictMatched: true}); err != nil {
					starved++
				}
				res, err := sim.Run(mc, sc, nil)
				if err != nil {
					// Degraded mode cannot starve with a single crash and
					// ε >= 1; treat a failure here as a bug.
					return nil, fmt.Errorf("expt: degraded MC-FTSA failed: %w", err)
				}
				if res.Latency > mc.UpperBound()+1e-7 {
					violated++
				}
				if _, err := sim.Run(ftsa, sc, nil); err != nil {
					ctrl++
				}
			}
			x := float64(v)
			strict.At(x).Add(100 * float64(starved) / float64(cfg.Procs))
			soft.At(x).Add(100 * float64(violated) / float64(cfg.Procs))
			control.At(x).Add(100 * float64(ctrl) / float64(cfg.Procs))
		}
	}
	return fig, nil
}
