package expt

import (
	"fmt"
	"io"
	"strings"
)

// WriteASCII renders a figure as a fixed-width table: one row per
// granularity, one column per series (mean over the batch).
func WriteASCII(w io.Writer, f *Figure) error {
	if f == nil || len(f.Series) == 0 {
		return fmt.Errorf("expt: empty figure")
	}
	if _, err := fmt.Fprintf(w, "# %s\n", f.Title); err != nil {
		return err
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
		if widths[i] < 10 {
			widths[i] = 10
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	xs := f.Series[0].Xs
	for i, x := range xs {
		cells := []string{fmt.Sprintf("%.2f", x)}
		for _, s := range f.Series {
			if i < len(s.Points) {
				cells = append(cells, fmt.Sprintf("%.3f", s.Points[i].Mean()))
			} else {
				cells = append(cells, "-")
			}
		}
		if err := writeRow(cells); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCIIStats renders a figure like WriteASCII but with a mean±ci95
// column per series, exposing the batch variability behind each point.
func WriteASCIIStats(w io.Writer, f *Figure) error {
	if f == nil || len(f.Series) == 0 {
		return fmt.Errorf("expt: empty figure")
	}
	if _, err := fmt.Fprintf(w, "# %s (mean ± 95%% CI over the batch)\n", f.Title); err != nil {
		return err
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
		if widths[i] < 16 {
			widths[i] = 16
		}
	}
	row := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
		return err
	}
	if err := row(header); err != nil {
		return err
	}
	xs := f.Series[0].Xs
	for i, x := range xs {
		cells := []string{fmt.Sprintf("%.2f", x)}
		for _, s := range f.Series {
			if i < len(s.Points) {
				p := s.Points[i]
				cells = append(cells, fmt.Sprintf("%.2f ± %.2f", p.Mean(), p.CI95()))
			} else {
				cells = append(cells, "-")
			}
		}
		if err := row(cells); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders a figure as CSV with a header row; suitable for plotting
// with any external tool.
func WriteCSV(w io.Writer, f *Figure) error {
	if f == nil || len(f.Series) == 0 {
		return fmt.Errorf("expt: empty figure")
	}
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	xs := f.Series[0].Xs
	for i, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%g", s.Points[i].Mean()))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable1 renders Table 1 in the paper's layout.
func WriteTable1(w io.Writer, rows []Table1Row) error {
	if _, err := fmt.Fprintf(w, "%-16s %10s %10s %10s %12s\n",
		"Number of tasks", "FTSA", "MC-FTSA", "FTBAR", "FTBAR/FTSA"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-16d %10.3f %10.3f %10.3f %12.1f\n",
			r.Tasks, r.FTSA, r.MCFTSA, r.FTBAR, r.RatioBF); err != nil {
			return err
		}
	}
	return nil
}
