package expt

import (
	"fmt"
	"io"

	"ftsched/internal/plot"
)

// ToChart converts a figure into a renderable chart (mean per point).
func ToChart(f *Figure) (*plot.Chart, error) {
	if f == nil || len(f.Series) == 0 {
		return nil, fmt.Errorf("expt: empty figure")
	}
	c := &plot.Chart{Title: f.Title, XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		if err := c.Add(s.Name, s.Xs, s.Means()); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// WriteSVG renders a figure as a standalone SVG line chart — the visual
// counterpart of the paper's plots.
func WriteSVG(w io.Writer, f *Figure) error {
	c, err := ToChart(f)
	if err != nil {
		return err
	}
	return c.WriteSVG(w)
}
