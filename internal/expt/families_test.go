package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunFamilies(t *testing.T) {
	cfg := DefaultFamiliesConfig()
	rows, err := RunFamilies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Tasks <= 0 || r.Edges <= 0 {
			t.Errorf("%s: degenerate shape %d/%d", r.Family, r.Tasks, r.Edges)
		}
		if r.FTSALB <= 0 || r.FTSAUB < r.FTSALB {
			t.Errorf("%s: FTSA bounds %g/%g", r.Family, r.FTSALB, r.FTSAUB)
		}
		if r.MCLB <= 0 || r.MCUB < r.MCLB-1e-9 {
			t.Errorf("%s: MC bounds %g/%g", r.Family, r.MCLB, r.MCUB)
		}
		// The linear message bound is structural: MC messages <= e(ε+1),
		// FTSA messages <= e(ε+1)².
		if r.MCMsgs > r.Edges*(cfg.Epsilon+1) {
			t.Errorf("%s: MC messages %d exceed e(ε+1)", r.Family, r.MCMsgs)
		}
		if r.FTSAMsgs < r.MCMsgs {
			t.Errorf("%s: FTSA messages %d below MC %d", r.Family, r.FTSAMsgs, r.MCMsgs)
		}
	}
	var buf bytes.Buffer
	if err := WriteFamilies(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cholesky-8") {
		t.Error("table missing cholesky row")
	}
}

func TestRunFamiliesValidation(t *testing.T) {
	cfg := DefaultFamiliesConfig()
	cfg.Epsilon = cfg.Procs
	if _, err := RunFamilies(cfg); err == nil {
		t.Error("ε >= m accepted")
	}
}
