package expt

import (
	"fmt"
	"math/rand"
	"strconv"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// SchedulerID names one scheduler of a campaign's grid dimension. Any
// scheduler-registry name or alias is accepted (matched case-insensitively),
// so a registry-only variant like "ftsa-ins" can join a sweep without any
// change to this package.
type SchedulerID string

// The paper's scheduler grid dimension, under its display spellings (which
// the registry resolves as aliases).
const (
	SchedFTSA   SchedulerID = "FTSA"
	SchedMCFTSA SchedulerID = "MC-FTSA"
	SchedFTBAR  SchedulerID = "FTBAR"
)

// AllSchedulers returns the paper's scheduler dimension in canonical order:
// the three fault-tolerant schedulers Figures 1-3 compare. The registry may
// hold more (HEFT, ftsa-ins); campaigns opt into those explicitly.
func AllSchedulers() []SchedulerID {
	return []SchedulerID{SchedFTSA, SchedMCFTSA, SchedFTBAR}
}

// Campaign is the declarative spec of one experiment campaign: the cross
// product of its dimension slices is the grid of cells the engine executes.
// A cell is one (scheduler, ε, granularity, family, instance) tuple; every
// cell is seeded deterministically from Seed and its own coordinates, so the
// result of a campaign is a pure function of the spec — independent of
// worker count, scheduling order, or interruption/resume boundaries.
type Campaign struct {
	// Name labels the campaign in checkpoints and reports.
	Name string `json:"name"`
	// Schedulers is the algorithm dimension (default: all three).
	Schedulers []SchedulerID `json:"schedulers"`
	// Epsilons is the ε dimension (the paper sweeps 1, 2, 5).
	Epsilons []int `json:"epsilons"`
	// Granularities is the x-axis sweep (the paper uses 0.2..2.0).
	Granularities []float64 `json:"granularities"`
	// Families lists workload families: "random" (the paper's layered
	// random DAGs) or any name in CampaignFamilies.
	Families []string `json:"families"`
	// Instances is the number of independent instances per grid point (the
	// paper averages 60 graphs per point).
	Instances int `json:"instances"`
	// Procs is the platform size.
	Procs int `json:"procs"`
	// TasksMin and TasksMax bound the random-family task count.
	TasksMin int `json:"tasks_min"`
	TasksMax int `json:"tasks_max"`
	// Seed is the base seed every per-cell seed derives from.
	Seed int64 `json:"seed"`
	// Scenarios, when non-empty, adds a failure-scenario dimension to the
	// grid: each cell runs the batch fault-injection engine (sim.Evaluate,
	// EvalTrials scenarios per cell) instead of the single-crash replay,
	// recording success rate and latency tail alongside the usual metrics.
	// Entries are sim.ParseScenarioSpec strings ("uniform:2", "exp:0.001",
	// "weibull:1.5:2000", ...). Both fields are omitted from the JSON
	// encoding when unset, so legacy campaign fingerprints — and therefore
	// their checkpoints — stay valid.
	Scenarios []string `json:"scenarios,omitempty"`
	// EvalTrials is the per-cell trial count of the evaluation dimension
	// (required exactly when Scenarios is set).
	EvalTrials int `json:"eval_trials,omitempty"`
}

// Cell identifies one point of a campaign grid. Index is the cell's rank in
// the canonical enumeration order (families, then granularity, then
// instance, then ε, then scenario, then scheduler — innermost last), which
// is also the order the aggregator consumes results in. All cells sharing
// one problem instance are consecutive, so the engine's prepared-instance
// cache stays small while capturing every reuse.
type Cell struct {
	Index       int         `json:"i"`
	Family      string      `json:"family"`
	Epsilon     int         `json:"eps"`
	Granularity float64     `json:"g"`
	Instance    int         `json:"inst"`
	Scheduler   SchedulerID `json:"sched"`
	// Scenario is the cell's failure-scenario spec; empty in campaigns
	// without the evaluation dimension.
	Scenario string `json:"scn,omitempty"`
}

// CellResult is the measured outcome of one cell. Latencies are normalized
// per instance like the paper's figures (see normalizer). Overhead is the
// paper's FTSA*-relative percentage: 100·(crash − faultfree)/faultfree.
//
// In evaluation campaigns (Campaign.Scenarios set) Crash and Overhead are
// derived from the mean latency of the cell's successful trials, and the
// success-rate/tail fields below are populated (their zero values are
// omitted from checkpoints, so legacy lines parse unchanged).
type CellResult struct {
	Cell
	Tasks     int     `json:"tasks"`
	Edges     int     `json:"edges"`
	Lower     float64 `json:"lb"`
	Upper     float64 `json:"ub"`
	FaultFree float64 `json:"ff"`
	Crash     float64 `json:"crash"`
	Overhead  float64 `json:"ovh"`
	Messages  int     `json:"msgs"`
	// SuccessRate is the fraction of the cell's EvalTrials scenarios the
	// schedule survived; EvalP99 the normalized p99 latency of successes.
	SuccessRate float64 `json:"sr,omitempty"`
	EvalP99     float64 `json:"p99,omitempty"`
}

// campaignFamilies maps structured-family names to graph builders; "random"
// is handled separately because its graph is drawn per instance seed.
var campaignFamilies = []struct {
	name  string
	build func() (*dag.Graph, error)
}{
	{"gauss", func() (*dag.Graph, error) { return workload.GaussianElimination(16, 100) }},
	{"fft", func() (*dag.Graph, error) { return workload.FFT(6, 100) }},
	{"cholesky", func() (*dag.Graph, error) { return workload.Cholesky(8, 100) }},
	{"lu", func() (*dag.Graph, error) { return workload.LU(6, 100) }},
	{"stencil", func() (*dag.Graph, error) { return workload.Stencil(12, 12, 100) }},
	{"forkjoin", func() (*dag.Graph, error) { return workload.ForkJoin(10, 5, 100) }},
	{"pipeline", func() (*dag.Graph, error) { return workload.Pipeline(10, 4, 100) }},
	{"intree", func() (*dag.Graph, error) { return workload.InTree(2, 7, 100) }},
}

// CampaignFamilies returns the recognized family names: "random" first, then
// the structured families.
func CampaignFamilies() []string {
	out := []string{"random"}
	for _, f := range campaignFamilies {
		out = append(out, f.name)
	}
	return out
}

func familyBuilder(name string) (func() (*dag.Graph, error), bool) {
	for _, f := range campaignFamilies {
		if f.name == name {
			return f.build, true
		}
	}
	return nil, false
}

// PaperCampaign returns the preset reproducing the Figure 1-3 sweeps in one
// campaign: all three schedulers × ε ∈ {1,2,5} × granularity 0.2..2.0 × 60
// random instances on 20 processors.
func PaperCampaign() Campaign {
	return Campaign{
		Name:          "paper-figures-1-3",
		Schedulers:    AllSchedulers(),
		Epsilons:      []int{1, 2, 5},
		Granularities: PaperGranularities(),
		Families:      []string{"random"},
		Instances:     60,
		Procs:         20,
		TasksMin:      100,
		TasksMax:      150,
		Seed:          1,
	}
}

// Validate checks the campaign spec. Duplicate dimension values are
// rejected: duplicated cells would accumulate the identical sample twice
// and silently deflate the confidence intervals.
func (c Campaign) Validate() error {
	if len(c.Schedulers) == 0 {
		return fmt.Errorf("expt: campaign has no schedulers")
	}
	// Scheduler names resolve through the registry, so the campaign grid
	// accepts exactly what the rest of the system serves; duplicates are
	// detected on canonical names, catching a name and its alias together.
	seenSched := make(map[string]bool, len(c.Schedulers))
	for _, s := range c.Schedulers {
		info, ok := sched.LookupInfo(string(s))
		if !ok {
			return fmt.Errorf("expt: %w", sched.UnknownSchedulerError(string(s)))
		}
		if seenSched[info.Name()] {
			return fmt.Errorf("expt: duplicate scheduler %q", s)
		}
		seenSched[info.Name()] = true
		if !info.FaultTolerant {
			for _, e := range c.Epsilons {
				if e != 0 {
					return fmt.Errorf("expt: scheduler %q is not fault-tolerant; it cannot sweep ε=%d", s, e)
				}
			}
		}
	}
	if len(c.Epsilons) == 0 {
		return fmt.Errorf("expt: campaign has no ε values")
	}
	seenEps := make(map[int]bool, len(c.Epsilons))
	for _, e := range c.Epsilons {
		if e < 0 || e+1 > c.Procs {
			return fmt.Errorf("expt: ε=%d needs more processors than %d", e, c.Procs)
		}
		if seenEps[e] {
			return fmt.Errorf("expt: duplicate ε=%d", e)
		}
		seenEps[e] = true
	}
	if len(c.Granularities) == 0 {
		return fmt.Errorf("expt: campaign has no granularities")
	}
	seenGran := make(map[float64]bool, len(c.Granularities))
	for _, g := range c.Granularities {
		if g <= 0 {
			return fmt.Errorf("expt: non-positive granularity %g", g)
		}
		if seenGran[g] {
			return fmt.Errorf("expt: duplicate granularity %g", g)
		}
		seenGran[g] = true
	}
	if len(c.Families) == 0 {
		return fmt.Errorf("expt: campaign has no families")
	}
	seenFam := make(map[string]bool, len(c.Families))
	for _, f := range c.Families {
		if seenFam[f] {
			return fmt.Errorf("expt: duplicate family %q", f)
		}
		seenFam[f] = true
		if f == "random" {
			continue
		}
		if _, ok := familyBuilder(f); !ok {
			return fmt.Errorf("expt: unknown family %q (known: %v)", f, CampaignFamilies())
		}
	}
	if c.Instances < 1 {
		return fmt.Errorf("expt: need at least one instance per cell, got %d", c.Instances)
	}
	if c.Procs < 1 {
		return fmt.Errorf("expt: need at least one processor, got %d", c.Procs)
	}
	if c.TasksMin < 1 || c.TasksMax < c.TasksMin {
		return fmt.Errorf("expt: invalid task range [%d,%d]", c.TasksMin, c.TasksMax)
	}
	if len(c.Scenarios) == 0 && c.EvalTrials != 0 {
		return fmt.Errorf("expt: eval_trials=%d without scenarios; add a scenario dimension or drop it", c.EvalTrials)
	}
	if len(c.Scenarios) > 0 {
		if c.EvalTrials < 1 {
			return fmt.Errorf("expt: scenario dimension needs eval_trials >= 1, got %d", c.EvalTrials)
		}
		seenScn := make(map[string]bool, len(c.Scenarios))
		for _, raw := range c.Scenarios {
			sp, err := sim.ParseScenarioSpec(raw)
			if err != nil {
				return fmt.Errorf("expt: %w", err)
			}
			gen, err := sp.Generator()
			if err != nil {
				return fmt.Errorf("expt: %w", err)
			}
			if err := gen.Check(c.Procs); err != nil {
				return fmt.Errorf("expt: scenario %q: %w", raw, err)
			}
			// Duplicates are detected on the canonical rendering, catching
			// "exp:0.001" against "exponential:1e-3".
			if key := sp.String(); seenScn[key] {
				return fmt.Errorf("expt: duplicate scenario %q", raw)
			} else {
				seenScn[key] = true
			}
		}
	}
	return nil
}

// numScenarios is the size of the scenario dimension (1 when absent: the
// classic single-crash replay).
func (c Campaign) numScenarios() int {
	if len(c.Scenarios) == 0 {
		return 1
	}
	return len(c.Scenarios)
}

// NumCells returns the size of the campaign grid.
func (c Campaign) NumCells() int {
	return len(c.Families) * len(c.Epsilons) * len(c.Granularities) * c.Instances *
		len(c.Schedulers) * c.numScenarios()
}

// Cells enumerates the grid in canonical order.
func (c Campaign) Cells() []Cell {
	scenarios := c.Scenarios
	if len(scenarios) == 0 {
		scenarios = []string{""}
	}
	cells := make([]Cell, 0, c.NumCells())
	i := 0
	for _, fam := range c.Families {
		for _, g := range c.Granularities {
			for inst := 0; inst < c.Instances; inst++ {
				for _, eps := range c.Epsilons {
					for _, scn := range scenarios {
						for _, s := range c.Schedulers {
							cells = append(cells, Cell{
								Index: i, Family: fam, Epsilon: eps,
								Granularity: g, Instance: inst, Scheduler: s,
								Scenario: scn,
							})
							i++
						}
					}
				}
			}
		}
	}
	return cells
}

// derive hashes the base seed and a list of coordinate strings into a
// 63-bit stream seed — sim.DeriveSeed, the stable FNV-1a discipline shared
// with the auto-tuner.
func derive(base int64, parts ...string) int64 {
	return sim.DeriveSeed(base, parts...)
}

func gstr(g float64) string { return strconv.FormatFloat(g, 'g', -1, 64) }

// instanceSeed depends only on (family, granularity, instance): all
// schedulers and ε values of a grid point see the same problem instance,
// mirroring the paper's shared-workload comparison.
func (c Campaign) instanceSeed(cell Cell) int64 {
	return derive(c.Seed, "inst", cell.Family, gstr(cell.Granularity), strconv.Itoa(cell.Instance))
}

// schedSeed feeds the scheduler's tie-breaking RNG; it additionally depends
// on the scheduler and ε so independent cells never share RNG streams.
func (c Campaign) schedSeed(cell Cell) int64 {
	return derive(c.Seed, "sched", cell.Family, gstr(cell.Granularity),
		strconv.Itoa(cell.Instance), string(cell.Scheduler), strconv.Itoa(cell.Epsilon))
}

// faultFreeSeed feeds the ε=0 FTSA baseline run of a cell.
func (c Campaign) faultFreeSeed(cell Cell) int64 {
	return derive(c.Seed, "ff", cell.Family, gstr(cell.Granularity), strconv.Itoa(cell.Instance))
}

// crashSeed draws the cell's crash scenario. It is shared by all schedulers
// of one (instance, ε) pair, so crash latencies compare like against like.
func (c Campaign) crashSeed(cell Cell) int64 {
	return derive(c.Seed, "crash", cell.Family, gstr(cell.Granularity),
		strconv.Itoa(cell.Instance), strconv.Itoa(cell.Epsilon))
}

// evalSeed feeds the evaluation dimension's per-trial scenario draws. Like
// crashSeed it excludes the scheduler, so every scheduler of one
// (instance, ε, scenario) point faces the identical failure sample.
func (c Campaign) evalSeed(cell Cell) int64 {
	return derive(c.Seed, "eval", cell.Family, gstr(cell.Granularity),
		strconv.Itoa(cell.Instance), strconv.Itoa(cell.Epsilon), cell.Scenario)
}

// instance materializes the cell's problem instance from its deterministic
// seed.
func (c Campaign) instance(cell Cell) (*workload.Instance, error) {
	rng := rand.New(rand.NewSource(c.instanceSeed(cell)))
	wcfg := workload.PaperConfig{
		DAG: workload.RandomDAGConfig{
			MinTasks: c.TasksMin, MaxTasks: c.TasksMax,
			MinVolume: 50, MaxVolume: 150,
			ShapeFactor: 1.0, EdgeDensity: 0.25,
		},
		Procs:    c.Procs,
		MinDelay: 0.5, MaxDelay: 1.0,
		MinCost: 10, MaxCost: 100,
		Granularity: cell.Granularity,
	}
	if cell.Family == "random" {
		return workload.NewInstance(rng, wcfg)
	}
	build, ok := familyBuilder(cell.Family)
	if !ok {
		return nil, fmt.Errorf("expt: unknown family %q", cell.Family)
	}
	g, err := build()
	if err != nil {
		return nil, err
	}
	return workload.NewInstanceForGraph(rng, g, wcfg)
}

// BuildInstance materializes one campaign-style workload instance outside a
// campaign grid — the construction Campaign.instance uses, with the same
// instance-seed derivation, so the instance at coordinates (family,
// granularity, index) under a given base seed is identical whether a
// campaign cell or a standalone caller (ftexp's tune-campaign mode) builds
// it. The family must be "random" or one of CampaignFamilies.
func BuildInstance(family string, granularity float64, procs, tasksMin, tasksMax, instance int, seed int64) (*workload.Instance, error) {
	if family != "random" {
		if _, ok := familyBuilder(family); !ok {
			return nil, fmt.Errorf("expt: unknown family %q (known: %v)", family, CampaignFamilies())
		}
	}
	if granularity <= 0 {
		return nil, fmt.Errorf("expt: non-positive granularity %g", granularity)
	}
	if procs < 1 {
		return nil, fmt.Errorf("expt: need at least one processor, got %d", procs)
	}
	if tasksMin < 1 || tasksMax < tasksMin {
		return nil, fmt.Errorf("expt: invalid task range [%d,%d]", tasksMin, tasksMax)
	}
	if instance < 0 {
		return nil, fmt.Errorf("expt: negative instance index %d", instance)
	}
	c := Campaign{Procs: procs, TasksMin: tasksMin, TasksMax: tasksMax, Seed: seed}
	return c.instance(Cell{Family: family, Granularity: granularity, Instance: instance})
}

// prepared bundles everything about a cell that is independent of its
// scheduler and ε: the instance itself, its normalizer, the shared static
// bottom levels and the fault-free FTSA baseline. All of it derives from
// seeds that exclude the scheduler and ε coordinates, so the engine caches
// one prepared value per (family, granularity, instance) point instead of
// recomputing it for every scheduler × ε cell. All fields are read-only
// once built, making a prepared instance safe to share across workers.
type prepared struct {
	inst      *workload.Instance
	norm      float64
	bl        []float64
	ffLatency float64
}

// prepare materializes the scheduler-independent part of a cell.
func (c Campaign) prepare(cell Cell) (*prepared, error) {
	inst, err := c.instance(cell)
	if err != nil {
		return nil, fmt.Errorf("expt: cell %d instance: %w", cell.Index, err)
	}
	norm := normalizer(inst)
	if norm <= 0 {
		return nil, fmt.Errorf("expt: cell %d has degenerate normalizer", cell.Index)
	}
	bl, err := sched.AvgBottomLevels(inst.Graph, inst.Costs, inst.Platform)
	if err != nil {
		return nil, err
	}
	ffrng := rand.New(rand.NewSource(c.faultFreeSeed(cell)))
	ff, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs,
		core.Options{Epsilon: 0, Rng: ffrng, BottomLevels: bl})
	if err != nil {
		return nil, fmt.Errorf("expt: cell %d fault-free baseline: %w", cell.Index, err)
	}
	return &prepared{inst: inst, norm: norm, bl: bl, ffLatency: ff.LowerBound()}, nil
}

// RunCell executes one cell from scratch: materialize the instance, run the
// cell's scheduler plus the fault-free FTSA baseline (sharing one
// bottom-level computation), and replay the schedule under the cell's crash
// scenario. It is a pure function of (campaign spec, cell coordinates),
// which is what makes the engine's parallelism and resume invisible in the
// results. The engine itself calls runPrepared with a cached prepared
// value; the result is identical either way.
func (c Campaign) RunCell(cell Cell) (CellResult, error) {
	p, err := c.prepare(cell)
	if err != nil {
		return CellResult{Cell: cell}, err
	}
	return c.runPrepared(cell, p)
}

// runPrepared runs the scheduler-and-ε-specific part of a cell against a
// prepared instance.
func (c Campaign) runPrepared(cell Cell, p *prepared) (CellResult, error) {
	res := CellResult{Cell: cell}
	inst := p.inst

	srng := rand.New(rand.NewSource(c.schedSeed(cell)))
	// The cell's scheduler resolves through the registry — the same
	// dispatch the serving layer and the CLIs use — with the prepared
	// instance's shared bottom levels.
	s, err := sched.Run(string(cell.Scheduler), inst.Graph, inst.Platform, inst.Costs,
		sched.RunOptions{Epsilon: cell.Epsilon, Rng: srng, BottomLevels: p.bl})
	if err != nil {
		return res, fmt.Errorf("expt: cell %d %s: %w", cell.Index, cell.Scheduler, err)
	}

	res.Tasks = inst.Graph.NumTasks()
	res.Edges = inst.Graph.NumEdges()
	res.Lower = s.LowerBound() / p.norm
	res.Upper = s.UpperBound() / p.norm
	res.FaultFree = p.ffLatency / p.norm
	res.Messages = s.MessageCount()

	if cell.Scenario != "" {
		// Evaluation dimension: a Monte-Carlo batch instead of one replay.
		sp, err := sim.ParseScenarioSpec(cell.Scenario)
		if err != nil {
			return res, fmt.Errorf("expt: cell %d: %w", cell.Index, err)
		}
		gen, err := sp.Generator()
		if err != nil {
			return res, fmt.Errorf("expt: cell %d: %w", cell.Index, err)
		}
		// Workers: 1 — the engine's parallelism axis is the cell grid; the
		// result is worker-count independent either way.
		eval, err := sim.Evaluate(s, gen, c.EvalTrials, sim.EvalOptions{
			Seed: c.evalSeed(cell), Workers: 1,
		})
		if err != nil {
			return res, fmt.Errorf("expt: cell %d evaluation: %w", cell.Index, err)
		}
		res.SuccessRate = eval.SuccessRate
		if eval.Successes > 0 {
			res.Crash = eval.Latency.Mean / p.norm
			res.EvalP99 = eval.Latency.P99 / p.norm
			res.Overhead = 100 * (eval.Latency.Mean - p.ffLatency) / p.ffLatency
		}
		return res, nil
	}

	crng := rand.New(rand.NewSource(c.crashSeed(cell)))
	scenario, err := sim.UniformCrashes(crng, c.Procs, cell.Epsilon)
	if err != nil {
		return res, err
	}
	crash, err := sim.Run(s, scenario, nil)
	if err != nil {
		return res, fmt.Errorf("expt: cell %d crash replay: %w", cell.Index, err)
	}
	res.Crash = crash.Latency / p.norm
	res.Overhead = 100 * (crash.Latency - p.ffLatency) / p.ffLatency
	return res, nil
}
