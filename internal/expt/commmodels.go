package expt

import (
	"fmt"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/ftbar"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/stats"
	"ftsched/internal/workload"
)

// Experiment X6 (ours): the paper's conclusion conjectures that under
// contention-limited communication models (one-port, bounded multi-port)
// MC-FTSA should beat the other schedulers, "since it already accounts for
// reduced communications". This experiment replays the three schedulers'
// schedules under those models and measures the conjecture.

// CommModelsConfig parameterizes X6.
type CommModelsConfig struct {
	Epsilon        int
	Procs          int
	Granularities  []float64
	GraphsPerPoint int
	TasksMin       int
	TasksMax       int
	Seed           int64
	// Ports is the multi-port degree for the bounded model (K=1 is the
	// one-port model and is always included).
	Ports int
}

// DefaultCommModelsConfig returns the X6 setup.
func DefaultCommModelsConfig() CommModelsConfig {
	return CommModelsConfig{
		Epsilon:        2,
		Procs:          20,
		Granularities:  PaperGranularities(),
		GraphsPerPoint: 20,
		TasksMin:       100,
		TasksMax:       150,
		Seed:           1,
		Ports:          4,
	}
}

// RunCommModels executes X6: failure-free replays of FTSA, MC-FTSA and
// FTBAR schedules under the contention-free, one-port and K-port models.
func RunCommModels(cfg CommModelsConfig) (*Figure, error) {
	if cfg.Epsilon < 0 || cfg.Epsilon+1 > cfg.Procs {
		return nil, fmt.Errorf("expt: ε=%d needs more processors than %d", cfg.Epsilon, cfg.Procs)
	}
	if cfg.Ports < 2 {
		return nil, fmt.Errorf("expt: multi-port degree %d must be >= 2", cfg.Ports)
	}
	if len(cfg.Granularities) == 0 || cfg.GraphsPerPoint < 1 {
		return nil, fmt.Errorf("expt: empty X6 sweep")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fig := &Figure{
		Title:  fmt.Sprintf("X6: latency under contention-limited links, ε=%d, m=%d", cfg.Epsilon, cfg.Procs),
		XLabel: "Granularity", YLabel: "Normalized Latency",
	}
	get := func(name string) *stats.Series {
		for _, s := range fig.Series {
			if s.Name == name {
				return s
			}
		}
		s := stats.NewSeries(name)
		fig.Series = append(fig.Series, s)
		return s
	}
	for _, g := range cfg.Granularities {
		for i := 0; i < cfg.GraphsPerPoint; i++ {
			wcfg := workload.PaperConfig{
				DAG: workload.RandomDAGConfig{
					MinTasks: cfg.TasksMin, MaxTasks: cfg.TasksMax,
					MinVolume: 50, MaxVolume: 150,
					ShapeFactor: 1.0, EdgeDensity: 0.25,
				},
				Procs:    cfg.Procs,
				MinDelay: 0.5, MaxDelay: 1.0,
				MinCost: 10, MaxCost: 100,
				Granularity: g,
			}
			inst, err := workload.NewInstance(rng, wcfg)
			if err != nil {
				return nil, err
			}
			norm := normalizer(inst)
			ftsaS, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: cfg.Epsilon, Rng: rng})
			if err != nil {
				return nil, err
			}
			mcS, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				core.MCFTSAOptions{Options: core.Options{Epsilon: cfg.Epsilon, Rng: rng}})
			if err != nil {
				return nil, err
			}
			barS, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: cfg.Epsilon, Rng: rng})
			if err != nil {
				return nil, err
			}
			multi, err := sim.NewBoundedMultiPort(cfg.Procs, cfg.Ports)
			if err != nil {
				return nil, err
			}
			models := []struct {
				tag   string
				model sim.CommModel
			}{
				{"free", sim.ContentionFree{}},
				{"1-port", sim.NewOnePort(cfg.Procs)},
				{fmt.Sprintf("%d-port", cfg.Ports), multi},
			}
			algos := []struct {
				tag string
				s   *sched.Schedule
			}{
				{"FTSA", ftsaS},
				{"MC-FTSA", mcS},
				{"FTBAR", barS},
			}
			for _, mm := range models {
				for _, a := range algos {
					mm.model.Reset(cfg.Procs)
					res, err := sim.Run(a.s, sim.NoFailures(cfg.Procs), mm.model)
					if err != nil {
						return nil, fmt.Errorf("expt: %s under %s: %w", a.tag, mm.tag, err)
					}
					get(fmt.Sprintf("%s (%s)", a.tag, mm.tag)).At(g).Add(res.Latency / norm)
				}
			}
		}
	}
	return fig, nil
}
