package expt

import (
	"fmt"
	"io"
	"math/rand"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/ftbar"
	"ftsched/internal/workload"
)

// Experiment X5 (ours): the three schedulers on the classic structured
// task-graph families, complementing the paper's purely random workloads.
// Latencies are normalized per instance like the figures.

// FamilyRow is one line of the structured-family comparison.
type FamilyRow struct {
	Family       string
	Tasks, Edges int
	// Normalized lower/upper bounds per scheduler.
	FTSALB, FTSAUB float64
	MCLB, MCUB     float64
	BARLB, BARUB   float64
	// Inter-processor message counts for the two FTSA variants.
	FTSAMsgs, MCMsgs int
}

// FamiliesConfig parameterizes X5.
type FamiliesConfig struct {
	Epsilon int
	Procs   int
	Seed    int64
}

// DefaultFamiliesConfig returns the X5 setup.
func DefaultFamiliesConfig() FamiliesConfig {
	return FamiliesConfig{Epsilon: 2, Procs: 16, Seed: 1}
}

// familyBuilders enumerates the structured workloads, sized to a few
// hundred tasks each.
var familyBuilders = []struct {
	name  string
	build func() (*dag.Graph, error)
}{
	{"gauss-16", func() (*dag.Graph, error) { return workload.GaussianElimination(16, 100) }},
	{"fft-64", func() (*dag.Graph, error) { return workload.FFT(6, 100) }},
	{"cholesky-8", func() (*dag.Graph, error) { return workload.Cholesky(8, 100) }},
	{"lu-6", func() (*dag.Graph, error) { return workload.LU(6, 100) }},
	{"stencil-12x12", func() (*dag.Graph, error) { return workload.Stencil(12, 12, 100) }},
	{"forkjoin-10x5", func() (*dag.Graph, error) { return workload.ForkJoin(10, 5, 100) }},
	{"pipeline-10x4", func() (*dag.Graph, error) { return workload.Pipeline(10, 4, 100) }},
	{"intree-2^7", func() (*dag.Graph, error) { return workload.InTree(2, 7, 100) }},
}

// RunFamilies executes X5 and returns one row per family.
func RunFamilies(cfg FamiliesConfig) ([]FamilyRow, error) {
	if cfg.Epsilon < 0 || cfg.Epsilon+1 > cfg.Procs {
		return nil, fmt.Errorf("expt: ε=%d needs more processors than %d", cfg.Epsilon, cfg.Procs)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rows := make([]FamilyRow, 0, len(familyBuilders))
	for _, fb := range familyBuilders {
		g, err := fb.build()
		if err != nil {
			return nil, err
		}
		wcfg := workload.DefaultPaperConfig(1.0)
		wcfg.Procs = cfg.Procs
		inst, err := workload.NewInstanceForGraph(rng, g, wcfg)
		if err != nil {
			return nil, err
		}
		norm := normalizer(inst)
		row := FamilyRow{Family: fb.name, Tasks: g.NumTasks(), Edges: g.NumEdges()}

		f, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: cfg.Epsilon, Rng: rng})
		if err != nil {
			return nil, err
		}
		row.FTSALB, row.FTSAUB = f.LowerBound()/norm, f.UpperBound()/norm
		row.FTSAMsgs = f.MessageCount()

		mc, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
			core.MCFTSAOptions{Options: core.Options{Epsilon: cfg.Epsilon, Rng: rng}})
		if err != nil {
			return nil, err
		}
		row.MCLB, row.MCUB = mc.LowerBound()/norm, mc.UpperBound()/norm
		row.MCMsgs = mc.MessageCount()

		bar, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: cfg.Epsilon, Rng: rng})
		if err != nil {
			return nil, err
		}
		row.BARLB, row.BARUB = bar.LowerBound()/norm, bar.UpperBound()/norm
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteFamilies renders the X5 table.
func WriteFamilies(w io.Writer, rows []FamilyRow) error {
	if _, err := fmt.Fprintf(w, "%-14s %6s %6s | %9s %9s | %9s %9s | %9s %9s | %8s %8s\n",
		"family", "tasks", "edges",
		"FTSA lb", "ub", "MC lb", "ub", "FTBAR lb", "ub",
		"FTSAmsg", "MCmsg"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-14s %6d %6d | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f | %8d %8d\n",
			r.Family, r.Tasks, r.Edges,
			r.FTSALB, r.FTSAUB, r.MCLB, r.MCUB, r.BARLB, r.BARUB,
			r.FTSAMsgs, r.MCMsgs); err != nil {
			return err
		}
	}
	return nil
}
