package core

import (
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// This file wires the package's schedulers into the sched registry. Every
// dispatch site (the serving layer, the campaign engine, the CLIs) resolves
// schedulers by name through sched.Run; adding a variant here — and only
// here — makes it reachable end-to-end through /schedule, campaign grids and
// the binaries.

// options maps the registry's uniform options onto this package's native
// Options, deriving per-task deadlines when a latency budget was requested
// (Section 4.3; sched.Run has already verified Latency > 0 is allowed).
func options(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (Options, error) {
	o := Options{Epsilon: opt.Epsilon, Rng: opt.Rng, BottomLevels: opt.BottomLevels}
	if opt.Latency > 0 {
		dls, err := sched.Deadlines(g, cm, p, opt.Epsilon, opt.Latency)
		if err != nil {
			return Options{}, err
		}
		o.Deadlines = dls
	}
	return o, nil
}

type ftsaRunner struct{}

func (ftsaRunner) Name() string { return "ftsa" }

func (ftsaRunner) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (*sched.Schedule, error) {
	o, err := options(g, p, cm, opt)
	if err != nil {
		return nil, err
	}
	return FTSA(g, p, cm, o)
}

type mcftsaRunner struct{}

func (mcftsaRunner) Name() string { return "mcftsa" }

func (mcftsaRunner) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (*sched.Schedule, error) {
	o, err := options(g, p, cm, opt)
	if err != nil {
		return nil, err
	}
	policy := MatchGreedy
	if opt.Policy == "bottleneck" {
		policy = MatchBottleneck
	}
	return MCFTSA(g, p, cm, MCFTSAOptions{Options: o, Policy: policy})
}

type ftsaInsRunner struct{}

func (ftsaInsRunner) Name() string { return "ftsa-ins" }

func (ftsaInsRunner) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (*sched.Schedule, error) {
	o, err := options(g, p, cm, opt)
	if err != nil {
		return nil, err
	}
	return FTSAIns(g, p, cm, o)
}

func init() {
	sched.Register(sched.Registration{
		Scheduler:     ftsaRunner{},
		Description:   "the paper's Fault Tolerant Scheduling Algorithm (Algorithm 4.1): criticalness-ordered list scheduling, ε+1 earliest-finish-time replicas per task, full communication pattern",
		FaultTolerant: true,
		Deadlines:     true,
	})
	sched.Register(sched.Registration{
		Scheduler:     mcftsaRunner{},
		Aliases:       []string{"mc-ftsa"},
		Description:   "Minimum-Communications FTSA (Section 4.2): identical mapping, but each precedence edge keeps exactly ε+1 messages via a robust bipartite matching",
		FaultTolerant: true,
		Policies:      []string{"greedy", "bottleneck"},
		DefaultPolicy: "greedy",
		Deadlines:     true,
	})
	sched.Register(sched.Registration{
		Scheduler:     ftsaInsRunner{},
		Aliases:       []string{"ftsains"},
		Description:   "registry-only variant: FTSA's selection with HEFT-style insertion-based placement — optimistic windows fill earliest timeline gaps via the shared kernel",
		FaultTolerant: true,
		Deadlines:     true,
	})
}
