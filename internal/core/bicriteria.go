package core

import (
	"errors"
	"fmt"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Scheduler produces a fault-tolerant schedule for a given ε. Both FTSA and
// MCFTSA can be adapted to this signature; the bi-criteria drivers are
// parameterized on it.
type Scheduler func(epsilon int) (*sched.Schedule, error)

// FTSAScheduler adapts FTSA to the Scheduler signature, preserving the other
// options.
func FTSAScheduler(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) Scheduler {
	return func(epsilon int) (*sched.Schedule, error) {
		o := opt
		o.Epsilon = epsilon
		return FTSA(g, p, cm, o)
	}
}

// MCFTSAScheduler adapts MCFTSA to the Scheduler signature.
func MCFTSAScheduler(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt MCFTSAOptions) Scheduler {
	return func(epsilon int) (*sched.Schedule, error) {
		o := opt
		o.Epsilon = epsilon
		return MCFTSA(g, p, cm, o)
	}
}

// ErrLatencyUnachievable is returned by MaxToleratedFailures when even the
// ε=0 schedule exceeds the latency budget.
var ErrLatencyUnachievable = errors.New("core: latency budget unachievable even without replication")

// MaxToleratedFailures implements the first bi-criteria driver of Section
// 4.3: given a fixed latency budget, find the maximum number of processor
// failures ε that can be tolerated while the schedule's guaranteed latency
// (upper bound M, equation 4) stays within the budget. As the paper
// suggests, a binary search on ε replaces the naive ε = 1, 2, 3, ...
// iteration; the overall cost stays polynomial. It returns the best ε and
// its schedule.
//
// Latency is not perfectly monotone in ε for a greedy heuristic, so the
// binary search (like the paper's) returns a maximal feasible ε under the
// monotonicity assumption, not a certified global maximum.
func MaxToleratedFailures(maxProcs int, latency float64, schedule Scheduler) (int, *sched.Schedule, error) {
	if latency <= 0 {
		return 0, nil, fmt.Errorf("core: non-positive latency budget %g", latency)
	}
	lo, hi := 0, maxProcs-1
	bestEps := -1
	var best *sched.Schedule
	for lo <= hi {
		mid := (lo + hi) / 2
		s, err := schedule(mid)
		if err != nil {
			// Infeasible ε (e.g. deadline failure): shrink.
			hi = mid - 1
			continue
		}
		if s.UpperBound() <= latency {
			bestEps, best = mid, s
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	if bestEps < 0 {
		return 0, nil, ErrLatencyUnachievable
	}
	return bestEps, best, nil
}

// ScheduleWithDeadlines implements the second bi-criteria driver of Section
// 4.3: both the latency L and ε are fixed, and infeasibility of the
// combination is detected *during* scheduling via per-task deadlines. Each
// task ti is assigned d(ti) in reverse topological order (see
// sched.Deadlines); scheduling aborts with ErrDeadline at the first step
// where the worst selected finish time exceeds the task's deadline, letting
// the caller relax ε or L and retry.
func ScheduleWithDeadlines(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options, latency float64) (*sched.Schedule, error) {
	if latency <= 0 {
		return nil, fmt.Errorf("core: non-positive latency %g", latency)
	}
	dls, err := sched.Deadlines(g, cm, p, opt.Epsilon, latency)
	if err != nil {
		return nil, err
	}
	opt.Deadlines = dls
	return FTSA(g, p, cm, opt)
}

// ScheduleWithDeadlinesMC is the MC-FTSA counterpart of
// ScheduleWithDeadlines: the same deadline assignment and early
// infeasibility detection, applied to the minimum-communications scheduler.
func ScheduleWithDeadlinesMC(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt MCFTSAOptions, latency float64) (*sched.Schedule, error) {
	if latency <= 0 {
		return nil, fmt.Errorf("core: non-positive latency %g", latency)
	}
	dls, err := sched.Deadlines(g, cm, p, opt.Epsilon, latency)
	if err != nil {
		return nil, err
	}
	opt.Deadlines = dls
	return MCFTSA(g, p, cm, opt)
}
