package core

import (
	"errors"
	"fmt"
	"math"

	"ftsched/internal/bipartite"
	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// MatchPolicy selects how MC-FTSA extracts the robust communication set from
// each precedence edge's bipartite replica graph (Section 4.2 proposes both).
type MatchPolicy int

const (
	// MatchGreedy gives priority to internal (same-processor)
	// communications, then selects edges in non-decreasing weight order.
	// This is the policy used in the paper's experiments.
	MatchGreedy MatchPolicy = iota
	// MatchBottleneck minimizes the largest retained edge weight via binary
	// search over edge weights plus maximum bipartite matching — the
	// polynomial exact method of Section 4.2.
	MatchBottleneck
)

// String implements fmt.Stringer.
func (mp MatchPolicy) String() string {
	switch mp {
	case MatchGreedy:
		return "greedy"
	case MatchBottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("MatchPolicy(%d)", int(mp))
	}
}

// ErrNoRobustMatching indicates the bipartite replica graph had no perfect
// matching. For graphs built per Section 4.2 this cannot happen (forced
// internal edges are vertex-disjoint and the residual graph is complete
// bipartite); seeing this error means the schedule state is corrupted.
var ErrNoRobustMatching = errors.New("core: no robust communication matching")

// MCFTSAOptions extends Options with the matching policy.
type MCFTSAOptions struct {
	Options
	Policy MatchPolicy
}

// MCFTSA runs the Minimum-Communications variant of FTSA (Section 4.2).
// Processor selection is identical to FTSA (equation 1), but instead of
// every predecessor replica sending to every replica of the task, each
// precedence edge retains exactly ε+1 replica-to-replica communications,
// chosen as a perfect matching of the bipartite graph whose left nodes are
// the predecessor's replicas and right nodes the task's replicas:
//
//   - a left node whose processor also hosts a replica of the task has a
//     single outgoing edge, to that co-located replica (Proposition 4.3:
//     enforcing internal communications is what makes the set robust);
//   - any other left node connects to every right node;
//   - the weight of an edge is the time-step at which the task's replica
//     could finish if that predecessor replica were its only input:
//     max(F(t′,Pi) + W(t′,t), r(Pj)) + E(t,Pj).
//
// The schedule's replica windows are then computed against the single
// matched source per predecessor, which is why MC-FTSA's upper bound stays
// close to its lower bound.
func MCFTSA(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt MCFTSAOptions) (*sched.Schedule, error) {
	st, err := newState(g, p, cm, opt.Options, sched.PatternMatched, "MC-FTSA", false)
	if err != nil {
		return nil, err
	}
	defer st.release()
	for st.free.Len() > 0 {
		t := st.pop()
		reps, err := st.placeBestEFT(t) // A(t) per equation (1), as in FTSA
		if err != nil {
			return nil, err
		}
		matched, err := st.matchCommunications(t, reps, opt.Policy)
		if err != nil {
			return nil, err
		}
		recomputeMatchedWindows(st, t, reps, matched)
		if err := st.commit(t, reps, matched); err != nil {
			return nil, err
		}
	}
	return st.finish()
}

// matchCommunications builds, for every predecessor of t, the bipartite
// replica graph of Section 4.2 and extracts a robust perfect matching under
// the requested policy. The result is receiver-indexed:
// matched[copy][predIdx] = predecessor copy feeding that replica. The matrix
// is carved from the schedule's matched arena and every per-edge structure
// (the bipartite graph, the greedy order, the matching buffers) lives in the
// run's pooled scratch, so the steady-state matching loop does not allocate.
func (st *state) matchCommunications(t dag.TaskID, reps []sched.Replica, policy MatchPolicy) ([][]int, error) {
	k := len(reps)
	preds := st.f.PredIDs(t)
	vols := st.f.PredVolumes(t)
	matched, err := st.s.AllocMatched(k, len(preds))
	if err != nil {
		return nil, err
	}
	// Processor -> right (replica of t) index, for the forced internal edges.
	procCopy := kernel.Grow(st.ws.procCopy, st.p.NumProcs())
	for j := range procCopy {
		procCopy[j] = -1
	}
	for c, r := range reps {
		procCopy[r.Proc] = int32(c)
	}
	st.ws.procCopy = procCopy
	bg := &st.ws.bg
	for predIdx, predRaw := range preds {
		pred := dag.TaskID(predRaw)
		vol := vols[predIdx]
		srcReps := st.s.Replicas(pred)
		bg.Reset(len(srcReps), k)
		internal := st.ws.internal[:0]
		for i, sr := range srcReps {
			if c := procCopy[sr.Proc]; c >= 0 {
				// Case (i): Pi ∈ A(t) — single internal edge.
				w := st.edgeWeight(t, sr, vol, reps[c].Proc)
				if err := bg.AddEdge(i, int(c), w); err != nil {
					return nil, err
				}
				internal = append(internal, true)
				continue
			}
			// Case (ii): edges to every replica of t.
			for c := 0; c < k; c++ {
				w := st.edgeWeight(t, sr, vol, reps[c].Proc)
				if err := bg.AddEdge(i, c, w); err != nil {
					return nil, err
				}
				internal = append(internal, false)
			}
		}
		st.ws.internal = internal
		var m bipartite.Matching
		switch policy {
		case MatchGreedy:
			order := greedyOrder(bg, internal, st.ws.order)
			st.ws.order = order
			st.ws.usedR = kernel.Grow(st.ws.usedR, k)
			var ok bool
			m, ok = bg.GreedyOrderedMatchingInto(order, st.ws.matchL, st.ws.usedR)
			st.ws.matchL = m
			if !ok {
				// The greedy order cannot dead-end on these graphs, but
				// fall back to the exact method defensively.
				var bok bool
				m, _, bok = bg.BottleneckPerfectMatching()
				if !bok {
					return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNoRobustMatching, pred, t)
				}
			}
		case MatchBottleneck:
			var ok bool
			m, _, ok = bg.BottleneckPerfectMatching()
			if !ok {
				return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNoRobustMatching, pred, t)
			}
		default:
			return nil, fmt.Errorf("core: unknown match policy %v", policy)
		}
		// Invert: m maps left (src copy) -> right (dst copy).
		for i, c := range m {
			if c < 0 {
				return nil, fmt.Errorf("%w: unmatched source copy %d on edge (%d,%d)", ErrNoRobustMatching, i, pred, t)
			}
			matched[c][predIdx] = i
		}
	}
	return matched, nil
}

// edgeWeight is the bipartite edge weight of Section 4.2:
// max(F(t′,Pi) + W(t′,t), r(Pj)) + E(t,Pj), with W = 0 when Pi = Pj.
func (st *state) edgeWeight(t dag.TaskID, sr sched.Replica, volume float64, pj platform.ProcID) float64 {
	arr := sr.FinishMin + volume*st.p.Delay(sr.Proc, pj)
	return math.Max(arr, st.board.ReadyMin[pj]) + st.cm.Cost(t, pj)
}

// greedyOrder returns edge indices with internal edges first, then the rest
// by non-decreasing weight (ties by insertion order for determinism),
// reusing buf's storage. The stable insertion sort produces the same
// permutation sort.SliceStable did (stable-sort output is unique for a given
// comparator) without allocating the closure or the reflection shim; the
// replica graphs have at most (ε+1)² edges, so quadratic is fine.
func greedyOrder(bg *bipartite.Graph, internal []bool, buf []int) []int {
	ne := bg.NumEdges()
	if cap(buf) < ne {
		buf = make([]int, ne)
	}
	order := buf[:ne]
	for i := range order {
		order[i] = i
	}
	less := func(a, b int) bool {
		ia, ib := internal[a], internal[b]
		if ia != ib {
			return ia
		}
		return bg.Edge(a).W < bg.Edge(b).W
	}
	for i := 1; i < ne; i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// recomputeMatchedWindows replaces the full-pattern windows of the selected
// replicas with the matched-pattern ones: each replica now waits for exactly
// one message per predecessor, so its optimistic window uses the matched
// source's optimistic finish and its pessimistic window the same source's
// pessimistic finish.
func recomputeMatchedWindows(st *state, t dag.TaskID, reps []sched.Replica, matched [][]int) {
	preds := st.f.PredIDs(t)
	vols := st.f.PredVolumes(t)
	for c := range reps {
		r := &reps[c]
		arrMin, arrMax := 0.0, 0.0
		for predIdx, predRaw := range preds {
			sr := st.s.Replicas(dag.TaskID(predRaw))[matched[c][predIdx]]
			d := st.p.Delay(sr.Proc, r.Proc)
			if a := sr.FinishMin + vols[predIdx]*d; a > arrMin {
				arrMin = a
			}
			if a := sr.FinishMax + vols[predIdx]*d; a > arrMax {
				arrMax = a
			}
		}
		e := st.cm.Cost(t, r.Proc)
		r.StartMin = math.Max(arrMin, st.board.ReadyMin[r.Proc])
		r.FinishMin = r.StartMin + e
		r.StartMax = math.Max(arrMax, st.board.ReadyMax[r.Proc])
		r.FinishMax = r.StartMax + e
	}
}
