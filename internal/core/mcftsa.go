package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ftsched/internal/bipartite"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// MatchPolicy selects how MC-FTSA extracts the robust communication set from
// each precedence edge's bipartite replica graph (Section 4.2 proposes both).
type MatchPolicy int

const (
	// MatchGreedy gives priority to internal (same-processor)
	// communications, then selects edges in non-decreasing weight order.
	// This is the policy used in the paper's experiments.
	MatchGreedy MatchPolicy = iota
	// MatchBottleneck minimizes the largest retained edge weight via binary
	// search over edge weights plus maximum bipartite matching — the
	// polynomial exact method of Section 4.2.
	MatchBottleneck
)

// String implements fmt.Stringer.
func (mp MatchPolicy) String() string {
	switch mp {
	case MatchGreedy:
		return "greedy"
	case MatchBottleneck:
		return "bottleneck"
	default:
		return fmt.Sprintf("MatchPolicy(%d)", int(mp))
	}
}

// ErrNoRobustMatching indicates the bipartite replica graph had no perfect
// matching. For graphs built per Section 4.2 this cannot happen (forced
// internal edges are vertex-disjoint and the residual graph is complete
// bipartite); seeing this error means the schedule state is corrupted.
var ErrNoRobustMatching = errors.New("core: no robust communication matching")

// MCFTSAOptions extends Options with the matching policy.
type MCFTSAOptions struct {
	Options
	Policy MatchPolicy
}

// MCFTSA runs the Minimum-Communications variant of FTSA (Section 4.2).
// Processor selection is identical to FTSA (equation 1), but instead of
// every predecessor replica sending to every replica of the task, each
// precedence edge retains exactly ε+1 replica-to-replica communications,
// chosen as a perfect matching of the bipartite graph whose left nodes are
// the predecessor's replicas and right nodes the task's replicas:
//
//   - a left node whose processor also hosts a replica of the task has a
//     single outgoing edge, to that co-located replica (Proposition 4.3:
//     enforcing internal communications is what makes the set robust);
//   - any other left node connects to every right node;
//   - the weight of an edge is the time-step at which the task's replica
//     could finish if that predecessor replica were its only input:
//     max(F(t′,Pi) + W(t′,t), r(Pj)) + E(t,Pj).
//
// The schedule's replica windows are then computed against the single
// matched source per predecessor, which is why MC-FTSA's upper bound stays
// close to its lower bound.
func MCFTSA(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt MCFTSAOptions) (*sched.Schedule, error) {
	st, err := newState(g, p, cm, opt.Options, sched.PatternMatched, "MC-FTSA", false)
	if err != nil {
		return nil, err
	}
	defer st.release()
	for st.free.Len() > 0 {
		t := st.pop()
		win, err := st.placeBestEFT(t) // A(t) per equation (1), as in FTSA
		if err != nil {
			return nil, err
		}
		matched, err := st.matchCommunications(t, win, opt.Policy)
		if err != nil {
			return nil, err
		}
		recomputeMatchedWindows(st, t, win, matched)
		if err := st.commit(t, win, matched); err != nil {
			return nil, err
		}
	}
	return st.finish()
}

// matchCommunications builds, for every predecessor of t, the bipartite
// replica graph of Section 4.2 and extracts a robust perfect matching under
// the requested policy. The result is receiver-indexed:
// matched[copy][predIdx] = predecessor copy feeding that replica.
func (st *state) matchCommunications(t dag.TaskID, win *placement, policy MatchPolicy) ([][]int, error) {
	k := len(win.reps)
	preds := st.g.Preds(t)
	matched := make([][]int, k)
	for c := range matched {
		matched[c] = make([]int, len(preds))
	}
	// Processor -> right (replica of t) index, for the forced internal edges.
	procToCopy := make(map[platform.ProcID]int, k)
	for c, r := range win.reps {
		procToCopy[r.Proc] = c
	}
	for predIdx, pe := range preds {
		srcReps := st.s.Replicas(pe.To)
		bg := bipartite.New(len(srcReps), k)
		internal := make([]bool, 0, len(srcReps)*k)
		for i, sr := range srcReps {
			if c, ok := procToCopy[sr.Proc]; ok {
				// Case (i): Pi ∈ A(t) — single internal edge.
				w := st.edgeWeight(t, sr, pe.Volume, win.reps[c].Proc)
				if err := bg.AddEdge(i, c, w); err != nil {
					return nil, err
				}
				internal = append(internal, true)
				continue
			}
			// Case (ii): edges to every replica of t.
			for c := 0; c < k; c++ {
				w := st.edgeWeight(t, sr, pe.Volume, win.reps[c].Proc)
				if err := bg.AddEdge(i, c, w); err != nil {
					return nil, err
				}
				internal = append(internal, false)
			}
		}
		var m bipartite.Matching
		switch policy {
		case MatchGreedy:
			order := greedyOrder(bg, internal)
			var ok bool
			m, ok = bg.GreedyOrderedMatching(order)
			if !ok {
				// The greedy order cannot dead-end on these graphs, but
				// fall back to the exact method defensively.
				var bok bool
				m, _, bok = bg.BottleneckPerfectMatching()
				if !bok {
					return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNoRobustMatching, pe.To, t)
				}
			}
		case MatchBottleneck:
			var ok bool
			m, _, ok = bg.BottleneckPerfectMatching()
			if !ok {
				return nil, fmt.Errorf("%w: edge (%d,%d)", ErrNoRobustMatching, pe.To, t)
			}
		default:
			return nil, fmt.Errorf("core: unknown match policy %v", policy)
		}
		// Invert: m maps left (src copy) -> right (dst copy).
		for i, c := range m {
			if c < 0 {
				return nil, fmt.Errorf("%w: unmatched source copy %d on edge (%d,%d)", ErrNoRobustMatching, i, pe.To, t)
			}
			matched[c][predIdx] = i
		}
	}
	return matched, nil
}

// edgeWeight is the bipartite edge weight of Section 4.2:
// max(F(t′,Pi) + W(t′,t), r(Pj)) + E(t,Pj), with W = 0 when Pi = Pj.
func (st *state) edgeWeight(t dag.TaskID, sr sched.Replica, volume float64, pj platform.ProcID) float64 {
	arr := sr.FinishMin + volume*st.p.Delay(sr.Proc, pj)
	return math.Max(arr, st.board.ReadyMin[pj]) + st.cm.Cost(t, pj)
}

// greedyOrder returns edge indices with internal edges first, then the rest
// by non-decreasing weight (ties by insertion order for determinism).
func greedyOrder(bg *bipartite.Graph, internal []bool) []int {
	order := make([]int, bg.NumEdges())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := internal[order[a]], internal[order[b]]
		if ia != ib {
			return ia
		}
		return bg.Edge(order[a]).W < bg.Edge(order[b]).W
	})
	return order
}

// recomputeMatchedWindows replaces the full-pattern windows of the selected
// replicas with the matched-pattern ones: each replica now waits for exactly
// one message per predecessor, so its optimistic window uses the matched
// source's optimistic finish and its pessimistic window the same source's
// pessimistic finish.
func recomputeMatchedWindows(st *state, t dag.TaskID, win *placement, matched [][]int) {
	preds := st.g.Preds(t)
	for c := range win.reps {
		r := &win.reps[c]
		arrMin, arrMax := 0.0, 0.0
		for predIdx, pe := range preds {
			sr := st.s.Replicas(pe.To)[matched[c][predIdx]]
			d := st.p.Delay(sr.Proc, r.Proc)
			if a := sr.FinishMin + pe.Volume*d; a > arrMin {
				arrMin = a
			}
			if a := sr.FinishMax + pe.Volume*d; a > arrMax {
				arrMax = a
			}
		}
		e := st.cm.Cost(t, r.Proc)
		r.StartMin = math.Max(arrMin, st.board.ReadyMin[r.Proc])
		r.FinishMin = r.StartMin + e
		r.StartMax = math.Max(arrMax, st.board.ReadyMax[r.Proc])
		r.FinishMax = r.StartMax + e
	}
}
