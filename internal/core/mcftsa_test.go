package core

import (
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/sched"
)

func TestMCFTSAValidatesAndBoundsMessages(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, eps := range []int{0, 1, 2, 5} {
			for _, policy := range []MatchPolicy{MatchGreedy, MatchBottleneck} {
				inst := testInstance(t, seed, 1.0, 20)
				s, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{
					Options: Options{Epsilon: eps, Rng: rand.New(rand.NewSource(seed))},
					Policy:  policy,
				})
				if err != nil {
					t.Fatalf("seed %d ε=%d %v: MCFTSA: %v", seed, eps, policy, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("seed %d ε=%d %v: Validate: %v", seed, eps, policy, err)
				}
				// Linear message bound: at most e(ε+1) inter-processor
				// messages (Section 4.2), versus e(ε+1)² for FTSA.
				if max := inst.Graph.NumEdges() * (eps + 1); s.MessageCount() > max {
					t.Fatalf("seed %d ε=%d %v: %d messages exceed e(ε+1)=%d",
						seed, eps, policy, s.MessageCount(), max)
				}
				if lb, ub := s.LowerBound(), s.UpperBound(); ub < lb-1e-9 {
					t.Fatalf("seed %d ε=%d %v: bounds inverted (%g > %g)", seed, eps, policy, lb, ub)
				}
			}
		}
	}
}

func TestMCFTSAReducesMessagesVersusFTSA(t *testing.T) {
	inst := testInstance(t, 42, 1.0, 20)
	const eps = 2
	ftsa, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.MessageCount() >= ftsa.MessageCount() {
		t.Errorf("MC-FTSA should cut communications: %d vs FTSA %d", mc.MessageCount(), ftsa.MessageCount())
	}
}

func TestMCFTSALowerBoundNotBelowFTSAOnAverage(t *testing.T) {
	// The paper: "the lower bound of MC-FTSA is slightly higher than that of
	// FTSA". This holds on batch averages, not per instance: the matched
	// windows shift ready times, so the greedy trajectory diverges and can
	// occasionally land on a better schedule than FTSA's.
	var ftsaSum, mcSum float64
	for seed := int64(1); seed <= 12; seed++ {
		inst := testInstance(t, seed, 1.0, 20)
		ftsa, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: 2}})
		if err != nil {
			t.Fatal(err)
		}
		ftsaSum += ftsa.LowerBound()
		mcSum += mc.LowerBound()
	}
	if mcSum < ftsaSum {
		t.Errorf("MC-FTSA mean lower bound %g below FTSA mean %g", mcSum/12, ftsaSum/12)
	}
	// And it should stay "slightly" higher, not explode.
	if mcSum > ftsaSum*1.6 {
		t.Errorf("MC-FTSA mean lower bound %g more than 60%% above FTSA mean %g", mcSum/12, ftsaSum/12)
	}
}

func TestMCFTSAUpperCloseToLower(t *testing.T) {
	// "its upper bound is close to the lower bound since we keep only the
	// best communication edges": with a single retained source per edge the
	// only Min/Max divergence comes through processor ready times. Check
	// the MC-FTSA gap is much smaller than the FTSA gap.
	var mcGap, ftsaGap float64
	for seed := int64(1); seed <= 10; seed++ {
		inst := testInstance(t, seed, 1.0, 20)
		f, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		m, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: 2}})
		if err != nil {
			t.Fatal(err)
		}
		ftsaGap += f.UpperBound() - f.LowerBound()
		mcGap += m.UpperBound() - m.LowerBound()
	}
	if mcGap >= ftsaGap {
		t.Errorf("MC-FTSA bound gap %g should be below FTSA gap %g", mcGap, ftsaGap)
	}
}

func TestMCFTSAInternalEdgesForced(t *testing.T) {
	// Proposition 4.3: whenever a predecessor replica shares a processor
	// with a replica of the task, the matching must route it to itself.
	// Schedule.Validate checks this; here we additionally verify the
	// matched sources are a bijection per edge.
	inst := testInstance(t, 9, 0.6, 10)
	const eps = 3
	s, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph
	for tsk := 0; tsk < g.NumTasks(); tsk++ {
		tid := dag.TaskID(tsk)
		for predIdx := range g.Preds(tid) {
			seen := map[int]bool{}
			for c := 0; c <= eps; c++ {
				k, err := s.MatchedSource(tid, c, predIdx)
				if err != nil {
					t.Fatalf("MatchedSource(%d,%d,%d): %v", tid, c, predIdx, err)
				}
				if seen[k] {
					t.Fatalf("task %d pred %d: source copy %d reused", tid, predIdx, k)
				}
				seen[k] = true
			}
		}
	}
}

func TestMCFTSAPatternRecorded(t *testing.T) {
	inst := testInstance(t, 2, 1.0, 8)
	s, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.CommPattern != sched.PatternMatched {
		t.Errorf("pattern = %v, want matched", s.CommPattern)
	}
	if s.Algorithm != "MC-FTSA" {
		t.Errorf("algorithm = %q", s.Algorithm)
	}
}
