package core_test

import (
	"errors"
	"fmt"
	"log"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// chainProblem builds the hand-checkable two-task chain used across the
// documentation: costs 5 and 7, volume 10, two processors, unit delays.
func chainProblem() (*dag.Graph, *platform.Platform, *platform.CostModel) {
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		log.Fatal(err)
	}
	return g, p, cm
}

// ExampleScheduleWithDeadlines demonstrates the joint-criteria mode of
// Section 4.3: infeasible (ε, L) combinations are detected while
// scheduling, not after.
func ExampleScheduleWithDeadlines() {
	g, p, cm := chainProblem()
	// The ε=1 schedule finishes at 12; a budget of 30 is feasible, 10 is
	// not — and the failure is reported mid-schedule via ErrDeadline.
	if _, err := core.ScheduleWithDeadlines(g, p, cm, core.Options{Epsilon: 1}, 30); err == nil {
		fmt.Println("L=30: feasible")
	}
	_, err := core.ScheduleWithDeadlines(g, p, cm, core.Options{Epsilon: 1}, 10)
	fmt.Println("L=10 infeasible:", errors.Is(err, core.ErrDeadline))
	// Output:
	// L=30: feasible
	// L=10 infeasible: true
}

// ExampleMaxToleratedFailures shows the fixed-latency driver: binary search
// for the largest tolerable ε within a latency budget.
func ExampleMaxToleratedFailures() {
	g, p, cm := chainProblem()
	eps, s, err := core.MaxToleratedFailures(2, 25,
		core.FTSAScheduler(g, p, cm, core.Options{}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε = %d, guaranteed latency %g\n", eps, s.UpperBound())
	// Output:
	// ε = 1, guaranteed latency 22
}
