package core

import (
	"errors"
	"testing"

	"ftsched/internal/sched"
)

func TestMaxToleratedFailuresFindsMaximum(t *testing.T) {
	inst := testInstance(t, 21, 1.0, 20)
	schedule := FTSAScheduler(inst.Graph, inst.Platform, inst.Costs, Options{})

	// A generous budget: the guaranteed latency of the maximum replication
	// degree. Everything up to ε=19 must fit.
	sMax, err := schedule(19)
	if err != nil {
		t.Fatal(err)
	}
	eps, s, err := MaxToleratedFailures(20, sMax.UpperBound()+1, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 19 {
		t.Errorf("ε = %d, want 19 under an unconstrained budget", eps)
	}
	if s == nil || s.Epsilon != eps {
		t.Errorf("schedule ε = %v", s)
	}

	// A budget between ε=0 and the max forces an intermediate answer whose
	// guarantee respects the budget.
	s0, err := schedule(0)
	if err != nil {
		t.Fatal(err)
	}
	budget := (s0.UpperBound() + sMax.UpperBound()) / 2
	eps, s, err = MaxToleratedFailures(20, budget, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if s.UpperBound() > budget {
		t.Errorf("returned schedule guarantee %g exceeds budget %g", s.UpperBound(), budget)
	}
	if eps < 0 || eps > 19 {
		t.Errorf("ε = %d out of range", eps)
	}
}

func TestMaxToleratedFailuresUnachievable(t *testing.T) {
	inst := testInstance(t, 22, 1.0, 10)
	schedule := FTSAScheduler(inst.Graph, inst.Platform, inst.Costs, Options{})
	if _, _, err := MaxToleratedFailures(10, 1e-6, schedule); !errors.Is(err, ErrLatencyUnachievable) {
		t.Errorf("want ErrLatencyUnachievable, got %v", err)
	}
	if _, _, err := MaxToleratedFailures(10, -5, schedule); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestMaxToleratedFailuresWithMCFTSA(t *testing.T) {
	inst := testInstance(t, 23, 1.0, 12)
	schedule := MCFTSAScheduler(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{})
	s1, err := schedule(1)
	if err != nil {
		t.Fatal(err)
	}
	eps, s, err := MaxToleratedFailures(12, s1.UpperBound(), schedule)
	if err != nil {
		t.Fatal(err)
	}
	if eps < 1 {
		t.Errorf("ε = %d, want >= 1 (budget chosen to fit ε=1)", eps)
	}
	if s.CommPattern != sched.PatternMatched {
		t.Errorf("pattern %v", s.CommPattern)
	}
}

func TestScheduleWithDeadlinesFeasible(t *testing.T) {
	inst := testInstance(t, 24, 1.0, 20)
	// First find the actual ε=2 latency, then ask for it as the budget:
	// must succeed.
	ref, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleWithDeadlines(inst.Graph, inst.Platform, inst.Costs,
		Options{Epsilon: 2}, ref.LowerBound()*3)
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleWithDeadlinesInfeasible(t *testing.T) {
	inst := testInstance(t, 25, 1.0, 20)
	ref, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A deadline far below the achievable latency must be detected during
	// scheduling, not at the end.
	_, err = ScheduleWithDeadlines(inst.Graph, inst.Platform, inst.Costs,
		Options{Epsilon: 2}, ref.LowerBound()/10)
	if !errors.Is(err, ErrDeadline) {
		t.Errorf("want ErrDeadline, got %v", err)
	}
	if _, err := ScheduleWithDeadlines(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2}, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestScheduleWithDeadlinesMC(t *testing.T) {
	inst := testInstance(t, 27, 1.0, 20)
	ref, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleWithDeadlinesMC(inst.Graph, inst.Platform, inst.Costs,
		MCFTSAOptions{Options: Options{Epsilon: 2}}, ref.LowerBound()*3)
	if err != nil {
		t.Fatalf("generous deadline rejected: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CommPattern != sched.PatternMatched {
		t.Errorf("pattern %v", s.CommPattern)
	}
	if _, err := ScheduleWithDeadlinesMC(inst.Graph, inst.Platform, inst.Costs,
		MCFTSAOptions{Options: Options{Epsilon: 2}}, ref.LowerBound()/10); !errors.Is(err, ErrDeadline) {
		t.Errorf("want ErrDeadline, got %v", err)
	}
	if _, err := ScheduleWithDeadlinesMC(inst.Graph, inst.Platform, inst.Costs,
		MCFTSAOptions{}, -1); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestDeadlineOptionLengthChecked(t *testing.T) {
	inst := testInstance(t, 26, 1.0, 8)
	_, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{
		Epsilon:   1,
		Deadlines: []float64{1, 2, 3}, // wrong length
	})
	if err == nil {
		t.Error("mismatched deadline vector accepted")
	}
}
