package core

import (
	"math"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// TestCriticalnessOrderingHandComputed pins the Section 4.1 priority
// machinery on a graph where the selection order is fully predictable.
//
// Graph: two independent chains sharing nothing —
//
//	0 -> 1 (volume 10)     and     2 -> 3 (volume 100)
//
// Uniform unit delays (d̄ = 1) and uniform costs: E(0)=E(1)=5, E(2)=E(3)=5.
// Static bottom levels: bℓ(1)=5, bℓ(0)=5+10+5=20, bℓ(3)=5, bℓ(2)=5+100+5=110.
// At the first step the free tasks are {0, 2} with tℓ=0, so priorities are
// their bottom levels: task 2 (110) must be selected before task 0 (20);
// afterwards 3's dynamic top level (finish of 2 plus worst-case outgoing
// delay) competes against 0's static 20.
func TestCriticalnessOrderingHandComputed(t *testing.T) {
	g := dag.NewWithTasks("twochains", 4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(2, 3, 100)
	p, err := platform.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{
		{5, 5, 5}, {5, 5, 5}, {5, 5, 5}, {5, 5, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	order := s.MappingOrder()
	// Task 2 first (priority 110 vs 20). Then task 3 becomes free with
	// tℓ(3) = F(2) + 100·maxDelay = 5 + 100 = 105, priority 105 + 5 = 110;
	// task 0 still has 20 — so 3 precedes 0, and 1 comes last.
	want := []dag.TaskID{2, 3, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("mapping order %v, want %v", order, want)
		}
	}
	// Both copies of task 2 start at 0 and finish at 5.
	for _, r := range s.Replicas(2) {
		if r.StartMin != 0 || r.FinishMin != 5 {
			t.Errorf("task 2 copy %d window [%g,%g)", r.Copy, r.StartMin, r.FinishMin)
		}
	}
	// Task 3's replicas use the co-located copies of 2: start 5, finish 10.
	for _, r := range s.Replicas(3) {
		if r.StartMin != 5 || r.FinishMin != 10 {
			t.Errorf("task 3 copy %d window [%g,%g)", r.Copy, r.StartMin, r.FinishMin)
		}
	}
}

// TestWorstCaseOutgoingDelayInTopLevel checks the "max over j of
// d(P(t*),Pj)" term: with one slow outgoing link, a successor's dynamic top
// level must charge the slow link even if the final mapping avoids it.
func TestWorstCaseOutgoingDelayInTopLevel(t *testing.T) {
	g := dag.NewWithTasks("pair", 2)
	g.MustAddEdge(0, 1, 10)
	// P0-P1 fast (0.1), P0-P2 and P1-P2 slow (3.0).
	p, err := platform.NewFromDelays([][]float64{
		{0, 0.1, 3},
		{0.1, 0, 3},
		{3, 3, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{
		{4, 4, 4}, {6, 6, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 is mapped on the same processor as task 0 (free local data
	// beats any link): latency 4 + 6 = 10.
	r0 := s.Replicas(0)[0]
	r1 := s.Replicas(1)[0]
	if r0.Proc != r1.Proc {
		t.Errorf("tasks split across P%d and P%d; co-location expected", r0.Proc, r1.Proc)
	}
	if lb := s.LowerBound(); math.Abs(lb-10) > 1e-9 {
		t.Errorf("latency %g, want 10", lb)
	}
}

// TestEFTSelectionPrefersFasterProcessor pins the equation (1) selection:
// with one fast and one slow processor and no communications, all ε+1
// replicas must include the fast processor, and the first copy must be the
// EFT-minimal one.
func TestEFTSelectionPrefersFasterProcessor(t *testing.T) {
	g := dag.NewWithTasks("single", 1)
	p, err := platform.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{3, 9, 27}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	reps := s.Replicas(0)
	if reps[0].Proc != 0 || reps[0].FinishMin != 3 {
		t.Errorf("first copy %+v, want P0 finishing at 3", reps[0])
	}
	if reps[1].Proc != 1 || reps[1].FinishMin != 9 {
		t.Errorf("second copy %+v, want P1 finishing at 9", reps[1])
	}
}
