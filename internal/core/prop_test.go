package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/dag"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// randomProblem derives a full random problem from a seed: platform size in
// [2,12], ε in [0, m-1], granularity in {0.2..2.0}, one of three graph
// families.
func randomProblem(seed int64) (*workload.Instance, int, error) {
	rng := rand.New(rand.NewSource(seed))
	m := 2 + rng.Intn(11)
	eps := rng.Intn(m)
	gran := 0.2 + rng.Float64()*1.8
	cfg := workload.DefaultPaperConfig(gran)
	cfg.Procs = m
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 10, 35
	switch rng.Intn(3) {
	case 0:
		cfg.DAG.ShapeFactor = 0.4 // wide
	case 1:
		cfg.DAG.ShapeFactor = 2.0 // deep
	}
	inst, err := workload.NewInstance(rng, cfg)
	return inst, eps, err
}

// TestPropFTSAInvariants is the scheduler's master property test: any
// random problem yields a schedule satisfying every structural and bound
// invariant.
func TestPropFTSAInvariants(t *testing.T) {
	f := func(seed int64) bool {
		inst, eps, err := randomProblem(seed)
		if err != nil {
			return false
		}
		s, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		lb, ub := s.LowerBound(), s.UpperBound()
		if lb <= 0 || ub < lb-1e-9 {
			return false
		}
		// Message bound e(ε+1)².
		if s.MessageCount() > inst.Graph.NumEdges()*(eps+1)*(eps+1) {
			return false
		}
		// Every task on exactly ε+1 replicas.
		for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
			if len(s.Replicas(dag.TaskID(tsk))) != eps+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropMCFTSAInvariants: the matched variant's master property test,
// including the linear message bound. (The "MC-FTSA lower bound above
// FTSA's" relation is deliberately NOT a per-instance property: the matched
// windows change processor ready times, so the greedy trajectory diverges
// and occasionally lands on a better schedule — the paper's "slightly
// higher" holds on batch averages, tested in mcftsa_test.go.)
func TestPropMCFTSAInvariants(t *testing.T) {
	f := func(seed int64) bool {
		inst, eps, err := randomProblem(seed)
		if err != nil {
			return false
		}
		mc, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: eps}})
		if err != nil {
			return false
		}
		if mc.Validate() != nil {
			return false
		}
		return mc.MessageCount() <= inst.Graph.NumEdges()*(eps+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropSimulationWithinBounds: for random crash subsets of size <= ε,
// the simulated FTSA latency never exceeds the guarantee.
func TestPropSimulationWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		inst, eps, err := randomProblem(seed)
		if err != nil {
			return false
		}
		s, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		m := inst.Platform.NumProcs()
		for trial := 0; trial < 4; trial++ {
			k := rng.Intn(eps + 1)
			sc, err := sim.UniformCrashes(rng, m, k)
			if err != nil {
				return false
			}
			res, err := sim.Run(s, sc, nil)
			if err != nil {
				return false
			}
			if res.Latency > s.UpperBound()+1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropDeterminism: without an RNG both schedulers are pure functions of
// the instance.
func TestPropDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		inst, eps, err := randomProblem(seed)
		if err != nil {
			return false
		}
		a, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
		if err != nil {
			return false
		}
		b, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
		if err != nil {
			return false
		}
		if a.LowerBound() != b.LowerBound() || a.UpperBound() != b.UpperBound() {
			return false
		}
		ma, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: eps}})
		if err != nil {
			return false
		}
		mb, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs, MCFTSAOptions{Options: Options{Epsilon: eps}})
		if err != nil {
			return false
		}
		return ma.LowerBound() == mb.LowerBound() && ma.UpperBound() == mb.UpperBound()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropMatchingPoliciesBothRobust: both matching policies produce valid
// matched schedules with identical message-count bounds; bottleneck's upper
// bound never exceeds greedy's by more than the slack the greedy rule
// leaves (sanity: both validate).
func TestPropMatchingPoliciesBothRobust(t *testing.T) {
	f := func(seed int64) bool {
		inst, eps, err := randomProblem(seed)
		if err != nil {
			return false
		}
		for _, pol := range []MatchPolicy{MatchGreedy, MatchBottleneck} {
			s, err := MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				MCFTSAOptions{Options: Options{Epsilon: eps}, Policy: pol})
			if err != nil {
				return false
			}
			if s.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
