package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"

	"ftsched/internal/bipartite"
	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Scheduling errors.
var (
	// ErrDeadline is returned by the deadline-checked variant when, at some
	// step, even the best ε+1 processors cannot meet the task's deadline —
	// the latency/ε combination is infeasible (Section 4.3).
	ErrDeadline = errors.New("core: failed to satisfy both latency and failure criteria simultaneously")
	// ErrTooManyFailures is returned when ε+1 exceeds the processor count:
	// active replication needs ε+1 distinct processors per task.
	ErrTooManyFailures = errors.New("core: ε+1 replicas need more processors than the platform has")
)

// Options configures an FTSA/MC-FTSA run.
type Options struct {
	// Epsilon is ε, the number of fail-stop processor failures to tolerate;
	// every task gets ε+1 replicas. Zero yields the fault-free schedule.
	Epsilon int
	// Rng breaks priority ties randomly, as the paper specifies. A nil Rng
	// makes tie-breaking deterministic (by task ID), which is convenient in
	// tests.
	Rng *rand.Rand
	// Deadlines, when non-nil, must hold one deadline per task (see
	// sched.Deadlines); scheduling fails with ErrDeadline as soon as a
	// task's worst selected finish time exceeds its deadline.
	Deadlines []float64
	// BottomLevels, when non-nil, supplies the precomputed static bottom
	// levels bℓ(t) (as returned by sched.AvgBottomLevels) instead of
	// recomputing them. The criticalness priority is tℓ(t)+bℓ(t) and bℓ
	// depends only on (graph, costs, platform), so callers scheduling the
	// same instance repeatedly — the campaign engine runs FTSA, MC-FTSA and
	// the fault-free baseline on one instance, and the bi-criteria binary
	// search re-schedules per ε probe — compute it once and share it. The
	// slice is read-only to the scheduler.
	BottomLevels []float64
}

// FTSA runs Algorithm 4.1: list scheduling by task criticalness
// (tℓ(t)+bℓ(t)) with an AVL-backed free list, mapping every task onto the
// ε+1 processors that minimize its finish time (equation 1), and recording
// the pessimistic window (equation 3) alongside. The resulting schedule uses
// the full communication pattern (every predecessor replica sends to every
// successor replica).
func FTSA(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) (*sched.Schedule, error) {
	return runFTSA(g, p, cm, opt, false, "FTSA")
}

// FTSAIns is the registry-only "ftsa-ins" variant: FTSA's criticalness
// priorities and ε+1 minimum-finish-time processor selection, but with
// HEFT-style insertion-based placement — each replica's optimistic window
// goes into the earliest inter-slot gap of its processor's timeline (via the
// shared kernel) instead of strictly after everything already mapped there.
// The pessimistic window stays append-only: under failures, the gap
// structure of the optimistic timeline is not guaranteed, so equation (3)
// keeps its conservative ready times and the upper bound remains valid.
func FTSAIns(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) (*sched.Schedule, error) {
	return runFTSA(g, p, cm, opt, true, "FTSA-ins")
}

// runFTSA is the shared FTSA driver, parameterized on the placement mode.
func runFTSA(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options, insertion bool, algo string) (*sched.Schedule, error) {
	st, err := newState(g, p, cm, opt, sched.PatternAll, algo, insertion)
	if err != nil {
		return nil, err
	}
	defer st.release()
	for st.free.Len() > 0 {
		t := st.pop()
		reps, err := st.placeBestEFT(t)
		if err != nil {
			return nil, err
		}
		if err := st.commit(t, reps, nil); err != nil {
			return nil, err
		}
	}
	return st.finish()
}

// state carries the incremental data of one scheduling run.
type state struct {
	g   *dag.Graph
	f   *dag.Flat // frozen CSR view of g; all adjacency walks go through it
	p   *platform.Platform
	cm  *platform.CostModel
	opt Options
	s   *sched.Schedule

	bl []float64 // static bottom levels
	tl []float64 // dynamic top levels, updated as predecessors are mapped

	unschedPreds []int
	free         kernel.ReadyList

	// board holds the shared per-processor placement state: ready times,
	// arrival-window scratch and (for the insertion variant) busy timelines.
	board *kernel.Board

	// maxFrom memoizes p.MaxDelayFrom per processor: the commit step charges
	// the worst-case outgoing delay once per (successor edge × replica), and
	// recomputing the O(m) maximum there dominated profiles of large runs.
	maxFrom []float64

	// scratch buffers reused across steps to keep the loop allocation-free.
	cands []candidate
	reps  []sched.Replica

	ws *scratch // pooled backing storage for the slices above
}

type candidate struct {
	proc platform.ProcID
	fMin float64
}

// scratch is the pooled backing storage of one scheduling run. A campaign
// schedules thousands of instances back to back; recycling these buffers
// (together with the kernel's pooled boards) keeps the per-run steady-state
// allocation count flat instead of scaling with tasks × processors.
type scratch struct {
	tl           []float64
	unschedPreds []int
	maxFrom      []float64
	cands        []candidate
	reps         []sched.Replica

	// MC-FTSA matching scratch: the per-task processor→copy index, the
	// per-edge bipartite graph (rebuilt in place), its greedy order and
	// internal-edge flags, and the matching output buffers.
	procCopy []int32
	bg       bipartite.Graph
	order    []int
	internal []bool
	matchL   bipartite.Matching
	usedR    []bool
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// release returns the state's scratch buffers to their pools. The schedule
// handed out by finish never aliases them (sched.Place copies replicas), so
// releasing after a run — successful or not — is always safe.
func (st *state) release() {
	st.board.Release()
	st.board = nil
	ws := st.ws
	if ws == nil {
		return
	}
	st.ws = nil
	ws.tl = st.tl
	ws.unschedPreds = st.unschedPreds
	ws.maxFrom = st.maxFrom
	ws.cands = st.cands
	ws.reps = st.reps
	scratchPool.Put(ws)
}

func newState(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options, pattern sched.Pattern, algo string, insertion bool) (*state, error) {
	if opt.Epsilon < 0 || opt.Epsilon+1 > p.NumProcs() {
		return nil, fmt.Errorf("%w: ε=%d, m=%d", ErrTooManyFailures, opt.Epsilon, p.NumProcs())
	}
	if opt.Deadlines != nil && len(opt.Deadlines) != g.NumTasks() {
		return nil, fmt.Errorf("core: %d deadlines for %d tasks", len(opt.Deadlines), g.NumTasks())
	}
	f, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	s, err := sched.New(g, p, cm, opt.Epsilon, pattern, algo)
	if err != nil {
		return nil, err
	}
	bl, err := sched.ResolveBottomLevels(g, cm, p, opt.BottomLevels)
	if err != nil {
		return nil, err
	}
	m := p.NumProcs()
	v := g.NumTasks()
	ws := scratchPool.Get().(*scratch)
	st := &state{
		g: g, f: f, p: p, cm: cm, opt: opt, s: s,
		bl:           bl,
		tl:           kernel.GrowZero(ws.tl, v),
		unschedPreds: kernel.Grow(ws.unschedPreds, v),
		free:         kernel.NewPriorityList(),
		board:        kernel.NewBoard(m, insertion),
		maxFrom:      kernel.Grow(ws.maxFrom, m),
		cands:        ws.cands[:0],
		reps:         ws.reps[:0],
		ws:           ws,
	}
	for j := 0; j < m; j++ {
		st.maxFrom[j] = p.MaxDelayFrom(platform.ProcID(j))
	}
	for t := 0; t < v; t++ {
		st.unschedPreds[t] = f.InDegree(dag.TaskID(t))
		if st.unschedPreds[t] == 0 {
			st.push(dag.TaskID(t))
		}
	}
	return st, nil
}

func (st *state) tie() uint64 {
	if st.opt.Rng == nil {
		return 0
	}
	return st.opt.Rng.Uint64()
}

func (st *state) push(t dag.TaskID) {
	st.free.Push(kernel.Item{Priority: st.tl[t] + st.bl[t], Tie: st.tie(), ID: int(t)})
}

func (st *state) pop() dag.TaskID {
	it, _ := st.free.Pop()
	return dag.TaskID(it.ID)
}

// placeBestEFT computes equation (1) on every processor and selects the ε+1
// distinct processors with minimum finish time, breaking ties toward lower
// processor indices. The replicas are ordered by increasing optimistic
// finish time. Arrival windows and start times come from the shared kernel
// board; under insertion the optimistic start is the earliest fitting gap of
// the processor's timeline instead of max(arrival, ready).
//
// The returned slice is the state's scratch — valid until the next
// placeBestEFT; commit (via sched.Place) copies it into the schedule.
func (st *state) placeBestEFT(t dag.TaskID) ([]sched.Replica, error) {
	st.board.Arrivals(st.f, st.p, st.s, t)
	st.cands = st.cands[:0]
	for j := 0; j < st.p.NumProcs(); j++ {
		pj := platform.ProcID(j)
		e := st.cm.Cost(t, pj)
		sMin := st.board.StartMin(j, st.board.ArrMin[j], e)
		st.cands = append(st.cands, candidate{proc: pj, fMin: sMin + e})
	}
	slices.SortFunc(st.cands, func(a, b candidate) int {
		switch {
		case a.fMin < b.fMin:
			return -1
		case a.fMin > b.fMin:
			return 1
		}
		return int(a.proc) - int(b.proc)
	})
	k := st.opt.Epsilon + 1
	reps := st.reps[:0]
	for i := 0; i < k; i++ {
		pj := st.cands[i].proc
		e := st.cm.Cost(t, pj)
		sMin := st.board.StartMin(int(pj), st.board.ArrMin[pj], e)
		sMax := st.board.StartMax(int(pj), st.board.ArrMax[pj])
		reps = append(reps, sched.Replica{
			Task: t, Copy: i, Proc: pj,
			StartMin: sMin, FinishMin: sMin + e,
			StartMax: sMax, FinishMax: sMax + e,
		})
	}
	st.reps = reps
	return reps, nil
}

// commit checks the deadline (Section 4.3), records the replicas (and the
// matched sources under PatternMatched), advances processor ready times and
// releases newly free successors.
func (st *state) commit(t dag.TaskID, reps []sched.Replica, matched [][]int) error {
	if st.opt.Deadlines != nil {
		worst := 0.0
		for _, r := range reps {
			if r.FinishMin > worst {
				worst = r.FinishMin
			}
		}
		if worst > st.opt.Deadlines[t]+1e-9 {
			return fmt.Errorf("%w: task %d finishes at %.4g after deadline %.4g",
				ErrDeadline, t, worst, st.opt.Deadlines[t])
		}
	}
	if err := st.s.Place(t, reps); err != nil {
		return err
	}
	if matched != nil {
		if err := st.s.SetMatchedSources(t, matched); err != nil {
			return err
		}
	}
	st.board.Commit(reps)
	// Update the dynamic top level of successors (Section 4.1, adapted to
	// replication: the data of t is available once its earliest replica
	// finishes, and we charge the worst-case outgoing delay from that
	// replica's processor since the successor's mapping is unknown).
	succs := st.f.SuccIDs(t)
	vols := st.f.SuccVolumes(t)
	for i, sRaw := range succs {
		se := dag.TaskID(sRaw)
		contrib := math.Inf(1)
		for _, r := range reps {
			c := r.FinishMin + vols[i]*st.maxFrom[r.Proc]
			if c < contrib {
				contrib = c
			}
		}
		if contrib > st.tl[se] {
			st.tl[se] = contrib
		}
		st.unschedPreds[se]--
		if st.unschedPreds[se] == 0 {
			st.push(se)
		}
	}
	return nil
}

func (st *state) finish() (*sched.Schedule, error) {
	if !st.s.Complete() {
		return nil, dag.ErrCycle
	}
	return st.s, nil
}
