package core

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

// testInstance draws a paper-style random instance with a fixed seed.
func testInstance(t *testing.T, seed int64, granularity float64, procs int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(granularity)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 40, 60 // smaller than the paper for fast tests
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestFTSASmallHandComputed(t *testing.T) {
	// Two tasks in a chain, two identical processors, ε=1.
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0) // d = 1 between distinct procs
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 1})
	if err != nil {
		t.Fatalf("FTSA: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Task 0: both replicas start at 0, finish at 5 on both processors.
	for _, r := range s.Replicas(0) {
		if r.StartMin != 0 || r.FinishMin != 5 {
			t.Errorf("task 0 copy %d: got [%g,%g), want [0,5)", r.Copy, r.StartMin, r.FinishMin)
		}
	}
	// Task 1: each replica can start at 5 using the co-located copy of task
	// 0 (intra-processor communication is free), finishing at 12.
	for _, r := range s.Replicas(1) {
		if r.StartMin != 5 || r.FinishMin != 12 {
			t.Errorf("task 1 copy %d: got [%g,%g), want [5,12)", r.Copy, r.StartMin, r.FinishMin)
		}
	}
	if lb := s.LowerBound(); lb != 12 {
		t.Errorf("LowerBound = %g, want 12", lb)
	}
	// Pessimistic: task 1 waits for the remote copy too: 5 + 10*1 = 15,
	// then +7 = 22.
	if ub := s.UpperBound(); ub != 22 {
		t.Errorf("UpperBound = %g, want 22", ub)
	}
}

func TestFTSAValidatesOnRandomInstances(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, eps := range []int{0, 1, 2, 5} {
			inst := testInstance(t, seed, 1.0, 20)
			s, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{
				Epsilon: eps,
				Rng:     rand.New(rand.NewSource(seed)),
			})
			if err != nil {
				t.Fatalf("seed %d ε=%d: FTSA: %v", seed, eps, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d ε=%d: Validate: %v", seed, eps, err)
			}
			lb, ub := s.LowerBound(), s.UpperBound()
			if lb <= 0 || math.IsInf(lb, 1) {
				t.Fatalf("seed %d ε=%d: bad lower bound %g", seed, eps, lb)
			}
			if ub < lb-1e-9 {
				t.Fatalf("seed %d ε=%d: upper bound %g below lower bound %g", seed, eps, ub, lb)
			}
			for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
				if got := len(s.Replicas(dag.TaskID(tsk))); got != eps+1 {
					t.Fatalf("seed %d ε=%d: task %d has %d replicas", seed, eps, tsk, got)
				}
			}
			// Message bound: at most e(ε+1)² inter-processor messages.
			if max := inst.Graph.NumEdges() * (eps + 1) * (eps + 1); s.MessageCount() > max {
				t.Fatalf("seed %d ε=%d: %d messages exceed e(ε+1)²=%d", seed, eps, s.MessageCount(), max)
			}
		}
	}
}

func TestFTSALatencyGrowsWithEpsilon(t *testing.T) {
	// More replication cannot help the fault-free optimistic latency on
	// average; check the guaranteed (upper) bound is monotone-ish by
	// verifying ε=0 lower bound <= ε=2 upper bound.
	inst := testInstance(t, 7, 1.0, 20)
	s0, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.UpperBound() < s0.LowerBound() {
		t.Errorf("ε=2 upper bound %g below fault-free latency %g", s2.UpperBound(), s0.LowerBound())
	}
}

func TestFTSAEpsilonTooLarge(t *testing.T) {
	inst := testInstance(t, 3, 1.0, 4)
	if _, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 4}); err == nil {
		t.Fatal("want error for ε+1 > m, got nil")
	}
}

func TestFTSADeterministicWithoutRng(t *testing.T) {
	inst := testInstance(t, 11, 0.8, 10)
	a, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.LowerBound() != b.LowerBound() || a.UpperBound() != b.UpperBound() {
		t.Errorf("non-deterministic bounds: (%g,%g) vs (%g,%g)",
			a.LowerBound(), a.UpperBound(), b.LowerBound(), b.UpperBound())
	}
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		ra, rb := a.Replicas(dag.TaskID(tsk)), b.Replicas(dag.TaskID(tsk))
		for c := range ra {
			if ra[c] != rb[c] {
				t.Fatalf("task %d copy %d differs: %+v vs %+v", tsk, c, ra[c], rb[c])
			}
		}
	}
}

func TestFTSAFaultFreeMatchesEpsilonZero(t *testing.T) {
	// ε=0 is the fault-free schedule: one replica per task, Min == Max
	// windows (a single copy makes equations 1 and 3 coincide).
	inst := testInstance(t, 13, 1.2, 20)
	s, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		for _, r := range s.Replicas(dag.TaskID(tsk)) {
			if r.StartMin != r.StartMax || r.FinishMin != r.FinishMax {
				t.Fatalf("task %d: fault-free windows differ: %+v", tsk, r)
			}
		}
	}
	if s.LowerBound() != s.UpperBound() {
		t.Errorf("fault-free bounds differ: %g vs %g", s.LowerBound(), s.UpperBound())
	}
}

func TestScheduleOnSingleProcessor(t *testing.T) {
	// m=1, ε=0: everything serializes on one processor; latency is the sum
	// of execution times.
	g := workload.Diamond(5)
	p, err := platform.New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{2}, {3}, {4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if lb := s.LowerBound(); lb != 14 {
		t.Errorf("LowerBound = %g, want 14", lb)
	}
}

func TestFTSAEntryAndExitHeavyGraphs(t *testing.T) {
	// A graph with many entries and exits (no single source/sink).
	g := dag.NewWithTasks("multi", 6)
	g.MustAddEdge(0, 2, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(2, 3, 10)
	g.MustAddEdge(2, 4, 10)
	g.MustAddEdge(1, 5, 10)
	p, err := platform.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cm, err := platform.NewRandomCostModel(rng, 6, 3, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FTSA(g, p, cm, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.CommPattern != sched.PatternAll {
		t.Errorf("pattern = %v, want all", s.CommPattern)
	}
}
