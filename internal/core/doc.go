// Package core implements the paper's primary contribution: FTSA (Fault
// Tolerant Scheduling Algorithm, Algorithm 4.1) and its communication-
// minimizing variant MC-FTSA (Section 4.2), together with the bi-criteria
// drivers of Section 4.3 (maximize tolerated failures under a latency
// budget, and joint feasibility detection via task deadlines).
//
// Both schedulers are list schedulers driven by task criticalness — the sum
// of the dynamic top level tℓ(t) and the static bottom level bℓ(t) — with
// the free list kept in an AVL tree (internal/avl) as the paper specifies.
// Every popped task is mapped onto the ε+1 distinct processors minimizing
// its earliest finish time (equation 1); the pessimistic window of equation
// (3) is recorded alongside, yielding the schedule's guaranteed upper bound.
// MC-FTSA additionally thins each precedence edge's (ε+1)² messages down to
// ε+1 via a robust bipartite matching (internal/bipartite).
//
// Hot-path notes for callers scheduling many instances back to back (the
// campaign engine, the serving layer): Options.BottomLevels lets one
// bℓ computation be shared across runs on the same instance, and the
// per-run working buffers are pooled so steady-state allocation stays flat.
package core
