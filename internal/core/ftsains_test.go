package core

import (
	"errors"
	"math/rand"
	"testing"

	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

// FTSAIns must satisfy every schedule invariant FTSA does — including
// non-overlap of the pessimistic windows, which stay append-only while the
// optimistic windows fill timeline gaps — across instances and ε values.
func TestFTSAInsValid(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst, err := workload.NewInstance(rand.New(rand.NewSource(seed)), workload.DefaultPaperConfig(1.0))
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []int{0, 1, 2, 5} {
			s, err := FTSAIns(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: eps})
			if err != nil {
				t.Fatalf("seed %d ε=%d: %v", seed, eps, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d ε=%d: invalid schedule: %v", seed, eps, err)
			}
			if s.Algorithm != "FTSA-ins" {
				t.Fatalf("algorithm = %q", s.Algorithm)
			}
			if s.UpperBound() < s.LowerBound()-1e-9 {
				t.Fatalf("seed %d ε=%d: upper bound %g below lower bound %g",
					seed, eps, s.UpperBound(), s.LowerBound())
			}
		}
	}
}

// Across a batch of instances, filling gaps must pay off: the summed
// fault-free makespan of ftsa-ins must beat plain FTSA's (a single instance
// can go either way, since an inserted replica perturbs every later greedy
// choice).
func TestFTSAInsImprovesInAggregate(t *testing.T) {
	var ins, plain float64
	for seed := int64(1); seed <= 10; seed++ {
		inst, err := workload.NewInstance(rand.New(rand.NewSource(seed)), workload.DefaultPaperConfig(1.0))
		if err != nil {
			t.Fatal(err)
		}
		si, err := FTSAIns(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := FTSA(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		ins += si.LowerBound()
		plain += sp.LowerBound()
	}
	if ins >= plain {
		t.Errorf("ftsa-ins total lower bound %g not better than ftsa %g", ins, plain)
	}
}

// The deadline-checked path is shared with FTSA through commit; an
// infeasible latency must fail with ErrDeadline, and a generous one succeed.
func TestFTSAInsDeadlines(t *testing.T) {
	inst, err := workload.NewInstance(rand.New(rand.NewSource(3)), workload.DefaultPaperConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	base, err := FTSAIns(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(latency float64) error {
		dls, err := sched.Deadlines(inst.Graph, inst.Costs, inst.Platform, 1, latency)
		if err != nil {
			return err
		}
		_, err = FTSAIns(inst.Graph, inst.Platform, inst.Costs, Options{Epsilon: 1, Deadlines: dls})
		return err
	}
	if err := mk(base.UpperBound() * 2); err != nil {
		t.Errorf("generous latency failed: %v", err)
	}
	if err := mk(base.LowerBound() / 4); !errors.Is(err, ErrDeadline) {
		t.Errorf("infeasible latency: err = %v, want ErrDeadline", err)
	}
}
