package tune

import (
	"fmt"

	"ftsched/internal/sched"
)

// Candidate is one point of the search grid: a scheduler (canonical registry
// name), its replication level and its placement policy.
type Candidate struct {
	Scheduler string `json:"scheduler"`
	Epsilon   int    `json:"epsilon"`
	Policy    string `json:"policy,omitempty"`
}

// String renders the candidate compactly for tables and errors, e.g.
// "mcftsa ε=2 bottleneck" or "heft ε=0".
func (c Candidate) String() string {
	s := fmt.Sprintf("%s ε=%d", c.Scheduler, c.Epsilon)
	if c.Policy != "" {
		s += " " + c.Policy
	}
	return s
}

// DefaultEpsilons is the ε ladder candidates sweep when the caller does not
// supply one — the paper's ε ∈ {1, 2, 5} grid dimension.
func DefaultEpsilons() []int { return []int{1, 2, 5} }

// DeriveCandidates builds the candidate grid from the scheduler registry's
// capability surface, for a platform of m processors: every registered
// scheduler, crossed with the ε ladder (fault-tolerant schedulers only;
// non-fault-tolerant ones contribute a single ε=0 reference point) and the
// policies its registration declares sweep-worthy (Registration.
// SweepPolicies). Ladder entries a scheduler cannot realize on m processors
// (ε+1 > m) are skipped rather than rejected, so one ladder serves every
// platform size. An empty or nil ladder means DefaultEpsilons.
//
// The grid order is deterministic — registry registration order, then
// ladder order, then policy order — and is the order Run reports results in.
func DeriveCandidates(m int, epsilons []int) []Candidate {
	if len(epsilons) == 0 {
		epsilons = DefaultEpsilons()
	}
	var out []Candidate
	for _, r := range sched.Registrations() {
		ladder := epsilons
		if !r.FaultTolerant {
			ladder = []int{0}
		}
		for _, eps := range ladder {
			if eps+1 > m {
				continue
			}
			for _, policy := range r.SweepPolicies() {
				out = append(out, Candidate{Scheduler: r.Name(), Epsilon: eps, Policy: policy})
			}
		}
	}
	return out
}

// checkCandidates validates an explicit candidate list against the registry
// and the platform size, producing the same uniform errors every dispatch
// site reports.
func checkCandidates(cands []Candidate, m int) error {
	if len(cands) == 0 {
		return fmt.Errorf("tune: empty candidate grid (no registered scheduler fits the platform)")
	}
	seen := make(map[Candidate]bool, len(cands))
	for _, c := range cands {
		info, ok := sched.LookupInfo(c.Scheduler)
		if !ok {
			return sched.UnknownSchedulerError(c.Scheduler)
		}
		if err := info.Check(sched.RunOptions{Epsilon: c.Epsilon, Policy: c.Policy}); err != nil {
			return err
		}
		if c.Epsilon+1 > m {
			return fmt.Errorf("tune: candidate %s needs %d distinct processors, platform has %d",
				c, c.Epsilon+1, m)
		}
		// Duplicates would be scored twice and could seat two copies of one
		// point on the frontier; detect them on canonical coordinates.
		key := Candidate{Scheduler: info.Name(), Epsilon: c.Epsilon, Policy: c.Policy}
		if seen[key] {
			return fmt.Errorf("tune: duplicate candidate %s", key)
		}
		seen[key] = true
	}
	return nil
}
