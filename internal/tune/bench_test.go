package tune_test

import (
	"testing"

	"ftsched/internal/tune"
)

// BenchmarkTune compares the successive-halving search against the naive
// full-trial sweep on the fixed tuning instance: "halving" screens every
// candidate cheaply and spends the full budget only on unpruned survivors,
// "naive" evaluates the whole grid at full fidelity. ns/op of halving must
// stay below naive — the headline claim of the screening pass; the
// sub-benchmark reports trials/op so the pruning scoreboard is visible next
// to the wall-clock numbers.
func BenchmarkTune(b *testing.B) {
	spec := tuneSpec(b, tuneInstance(b, 42, 1.0))
	spec.Workers = 1
	for _, mode := range []struct {
		name   string
		screen int
	}{
		{"halving", 0},         // default screen: Trials/8
		{"naive", spec.Trials}, // screen == full budget disables pruning
	} {
		b.Run(mode.name, func(b *testing.B) {
			s := spec
			s.ScreenTrials = mode.screen
			b.ReportAllocs()
			trials := 0
			for i := 0; i < b.N; i++ {
				res, err := tune.Run(s)
				if err != nil {
					b.Fatal(err)
				}
				trials += res.EvaluatedTrials
			}
			b.ReportMetric(float64(trials)/float64(b.N), "trials/op")
		})
	}
}
