// Package tune is the configuration-search layer of ftsched: given one
// workload (DAG + platform + cost matrix), a failure scenario and a
// reliability target, it answers the question the rest of the system leaves
// to the user — which scheduler, ε and policy should I run?
//
// The search space is the candidate grid derived from the scheduler
// registry's capability surface (DeriveCandidates): every registered
// scheduler × an ε ladder (fault-tolerant schedulers only) × the policies
// its registration declares worth sweeping. Each candidate is scheduled
// through the shared placement path (sched.Run with one shared bottom-level
// computation) and scored by the Monte-Carlo failure-injection engine
// (sim.Evaluate). The output is the Pareto frontier of
// (expected latency, success probability) plus a recommended point for the
// caller's reliability target.
//
// Three properties shape the implementation:
//
//   - Determinism. Candidates run on a worker pool (the expt engine's
//     pattern), but every candidate derives its scheduling seed from the
//     base seed and its own coordinates by FNV-1a, and results aggregate in
//     grid order — so Run's output, serialized, is byte-identical at any
//     Workers value.
//
//   - Common random numbers. Every candidate is evaluated under the same
//     evaluation seed, which (via sim.TrialSeed) means trial t draws the
//     identical failure scenario for every candidate. Differences between
//     candidates are therefore differences between schedules, not between
//     failure samples — the paired-comparison discipline the campaign
//     engine's evalSeed uses.
//
//   - Successive halving. A cheap low-trial screen runs first; a candidate
//     is pruned before the full-trial phase only when some other candidate
//     dominates it pessimistically, under either of two conservative tests.
//     The paired test exploits the shared draws directly: on the discordant
//     screen trials the dominator must be strictly more reliable (a clean
//     sweep of enough trials, or a 95% sign test when it lost a few), and
//     no slower with confidence (whole paired-latency interval at or below
//     zero) on the trials both survived. The marginal test requires the
//     dominator's whole 95% Wilson success interval and whole
//     expected-latency interval to clear the candidate's in both
//     objectives. Both tests are statistical, so frontier preservation is
//     a high-confidence property, not an absolute guarantee — the tests
//     pin it across seeded workload grids (and ScreenTrials >= Trials
//     forces the exact naive sweep) — while pruning evaluates a fraction
//     of the trials.
package tune
