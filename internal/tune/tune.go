package tune

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
)

// wilsonZ is the z-score of the 95% intervals the pruning rule compares —
// the same confidence level sim.Evaluate reports.
const wilsonZ = 1.96

// pruneMinWins is the success margin the sample-path pruning test demands:
// the dominator must have survived at least this many screen trials the
// pruned candidate lost, with zero trials won the other way. n wins against
// zero losses is a sign test at significance 2^-n; 4 clears the same 95%
// level the interval test uses and in practice keeps a screened-out
// candidate from overtaking its dominator's success rate on the full run.
const pruneMinWins = 4

// Spec describes one auto-tuning run: the workload, the candidate grid, the
// failure scenario every candidate is scored under, and the search budget.
type Spec struct {
	// Graph, Platform and Costs are the workload, shared by every candidate.
	Graph    *dag.Graph
	Platform *platform.Platform
	Costs    *platform.CostModel
	// Candidates is the explicit grid; empty derives it from the scheduler
	// registry via DeriveCandidates(NumProcs, Epsilons).
	Candidates []Candidate
	// Epsilons is the ε ladder of the derived grid (ignored when Candidates
	// is set); empty means DefaultEpsilons.
	Epsilons []int
	// Scenario is the failure-scenario generator every candidate is
	// evaluated under. Shared evaluation seeding makes trial t draw the
	// identical scenario for every candidate.
	Scenario sim.ScenarioSpec
	// Trials is the full-fidelity evaluation budget per candidate.
	Trials int
	// ScreenTrials is the cheap screening budget of the successive-halving
	// pass: every candidate is first evaluated on this many trials, and only
	// candidates no other candidate pessimistically dominates proceed to the
	// full Trials. 0 picks Trials/8 (at least 16); a value >= Trials
	// disables pruning and runs the naive full sweep.
	ScreenTrials int
	// Target is the success probability the recommendation must meet,
	// e.g. 0.99.
	Target float64
	// Seed is the base seed: per-candidate scheduling seeds and the shared
	// evaluation seed derive from it by FNV-1a, so the result is a pure
	// function of the spec.
	Seed int64
	// Workers is the candidate-level worker-pool size (<= 0 means
	// GOMAXPROCS). The aggregated result is byte-identical for every value.
	Workers int
	// BottomLevels, when non-nil, supplies the workload's precomputed static
	// bottom levels (sched.AvgBottomLevels) — the serving layer passes its
	// instance memo. Nil computes them once per Run; either way all
	// candidates share one slice.
	BottomLevels []float64
	// WorstCase, when non-nil, additionally runs a budgeted adversarial
	// search (sim.WorstCase) on every candidate that survives to the full
	// pass, reporting a deterministic worst-case column next to the
	// Monte-Carlo mean.
	WorstCase *sim.AdversarySpec
	// Robust switches the recommendation to worst-case optimization: among
	// candidates meeting Target, pick the one whose adversarial worst case
	// is mildest (survived beats missed, then lowest worst latency) instead
	// of the one with the best Monte-Carlo mean. Requires WorstCase.
	Robust bool
}

// Eval is the tuner's summary of one sim.Evaluate batch: the success
// probability with its 95% Wilson interval, and the latency of successful
// trials with the 95% interval of its mean (zero-valued when nothing
// succeeded).
type Eval struct {
	Trials      int     `json:"trials"`
	Successes   int     `json:"successes"`
	SuccessRate float64 `json:"success_rate"`
	SuccessLow  float64 `json:"success_low"`
	SuccessHigh float64 `json:"success_high"`
	LatencyMean float64 `json:"latency_mean"`
	LatencyP99  float64 `json:"latency_p99"`
	// LatencyMeanLow/High bound the expected latency (z·σ/√n around the
	// mean); the pruning rule compares these whole intervals.
	LatencyMeanLow  float64 `json:"latency_mean_low"`
	LatencyMeanHigh float64 `json:"latency_mean_high"`
}

func newEval(r *sim.EvalResult) Eval {
	e := Eval{
		Trials:      r.Trials,
		Successes:   r.Successes,
		SuccessRate: r.SuccessRate,
		SuccessLow:  r.SuccessLow,
		SuccessHigh: r.SuccessHigh,
	}
	if lo, hi, ok := r.LatencyMeanInterval(wilsonZ); ok {
		e.LatencyMean = r.Latency.Mean
		e.LatencyP99 = r.Latency.P99
		e.LatencyMeanLow, e.LatencyMeanHigh = lo, hi
	}
	return e
}

// CandidateResult is one candidate's scorecard. Screen is present whenever a
// screening pass ran; Full is absent exactly when the candidate was pruned.
type CandidateResult struct {
	Candidate
	// LowerBound and UpperBound are the schedule's deterministic latency
	// bounds (equations 2 and 4) — the frame the simulated latencies live in.
	LowerBound float64 `json:"lower_bound"`
	UpperBound float64 `json:"upper_bound"`
	Screen     *Eval   `json:"screen,omitempty"`
	Pruned     bool    `json:"pruned,omitempty"`
	Full       *Eval   `json:"full,omitempty"`
	// Frontier marks membership in the Pareto frontier of
	// (expected latency, success probability) over the full evaluations.
	Frontier bool `json:"frontier,omitempty"`
	// WorstCase is the candidate's adversarial search result, present
	// exactly when the spec asked for one and the candidate reached the
	// full pass (pruned candidates are not searched).
	WorstCase *sim.WorstCaseResult `json:"worst_case,omitempty"`
}

// Result is a completed tuning run. Serialized with encoding/json it is
// byte-identical across worker counts at equal spec — the property the
// serving layer's byte-exact response cache relies on.
type Result struct {
	// Scenario is the canonical spec string of the scoring scenario.
	Scenario string `json:"scenario"`
	// Trials and ScreenTrials echo the resolved budgets.
	Trials       int     `json:"trials"`
	ScreenTrials int     `json:"screen_trials"`
	Target       float64 `json:"target"`
	Seed         int64   `json:"seed"`
	// Candidates holds every grid point in grid order, pruned ones included.
	Candidates []CandidateResult `json:"candidates"`
	// Frontier indexes Candidates, ascending in expected latency. Frontier
	// points are exactly the non-dominated full evaluations.
	Frontier []int `json:"frontier"`
	// Recommended indexes Candidates: the cheapest frontier point whose
	// success rate meets Target when one exists (TargetMet true), otherwise
	// the most reliable point; -1 when no candidate survived any trial.
	Recommended int  `json:"recommended"`
	TargetMet   bool `json:"target_met"`
	// EvaluatedTrials counts the simulation trials actually run — the
	// successive-halving scoreboard (the naive sweep costs
	// len(Candidates) × Trials). Adversarial replays count too when a
	// worst-case search ran.
	EvaluatedTrials int `json:"evaluated_trials"`
	// WorstCase echoes the normalized adversarial budget when one ran;
	// Robust reports that the recommendation optimized the worst case.
	WorstCase string `json:"worst_case,omitempty"`
	Robust    bool   `json:"robust,omitempty"`
}

// Best returns the recommended candidate result, or nil when Recommended is
// -1 (no candidate survived a single trial).
func (r *Result) Best() *CandidateResult {
	if r.Recommended < 0 {
		return nil
	}
	return &r.Candidates[r.Recommended]
}

// candSeed feeds one candidate's scheduling tie-break RNG, derived by the
// shared FNV-1a discipline (sim.DeriveSeed, the campaign engine's); it
// depends on the candidate's full coordinates so no two grid points share a
// stream.
func candSeed(base int64, c Candidate) int64 {
	return sim.DeriveSeed(base, "sched", c.Scheduler, strconv.Itoa(c.Epsilon), c.Policy)
}

// evalSeed feeds every candidate's failure draws. It deliberately excludes
// the candidate coordinates: trial t then samples the identical scenario for
// every candidate (common random numbers), so candidates are compared on the
// same failure sample.
func evalSeed(base int64) int64 { return sim.DeriveSeed(base, "eval") }

// resolveScreen applies the ScreenTrials defaulting rule.
func resolveScreen(screen, trials int) int {
	if screen == 0 {
		screen = trials / 8
		if screen < 16 {
			screen = 16
		}
	}
	if screen > trials {
		screen = trials
	}
	return screen
}

// check validates the spec and resolves the candidate grid.
func (s Spec) check() ([]Candidate, error) {
	if s.Graph == nil || s.Platform == nil || s.Costs == nil {
		return nil, fmt.Errorf("tune: spec needs graph, platform and costs")
	}
	v, m := s.Graph.NumTasks(), s.Platform.NumProcs()
	if s.Costs.NumTasks() != v || s.Costs.NumProcs() != m {
		return nil, fmt.Errorf("tune: costs cover %d×%d, want %d tasks × %d processors",
			s.Costs.NumTasks(), s.Costs.NumProcs(), v, m)
	}
	if s.Trials < 1 {
		return nil, fmt.Errorf("tune: need trials >= 1, got %d", s.Trials)
	}
	if s.ScreenTrials < 0 {
		return nil, fmt.Errorf("tune: need screen trials >= 0, got %d", s.ScreenTrials)
	}
	if s.Target < 0 || s.Target > 1 {
		return nil, fmt.Errorf("tune: target must be a probability in [0, 1], got %g", s.Target)
	}
	gen, err := s.Scenario.Generator()
	if err != nil {
		return nil, err
	}
	if err := gen.Check(m); err != nil {
		return nil, err
	}
	if s.WorstCase != nil {
		if err := s.WorstCase.Validate(); err != nil {
			return nil, err
		}
	} else if s.Robust {
		return nil, fmt.Errorf("tune: robust mode needs a worst-case budget (set WorstCase)")
	}
	cands := s.Candidates
	if len(cands) == 0 {
		cands = DeriveCandidates(m, s.Epsilons)
	}
	if err := checkCandidates(cands, m); err != nil {
		return nil, err
	}
	return cands, nil
}

// candState is one candidate's mutable slot during a run. Slots are written
// only by the worker owning the index, so the pool needs no locking.
type candState struct {
	schedule *sched.Schedule
	screen   *sim.EvalResult
	full     *sim.EvalResult
	wc       *sim.WorstCaseResult
	// screenOK and screenLat record the screening pass trial by trial.
	// Every candidate's trial t ran the identical failure scenario (shared
	// evaluation seed), so these align across candidates and support the
	// paired pruning comparison.
	screenOK  []bool
	screenLat []float64
	err       error
}

// forEach runs fn over the indices on a bounded worker pool and waits. fn
// must confine its writes to per-index state.
func forEach(workers int, idx []int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idx) {
		workers = len(idx)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for _, i := range idx {
		work <- i
	}
	close(work)
	wg.Wait()
}

// Run executes the tuning search and returns the Pareto frontier with a
// recommendation. See the package comment for the determinism, shared-draw
// and pruning contracts.
func Run(spec Spec) (*Result, error) {
	cands, err := spec.check()
	if err != nil {
		return nil, err
	}
	g, p, cm := spec.Graph, spec.Platform, spec.Costs
	gen, _ := spec.Scenario.Generator() // validated by check

	bl := spec.BottomLevels
	if bl == nil {
		if bl, err = sched.AvgBottomLevels(g, cm, p); err != nil {
			return nil, err
		}
	}

	screen := resolveScreen(spec.ScreenTrials, spec.Trials)
	naive := screen == spec.Trials
	eseed := evalSeed(spec.Seed)
	states := make([]candState, len(cands))
	all := make([]int, len(cands))
	for i := range all {
		all[i] = i
	}

	// Phase 1: schedule every candidate once (schedules are reused by the
	// full pass) and evaluate it on the screening budget — or directly on
	// the full budget when pruning is disabled.
	firstTrials := screen
	if naive {
		firstTrials = spec.Trials
	}
	forEach(spec.Workers, all, func(i int) {
		st := &states[i]
		c := cands[i]
		s, err := sched.Run(c.Scheduler, g, p, cm, sched.RunOptions{
			Epsilon:      c.Epsilon,
			Policy:       c.Policy,
			Rng:          rand.New(rand.NewSource(candSeed(spec.Seed, c))),
			BottomLevels: bl,
		})
		if err != nil {
			st.err = err
			return
		}
		if err := s.Validate(); err != nil {
			st.err = fmt.Errorf("generated schedule failed validation: %w", err)
			return
		}
		st.schedule = s
		opt := sim.EvalOptions{Seed: eseed, Workers: 1}
		if !naive {
			st.screenOK = make([]bool, firstTrials)
			st.screenLat = make([]float64, firstTrials)
			opt.OnTrial = func(trial int, ok bool, latency float64) {
				st.screenOK[trial] = ok
				st.screenLat[trial] = latency
			}
		}
		res, err := sim.Evaluate(s, gen, firstTrials, opt)
		if err != nil {
			st.err = err
			return
		}
		if naive {
			st.full = res
		} else {
			st.screen = res
		}
	})
	for i, st := range states {
		if st.err != nil {
			return nil, fmt.Errorf("tune: candidate %s: %w", cands[i], st.err)
		}
	}
	evaluated := len(cands) * firstTrials

	// Successive halving: prune pessimistically dominated candidates, then
	// spend the full budget only on the survivors.
	var pruned []bool
	if !naive {
		pruned = pruneDominated(states)
		var survivors []int
		for i := range states {
			if !pruned[i] {
				survivors = append(survivors, i)
			}
		}
		forEach(spec.Workers, survivors, func(i int) {
			st := &states[i]
			res, err := sim.Evaluate(st.schedule, gen, spec.Trials, sim.EvalOptions{Seed: eseed, Workers: 1})
			if err != nil {
				st.err = err
				return
			}
			st.full = res
		})
		for _, i := range survivors {
			if states[i].err != nil {
				return nil, fmt.Errorf("tune: candidate %s: %w", cands[i], states[i].err)
			}
		}
		evaluated += len(survivors) * spec.Trials
	}

	// Adversarial pass: search the worst case of every candidate that made
	// it to the full evaluation. The search itself is single-threaded and
	// deterministic; running candidates on the pool keeps wall-clock down
	// without touching the result, and the replay count is summed in grid
	// order so EvaluatedTrials is deterministic too.
	if spec.WorstCase != nil {
		var full []int
		for i := range states {
			if states[i].full != nil {
				full = append(full, i)
			}
		}
		forEach(spec.Workers, full, func(i int) {
			st := &states[i]
			wc, err := sim.WorstCase(st.schedule, *spec.WorstCase, sim.Options{})
			if err != nil {
				st.err = err
				return
			}
			st.wc = wc
		})
		for _, i := range full {
			if states[i].err != nil {
				return nil, fmt.Errorf("tune: candidate %s: %w", cands[i], states[i].err)
			}
			evaluated += states[i].wc.Evals
		}
	}

	res := &Result{
		Scenario:        spec.Scenario.String(),
		Trials:          spec.Trials,
		ScreenTrials:    screen,
		Target:          spec.Target,
		Seed:            spec.Seed,
		Candidates:      make([]CandidateResult, len(cands)),
		Frontier:        []int{},
		Recommended:     -1,
		EvaluatedTrials: evaluated,
		Robust:          spec.Robust,
	}
	if spec.WorstCase != nil {
		res.WorstCase = spec.WorstCase.String()
	}
	for i, st := range states {
		cr := CandidateResult{
			Candidate:  cands[i],
			LowerBound: st.schedule.LowerBound(),
			UpperBound: st.schedule.UpperBound(),
		}
		if st.screen != nil {
			e := newEval(st.screen)
			cr.Screen = &e
		}
		if pruned != nil && pruned[i] {
			cr.Pruned = true
		}
		if st.full != nil {
			e := newEval(st.full)
			cr.Full = &e
		}
		cr.WorstCase = st.wc
		res.Candidates[i] = cr
	}
	markFrontier(res)
	if spec.Robust {
		recommendRobust(res)
	} else {
		recommend(res)
	}
	return res, nil
}

// pruneDominated decides which candidates skip the full-trial pass. A
// candidate is pruned iff some other candidate beats it under either of two
// conservative tests, both exploiting that all candidates screened on the
// identical failure draws:
//
//   - Paired domination. On the discordant trials (shared draws only one of
//     the two survived), j must be strictly more reliable: a clean sweep of
//     at least pruneMinWins trials with zero losses, or — when j lost a
//     few — a net win margin clearing a 95% sign test. And j must be no
//     slower with confidence: the whole paired-latency interval over the
//     trials both survived sits at or below zero. Pairing on common draws
//     is what makes both margins far tighter than marginal statistics.
//
//   - Interval domination (marginal). j's whole 95% Wilson success interval
//     lies above i's AND j's whole expected-latency interval lies below
//     i's. This catches wide-margin domination even when discordant trials
//     weaken the paired test. A candidate with zero screen successes has
//     no latency interval; it can be pruned by any candidate whose success
//     interval clears its Wilson upper bound, and can never prune.
func pruneDominated(states []candState) []bool {
	n := len(states)
	type iv struct {
		sLo, sHi float64 // Wilson success interval
		lLo, lHi float64 // expected-latency interval; meaningless when !ok
		ok       bool    // had at least one success
	}
	ivs := make([]iv, n)
	for i := range states {
		r := states[i].screen
		ivs[i].sLo, ivs[i].sHi = r.SuccessLow, r.SuccessHigh
		if lo, hi, ok := r.LatencyMeanInterval(wilsonZ); ok {
			ivs[i].lLo, ivs[i].lHi, ivs[i].ok = lo, hi, true
		}
	}
	paired := func(j, i int) bool {
		// Success, paired: count the trials whose shared failure draw only
		// one candidate survived.
		wins, losses := 0, 0 // j's wins/losses against i on discordant trials
		var dn int
		var dSum, dSumSq float64 // latency differences l_j - l_i on common successes
		for t := range states[i].screenOK {
			switch {
			case states[i].screenOK[t] && !states[j].screenOK[t]:
				losses++
			case states[j].screenOK[t] && !states[i].screenOK[t]:
				wins++
			case states[i].screenOK[t]:
				d := states[j].screenLat[t] - states[i].screenLat[t]
				dn++
				dSum += d
				dSumSq += d * d
			}
		}
		// j must be strictly more reliable on the sample: either a clean
		// sweep of enough discordant trials, or a significant sign test.
		var succBetter bool
		if losses == 0 {
			succBetter = wins >= pruneMinWins
		} else {
			d := float64(wins - losses)
			succBetter = d > wilsonZ*math.Sqrt(float64(wins+losses))
		}
		if !succBetter {
			return false
		}
		// And no slower with confidence: the whole paired-latency interval
		// over common successes (far tighter than marginal intervals, since
		// both replays faced the same crashes) must sit at or below zero.
		// No common successes means no latency evidence against j.
		if dn == 0 {
			return true
		}
		mean := dSum / float64(dn)
		varr := dSumSq/float64(dn) - mean*mean
		if varr < 0 {
			varr = 0
		}
		return mean+wilsonZ*math.Sqrt(varr/float64(dn)) <= 0
	}
	interval := func(j, i int) bool {
		if !ivs[j].ok {
			return false // a success-free candidate never dominates
		}
		betterSuccess := ivs[j].sLo > ivs[i].sHi
		betterLatency := !ivs[i].ok || ivs[j].lHi < ivs[i].lLo
		return betterSuccess && betterLatency
	}
	pruned := make([]bool, n)
	for i := range states {
		for j := range states {
			if j != i && (paired(j, i) || interval(j, i)) {
				pruned[i] = true
				break
			}
		}
	}
	return pruned
}

// eligible reports whether a candidate competes for the frontier: it has a
// full evaluation with at least one success.
func eligible(cr *CandidateResult) bool {
	return cr.Full != nil && cr.Full.Successes > 0
}

// dominates reports Pareto domination of a over b on
// (success rate max, expected latency min).
func dominates(a, b *Eval) bool {
	if a.SuccessRate < b.SuccessRate || a.LatencyMean > b.LatencyMean {
		return false
	}
	return a.SuccessRate > b.SuccessRate || a.LatencyMean < b.LatencyMean
}

// markFrontier computes the Pareto frontier over the eligible full
// evaluations, sorted ascending in expected latency (ties by grid index).
func markFrontier(res *Result) {
	var front []int
	for i := range res.Candidates {
		ci := &res.Candidates[i]
		if !eligible(ci) {
			continue
		}
		dominated := false
		for j := range res.Candidates {
			if j == i || !eligible(&res.Candidates[j]) {
				continue
			}
			if dominates(res.Candidates[j].Full, ci.Full) {
				dominated = true
				break
			}
		}
		if !dominated {
			ci.Frontier = true
			front = append(front, i)
		}
	}
	sort.Slice(front, func(a, b int) bool {
		fa, fb := res.Candidates[front[a]].Full, res.Candidates[front[b]].Full
		if fa.LatencyMean != fb.LatencyMean {
			return fa.LatencyMean < fb.LatencyMean
		}
		return front[a] < front[b]
	})
	if front != nil {
		res.Frontier = front
	}
}

// recommend picks the operating point: the cheapest candidate meeting the
// success target when one exists, otherwise the most reliable one. Ties
// break toward higher success, then lower latency, then grid order, so the
// choice is deterministic and always lands on the frontier.
func recommend(res *Result) {
	best, bestMeets := -1, false
	better := func(i int) bool {
		fi, fb := res.Candidates[i].Full, res.Candidates[best].Full
		meets := fi.SuccessRate >= res.Target
		if meets != bestMeets {
			return meets
		}
		if meets {
			if fi.LatencyMean != fb.LatencyMean {
				return fi.LatencyMean < fb.LatencyMean
			}
			return fi.SuccessRate > fb.SuccessRate
		}
		if fi.SuccessRate != fb.SuccessRate {
			return fi.SuccessRate > fb.SuccessRate
		}
		return fi.LatencyMean < fb.LatencyMean
	}
	for i := range res.Candidates {
		if !eligible(&res.Candidates[i]) {
			continue
		}
		if best < 0 || better(i) {
			best = i
			bestMeets = res.Candidates[i].Full.SuccessRate >= res.Target
		}
	}
	res.Recommended = best
	res.TargetMet = best >= 0 && bestMeets
}

// recommendRobust is the worst-case counterpart of recommend: a candidate
// "meets" only when its Monte-Carlo success clears Target AND the adversary
// found no miss within budget. Preference order inside each class: survived
// worst case beats missed, then lower worst-case latency, then higher
// success rate, then lower mean latency, then grid order — deterministic,
// like everything the cache serves.
func recommendRobust(res *Result) {
	meets := func(i int) bool {
		cr := &res.Candidates[i]
		return cr.Full.SuccessRate >= res.Target && cr.WorstCase != nil && !cr.WorstCase.Missed
	}
	// Rank the worst case: survived sorts below missed, by worst latency.
	rank := func(i int) (missed bool, lat float64) {
		wc := res.Candidates[i].WorstCase
		if wc == nil || wc.Missed {
			return true, math.Inf(1)
		}
		return false, wc.Latency
	}
	best, bestMeets := -1, false
	better := func(i int) bool {
		if m := meets(i); m != bestMeets {
			return m
		}
		iMiss, iLat := rank(i)
		bMiss, bLat := rank(best)
		if iMiss != bMiss {
			return bMiss
		}
		if iLat != bLat {
			return iLat < bLat
		}
		fi, fb := res.Candidates[i].Full, res.Candidates[best].Full
		if fi.SuccessRate != fb.SuccessRate {
			return fi.SuccessRate > fb.SuccessRate
		}
		return fi.LatencyMean < fb.LatencyMean
	}
	for i := range res.Candidates {
		if !eligible(&res.Candidates[i]) {
			continue
		}
		if best < 0 || better(i) {
			best = i
			bestMeets = meets(i)
		}
	}
	res.Recommended = best
	res.TargetMet = best >= 0 && bestMeets
}
