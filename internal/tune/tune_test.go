package tune_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/tune"
	"ftsched/internal/workload"
)

// tuneInstance builds a deterministic mid-size workload for tuning tests.
func tuneInstance(t testing.TB, seed int64, gran float64) *workload.Instance {
	t.Helper()
	cfg := workload.DefaultPaperConfig(gran)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// tuneSpec builds a spec whose failure rate scales with the instance (about
// three expected failures across the platform per mission window — harsh
// enough that ε separates candidates), so success rates land strictly
// between 0 and 1 and the frontier has real shape.
func tuneSpec(t testing.TB, inst *workload.Instance) tune.Spec {
	t.Helper()
	s, err := sched.Run("ftsa", inst.Graph, inst.Platform, inst.Costs, sched.RunOptions{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	lambda := 3.0 / (float64(inst.Platform.NumProcs()) * s.UpperBound())
	return tune.Spec{
		Graph:    inst.Graph,
		Platform: inst.Platform,
		Costs:    inst.Costs,
		Scenario: sim.ScenarioSpec{Kind: "exp", Lambda: lambda},
		Trials:   640,
		Target:   0.95,
		Seed:     1,
	}
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// The acceptance criterion: same spec, any worker count, byte-identical
// TuneResult JSON — pruning decisions included.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := tuneSpec(t, tuneInstance(t, 42, 1.0))
	var want []byte
	for _, workers := range []int{1, 3, 16} {
		spec.Workers = workers
		res, err := tune.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		blob := marshal(t, res)
		if want == nil {
			want = blob
			continue
		}
		if !bytes.Equal(want, blob) {
			t.Fatalf("workers=%d changed the result JSON:\n%s\nvs\n%s", workers, want, blob)
		}
	}
}

// frontierSet projects a result's frontier onto candidate identities.
func frontierSet(res *tune.Result) map[tune.Candidate]bool {
	out := make(map[tune.Candidate]bool, len(res.Frontier))
	for _, i := range res.Frontier {
		out[res.Candidates[i].Candidate] = true
	}
	return out
}

// The successive-halving safety property: across a seeded grid of workloads,
// the pruned run's frontier is exactly the frontier of the naive full-trial
// sweep — the conservative interval rule never discards a candidate that
// would have been Pareto-optimal at full fidelity. (Everything is seeded, so
// this is a fixed, reproducible check, not a flaky statistical one.)
func TestPruningPreservesFrontier(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, gran := range []float64{0.5, 1.5} {
			t.Run(fmt.Sprintf("seed=%d/gran=%g", seed, gran), func(t *testing.T) {
				spec := tuneSpec(t, tuneInstance(t, seed, gran))
				pruned, err := tune.Run(spec)
				if err != nil {
					t.Fatal(err)
				}
				naiveSpec := spec
				naiveSpec.ScreenTrials = spec.Trials // disables pruning
				naive, err := tune.Run(naiveSpec)
				if err != nil {
					t.Fatal(err)
				}
				got, want := frontierSet(pruned), frontierSet(naive)
				for c := range want {
					if !got[c] {
						t.Errorf("pruning dropped frontier point %s", c)
					}
				}
				for c := range got {
					if !want[c] {
						t.Errorf("pruned run promoted non-frontier point %s", c)
					}
				}
				// Survivors re-run the identical trial seeds, so the
				// recommendation must agree with the naive sweep too.
				if pruned.Recommended >= 0 &&
					pruned.Candidates[pruned.Recommended].Candidate != naive.Candidates[naive.Recommended].Candidate {
					t.Errorf("recommendation drifted under pruning: %s vs %s",
						pruned.Candidates[pruned.Recommended].Candidate,
						naive.Candidates[naive.Recommended].Candidate)
				}
				if pruned.EvaluatedTrials >= naive.EvaluatedTrials {
					t.Errorf("pruning evaluated %d trials, naive sweep %d — the screen bought nothing",
						pruned.EvaluatedTrials, naive.EvaluatedTrials)
				}
			})
		}
	}
}

// The frontier must be non-dominated, latency-sorted, and contain the
// recommendation; a met target means the recommendation clears it.
func TestFrontierInvariants(t *testing.T) {
	spec := tuneSpec(t, tuneInstance(t, 42, 1.0))
	res, err := tune.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier on a healthy instance")
	}
	for _, i := range res.Frontier {
		fi := res.Candidates[i].Full
		if fi == nil {
			t.Fatalf("frontier point %d has no full evaluation", i)
		}
		for j := range res.Candidates {
			fj := res.Candidates[j].Full
			if j == i || fj == nil || fj.Successes == 0 {
				continue
			}
			if fj.SuccessRate >= fi.SuccessRate && fj.LatencyMean <= fi.LatencyMean &&
				(fj.SuccessRate > fi.SuccessRate || fj.LatencyMean < fi.LatencyMean) {
				t.Errorf("frontier point %s is dominated by %s",
					res.Candidates[i].Candidate, res.Candidates[j].Candidate)
			}
		}
	}
	for k := 1; k < len(res.Frontier); k++ {
		a := res.Candidates[res.Frontier[k-1]].Full
		b := res.Candidates[res.Frontier[k]].Full
		if a.LatencyMean > b.LatencyMean {
			t.Errorf("frontier not latency-sorted at position %d", k)
		}
		// Walking up the frontier in latency must buy reliability.
		if b.SuccessRate <= a.SuccessRate {
			t.Errorf("frontier point %d adds latency without adding success", k)
		}
	}
	best := res.Best()
	if best == nil || !best.Frontier {
		t.Fatalf("recommendation %v is off the frontier", best)
	}
	if res.TargetMet && best.Full.SuccessRate < res.Target {
		t.Errorf("target_met but recommended success %g < target %g", best.Full.SuccessRate, res.Target)
	}

	// An unreachable target keeps the same frontier but flips TargetMet.
	spec.Target = 1.0
	hard, err := tune.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hard.TargetMet && hard.Best().Full.SuccessRate < 1 {
		t.Error("claims to meet a perfect-reliability target without perfect success")
	}
}

func TestDeriveCandidates(t *testing.T) {
	// Large platform: every fault-tolerant scheduler sweeps the full ladder
	// crossed with its sweep policies; non-FT schedulers pin ε=0.
	cands := tune.DeriveCandidates(20, nil)
	byName := map[string]int{}
	for _, c := range cands {
		byName[c.Scheduler]++
		info, ok := sched.LookupInfo(c.Scheduler)
		if !ok {
			t.Fatalf("derived unknown scheduler %q", c.Scheduler)
		}
		if err := info.Check(sched.RunOptions{Epsilon: c.Epsilon, Policy: c.Policy}); err != nil {
			t.Errorf("derived invalid candidate %s: %v", c, err)
		}
	}
	for _, r := range sched.Registrations() {
		want := len(r.SweepPolicies())
		if r.FaultTolerant {
			want *= len(tune.DefaultEpsilons())
		}
		if byName[r.Name()] != want {
			t.Errorf("scheduler %s: %d candidates, want %d", r.Name(), byName[r.Name()], want)
		}
	}
	// Tiny platform: ladder entries that cannot be realized are skipped, not
	// rejected — only the ε=0 references remain on a single processor.
	for _, c := range tune.DeriveCandidates(1, nil) {
		if c.Epsilon != 0 {
			t.Errorf("single-processor grid kept ε=%d candidate %s", c.Epsilon, c)
		}
	}
}

func TestRunErrors(t *testing.T) {
	inst := tuneInstance(t, 42, 1.0)
	base := tuneSpec(t, inst)
	cases := map[string]func(*tune.Spec){
		"nil graph":     func(s *tune.Spec) { s.Graph = nil },
		"zero trials":   func(s *tune.Spec) { s.Trials = 0 },
		"neg screen":    func(s *tune.Spec) { s.ScreenTrials = -1 },
		"target > 1":    func(s *tune.Spec) { s.Target = 1.5 },
		"bad scenario":  func(s *tune.Spec) { s.Scenario = sim.ScenarioSpec{Kind: "nope"} },
		"wide scenario": func(s *tune.Spec) { s.Scenario = sim.ScenarioSpec{Kind: "uniform", Crashes: 99} },
		"unknown cand":  func(s *tune.Spec) { s.Candidates = []tune.Candidate{{Scheduler: "nope"}} },
		"oversized eps": func(s *tune.Spec) { s.Candidates = []tune.Candidate{{Scheduler: "ftsa", Epsilon: 99}} },
		"dup candidate": func(s *tune.Spec) {
			s.Candidates = []tune.Candidate{
				{Scheduler: "ftsa", Epsilon: 1}, {Scheduler: "FTSA", Epsilon: 1},
			}
		},
	}
	for name, mutate := range cases {
		spec := base
		mutate(&spec)
		if _, err := tune.Run(spec); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", name)
		}
	}
}
