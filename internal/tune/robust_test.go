package tune_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ftsched/internal/sim"
	"ftsched/internal/tune"
)

// The worst-case column: present exactly on candidates that reached the full
// pass, echoed in the result header, deterministic across worker counts.
func TestWorstCaseColumn(t *testing.T) {
	spec := tuneSpec(t, tuneInstance(t, 42, 1.0))
	spec.WorstCase = &sim.AdversarySpec{Crashes: 1, MaxEvals: 64}
	var want []byte
	for _, workers := range []int{1, 8} {
		spec.Workers = workers
		res, err := tune.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.WorstCase != spec.WorstCase.String() {
			t.Fatalf("result echoes worst case %q, want %q", res.WorstCase, spec.WorstCase.String())
		}
		for i := range res.Candidates {
			c := &res.Candidates[i]
			if (c.Full != nil) != (c.WorstCase != nil) {
				t.Fatalf("candidate %s: full=%v but worst_case=%v — the search must cover exactly the survivors",
					c.Candidate, c.Full != nil, c.WorstCase != nil)
			}
			if c.WorstCase != nil && c.WorstCase.Evals > spec.WorstCase.MaxEvals {
				t.Fatalf("candidate %s spent %d evals over the budget", c.Candidate, c.WorstCase.Evals)
			}
		}
		blob := marshal(t, res)
		if want == nil {
			want = blob
		} else if !bytes.Equal(want, blob) {
			t.Fatalf("workers=%d changed the adversarial result JSON", workers)
		}
	}

	// The adversarial replays are accounted for in the scoreboard.
	plain := spec
	plain.WorstCase = nil
	plain.Workers = 1
	base, err := tune.Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	var adv tune.Result
	if err := json.Unmarshal(want, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.EvaluatedTrials <= base.EvaluatedTrials {
		t.Fatalf("adversarial run reports %d trials, plain run %d — the searches are unaccounted",
			adv.EvaluatedTrials, base.EvaluatedTrials)
	}
}

// Robust mode recommends by worst case: among candidates meeting the target
// with a survived worst case, nothing has a strictly lower worst latency than
// the recommendation.
func TestRobustRecommendation(t *testing.T) {
	spec := tuneSpec(t, tuneInstance(t, 7, 1.0))
	spec.Target = 0.5
	spec.WorstCase = &sim.AdversarySpec{Crashes: 2, MaxEvals: 128}
	spec.Robust = true
	res, err := tune.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Robust || res.Recommended < 0 {
		t.Fatalf("robust run did not recommend: %+v", res)
	}
	best := res.Best()
	if best.WorstCase == nil {
		t.Fatal("robust recommendation has no worst case")
	}
	if res.TargetMet {
		if best.WorstCase.Missed || best.Full.SuccessRate < res.Target {
			t.Fatalf("target_met but recommendation is %+v", best)
		}
		for i := range res.Candidates {
			c := &res.Candidates[i]
			if c.Full == nil || c.WorstCase == nil || c.WorstCase.Missed ||
				c.Full.SuccessRate < res.Target {
				continue
			}
			if c.WorstCase.Latency < best.WorstCase.Latency {
				t.Fatalf("candidate %s has worst latency %g, beating the recommendation's %g",
					c.Candidate, c.WorstCase.Latency, best.WorstCase.Latency)
			}
		}
	}

	// Robust without a budget is a spec error, not a silent fallback.
	bad := spec
	bad.WorstCase = nil
	if _, err := tune.Run(bad); err == nil {
		t.Fatal("robust mode without a worst-case budget was accepted")
	}
	// And a broken budget is rejected up front.
	bad = spec
	bad.WorstCase = &sim.AdversarySpec{Crashes: -1}
	if _, err := tune.Run(bad); err == nil {
		t.Fatal("negative crash budget was accepted")
	}
}

// The emitters grow worst-case columns only when a search ran.
func TestEmitWorstCaseColumns(t *testing.T) {
	spec := tuneSpec(t, tuneInstance(t, 42, 1.0))
	spec.Trials = 64
	plain, err := tune.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.WorstCase = &sim.AdversarySpec{Crashes: 1, MaxEvals: 32}
	adv, err := tune.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var pa, pc, aa, ac bytes.Buffer
	if err := tune.WriteASCII(&pa, plain); err != nil {
		t.Fatal(err)
	}
	if err := tune.WriteCSV(&pc, plain); err != nil {
		t.Fatal(err)
	}
	if err := tune.WriteASCII(&aa, adv); err != nil {
		t.Fatal(err)
	}
	if err := tune.WriteCSV(&ac, adv); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(pa.String(), "worst") || strings.Contains(pc.String(), "worst_missed") {
		t.Fatal("legacy emitters grew a worst-case column without a search")
	}
	if !strings.Contains(aa.String(), "worst") || !strings.Contains(aa.String(), adv.WorstCase) {
		t.Fatalf("ASCII table is missing the worst-case column:\n%s", aa.String())
	}
	if !strings.HasPrefix(ac.String(), "scheduler,") || !strings.Contains(ac.String(), ",worst_missed,worst_latency") {
		t.Fatalf("CSV is missing the worst-case columns:\n%s", ac.String())
	}
}
