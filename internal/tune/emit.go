package tune

import (
	"fmt"
	"io"
	"strconv"
)

// policyLabel renders an empty policy as "-" so table columns stay aligned.
func policyLabel(p string) string {
	if p == "" {
		return "-"
	}
	return p
}

// WriteASCII renders the tuning result as a human-readable table: one row
// per candidate in grid order, the frontier in latency order, and the
// recommendation with its rationale.
func WriteASCII(w io.Writer, res *Result) error {
	naive := res.ScreenTrials >= res.Trials
	// adv adds the worst-case column; without a search the legacy layout is
	// reproduced byte for byte.
	adv := res.WorstCase != ""
	if _, err := fmt.Fprintf(w, "# tune: %d candidates, scenario %s, trials %d (screen %d), %d trials evaluated\n",
		len(res.Candidates), res.Scenario, res.Trials, res.ScreenTrials, res.EvaluatedTrials); err != nil {
		return err
	}
	worstHeader := ""
	if adv {
		worstHeader = fmt.Sprintf(" %10s", "worst")
	}
	if _, err := fmt.Fprintf(w, "%-10s %4s %-14s %8s %17s %12s %12s %10s%s %s\n",
		"scheduler", "eps", "policy", "success", "[95% wilson]", "latency", "p99", "upper", worstHeader, "mark"); err != nil {
		return err
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		mark := ""
		switch {
		case i == res.Recommended:
			mark = "recommended"
		case c.Frontier:
			mark = "frontier"
		case c.Pruned:
			mark = "pruned"
		}
		e := c.Full
		suffix := ""
		if e == nil {
			// Pruned candidates only have the screening estimate.
			e = c.Screen
			suffix = "*"
		}
		worst := ""
		if adv {
			switch {
			case c.WorstCase == nil: // pruned before the search
				worst = fmt.Sprintf(" %10s", "-")
			case c.WorstCase.Missed:
				worst = fmt.Sprintf(" %10s", "MISS")
			default:
				worst = fmt.Sprintf(" %10.4g", c.WorstCase.Latency)
			}
		}
		if _, err := fmt.Fprintf(w, "%-10s %4d %-14s %7.4f%s [%.4f, %.4f] %12.4g %12.4g %10.4g%s %s\n",
			c.Scheduler, c.Epsilon, policyLabel(c.Policy),
			e.SuccessRate, suffix, e.SuccessLow, e.SuccessHigh,
			e.LatencyMean, e.LatencyP99, c.UpperBound, worst, mark); err != nil {
			return err
		}
	}
	if adv {
		note := ""
		if res.Robust {
			note = "; recommendation optimizes the worst case"
		}
		if _, err := fmt.Fprintf(w, "(worst case %s%s)\n", res.WorstCase, note); err != nil {
			return err
		}
	}
	if !naive {
		if _, err := fmt.Fprintf(w, "(* screening estimate over %d trials; pruned before the full pass)\n",
			res.ScreenTrials); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "frontier (latency asc):"); err != nil {
		return err
	}
	for _, i := range res.Frontier {
		if _, err := fmt.Fprintf(w, "  %s", res.Candidates[i].Candidate); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	best := res.Best()
	switch {
	case best == nil:
		_, err := fmt.Fprintf(w, "recommended: none (no candidate survived a single trial under %s)\n", res.Scenario)
		return err
	case res.TargetMet:
		_, err := fmt.Fprintf(w, "recommended: %s — success %.4f >= target %.4g at mean latency %.4g\n",
			best.Candidate, best.Full.SuccessRate, res.Target, best.Full.LatencyMean)
		return err
	default:
		_, err := fmt.Fprintf(w, "recommended: %s — best available success %.4f misses target %.4g (mean latency %.4g)\n",
			best.Candidate, best.Full.SuccessRate, res.Target, best.Full.LatencyMean)
		return err
	}
}

// WriteCSV renders the tuning result as one CSV table: a header line, then
// one row per candidate in grid order. Pruned candidates report their
// screening estimate with pruned=1 and trials=screen budget, so every row's
// statistics are labeled by the budget that produced them.
func WriteCSV(w io.Writer, res *Result) error {
	// Worst-case columns appear only when a search ran, so legacy runs keep
	// their exact header and row bytes.
	adv := res.WorstCase != ""
	header := "scheduler,epsilon,policy,trials,success,success_low,success_high,latency_mean,latency_p99,lower_bound,upper_bound,pruned,frontier,recommended"
	if adv {
		header += ",worst_missed,worst_latency"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	b := func(v bool) string {
		if v {
			return "1"
		}
		return "0"
	}
	for i := range res.Candidates {
		c := &res.Candidates[i]
		e := c.Full
		if e == nil {
			e = c.Screen
		}
		worst := ""
		if adv {
			if c.WorstCase == nil {
				worst = ",," // pruned before the search: both cells empty
			} else {
				worst = "," + b(c.WorstCase.Missed) + "," + f(c.WorstCase.Latency)
			}
		}
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%d,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s%s\n",
			c.Scheduler, c.Epsilon, c.Policy, e.Trials,
			f(e.SuccessRate), f(e.SuccessLow), f(e.SuccessHigh),
			f(e.LatencyMean), f(e.LatencyP99), f(c.LowerBound), f(c.UpperBound),
			b(c.Pruned), b(c.Frontier), b(i == res.Recommended), worst); err != nil {
			return err
		}
	}
	return nil
}
