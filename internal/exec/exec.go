// Package exec executes a fault-tolerant schedule with real concurrency:
// one goroutine per processor, buffered channels as links, user-supplied Go
// functions as tasks. It is the runtime counterpart of the paper's
// protocol — active replication where a replica consumes the *first*
// arriving copy of each input and ignores the rest — and the strongest
// validation of Theorem 4.1 in this repository: with up to ε processors
// killed, every task's result is still produced, by actual message-passing
// workers.
//
// Crash injection is deterministic (a processor completes a fixed number of
// replicas and then dies), so executor tests are free of timing races.
// Progress is guaranteed by sender reference-counting: every replica either
// delivers its output to its consumers' mailboxes or retracts itself from
// them; a mailbox whose senders have all retracted is closed, so a starving
// receiver unblocks instead of deadlocking.
package exec

import (
	"errors"
	"fmt"
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Payload is the opaque data a task produces and its successors consume.
type Payload []byte

// Task is the user function for one task: it receives one payload per
// predecessor (indexed like Graph.Preds) and returns the task's output.
// All replicas of a task run the same function; it must be safe for
// concurrent invocation and deterministic if exactly-same outputs across
// replicas matter to the application.
type Task func(inputs []Payload) (Payload, error)

// Config tunes an execution.
type Config struct {
	// CrashAfter maps a processor to the number of replicas it completes
	// before failing silently. 0 means the processor does nothing at all;
	// processors absent from the map never fail.
	CrashAfter map[platform.ProcID]int
}

// Report summarizes an execution.
type Report struct {
	// Output[t] is the payload of the earliest completed replica of task t
	// (nil if no replica completed).
	Output []Payload
	// CompletedCopies[t] counts the replicas of t that ran to completion.
	CompletedCopies []int
	// MessagesSent counts inter-processor payload transfers.
	MessagesSent int
	// Starved counts replicas skipped because no copy of some input could
	// ever arrive.
	Starved int
	// TaskErrors counts replicas whose task function returned an error
	// (treated as a fail-silent fault of that replica alone).
	TaskErrors int
}

// Execution errors.
var (
	ErrTaskCount  = errors.New("exec: task function count does not match graph")
	ErrIncomplete = errors.New("exec: some task produced no result")
)

// box is one (replica, predecessor) input slot. Capacity covers every
// allowed sender, so sends never block; senders is decremented when a
// sender retracts, and the channel is closed at zero so receivers unblock.
type box struct {
	ch      chan Payload
	mu      sync.Mutex
	senders int
}

func (b *box) send(p Payload) { b.ch <- p }

func (b *box) retract() {
	b.mu.Lock()
	b.senders--
	if b.senders == 0 {
		close(b.ch)
	}
	b.mu.Unlock()
}

// route identifies a destination input slot of a replica's output.
type route struct {
	dst     dag.TaskID
	dstCopy int
	predIdx int
}

// replicaJob is one queued execution on a processor.
type replicaJob struct {
	task dag.TaskID
	copy int
}

// Run executes the schedule. fns must contain one function per task of the
// schedule's graph. The call returns once every processor goroutine has
// drained its queue or died.
func Run(s *sched.Schedule, fns []Task, cfg Config) (*Report, error) {
	g := s.Graph
	if len(fns) != g.NumTasks() {
		return nil, fmt.Errorf("%w: %d functions for %d tasks", ErrTaskCount, len(fns), g.NumTasks())
	}
	for p, n := range cfg.CrashAfter {
		if !s.Platform.Valid(p) {
			return nil, fmt.Errorf("exec: crash on invalid processor %d", p)
		}
		if n < 0 {
			return nil, fmt.Errorf("exec: negative crash count %d for P%d", n, p)
		}
	}
	if !s.Complete() {
		return nil, fmt.Errorf("exec: incomplete schedule")
	}

	// Build mailboxes and routing tables.
	boxes := make([][][]*box, g.NumTasks())
	routes := make([][][]route, g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		tid := dag.TaskID(t)
		reps := s.Replicas(tid)
		boxes[t] = make([][]*box, len(reps))
		routes[t] = make([][]route, len(reps))
		for c := range reps {
			boxes[t][c] = make([]*box, g.InDegree(tid))
		}
	}
	for t := 0; t < g.NumTasks(); t++ {
		tid := dag.TaskID(t)
		for predIdx, pe := range g.Preds(tid) {
			srcReps := s.Replicas(pe.To)
			for c := range s.Replicas(tid) {
				var senders []int
				switch s.CommPattern {
				case sched.PatternMatched:
					k, err := s.MatchedSource(tid, c, predIdx)
					if err != nil {
						return nil, err
					}
					senders = []int{k}
				default:
					senders = make([]int, len(srcReps))
					for k := range srcReps {
						senders[k] = k
					}
				}
				b := &box{ch: make(chan Payload, len(senders)), senders: len(senders)}
				boxes[t][c][predIdx] = b
				for _, k := range senders {
					routes[pe.To][k] = append(routes[pe.To][k], route{dst: tid, dstCopy: c, predIdx: predIdx})
				}
			}
		}
	}

	// Per-processor job queues in the schedule's execution order.
	m := s.Platform.NumProcs()
	queues := make([][]replicaJob, m)
	for _, t := range s.MappingOrder() {
		for _, r := range s.Replicas(t) {
			queues[r.Proc] = append(queues[r.Proc], replicaJob{task: t, copy: r.Copy})
		}
	}

	var (
		mu        sync.Mutex
		completed = make([]int, g.NumTasks())
		outputs   = make([]Payload, g.NumTasks())
		rep       = &Report{}
		wg        sync.WaitGroup
	)

	// retractJob withdraws a replica that will never send.
	retractJob := func(job replicaJob) {
		for _, rt := range routes[job.task][job.copy] {
			boxes[rt.dst][rt.dstCopy][rt.predIdx].retract()
		}
	}

	worker := func(p platform.ProcID, jobs []replicaJob) {
		defer wg.Done()
		budget, limited := cfg.CrashAfter[p]
		done := 0
		for i, job := range jobs {
			if limited && done >= budget {
				// The processor dies; everything still queued is lost.
				for _, rest := range jobs[i:] {
					retractJob(rest)
				}
				return
			}
			// Gather one payload per predecessor; first message wins.
			inputs := make([]Payload, g.InDegree(job.task))
			starved := false
			for pi := range inputs {
				payload, ok := <-boxes[job.task][job.copy][pi].ch
				if !ok {
					starved = true
					break
				}
				inputs[pi] = payload
			}
			if starved {
				mu.Lock()
				rep.Starved++
				mu.Unlock()
				retractJob(job)
				continue
			}
			out, err := fns[job.task](inputs)
			if err != nil {
				mu.Lock()
				rep.TaskErrors++
				mu.Unlock()
				retractJob(job)
				continue
			}
			done++
			mu.Lock()
			if completed[job.task] == 0 {
				outputs[job.task] = out
			}
			completed[job.task]++
			mu.Unlock()
			srcProc := s.Replicas(job.task)[job.copy].Proc
			cross := 0
			for _, rt := range routes[job.task][job.copy] {
				boxes[rt.dst][rt.dstCopy][rt.predIdx].send(out)
				if s.Replicas(rt.dst)[rt.dstCopy].Proc != srcProc {
					cross++
				}
			}
			if cross > 0 {
				mu.Lock()
				rep.MessagesSent += cross
				mu.Unlock()
			}
		}
	}

	for p := 0; p < m; p++ {
		wg.Add(1)
		go worker(platform.ProcID(p), queues[p])
	}
	wg.Wait()

	rep.Output = outputs
	rep.CompletedCopies = completed
	for t := 0; t < g.NumTasks(); t++ {
		if completed[t] == 0 {
			return rep, fmt.Errorf("%w: task %d", ErrIncomplete, t)
		}
	}
	return rep, nil
}
