package exec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// sumTasks builds deterministic task functions: each task outputs the sum
// of its inputs plus its own ID, so the exit values have a unique correct
// answer computable by a sequential reference sweep.
func sumTasks(g *dag.Graph) []Task {
	fns := make([]Task, g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		t := t
		fns[t] = func(inputs []Payload) (Payload, error) {
			sum := uint64(t)
			for _, in := range inputs {
				sum += binary.LittleEndian.Uint64(in)
			}
			out := make(Payload, 8)
			binary.LittleEndian.PutUint64(out, sum)
			return out, nil
		}
	}
	return fns
}

// reference computes the expected per-task values sequentially.
func reference(g *dag.Graph) []uint64 {
	order, _ := g.TopologicalOrder()
	val := make([]uint64, g.NumTasks())
	for _, t := range order {
		sum := uint64(t)
		for _, pe := range g.Preds(t) {
			sum += val[pe.To]
		}
		val[t] = sum
	}
	return val
}

func buildInstance(t *testing.T, seed int64, procs int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func checkOutputs(t *testing.T, g *dag.Graph, rep *Report) {
	t.Helper()
	want := reference(g)
	for tsk := 0; tsk < g.NumTasks(); tsk++ {
		if rep.Output[tsk] == nil {
			t.Fatalf("task %d has no output", tsk)
		}
		got := binary.LittleEndian.Uint64(rep.Output[tsk])
		if got != want[tsk] {
			t.Fatalf("task %d output %d, want %d", tsk, got, want[tsk])
		}
	}
}

func TestExecutorFailureFree(t *testing.T) {
	inst := buildInstance(t, 1, 6)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, sumTasks(inst.Graph), Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, inst.Graph, rep)
	// Every replica completes without failures.
	for tsk, n := range rep.CompletedCopies {
		if n != 3 {
			t.Errorf("task %d completed %d copies, want 3", tsk, n)
		}
	}
	if rep.Starved != 0 || rep.TaskErrors != 0 {
		t.Errorf("unexpected starvation/errors: %+v", rep)
	}
}

func TestExecutorSurvivesCrashAtStart(t *testing.T) {
	// Theorem 4.1 with real goroutines: kill every pair of processors
	// (crash-after-0) and verify all outputs are still produced and equal
	// the sequential reference.
	inst := buildInstance(t, 2, 5)
	const eps = 2
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	fns := sumTasks(inst.Graph)
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			rep, err := Run(s, fns, Config{CrashAfter: map[platform.ProcID]int{
				platform.ProcID(a): 0,
				platform.ProcID(b): 0,
			}})
			if err != nil {
				t.Fatalf("crash {%d,%d}: %v", a, b, err)
			}
			checkOutputs(t, inst.Graph, rep)
		}
	}
}

func TestExecutorMidQueueCrashes(t *testing.T) {
	// Processors die after finishing part of their queue: earlier work is
	// delivered, later work is lost; outputs must still be complete with
	// ε=2 and two failed processors.
	inst := buildInstance(t, 3, 6)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, sumTasks(inst.Graph), Config{CrashAfter: map[platform.ProcID]int{
		0: 3,
		4: 1,
	}})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, inst.Graph, rep)
}

func TestExecutorMatchedPatternFailureFree(t *testing.T) {
	inst := buildInstance(t, 4, 6)
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, sumTasks(inst.Graph), Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, inst.Graph, rep)
	// The matched pattern sends at most e(ε+1) messages.
	if max := inst.Graph.NumEdges() * 3; rep.MessagesSent > max {
		t.Errorf("messages %d exceed e(ε+1)=%d", rep.MessagesSent, max)
	}
}

func TestExecutorDemonstratesStrictStarvation(t *testing.T) {
	// Finding F1 with real concurrency: the executor implements the strict
	// matched protocol (no rerouting), so an MC-FTSA schedule of a deep
	// graph starves under a single crash — while FTSA's full pattern
	// survives the same crash. The executor must terminate cleanly (no
	// deadlock) either way, thanks to sender retraction.
	inst := buildInstance(t, 5, 6)
	const eps = 2
	mc, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	ftsa, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	fns := sumTasks(inst.Graph)
	starvedSomewhere := false
	for p := 0; p < 6; p++ {
		crash := Config{CrashAfter: map[platform.ProcID]int{platform.ProcID(p): 0}}
		if _, err := Run(mc, fns, crash); err != nil {
			if !errors.Is(err, ErrIncomplete) {
				t.Fatalf("crash P%d: unexpected error %v", p, err)
			}
			starvedSomewhere = true
		}
		rep, err := Run(ftsa, fns, crash)
		if err != nil {
			t.Fatalf("FTSA crash P%d: %v", p, err)
		}
		checkOutputs(t, inst.Graph, rep)
	}
	if !starvedSomewhere {
		t.Log("note: instance happened to be strictly robust under single crashes")
	}
}

func TestExecutorTaskErrorIsReplicaFault(t *testing.T) {
	// One replica's function fails (simulated transient fault); the other
	// replicas still deliver the result.
	inst := buildInstance(t, 6, 6)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	fns := sumTasks(inst.Graph)
	var mu sync.Mutex
	failOnce := true
	orig := fns[0]
	fns[0] = func(inputs []Payload) (Payload, error) {
		mu.Lock()
		fail := failOnce
		failOnce = false
		mu.Unlock()
		if fail {
			return nil, fmt.Errorf("injected fault")
		}
		return orig(inputs)
	}
	rep, err := Run(s, fns, Config{})
	if err != nil {
		t.Fatal(err)
	}
	checkOutputs(t, inst.Graph, rep)
	if rep.TaskErrors != 1 {
		t.Errorf("TaskErrors = %d, want 1", rep.TaskErrors)
	}
}

func TestExecutorConfigValidation(t *testing.T) {
	inst := buildInstance(t, 7, 4)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, nil, Config{}); !errors.Is(err, ErrTaskCount) {
		t.Errorf("nil functions: %v", err)
	}
	fns := sumTasks(inst.Graph)
	if _, err := Run(s, fns, Config{CrashAfter: map[platform.ProcID]int{9: 0}}); err == nil {
		t.Error("invalid processor accepted")
	}
	if _, err := Run(s, fns, Config{CrashAfter: map[platform.ProcID]int{0: -1}}); err == nil {
		t.Error("negative crash budget accepted")
	}
	empty, err := sched.New(inst.Graph, inst.Platform, inst.Costs, 1, sched.PatternAll, "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(empty, fns, Config{}); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

func TestExecutorAllProcessorsDead(t *testing.T) {
	inst := buildInstance(t, 8, 3)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	crash := map[platform.ProcID]int{0: 0, 1: 0, 2: 0}
	if _, err := Run(s, sumTasks(inst.Graph), Config{CrashAfter: crash}); !errors.Is(err, ErrIncomplete) {
		t.Errorf("all-dead execution: %v", err)
	}
}

// TestExecutorCrashEveryPrefix is Theorem 4.1 as an exhaustive executable
// property: for EVERY processor and EVERY crash point in its queue (after
// 0, 1, ..., all of its replicas), alone and paired with a second processor
// dead from the start (total failures = ε), every task still produces the
// sequential reference output. The mission controller's replay banks the
// replicas a processor completed before its crash; this test is the
// concurrent ground truth that banking is sound at every possible prefix.
func TestExecutorCrashEveryPrefix(t *testing.T) {
	inst := buildInstance(t, 9, 5)
	const m, eps = 5, 2
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	fns := sumTasks(inst.Graph)
	queueLen := make([]int, m)
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		for _, r := range s.Replicas(dag.TaskID(tsk)) {
			queueLen[r.Proc]++
		}
	}
	for p := 0; p < m; p++ {
		for k := 0; k <= queueLen[p]; k++ {
			rep, err := Run(s, fns, Config{CrashAfter: map[platform.ProcID]int{
				platform.ProcID(p): k,
			}})
			if err != nil {
				t.Fatalf("P%d crash after %d replicas: %v", p, k, err)
			}
			checkOutputs(t, inst.Graph, rep)

			q := (p + 2) % m
			rep, err = Run(s, fns, Config{CrashAfter: map[platform.ProcID]int{
				platform.ProcID(p): k,
				platform.ProcID(q): 0,
			}})
			if err != nil {
				t.Fatalf("P%d crash after %d + P%d dead: %v", p, k, q, err)
			}
			checkOutputs(t, inst.Graph, rep)
		}
	}
}

// TestExecutorAgreesWithSimReplay cross-checks the two failure models the
// repository has: the concurrent executor (this package) and the
// deterministic replay engine the mission controller and /evaluate run on.
// For every crash-at-start subset up to ε+1 processors the two must agree
// on survivability, and within ε both must succeed — the shared oracle that
// lets mission replay stand in for real message-passing execution.
func TestExecutorAgreesWithSimReplay(t *testing.T) {
	inst := buildInstance(t, 10, 5)
	const m, eps = 5, 1
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	fns := sumTasks(inst.Graph)
	var subsets [][]int
	for a := 0; a < m; a++ {
		subsets = append(subsets, []int{a})
		for b := a + 1; b < m; b++ {
			subsets = append(subsets, []int{a, b})
		}
	}
	for _, procs := range subsets {
		crash := make(map[platform.ProcID]int, len(procs))
		sc := sim.NoFailures(m)
		for _, p := range procs {
			crash[platform.ProcID(p)] = 0
			sc.CrashTime[p] = 0 // dead from the start in both models
		}
		rep, execErr := Run(s, fns, Config{CrashAfter: crash})
		if execErr != nil && !errors.Is(execErr, ErrIncomplete) {
			t.Fatalf("crash %v: %v", procs, execErr)
		}
		_, _, simOK, err := sim.ReplayTaskFinishes(s, sc, sim.Options{}, nil)
		if err != nil {
			t.Fatalf("replay %v: %v", procs, err)
		}
		execOK := execErr == nil
		if execOK != simOK {
			t.Fatalf("crash %v: executor ok=%v, replay ok=%v — the models disagree", procs, execOK, simOK)
		}
		if len(procs) <= eps && !execOK {
			t.Fatalf("crash %v within ε=%d not tolerated", procs, eps)
		}
		if execOK {
			checkOutputs(t, inst.Graph, rep)
		}
	}
}
