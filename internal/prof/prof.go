// Package prof wires -cpuprofile / -memprofile flags into the CLIs.
//
// Start begins collection and Stop finishes it; Stop is idempotent and safe
// to call on both the normal defer path and the fatal-error path, so a run
// that dies with an error still leaves usable profiles behind. The files are
// standard runtime/pprof output, ready for go tool pprof.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

var (
	mu      sync.Mutex
	cpuOut  *os.File
	memPath string
)

// Start begins CPU profiling to cpuFile and arranges for Stop to write a heap
// profile to memFile. Either (or both) may be empty to skip that profile.
func Start(cpuFile, memFile string) error {
	mu.Lock()
	defer mu.Unlock()
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("prof: starting CPU profile: %w", err)
		}
		cpuOut = f
	}
	memPath = memFile
	return nil
}

// Stop finishes the CPU profile and writes the heap profile Start was asked
// for. Repeated calls after the first are no-ops.
func Stop() error {
	mu.Lock()
	defer mu.Unlock()
	var firstErr error
	if cpuOut != nil {
		pprof.StopCPUProfile()
		if err := cpuOut.Close(); err != nil {
			firstErr = fmt.Errorf("prof: %w", err)
		}
		cpuOut = nil
	}
	if memPath != "" {
		path := memPath
		memPath = ""
		f, err := os.Create(path)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		} else {
			runtime.GC() // get up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("prof: %w", err)
			}
		}
	}
	return firstErr
}
