package sched

import (
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

func TestTheoreticalBoundsHandComputed(t *testing.T) {
	// Chain of 3 tasks, fastest costs 2/3/4, 2 processors.
	g := dag.NewWithTasks("chain3", 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	p, err := platform.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{2, 5}, {3, 6}, {4, 7}})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := ComputeTheoreticalBounds(g, cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if tb.CriticalPath != 9 {
		t.Errorf("critical path = %g, want 9", tb.CriticalPath)
	}
	if tb.WorkBound != 4.5 {
		t.Errorf("work bound = %g, want 4.5", tb.WorkBound)
	}
	if tb.Combined != 9 {
		t.Errorf("combined = %g, want 9", tb.Combined)
	}
}

func TestQualityRatioAtLeastOne(t *testing.T) {
	// Any valid schedule's fault-free latency is at least the combined
	// theoretical bound, so the ratio is >= 1 (for ε=0; replication only
	// adds work).
	rng := rand.New(rand.NewSource(4))
	g := dag.NewWithTasks("rnd", 12)
	for i := 0; i < 11; i++ {
		g.MustAddEdge(dag.TaskID(rng.Intn(i+1)), dag.TaskID(i+1), float64(10+rng.Intn(50)))
	}
	p, err := platform.NewRandom(rng, 4, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewRandomCostModel(rng, 12, 4, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, p, cm, 0, PatternAll, "hand")
	if err != nil {
		t.Fatal(err)
	}
	// Serial schedule on P0 — valid and clearly above the bound.
	clock := 0.0
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, tsk := range order {
		e := cm.Cost(tsk, 0)
		if err := s.Place(tsk, []Replica{{
			Task: tsk, Copy: 0, Proc: 0,
			StartMin: clock, FinishMin: clock + e,
			StartMax: clock, FinishMax: clock + e,
		}}); err != nil {
			t.Fatal(err)
		}
		clock += e
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	q, err := s.QualityRatio()
	if err != nil {
		t.Fatal(err)
	}
	if q < 1 {
		t.Errorf("quality ratio %g < 1", q)
	}
}
