package sched

import (
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// scheduleJSON is the wire format of a complete schedule. It references its
// problem (graph/platform/costs) only implicitly: loading requires the same
// instance files, and the loader re-validates the schedule against them, so
// a mismatched instance is rejected rather than silently mis-simulated.
type scheduleJSON struct {
	Algorithm    string          `json:"algorithm"`
	Epsilon      int             `json:"epsilon"`
	Pattern      Pattern         `json:"pattern"`
	MappingOrder []dag.TaskID    `json:"mapping_order"`
	Replicas     [][]replicaJSON `json:"replicas"`
	Matched      [][][]int       `json:"matched,omitempty"`
}

type replicaJSON struct {
	Proc      platform.ProcID `json:"proc"`
	StartMin  float64         `json:"start_min"`
	FinishMin float64         `json:"finish_min"`
	StartMax  float64         `json:"start_max"`
	FinishMax float64         `json:"finish_max"`
}

// WriteTo serializes the schedule as indented JSON.
func (s *Schedule) WriteTo(w io.Writer) (int64, error) {
	out := scheduleJSON{
		Algorithm:    s.Algorithm,
		Epsilon:      s.Epsilon,
		Pattern:      s.CommPattern,
		MappingOrder: s.mappingOrder,
		Replicas:     make([][]replicaJSON, len(s.replicas)),
	}
	for t, reps := range s.replicas {
		out.Replicas[t] = make([]replicaJSON, len(reps))
		for c, r := range reps {
			out.Replicas[t][c] = replicaJSON{
				Proc:     r.Proc,
				StartMin: r.StartMin, FinishMin: r.FinishMin,
				StartMax: r.StartMax, FinishMax: r.FinishMax,
			}
		}
	}
	if s.CommPattern == PatternMatched {
		out.Matched = s.matchedFrom
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadSchedule deserializes a schedule saved by WriteTo, binds it to the
// given problem instance and validates it fully (structure, precedence,
// overlap, matching) before returning.
func ReadSchedule(r io.Reader, g *dag.Graph, p *platform.Platform, cm *platform.CostModel) (*Schedule, error) {
	var in scheduleJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("sched: decoding schedule: %w", err)
	}
	if len(in.Replicas) != g.NumTasks() {
		return nil, fmt.Errorf("sched: schedule covers %d tasks, graph has %d", len(in.Replicas), g.NumTasks())
	}
	s, err := New(g, p, cm, in.Epsilon, in.Pattern, in.Algorithm)
	if err != nil {
		return nil, err
	}
	if len(in.MappingOrder) != g.NumTasks() {
		return nil, fmt.Errorf("sched: mapping order covers %d of %d tasks", len(in.MappingOrder), g.NumTasks())
	}
	for _, t := range in.MappingOrder {
		if !g.Valid(t) {
			return nil, fmt.Errorf("%w: mapping order entry %d", dag.ErrNoSuchTask, t)
		}
		reps := make([]Replica, len(in.Replicas[t]))
		for c, rj := range in.Replicas[t] {
			reps[c] = Replica{
				Task: t, Copy: c, Proc: rj.Proc,
				StartMin: rj.StartMin, FinishMin: rj.FinishMin,
				StartMax: rj.StartMax, FinishMax: rj.FinishMax,
			}
		}
		if err := s.Place(t, reps); err != nil {
			return nil, err
		}
	}
	if in.Pattern == PatternMatched {
		if len(in.Matched) != g.NumTasks() {
			return nil, fmt.Errorf("%w: matching covers %d of %d tasks", ErrMatching, len(in.Matched), g.NumTasks())
		}
		for t := range in.Matched {
			if err := s.SetMatchedSources(dag.TaskID(t), in.Matched[t]); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sched: loaded schedule invalid: %w", err)
	}
	return s, nil
}
