// Package sched defines the fault-tolerant schedule representation shared by
// the FTSA, MC-FTSA and FTBAR schedulers: replica placements with optimistic
// (equation 1) and pessimistic (equation 3) time windows, per-processor
// timelines, the retained communication pattern, the latency bounds of
// equations (2) and (4), and structural validation of the fault-tolerance
// guarantees (Propositions 4.1 and 4.3).
//
// A Schedule is built incrementally by Place-ing each task's ε+1 replicas in
// mapping order; Validate then checks completeness, precedence feasibility,
// replica distinctness and (under the matched pattern) robustness of the
// retained communications. The package also provides derived views consumed
// by the CLIs and the serving layer: aggregate Metrics (replication factor,
// communication volume, utilization), ASCII Gantt rendering, deadline
// assignment (Section 4.3), and a validating JSON wire format that binds a
// loaded schedule back to its problem instance.
package sched
