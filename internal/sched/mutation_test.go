package sched_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

// Mutation testing for Validate: take a known-good schedule, apply each
// class of corruption through the persistence layer (the only mutable view
// of a foreign schedule), and require the validator to reject it. This
// guards the guards — a validator that silently passes corrupt schedules
// would defeat every other test that relies on it.

// mutate round-trips the schedule through its JSON form with a corruption
// applied to the decoded replicas, then reloads it.
func mutate(t *testing.T, inst *workload.Instance, s *sched.Schedule, corrupt func(rep []sched.Replica, tsk dag.TaskID) []sched.Replica) error {
	t.Helper()
	rebuilt, err := sched.New(inst.Graph, inst.Platform, inst.Costs, s.Epsilon, s.CommPattern, s.Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	for _, tsk := range s.MappingOrder() {
		reps := append([]sched.Replica(nil), s.Replicas(tsk)...)
		reps = corrupt(reps, tsk)
		for c := range reps {
			reps[c].Copy = c
			reps[c].Task = tsk
		}
		if err := rebuilt.Place(tsk, reps); err != nil {
			return err
		}
	}
	return rebuilt.Validate()
}

func TestValidateCatchesMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: the identity mutation passes.
	if err := mutate(t, inst, s, func(r []sched.Replica, _ dag.TaskID) []sched.Replica { return r }); err != nil {
		t.Fatalf("identity mutation rejected: %v", err)
	}

	// Pick a mid-graph task with predecessors for targeted corruption.
	var victim dag.TaskID = -1
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		if inst.Graph.InDegree(dag.TaskID(tsk)) > 0 {
			victim = dag.TaskID(tsk)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no task with predecessors")
	}

	mutations := []struct {
		name    string
		corrupt func(r []sched.Replica, tsk dag.TaskID) []sched.Replica
	}{
		{"colocate-replicas", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				r[1].Proc = r[0].Proc
			}
			return r
		}},
		{"start-before-arrival", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				e := r[0].FinishMin - r[0].StartMin
				r[0].StartMin = 0
				r[0].FinishMin = e
			}
			return r
		}},
		{"wrong-duration", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				r[0].FinishMin += 17
			}
			return r
		}},
		{"drop-replica", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				return r[:len(r)-1]
			}
			return r
		}},
		{"negative-start", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				r[0].StartMin = -5
				r[0].FinishMin = r[0].FinishMin - r[0].StartMin - 5
			}
			return r
		}},
		{"max-before-min", func(r []sched.Replica, tsk dag.TaskID) []sched.Replica {
			if tsk == victim {
				e := r[0].FinishMax - r[0].StartMax
				r[0].StartMax = r[0].StartMin - 1
				r[0].FinishMax = r[0].StartMax + e
			}
			return r
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			if err := mutate(t, inst, s, m.corrupt); err == nil {
				t.Errorf("mutation %q passed validation", m.name)
			}
		})
	}
}

func TestValidateCatchesMatchingMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate one matched source (break the bijection).
	rebuilt, err := sched.New(inst.Graph, inst.Platform, inst.Costs, 2, sched.PatternMatched, "mut")
	if err != nil {
		t.Fatal(err)
	}
	var victim dag.TaskID = -1
	for _, tsk := range s.MappingOrder() {
		if err := rebuilt.Place(tsk, append([]sched.Replica(nil), s.Replicas(tsk)...)); err != nil {
			t.Fatal(err)
		}
		src := make([][]int, len(s.Replicas(tsk)))
		for c := range src {
			src[c] = make([]int, inst.Graph.InDegree(tsk))
			for pi := range src[c] {
				k, err := s.MatchedSource(tsk, c, pi)
				if err != nil {
					t.Fatal(err)
				}
				src[c][pi] = k
			}
		}
		if victim < 0 && inst.Graph.InDegree(tsk) > 0 {
			victim = tsk
			src[1][0] = src[0][0] // two replicas share a source
		}
		if err := rebuilt.SetMatchedSources(tsk, src); err != nil {
			t.Fatal(err)
		}
	}
	if victim < 0 {
		t.Fatal("no task with predecessors")
	}
	if err := rebuilt.Validate(); err == nil {
		t.Error("broken matching bijection passed validation")
	}
}
