package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// Replica is one of the ε+1 copies of a task placed on a processor.
//
// Two time windows are tracked. The Min window follows equation (1): the
// replica starts as soon as the *earliest* copy of each predecessor has
// delivered its data ("the task is executed and ignores later incoming
// data"); the schedule latency derived from Min windows is the lower bound
// M* of equation (2), achieved when no processor fails. The Max window
// follows equation (3): the replica waits for the *latest* copy of each
// predecessor; the latency derived from Max windows is the upper bound M of
// equation (4), guaranteed under any ε failures.
type Replica struct {
	Task dag.TaskID
	// Copy indexes the replica within its task, in [0, ε+1) for the plain
	// schedulers; FTBAR's Minimize-Start-Time duplication may add more.
	Copy int
	Proc platform.ProcID

	StartMin, FinishMin float64
	StartMax, FinishMax float64
}

// Pattern identifies which communications the schedule retains.
type Pattern int

const (
	// PatternAll: every replica of a predecessor sends to every replica of
	// its successor — FTSA, up to e(ε+1)² messages.
	PatternAll Pattern = iota
	// PatternMatched: each predecessor replica sends to exactly one
	// successor replica per precedence edge — MC-FTSA, e(ε+1) messages.
	PatternMatched
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case PatternAll:
		return "all"
	case PatternMatched:
		return "matched"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Schedule is a complete fault-tolerant mapping of a DAG onto a platform.
type Schedule struct {
	Graph    *dag.Graph
	Platform *platform.Platform
	Costs    *platform.CostModel
	// Epsilon is the number of fail-stop processor failures the schedule
	// tolerates; every task carries at least ε+1 replicas on distinct
	// processors.
	Epsilon int
	// CommPattern records the retained communications.
	CommPattern Pattern
	// Algorithm names the scheduler that produced this schedule.
	Algorithm string

	replicas [][]Replica // indexed by task, then copy
	// mappingOrder is the order in which the scheduler mapped tasks; the
	// simulator replays per-processor queues in this order. It is a valid
	// topological order (schedulers only map free tasks).
	mappingOrder []dag.TaskID
	// matchedFrom[t][copy][predIdx] is, under PatternMatched, the copy
	// index of predecessor Graph.Preds(t)[predIdx] whose message this
	// replica consumes. nil under PatternAll.
	matchedFrom [][][]int

	// repArena is the contiguous backing store Place carves per-task replica
	// rows from, presized at New to the ε+1 replicas every task is expected
	// to carry. Rows are carved with exact capacity, so AddDuplicate's
	// appends copy-on-grow and never clobber a neighbor. One schedule is one
	// arena allocation instead of one per task.
	repArena []Replica
	// matchedRows/matchedInts are the arenas AllocMatched carves
	// receiver-indexed matching matrices from (PatternMatched only).
	matchedRows [][]int
	matchedInts []int
}

// Schedule construction and validation errors.
var (
	ErrEpsilon      = errors.New("sched: need 0 <= ε < processor count")
	ErrIncomplete   = errors.New("sched: task has no replicas")
	ErrReplicaCount = errors.New("sched: wrong replica count")
	ErrSpace        = errors.New("sched: replicas of a task share a processor")
	ErrOverlap      = errors.New("sched: overlapping executions on a processor")
	ErrPrecedence   = errors.New("sched: precedence violation")
	ErrMatching     = errors.New("sched: invalid communication matching")
	ErrNotScheduled = errors.New("sched: task not scheduled")
)

// New creates an empty schedule for the given problem.
func New(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, epsilon int, pattern Pattern, algorithm string) (*Schedule, error) {
	if epsilon < 0 || epsilon >= p.NumProcs() {
		return nil, fmt.Errorf("%w: ε=%d, m=%d", ErrEpsilon, epsilon, p.NumProcs())
	}
	if cm.NumTasks() < g.NumTasks() || cm.NumProcs() != p.NumProcs() {
		return nil, fmt.Errorf("sched: cost model %dx%d does not cover graph (%d tasks) and platform (%d procs)",
			cm.NumTasks(), cm.NumProcs(), g.NumTasks(), p.NumProcs())
	}
	s := &Schedule{
		Graph:       g,
		Platform:    p,
		Costs:       cm,
		Epsilon:     epsilon,
		CommPattern: pattern,
		Algorithm:   algorithm,
		replicas:    make([][]Replica, g.NumTasks()),
		repArena:    make([]Replica, 0, g.NumTasks()*(epsilon+1)),
	}
	s.mappingOrder = make([]dag.TaskID, 0, g.NumTasks())
	if pattern == PatternMatched {
		s.matchedFrom = make([][][]int, g.NumTasks())
		s.matchedRows = make([][]int, 0, g.NumTasks()*(epsilon+1))
		s.matchedInts = make([]int, 0, (epsilon+1)*g.NumEdges())
	}
	return s, nil
}

// Place records the replicas of task t, in copy order, and appends t to the
// mapping order. It must be called exactly once per task.
func (s *Schedule) Place(t dag.TaskID, replicas []Replica) error {
	if !s.Graph.Valid(t) {
		return fmt.Errorf("%w: task %d", dag.ErrNoSuchTask, t)
	}
	if s.replicas[t] != nil {
		return fmt.Errorf("sched: task %d placed twice", t)
	}
	if len(replicas) == 0 {
		return fmt.Errorf("%w: task %d", ErrIncomplete, t)
	}
	for i := range replicas {
		r := &replicas[i]
		if r.Task != t || r.Copy != i {
			return fmt.Errorf("sched: replica %d of task %d mislabeled (task=%d copy=%d)", i, t, r.Task, r.Copy)
		}
		if !s.Platform.Valid(r.Proc) {
			return fmt.Errorf("sched: replica %d of task %d on invalid processor %d", i, t, r.Proc)
		}
	}
	off := len(s.repArena)
	if off+len(replicas) <= cap(s.repArena) {
		s.repArena = append(s.repArena, replicas...)
		s.replicas[t] = s.repArena[off : off+len(replicas) : off+len(replicas)]
	} else {
		// Replica counts past the presized ε+1 per task (FTBAR's duplication
		// can exceed it when Place sees pre-duplicated inputs) fall back to a
		// private row; rows already carved stay valid either way.
		s.replicas[t] = append([]Replica(nil), replicas...)
	}
	s.mappingOrder = append(s.mappingOrder, t)
	return nil
}

// SetMatchedSources records, under PatternMatched, the predecessor copy
// feeding each copy of t: src[copy][predIdx] = copy index within the
// predecessor's replicas.
func (s *Schedule) SetMatchedSources(t dag.TaskID, src [][]int) error {
	if s.CommPattern != PatternMatched {
		return fmt.Errorf("%w: schedule pattern is %v", ErrMatching, s.CommPattern)
	}
	s.matchedFrom[t] = src
	return nil
}

// Replicas returns the replicas of t in copy order (nil if unplaced). The
// slice is owned by the schedule.
func (s *Schedule) Replicas(t dag.TaskID) []Replica { return s.replicas[t] }

// Replica returns copy c of task t.
func (s *Schedule) Replica(t dag.TaskID, c int) (Replica, error) {
	if !s.Graph.Valid(t) || s.replicas[t] == nil || c < 0 || c >= len(s.replicas[t]) {
		return Replica{}, fmt.Errorf("%w: task %d copy %d", ErrNotScheduled, t, c)
	}
	return s.replicas[t][c], nil
}

// MatchedSource returns, under PatternMatched, the predecessor copy feeding
// copy c of t for predecessor index predIdx.
func (s *Schedule) MatchedSource(t dag.TaskID, c, predIdx int) (int, error) {
	if s.CommPattern != PatternMatched {
		return 0, fmt.Errorf("%w: schedule pattern is %v", ErrMatching, s.CommPattern)
	}
	m := s.matchedFrom[t]
	if m == nil || c >= len(m) || predIdx >= len(m[c]) {
		return 0, fmt.Errorf("%w: no matching recorded for task %d copy %d pred %d", ErrMatching, t, c, predIdx)
	}
	return m[c][predIdx], nil
}

// MappingOrder returns the order in which tasks were mapped.
func (s *Schedule) MappingOrder() []dag.TaskID {
	return append([]dag.TaskID(nil), s.mappingOrder...)
}

// AppendMappingOrder appends the mapping order to buf and returns it — the
// allocation-free variant of MappingOrder for callers recycling scratch (the
// replay engine binds a pooled replayer per Evaluate worker).
func (s *Schedule) AppendMappingOrder(buf []dag.TaskID) []dag.TaskID {
	return append(buf, s.mappingOrder...)
}

// AllocMatched carves a k×npreds receiver-indexed matching matrix from the
// schedule's arena, zeroed, for the caller to fill and hand back through
// SetMatchedSources. Valid only under PatternMatched. The matrix shares the
// schedule's lifetime; MC-FTSA allocates one per task instead of k+1 heap
// objects per task.
func (s *Schedule) AllocMatched(k, npreds int) ([][]int, error) {
	if s.CommPattern != PatternMatched {
		return nil, fmt.Errorf("%w: schedule pattern is %v", ErrMatching, s.CommPattern)
	}
	rOff := len(s.matchedRows)
	if rOff+k > cap(s.matchedRows) {
		// Overflow block: rows already carved keep the old backing alive.
		s.matchedRows = make([][]int, 0, max(4*k, 2*cap(s.matchedRows)))
		rOff = 0
	}
	s.matchedRows = s.matchedRows[:rOff+k]
	rows := s.matchedRows[rOff : rOff+k : rOff+k]
	need := k * npreds
	iOff := len(s.matchedInts)
	if iOff+need > cap(s.matchedInts) {
		s.matchedInts = make([]int, 0, max(4*need, 2*cap(s.matchedInts)))
		iOff = 0
	}
	s.matchedInts = s.matchedInts[:iOff+need]
	ints := s.matchedInts[iOff : iOff+need]
	clear(ints)
	for c := 0; c < k; c++ {
		rows[c] = ints[c*npreds : (c+1)*npreds : (c+1)*npreds]
	}
	return rows, nil
}

// Complete reports whether every task has been placed.
func (s *Schedule) Complete() bool {
	for t := range s.replicas {
		if s.replicas[t] == nil {
			return false
		}
	}
	return true
}

// LowerBound returns M* (equation 2): the latency achieved when no processor
// fails — the maximum over exit tasks of the earliest replica finish time.
func (s *Schedule) LowerBound() float64 {
	bound := 0.0
	for _, t := range s.Graph.Exits() {
		reps := s.replicas[t]
		if len(reps) == 0 {
			return math.Inf(1)
		}
		first := math.Inf(1)
		for _, r := range reps {
			if r.FinishMin < first {
				first = r.FinishMin
			}
		}
		if first > bound {
			bound = first
		}
	}
	return bound
}

// UpperBound returns M (equation 4): the latency guaranteed under any ε
// failures — the maximum over exit tasks of the latest replica finish time,
// with finish times computed pessimistically (equation 3).
func (s *Schedule) UpperBound() float64 {
	bound := 0.0
	for _, t := range s.Graph.Exits() {
		reps := s.replicas[t]
		if len(reps) == 0 {
			return math.Inf(1)
		}
		for _, r := range reps {
			if r.FinishMax > bound {
				bound = r.FinishMax
			}
		}
	}
	return bound
}

// ProcTimelines returns, for each processor, its replicas ordered by
// optimistic start time (the order the processor executes them; duplicates
// added out of mapping order are interleaved correctly).
func (s *Schedule) ProcTimelines() [][]Replica {
	out := make([][]Replica, s.Platform.NumProcs())
	for _, t := range s.mappingOrder {
		for _, r := range s.replicas[t] {
			out[r.Proc] = append(out[r.Proc], r)
		}
	}
	for p := range out {
		sort.Slice(out[p], func(i, j int) bool {
			if out[p][i].StartMin != out[p][j].StartMin {
				return out[p][i].StartMin < out[p][j].StartMin
			}
			return out[p][i].Task < out[p][j].Task
		})
	}
	return out
}

// MessageCount returns the number of *inter-processor* messages the schedule
// requires (intra-processor transfers are free and not counted, matching the
// paper's remark that e(ε+1)² is only an upper bound for FTSA).
func (s *Schedule) MessageCount() int {
	n := 0
	for t := 0; t < s.Graph.NumTasks(); t++ {
		tid := dag.TaskID(t)
		for predIdx, pe := range s.Graph.Preds(tid) {
			srcReps := s.replicas[pe.To]
			dstReps := s.replicas[tid]
			switch s.CommPattern {
			case PatternAll:
				for _, sr := range srcReps {
					for _, dr := range dstReps {
						if sr.Proc != dr.Proc {
							n++
						}
					}
				}
			case PatternMatched:
				for c, dr := range dstReps {
					k, err := s.MatchedSource(tid, c, predIdx)
					if err != nil {
						continue
					}
					if srcReps[k].Proc != dr.Proc {
						n++
					}
				}
			}
		}
	}
	return n
}
