package sched

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// RunOptions is the scheduler-independent option set of the registry's
// uniform entry point. Every registered scheduler maps it onto its own
// native options; fields a scheduler does not support are rejected by
// Registration.Check (and by Run) instead of being silently ignored.
type RunOptions struct {
	// Epsilon is ε, the number of fail-stop processor failures to tolerate;
	// fault-tolerant schedulers replicate every task on ε+1 distinct
	// processors. Schedulers registered as not fault-tolerant (HEFT) require
	// Epsilon == 0.
	Epsilon int
	// Rng breaks priority ties randomly, as the paper specifies. Nil makes
	// tie-breaking deterministic (by task ID).
	Rng *rand.Rand
	// BottomLevels, when non-nil, supplies the precomputed static bottom
	// levels bℓ(t) (as returned by AvgBottomLevels) instead of recomputing
	// them. Every registered scheduler derives its task priorities from the
	// same bottom levels, so callers scheduling one instance repeatedly —
	// the campaign engine, the serving layer's per-instance memo — compute
	// them once and share the slice (read-only to the schedulers).
	BottomLevels []float64
	// Policy selects a scheduler-specific placement policy by name (e.g.
	// MC-FTSA's "greedy" or "bottleneck" matching, HEFT's "noinsertion"
	// ablation). Empty selects the scheduler's default; any other value must
	// be listed in the scheduler's registration.
	Policy string
	// Latency, when positive, requests the deadline-checked bi-criteria
	// variant (Section 4.3): scheduling fails as soon as some task cannot
	// meet its derived deadline. Only valid for schedulers registered with
	// Deadlines support.
	Latency float64
}

// Scheduler is the uniform interface every scheduling algorithm in the
// registry implements. Name returns the canonical lower-case registry name;
// Schedule maps the instance onto the platform under the given options.
type Scheduler interface {
	Name() string
	Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt RunOptions) (*Schedule, error)
}

// Registration describes one registry entry: the scheduler plus the
// capability surface dispatch sites need for validation, help output and
// documentation.
type Registration struct {
	// Scheduler is the implementation; its Name() is the canonical name.
	Scheduler Scheduler
	// Aliases are alternative names accepted by Lookup (matched
	// case-insensitively, like the canonical name). The paper's display
	// spellings ("MC-FTSA") are registered here.
	Aliases []string
	// Description is the one-line summary used by -list-schedulers and the
	// generated documentation table.
	Description string
	// FaultTolerant reports whether the scheduler replicates tasks; when
	// false, RunOptions.Epsilon must be 0.
	FaultTolerant bool
	// Policies lists the accepted non-empty RunOptions.Policy values.
	Policies []string
	// DefaultPolicy, when non-empty, is the policy an empty
	// RunOptions.Policy resolves to (it must appear in Policies). Cache-key
	// canonicalization uses it so an omitted policy and an explicit default
	// share one entry.
	DefaultPolicy string
	// IgnoresRng reports that the scheduler never consumes RunOptions.Rng
	// (HEFT is deterministic); cache-key canonicalization zeroes the seed
	// for such schedulers so equivalent requests share one entry.
	IgnoresRng bool
	// Deadlines reports whether the scheduler supports the deadline-checked
	// variant selected by RunOptions.Latency.
	Deadlines bool
}

// Name returns the canonical scheduler name.
func (r Registration) Name() string { return r.Scheduler.Name() }

// registry is the process-global scheduler registry. Schedulers register
// themselves from init functions of their packages; the ftsched/internal/
// schedulers package links every built-in into a binary with one blank
// import. Lookups after init never write, so an RWMutex keeps concurrent
// dispatch (the serving layer resolves per request) contention-free.
var registry struct {
	sync.RWMutex
	order   []string                // canonical names in registration order
	entries map[string]Registration // canonical name -> entry
	byName  map[string]string       // lower-case name/alias -> canonical name
}

// ErrUnknownScheduler is wrapped by lookup failures; the error text
// enumerates the registered names so callers (CLI, HTTP 400s) never show a
// stale hard-coded list.
var ErrUnknownScheduler = errors.New("sched: unknown scheduler")

// Register adds a scheduler to the registry. It panics on a nil scheduler,
// an empty or non-canonical (not lower-case) name, or any name/alias
// collision — registration happens at init time, where a panic is a build
// error, not a runtime hazard.
func Register(r Registration) {
	if r.Scheduler == nil {
		panic("sched: Register called with nil scheduler")
	}
	name := r.Scheduler.Name()
	if name == "" || name != strings.ToLower(name) {
		panic(fmt.Sprintf("sched: scheduler name %q must be non-empty lower-case", name))
	}
	registry.Lock()
	defer registry.Unlock()
	if registry.entries == nil {
		registry.entries = make(map[string]Registration)
		registry.byName = make(map[string]string)
	}
	// Validate every key before mutating anything, so a collision panic
	// cannot leave the process-global registry half-populated (tests that
	// recover from Register panics would otherwise see phantom entries).
	keys := make([]string, 0, 1+len(r.Aliases))
	keys = append(keys, name)
	for _, a := range r.Aliases {
		keys = append(keys, strings.ToLower(a))
	}
	seen := make(map[string]bool, len(keys))
	for _, key := range keys {
		if prev, ok := registry.byName[key]; ok {
			panic(fmt.Sprintf("sched: name or alias %q of %q already registered by %q", key, name, prev))
		}
		if seen[key] {
			panic(fmt.Sprintf("sched: scheduler %q repeats name/alias %q", name, key))
		}
		seen[key] = true
	}
	registry.entries[name] = r
	registry.order = append(registry.order, name)
	for _, key := range keys {
		registry.byName[key] = name
	}
}

// Lookup resolves a scheduler by canonical name or alias, matched
// case-insensitively.
func Lookup(name string) (Scheduler, bool) {
	r, ok := LookupInfo(name)
	if !ok {
		return nil, false
	}
	return r.Scheduler, true
}

// LookupInfo resolves the full registration of a scheduler by canonical name
// or alias, matched case-insensitively.
func LookupInfo(name string) (Registration, bool) {
	registry.RLock()
	defer registry.RUnlock()
	canonical, ok := registry.byName[strings.ToLower(name)]
	if !ok {
		return Registration{}, false
	}
	return registry.entries[canonical], true
}

// Names returns the canonical scheduler names in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return append([]string(nil), registry.order...)
}

// Registrations returns every registry entry in registration order.
func Registrations() []Registration {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Registration, 0, len(registry.order))
	for _, name := range registry.order {
		out = append(out, registry.entries[name])
	}
	return out
}

// AliasesOf returns the registered aliases of a scheduler (resolved like
// Lookup), sorted for stable output.
func AliasesOf(name string) []string {
	r, ok := LookupInfo(name)
	if !ok {
		return nil
	}
	out := append([]string(nil), r.Aliases...)
	sort.Strings(out)
	return out
}

// UnknownSchedulerError returns the uniform lookup-failure error, whose text
// enumerates the registered scheduler names.
func UnknownSchedulerError(name string) error {
	return fmt.Errorf("%w %q (registered: %s)", ErrUnknownScheduler, name, strings.Join(Names(), ", "))
}

// SweepPolicies returns the policy values a parameter sweep over this
// scheduler should cover, derived from the capability surface: every
// registered policy, plus the unnamed default behavior (empty string) when no
// DefaultPolicy names it. A scheduler with a DefaultPolicy resolves "" to
// that policy (see canonicalization in the serving layer), so listing ""
// there would duplicate a grid point; a scheduler without one ("ftbar",
// "heft") has a real unnamed default the sweep must not skip.
func (r Registration) SweepPolicies() []string {
	if len(r.Policies) == 0 {
		return []string{""}
	}
	if r.DefaultPolicy != "" {
		return append([]string(nil), r.Policies...)
	}
	return append([]string{""}, r.Policies...)
}

// Check validates opt against the scheduler's registered capabilities,
// producing the uniform errors every dispatch site (CLI, HTTP, campaign
// engine) reports. It does not validate instance-dependent constraints
// (ε+1 <= m); the schedulers themselves do.
func (r Registration) Check(opt RunOptions) error {
	name := r.Name()
	if opt.Epsilon < 0 {
		return fmt.Errorf("sched: epsilon must be >= 0, got %d", opt.Epsilon)
	}
	if !r.FaultTolerant && opt.Epsilon != 0 {
		return fmt.Errorf("sched: scheduler %q is not fault-tolerant; epsilon must be 0, got %d", name, opt.Epsilon)
	}
	if opt.Policy != "" {
		ok := false
		for _, p := range r.Policies {
			if p == opt.Policy {
				ok = true
				break
			}
		}
		if !ok {
			if len(r.Policies) == 0 {
				return fmt.Errorf("sched: scheduler %q accepts no policy, got %q", name, opt.Policy)
			}
			return fmt.Errorf("sched: unknown policy %q for scheduler %q (want %s)",
				opt.Policy, name, strings.Join(r.Policies, " or "))
		}
	}
	if opt.Latency != 0 && !r.Deadlines {
		return fmt.Errorf("sched: scheduler %q has no deadline-checked variant (-latency)", name)
	}
	if opt.Latency < 0 {
		return fmt.Errorf("sched: latency must be >= 0, got %g", opt.Latency)
	}
	return nil
}

// Run resolves name in the registry, validates opt against the scheduler's
// capabilities, and runs it. It is the single dispatch point the serving
// layer, the campaign engine and the CLIs share.
func Run(name string, g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt RunOptions) (*Schedule, error) {
	r, ok := LookupInfo(name)
	if !ok {
		return nil, UnknownSchedulerError(name)
	}
	if err := r.Check(opt); err != nil {
		return nil, err
	}
	return r.Scheduler.Schedule(g, p, cm, opt)
}

// WriteSchedulerList writes the registry one scheduler per line — canonical
// name, aliases, accepted policies — the shared implementation behind the
// CLIs' -list-schedulers flags.
func WriteSchedulerList(w io.Writer) {
	for _, r := range Registrations() {
		line := r.Name()
		if aliases := AliasesOf(r.Name()); len(aliases) > 0 {
			line += " (aliases: " + strings.Join(aliases, ", ") + ")"
		}
		if len(r.Policies) > 0 {
			line += " [policies: " + strings.Join(r.Policies, ", ") + "]"
		}
		fmt.Fprintln(w, line)
	}
}

// RegistryTable renders the registry as a GitHub-flavored markdown table.
// docs/API.md embeds it between generated-table markers, and a test asserts
// the embedded copy matches, so the documented scheduler list cannot drift
// from the code.
func RegistryTable() string {
	var b strings.Builder
	b.WriteString("| Scheduler | Aliases | Fault-tolerant | Policies | Description |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range Registrations() {
		ft := "no (ε must be 0)"
		if r.FaultTolerant {
			ft = "yes"
		}
		aliases := strings.Join(AliasesOf(r.Name()), ", ")
		if aliases == "" {
			aliases = "—"
		}
		policies := strings.Join(r.Policies, ", ")
		if policies == "" {
			policies = "—"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n", r.Name(), aliases, ft, policies, r.Description)
	}
	return b.String()
}
