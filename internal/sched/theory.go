package sched

import (
	"math"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// TheoreticalBounds collects machine-independent lower bounds on the
// achievable fault-free makespan of a problem instance, used to gauge how
// far a heuristic schedule is from optimal (no polynomial algorithm can
// close the gap exactly — the problem is NP-hard even without replication).
type TheoreticalBounds struct {
	// CriticalPath is the best-case length of the longest dependence chain:
	// every task on the chain at its fastest processor, all communications
	// free (co-location).
	CriticalPath float64
	// WorkBound is the total fastest-execution work divided by the number
	// of processors: even perfect load balance cannot beat it.
	WorkBound float64
	// Combined is max(CriticalPath, WorkBound).
	Combined float64
}

// ComputeTheoreticalBounds derives the bounds for a problem instance.
func ComputeTheoreticalBounds(g *dag.Graph, cm *platform.CostModel, p *platform.Platform) (*TheoreticalBounds, error) {
	cp, err := g.LongestPathLength(
		func(t dag.TaskID) float64 { return cm.Min(t) },
		dag.ZeroEdgeCost,
	)
	if err != nil {
		return nil, err
	}
	work := 0.0
	for t := 0; t < g.NumTasks(); t++ {
		work += cm.Min(dag.TaskID(t))
	}
	tb := &TheoreticalBounds{
		CriticalPath: cp,
		WorkBound:    work / float64(p.NumProcs()),
	}
	tb.Combined = math.Max(tb.CriticalPath, tb.WorkBound)
	return tb, nil
}

// QualityRatio returns the schedule's fault-free latency divided by the
// combined theoretical lower bound (>= 1; closer to 1 is better). The
// replication factor inflates the ratio for ε > 0 — compare schedules at
// equal ε.
func (s *Schedule) QualityRatio() (float64, error) {
	tb, err := ComputeTheoreticalBounds(s.Graph, s.Costs, s.Platform)
	if err != nil {
		return 0, err
	}
	if tb.Combined <= 0 {
		return 0, nil
	}
	return s.LowerBound() / tb.Combined, nil
}
