package sched

import (
	"errors"
	"strings"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// fakeSched is a registry test double; its Schedule records the options it
// was invoked with.
type fakeSched struct {
	name string
	got  *RunOptions
}

func (f *fakeSched) Name() string { return f.name }

func (f *fakeSched) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt RunOptions) (*Schedule, error) {
	if f.got != nil {
		*f.got = opt
	}
	return nil, errors.New("fake: not implemented")
}

func TestRegistryLookupAndAliases(t *testing.T) {
	var got RunOptions
	Register(Registration{
		Scheduler:     &fakeSched{name: "fake-a", got: &got},
		Aliases:       []string{"FAKE-ALPHA", "fa"},
		Description:   "test double",
		FaultTolerant: true,
		Policies:      []string{"p1"},
		Deadlines:     true,
	})

	for _, name := range []string{"fake-a", "FAKE-A", "fake-alpha", "FA"} {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
	}
	if _, ok := Lookup("fake-nope"); ok {
		t.Fatal("Lookup of unregistered name succeeded")
	}
	info, ok := LookupInfo("fa")
	if !ok || info.Name() != "fake-a" {
		t.Fatalf("LookupInfo via alias: %+v, ok=%v", info, ok)
	}
	aliases := AliasesOf("fake-a")
	if len(aliases) != 2 || aliases[0] != "FAKE-ALPHA" || aliases[1] != "fa" {
		t.Fatalf("AliasesOf = %v", aliases)
	}

	found := false
	for _, n := range Names() {
		if n == "fake-a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() %v does not contain fake-a", Names())
	}

	// Run resolves, checks and forwards the options.
	_, err := Run("Fake-Alpha", nil, nil, nil, RunOptions{Epsilon: 2, Policy: "p1", Latency: 10})
	if err == nil || !strings.Contains(err.Error(), "fake: not implemented") {
		t.Fatalf("Run did not reach the scheduler: %v", err)
	}
	if got.Epsilon != 2 || got.Policy != "p1" || got.Latency != 10 {
		t.Fatalf("options not forwarded: %+v", got)
	}
}

func TestRegistryUnknownErrorListsNames(t *testing.T) {
	Register(Registration{Scheduler: &fakeSched{name: "fake-b"}, Description: "test double"})
	err := UnknownSchedulerError("bogus")
	if !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
	if !strings.Contains(err.Error(), "fake-b") {
		t.Fatalf("error %q does not enumerate registered names", err)
	}
	if _, runErr := Run("bogus", nil, nil, nil, RunOptions{}); !errors.Is(runErr, ErrUnknownScheduler) {
		t.Fatalf("Run unknown: %v", runErr)
	}
}

func TestRegistrationCheck(t *testing.T) {
	r := Registration{
		Scheduler:     &fakeSched{name: "fake-c"},
		FaultTolerant: false,
		Policies:      []string{"alt"},
	}
	cases := []struct {
		name string
		opt  RunOptions
		want string // substring of the error, "" for success
	}{
		{"defaults", RunOptions{}, ""},
		{"policy ok", RunOptions{Policy: "alt"}, ""},
		{"negative epsilon", RunOptions{Epsilon: -1}, "epsilon must be >= 0"},
		{"not fault tolerant", RunOptions{Epsilon: 1}, "not fault-tolerant"},
		{"unknown policy", RunOptions{Policy: "bogus"}, "unknown policy"},
		{"no deadline variant", RunOptions{Latency: 5}, "no deadline-checked variant"},
	}
	for _, tc := range cases {
		err := r.Check(tc.opt)
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// A scheduler with no policies reports that, rather than listing nothing.
	noPol := Registration{Scheduler: &fakeSched{name: "fake-d"}}
	if err := noPol.Check(RunOptions{Policy: "x"}); err == nil || !strings.Contains(err.Error(), "accepts no policy") {
		t.Errorf("no-policy check: %v", err)
	}
}

func TestRegistryTableContainsEveryEntry(t *testing.T) {
	table := RegistryTable()
	for _, name := range Names() {
		if !strings.Contains(table, "`"+name+"`") {
			t.Errorf("RegistryTable misses %q:\n%s", name, table)
		}
	}
	if !strings.HasPrefix(table, "| Scheduler |") {
		t.Errorf("RegistryTable header malformed:\n%s", table)
	}
}

func TestRegisterCollisionPanics(t *testing.T) {
	Register(Registration{Scheduler: &fakeSched{name: "fake-e"}})
	for _, bad := range []Registration{
		{Scheduler: &fakeSched{name: "fake-e"}},                              // duplicate name
		{Scheduler: &fakeSched{name: "fake-f"}, Aliases: []string{"FAKE-E"}}, // alias collides with name
		{Scheduler: &fakeSched{name: "Fake-G"}},                              // non-canonical name
		{Scheduler: nil},                                                     // nil scheduler
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%+v) did not panic", bad)
				}
			}()
			Register(bad)
		}()
	}
}

func TestSweepPolicies(t *testing.T) {
	cases := []struct {
		reg  Registration
		want []string
	}{
		// No policies: sweep only the unnamed default.
		{Registration{}, []string{""}},
		// A DefaultPolicy names the unnamed behavior, so "" would duplicate
		// a grid point; the registered policies already cover everything.
		{Registration{Policies: []string{"greedy", "bottleneck"}, DefaultPolicy: "greedy"},
			[]string{"greedy", "bottleneck"}},
		// Policies without a DefaultPolicy: the unnamed default is a real
		// distinct behavior the sweep must include.
		{Registration{Policies: []string{"noduplication"}},
			[]string{"", "noduplication"}},
	}
	for _, c := range cases {
		got := c.reg.SweepPolicies()
		if len(got) != len(c.want) {
			t.Errorf("SweepPolicies(%+v) = %q, want %q", c.reg, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SweepPolicies(%+v) = %q, want %q", c.reg, got, c.want)
				break
			}
		}
	}
}
