package sched

import (
	"fmt"
	"math"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// ArrivalWindow returns the earliest and latest possible arrival on proc of
// the data produced by the given replica set of a predecessor task:
//
//   - earliest: min over copies of FinishMin + V·d(copy proc, proc) — the
//     "first message wins" semantics of equation (1);
//   - latest: max over copies of FinishMax + V·d — the all-copies semantics
//     of equation (3).
//
// Intra-processor transfers have zero delay (d(P,P) = 0).
func ArrivalWindow(p *platform.Platform, srcReps []Replica, volume float64, proc platform.ProcID) (earliest, latest float64) {
	earliest = math.Inf(1)
	for _, sr := range srcReps {
		d := p.Delay(sr.Proc, proc)
		if a := sr.FinishMin + volume*d; a < earliest {
			earliest = a
		}
		if a := sr.FinishMax + volume*d; a > latest {
			latest = a
		}
	}
	return earliest, latest
}

// AddDuplicate appends an extra replica of an already-placed task (used by
// FTBAR's Minimize-Start-Time duplication). The copy index is assigned
// automatically.
func (s *Schedule) AddDuplicate(t dag.TaskID, r Replica) error {
	if s.replicas[t] == nil {
		return fmt.Errorf("%w: task %d", ErrNotScheduled, t)
	}
	if r.Task != t {
		return fmt.Errorf("sched: duplicate mislabeled (task=%d, want %d)", r.Task, t)
	}
	if !s.Platform.Valid(r.Proc) {
		return fmt.Errorf("sched: duplicate of task %d on invalid processor %d", t, r.Proc)
	}
	r.Copy = len(s.replicas[t])
	s.replicas[t] = append(s.replicas[t], r)
	return nil
}

// AvgBottomLevels computes the static bottom levels bℓ(t) of Section 4.1:
// node costs are the platform-average execution times E̅(t) and edge costs
// the average communication costs W̅(ti,tj) = V(ti,tj)·d̅.
func AvgBottomLevels(g *dag.Graph, cm *platform.CostModel, p *platform.Platform) ([]float64, error) {
	meanD := p.MeanDelay()
	return g.BottomLevels(
		func(t dag.TaskID) float64 { return cm.Mean(t) },
		func(_, _ dag.TaskID, v float64) float64 { return v * meanD },
	)
}

// ResolveBottomLevels returns bl when it was supplied (validating its
// length against the graph) and computes AvgBottomLevels otherwise — the
// shared prologue of every scheduler honoring RunOptions.BottomLevels.
func ResolveBottomLevels(g *dag.Graph, cm *platform.CostModel, p *platform.Platform, bl []float64) ([]float64, error) {
	if bl == nil {
		return AvgBottomLevels(g, cm, p)
	}
	if len(bl) != g.NumTasks() {
		return nil, fmt.Errorf("sched: %d bottom levels for %d tasks", len(bl), g.NumTasks())
	}
	return bl, nil
}

// Deadlines assigns the per-task deadlines of Section 4.3 for a target
// latency L, in reverse topological order:
//
//	d(ti) = L                                     if Γ+(ti) = ∅
//	d(ti) = min over tj in Γ+(ti) of
//	          d(tj) − E̅(tj) − W̅(ti,tj)           otherwise
//
// where E̅(tj) is the average execution time of tj on the ε+1 fastest
// processors and W̅ uses the average delay of the ε+1 fastest links.
func Deadlines(g *dag.Graph, cm *platform.CostModel, p *platform.Platform, epsilon int, latency float64) ([]float64, error) {
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		return nil, err
	}
	fastD := p.MeanDelayFastestLinks(epsilon + 1)
	d := make([]float64, g.NumTasks())
	for _, t := range rev {
		if g.OutDegree(t) == 0 {
			d[t] = latency
			continue
		}
		best := math.Inf(1)
		for _, se := range g.Succs(t) {
			v := d[se.To] - cm.MeanFastest(se.To, epsilon+1) - se.Volume*fastD
			if v < best {
				best = v
			}
		}
		d[t] = best
	}
	return d, nil
}
