package sched

import (
	"fmt"
	"math"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// ArrivalWindow returns the earliest and latest possible arrival on proc of
// the data produced by the given replica set of a predecessor task:
//
//   - earliest: min over copies of FinishMin + V·d(copy proc, proc) — the
//     "first message wins" semantics of equation (1);
//   - latest: max over copies of FinishMax + V·d — the all-copies semantics
//     of equation (3).
//
// Intra-processor transfers have zero delay (d(P,P) = 0).
func ArrivalWindow(p *platform.Platform, srcReps []Replica, volume float64, proc platform.ProcID) (earliest, latest float64) {
	earliest = math.Inf(1)
	for _, sr := range srcReps {
		d := p.Delay(sr.Proc, proc)
		if a := sr.FinishMin + volume*d; a < earliest {
			earliest = a
		}
		if a := sr.FinishMax + volume*d; a > latest {
			latest = a
		}
	}
	return earliest, latest
}

// AddDuplicate appends an extra replica of an already-placed task (used by
// FTBAR's Minimize-Start-Time duplication). The copy index is assigned
// automatically.
func (s *Schedule) AddDuplicate(t dag.TaskID, r Replica) error {
	if s.replicas[t] == nil {
		return fmt.Errorf("%w: task %d", ErrNotScheduled, t)
	}
	if r.Task != t {
		return fmt.Errorf("sched: duplicate mislabeled (task=%d, want %d)", r.Task, t)
	}
	if !s.Platform.Valid(r.Proc) {
		return fmt.Errorf("sched: duplicate of task %d on invalid processor %d", t, r.Proc)
	}
	r.Copy = len(s.replicas[t])
	s.replicas[t] = append(s.replicas[t], r)
	return nil
}

// AvgBottomLevels computes the static bottom levels bℓ(t) of Section 4.1:
// node costs are the platform-average execution times E̅(t) and edge costs
// the average communication costs W̅(ti,tj) = V(ti,tj)·d̅.
//
// It runs on the graph's frozen CSR view (Graph.Freeze — memoized, so every
// scheduler, the replay engine and the tuner probing one instance share a
// single topological sort) with the costs materialized once into flat slices
// instead of dispatching closures per edge. The result is bit-for-bit the
// closure-based g.BottomLevels under the same averaging (property-tested).
func AvgBottomLevels(g *dag.Graph, cm *platform.CostModel, p *platform.Platform) ([]float64, error) {
	f, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	node, edge := AvgCosts(f, cm, p)
	return f.BottomLevels(node, edge, nil), nil
}

// AvgCosts materializes the paper's average cost model for a frozen graph:
// node[t] = E̅(t) and edge[i] = V(e_i)·d̅ indexed by flat edge ID — the cost
// slices Flat.BottomLevels/TopLevels and the incremental updater consume.
func AvgCosts(f *dag.Flat, cm *platform.CostModel, p *platform.Platform) (node, edge []float64) {
	meanD := p.MeanDelay()
	v := f.NumTasks()
	node = make([]float64, v)
	edge = make([]float64, f.NumEdges())
	for t := 0; t < v; t++ {
		node[t] = cm.Mean(dag.TaskID(t))
		lo := f.SuccEdgeLo(dag.TaskID(t))
		for i, vol := range f.SuccVolumes(dag.TaskID(t)) {
			edge[lo+int32(i)] = vol * meanD
		}
	}
	return node, edge
}

// ResolveBottomLevels returns bl when it was supplied (validating its
// length against the graph) and computes AvgBottomLevels otherwise — the
// shared prologue of every scheduler honoring RunOptions.BottomLevels.
func ResolveBottomLevels(g *dag.Graph, cm *platform.CostModel, p *platform.Platform, bl []float64) ([]float64, error) {
	if bl == nil {
		return AvgBottomLevels(g, cm, p)
	}
	if len(bl) != g.NumTasks() {
		return nil, fmt.Errorf("sched: %d bottom levels for %d tasks", len(bl), g.NumTasks())
	}
	return bl, nil
}

// Deadlines assigns the per-task deadlines of Section 4.3 for a target
// latency L, in reverse topological order:
//
//	d(ti) = L                                     if Γ+(ti) = ∅
//	d(ti) = min over tj in Γ+(ti) of
//	          d(tj) − E̅(tj) − W̅(ti,tj)           otherwise
//
// where E̅(tj) is the average execution time of tj on the ε+1 fastest
// processors and W̅ uses the average delay of the ε+1 fastest links.
func Deadlines(g *dag.Graph, cm *platform.CostModel, p *platform.Platform, epsilon int, latency float64) ([]float64, error) {
	f, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	fastD := p.MeanDelayFastestLinks(epsilon + 1)
	d := make([]float64, f.NumTasks())
	for _, t := range f.ReverseTopologicalOrder() {
		succs := f.SuccIDs(t)
		if len(succs) == 0 {
			d[t] = latency
			continue
		}
		best := math.Inf(1)
		vols := f.SuccVolumes(t)
		for i, s := range succs {
			v := d[s] - cm.MeanFastest(dag.TaskID(s), epsilon+1) - vols[i]*fastD
			if v < best {
				best = v
			}
		}
		d[t] = best
	}
	return d, nil
}
