package sched

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// fuzzInstance is the fixed diamond instance every fuzzed schedule binds to
// (ReadSchedule re-validates against it, so structurally valid JSON for the
// wrong instance must error cleanly too).
func fuzzInstance(tb testing.TB) (*dag.Graph, *platform.Platform, *platform.CostModel) {
	tb.Helper()
	g := dag.NewWithTasks("fuzz", 4)
	for _, e := range []struct {
		src, dst dag.TaskID
		vol      float64
	}{{0, 1, 1}, {0, 2, 2}, {1, 3, 1}, {2, 3, 0.5}} {
		if err := g.AddEdge(e.src, e.dst, e.vol); err != nil {
			tb.Fatal(err)
		}
	}
	p, err := platform.New(3, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	cm, err := platform.NewRandomCostModel(rand.New(rand.NewSource(7)), 4, 3, 1, 2)
	if err != nil {
		tb.Fatal(err)
	}
	return g, p, cm
}

// validScheduleJSON serializes a hand-placed valid ε=0 schedule for the fuzz
// instance — the well-formed seed the fuzzer mutates.
func validScheduleJSON(tb testing.TB) []byte {
	tb.Helper()
	g, p, cm := fuzzInstance(tb)
	s, err := New(g, p, cm, 0, PatternAll, "fuzz")
	if err != nil {
		tb.Fatal(err)
	}
	// Sequential placement on P0: trivially precedence- and overlap-clean.
	now := 0.0
	for _, t := range []dag.TaskID{0, 1, 2, 3} {
		c := cm.Cost(t, 0)
		rep := Replica{Task: t, Copy: 0, Proc: 0,
			StartMin: now, FinishMin: now + c, StartMax: now, FinishMax: now + c}
		if err := s.Place(t, []Replica{rep}); err != nil {
			tb.Fatal(err)
		}
		now += c
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadSchedule proves a hostile schedule file never panics the loader:
// every outcome is a clean (schedule, nil) or (nil, error), and an accepted
// schedule is fully valid (the loader's contract) and re-serializable.
func FuzzReadSchedule(f *testing.F) {
	f.Add(validScheduleJSON(f))
	// The registry's golden schedule files are richer seeds (replication,
	// matched patterns, FTBAR duplicates); they bind to a different
	// instance, so the loader must reject them — cleanly.
	if goldens, err := filepath.Glob(filepath.Join("..", "schedulers", "testdata", "*.golden.json")); err == nil {
		for _, path := range goldens {
			if blob, err := os.ReadFile(path); err == nil {
				f.Add(blob)
			}
		}
	}
	for _, seed := range []string{
		"",
		"null",
		"{}",
		`{"algorithm": "X", "epsilon": -1}`,
		`{"algorithm": "X", "epsilon": 0, "pattern": 9, "mapping_order": [0,1,2,3], "replicas": [[],[],[],[]]}`,
		`{"algorithm": "X", "epsilon": 0, "pattern": 1, "mapping_order": [3,2,1,0], "replicas": [[{"proc": 0}]], "matched": [[[0]]]}`,
		`{"mapping_order": [0,0,0,0], "replicas": [[{"proc": 99, "start_min": 1e308, "finish_min": -5}]]}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, blob []byte) {
		g, p, cm := fuzzInstance(t)
		s, err := ReadSchedule(bytes.NewReader(blob), g, p, cm)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatal("ReadSchedule returned nil, nil")
		}
		// The loader promises a fully validated schedule.
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ReadSchedule accepted an invalid schedule: %v", verr)
		}
		var buf bytes.Buffer
		if _, werr := s.WriteTo(&buf); werr != nil {
			t.Fatalf("accepted schedule does not re-serialize: %v", werr)
		}
	})
}

// TestReadScheduleRejectsFuzzSeeds pins the malformed seeds as plain tests,
// so the corpus stays meaningful in ordinary -run invocations.
func TestReadScheduleRejectsFuzzSeeds(t *testing.T) {
	g, p, cm := fuzzInstance(t)
	if _, err := ReadSchedule(bytes.NewReader(validScheduleJSON(t)), g, p, cm); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	for _, seed := range []string{
		"", "null", "{}",
		`{"algorithm": "X", "epsilon": -1}`,
		`{"mapping_order": [0,0,0,0], "replicas": [[{"proc": 99}]]}`,
	} {
		if _, err := ReadSchedule(bytes.NewReader([]byte(seed)), g, p, cm); err == nil {
			t.Errorf("seed %q accepted", seed)
		}
	}
}
