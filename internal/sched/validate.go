package sched

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// timeEps absorbs float rounding when comparing schedule times.
const timeEps = 1e-7

// Validate checks every structural and temporal invariant of a complete
// fault-tolerant schedule:
//
//   - every task placed, with at least ε+1 replicas on ε+1 *distinct*
//     processors (Proposition 4.1);
//   - the mapping order is a topological order of the DAG;
//   - per-processor executions do not overlap, in both the optimistic and
//     the pessimistic window;
//   - every replica starts no earlier than its data can arrive: under
//     PatternAll the earliest predecessor copy for the Min window and the
//     latest for the Max window (equations 1 and 3); under PatternMatched
//     the single matched source for both windows;
//   - under PatternMatched, each precedence edge carries a bijective
//     replica-to-replica matching that routes shared processors to
//     themselves (Proposition 4.3).
func (s *Schedule) Validate() error {
	if !s.Complete() {
		for t := range s.replicas {
			if s.replicas[t] == nil {
				return fmt.Errorf("%w: task %d", ErrIncomplete, t)
			}
		}
	}
	if !s.Graph.IsTopologicalOrder(s.mappingOrder) {
		// The mapping order includes each task once; it must respect
		// precedence because only free tasks are mapped.
		return fmt.Errorf("%w: mapping order is not topological", ErrPrecedence)
	}
	for t := range s.replicas {
		if err := s.validateTask(dag.TaskID(t)); err != nil {
			return err
		}
	}
	if err := s.validateTimelines(); err != nil {
		return err
	}
	return nil
}

func (s *Schedule) validateTask(t dag.TaskID) error {
	reps := s.replicas[t]
	if len(reps) < s.Epsilon+1 {
		return fmt.Errorf("%w: task %d has %d replicas, want >= %d", ErrReplicaCount, t, len(reps), s.Epsilon+1)
	}
	procs := map[int]bool{}
	for _, r := range reps {
		procs[int(r.Proc)] = true
	}
	// Proposition 4.1: ε+1 pairwise distinct processors are required. The
	// base schedulers produce exactly ε+1 distinct ones; FTBAR duplication
	// may add extra copies on already-used processors, which is harmless as
	// long as ε+1 distinct processors execute the task.
	if len(procs) < s.Epsilon+1 {
		return fmt.Errorf("%w: task %d uses %d distinct processors, want >= %d", ErrSpace, t, len(procs), s.Epsilon+1)
	}
	for _, r := range reps {
		e := s.Costs.Cost(t, r.Proc)
		if r.FinishMin < r.StartMin-timeEps || r.FinishMax < r.StartMax-timeEps {
			return fmt.Errorf("sched: task %d copy %d finishes before it starts", t, r.Copy)
		}
		if diff := r.FinishMin - r.StartMin - e; diff < -timeEps || diff > timeEps {
			return fmt.Errorf("sched: task %d copy %d Min window duration %g != cost %g", t, r.Copy, r.FinishMin-r.StartMin, e)
		}
		if diff := r.FinishMax - r.StartMax - e; diff < -timeEps || diff > timeEps {
			return fmt.Errorf("sched: task %d copy %d Max window duration %g != cost %g", t, r.Copy, r.FinishMax-r.StartMax, e)
		}
		if r.StartMin < -timeEps || r.StartMax < r.StartMin-timeEps {
			return fmt.Errorf("sched: task %d copy %d has invalid starts (min=%g max=%g)", t, r.Copy, r.StartMin, r.StartMax)
		}
	}
	return s.validateArrivals(t)
}

func (s *Schedule) validateArrivals(t dag.TaskID) error {
	preds := s.Graph.Preds(t)
	for predIdx, pe := range preds {
		srcReps := s.replicas[pe.To]
		if srcReps == nil {
			return fmt.Errorf("%w: predecessor %d of %d unplaced", ErrIncomplete, pe.To, t)
		}
		// Equation (3)'s "max over the ε+1 replicas" is defined over the
		// base replicas; duplicates appended later (FTBAR's Minimize-Start-
		// Time) only ever *add* optimistic arrival options and are excluded
		// from the pessimistic requirement — they may postdate the
		// successor's placement.
		baseReps := srcReps
		if len(baseReps) > s.Epsilon+1 {
			baseReps = baseReps[:s.Epsilon+1]
		}
		switch s.CommPattern {
		case PatternAll:
			for _, dr := range s.replicas[t] {
				earliest, _ := arrivalRange(srcReps, pe.Volume, s, dr.Proc)
				_, latest := arrivalRange(baseReps, pe.Volume, s, dr.Proc)
				if dr.StartMin < earliest-timeEps {
					return fmt.Errorf("%w: task %d copy %d starts at %g before earliest arrival %g from pred %d",
						ErrPrecedence, t, dr.Copy, dr.StartMin, earliest, pe.To)
				}
				if dr.StartMax < latest-timeEps {
					return fmt.Errorf("%w: task %d copy %d Max start %g before latest arrival %g from pred %d",
						ErrPrecedence, t, dr.Copy, dr.StartMax, latest, pe.To)
				}
			}
		case PatternMatched:
			used := map[int]bool{}
			for _, dr := range s.replicas[t] {
				k, err := s.MatchedSource(t, dr.Copy, predIdx)
				if err != nil {
					return err
				}
				if k < 0 || k >= len(srcReps) {
					return fmt.Errorf("%w: task %d copy %d pred %d matched to copy %d of %d",
						ErrMatching, t, dr.Copy, pe.To, k, len(srcReps))
				}
				if used[k] {
					return fmt.Errorf("%w: predecessor %d copy %d feeds two replicas of %d",
						ErrMatching, pe.To, k, t)
				}
				used[k] = true
				sr := srcReps[k]
				// Proposition 4.3: shared processors must self-match.
				if sr.Proc != dr.Proc {
					for _, other := range srcReps {
						if other.Proc == dr.Proc {
							return fmt.Errorf("%w: task %d copy %d on P%d must receive from co-located pred copy, got copy on P%d",
								ErrMatching, t, dr.Copy, dr.Proc, sr.Proc)
						}
					}
				}
				arrMin := sr.FinishMin + pe.Volume*s.Platform.Delay(sr.Proc, dr.Proc)
				arrMax := sr.FinishMax + pe.Volume*s.Platform.Delay(sr.Proc, dr.Proc)
				if dr.StartMin < arrMin-timeEps {
					return fmt.Errorf("%w: task %d copy %d starts at %g before matched arrival %g",
						ErrPrecedence, t, dr.Copy, dr.StartMin, arrMin)
				}
				if dr.StartMax < arrMax-timeEps {
					return fmt.Errorf("%w: task %d copy %d Max start %g before matched Max arrival %g",
						ErrPrecedence, t, dr.Copy, dr.StartMax, arrMax)
				}
			}
		}
	}
	return nil
}

// arrivalRange returns the earliest (min over copies, optimistic times) and
// latest (max over copies, pessimistic times) arrival of pred data on proc.
func arrivalRange(srcReps []Replica, volume float64, s *Schedule, proc platform.ProcID) (earliest, latest float64) {
	earliest = math.Inf(1)
	for _, sr := range srcReps {
		d := s.Platform.Delay(sr.Proc, proc)
		if a := sr.FinishMin + volume*d; a < earliest {
			earliest = a
		}
		if a := sr.FinishMax + volume*d; a > latest {
			latest = a
		}
	}
	return earliest, latest
}

func (s *Schedule) validateTimelines() error {
	type span struct {
		start, finish float64
		task          dag.TaskID
		copy          int
	}
	m := s.Platform.NumProcs()
	minSpans := make([][]span, m)
	maxSpans := make([][]span, m)
	for t := range s.replicas {
		for _, r := range s.replicas[t] {
			minSpans[r.Proc] = append(minSpans[r.Proc], span{r.StartMin, r.FinishMin, dag.TaskID(t), r.Copy})
			maxSpans[r.Proc] = append(maxSpans[r.Proc], span{r.StartMax, r.FinishMax, dag.TaskID(t), r.Copy})
		}
	}
	check := func(spans [][]span, kind string) error {
		for p := range spans {
			ss := spans[p]
			sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
			for i := 1; i < len(ss); i++ {
				if ss[i].start < ss[i-1].finish-timeEps {
					return fmt.Errorf("%w: P%d %s window: task %d copy %d [%g,%g) overlaps task %d copy %d [%g,%g)",
						ErrOverlap, p, kind,
						ss[i-1].task, ss[i-1].copy, ss[i-1].start, ss[i-1].finish,
						ss[i].task, ss[i].copy, ss[i].start, ss[i].finish)
				}
			}
		}
		return nil
	}
	if err := check(minSpans, "Min"); err != nil {
		return err
	}
	return check(maxSpans, "Max")
}
