package sched

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// GanttOptions tunes the ASCII Gantt rendering.
type GanttOptions struct {
	// Width is the number of character columns representing the horizontal
	// time axis (default 100).
	Width int
	// Pessimistic renders the Max (equation 3) windows instead of the Min
	// (equation 1) windows.
	Pessimistic bool
}

// WriteGantt renders the schedule as an ASCII Gantt chart, one row per
// processor, each replica drawn as a span labeled with its task ID:
//
//	P0 |000000...111111      |
//	P1 |000000       22222222|
//
// Idle time is blank. Spans shorter than one column render as a single
// label character, so very fine schedules remain readable if approximate.
func (s *Schedule) WriteGantt(w io.Writer, opt GanttOptions) error {
	width := opt.Width
	if width <= 0 {
		width = 100
	}
	horizon := s.LowerBound()
	if opt.Pessimistic {
		horizon = s.UpperBound()
	}
	// Schedules can exceed the exit-task bound on non-exit processors; use
	// the true maximum finish for scaling.
	for _, reps := range s.replicas {
		for _, r := range reps {
			f := r.FinishMin
			if opt.Pessimistic {
				f = r.FinishMax
			}
			if f > horizon {
				horizon = f
			}
		}
	}
	if math.IsInf(horizon, 1) || horizon <= 0 {
		return fmt.Errorf("sched: cannot render an incomplete schedule")
	}
	scale := float64(width) / horizon

	timelines := s.ProcTimelines()
	if _, err := fmt.Fprintf(w, "%s schedule, ε=%d, horizon %.4g (1 column = %.4g)\n",
		s.Algorithm, s.Epsilon, horizon, horizon/float64(width)); err != nil {
		return err
	}
	for p, line := range timelines {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		for _, r := range line {
			start, finish := r.StartMin, r.FinishMin
			if opt.Pessimistic {
				start, finish = r.StartMax, r.FinishMax
			}
			lo := int(start * scale)
			hi := int(finish * scale)
			if hi >= width {
				hi = width - 1
			}
			if lo > hi {
				lo = hi
			}
			label := taskLabel(int(r.Task))
			for i := lo; i <= hi; i++ {
				row[i] = label
			}
		}
		if _, err := fmt.Fprintf(w, "P%-3d |%s|\n", p, string(row)); err != nil {
			return err
		}
	}
	return nil
}

// taskLabel maps a task ID to a printable character, cycling through
// digits, lower- and upper-case letters.
func taskLabel(t int) byte {
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	return alphabet[t%len(alphabet)]
}

// Summary returns a one-paragraph textual description of the schedule.
func (s *Schedule) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d tasks ×%d replicas on %d processors (ε=%d, %s pattern); ",
		s.Algorithm, s.Graph.NumTasks(), s.Epsilon+1, s.Platform.NumProcs(), s.Epsilon, s.CommPattern)
	fmt.Fprintf(&b, "latency [%.4g, %.4g], %d inter-processor messages",
		s.LowerBound(), s.UpperBound(), s.MessageCount())
	return b.String()
}
