package sched

import (
	"math"

	"ftsched/internal/dag"
)

// Metrics aggregates quantitative properties of a schedule beyond the two
// latency bounds — the numbers a capacity planner or a paper reviewer asks
// for.
type Metrics struct {
	// LowerBound and UpperBound restate equations (2) and (4).
	LowerBound, UpperBound float64
	// TotalWork is the summed optimistic execution time over all replicas.
	TotalWork float64
	// Replicas counts all placed replicas (v·(ε+1) plus FTBAR duplicates).
	Replicas int
	// Messages counts inter-processor messages (MessageCount).
	Messages int
	// CommVolume is the total data volume crossing processor boundaries.
	CommVolume float64
	// Horizon is the latest optimistic finish over all replicas — the point
	// at which every processor is done. It can exceed LowerBound, which
	// only tracks the *earliest* copy of each exit task.
	Horizon float64
	// MeanUtilization is the average over processors of busy time divided
	// by the horizon; MinUtilization/MaxUtilization are the extremes.
	MeanUtilization, MinUtilization, MaxUtilization float64
	// ReplicationFactor is total work divided by the work of one copy of
	// each task on its fastest assigned processor — the raw cost of the
	// active replication scheme.
	ReplicationFactor float64
}

// ComputeMetrics derives the metrics of a complete schedule.
func (s *Schedule) ComputeMetrics() (*Metrics, error) {
	if !s.Complete() {
		return nil, ErrIncomplete
	}
	m := &Metrics{
		LowerBound: s.LowerBound(),
		UpperBound: s.UpperBound(),
	}
	nProcs := s.Platform.NumProcs()
	busy := make([]float64, nProcs)
	primaryWork := 0.0
	for t := range s.replicas {
		best := math.Inf(1)
		for _, r := range s.replicas[t] {
			d := r.FinishMin - r.StartMin
			m.TotalWork += d
			busy[r.Proc] += d
			m.Replicas++
			if d < best {
				best = d
			}
			if r.FinishMin > m.Horizon {
				m.Horizon = r.FinishMin
			}
		}
		primaryWork += best
	}
	m.Messages = s.MessageCount()
	// Communication volume across processor boundaries, per the schedule's
	// pattern.
	for t := 0; t < s.Graph.NumTasks(); t++ {
		tid := dag.TaskID(t)
		for predIdx, pe := range s.Graph.Preds(tid) {
			srcReps := s.replicas[pe.To]
			for c, dr := range s.replicas[tid] {
				switch s.CommPattern {
				case PatternMatched:
					k, err := s.MatchedSource(tid, c, predIdx)
					if err != nil {
						return nil, err
					}
					if srcReps[k].Proc != dr.Proc {
						m.CommVolume += pe.Volume
					}
				default:
					for _, sr := range srcReps {
						if sr.Proc != dr.Proc {
							m.CommVolume += pe.Volume
						}
					}
				}
			}
		}
	}
	if m.Horizon > 0 && !math.IsInf(m.Horizon, 1) {
		m.MinUtilization = math.Inf(1)
		sum := 0.0
		for _, b := range busy {
			u := b / m.Horizon
			sum += u
			if u < m.MinUtilization {
				m.MinUtilization = u
			}
			if u > m.MaxUtilization {
				m.MaxUtilization = u
			}
		}
		m.MeanUtilization = sum / float64(nProcs)
	}
	if primaryWork > 0 {
		m.ReplicationFactor = m.TotalWork / primaryWork
	}
	return m, nil
}
