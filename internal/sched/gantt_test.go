package sched

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func ganttFixture(t *testing.T) *Schedule {
	t.Helper()
	g, p, cm := fixture(t)
	s, err := New(g, p, cm, 1, PatternAll, "hand")
	if err != nil {
		t.Fatal(err)
	}
	placePair(t, s)
	return s
}

func TestWriteGantt(t *testing.T) {
	s := ganttFixture(t)
	var buf bytes.Buffer
	if err := s.WriteGantt(&buf, GanttOptions{Width: 40}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one row per processor.
	if len(lines) != 1+3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "hand schedule") {
		t.Errorf("header = %q", lines[0])
	}
	// P0 and P1 run task 0 then task 1; P2 is idle.
	if !strings.Contains(lines[1], "0") || !strings.Contains(lines[1], "1") {
		t.Errorf("P0 row = %q", lines[1])
	}
	p2 := lines[3]
	if strings.ContainsAny(p2[strings.Index(p2, "|"):], "01") {
		t.Errorf("P2 should be idle: %q", p2)
	}
}

func TestWriteGanttPessimistic(t *testing.T) {
	s := ganttFixture(t)
	var opt, pes bytes.Buffer
	if err := s.WriteGantt(&opt, GanttOptions{Width: 40}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteGantt(&pes, GanttOptions{Width: 40, Pessimistic: true}); err != nil {
		t.Fatal(err)
	}
	if opt.String() == pes.String() {
		t.Error("pessimistic rendering should differ (horizon 20 vs 10)")
	}
	if !strings.Contains(pes.String(), "horizon 20") {
		t.Errorf("pessimistic header: %q", strings.SplitN(pes.String(), "\n", 2)[0])
	}
}

func TestWriteGanttIncomplete(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "x")
	var buf bytes.Buffer
	if err := s.WriteGantt(&buf, GanttOptions{}); err == nil {
		t.Error("incomplete schedule rendered")
	}
}

func TestSummary(t *testing.T) {
	s := ganttFixture(t)
	sum := s.Summary()
	for _, want := range []string{"hand", "2 tasks", "×2 replicas", "3 processors", "all pattern"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary %q missing %q", sum, want)
		}
	}
}

func TestComputeMetrics(t *testing.T) {
	s := ganttFixture(t)
	m, err := s.ComputeMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.LowerBound != 10 || m.UpperBound != 20 {
		t.Errorf("bounds %g/%g", m.LowerBound, m.UpperBound)
	}
	// Work: task 0 runs 4+4, task 1 runs 6+6.
	if m.TotalWork != 20 {
		t.Errorf("TotalWork = %g, want 20", m.TotalWork)
	}
	if m.Replicas != 4 {
		t.Errorf("Replicas = %d", m.Replicas)
	}
	if m.Messages != 2 {
		t.Errorf("Messages = %d", m.Messages)
	}
	// Each of the 2 cross messages carries volume 10.
	if m.CommVolume != 20 {
		t.Errorf("CommVolume = %g, want 20", m.CommVolume)
	}
	// P0 and P1 busy 10/10 each; P2 idle.
	if math.Abs(m.MeanUtilization-2.0/3) > 1e-9 {
		t.Errorf("MeanUtilization = %g, want 2/3", m.MeanUtilization)
	}
	if m.MinUtilization != 0 || m.MaxUtilization != 1 {
		t.Errorf("utilization extremes %g/%g", m.MinUtilization, m.MaxUtilization)
	}
	// Each task duplicated exactly twice at equal cost.
	if m.ReplicationFactor != 2 {
		t.Errorf("ReplicationFactor = %g, want 2", m.ReplicationFactor)
	}
}

func TestComputeMetricsIncomplete(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "x")
	if _, err := s.ComputeMetrics(); err == nil {
		t.Error("metrics of incomplete schedule computed")
	}
}
