package sched

import (
	"errors"
	"math"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

func fixture(t *testing.T) (*dag.Graph, *platform.Platform, *platform.CostModel) {
	t.Helper()
	g := dag.NewWithTasks("pair", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{4, 4, 4}, {6, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	return g, p, cm
}

func TestNewSchedule(t *testing.T) {
	g, p, cm := fixture(t)
	if _, err := New(g, p, cm, -1, PatternAll, "x"); !errors.Is(err, ErrEpsilon) {
		t.Errorf("negative ε: %v", err)
	}
	if _, err := New(g, p, cm, 3, PatternAll, "x"); !errors.Is(err, ErrEpsilon) {
		t.Errorf("ε=m: %v", err)
	}
	s, err := New(g, p, cm, 1, PatternAll, "FTSA")
	if err != nil {
		t.Fatal(err)
	}
	if s.Complete() {
		t.Error("empty schedule reported complete")
	}
	if lb := s.LowerBound(); !math.IsInf(lb, 1) {
		t.Errorf("incomplete LowerBound = %g, want +Inf", lb)
	}
}

// placePair builds a valid hand-crafted ε=1 schedule of the fixture.
func placePair(t *testing.T, s *Schedule) {
	t.Helper()
	if err := s.Place(0, []Replica{
		{Task: 0, Copy: 0, Proc: 0, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
		{Task: 0, Copy: 1, Proc: 1, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
	}); err != nil {
		t.Fatal(err)
	}
	// Task 1 on P0 and P1: optimistic start 4 (local copy), pessimistic
	// start 14 (remote copy: 4 + 10·1).
	if err := s.Place(1, []Replica{
		{Task: 1, Copy: 0, Proc: 0, StartMin: 4, FinishMin: 10, StartMax: 14, FinishMax: 20},
		{Task: 1, Copy: 1, Proc: 1, StartMin: 4, FinishMin: 10, StartMax: 14, FinishMax: 20},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidateAccepts(t *testing.T) {
	g, p, cm := fixture(t)
	s, err := New(g, p, cm, 1, PatternAll, "hand")
	if err != nil {
		t.Fatal(err)
	}
	placePair(t, s)
	if !s.Complete() {
		t.Error("complete schedule reported incomplete")
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if lb := s.LowerBound(); lb != 10 {
		t.Errorf("LowerBound = %g", lb)
	}
	if ub := s.UpperBound(); ub != 20 {
		t.Errorf("UpperBound = %g", ub)
	}
	if mc := s.MessageCount(); mc != 2 {
		// P0->P1 and P1->P0 are the only inter-processor messages.
		t.Errorf("MessageCount = %d, want 2", mc)
	}
	tl := s.ProcTimelines()
	if len(tl[0]) != 2 || len(tl[1]) != 2 || len(tl[2]) != 0 {
		t.Errorf("timelines %v", tl)
	}
	if tl[0][0].Task != 0 || tl[0][1].Task != 1 {
		t.Errorf("P0 order wrong: %v", tl[0])
	}
}

func TestPlaceErrors(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "x")
	if err := s.Place(5, nil); err == nil {
		t.Error("unknown task accepted")
	}
	if err := s.Place(0, nil); !errors.Is(err, ErrIncomplete) {
		t.Errorf("empty replicas: %v", err)
	}
	if err := s.Place(0, []Replica{{Task: 1, Copy: 0, Proc: 0}}); err == nil {
		t.Error("mislabeled replica accepted")
	}
	if err := s.Place(0, []Replica{{Task: 0, Copy: 0, Proc: 9}}); err == nil {
		t.Error("invalid processor accepted")
	}
	if err := s.Place(0, []Replica{{Task: 0, Copy: 0, Proc: 0, FinishMin: 4, FinishMax: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(0, []Replica{{Task: 0, Copy: 0, Proc: 1, FinishMin: 4, FinishMax: 4}}); err == nil {
		t.Error("double placement accepted")
	}
}

func TestValidateCatchesSharedProcessor(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "bad")
	// Both copies of task 0 on P0 — violates Proposition 4.1. Offset the
	// second copy to keep the timeline overlap check out of the way.
	if err := s.Place(0, []Replica{
		{Task: 0, Copy: 0, Proc: 0, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
		{Task: 0, Copy: 1, Proc: 0, StartMin: 4, FinishMin: 8, StartMax: 4, FinishMax: 8},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(1, []Replica{
		{Task: 1, Copy: 0, Proc: 1, StartMin: 14, FinishMin: 20, StartMax: 18, FinishMax: 24},
		{Task: 1, Copy: 1, Proc: 2, StartMin: 14, FinishMin: 20, StartMax: 18, FinishMax: 24},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); !errors.Is(err, ErrSpace) {
		t.Errorf("want ErrSpace, got %v", err)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "bad")
	if err := s.Place(0, []Replica{
		{Task: 0, Copy: 0, Proc: 0, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
		{Task: 0, Copy: 1, Proc: 1, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
	}); err != nil {
		t.Fatal(err)
	}
	// Task 1 overlaps task 0 on P0 in the Min window.
	if err := s.Place(1, []Replica{
		{Task: 1, Copy: 0, Proc: 0, StartMin: 2, FinishMin: 8, StartMax: 14, FinishMax: 20},
		{Task: 1, Copy: 1, Proc: 1, StartMin: 4, FinishMin: 10, StartMax: 14, FinishMax: 20},
	}); err != nil {
		t.Fatal(err)
	}
	err := s.Validate()
	if !errors.Is(err, ErrOverlap) && !errors.Is(err, ErrPrecedence) {
		t.Errorf("want overlap/precedence error, got %v", err)
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 0, PatternAll, "bad")
	if err := s.Place(0, []Replica{
		{Task: 0, Copy: 0, Proc: 0, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4},
	}); err != nil {
		t.Fatal(err)
	}
	// Task 1 on P1 starting at 5 < arrival 4 + 10 = 14.
	if err := s.Place(1, []Replica{
		{Task: 1, Copy: 0, Proc: 1, StartMin: 5, FinishMin: 11, StartMax: 5, FinishMax: 11},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); !errors.Is(err, ErrPrecedence) {
		t.Errorf("want ErrPrecedence, got %v", err)
	}
}

func TestValidateMatchedPattern(t *testing.T) {
	g, p, cm := fixture(t)
	s, err := New(g, p, cm, 1, PatternMatched, "mc")
	if err != nil {
		t.Fatal(err)
	}
	placePair(t, s)
	// Internal matching: copy 0 of task 1 (P0) receives from copy 0 of
	// task 0 (P0); copy 1 (P1) from copy 1 (P1). Pessimistic starts may be
	// recomputed accordingly, but placePair's looser windows stay valid.
	if err := s.SetMatchedSources(1, [][]int{{0}, {1}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMatchedSources(0, [][]int{{}, {}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if mc := s.MessageCount(); mc != 0 {
		t.Errorf("MessageCount = %d, want 0 (both transfers internal)", mc)
	}
	k, err := s.MatchedSource(1, 0, 0)
	if err != nil || k != 0 {
		t.Errorf("MatchedSource = %d, %v", k, err)
	}
}

func TestValidateMatchedRejectsCrossedInternal(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternMatched, "mc")
	placePair(t, s)
	// Crossed matching P0->P1 / P1->P0 violates Proposition 4.3: the
	// co-located source must self-match.
	if err := s.SetMatchedSources(1, [][]int{{1}, {0}}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMatchedSources(0, [][]int{{}, {}}); err != nil {
		t.Fatal(err)
	}
	err := s.Validate()
	if !errors.Is(err, ErrMatching) && !errors.Is(err, ErrPrecedence) {
		t.Errorf("want matching/precedence error, got %v", err)
	}
}

func TestAddDuplicate(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 0, PatternAll, "dup")
	if err := s.AddDuplicate(0, Replica{Task: 0, Proc: 1}); !errors.Is(err, ErrNotScheduled) {
		t.Errorf("duplicate before placement: %v", err)
	}
	if err := s.Place(0, []Replica{{Task: 0, Copy: 0, Proc: 0, FinishMin: 4, FinishMax: 4}}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDuplicate(0, Replica{Task: 0, Proc: 1, StartMin: 0, FinishMin: 4, StartMax: 0, FinishMax: 4}); err != nil {
		t.Fatal(err)
	}
	reps := s.Replicas(0)
	if len(reps) != 2 || reps[1].Copy != 1 {
		t.Errorf("replicas after duplicate: %+v", reps)
	}
	if err := s.AddDuplicate(0, Replica{Task: 1, Proc: 1}); err == nil {
		t.Error("mislabeled duplicate accepted")
	}
}

func TestDeadlines(t *testing.T) {
	// Chain 0 -> 1 -> 2 with volume 10, uniform delays 1, costs 5 on both
	// of 2 processors, ε=1: d(2)=L; d(1)=L−5−10; d(0)=L−2·15.
	g := dag.NewWithTasks("chain3", 3)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	p, err := platform.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {5, 5}, {5, 5}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deadlines(g, cm, p, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{70, 85, 100}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-9 {
			t.Errorf("d(%d) = %g, want %g", i, d[i], want[i])
		}
	}
	// Deadlines must be non-decreasing along every edge.
	for _, e := range g.Edges() {
		if d[e.Src] > d[e.Dst] {
			t.Errorf("deadline inversion on edge %v", e)
		}
	}
}

func TestArrivalWindow(t *testing.T) {
	p, err := platform.New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	reps := []Replica{
		{Task: 0, Copy: 0, Proc: 0, FinishMin: 10, FinishMax: 12},
		{Task: 0, Copy: 1, Proc: 1, FinishMin: 11, FinishMax: 15},
	}
	// On P0: local copy arrives at 10 (min) / remote pessimistic 15+10·2=35.
	early, late := ArrivalWindow(p, reps, 5, 0)
	if early != 10 {
		t.Errorf("earliest = %g, want 10", early)
	}
	if late != 25 {
		// max(12 + 0, 15 + 5*2) = 25.
		t.Errorf("latest = %g, want 25", late)
	}
	// On P2 both are remote: earliest = min(10,11)+5·2 = 20.
	early, _ = ArrivalWindow(p, reps, 5, 2)
	if early != 20 {
		t.Errorf("earliest on P2 = %g, want 20", early)
	}
}

func TestAvgBottomLevels(t *testing.T) {
	g, p, cm := fixture(t)
	bl, err := AvgBottomLevels(g, cm, p)
	if err != nil {
		t.Fatal(err)
	}
	// Mean delay is 1 (uniform), mean costs 4 and 6: bl(1)=6; bl(0)=4+10+6=20.
	if bl[1] != 6 || bl[0] != 20 {
		t.Errorf("bl = %v", bl)
	}
}

func TestPatternString(t *testing.T) {
	if PatternAll.String() != "all" || PatternMatched.String() != "matched" {
		t.Error("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern empty")
	}
}

func TestMappingOrderIsCopied(t *testing.T) {
	g, p, cm := fixture(t)
	s, _ := New(g, p, cm, 1, PatternAll, "x")
	placePair(t, s)
	mo := s.MappingOrder()
	mo[0] = 99
	if s.MappingOrder()[0] == 99 {
		t.Error("MappingOrder leaked internal slice")
	}
}
