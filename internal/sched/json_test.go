package sched_test

// Persistence tests live in an external test package because they need the
// schedulers (internal/core, internal/ftbar), which import sched.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/ftbar"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

func persistInstance(t *testing.T) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func roundTrip(t *testing.T, inst *workload.Instance, s *sched.Schedule) *sched.Schedule {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := sched.ReadSchedule(&buf, inst.Graph, inst.Platform, inst.Costs)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func assertSame(t *testing.T, a, b *sched.Schedule) {
	t.Helper()
	if a.LowerBound() != b.LowerBound() || a.UpperBound() != b.UpperBound() {
		t.Fatalf("bounds differ: (%g,%g) vs (%g,%g)", a.LowerBound(), a.UpperBound(), b.LowerBound(), b.UpperBound())
	}
	if a.MessageCount() != b.MessageCount() {
		t.Fatalf("message counts differ: %d vs %d", a.MessageCount(), b.MessageCount())
	}
	for tsk := 0; tsk < a.Graph.NumTasks(); tsk++ {
		ra, rb := a.Replicas(dag.TaskID(tsk)), b.Replicas(dag.TaskID(tsk))
		if len(ra) != len(rb) {
			t.Fatalf("task %d replica counts differ", tsk)
		}
		for c := range ra {
			if ra[c] != rb[c] {
				t.Fatalf("task %d copy %d differs: %+v vs %+v", tsk, c, ra[c], rb[c])
			}
		}
	}
}

func TestScheduleRoundTripFTSA(t *testing.T) {
	inst := persistInstance(t)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, inst, s)
	assertSame(t, s, back)
	// Simulation of the reloaded schedule matches the original.
	sc, err := sim.CrashAtZero(8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := sim.Run(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sim.Run(back, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Latency != rb.Latency {
		t.Errorf("simulated latencies differ: %g vs %g", ra.Latency, rb.Latency)
	}
}

func TestScheduleRoundTripMCFTSA(t *testing.T) {
	inst := persistInstance(t)
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: 2}})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, inst, s)
	assertSame(t, s, back)
	// Matched sources must survive persistence.
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		tid := dag.TaskID(tsk)
		for predIdx := range inst.Graph.Preds(tid) {
			for c := 0; c < 3; c++ {
				ka, err := s.MatchedSource(tid, c, predIdx)
				if err != nil {
					t.Fatal(err)
				}
				kb, err := back.MatchedSource(tid, c, predIdx)
				if err != nil {
					t.Fatal(err)
				}
				if ka != kb {
					t.Fatalf("matched source differs at task %d copy %d pred %d", tsk, c, predIdx)
				}
			}
		}
	}
}

func TestScheduleRoundTripFTBARWithDuplicates(t *testing.T) {
	inst := persistInstance(t)
	s, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: 2})
	if err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, inst, s)
	assertSame(t, s, back)
}

func TestReadScheduleRejectsWrongInstance(t *testing.T) {
	inst := persistInstance(t)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Load against a different instance: validation must fail.
	rng := rand.New(rand.NewSource(99))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 8
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	other, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if other.Graph.NumTasks() == inst.Graph.NumTasks() {
		// Same task count: loading should still fail validation (different
		// costs/delays make the recorded windows inconsistent).
		if _, err := sched.ReadSchedule(&buf, other.Graph, other.Platform, other.Costs); err == nil {
			t.Error("schedule accepted against a mismatched instance")
		}
	} else if _, err := sched.ReadSchedule(&buf, other.Graph, other.Platform, other.Costs); err == nil {
		t.Error("schedule accepted against a graph of different size")
	}
}

func TestReadScheduleRejectsGarbage(t *testing.T) {
	inst := persistInstance(t)
	if _, err := sched.ReadSchedule(strings.NewReader("not json"), inst.Graph, inst.Platform, inst.Costs); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := sched.ReadSchedule(strings.NewReader(`{"algorithm":"x","epsilon":1,"pattern":0,"mapping_order":[],"replicas":[]}`),
		inst.Graph, inst.Platform, inst.Costs); err == nil {
		t.Error("empty schedule accepted")
	}
}
