package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a 2-D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the SVG dimensions in pixels; zero selects
	// 800×500.
	Width, Height int
	Series        []Series
}

// Chart construction errors.
var (
	ErrEmpty    = errors.New("plot: chart has no data")
	ErrBadShape = errors.New("plot: series X and Y lengths differ")
)

// palette cycles through visually distinct stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// markers cycles through point-marker shapes.
var markers = []string{"circle", "square", "diamond", "triangle", "cross"}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
	legendRowH   = 16
)

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("%w: %d vs %d", ErrBadShape, len(x), len(y))
	}
	c.Series = append(c.Series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

// bounds returns the data extent over all series.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
			ok = true
		}
	}
	return xmin, xmax, ymin, ymax, ok
}

// niceTicks returns ~n human-friendly tick positions covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	step := mag
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if mag*m >= rawStep {
			step = mag * m
			break
		}
	}
	start := math.Ceil(lo/step) * step
	var ticks []float64
	for v := start; v <= hi+step*1e-9; v += step {
		ticks = append(ticks, v)
	}
	return ticks
}

// WriteSVG renders the chart.
func (c *Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return ErrEmpty
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 800
	}
	if height <= 0 {
		height = 500
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		return ErrEmpty
	}
	// Pad degenerate extents so scaling stays finite.
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Always include zero on Y when close; the paper's overhead panels
	// cross it.
	if ymin > 0 && ymin < (ymax-ymin)*0.3 {
		ymin = 0
	}

	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)
	px := func(x float64) float64 { return float64(marginLeft) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(marginTop) + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)

	// Ticks and grid.
	for _, t := range niceTicks(xmin, xmax, 8) {
		x := px(t)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, height-marginBottom, x, height-marginBottom+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			x, height-marginBottom+18, formatTick(t))
	}
	for _, t := range niceTicks(ymin, ymax, 8) {
		y := py(t)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, y, width-marginRight, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, y+4, formatTick(t))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		float64(marginLeft)+plotW/2, height-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		float64(marginTop)+plotH/2, float64(marginTop)+plotH/2, escape(c.YLabel))

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		for j := range s.X {
			writeMarker(&b, markers[i%len(markers)], px(s.X[j]), py(s.Y[j]), color)
		}
	}

	// Legend.
	lx := marginLeft + 10
	ly := marginTop + 6
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		y := ly + i*legendRowH
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1.5"/>`+"\n",
			lx, y, lx+22, y, color)
		writeMarker(&b, markers[i%len(markers)], float64(lx+11), float64(y), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			lx+28, y+4, escape(s.Name))
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeMarker(b *strings.Builder, kind string, x, y float64, color string) {
	const r = 2.8
	switch kind {
	case "circle":
		fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, color)
	case "square":
		fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x-r, y-r, 2*r, 2*r, color)
	case "diamond":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y, x, y+r+1, x-r-1, y, color)
	case "triangle":
		fmt.Fprintf(b, `<polygon points="%.1f,%.1f %.1f,%.1f %.1f,%.1f" fill="%s"/>`+"\n",
			x, y-r-1, x+r+1, y+r, x-r-1, y+r, color)
	case "cross":
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
			x-r, y-r, x+r, y+r, color)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
			x-r, y+r, x+r, y-r, color)
	}
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
