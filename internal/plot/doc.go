// Package plot is a small, dependency-free SVG line-chart emitter used to
// render the paper's figures from the experiment harness. It supports
// multiple named series with distinct colors and markers, automatic axis
// scaling, tick labels and a legend — enough to regenerate every panel of
// Figures 1-4, or any campaign slice projected through expt.CampaignFigure,
// as a standalone .svg file.
package plot
