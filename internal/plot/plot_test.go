package plot

import (
	"bytes"
	"encoding/xml"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *Chart {
	c := &Chart{Title: "t", XLabel: "x", YLabel: "y"}
	_ = c.Add("a", []float64{0, 1, 2}, []float64{1, 4, 9})
	_ = c.Add("b", []float64{0, 1, 2}, []float64{2, 3, 5})
	return c
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v", err)
		}
	}
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	for _, want := range []string{">a</text>", ">b</text>", ">t</text>", ">x</text>", ">y</text>"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	c := &Chart{}
	if err := c.WriteSVG(&buf); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty chart: %v", err)
	}
	if err := c.Add("bad", []float64{1}, []float64{1, 2}); !errors.Is(err, ErrBadShape) {
		t.Errorf("shape mismatch: %v", err)
	}
}

func TestDegenerateExtents(t *testing.T) {
	c := &Chart{Title: "flat"}
	if err := c.Add("const", []float64{1, 1, 1}, []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("degenerate chart produced non-finite coordinates")
	}
}

func TestNiceTicks(t *testing.T) {
	ticks := niceTicks(0, 10, 5)
	if len(ticks) < 3 || len(ticks) > 8 {
		t.Errorf("ticks %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not increasing: %v", ticks)
		}
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10+1e-9 {
		t.Errorf("ticks outside range: %v", ticks)
	}
	if got := niceTicks(5, 5, 4); len(got) != 1 {
		t.Errorf("degenerate ticks %v", got)
	}
}

func TestPropTicksCoverRange(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		if hi-lo < 1e-9 {
			return true
		}
		ticks := niceTicks(lo, hi, 6)
		if len(ticks) == 0 || len(ticks) > 20 {
			return false
		}
		for _, tk := range ticks {
			if tk < lo-(hi-lo)*1e-6 || tk > hi+(hi-lo)*1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Errorf("escape = %q", got)
	}
}
