package load

// The deterministic engines: a virtual clock drives pacing while the real
// in-process server still answers every request, so cache behavior, status
// codes and response bodies are genuine — only time is simulated. Requests
// execute sequentially in stream order (index 0, 1, 2, ...), which makes
// every derived quantity a pure function of (options, seed):
//
//   - The request multiset is index-addressable (see Synthesizer), so it
//     does not depend on worker count.
//   - Because execution is sequential, a repeated fingerprint is always a
//     cache hit (its predecessor has completed), so hit counts depend only
//     on the multiset, not on scheduling interleavings — the property that
//     real concurrent runs cannot give and the reason deterministic reports
//     are byte-identical across runs and worker counts.
//   - Latencies come from the CostFn, which sees the real response (a hit
//     costs less than a miss), and land in integral histograms.

// runClosedVirtual simulates Workers closed-loop workers on the virtual
// clock. Worker identity does not influence any recorded value (each
// request costs Cost(req) + Think of one worker's time, whichever worker
// runs it), so the loop only accumulates total occupied worker time; the
// report's ElapsedSeconds is that total and Throughput is requests per
// occupied-worker-second — deliberately concurrency-normalized so the
// deterministic baseline cannot drift when CI changes -workers.
func runClosedVirtual(target Target, sy *Synthesizer, opts Options, rec *recorder) (int64, error) {
	thinkNs := opts.Think.Nanoseconds()
	var busyNs int64
	for i := 0; i < opts.Requests; i++ {
		req, err := sy.Request(uint64(i))
		if err != nil {
			return 0, err
		}
		res := target.Do(req.Path, req.Body)
		svcNs := opts.Cost(req, res).Nanoseconds()
		// Closed loop: intended and actual send coincide, so corrected
		// and uncorrected latency are the same sample.
		rec.observe(epIndex(req.Endpoint), res, svcNs, svcNs)
		busyNs += svcNs + thinkNs
	}
	return busyNs, nil
}

// runOpenVirtual simulates the open loop on the virtual clock: request i is
// *intended* to leave at i/rate seconds; one of Workers senders picks it up
// when free. The corrected latency charges the wait for a free sender to
// the request (completion − intended), while the uncorrected service view
// records only completion − actual send — exactly the gap coordinated
// omission hides. A CostFn stall therefore inflates the corrected tail by
// the backlog it causes, which is what the stall-injection test pins.
func runOpenVirtual(target Target, sy *Synthesizer, opts Options, rate float64, rec *recorder) (int64, error) {
	free := make([]int64, opts.Workers) // per-sender next-free virtual ns
	nsPerReq := 1e9 / rate
	var last int64
	for i := 0; i < opts.Requests; i++ {
		intended := int64(float64(i) * nsPerReq)
		// Earliest-free sender, lowest index on ties: deterministic.
		w := 0
		for j := 1; j < len(free); j++ {
			if free[j] < free[w] {
				w = j
			}
		}
		send := intended
		if free[w] > send {
			send = free[w]
		}
		req, err := sy.Request(uint64(i))
		if err != nil {
			return 0, err
		}
		res := target.Do(req.Path, req.Body)
		svcNs := opts.Cost(req, res).Nanoseconds()
		completion := send + svcNs
		rec.observe(epIndex(req.Endpoint), res, completion-intended, svcNs)
		free[w] = completion
		if completion > last {
			last = completion
		}
	}
	return last, nil
}
