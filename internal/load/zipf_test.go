package load

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	z, err := NewZipf(64, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		seq := make([]int, 1000)
		for i := range seq {
			seq[i] = z.Sample(rng)
		}
		return seq
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverge at draw %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical 1000-draw sequence")
	}
}

func TestZipfSampleInRange(t *testing.T) {
	z, err := NewZipf(5, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		if r := z.Sample(rng); r < 0 || r >= 5 {
			t.Fatalf("draw %d: rank %d out of [0,5)", i, r)
		}
	}
	// Boundary uniforms map to valid ranks.
	if r := z.Rank(0); r != 0 {
		t.Fatalf("Rank(0) = %d, want 0", r)
	}
	if r := z.Rank(math.Nextafter(1, 0)); r > 4 {
		t.Fatalf("Rank(1-ulp) = %d, want <= 4", r)
	}
}

// TestZipfRankFrequencySlope pins the distribution shape: on a log-log
// rank-frequency plot a zipf(s) stream is a line of slope -s. A least-squares
// fit over the well-populated head must recover the exponent within
// statistical tolerance for each skew the load profiles use.
func TestZipfRankFrequencySlope(t *testing.T) {
	const (
		ranks   = 64
		samples = 200000
		headLen = 24 // head ranks have enough mass for stable counts
		tol     = 0.1
	)
	for _, s := range []float64{0.8, 1.0, 1.2} {
		z, err := NewZipf(ranks, s)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		counts := make([]int, ranks)
		for i := 0; i < samples; i++ {
			counts[z.Sample(rng)]++
		}
		// Least squares of log(count) against log(rank+1).
		var sumX, sumY, sumXX, sumXY float64
		for r := 0; r < headLen; r++ {
			if counts[r] == 0 {
				t.Fatalf("s=%g: head rank %d drew no samples", s, r)
			}
			x, y := math.Log(float64(r+1)), math.Log(float64(counts[r]))
			sumX += x
			sumY += y
			sumXX += x * x
			sumXY += x * y
		}
		n := float64(headLen)
		slope := (n*sumXY - sumX*sumY) / (n*sumXX - sumX*sumX)
		if math.Abs(slope-(-s)) > tol {
			t.Errorf("s=%g: fitted rank-frequency slope %.3f, want %.3f +/- %.1f", s, slope, -s, tol)
		}
		// Monotone head: popularity must decrease with rank.
		if counts[0] <= counts[headLen-1] {
			t.Errorf("s=%g: rank 0 drew %d <= rank %d's %d", s, counts[0], headLen-1, counts[headLen-1])
		}
	}
}

// TestZipfUniform checks the s=0 degenerate case really is unskewed.
func TestZipfUniform(t *testing.T) {
	z, err := NewZipf(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	counts := make([]int, 16)
	const samples = 160000
	for i := 0; i < samples; i++ {
		counts[z.Sample(rng)]++
	}
	want := samples / 16
	for r, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Errorf("rank %d drew %d, want %d +/- 10%%", r, c, want)
		}
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0, 1) succeeded, want error")
	}
	if _, err := NewZipf(4, -0.5); err == nil {
		t.Error("NewZipf(4, -0.5) succeeded, want error")
	}
	if _, err := NewZipf(4, math.NaN()); err == nil {
		t.Error("NewZipf(4, NaN) succeeded, want error")
	}
	if _, err := NewZipf(4, math.Inf(1)); err == nil {
		t.Error("NewZipf(4, +Inf) succeeded, want error")
	}
}
