package load

import (
	"fmt"
	"sort"
	"strings"

	"ftsched/internal/sim"
)

// EndpointWeights mixes the three POST endpoints. Weights are relative; they
// need not sum to 1.
type EndpointWeights struct {
	Schedule float64 `json:"schedule"`
	Evaluate float64 `json:"evaluate"`
	Tune     float64 `json:"tune"`
}

// Profile is a traffic shape: endpoint weights plus the per-endpoint
// parameter distributions a synthesized request draws from. Every slice is
// sampled uniformly per request (the zipf skew lives on instance choice, not
// parameters). Profiles are echoed verbatim in the report, so two reports
// are comparable only when their profiles match.
type Profile struct {
	// Name identifies the profile in reports ("mixed", "schedule", ...).
	Name string `json:"name"`
	// Weights mixes /schedule, /evaluate and /tune traffic.
	Weights EndpointWeights `json:"weights"`
	// Schedulers is the scheduler-name pool of /schedule and /evaluate
	// requests. Names registered as not fault-tolerant (heft) always carry
	// ε = 0.
	Schedulers []string `json:"schedulers"`
	// Epsilons is the ε pool of fault-tolerant requests.
	Epsilons []int `json:"epsilons"`
	// Seeds is the tie-break seed pool. A small pool concentrates the
	// request keyspace so the fingerprint cache sees repeats; a large one
	// approximates a cache-busting stream.
	Seeds []int64 `json:"seeds"`
	// EvalTrials and EvalScenarios parameterize /evaluate requests;
	// scenarios use the sim spec string form ("uniform:2", "exp:0.001").
	EvalTrials    []int    `json:"eval_trials"`
	EvalScenarios []string `json:"eval_scenarios"`
	// EvalSeeds is the eval_seed pool of /evaluate requests.
	EvalSeeds []int64 `json:"eval_seeds"`
	// TuneTrials, TuneEpsilons and TuneTarget parameterize /tune requests
	// (the ladder is fixed per profile: tune requests are the expensive
	// minority and gain nothing from extra dispersion).
	TuneTrials   int     `json:"tune_trials"`
	TuneEpsilons []int   `json:"tune_epsilons"`
	TuneTarget   float64 `json:"tune_target"`
}

// profiles holds the named presets. "mixed" is the default: mostly
// /schedule with an /evaluate minority and a thin /tune trickle, the shape
// the serving tier was built for.
var profiles = map[string]func() Profile{
	"mixed": func() Profile {
		p := baseProfile("mixed")
		p.Weights = EndpointWeights{Schedule: 0.85, Evaluate: 0.12, Tune: 0.03}
		return p
	},
	"schedule": func() Profile {
		p := baseProfile("schedule")
		p.Weights = EndpointWeights{Schedule: 1}
		return p
	},
	"evaluate": func() Profile {
		p := baseProfile("evaluate")
		p.Weights = EndpointWeights{Schedule: 0.3, Evaluate: 0.7}
		return p
	},
	"tune": func() Profile {
		p := baseProfile("tune")
		p.Weights = EndpointWeights{Schedule: 0.5, Evaluate: 0.2, Tune: 0.3}
		return p
	},
}

func baseProfile(name string) Profile {
	return Profile{
		Name:          name,
		Schedulers:    []string{"ftsa", "mcftsa", "ftbar", "heft", "ftsa-ins"},
		Epsilons:      []int{1, 2},
		Seeds:         []int64{0, 1},
		EvalTrials:    []int{50, 100},
		EvalScenarios: []string{"uniform:1", "uniform:2", "exp:0.0001"},
		EvalSeeds:     []int64{1, 2},
		TuneTrials:    40,
		TuneEpsilons:  []int{1, 2},
		TuneTarget:    0.9,
	}
}

// ProfileNames lists the preset names, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ProfileByName resolves a preset.
func ProfileByName(name string) (Profile, error) {
	build, ok := profiles[strings.ToLower(name)]
	if !ok {
		return Profile{}, fmt.Errorf("load: unknown profile %q (known: %s)",
			name, strings.Join(ProfileNames(), ", "))
	}
	return build(), nil
}

// Validate checks the profile is self-consistent before a run starts, so a
// bad profile fails fast instead of as a stream of 400s in the report.
func (p Profile) Validate() error {
	total := p.Weights.Schedule + p.Weights.Evaluate + p.Weights.Tune
	if p.Weights.Schedule < 0 || p.Weights.Evaluate < 0 || p.Weights.Tune < 0 || total <= 0 {
		return fmt.Errorf("load: profile %q: endpoint weights must be >= 0 with a positive sum", p.Name)
	}
	if p.Weights.Schedule+p.Weights.Evaluate > 0 {
		if len(p.Schedulers) == 0 {
			return fmt.Errorf("load: profile %q: needs at least one scheduler", p.Name)
		}
		if len(p.Epsilons) == 0 || len(p.Seeds) == 0 {
			return fmt.Errorf("load: profile %q: needs non-empty epsilon and seed pools", p.Name)
		}
	}
	if p.Weights.Evaluate > 0 {
		if len(p.EvalTrials) == 0 || len(p.EvalScenarios) == 0 || len(p.EvalSeeds) == 0 {
			return fmt.Errorf("load: profile %q: evaluate traffic needs trial, scenario and seed pools", p.Name)
		}
		for _, s := range p.EvalScenarios {
			if _, err := sim.ParseScenarioSpec(s); err != nil {
				return fmt.Errorf("load: profile %q: %w", p.Name, err)
			}
		}
	}
	if p.Weights.Tune > 0 {
		if p.TuneTrials < 1 || len(p.TuneEpsilons) == 0 {
			return fmt.Errorf("load: profile %q: tune traffic needs trials >= 1 and an epsilon ladder", p.Name)
		}
		if p.TuneTarget <= 0 || p.TuneTarget > 1 {
			return fmt.Errorf("load: profile %q: tune target must be in (0, 1], got %g", p.Name, p.TuneTarget)
		}
	}
	return nil
}
