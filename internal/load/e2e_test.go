package load

import (
	"encoding/json"
	"testing"

	"ftsched/internal/service"
)

// e2eOpts is the shared smoke configuration: small corpus, enough requests
// to hit all three endpoints of the mixed profile and to re-visit cached
// fingerprints.
func e2eOpts() Options {
	return Options{
		Mode:          "closed",
		Deterministic: true,
		Seed:          1,
		Requests:      150,
		Corpus:        CorpusSpec{Size: 4, TasksMin: 12, TasksMax: 24},
	}
}

// newTestService builds a fresh in-process server. Every run gets its own:
// the response cache is stateful, and a shared server would turn the second
// run's misses into hits.
func newTestService(t *testing.T) *service.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, Queue: 8, CacheEntries: 1024})
	t.Cleanup(svc.Close)
	return svc
}

// TestE2EDeterministicByteIdentical is the end-to-end acceptance property:
// a fixed-seed deterministic closed-loop run against the real in-process
// server yields byte-identical reports across repeated runs and across
// worker counts.
func TestE2EDeterministicByteIdentical(t *testing.T) {
	marshal := func(workers int) string {
		opts := e2eOpts()
		opts.Workers = workers
		rep, err := Run(HandlerTarget{Handler: newTestService(t)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	base := marshal(1)
	if again := marshal(1); again != base {
		t.Fatalf("two identical runs differ:\n--- first ---\n%s\n--- second ---\n%s", base, again)
	}
	for _, w := range []int{2, 8} {
		if got := marshal(w); got != base {
			t.Fatalf("workers=%d report differs from workers=1:\n--- base ---\n%s\n--- got ---\n%s", w, base, got)
		}
	}
}

// serverCacheStats reads the server's own cache counters through the same
// Target the load run used.
func serverCacheStats(t *testing.T, tgt Target) (hits, misses uint64) {
	t.Helper()
	res := tgt.Do("/stats", nil)
	if res.Err != nil || res.Status != 200 {
		t.Fatalf("GET /stats: status=%d err=%v", res.Status, res.Err)
	}
	var st struct {
		CacheHits   uint64 `json:"cache_hits"`
		CacheMisses uint64 `json:"cache_misses"`
	}
	if err := json.Unmarshal(res.Body, &st); err != nil {
		t.Fatalf("parsing /stats: %v", err)
	}
	return st.CacheHits, st.CacheMisses
}

// TestE2ECacheHitConservation cross-checks the two independent observers:
// the client-side report counts hits by the response header, the server's
// /stats counts them at the cache itself. Over one run their deltas must
// agree exactly — a disagreement means dropped or double-counted responses.
func TestE2ECacheHitConservation(t *testing.T) {
	tgt := HandlerTarget{Handler: newTestService(t)}
	hits0, misses0 := serverCacheStats(t, tgt)
	if hits0 != 0 || misses0 != 0 {
		t.Fatalf("fresh server reports hits=%d misses=%d, want 0/0", hits0, misses0)
	}
	rep, err := Run(tgt, e2eOpts())
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := serverCacheStats(t, tgt)
	if rep.Total.CacheHits != hits1-hits0 {
		t.Fatalf("report counts %d cache hits, server counts %d", rep.Total.CacheHits, hits1-hits0)
	}
	if rep.Total.CacheMisses != misses1-misses0 {
		t.Fatalf("report counts %d cache misses, server counts %d", rep.Total.CacheMisses, misses1-misses0)
	}
	if rep.Total.CacheHits == 0 {
		t.Fatal("the zipf-skewed smoke run should revisit fingerprints; 0 hits means the cache is not engaged")
	}
	if rep.Total.OK != rep.Requests {
		t.Fatalf("OK = %d of %d requests", rep.Total.OK, rep.Requests)
	}
	// Every served response is a hit or a miss; errors carry no header.
	if rep.Total.CacheHits+rep.Total.CacheMisses != rep.Total.OK {
		t.Fatalf("hits %d + misses %d != ok %d", rep.Total.CacheHits, rep.Total.CacheMisses, rep.Total.OK)
	}
}

// TestE2EWarmupPrimesCache pins the warmup contract: replaying the full
// request stream unrecorded beforehand turns every measured request into a
// cache hit, and the warmup requests themselves stay out of the report.
func TestE2EWarmupPrimesCache(t *testing.T) {
	opts := e2eOpts()
	opts.Warmup = opts.Requests
	rep, err := Run(HandlerTarget{Handler: newTestService(t)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != uint64(opts.Requests) {
		t.Fatalf("Requests = %d, want %d (warmup must not be recorded)", rep.Requests, opts.Requests)
	}
	if rep.Total.CacheMisses != 0 {
		t.Fatalf("%d cache misses after a full-stream warmup, want 0", rep.Total.CacheMisses)
	}
	if rep.Warmup != opts.Requests {
		t.Fatalf("report echoes warmup %d, want %d", rep.Warmup, opts.Requests)
	}
}

// TestE2ERealClosedLoop exercises the wall-clock concurrent path — worker
// goroutines, shared index counter, per-worker recorders — and is the test
// the CI race job leans on for internal/load.
func TestE2ERealClosedLoop(t *testing.T) {
	opts := e2eOpts()
	opts.Deterministic = false
	opts.Workers = 8
	opts.Requests = 80
	rep, err := Run(HandlerTarget{Handler: newTestService(t)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 80 {
		t.Fatalf("Requests = %d, want 80", rep.Requests)
	}
	accounted := rep.Total.OK + rep.Total.Rejected + rep.Total.ClientErrors +
		rep.Total.ServerErrors + rep.Total.TransportErrors
	if accounted != rep.Requests {
		t.Fatalf("outcome counters sum to %d of %d requests", accounted, rep.Requests)
	}
	if rep.Total.Rejected+rep.Total.ServerErrors+rep.Total.TransportErrors > 0 {
		t.Fatalf("closed loop with %d workers against queue 8 should not shed load: %+v", opts.Workers, rep.Total)
	}
	if rep.ElapsedSeconds <= 0 || rep.Throughput <= 0 {
		t.Fatalf("elapsed=%.4fs throughput=%.1f, want positive wall-clock measurements", rep.ElapsedSeconds, rep.Throughput)
	}
}

// TestE2ERealOpenLoop smoke-tests the wall-clock open loop: the paced path
// with intended-time bookkeeping, also under the race detector.
func TestE2ERealOpenLoop(t *testing.T) {
	opts := e2eOpts()
	opts.Mode = "open"
	opts.Deterministic = false
	opts.Workers = 4
	opts.Requests = 60
	opts.Rate = 500
	rep, err := Run(HandlerTarget{Handler: newTestService(t)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Service == nil {
		t.Fatal("open-loop report must carry the uncorrected service view")
	}
	if rep.Requests != 60 {
		t.Fatalf("Requests = %d, want 60", rep.Requests)
	}
	if rep.RatePerSec != 500 {
		t.Fatalf("RatePerSec = %g, want 500 echoed", rep.RatePerSec)
	}
}
