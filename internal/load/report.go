package load

import (
	"bytes"
	"encoding/json"
	"sort"

	"ftsched/internal/stats"
)

// LatencySummary condenses one histogram into report milliseconds. Values
// derive from integral histogram state by a single float division each, so
// equal sample multisets summarize byte-identically.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(h *stats.Histogram) LatencySummary {
	const msPerNs = 1e-6
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: h.Mean() * msPerNs,
		P50Ms:  float64(h.Quantile(0.5)) * msPerNs,
		P99Ms:  float64(h.Quantile(0.99)) * msPerNs,
		P999Ms: float64(h.Quantile(0.999)) * msPerNs,
		MaxMs:  float64(h.Max()) * msPerNs,
	}
}

// EndpointReport is one endpoint's share of a run.
type EndpointReport struct {
	Requests uint64 `json:"requests"`
	// OK counts 2xx responses; Rejected counts 429s (also included in
	// neither OK nor ClientErrors, mirroring the server's own split);
	// ClientErrors counts other 4xx, ServerErrors 5xx, TransportErrors
	// requests that never produced a status.
	OK              uint64 `json:"ok"`
	Rejected        uint64 `json:"rejected"`
	ClientErrors    uint64 `json:"client_errors"`
	ServerErrors    uint64 `json:"server_errors"`
	TransportErrors uint64 `json:"transport_errors"`
	// CacheHits and CacheMisses count by the X-Ftserved-Cache header;
	// HitRate is hits/(hits+misses), 0 before any served response.
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// Latency is coordinated-omission-corrected in open-loop mode: each
	// sample measures from the request's intended send time, so sender
	// backlog shows up as latency instead of vanishing. In closed-loop
	// mode intended and actual send coincide and Latency equals Service.
	Latency LatencySummary `json:"latency"`
	// Service is the uncorrected service-time view (send to completion) —
	// the number a coordinated-omission-blind instrument would report.
	// Present only in open-loop runs, where the two diverge.
	Service *LatencySummary `json:"service,omitempty"`
}

// CapacityIteration is one probe of the capacity binary search.
type CapacityIteration struct {
	RatePerSec float64 `json:"rate_per_sec"`
	P99Ms      float64 `json:"p99_ms"`
	ErrorRate  float64 `json:"error_rate"`
	OK         bool    `json:"ok"`
}

// CapacityReport is the result of -mode search.
type CapacityReport struct {
	// SLOP99Ms is the latency objective the search held p99 to.
	SLOP99Ms float64 `json:"slo_p99_ms"`
	// ErrorBudget is the tolerated fraction of rejected/errored requests.
	ErrorBudget float64 `json:"error_budget"`
	// MaxRatePerSec is the highest probed arrival rate that met the SLO
	// (0 when even the lowest probe failed).
	MaxRatePerSec float64 `json:"max_rate_per_sec"`
	// Iterations records every probe in search order.
	Iterations []CapacityIteration `json:"iterations"`
}

// Report is the machine-readable result of a load run — the artifact
// cmd/benchdiff -load compares across PRs. Everything a rerun needs is
// echoed: seed, zipf exponent, corpus spec and full profile. Deterministic
// runs exclude wall-clock state entirely, so equal configurations marshal
// byte-identically.
type Report struct {
	// Mode is "closed", "open" or "search".
	Mode string `json:"mode"`
	// Deterministic marks virtual-clock runs: latencies come from the
	// seeded synthetic cost model and Elapsed/Throughput are
	// concurrency-normalized (see ElapsedSeconds), so reports are
	// byte-identical across runs — and in closed-loop mode across worker
	// counts too (the open-loop sender cap is part of the model).
	Deterministic bool       `json:"deterministic"`
	Seed          int64      `json:"seed"`
	ZipfS         float64    `json:"zipf_s"`
	Corpus        CorpusSpec `json:"corpus"`
	Profile       Profile    `json:"profile"`
	// RatePerSec echoes the open-loop arrival rate (0 in closed mode).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// ThinkMs echoes the per-request think time.
	ThinkMs float64 `json:"think_ms,omitempty"`
	// Warmup echoes the unrecorded cache-priming request count. It shapes
	// the measured hit pattern, so it is part of comparability.
	Warmup int `json:"warmup,omitempty"`
	// Shards echoes the worker-shard count behind the target (0: a plain
	// unsharded server). A sharded deterministic closed-loop run reports the
	// same numbers as an unsharded one — that is the sharding guarantee —
	// but the deployments are different machines, so benchdiff treats the
	// count as part of comparability.
	Shards int `json:"shards,omitempty"`
	// Requests is the total request count across endpoints.
	Requests uint64 `json:"requests"`
	// ElapsedSeconds: wall-clock run length in real mode. In deterministic
	// closed-loop mode it is total occupied worker-seconds (virtual), and
	// in deterministic open-loop mode the virtual completion time of the
	// last request — both independent of physical execution speed.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// Throughput is Requests/ElapsedSeconds: requests per second in real
	// and open-loop modes, requests per occupied-worker-second in
	// deterministic closed-loop mode.
	Throughput float64 `json:"throughput"`
	// Total aggregates every endpoint; Endpoints splits by endpoint name
	// ("schedule", "evaluate", "tune" — only endpoints with traffic
	// appear).
	Total     EndpointReport             `json:"total"`
	Endpoints map[string]*EndpointReport `json:"endpoints"`
	// Capacity is present in search mode.
	Capacity *CapacityReport `json:"capacity,omitempty"`
}

// Marshal serializes the report deterministically: compact JSON, struct
// field order, map keys sorted (encoding/json's documented map behavior),
// no HTML escaping, trailing newline — the same discipline as the service's
// cached responses.
func (r *Report) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadReport parses a report written by Marshal (or any JSON encoding of
// Report).
func ReadReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// EndpointNames returns the report's endpoint keys, sorted — the iteration
// order comparators should use.
func (r *Report) EndpointNames() []string {
	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
