package load

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"ftsched/internal/service"
)

// recordingTarget captures every response body a run produced, in issue
// order. The deterministic closed loop is sequential, so the capture is the
// per-request response stream — the thing the sharding guarantee is about.
type recordingTarget struct {
	inner  Target
	bodies [][]byte
}

func (t *recordingTarget) Do(path string, body []byte) Result {
	res := t.inner.Do(path, body)
	t.bodies = append(t.bodies, res.Body)
	return res
}

// shardedE2EOpts is the sharded acceptance configuration: the shared smoke
// corpus at 400 requests, enough for every endpoint of the mixed profile to
// see repeats on every shard of a 4-way split.
func shardedE2EOpts(shards int) Options {
	opts := e2eOpts()
	opts.Requests = 400
	if shards > 1 {
		opts.Shards = shards
	}
	return opts
}

// shardedRun executes one deterministic run against a fresh n-shard
// deployment and returns the marshaled report plus every response body.
func shardedRun(t *testing.T, n int) ([]byte, [][]byte) {
	t.Helper()
	tgt, closeTarget := ShardedTarget(n, service.Config{Workers: 2, Queue: 8, CacheEntries: 1024})
	t.Cleanup(closeTarget)
	rec := &recordingTarget{inner: tgt}
	rep, err := Run(rec, shardedE2EOpts(n))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != shardedE2EOpts(n).Shards {
		t.Fatalf("report echoes shards=%d, want %d", rep.Shards, shardedE2EOpts(n).Shards)
	}
	// The shard count is an honest difference between the reports — a
	// 4-shard deployment IS a different machine — so it is normalized away
	// here and everything else must match exactly.
	rep.Shards = 0
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data, rec.bodies
}

// TestE2EShardedDeterminism is the acceptance property of the sharded
// deployment: the same deterministic 400-request run against 1, 2 and 4
// in-process shards produces byte-identical per-request response bodies and
// — beyond the ISSUE's ask of identical merged hit counts — reports that are
// byte-identical except for the shard-count echo. Routing by fingerprint
// gives every shard a disjoint, stable slice of the keyspace, so each
// repeated fingerprint finds its cache entry no matter how many shards the
// keyspace is cut into.
func TestE2EShardedDeterminism(t *testing.T) {
	baseRep, baseBodies := shardedRun(t, 1)
	for _, n := range []int{2, 4} {
		rep, bodies := shardedRun(t, n)
		if !bytes.Equal(rep, baseRep) {
			t.Fatalf("shards=%d report differs from unsharded (beyond the shards echo):\n--- unsharded ---\n%s\n--- shards=%d ---\n%s",
				n, baseRep, n, rep)
		}
		if len(bodies) != len(baseBodies) {
			t.Fatalf("shards=%d issued %d responses, unsharded %d", n, len(bodies), len(baseBodies))
		}
		for i := range bodies {
			if !bytes.Equal(bodies[i], baseBodies[i]) {
				t.Fatalf("shards=%d response %d differs from unsharded:\n--- unsharded ---\n%s\n--- shards=%d ---\n%s",
					n, i, baseBodies[i], n, bodies[i])
			}
		}
	}
}

// TestE2EShardedStatsConservation runs the smoke load against a 4-shard
// deployment and checks the deployment-wide /stats view against the
// client-side report: merged hits and misses match the response headers the
// run observed, and the merged counters conserve.
func TestE2EShardedStatsConservation(t *testing.T) {
	tgt, closeTarget := ShardedTarget(4, service.Config{Workers: 2, Queue: 8, CacheEntries: 1024})
	t.Cleanup(closeTarget)
	rep, err := Run(tgt, shardedE2EOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	res := tgt.Do("/stats", nil)
	if res.Err != nil || res.Status != 200 {
		t.Fatalf("GET /stats: status=%d err=%v", res.Status, res.Err)
	}
	var st struct {
		Shards   int           `json:"shards"`
		Merged   service.Stats `json:"merged"`
		PerShard []struct {
			Requests uint64 `json:"requests"`
		} `json:"per_shard"`
	}
	if err := json.Unmarshal(res.Body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 4 {
		t.Fatalf("deployment reports %d shards, want 4", st.Shards)
	}
	if st.Merged.CacheHits != rep.Total.CacheHits || st.Merged.CacheMisses != rep.Total.CacheMisses {
		t.Fatalf("merged hits/misses %d/%d disagree with the report's %d/%d",
			st.Merged.CacheHits, st.Merged.CacheMisses, rep.Total.CacheHits, rep.Total.CacheMisses)
	}
	if st.Merged.Requests != rep.Requests {
		t.Fatalf("merged requests %d, report %d", st.Merged.Requests, rep.Requests)
	}
	if served := st.Merged.CacheHits + st.Merged.CacheMisses + st.Merged.ClientErrors + st.Merged.InternalErrors; served != st.Merged.Requests {
		t.Fatalf("merged counters leak: %d served of %d", served, st.Merged.Requests)
	}
	for i, s := range st.PerShard {
		if s.Requests == 0 {
			t.Errorf("shard %d served nothing over %d requests; routing may be degenerate", i, rep.Requests)
		}
	}
}

// TestE2EShardedThroughputScaling measures real-clock closed-loop throughput
// at 1 vs 2 shards. Sharding doubles the scheduling workers, so a miss-heavy
// run must speed up materially — the ISSUE's scale-out acceptance. The
// measurement needs true parallelism: on fewer than 4 usable CPUs the two
// deployments contend for the same cores and the comparison measures the
// scheduler, not the architecture, so the test skips.
func TestE2EShardedThroughputScaling(t *testing.T) {
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("need >= 4 usable CPUs for a parallel scaling measurement, have %d", p)
	}
	run := func(n int) float64 {
		tgt, closeTarget := ShardedTarget(n, service.Config{Workers: 2, Queue: 32, CacheEntries: 1024})
		t.Cleanup(closeTarget)
		opts := Options{
			Mode:     "closed",
			Workers:  8,
			Requests: 240,
			Seed:     1,
			ZipfS:    ZipfUniform, // miss-heavy: spread across the corpus
			Corpus:   CorpusSpec{Size: 32, TasksMin: 24, TasksMax: 40},
		}
		if n > 1 {
			opts.Shards = n
		}
		rep, err := Run(tgt, opts)
		if err != nil {
			t.Fatal(err)
		}
		if bad := rep.Total.Rejected + rep.Total.ServerErrors + rep.Total.TransportErrors; bad > 0 {
			t.Fatalf("shards=%d shed %d requests; the measurement is invalid", n, bad)
		}
		return rep.Throughput
	}
	t1 := run(1)
	t2 := run(2)
	t.Logf("throughput: 1 shard %.1f req/s, 2 shards %.1f req/s (%.2fx)", t1, t2, t2/t1)
	// 2 shards carry 2x the workers; 1.3x is a deliberately conservative
	// floor that survives CI noise while still catching a deployment that
	// serializes behind the coordinator.
	if t2 < 1.3*t1 {
		t.Errorf("2-shard throughput %.1f req/s is below 1.3x the 1-shard %.1f req/s", t2, t1)
	}
}
