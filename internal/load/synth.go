package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"ftsched/internal/sim"
)

// Request is one synthesized API call.
type Request struct {
	// Index is the request's position in the global stream; the request is
	// a pure function of (synthesizer, Index).
	Index uint64
	// Endpoint is "schedule", "evaluate" or "tune"; Path is the URL path.
	Endpoint string
	Path     string
	// Rank is the zipf rank of the instance the request targets.
	Rank int
	// Body is the JSON request body.
	Body []byte
}

// Synthesizer turns a global request index into a fully formed API request:
// a seeded per-index rng picks the endpoint by profile weight, the instance
// by zipf rank, and every parameter from the profile's pools. Because the
// derivation uses only (seed, index), any set of workers consuming indices
// 0..R-1 issues exactly the same request multiset — the property that makes
// deterministic reports independent of worker count.
type Synthesizer struct {
	corpus    *Corpus
	profile   Profile
	zipf      *Zipf
	seed      int64
	scenarios []sim.ScenarioSpec // parsed once from profile.EvalScenarios
	wSchedule float64            // cumulative endpoint weights, normalized
	wEvaluate float64
}

// NewSynthesizer validates the profile against the corpus and precomputes
// the zipf CDF and scenario specs.
func NewSynthesizer(corpus *Corpus, profile Profile, zipfS float64, seed int64) (*Synthesizer, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	for _, eps := range profile.Epsilons {
		if eps+1 > corpus.Procs() {
			return nil, fmt.Errorf("load: profile %q draws epsilon %d, but the corpus platform has only %d processors",
				profile.Name, eps, corpus.Procs())
		}
	}
	z, err := NewZipf(corpus.Size(), zipfS)
	if err != nil {
		return nil, err
	}
	sy := &Synthesizer{corpus: corpus, profile: profile, zipf: z, seed: seed}
	for _, s := range profile.EvalScenarios {
		sp, err := sim.ParseScenarioSpec(s)
		if err != nil {
			return nil, err // unreachable after Validate, kept for safety
		}
		sy.scenarios = append(sy.scenarios, sp)
	}
	total := profile.Weights.Schedule + profile.Weights.Evaluate + profile.Weights.Tune
	sy.wSchedule = profile.Weights.Schedule / total
	sy.wEvaluate = sy.wSchedule + profile.Weights.Evaluate/total
	return sy, nil
}

// requestSeed derives the per-index rng seed by FNV-1a over the base seed
// and the index — the same stable-hash discipline sim.TrialSeed and the
// campaign engine use.
func requestSeed(base int64, index uint64) int64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for v, i := uint64(base), 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= prime
	}
	for v, i := index, 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= prime
	}
	return int64(h &^ (1 << 63))
}

// Wire shapes of the request bodies. The instance fields are raw pre-
// marshaled JSON from the corpus; the rest mirrors the service's decode
// structs field by field, so struct-order marshaling produces bodies the
// strict decoders (DisallowUnknownFields) accept.
type scheduleBody struct {
	Graph     json.RawMessage `json:"graph"`
	Platform  json.RawMessage `json:"platform"`
	Costs     json.RawMessage `json:"costs"`
	Scheduler string          `json:"scheduler"`
	Epsilon   int             `json:"epsilon"`
	Seed      int64           `json:"seed,omitempty"`
}

type evaluateBody struct {
	scheduleBody
	Trials   int              `json:"trials"`
	Scenario sim.ScenarioSpec `json:"scenario"`
	EvalSeed int64            `json:"eval_seed,omitempty"`
}

type tuneBody struct {
	Graph    json.RawMessage  `json:"graph"`
	Platform json.RawMessage  `json:"platform"`
	Costs    json.RawMessage  `json:"costs"`
	Scenario sim.ScenarioSpec `json:"scenario"`
	Trials   int              `json:"trials"`
	Target   float64          `json:"target"`
	Epsilons []int            `json:"epsilons"`
	EvalSeed int64            `json:"eval_seed,omitempty"`
}

// Request synthesizes the request at the given stream index.
func (sy *Synthesizer) Request(index uint64) (*Request, error) {
	rng := rand.New(rand.NewSource(requestSeed(sy.seed, index)))
	u := rng.Float64()
	rank := sy.zipf.Sample(rng)
	item := &sy.corpus.items[rank]
	p := &sy.profile

	req := &Request{Index: index, Rank: rank}
	var body any
	switch {
	case u < sy.wSchedule:
		req.Endpoint, req.Path = "schedule", "/schedule"
		body = sy.scheduleParams(item, rng)
	case u < sy.wEvaluate:
		req.Endpoint, req.Path = "evaluate", "/evaluate"
		sb := sy.scheduleParams(item, rng)
		body = &evaluateBody{
			scheduleBody: *sb,
			Trials:       p.EvalTrials[rng.Intn(len(p.EvalTrials))],
			Scenario:     sy.scenarios[rng.Intn(len(sy.scenarios))],
			EvalSeed:     p.EvalSeeds[rng.Intn(len(p.EvalSeeds))],
		}
	default:
		req.Endpoint, req.Path = "tune", "/tune"
		body = &tuneBody{
			Graph:    item.graph,
			Platform: item.platform,
			Costs:    item.costs,
			Scenario: sy.scenarios[rng.Intn(len(sy.scenarios))],
			Trials:   p.TuneTrials,
			Target:   p.TuneTarget,
			Epsilons: p.TuneEpsilons,
			EvalSeed: p.EvalSeeds[rng.Intn(len(p.EvalSeeds))],
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(body); err != nil {
		return nil, fmt.Errorf("load: marshaling request %d: %w", index, err)
	}
	req.Body = buf.Bytes()
	return req, nil
}

// scheduleParams draws the scheduling-parameter block shared by /schedule
// and /evaluate bodies. Schedulers the registry marks non-fault-tolerant
// must carry ε = 0; the profile encodes that as the "heft" special case so
// the synthesizer needs no registry import.
func (sy *Synthesizer) scheduleParams(item *corpusItem, rng *rand.Rand) *scheduleBody {
	p := &sy.profile
	scheduler := p.Schedulers[rng.Intn(len(p.Schedulers))]
	eps := p.Epsilons[rng.Intn(len(p.Epsilons))]
	if scheduler == "heft" {
		eps = 0
	}
	return &scheduleBody{
		Graph:     item.graph,
		Platform:  item.platform,
		Costs:     item.costs,
		Scheduler: scheduler,
		Epsilon:   eps,
		Seed:      p.Seeds[rng.Intn(len(p.Seeds))],
	}
}
