package load

import (
	"testing"
	"time"
)

// staticTarget answers every request instantly with a fixed disposition —
// the pure-harness target for tests that exercise pacing and correction
// rather than the real server.
type staticTarget struct {
	status int
	cache  string
}

func (t staticTarget) Do(path string, body []byte) Result {
	return Result{Status: t.status, Cache: t.cache}
}

// smallCorpus keeps corpus generation out of the measured path's way.
var smallCorpus = CorpusSpec{Size: 2, TasksMin: 8, TasksMax: 12}

// TestCoordinatedOmissionCorrection is the stall-injection acceptance test:
// one request stalls the single sender for 200ms, which delays every
// subsequent arrival's actual send past its intended time. The uncorrected
// service view sees one slow sample and a clean p99; the corrected view
// charges the backlog to the affected requests, so its p99 must exceed the
// uncorrected p99 by roughly the stall duration. An instrument without the
// correction would hide exactly this gap — coordinated omission.
func TestCoordinatedOmissionCorrection(t *testing.T) {
	const stall = 200 * time.Millisecond
	opts := Options{
		Mode:          "open",
		Deterministic: true,
		Workers:       1,
		Requests:      500,
		Rate:          1000, // 1ms intended inter-arrival
		Seed:          1,
		Corpus:        smallCorpus,
		Cost: func(req *Request, res Result) time.Duration {
			if req.Index == 100 {
				return stall
			}
			return 100 * time.Microsecond
		},
	}
	rep, err := Run(staticTarget{status: 200, cache: "miss"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Service == nil {
		t.Fatal("open-loop report must carry the uncorrected service view")
	}
	corrected, uncorrected := rep.Total.Latency.P99Ms, rep.Total.Service.P99Ms
	stallMs := float64(stall) / float64(time.Millisecond)
	// The uncorrected p99 must stay blind to the stall: 499 of 500 samples
	// are 0.1ms, so p99 picks one of them.
	if uncorrected > 1 {
		t.Fatalf("uncorrected p99 = %.3fms; the service view should not see the backlog", uncorrected)
	}
	if gap := corrected - uncorrected; gap < 0.8*stallMs {
		t.Fatalf("corrected p99 %.3fms - uncorrected %.3fms = %.3fms, want >= 0.8x the %.0fms stall",
			corrected, uncorrected, gap, stallMs)
	}
	// Correction can only add backlog, never subtract: every corrected
	// quantile dominates its uncorrected counterpart.
	if rep.Total.Latency.P50Ms < rep.Total.Service.P50Ms ||
		rep.Total.Latency.MaxMs < rep.Total.Service.MaxMs {
		t.Fatalf("corrected summary %+v below uncorrected %+v", rep.Total.Latency, *rep.Total.Service)
	}
}

// TestOpenLoopNoBacklogViewsAgree is the control: with service time far
// below the inter-arrival interval the sender is never behind schedule, so
// intended and actual send coincide and both views are identical.
func TestOpenLoopNoBacklogViewsAgree(t *testing.T) {
	opts := Options{
		Mode:          "open",
		Deterministic: true,
		Workers:       1,
		Requests:      300,
		Rate:          1000,
		Seed:          1,
		Corpus:        smallCorpus,
		Cost: func(req *Request, res Result) time.Duration {
			return 100 * time.Microsecond
		},
	}
	rep, err := Run(staticTarget{status: 200, cache: "miss"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Service == nil {
		t.Fatal("open-loop report must carry the uncorrected service view")
	}
	if rep.Total.Latency != *rep.Total.Service {
		t.Fatalf("without backlog the views must agree:\ncorrected   %+v\nuncorrected %+v",
			rep.Total.Latency, *rep.Total.Service)
	}
}

// TestClosedLoopOmitsServiceView pins the report shape: in closed-loop mode
// intended and actual send coincide by construction, so the redundant
// service summary stays out of the report.
func TestClosedLoopOmitsServiceView(t *testing.T) {
	opts := Options{
		Mode:          "closed",
		Deterministic: true,
		Requests:      50,
		Seed:          1,
		Corpus:        smallCorpus,
	}
	rep, err := Run(staticTarget{status: 200, cache: "miss"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Service != nil {
		t.Fatal("closed-loop report must omit the service view")
	}
	if rep.Total.Latency.Count != 50 {
		t.Fatalf("latency count = %d, want 50", rep.Total.Latency.Count)
	}
}

// TestSearchFindsDeterministicCapacity drives -mode search against a known
// system: 4 virtual senders at 1ms per request serve exactly 4000 req/s, so
// the binary search must land below the cliff and above three quarters of
// it, and two identical searches must agree byte-for-byte.
func TestSearchFindsDeterministicCapacity(t *testing.T) {
	opts := Options{
		Mode:          "search",
		Deterministic: true,
		Workers:       4,
		Requests:      2000,
		Seed:          1,
		Corpus:        smallCorpus,
		SLO:           20 * time.Millisecond,
		RateMin:       100,
		RateMax:       16000,
		SearchProbes:  12,
		Cost: func(req *Request, res Result) time.Duration {
			return time.Millisecond
		},
	}
	run := func() *Report {
		rep, err := Run(staticTarget{status: 200, cache: "miss"}, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	rep := run()
	if rep.Capacity == nil {
		t.Fatal("search report must carry a capacity section")
	}
	c := rep.Capacity
	if c.SLOP99Ms != 20 || c.ErrorBudget != 0.01 {
		t.Fatalf("capacity echo wrong: slo=%.1f budget=%g", c.SLOP99Ms, c.ErrorBudget)
	}
	if c.MaxRatePerSec < 3000 || c.MaxRatePerSec > 4500 {
		t.Fatalf("MaxRatePerSec = %.0f, want within [3000, 4500] for a 4000 req/s system", c.MaxRatePerSec)
	}
	if len(c.Iterations) < 2 || c.Iterations[0].RatePerSec != 100 || !c.Iterations[0].OK {
		t.Fatalf("iterations = %+v, want a passing floor probe first", c.Iterations)
	}
	if rep.RatePerSec != c.MaxRatePerSec {
		t.Fatalf("report body rate %.0f != recommended rate %.0f", rep.RatePerSec, c.MaxRatePerSec)
	}
	a, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("identical searches produced different reports")
	}
}

// TestSearchReportsZeroWhenFloorFails pins the bracket edge: when even
// RateMin misses the SLO, the search must answer 0, not RateMin.
func TestSearchReportsZeroWhenFloorFails(t *testing.T) {
	opts := Options{
		Mode:          "search",
		Deterministic: true,
		Workers:       1,
		Requests:      200,
		Seed:          1,
		Corpus:        smallCorpus,
		SLO:           10 * time.Millisecond,
		RateMin:       100,
		RateMax:       1000,
		Cost: func(req *Request, res Result) time.Duration {
			return 50 * time.Millisecond // hopeless: one sender, 20 req/s
		},
	}
	rep, err := Run(staticTarget{status: 200, cache: "miss"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Capacity.MaxRatePerSec != 0 {
		t.Fatalf("MaxRatePerSec = %.0f, want 0 when the floor probe fails", rep.Capacity.MaxRatePerSec)
	}
	if len(rep.Capacity.Iterations) != 1 {
		t.Fatalf("iterations = %d, want 1 (no bracket to search)", len(rep.Capacity.Iterations))
	}
}
