package load

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"

	"ftsched/internal/coord"
	"ftsched/internal/service"
)

// Result is one request's observable outcome: the HTTP status, the cache
// disposition the server reported, and the transport error, if any. Status
// is 0 exactly when Err is non-nil.
type Result struct {
	Status int
	// Cache is the X-Ftserved-Cache header: "hit", "miss" or "" (error
	// responses and GETs carry none).
	Cache string
	// Body is the response body. The runner ignores it; tests and the
	// /stats helper read it.
	Body []byte
	Err  error
}

// Target abstracts where requests go: an in-process handler or a live
// server. Do issues a POST with the given body, or a GET when body is nil.
// Implementations must be safe for concurrent use.
type Target interface {
	Do(path string, body []byte) Result
}

// HandlerTarget drives an http.Handler in process — the deterministic,
// network-free harness mode. The handler is typically a service.Server.
type HandlerTarget struct {
	Handler http.Handler
}

// Do implements Target.
func (t HandlerTarget) Do(path string, body []byte) Result {
	method := http.MethodGet
	var r io.Reader
	if body != nil {
		method = http.MethodPost
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	t.Handler.ServeHTTP(rec, req)
	return Result{
		Status: rec.Code,
		Cache:  rec.Header().Get(service.CacheStatusHeader),
		Body:   rec.Body.Bytes(),
	}
}

// ShardedTarget builds the self-contained in-process deployment ftload and
// the e2e suite drive: n worker shards behind a coordinator for n >= 2, or a
// bare server for n <= 1 — the same serving code either way, so reports are
// directly comparable across shard counts. Every shard gets its own worker
// pool and cache under the given config, labeled "0".."n-1" in /stats. The
// returned close function drains every shard's pool.
func ShardedTarget(n int, cfg service.Config) (Target, func()) {
	if n <= 1 {
		svc := service.New(cfg)
		return HandlerTarget{Handler: svc}, svc.Close
	}
	shards := make([]http.Handler, n)
	closers := make([]func(), n)
	for i := range shards {
		shardCfg := cfg
		shardCfg.Shard = strconv.Itoa(i)
		s := service.New(shardCfg)
		shards[i] = s
		closers[i] = s.Close
	}
	c := coord.New(shards, coord.Options{})
	return HandlerTarget{Handler: c}, func() {
		for _, cl := range closers {
			cl()
		}
	}
}

// URLTarget drives a live server over HTTP.
type URLTarget struct {
	// Base is the server root, e.g. "http://localhost:8080".
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// Do implements Target.
func (t URLTarget) Do(path string, body []byte) Result {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(t.Base, "/") + path
	var resp *http.Response
	var err error
	if body != nil {
		resp, err = client.Post(url, "application/json", bytes.NewReader(body))
	} else {
		resp, err = client.Get(url)
	}
	if err != nil {
		return Result{Err: err}
	}
	defer resp.Body.Close()
	// Read fully so the connection is reusable; latency covers the whole
	// response, as a client would experience it.
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Result{Err: fmt.Errorf("reading response: %w", err)}
	}
	return Result{
		Status: resp.StatusCode,
		Cache:  resp.Header.Get(service.CacheStatusHeader),
		Body:   data,
	}
}
