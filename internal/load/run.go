package load

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/stats"
)

// CostFn models a request's virtual service time in deterministic mode: it
// sees the synthesized request and the server's actual response (status and
// cache disposition), and returns how long the call is deemed to have
// taken. Tests inject stalls through it; DefaultCost is the seeded default.
type CostFn func(req *Request, res Result) time.Duration

// DefaultCost is the deterministic service-time model: a seeded hash of the
// request index drawn uniformly per request, scaled by endpoint cost class
// (/evaluate ~4×, /tune ~12× a /schedule solve), with cache hits collapsing
// to tens of microseconds the way the real byte-cache does. The model is a
// stand-in for wall time, not a measurement — its purpose is exercising the
// pacing/correction/histogram pipeline reproducibly.
func DefaultCost(seed int64) CostFn {
	return func(req *Request, res Result) time.Duration {
		h := uint64(requestSeed(seed^0x6c6f6164, req.Index)) // "load", a stream distinct from parameter draws
		if res.Cache == "hit" {
			return time.Duration(30_000 + h%50_000) // 30–80 µs
		}
		d := time.Duration(300_000 + h%900_000) // 0.3–1.2 ms
		switch req.Endpoint {
		case "evaluate":
			d *= 4
		case "tune":
			d *= 12
		}
		return d
	}
}

// Options configures a load run.
type Options struct {
	// Mode is "closed" (default), "open" or "search".
	Mode string
	// Workers is the closed-loop worker count / open-loop sender cap
	// (default 4). In deterministic closed-loop mode it does not affect
	// the report — see Report.ElapsedSeconds.
	Workers int
	// Think is the per-worker pause after each closed-loop request.
	Think time.Duration
	// Requests is the total request budget per run (per probe in search
	// mode; default 1000).
	Requests int
	// Warmup replays the first Warmup indices of the request stream,
	// unrecorded and unpaced, before any measurement — it primes the
	// server's response cache so the measured run (every probe alike in
	// search mode) sees steady-state hit behavior instead of charging the
	// cold cache to whichever requests arrive first.
	Warmup int
	// Rate is the open-loop arrival rate in requests/second (default 200).
	Rate float64
	// Shards echoes how many worker shards serve behind the target (0: a
	// plain unsharded server). The runner does not build the deployment —
	// the caller does — but the count is part of a report's comparability:
	// benchdiff refuses to gate a sharded run against an unsharded baseline.
	Shards int
	// Seed drives every random choice; ZipfS is the popularity exponent.
	// The zero value picks the default skew 1.0; pass ZipfUniform for an
	// unskewed draw (s = 0).
	Seed  int64
	ZipfS float64
	// Corpus and Profile describe the workload; zero values pick the
	// defaults (16-instance random corpus, "mixed" profile).
	Corpus  CorpusSpec
	Profile Profile
	// Deterministic switches to the virtual clock: requests are issued
	// sequentially in stream order, recorded latencies come from Cost, and
	// the report is byte-identical across runs — in closed-loop mode also
	// across worker counts (the open-loop sender cap is part of the model,
	// so changing it legitimately changes backlog and corrected latency).
	Deterministic bool
	// Cost is the deterministic service-time model (nil: DefaultCost(Seed)).
	Cost CostFn
	// SLO is the corrected-p99 objective of search mode (default 20ms);
	// ErrorBudget the tolerated error fraction (default 1%).
	SLO         time.Duration
	ErrorBudget float64
	// RateMin and RateMax bracket the capacity search (defaults 10 and
	// 50000 requests/second); SearchProbes bounds its iterations
	// (default 12).
	RateMin, RateMax float64
	SearchProbes     int
}

// ZipfUniform is the ZipfS sentinel for an unskewed (uniform) popularity
// draw; the zero value picks the default skew of 1.0 instead.
const ZipfUniform = -1

func (o Options) withDefaults() Options {
	if o.Mode == "" {
		o.Mode = "closed"
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	if o.Requests == 0 {
		o.Requests = 1000
	}
	if o.Rate == 0 {
		o.Rate = 200
	}
	switch {
	case o.ZipfS == 0:
		o.ZipfS = 1.0
	case o.ZipfS == ZipfUniform:
		o.ZipfS = 0
	}
	if o.Profile.Name == "" && o.Profile.Schedulers == nil {
		o.Profile, _ = ProfileByName("mixed")
	}
	if o.Cost == nil {
		o.Cost = DefaultCost(o.Seed)
	}
	if o.SLO == 0 {
		o.SLO = 20 * time.Millisecond
	}
	if o.ErrorBudget == 0 {
		o.ErrorBudget = 0.01
	}
	if o.RateMin == 0 {
		o.RateMin = 10
	}
	if o.RateMax == 0 {
		o.RateMax = 50000
	}
	if o.SearchProbes == 0 {
		o.SearchProbes = 12
	}
	return o
}

func (o Options) validate() error {
	switch o.Mode {
	case "closed", "open", "search":
	default:
		return fmt.Errorf("load: unknown mode %q (known: closed, open, search)", o.Mode)
	}
	if o.Workers < 1 {
		return fmt.Errorf("load: need workers >= 1, got %d", o.Workers)
	}
	if o.Requests < 1 {
		return fmt.Errorf("load: need requests >= 1, got %d", o.Requests)
	}
	if o.Mode == "open" && o.Rate <= 0 {
		return fmt.Errorf("load: open-loop mode needs rate > 0, got %g", o.Rate)
	}
	if o.Mode == "search" {
		if o.RateMin <= 0 || o.RateMax <= o.RateMin {
			return fmt.Errorf("load: search needs 0 < rate-min < rate-max, got [%g, %g]", o.RateMin, o.RateMax)
		}
		if o.SLO <= 0 {
			return fmt.Errorf("load: search needs a positive p99 SLO, got %v", o.SLO)
		}
	}
	if o.Think < 0 {
		return fmt.Errorf("load: think time must be >= 0, got %v", o.Think)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("load: warmup must be >= 0, got %d", o.Warmup)
	}
	if o.Shards < 0 {
		return fmt.Errorf("load: shards must be >= 0, got %d", o.Shards)
	}
	return nil
}

// Endpoint indices of the recorder's fixed array; a fixed layout keeps the
// concurrent hot path free of map hashing and locks.
const (
	epSchedule = iota
	epEvaluate
	epTune
	numEndpoints
)

var endpointNames = [numEndpoints]string{"schedule", "evaluate", "tune"}

func epIndex(name string) int {
	switch name {
	case "schedule":
		return epSchedule
	case "evaluate":
		return epEvaluate
	default:
		return epTune
	}
}

// endpointRec accumulates one endpoint's counters and histograms. Latencies
// are recorded in nanoseconds.
type endpointRec struct {
	requests, ok, rejected, clientErr, serverErr, transportErr uint64
	hits, misses                                               uint64
	lat                                                        stats.Histogram // corrected (from intended send)
	svc                                                        stats.Histogram // uncorrected (from actual send)
}

// recorder accumulates a run (or one worker's share of it).
type recorder struct {
	eps [numEndpoints]endpointRec
}

func (r *recorder) observe(ep int, res Result, latNs, svcNs int64) {
	e := &r.eps[ep]
	e.requests++
	switch {
	case res.Err != nil:
		e.transportErr++
	case res.Status == 429:
		e.rejected++
	case res.Status >= 500:
		e.serverErr++
	case res.Status >= 400:
		e.clientErr++
	default:
		e.ok++
	}
	switch res.Cache {
	case "hit":
		e.hits++
	case "miss":
		e.misses++
	}
	e.lat.Record(latNs)
	e.svc.Record(svcNs)
}

// merge folds o into r; exact, order-independent.
func (r *recorder) merge(o *recorder) {
	for i := range r.eps {
		a, b := &r.eps[i], &o.eps[i]
		a.requests += b.requests
		a.ok += b.ok
		a.rejected += b.rejected
		a.clientErr += b.clientErr
		a.serverErr += b.serverErr
		a.transportErr += b.transportErr
		a.hits += b.hits
		a.misses += b.misses
		a.lat.Merge(&b.lat)
		a.svc.Merge(&b.svc)
	}
}

// total folds every endpoint into one aggregate view.
func (r *recorder) total() *endpointRec {
	var t endpointRec
	for i := range r.eps {
		e := &r.eps[i]
		t.requests += e.requests
		t.ok += e.ok
		t.rejected += e.rejected
		t.clientErr += e.clientErr
		t.serverErr += e.serverErr
		t.transportErr += e.transportErr
		t.hits += e.hits
		t.misses += e.misses
		t.lat.Merge(&e.lat)
		t.svc.Merge(&e.svc)
	}
	return &t
}

func (e *endpointRec) report(open bool) *EndpointReport {
	er := &EndpointReport{
		Requests:        e.requests,
		OK:              e.ok,
		Rejected:        e.rejected,
		ClientErrors:    e.clientErr,
		ServerErrors:    e.serverErr,
		TransportErrors: e.transportErr,
		CacheHits:       e.hits,
		CacheMisses:     e.misses,
		Latency:         summarize(&e.lat),
	}
	if e.hits+e.misses > 0 {
		er.HitRate = float64(e.hits) / float64(e.hits+e.misses)
	}
	if open {
		svc := summarize(&e.svc)
		er.Service = &svc
	}
	return er
}

// errRate is the fraction of requests that did not get a 2xx/4xx answer —
// the health signal capacity search budgets (4xx are the client's fault and
// excluded; a correct profile produces none).
func (e *endpointRec) errRate() float64 {
	if e.requests == 0 {
		return 0
	}
	return float64(e.rejected+e.serverErr+e.transportErr) / float64(e.requests)
}

// Run executes one load run against the target and builds its report.
func Run(target Target, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	corpus, err := BuildCorpus(opts.Corpus)
	if err != nil {
		return nil, err
	}
	sy, err := NewSynthesizer(corpus, opts.Profile, opts.ZipfS, opts.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Mode:          opts.Mode,
		Deterministic: opts.Deterministic,
		Seed:          opts.Seed,
		ZipfS:         opts.ZipfS,
		Corpus:        corpus.Spec(),
		Profile:       opts.Profile,
		ThinkMs:       float64(opts.Think) / float64(time.Millisecond),
		Warmup:        opts.Warmup,
		Shards:        opts.Shards,
	}
	// Warmup: replay the head of the stream unrecorded so the measured run
	// starts against a primed cache. Sequential like the deterministic
	// engines, so it perturbs nothing.
	for i := 0; i < opts.Warmup; i++ {
		req, err := sy.Request(uint64(i))
		if err != nil {
			return nil, err
		}
		target.Do(req.Path, req.Body)
	}

	switch opts.Mode {
	case "closed":
		rec := new(recorder)
		var elapsedNs int64
		if opts.Deterministic {
			elapsedNs, err = runClosedVirtual(target, sy, opts, rec)
		} else {
			elapsedNs, err = runClosedReal(target, sy, opts, rec)
		}
		if err != nil {
			return nil, err
		}
		fillReport(rep, rec, elapsedNs, false)
	case "open":
		rep.RatePerSec = opts.Rate
		rec := new(recorder)
		var elapsedNs int64
		if opts.Deterministic {
			elapsedNs, err = runOpenVirtual(target, sy, opts, opts.Rate, rec)
		} else {
			elapsedNs, err = runOpenReal(target, sy, opts, opts.Rate, rec)
		}
		if err != nil {
			return nil, err
		}
		fillReport(rep, rec, elapsedNs, true)
	case "search":
		if err := runSearch(target, sy, opts, rep); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// fillReport finishes the report from the merged recorder.
func fillReport(rep *Report, rec *recorder, elapsedNs int64, open bool) {
	rep.Endpoints = make(map[string]*EndpointReport)
	for i := range rec.eps {
		if rec.eps[i].requests > 0 {
			rep.Endpoints[endpointNames[i]] = rec.eps[i].report(open)
		}
	}
	t := rec.total()
	rep.Total = *t.report(open)
	rep.Requests = t.requests
	rep.ElapsedSeconds = float64(elapsedNs) / 1e9
	if rep.ElapsedSeconds > 0 {
		rep.Throughput = float64(t.requests) / rep.ElapsedSeconds
	}
}

// runClosedReal is the wall-clock closed loop: Workers goroutines issuing
// back-to-back requests from the shared index stream, one private recorder
// each, merged afterwards in worker order.
func runClosedReal(target Target, sy *Synthesizer, opts Options, out *recorder) (int64, error) {
	var (
		next    atomic.Uint64
		wg      sync.WaitGroup
		recs    = make([]recorder, opts.Workers)
		errOnce sync.Once
		runErr  error
	)
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := &recs[w]
			for {
				i := next.Add(1) - 1
				if i >= uint64(opts.Requests) {
					return
				}
				req, err := sy.Request(i)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				t0 := time.Now()
				res := target.Do(req.Path, req.Body)
				d := time.Since(t0).Nanoseconds()
				rec.observe(epIndex(req.Endpoint), res, d, d)
				if opts.Think > 0 {
					time.Sleep(opts.Think)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Nanoseconds()
	if runErr != nil {
		return 0, runErr
	}
	for w := range recs {
		out.merge(&recs[w])
	}
	return elapsed, nil
}

// runOpenReal is the wall-clock open loop: every request index has an
// intended send time start + i/rate; senders sleep until it, and latency is
// measured from the intended time, so sender backlog (all Workers busy past
// a request's slot) is charged to the affected requests instead of being
// silently omitted — the coordinated-omission correction.
func runOpenReal(target Target, sy *Synthesizer, opts Options, rate float64, out *recorder) (int64, error) {
	var (
		next    atomic.Uint64
		wg      sync.WaitGroup
		recs    = make([]recorder, opts.Workers)
		errOnce sync.Once
		runErr  error
	)
	interval := float64(time.Second) / rate
	start := time.Now()
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := &recs[w]
			for {
				i := next.Add(1) - 1
				if i >= uint64(opts.Requests) {
					return
				}
				req, err := sy.Request(i)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				intended := start.Add(time.Duration(float64(i) * interval))
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				res := target.Do(req.Path, req.Body)
				end := time.Now()
				rec.observe(epIndex(req.Endpoint), res,
					end.Sub(intended).Nanoseconds(), end.Sub(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Nanoseconds()
	if runErr != nil {
		return 0, runErr
	}
	for w := range recs {
		out.merge(&recs[w])
	}
	return elapsed, nil
}

// runSearch binary-searches the highest open-loop arrival rate whose
// corrected p99 meets the SLO within the error budget, then reruns at that
// rate so the report's latency section describes the recommended operating
// point rather than an arbitrary probe.
func runSearch(target Target, sy *Synthesizer, opts Options, rep *Report) error {
	capRep := &CapacityReport{
		SLOP99Ms:    float64(opts.SLO) / float64(time.Millisecond),
		ErrorBudget: opts.ErrorBudget,
	}
	probe := func(rate float64) (*recorder, int64, *CapacityIteration, error) {
		rec := new(recorder)
		var elapsedNs int64
		var err error
		if opts.Deterministic {
			elapsedNs, err = runOpenVirtual(target, sy, opts, rate, rec)
		} else {
			elapsedNs, err = runOpenReal(target, sy, opts, rate, rec)
		}
		if err != nil {
			return nil, 0, nil, err
		}
		t := rec.total()
		it := &CapacityIteration{
			RatePerSec: rate,
			P99Ms:      float64(t.lat.Quantile(0.99)) / float64(time.Millisecond),
			ErrorRate:  t.errRate(),
		}
		it.OK = it.P99Ms <= capRep.SLOP99Ms && it.ErrorRate <= opts.ErrorBudget
		return rec, elapsedNs, it, nil
	}

	// Establish the bracket: if even RateMin fails, capacity is 0; if
	// RateMax passes, it is the answer (the search cannot see past it).
	lo, hi := opts.RateMin, opts.RateMax
	_, _, itMin, err := probe(lo)
	if err != nil {
		return err
	}
	capRep.Iterations = append(capRep.Iterations, *itMin)
	good := 0.0
	if itMin.OK {
		good = lo
		for i := 1; i < opts.SearchProbes; i++ {
			mid := (lo + hi) / 2
			_, _, it, err := probe(mid)
			if err != nil {
				return err
			}
			capRep.Iterations = append(capRep.Iterations, *it)
			if it.OK {
				lo, good = mid, mid
			} else {
				hi = mid
			}
			if hi-lo < 0.02*hi {
				break
			}
		}
	}
	capRep.MaxRatePerSec = good

	// Final run at the recommended rate (or the floor probe if nothing
	// passed) for the report body.
	finalRate := good
	if finalRate == 0 {
		finalRate = opts.RateMin
	}
	rec, elapsedNs, _, err := probe(finalRate)
	if err != nil {
		return err
	}
	rep.RatePerSec = finalRate
	fillReport(rep, rec, elapsedNs, true)
	rep.Capacity = capRep
	return nil
}
