// Package load is the closed-loop capacity-benchmarking instrument for the
// ftserved serving tier: a load generator that drives a live or in-process
// server with zipf-skewed traffic over a generated instance corpus and
// reports coordinated-omission-safe latency/throughput numbers comparable
// across PRs.
//
// The pipeline is: a Corpus of scheduling instances (built through
// expt.BuildInstance, pre-marshaled to the wire shapes the service decodes),
// a Profile mixing /schedule, /evaluate and /tune traffic with per-endpoint
// parameter distributions, a Zipf sampler skewing instance popularity (so
// the fingerprint cache's hit rate under realistic skew becomes measurable),
// and a Runner with three modes:
//
//   - closed: N workers issue requests back to back with optional think
//     time — the classic closed-loop saturation probe.
//   - open: requests arrive at a fixed rate on an intended-send schedule;
//     latency is measured from the *intended* send time, so a stalled
//     server cannot hide queueing delay behind coordinated omission.
//   - search: binary search for the maximum open-loop arrival rate whose
//     corrected p99 stays within an SLO — the capacity headline.
//
// Every request is synthesized from its global index alone (seeded zipf
// draw, seeded parameter draws), so the request multiset is independent of
// worker count and interleaving. Latencies land in log-bucketed
// stats.Histogram instruments whose merge is exact, which together with a
// virtual clock gives the deterministic mode its defining property: a fixed
// seed produces a byte-identical JSON Report at any worker count, making
// the whole pipeline unit-testable and CI-gateable (cmd/benchdiff -load).
package load
