package load

import (
	"encoding/json"
	"fmt"

	"ftsched/internal/expt"
)

// CorpusSpec describes a generated instance corpus. The spec is part of the
// report, so a corpus is reproducible from its echo: equal specs build
// byte-identical corpora (expt.BuildInstance derives every instance from the
// spec seed and the instance index).
type CorpusSpec struct {
	// Size is the number of distinct instances (zipf ranks). 0 means 16.
	Size int `json:"size"`
	// Family is "random" (default), one of expt.CampaignFamilies, or
	// "mixed", which cycles rank-by-rank through random plus every
	// structured family.
	Family string `json:"family"`
	// Procs is the platform size (0 means 8).
	Procs int `json:"procs"`
	// TasksMin and TasksMax bound random-family task counts (0 means
	// [30, 60]); structured families have intrinsic sizes.
	TasksMin int `json:"tasks_min"`
	TasksMax int `json:"tasks_max"`
	// Granularity scales computation against communication (0 means 1.0).
	Granularity float64 `json:"granularity"`
	// Seed drives instance generation.
	Seed int64 `json:"seed"`
}

// WithDefaults fills zero fields with the documented defaults.
func (cs CorpusSpec) WithDefaults() CorpusSpec {
	if cs.Size == 0 {
		cs.Size = 16
	}
	if cs.Family == "" {
		cs.Family = "random"
	}
	if cs.Procs == 0 {
		cs.Procs = 8
	}
	if cs.TasksMin == 0 {
		cs.TasksMin = 30
	}
	if cs.TasksMax == 0 {
		cs.TasksMax = 60
	}
	if cs.Granularity == 0 {
		cs.Granularity = 1.0
	}
	return cs
}

// corpusItem is one instance pre-marshaled to the wire shapes the service
// decodes, so the hot request-synthesis path splices raw JSON instead of
// re-encoding a DAG per request.
type corpusItem struct {
	family   string
	tasks    int
	graph    json.RawMessage
	platform json.RawMessage
	costs    json.RawMessage
}

// Corpus is the immutable instance set a load run draws from; item 0 is the
// most popular zipf rank. Building it is the expensive part of a run and
// happens once, before any clock starts.
type Corpus struct {
	spec  CorpusSpec
	items []corpusItem
}

// BuildCorpus materializes the corpus. Ranks map to instance indices
// directly, so rank r is the same instance in every run with an equal spec.
func BuildCorpus(spec CorpusSpec) (*Corpus, error) {
	spec = spec.WithDefaults()
	if spec.Size < 1 {
		return nil, fmt.Errorf("load: corpus size must be >= 1, got %d", spec.Size)
	}
	if spec.TasksMin < 1 || spec.TasksMax < spec.TasksMin {
		return nil, fmt.Errorf("load: invalid task range [%d,%d]", spec.TasksMin, spec.TasksMax)
	}
	families := []string{spec.Family}
	if spec.Family == "mixed" {
		families = expt.CampaignFamilies() // "random" plus every structured family
	}
	c := &Corpus{spec: spec, items: make([]corpusItem, 0, spec.Size)}
	for i := 0; i < spec.Size; i++ {
		family := families[i%len(families)]
		inst, err := expt.BuildInstance(family, spec.Granularity,
			spec.Procs, spec.TasksMin, spec.TasksMax, i, spec.Seed)
		if err != nil {
			return nil, fmt.Errorf("load: building corpus instance %d: %w", i, err)
		}
		item := corpusItem{family: family, tasks: inst.Graph.NumTasks()}
		if item.graph, err = json.Marshal(inst.Graph); err != nil {
			return nil, fmt.Errorf("load: marshaling instance %d graph: %w", i, err)
		}
		if item.platform, err = json.Marshal(inst.Platform); err != nil {
			return nil, fmt.Errorf("load: marshaling instance %d platform: %w", i, err)
		}
		if item.costs, err = json.Marshal(inst.Costs); err != nil {
			return nil, fmt.Errorf("load: marshaling instance %d costs: %w", i, err)
		}
		c.items = append(c.items, item)
	}
	return c, nil
}

// Spec returns the defaulted spec the corpus was built from.
func (c *Corpus) Spec() CorpusSpec { return c.spec }

// Size returns the instance count.
func (c *Corpus) Size() int { return len(c.items) }

// Procs returns the platform size shared by every instance.
func (c *Corpus) Procs() int { return c.spec.Procs }
