package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s —
// the popularity skew real request streams show, where a handful of hot
// instances absorb most traffic. Rank 0 is the most popular. s = 0
// degenerates to uniform; s around 1 is the classic web-trace skew.
//
// Sampling inverts the precomputed CDF with a binary search, so a draw is
// O(log n) and driven entirely by the caller's rng: equal seeds yield equal
// rank sequences, the property the deterministic load mode builds on.
// (math/rand's built-in Zipf generator is a rejection sampler whose draw
// count per sample varies, which would break index-addressable request
// synthesis; the CDF inversion consumes exactly one uniform per sample.)
type Zipf struct {
	s   float64
	cdf []float64 // cdf[r] = P(rank <= r), cdf[n-1] == 1
}

// NewZipf precomputes the CDF for n ranks with exponent s >= 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: zipf needs >= 1 rank, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("load: zipf exponent must be finite and >= 0, got %g", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 0; r < n; r++ {
		sum += math.Pow(float64(r+1), -s)
		cdf[r] = sum
	}
	for r := range cdf {
		cdf[r] /= sum
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &Zipf{s: s, cdf: cdf}, nil
}

// N returns the rank count.
func (z *Zipf) N() int { return len(z.cdf) }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Rank maps a uniform u in [0,1) to its rank — the inverse CDF.
func (z *Zipf) Rank(u float64) int {
	return sort.SearchFloat64s(z.cdf, u)
}

// Sample draws one rank, consuming exactly one uniform from rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	// Float64 returns values in [0,1); SearchFloat64s finds the first
	// cdf entry > u is what we want — Search returns the first index with
	// cdf[i] >= u, and u == cdf[i] exactly has probability ~0 and still
	// yields a valid rank.
	return z.Rank(rng.Float64())
}
