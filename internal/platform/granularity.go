package platform

import (
	"errors"

	"ftsched/internal/dag"
)

// ErrNoEdges is returned by Granularity for graphs without communications,
// whose granularity is undefined (division by zero).
var ErrNoEdges = errors.New("platform: granularity undefined for a graph with no edges")

// Granularity computes g(G,P) exactly as defined in Section 2 of the paper:
// the ratio of the sum over tasks of the *slowest* computation time of each
// task, to the sum over edges of the *slowest* communication time along each
// edge (volume times the slowest link delay). A graph is coarse grain when
// g >= 1.
func Granularity(g *dag.Graph, cm *CostModel, p *Platform) (float64, error) {
	if g.NumEdges() == 0 {
		return 0, ErrNoEdges
	}
	comp := 0.0
	for t := 0; t < g.NumTasks(); t++ {
		comp += cm.Max(dag.TaskID(t))
	}
	slowest := p.MaxDelay()
	comm := g.TotalVolume() * slowest
	if comm == 0 {
		return 0, ErrNoEdges
	}
	return comp / comm, nil
}

// IsCoarseGrain reports whether g(G,P) >= 1.
func IsCoarseGrain(g *dag.Graph, cm *CostModel, p *Platform) (bool, error) {
	gr, err := Granularity(g, cm, p)
	if err != nil {
		return false, err
	}
	return gr >= 1, nil
}
