// Package platform models the heterogeneous execution platform of the paper:
// a fully connected set of m processors P = {P1..Pm}, a unit-data delay
// matrix d(Pk,Ph) with d(Pk,Pk)=0, and a task-by-processor execution-cost
// matrix E(t,Pk) (the "unrelated machines" heterogeneity model).
//
// Platform carries the communication side (delays and their aggregates: max
// outgoing delay for dynamic top levels, mean delay for W̄, fastest-links
// means for deadline assignment); CostModel carries the computation side
// with the matching aggregates (mean, fastest-n mean, extremes) plus the
// scaling hook the workload generator uses to hit a target granularity.
// Both serialize to validating JSON wire formats (platform.json,
// costs.json), and the clustered-platform and granularity helpers extend
// the flat model for the experiments beyond the paper.
package platform
