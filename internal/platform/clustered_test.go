package platform

import (
	"math/rand"
	"testing"
)

func TestNewClustered(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := NewClustered(rng, 3, 4, 0.1, 0.2, 1.0, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumProcs() != 12 {
		t.Fatalf("procs = %d", p.NumProcs())
	}
	for k := 0; k < 12; k++ {
		for h := 0; h < 12; h++ {
			d := p.Delay(ProcID(k), ProcID(h))
			switch {
			case k == h:
				if d != 0 {
					t.Fatalf("diagonal %g", d)
				}
			case k/4 == h/4: // same rack
				if d < 0.1 || d >= 0.2 {
					t.Fatalf("intra-rack d(%d,%d)=%g outside [0.1,0.2)", k, h, d)
				}
			default:
				if d < 1.0 || d >= 2.0 {
					t.Fatalf("inter-rack d(%d,%d)=%g outside [1,2)", k, h, d)
				}
			}
			if d != p.Delay(ProcID(h), ProcID(k)) {
				t.Fatalf("asymmetric link %d-%d", k, h)
			}
		}
	}
	if Rack(5, 4) != 1 || Rack(11, 4) != 2 {
		t.Error("Rack mapping wrong")
	}
}

func TestNewClusteredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewClustered(rng, 0, 4, 0, 1, 1, 2); err == nil {
		t.Error("0 racks accepted")
	}
	if _, err := NewClustered(rng, 2, 0, 0, 1, 1, 2); err == nil {
		t.Error("empty racks accepted")
	}
	if _, err := NewClustered(rng, 2, 2, 1, 0.5, 1, 2); err == nil {
		t.Error("inverted intra range accepted")
	}
	if _, err := NewClustered(rng, 2, 2, 0, 1, -1, 2); err == nil {
		t.Error("negative inter delay accepted")
	}
}

func TestClusteredDegenerateRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, err := NewClustered(rng, 2, 2, 0.5, 0.5, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.Delay(0, 1); d != 0.5 {
		t.Errorf("fixed intra delay %g", d)
	}
	if d := p.Delay(0, 2); d != 3 {
		t.Errorf("fixed inter delay %g", d)
	}
}
