package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
)

// ProcID identifies a processor, a dense integer in [0, NumProcs).
type ProcID int

// Platform holds the communication side of the model: the number of
// processors and the unit-length-data delay between every ordered pair.
type Platform struct {
	m     int
	delay [][]float64 // delay[k][h] = d(Pk,Ph); delay[k][k] = 0
}

// Common platform errors.
var (
	ErrBadSize   = errors.New("platform: non-positive processor count")
	ErrBadDelay  = errors.New("platform: invalid delay")
	ErrDimension = errors.New("platform: dimension mismatch")
)

// New creates a platform with m processors and all inter-processor unit
// delays set to delay (intra-processor delays are 0).
func New(m int, delay float64) (*Platform, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, m)
	}
	if delay < 0 {
		return nil, fmt.Errorf("%w: %g", ErrBadDelay, delay)
	}
	p := &Platform{m: m, delay: make([][]float64, m)}
	for k := 0; k < m; k++ {
		p.delay[k] = make([]float64, m)
		for h := 0; h < m; h++ {
			if h != k {
				p.delay[k][h] = delay
			}
		}
	}
	return p, nil
}

// NewFromDelays builds a platform from an explicit delay matrix. The diagonal
// must be zero and all entries non-negative.
func NewFromDelays(delay [][]float64) (*Platform, error) {
	m := len(delay)
	if m == 0 {
		return nil, ErrBadSize
	}
	p := &Platform{m: m, delay: make([][]float64, m)}
	for k := range delay {
		if len(delay[k]) != m {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, k, len(delay[k]), m)
		}
		for h, d := range delay[k] {
			if d < 0 {
				return nil, fmt.Errorf("%w: d(P%d,P%d)=%g", ErrBadDelay, k, h, d)
			}
			if h == k && d != 0 {
				return nil, fmt.Errorf("%w: d(P%d,P%d)=%g, diagonal must be 0", ErrBadDelay, k, h, d)
			}
		}
		p.delay[k] = append([]float64(nil), delay[k]...)
	}
	return p, nil
}

// NewRandom draws every inter-processor unit delay uniformly from
// [minDelay, maxDelay), the paper's communication-heterogeneity model
// (Section 6 uses [0.5, 1]).
func NewRandom(rng *rand.Rand, m int, minDelay, maxDelay float64) (*Platform, error) {
	if m <= 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadSize, m)
	}
	if minDelay < 0 || maxDelay < minDelay {
		return nil, fmt.Errorf("%w: range [%g,%g)", ErrBadDelay, minDelay, maxDelay)
	}
	p := &Platform{m: m, delay: make([][]float64, m)}
	for k := 0; k < m; k++ {
		p.delay[k] = make([]float64, m)
	}
	// Links are symmetric: one delay per unordered pair.
	for k := 0; k < m; k++ {
		for h := k + 1; h < m; h++ {
			d := minDelay + rng.Float64()*(maxDelay-minDelay)
			p.delay[k][h] = d
			p.delay[h][k] = d
		}
	}
	return p, nil
}

// NumProcs returns m.
func (p *Platform) NumProcs() int { return p.m }

// Valid reports whether k names a processor of p.
func (p *Platform) Valid(k ProcID) bool { return k >= 0 && int(k) < p.m }

// Delay returns d(Pk,Ph), the time to ship one unit of data from Pk to Ph.
// It is 0 when k == h.
func (p *Platform) Delay(k, h ProcID) float64 { return p.delay[k][h] }

// MaxDelayFrom returns max over h of d(Pk,Ph) — the worst-case outgoing
// delay used by the dynamic top level (Section 4.1).
func (p *Platform) MaxDelayFrom(k ProcID) float64 {
	best := 0.0
	for h := 0; h < p.m; h++ {
		if p.delay[k][h] > best {
			best = p.delay[k][h]
		}
	}
	return best
}

// MeanDelay returns d̄, the average unit delay over ordered pairs of distinct
// processors — the averaging the paper uses for W̄(ti,tj). For m == 1 it
// returns 0.
func (p *Platform) MeanDelay() float64 {
	if p.m == 1 {
		return 0
	}
	sum := 0.0
	for k := 0; k < p.m; k++ {
		for h := 0; h < p.m; h++ {
			if h != k {
				sum += p.delay[k][h]
			}
		}
	}
	return sum / float64(p.m*(p.m-1))
}

// MeanDelayFastestLinks returns the average unit delay over the n fastest
// links in the system, used by the deadline assignment of Section 4.3.
// n is clamped to the number of distinct ordered pairs.
func (p *Platform) MeanDelayFastestLinks(n int) float64 {
	if p.m == 1 || n <= 0 {
		return 0
	}
	all := make([]float64, 0, p.m*(p.m-1))
	for k := 0; k < p.m; k++ {
		for h := 0; h < p.m; h++ {
			if h != k {
				all = append(all, p.delay[k][h])
			}
		}
	}
	sort.Float64s(all)
	if n > len(all) {
		n = len(all)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += all[i]
	}
	return sum / float64(n)
}

// MaxDelay returns the largest unit delay in the system (slowest link),
// used when computing granularity (slowest communication time of an edge).
func (p *Platform) MaxDelay() float64 {
	best := 0.0
	for k := 0; k < p.m; k++ {
		for h := 0; h < p.m; h++ {
			if p.delay[k][h] > best {
				best = p.delay[k][h]
			}
		}
	}
	return best
}

// platformJSON is the serialized form.
type platformJSON struct {
	Procs int         `json:"procs"`
	Delay [][]float64 `json:"delay"`
}

// MarshalJSON implements json.Marshaler.
func (p *Platform) MarshalJSON() ([]byte, error) {
	return json.Marshal(platformJSON{Procs: p.m, Delay: p.delay})
}

// UnmarshalJSON implements json.Unmarshaler with validation. It decodes into
// the receiver's existing matrix storage (rows and backing are reused when
// capacities suffice), so a pooled platform decoding same-sized payloads back
// to back stops allocating. On any error the receiver is left empty.
func (p *Platform) UnmarshalJSON(data []byte) error {
	in := platformJSON{Delay: p.delay[:0]}
	p.m, p.delay = 0, nil
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("platform: decoding: %w", err)
	}
	m := len(in.Delay)
	if m == 0 {
		return ErrBadSize
	}
	for k := range in.Delay {
		if len(in.Delay[k]) != m {
			return fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, k, len(in.Delay[k]), m)
		}
		for h, d := range in.Delay[k] {
			if d < 0 {
				return fmt.Errorf("%w: d(P%d,P%d)=%g", ErrBadDelay, k, h, d)
			}
			if h == k && d != 0 {
				return fmt.Errorf("%w: d(P%d,P%d)=%g, diagonal must be 0", ErrBadDelay, k, h, d)
			}
		}
	}
	if in.Procs != m {
		return fmt.Errorf("%w: procs=%d but delay matrix is %dx%d", ErrDimension, in.Procs, m, m)
	}
	p.m, p.delay = m, in.Delay
	return nil
}

// WriteTo serializes p as indented JSON.
func (p *Platform) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// Read decodes a platform from JSON.
func Read(r io.Reader) (*Platform, error) {
	var p Platform
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, err
	}
	return &p, nil
}
