package platform

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/dag"
)

func TestNewUniformPlatform(t *testing.T) {
	p, err := New(4, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumProcs() != 4 {
		t.Errorf("NumProcs = %d", p.NumProcs())
	}
	for k := 0; k < 4; k++ {
		if d := p.Delay(ProcID(k), ProcID(k)); d != 0 {
			t.Errorf("d(P%d,P%d) = %g, want 0", k, k, d)
		}
		for h := 0; h < 4; h++ {
			if h != k && p.Delay(ProcID(k), ProcID(h)) != 2.5 {
				t.Errorf("d(P%d,P%d) = %g", k, h, p.Delay(ProcID(k), ProcID(h)))
			}
		}
	}
	if md := p.MeanDelay(); md != 2.5 {
		t.Errorf("MeanDelay = %g", md)
	}
	if md := p.MaxDelay(); md != 2.5 {
		t.Errorf("MaxDelay = %g", md)
	}
	if md := p.MaxDelayFrom(0); md != 2.5 {
		t.Errorf("MaxDelayFrom = %g", md)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := NewFromDelays([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewFromDelays([][]float64{{1}}); err == nil {
		t.Error("nonzero diagonal accepted")
	}
	if _, err := NewFromDelays([][]float64{{0, -1}, {1, 0}}); err == nil {
		t.Error("negative entry accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandom(rng, 3, 2, 1); err == nil {
		t.Error("inverted delay range accepted")
	}
}

func TestNewRandomInRangeAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := NewRandom(rng, 10, 0.5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		for h := 0; h < 10; h++ {
			d := p.Delay(ProcID(k), ProcID(h))
			if k == h {
				if d != 0 {
					t.Fatalf("diagonal %g", d)
				}
				continue
			}
			if d < 0.5 || d >= 1.0 {
				t.Fatalf("d(P%d,P%d) = %g outside [0.5,1)", k, h, d)
			}
			if d != p.Delay(ProcID(h), ProcID(k)) {
				t.Fatalf("asymmetric link %d-%d", k, h)
			}
		}
	}
	if md := p.MeanDelay(); md < 0.5 || md >= 1.0 {
		t.Errorf("MeanDelay %g outside range", md)
	}
	// Fastest links average <= overall average.
	if f := p.MeanDelayFastestLinks(5); f > p.MeanDelay() {
		t.Errorf("fastest-5 mean %g exceeds overall %g", f, p.MeanDelay())
	}
}

func TestMeanDelaySingleProc(t *testing.T) {
	p, err := New(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.MeanDelay() != 0 || p.MeanDelayFastestLinks(3) != 0 {
		t.Error("single-processor delays should be 0")
	}
}

func TestPlatformJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := NewRandom(rng, 5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		for h := 0; h < 5; h++ {
			if back.Delay(ProcID(k), ProcID(h)) != p.Delay(ProcID(k), ProcID(h)) {
				t.Fatalf("delay mismatch at (%d,%d)", k, h)
			}
		}
	}
	var bad Platform
	if err := json.Unmarshal([]byte(`{"procs":3,"delay":[[0,1],[1,0]]}`), &bad); err == nil {
		t.Error("inconsistent proc count accepted")
	}
}

func TestCostModelBasics(t *testing.T) {
	cm, err := NewCostModelFromMatrix([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumTasks() != 2 || cm.NumProcs() != 3 {
		t.Errorf("dims %dx%d", cm.NumTasks(), cm.NumProcs())
	}
	if c := cm.Cost(1, 2); c != 6 {
		t.Errorf("Cost(1,2) = %g", c)
	}
	if m := cm.Mean(0); m != 2 {
		t.Errorf("Mean(0) = %g", m)
	}
	if m := cm.Max(1); m != 6 {
		t.Errorf("Max(1) = %g", m)
	}
	if m := cm.Min(1); m != 4 {
		t.Errorf("Min(1) = %g", m)
	}
	if m := cm.MeanFastest(0, 2); m != 1.5 {
		t.Errorf("MeanFastest(0,2) = %g", m)
	}
	if m := cm.MeanOverTasks(); m != 3.5 {
		t.Errorf("MeanOverTasks = %g", m)
	}
	if err := cm.SetCost(0, 0, 9); err != nil || cm.Cost(0, 0) != 9 {
		t.Error("SetCost failed")
	}
	if err := cm.SetCost(0, 0, -1); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestCostModelScaleAndClone(t *testing.T) {
	cm, err := NewCostModelFromMatrix([][]float64{{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	c := cm.Clone()
	if err := cm.Scale(3); err != nil {
		t.Fatal(err)
	}
	if cm.Cost(0, 0) != 6 || cm.Cost(0, 1) != 12 {
		t.Error("scale wrong")
	}
	if c.Cost(0, 0) != 2 {
		t.Error("clone affected by scale")
	}
	if err := cm.Scale(-1); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestCostModelErrors(t *testing.T) {
	if _, err := NewCostModelFromMatrix(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := NewCostModelFromMatrix([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewCostModelFromMatrix([][]float64{{-1}}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := NewCostModel(-1, 2); err == nil {
		t.Error("negative task count accepted")
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := NewRandomCostModel(rng, 2, 2, 5, 1); err == nil {
		t.Error("inverted cost range accepted")
	}
}

func TestCostModelJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cm, err := NewRandomCostModel(rng, 4, 3, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cm.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCostModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for tsk := 0; tsk < 4; tsk++ {
		for p := 0; p < 3; p++ {
			if back.Cost(dag.TaskID(tsk), ProcID(p)) != cm.Cost(dag.TaskID(tsk), ProcID(p)) {
				t.Fatalf("cost mismatch at (%d,%d)", tsk, p)
			}
		}
	}
}

func TestGranularityDefinition(t *testing.T) {
	// Two tasks, one edge of volume 10; slowest delays 2; costs chosen so
	// slowest computations are 6 and 8: g = (6+8)/(10*2) = 0.7.
	g := dag.NewWithTasks("g", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCostModelFromMatrix([][]float64{{6, 3}, {8, 1}})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := Granularity(g, cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr-0.7) > 1e-12 {
		t.Errorf("granularity = %g, want 0.7", gr)
	}
	coarse, err := IsCoarseGrain(g, cm, p)
	if err != nil {
		t.Fatal(err)
	}
	if coarse {
		t.Error("0.7 classified as coarse grain")
	}
}

func TestGranularityNoEdges(t *testing.T) {
	g := dag.NewWithTasks("g", 2)
	p, _ := New(2, 1)
	cm, _ := NewCostModelFromMatrix([][]float64{{1, 1}, {1, 1}})
	if _, err := Granularity(g, cm, p); err == nil {
		t.Error("granularity of edgeless graph accepted")
	}
}

func TestPropMeanFastestMonotone(t *testing.T) {
	// MeanFastest is non-decreasing in n (adding slower processors can only
	// raise the average).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cm, err := NewRandomCostModel(rng, 1, 10, 1, 100)
		if err != nil {
			return false
		}
		prev := 0.0
		for n := 1; n <= 10; n++ {
			m := cm.MeanFastest(0, n)
			if m < prev-1e-9 {
				return false
			}
			prev = m
		}
		return math.Abs(cm.MeanFastest(0, 10)-cm.Mean(0)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
