package platform

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"ftsched/internal/dag"
)

// CostModel is the computational-heterogeneity function E: V × P → R+ of the
// paper: cost[t][k] is the execution time of task t on processor Pk.
type CostModel struct {
	cost [][]float64 // [task][proc]
}

// NewCostModel allocates a v-tasks × m-procs cost matrix initialized to zero.
func NewCostModel(v, m int) (*CostModel, error) {
	if v < 0 || m <= 0 {
		return nil, fmt.Errorf("platform: invalid cost-model dimensions %dx%d", v, m)
	}
	cm := &CostModel{cost: make([][]float64, v)}
	for t := range cm.cost {
		cm.cost[t] = make([]float64, m)
	}
	return cm, nil
}

// NewCostModelFromMatrix wraps an explicit matrix (copied; rows must be equal
// length and entries non-negative).
func NewCostModelFromMatrix(cost [][]float64) (*CostModel, error) {
	if len(cost) == 0 {
		return nil, fmt.Errorf("platform: empty cost matrix")
	}
	m := len(cost[0])
	if m == 0 {
		return nil, fmt.Errorf("platform: cost matrix has no processors")
	}
	cm := &CostModel{cost: make([][]float64, len(cost))}
	for t := range cost {
		if len(cost[t]) != m {
			return nil, fmt.Errorf("%w: cost row %d has %d entries, want %d", ErrDimension, t, len(cost[t]), m)
		}
		for k, c := range cost[t] {
			if c < 0 {
				return nil, fmt.Errorf("platform: negative cost E(%d,P%d)=%g", t, k, c)
			}
		}
		cm.cost[t] = append([]float64(nil), cost[t]...)
	}
	return cm, nil
}

// NewRandomCostModel draws E(t,Pk) uniformly from [minCost, maxCost) for
// every task/processor pair — the unrelated-machines model used by the
// paper's experiments.
func NewRandomCostModel(rng *rand.Rand, v, m int, minCost, maxCost float64) (*CostModel, error) {
	if minCost < 0 || maxCost < minCost {
		return nil, fmt.Errorf("platform: invalid cost range [%g,%g)", minCost, maxCost)
	}
	cm, err := NewCostModel(v, m)
	if err != nil {
		return nil, err
	}
	for t := range cm.cost {
		for k := range cm.cost[t] {
			cm.cost[t][k] = minCost + rng.Float64()*(maxCost-minCost)
		}
	}
	return cm, nil
}

// NumTasks returns the number of tasks covered by the model.
func (cm *CostModel) NumTasks() int { return len(cm.cost) }

// NumProcs returns the number of processors covered by the model.
func (cm *CostModel) NumProcs() int {
	if len(cm.cost) == 0 {
		return 0
	}
	return len(cm.cost[0])
}

// Cost returns E(t,Pk).
func (cm *CostModel) Cost(t dag.TaskID, k ProcID) float64 { return cm.cost[t][k] }

// SetCost updates E(t,Pk).
func (cm *CostModel) SetCost(t dag.TaskID, k ProcID, c float64) error {
	if c < 0 {
		return fmt.Errorf("platform: negative cost E(%d,P%d)=%g", t, k, c)
	}
	cm.cost[t][k] = c
	return nil
}

// Mean returns E̅(t) = (Σj E(t,Pj)) / m, the average execution time used by
// static bottom levels.
func (cm *CostModel) Mean(t dag.TaskID) float64 {
	row := cm.cost[t]
	sum := 0.0
	for _, c := range row {
		sum += c
	}
	return sum / float64(len(row))
}

// Max returns the slowest execution time of t over all processors, used by
// the granularity definition.
func (cm *CostModel) Max(t dag.TaskID) float64 {
	best := 0.0
	for _, c := range cm.cost[t] {
		if c > best {
			best = c
		}
	}
	return best
}

// Min returns the fastest execution time of t over all processors.
func (cm *CostModel) Min(t dag.TaskID) float64 {
	if len(cm.cost[t]) == 0 {
		return 0
	}
	best := cm.cost[t][0]
	for _, c := range cm.cost[t][1:] {
		if c < best {
			best = c
		}
	}
	return best
}

// MeanFastest returns the average execution time of t on the n fastest
// processors for t, the E̅(ti) of the deadline computation (Section 4.3,
// with n = ε+1).
func (cm *CostModel) MeanFastest(t dag.TaskID, n int) float64 {
	row := append([]float64(nil), cm.cost[t]...)
	sort.Float64s(row)
	if n <= 0 {
		return 0
	}
	if n > len(row) {
		n = len(row)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += row[i]
	}
	return sum / float64(n)
}

// MeanOverTasks returns the mean of E̅(t) over all tasks: the platform-level
// average cost of one task, used to normalize latencies in the experiment
// harness.
func (cm *CostModel) MeanOverTasks() float64 {
	if len(cm.cost) == 0 {
		return 0
	}
	sum := 0.0
	for t := range cm.cost {
		sum += cm.Mean(dag.TaskID(t))
	}
	return sum / float64(len(cm.cost))
}

// Scale multiplies every execution cost by factor (>= 0); used by the
// workload generator to hit a target granularity.
func (cm *CostModel) Scale(factor float64) error {
	if factor < 0 {
		return fmt.Errorf("platform: negative scale factor %g", factor)
	}
	for t := range cm.cost {
		for k := range cm.cost[t] {
			cm.cost[t][k] *= factor
		}
	}
	return nil
}

// Clone deep-copies the model.
func (cm *CostModel) Clone() *CostModel {
	c := &CostModel{cost: make([][]float64, len(cm.cost))}
	for t := range cm.cost {
		c.cost[t] = append([]float64(nil), cm.cost[t]...)
	}
	return c
}

// MarshalJSON implements json.Marshaler.
func (cm *CostModel) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cost [][]float64 `json:"cost"`
	}{Cost: cm.cost})
}

// UnmarshalJSON implements json.Unmarshaler with validation. Like
// Platform.UnmarshalJSON it decodes into the receiver's existing matrix
// storage, so a pooled model decoding same-shaped payloads allocates nothing;
// on any error the receiver is left empty.
func (cm *CostModel) UnmarshalJSON(data []byte) error {
	in := struct {
		Cost [][]float64 `json:"cost"`
	}{Cost: cm.cost[:0]}
	cm.cost = nil
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("platform: decoding cost model: %w", err)
	}
	if len(in.Cost) == 0 {
		return fmt.Errorf("platform: empty cost matrix")
	}
	m := len(in.Cost[0])
	if m == 0 {
		return fmt.Errorf("platform: cost matrix has no processors")
	}
	for t := range in.Cost {
		if len(in.Cost[t]) != m {
			return fmt.Errorf("%w: cost row %d has %d entries, want %d", ErrDimension, t, len(in.Cost[t]), m)
		}
		for k, c := range in.Cost[t] {
			if c < 0 {
				return fmt.Errorf("platform: negative cost E(%d,P%d)=%g", t, k, c)
			}
		}
	}
	cm.cost = in.Cost
	return nil
}

// WriteTo serializes the model as indented JSON.
func (cm *CostModel) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(cm, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// ReadCostModel decodes a cost model from JSON.
func ReadCostModel(r io.Reader) (*CostModel, error) {
	var cm CostModel
	if err := json.NewDecoder(r).Decode(&cm); err != nil {
		return nil, err
	}
	return &cm, nil
}
