package platform

import (
	"fmt"
	"math/rand"
)

// NewClustered builds a two-level platform: racks of perRack processors
// with fast intra-rack links and slower inter-rack links (both drawn
// uniformly from their ranges, symmetric). Processor p belongs to rack
// p / perRack; combined with sim.GroupCrash this models whole-rack
// failures, the correlated-failure scenario the paper's independent-crash
// model does not cover.
func NewClustered(rng *rand.Rand, racks, perRack int, intraMin, intraMax, interMin, interMax float64) (*Platform, error) {
	if racks < 1 || perRack < 1 {
		return nil, fmt.Errorf("%w: %d racks × %d", ErrBadSize, racks, perRack)
	}
	if intraMin < 0 || intraMax < intraMin || interMin < 0 || interMax < interMin {
		return nil, fmt.Errorf("%w: intra [%g,%g], inter [%g,%g]", ErrBadDelay, intraMin, intraMax, interMin, interMax)
	}
	m := racks * perRack
	p := &Platform{m: m, delay: make([][]float64, m)}
	for k := 0; k < m; k++ {
		p.delay[k] = make([]float64, m)
	}
	draw := func(lo, hi float64) float64 {
		if hi == lo {
			return lo
		}
		return lo + rng.Float64()*(hi-lo)
	}
	for k := 0; k < m; k++ {
		for h := k + 1; h < m; h++ {
			var d float64
			if k/perRack == h/perRack {
				d = draw(intraMin, intraMax)
			} else {
				d = draw(interMin, interMax)
			}
			p.delay[k][h] = d
			p.delay[h][k] = d
		}
	}
	return p, nil
}

// Rack returns the rack index of a processor for a clustered platform built
// with the given rack size.
func Rack(p ProcID, perRack int) int { return int(p) / perRack }
