package dag

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

func buildDiamond(t *testing.T) *Graph {
	t.Helper()
	g := NewWithTasks("diamond", 4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 20)
	g.MustAddEdge(1, 3, 30)
	g.MustAddEdge(2, 3, 40)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := buildDiamond(t)
	if g.NumTasks() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %d tasks, %d edges", g.NumTasks(), g.NumEdges())
	}
	if got := g.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d", got)
	}
	if got := g.InDegree(3); got != 2 {
		t.Errorf("InDegree(3) = %d", got)
	}
	v, err := g.Volume(0, 2)
	if err != nil || v != 20 {
		t.Errorf("Volume(0,2) = %g, %v", v, err)
	}
	if _, err := g.Volume(1, 2); !errors.Is(err, ErrNoSuchEdge) {
		t.Errorf("Volume(1,2) error = %v, want ErrNoSuchEdge", err)
	}
	if ents := g.Entries(); len(ents) != 1 || ents[0] != 0 {
		t.Errorf("Entries = %v", ents)
	}
	if exits := g.Exits(); len(exits) != 1 || exits[0] != 3 {
		t.Errorf("Exits = %v", exits)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if g.String() == "" {
		t.Error("empty String()")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewWithTasks("g", 2)
	if err := g.AddEdge(0, 0, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if err := g.AddEdge(0, 5, 1); !errors.Is(err, ErrNoSuchTask) {
		t.Errorf("bad task: %v", err)
	}
	if err := g.AddEdge(0, 1, -1); !errors.Is(err, ErrNegVolume) {
		t.Errorf("neg volume: %v", err)
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(0, 1, 2); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestSetVolumeAndScale(t *testing.T) {
	g := buildDiamond(t)
	if err := g.SetVolume(0, 1, 99); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Volume(0, 1); v != 99 {
		t.Errorf("Volume = %g, want 99", v)
	}
	if err := g.SetVolume(1, 2, 5); !errors.Is(err, ErrNoSuchEdge) {
		t.Errorf("SetVolume missing edge: %v", err)
	}
	if err := g.SetVolume(0, 1, -1); !errors.Is(err, ErrNegVolume) {
		t.Errorf("SetVolume negative: %v", err)
	}
	if err := g.ScaleVolumes(2); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Volume(0, 1); v != 198 {
		t.Errorf("scaled volume = %g, want 198", v)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after scaling: %v", err)
	}
	if tot := g.TotalVolume(); tot != 198+40+60+80 {
		t.Errorf("TotalVolume = %g", tot)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	if err := c.SetVolume(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := g.Volume(0, 1); v != 10 {
		t.Errorf("clone mutation leaked into original: %g", v)
	}
	if c.NumTasks() != g.NumTasks() || c.NumEdges() != g.NumEdges() {
		t.Error("clone shape mismatch")
	}
}

func TestTopologicalOrder(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsTopologicalOrder(order) {
		t.Errorf("order %v is not topological", order)
	}
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if rev[0] != order[len(order)-1] {
		t.Errorf("reverse order mismatch: %v vs %v", rev, order)
	}
	if g.IsTopologicalOrder([]TaskID{3, 2, 1, 0}) {
		t.Error("reversed order accepted as topological")
	}
	if g.IsTopologicalOrder([]TaskID{0, 1, 2}) {
		t.Error("short order accepted")
	}
	if g.IsTopologicalOrder([]TaskID{0, 0, 1, 2}) {
		t.Error("duplicate order accepted")
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewWithTasks("cyc", 3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	if _, err := g.TopologicalOrder(); !errors.Is(err, ErrCycle) {
		t.Errorf("TopologicalOrder on cycle: %v", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Errorf("Validate on cycle: %v", err)
	}
}

func TestLevels(t *testing.T) {
	g := buildDiamond(t)
	levels, n, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("level count = %d, want 3", n)
	}
	want := []int{0, 1, 1, 2}
	for i, l := range levels {
		if l != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, l, want[i])
		}
	}
}

func TestDescendantsAncestors(t *testing.T) {
	g := buildDiamond(t)
	d := g.Descendants(0)
	for _, tsk := range []TaskID{1, 2, 3} {
		if !d[tsk] {
			t.Errorf("task %d should be a descendant of 0", tsk)
		}
	}
	if d[0] {
		t.Error("task 0 should not be its own descendant")
	}
	a := g.Ancestors(3)
	for _, tsk := range []TaskID{0, 1, 2} {
		if !a[tsk] {
			t.Errorf("task %d should be an ancestor of 3", tsk)
		}
	}
}

func TestBottomAndTopLevels(t *testing.T) {
	g := buildDiamond(t)
	node := func(TaskID) float64 { return 1 }
	edge := func(_, _ TaskID, v float64) float64 { return v }
	bl, err := g.BottomLevels(node, edge)
	if err != nil {
		t.Fatal(err)
	}
	// bl(3)=1; bl(1)=1+30+1=32; bl(2)=1+40+1=42; bl(0)=1+max(10+32,20+42)=63.
	want := []float64{63, 32, 42, 1}
	for i, b := range bl {
		if b != want[i] {
			t.Errorf("bl[%d] = %g, want %g", i, b, want[i])
		}
	}
	tl, err := g.TopLevels(node, edge)
	if err != nil {
		t.Fatal(err)
	}
	// tl(0)=0; tl(1)=0+1+10=11; tl(2)=21; tl(3)=max(11+1+30,21+1+40)=62.
	wantTL := []float64{0, 11, 21, 62}
	for i, v := range tl {
		if v != wantTL[i] {
			t.Errorf("tl[%d] = %g, want %g", i, v, wantTL[i])
		}
	}
}

func TestCriticalPath(t *testing.T) {
	g := buildDiamond(t)
	node := func(TaskID) float64 { return 1 }
	edge := func(_, _ TaskID, v float64) float64 { return v }
	path, length, err := g.CriticalPath(node, edge)
	if err != nil {
		t.Fatal(err)
	}
	if length != 63 {
		t.Errorf("critical length = %g, want 63", length)
	}
	want := []TaskID{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if l, err := g.LongestPathLength(node, edge); err != nil || l != 63 {
		t.Errorf("LongestPathLength = %g, %v", l, err)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New("empty")
	path, length, err := g.CriticalPath(UnitNodeCost, ZeroEdgeCost)
	if err != nil || path != nil || length != 0 {
		t.Errorf("empty graph: %v %g %v", path, length, err)
	}
}

func TestWidth(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		want  int
	}{
		{"diamond", func() *Graph { return buildDiamond(t) }, 2},
		{"chain", func() *Graph {
			g := NewWithTasks("chain", 5)
			for i := 0; i < 4; i++ {
				g.MustAddEdge(TaskID(i), TaskID(i+1), 1)
			}
			return g
		}, 1},
		{"independent", func() *Graph { return NewWithTasks("ind", 7) }, 7},
		{"empty", func() *Graph { return New("e") }, 0},
		{"fork", func() *Graph {
			g := NewWithTasks("fork", 5)
			for i := 1; i < 5; i++ {
				g.MustAddEdge(0, TaskID(i), 1)
			}
			return g
		}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := tc.build().Width()
			if err != nil {
				t.Fatal(err)
			}
			if w != tc.want {
				t.Errorf("width = %d, want %d", w, tc.want)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != g.Name() || back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", back, g)
	}
	for _, e := range g.Edges() {
		v, err := back.Volume(e.Src, e.Dst)
		if err != nil || v != e.Volume {
			t.Errorf("edge (%d,%d): %g, %v", e.Src, e.Dst, v, err)
		}
	}
}

func TestJSONRejectsBadGraphs(t *testing.T) {
	cases := []string{
		`{"name":"x","tasks":-1,"edges":[]}`,
		`{"name":"x","tasks":2,"edges":[{"src":0,"dst":0,"volume":1}]}`,
		`{"name":"x","tasks":2,"edges":[{"src":0,"dst":5,"volume":1}]}`,
		`{"name":"x","tasks":2,"edges":[{"src":0,"dst":1,"volume":1},{"src":1,"dst":0,"volume":1}]}`,
		`not json`,
	}
	for i, c := range cases {
		var g Graph
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("case %d: bad graph accepted", i)
		}
	}
}

func TestSortedSuccs(t *testing.T) {
	g := NewWithTasks("s", 4)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	ss := g.SortedSuccs(0)
	for i := 1; i < len(ss); i++ {
		if ss[i-1].To >= ss[i].To {
			t.Fatalf("not sorted: %v", ss)
		}
	}
}
