package dag

// Flat is a frozen CSR (compressed sparse row) view of a Graph: the
// slice-of-slices adjacency flattened into parallel int32 index arrays plus a
// contiguous volume array, with the forward and reverse topological orders,
// the topological position of every task, and the entry/exit sets computed
// once at freeze time. It is immutable after Freeze and therefore safe to
// share across goroutines without synchronization.
//
// The flat layout exists for the hot loops: walking a CSR range touches one
// cache line per few adjacencies instead of chasing a slice header per task,
// and the precomputed orders remove the per-call O(V+E) Kahn pass (and its
// allocations) that Graph.BottomLevels pays on every invocation.
//
// Edge identity: the edges of the graph are numbered 0..E-1 in successor-CSR
// order (tasks ascending, then insertion order within a task — the same order
// Graph.Edges enumerates). SuccVolumes(t)[i] belongs to edge SuccEdgeIDs(t)[i]
// and per-edge cost slices passed to BottomLevels/TopLevels are indexed by
// this edge ID. The predecessor side preserves the Graph's own Preds order
// (AddEdge call order) so frozen and legacy iteration visit predecessors
// identically; PredEdgeIDs maps each predecessor slot back to its edge ID.
type Flat struct {
	n int // tasks
	e int // edges

	succOff []int32   // len n+1: succ CSR row offsets
	succTo  []int32   // len e: successor task IDs, edge-ID order
	succVol []float64 // len e: edge volumes, edge-ID order

	predOff  []int32   // len n+1: pred CSR row offsets
	predTo   []int32   // len e: predecessor task IDs, Graph.Preds order
	predVol  []float64 // len e: edge volumes, Graph.Preds order
	predEdge []int32   // len e: edge ID of each predecessor slot

	topo    []TaskID // forward topological order (Kahn, smallest-ID-first FIFO)
	rtopo   []TaskID // reverse of topo
	topoPos []int32  // task -> index in topo
	entries []TaskID // tasks with no predecessors, ascending
	exits   []TaskID // tasks with no successors, ascending
}

// Freeze builds (or returns the memoized) flat CSR view of g. The view is
// built once per graph shape: mutating the graph (AddTask, AddEdge,
// SetVolume, ScaleVolumes, decoding into it) invalidates the memo and the
// next Freeze rebuilds. Freezing fails with ErrCycle on a cyclic graph.
//
// The returned Flat is immutable and shared: every caller freezing the same
// unmutated graph gets the same view, which is what lets the scheduler
// kernel, the replay engine and the tuner all walk one CSR per instance.
func (g *Graph) Freeze() (*Flat, error) {
	if f := g.flat.Load(); f != nil {
		return f, nil
	}
	f, err := freeze(g)
	if err != nil {
		return nil, err
	}
	// A concurrent Freeze may have raced us; either view is equivalent, so
	// the first store wins and the loser's build is garbage.
	if !g.flat.CompareAndSwap(nil, f) {
		if cur := g.flat.Load(); cur != nil {
			return cur, nil
		}
	}
	return f, nil
}

// freeze does the actual CSR construction.
func freeze(g *Graph) (*Flat, error) {
	n, e := g.NumTasks(), g.NumEdges()
	f := &Flat{
		n:        n,
		e:        e,
		succOff:  make([]int32, n+1),
		succTo:   make([]int32, e),
		succVol:  make([]float64, e),
		predOff:  make([]int32, n+1),
		predTo:   make([]int32, e),
		predVol:  make([]float64, e),
		predEdge: make([]int32, e),
		topoPos:  make([]int32, n),
	}
	// Successor CSR in edge-ID order: tasks ascending, insertion order within.
	off := int32(0)
	for t := 0; t < n; t++ {
		f.succOff[t] = off
		for _, a := range g.succs[t] {
			f.succTo[off] = int32(a.To)
			f.succVol[off] = a.Volume
			off++
		}
	}
	f.succOff[n] = off
	// Predecessor CSR preserving Graph.Preds order, with edge-ID backlinks.
	off = 0
	for t := 0; t < n; t++ {
		f.predOff[t] = off
		for _, a := range g.preds[t] {
			f.predTo[off] = int32(a.To)
			f.predVol[off] = a.Volume
			f.predEdge[off] = f.edgeID(int32(a.To), int32(t))
			off++
		}
	}
	f.predOff[n] = off
	// Forward topological order: Kahn with a FIFO over ascending initial
	// scan — bit-for-bit the order Graph.TopologicalOrder produces.
	indeg := make([]int32, n)
	for t := 0; t < n; t++ {
		indeg[t] = f.predOff[t+1] - f.predOff[t]
	}
	order := make([]TaskID, 0, n)
	head := 0
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			order = append(order, TaskID(t))
		}
	}
	for head < len(order) {
		t := order[head]
		head++
		for _, s := range f.SuccIDs(t) {
			indeg[s]--
			if indeg[s] == 0 {
				order = append(order, TaskID(s))
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	f.topo = order
	f.rtopo = make([]TaskID, n)
	for i, t := range order {
		f.rtopo[n-1-i] = t
		f.topoPos[t] = int32(i)
	}
	// Entry/exit sets, ascending ID like Graph.Entries/Exits.
	for t := 0; t < n; t++ {
		if f.InDegree(TaskID(t)) == 0 {
			f.entries = append(f.entries, TaskID(t))
		}
		if f.OutDegree(TaskID(t)) == 0 {
			f.exits = append(f.exits, TaskID(t))
		}
	}
	return f, nil
}

// edgeID returns the edge-ID (successor-CSR position) of edge src->dst.
func (f *Flat) edgeID(src, dst int32) int32 {
	for i := f.succOff[src]; i < f.succOff[src+1]; i++ {
		if f.succTo[i] == dst {
			return i
		}
	}
	panic("dag: adjacency asymmetry frozen") // unreachable on validated graphs
}

// NumTasks returns |V|.
func (f *Flat) NumTasks() int { return f.n }

// NumEdges returns |E|.
func (f *Flat) NumEdges() int { return f.e }

// OutDegree returns |Γ+(t)|.
func (f *Flat) OutDegree(t TaskID) int { return int(f.succOff[t+1] - f.succOff[t]) }

// InDegree returns |Γ−(t)|.
func (f *Flat) InDegree(t TaskID) int { return int(f.predOff[t+1] - f.predOff[t]) }

// SuccIDs returns the successor task IDs of t in edge-ID order. The slice
// aliases the frozen view and must not be modified.
func (f *Flat) SuccIDs(t TaskID) []int32 { return f.succTo[f.succOff[t]:f.succOff[t+1]] }

// SuccVolumes returns the volumes parallel to SuccIDs(t).
func (f *Flat) SuccVolumes(t TaskID) []float64 { return f.succVol[f.succOff[t]:f.succOff[t+1]] }

// SuccEdgeLo returns the edge ID of the first successor edge of t; successor
// slot i of t is edge SuccEdgeLo(t)+i.
func (f *Flat) SuccEdgeLo(t TaskID) int32 { return f.succOff[t] }

// PredIDs returns the predecessor task IDs of t, in the same order
// Graph.Preds(t) yields them. The slice aliases the frozen view.
func (f *Flat) PredIDs(t TaskID) []int32 { return f.predTo[f.predOff[t]:f.predOff[t+1]] }

// PredVolumes returns the volumes parallel to PredIDs(t).
func (f *Flat) PredVolumes(t TaskID) []float64 { return f.predVol[f.predOff[t]:f.predOff[t+1]] }

// PredEdgeIDs returns, parallel to PredIDs(t), the edge ID of each
// predecessor edge — the index into per-edge cost slices.
func (f *Flat) PredEdgeIDs(t TaskID) []int32 { return f.predEdge[f.predOff[t]:f.predOff[t+1]] }

// TopologicalOrder returns the memoized forward topological order. The slice
// is owned by the frozen view: callers must treat it as read-only.
func (f *Flat) TopologicalOrder() []TaskID { return f.topo }

// ReverseTopologicalOrder returns the memoized reverse topological order
// (every task after all of its successors), read-only.
func (f *Flat) ReverseTopologicalOrder() []TaskID { return f.rtopo }

// TopoPosition returns t's index in TopologicalOrder().
func (f *Flat) TopoPosition(t TaskID) int { return int(f.topoPos[t]) }

// Entries returns the entry tasks in ascending ID order, read-only.
func (f *Flat) Entries() []TaskID { return f.entries }

// Exits returns the exit tasks in ascending ID order, read-only.
func (f *Flat) Exits() []TaskID { return f.exits }

// BottomLevels computes the static bottom levels of Section 4.1 over
// precomputed cost slices: node[t] is the node cost of task t and edge[i] the
// communication cost of edge ID i. It writes into out when it has the
// capacity (callers recycling scratch pass their buffer; pass nil to
// allocate) and returns the result.
//
// The recurrence, the iteration order and the float operations are exactly
// Graph.BottomLevels', so for node[t] == nodeFn(t) and edge[i] == edgeFn(e_i)
// the two agree bit for bit — the property the flat port of every scheduler
// relies on. Unlike the closure form there is no per-call topological sort
// and no closure dispatch in the inner loop.
func (f *Flat) BottomLevels(node, edge []float64, out []float64) []float64 {
	f.checkCosts(node, edge)
	bl := growFloats(out, f.n)
	for _, t := range f.rtopo {
		lo, hi := f.succOff[t], f.succOff[t+1]
		if lo == hi {
			bl[t] = node[t]
			continue
		}
		best := 0.0
		for i := lo; i < hi; i++ {
			v := node[t] + edge[i] + bl[f.succTo[i]]
			if v > best {
				best = v
			}
		}
		bl[t] = best
	}
	return bl
}

// TopLevels computes the static top levels over precomputed cost slices,
// bit-for-bit equal to Graph.TopLevels under matching costs. See BottomLevels
// for the slice conventions.
func (f *Flat) TopLevels(node, edge []float64, out []float64) []float64 {
	f.checkCosts(node, edge)
	tl := growFloats(out, f.n)
	for _, t := range f.topo {
		lo, hi := f.predOff[t], f.predOff[t+1]
		best := 0.0
		for i := lo; i < hi; i++ {
			p := f.predTo[i]
			v := tl[p] + node[p] + edge[f.predEdge[i]]
			if v > best {
				best = v
			}
		}
		tl[t] = best
	}
	return tl
}

// checkCosts validates the cost-slice shapes once, outside the hot loops.
func (f *Flat) checkCosts(node, edge []float64) {
	if len(node) != f.n || len(edge) != f.e {
		panic("dag: cost slices do not match the frozen graph (node per task, edge per edge ID)")
	}
}

// growFloats is kernel.Grow for float64 (the kernel imports dag, so dag keeps
// its own copy).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
