package dag

import (
	"math/bits"

	"ftsched/internal/bipartite"
)

// Width returns ω(G), the maximum number of pairwise independent tasks (the
// maximum antichain). By Dilworth's theorem ω equals the minimum number of
// chains covering the DAG, computed as v − |maximum matching| on the
// bipartite graph of the transitive closure (Fulkerson's construction).
//
// The paper uses ω to bound the size of the free-task list α (|α| ≤ ω).
// This computation is O(v·e) for the closure plus the matching; it is meant
// for analysis and tests, not for the scheduler hot path.
func (g *Graph) Width() (int, error) {
	n := g.NumTasks()
	if n == 0 {
		return 0, nil
	}
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		return 0, err
	}
	// Bitset transitive closure: reach[t] = set of strict descendants of t.
	words := (n + 63) / 64
	reach := make([][]uint64, n)
	buf := make([]uint64, n*words)
	for t := 0; t < n; t++ {
		reach[t] = buf[t*words : (t+1)*words]
	}
	for _, t := range rev {
		row := reach[t]
		for _, a := range g.succs[t] {
			row[a.To/64] |= 1 << (uint(a.To) % 64)
			child := reach[a.To]
			for w := 0; w < words; w++ {
				row[w] |= child[w]
			}
		}
	}
	bg := bipartite.New(n, n)
	for t := 0; t < n; t++ {
		row := reach[t]
		for w := 0; w < words; w++ {
			for bb := row[w]; bb != 0; bb &= bb - 1 {
				j := w*64 + bits.TrailingZeros64(bb)
				if err := bg.AddEdge(t, j, 0); err != nil {
					return 0, err
				}
			}
		}
	}
	m := bg.MaximumMatching(nil)
	return n - m.Size(), nil
}
