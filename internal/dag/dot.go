package dag

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the graph in Graphviz DOT format, edge labels carrying
// the data volumes. Output is deterministic (tasks and successors sorted),
// so it is diff- and test-friendly.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", g.name); err != nil {
		return err
	}
	for t := 0; t < g.NumTasks(); t++ {
		if _, err := fmt.Fprintf(w, "  t%d;\n", t); err != nil {
			return err
		}
	}
	for t := 0; t < g.NumTasks(); t++ {
		for _, a := range g.SortedSuccs(TaskID(t)) {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d [label=\"%g\"];\n", t, a.To, a.Volume); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Stats summarizes structural properties of a DAG.
type Stats struct {
	Tasks, Edges     int
	Entries, Exits   int
	Levels           int
	Width            int
	MaxInDegree      int
	MaxOutDegree     int
	MeanDegree       float64
	TotalVolume      float64
	CriticalPathHops int
}

// ComputeStats derives the structural statistics of the graph.
func (g *Graph) ComputeStats() (*Stats, error) {
	st := &Stats{
		Tasks:       g.NumTasks(),
		Edges:       g.NumEdges(),
		Entries:     len(g.Entries()),
		Exits:       len(g.Exits()),
		TotalVolume: g.TotalVolume(),
	}
	if g.NumTasks() == 0 {
		return st, nil
	}
	_, levels, err := g.Levels()
	if err != nil {
		return nil, err
	}
	st.Levels = levels
	w, err := g.Width()
	if err != nil {
		return nil, err
	}
	st.Width = w
	for t := 0; t < g.NumTasks(); t++ {
		if d := g.InDegree(TaskID(t)); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
		if d := g.OutDegree(TaskID(t)); d > st.MaxOutDegree {
			st.MaxOutDegree = d
		}
	}
	st.MeanDegree = float64(g.NumEdges()) / float64(g.NumTasks())
	path, _, err := g.CriticalPath(UnitNodeCost, ZeroEdgeCost)
	if err != nil {
		return nil, err
	}
	st.CriticalPathHops = len(path)
	return st, nil
}

// String renders the stats compactly.
func (s *Stats) String() string {
	return fmt.Sprintf("v=%d e=%d entries=%d exits=%d levels=%d width=%d deg≤(%d,%d) mean-deg=%.2f",
		s.Tasks, s.Edges, s.Entries, s.Exits, s.Levels, s.Width, s.MaxInDegree, s.MaxOutDegree, s.MeanDegree)
}

// Subgraph returns the induced subgraph on the given task set, with tasks
// renumbered densely in ascending original-ID order. The second return value
// maps new IDs back to the original ones. Useful for extracting a failing
// region during debugging.
func (g *Graph) Subgraph(tasks []TaskID) (*Graph, []TaskID, error) {
	picked := append([]TaskID(nil), tasks...)
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	newID := make(map[TaskID]TaskID, len(picked))
	for i, t := range picked {
		if !g.Valid(t) {
			return nil, nil, fmt.Errorf("%w: %d", ErrNoSuchTask, t)
		}
		if _, dup := newID[t]; dup {
			return nil, nil, fmt.Errorf("dag: duplicate task %d in subgraph selection", t)
		}
		newID[t] = TaskID(i)
	}
	sub := NewWithTasks(g.name+"-sub", len(picked))
	for _, t := range picked {
		for _, a := range g.SortedSuccs(t) {
			if dst, ok := newID[a.To]; ok {
				sub.MustAddEdge(newID[t], dst, a.Volume)
			}
		}
	}
	return sub, picked, nil
}
