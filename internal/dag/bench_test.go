package dag

import "testing"

func benchDAG(b *testing.B, n int) *Graph {
	b.Helper()
	g := randomDAG(42, n)
	if g.NumTasks() < 2 {
		b.Fatal("degenerate graph")
	}
	return g
}

func BenchmarkTopologicalOrder(b *testing.B) {
	g := benchDAG(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopologicalOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBottomLevels(b *testing.B) {
	g := benchDAG(b, 40)
	node := func(TaskID) float64 { return 1 }
	edge := func(_, _ TaskID, v float64) float64 { return v }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BottomLevels(node, edge); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWidth(b *testing.B) {
	g := benchDAG(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Width(); err != nil {
			b.Fatal(err)
		}
	}
}
