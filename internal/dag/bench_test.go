package dag

import "testing"

func benchDAG(b *testing.B, n int) *Graph {
	b.Helper()
	g := randomDAG(42, n)
	if g.NumTasks() < 2 {
		b.Fatal("degenerate graph")
	}
	return g
}

func BenchmarkTopologicalOrder(b *testing.B) {
	g := benchDAG(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopologicalOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBottomLevels(b *testing.B) {
	g := benchDAG(b, 40)
	node := func(TaskID) float64 { return 1 }
	edge := func(_, _ TaskID, v float64) float64 { return v }
	b.Run("closure", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.BottomLevels(node, edge); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flat", func(b *testing.B) {
		f, err := g.Freeze()
		if err != nil {
			b.Fatal(err)
		}
		nodeS, edgeS := flatCosts(g, f, node, edge)
		out := make([]float64, f.NumTasks())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.BottomLevels(nodeS, edgeS, out)
		}
	})
}

// BenchmarkFreeze measures a cold CSR build (the memo is cleared every
// iteration, the way a mutation would).
func BenchmarkFreeze(b *testing.B) {
	g := benchDAG(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.flat.Store(nil)
		if _, err := g.Freeze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalBottomLevels contrasts repairing one dirty task's
// ancestor cone against recomputing every level from scratch, on a graph
// large enough for the cone to be a small fraction of the whole.
func BenchmarkIncrementalBottomLevels(b *testing.B) {
	// 100 layers of 4 tasks, fully connected layer to layer: 400 tasks,
	// 1584 edges, and a deep ancestor cone above the single dirty exit.
	const layers, width = 100, 4
	g := NewWithTasks("layered", layers*width)
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.MustAddEdge(TaskID(l*width+i), TaskID((l+1)*width+j), float64(1+i+j))
			}
		}
	}
	f, err := g.Freeze()
	if err != nil {
		b.Fatal(err)
	}
	node := make([]float64, f.NumTasks())
	edge := make([]float64, f.NumEdges())
	for i := range node {
		node[i] = 1 + float64(i%7)
	}
	for i := range edge {
		edge[i] = float64(i % 11)
	}
	// Dirty an entry task: its bottom level changes every iteration but the
	// repair stops as soon as predecessors are unaffected, so the updater
	// touches a small cone while the scratch pass walks all 400 tasks.
	dirty := []TaskID{0}
	b.Run("scratch", func(b *testing.B) {
		out := make([]float64, f.NumTasks())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			node[dirty[0]] = 1 + float64(i%5)
			f.BottomLevels(node, edge, out)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		bl := f.BottomLevels(node, edge, nil)
		u := f.NewBottomLevelUpdater()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			node[dirty[0]] = 1 + float64(i%5)
			u.Update(bl, node, edge, dirty)
		}
	})
}

func BenchmarkWidth(b *testing.B) {
	g := benchDAG(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Width(); err != nil {
			b.Fatal(err)
		}
	}
}
