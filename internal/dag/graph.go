package dag

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// TaskID identifies a task (node) of a Graph. IDs are dense integers assigned
// at AddTask time, starting from 0.
type TaskID int

// Adj is one directed adjacency: the far endpoint of an edge and the data
// volume V carried along it.
type Adj struct {
	To     TaskID
	Volume float64
}

// Edge is a fully specified directed edge, used for enumeration and
// serialization.
type Edge struct {
	Src, Dst TaskID
	Volume   float64
}

// Graph is a mutable weighted DAG. The zero value is an empty graph ready to
// use. Graph methods never mutate the graph except AddTask/AddEdge/SetVolume.
//
// Acyclicity is not enforced on every AddEdge (that would be quadratic);
// call Validate or TopologicalOrder to check it once construction is done.
type Graph struct {
	name  string
	succs [][]Adj
	preds [][]Adj
	e     int

	// flat memoizes the frozen CSR view (Freeze). Mutators clear it; the
	// atomic makes lazy freezing safe under concurrent readers. Note the
	// atomic makes Graph non-copyable as a value — use Clone.
	flat atomic.Pointer[Flat]

	// arena is the reusable decode storage carved by rebuild; nil until the
	// graph is first decoded into. See arena.go.
	arena *graphArena
}

// Common construction and lookup errors.
var (
	ErrCycle         = errors.New("dag: graph contains a cycle")
	ErrSelfLoop      = errors.New("dag: self loop")
	ErrDuplicateEdge = errors.New("dag: duplicate edge")
	ErrNoSuchTask    = errors.New("dag: no such task")
	ErrNoSuchEdge    = errors.New("dag: no such edge")
	ErrNegVolume     = errors.New("dag: negative edge volume")
)

// New returns an empty graph with the given human-readable name.
func New(name string) *Graph { return &Graph{name: name} }

// NewWithTasks returns a graph pre-populated with n tasks and no edges.
func NewWithTasks(name string, n int) *Graph {
	g := New(name)
	for i := 0; i < n; i++ {
		g.AddTask()
	}
	return g
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName renames the graph.
func (g *Graph) SetName(name string) { g.name = name }

// NumTasks returns v = |V|, the number of tasks.
func (g *Graph) NumTasks() int { return len(g.succs) }

// NumEdges returns e = |E|, the number of precedence edges.
func (g *Graph) NumEdges() int { return g.e }

// AddTask appends a new task and returns its ID.
func (g *Graph) AddTask() TaskID {
	g.flat.Store(nil)
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return TaskID(len(g.succs) - 1)
}

// Valid reports whether t is a task of g.
func (g *Graph) Valid(t TaskID) bool { return t >= 0 && int(t) < len(g.succs) }

// AddEdge inserts the precedence edge src -> dst carrying volume units of
// data. It rejects self loops, unknown endpoints, negative volumes and
// duplicate edges.
func (g *Graph) AddEdge(src, dst TaskID, volume float64) error {
	if !g.Valid(src) || !g.Valid(dst) {
		return fmt.Errorf("%w: edge (%d,%d)", ErrNoSuchTask, src, dst)
	}
	if src == dst {
		return fmt.Errorf("%w: task %d", ErrSelfLoop, src)
	}
	if volume < 0 {
		return fmt.Errorf("%w: edge (%d,%d) volume %g", ErrNegVolume, src, dst, volume)
	}
	for _, a := range g.succs[src] {
		if a.To == dst {
			return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, src, dst)
		}
	}
	g.flat.Store(nil)
	g.succs[src] = append(g.succs[src], Adj{To: dst, Volume: volume})
	g.preds[dst] = append(g.preds[dst], Adj{To: src, Volume: volume})
	g.e++
	return nil
}

// MustAddEdge is AddEdge but panics on error; intended for tests and
// generators building graphs from trusted structure.
func (g *Graph) MustAddEdge(src, dst TaskID, volume float64) {
	if err := g.AddEdge(src, dst, volume); err != nil {
		panic(err)
	}
}

// Succs returns the immediate successors Γ+(t). The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Succs(t TaskID) []Adj { return g.succs[t] }

// Preds returns the immediate predecessors Γ−(t). The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Preds(t TaskID) []Adj { return g.preds[t] }

// OutDegree returns |Γ+(t)|.
func (g *Graph) OutDegree(t TaskID) int { return len(g.succs[t]) }

// InDegree returns |Γ−(t)|.
func (g *Graph) InDegree(t TaskID) int { return len(g.preds[t]) }

// Volume returns V(src,dst), the data volume on edge src->dst.
func (g *Graph) Volume(src, dst TaskID) (float64, error) {
	if !g.Valid(src) || !g.Valid(dst) {
		return 0, fmt.Errorf("%w: edge (%d,%d)", ErrNoSuchTask, src, dst)
	}
	for _, a := range g.succs[src] {
		if a.To == dst {
			return a.Volume, nil
		}
	}
	return 0, fmt.Errorf("%w: (%d,%d)", ErrNoSuchEdge, src, dst)
}

// SetVolume updates V(src,dst) on an existing edge.
func (g *Graph) SetVolume(src, dst TaskID, volume float64) error {
	if volume < 0 {
		return fmt.Errorf("%w: edge (%d,%d) volume %g", ErrNegVolume, src, dst, volume)
	}
	for i, a := range g.succs[src] {
		if a.To == dst {
			g.flat.Store(nil)
			g.succs[src][i].Volume = volume
			for j, b := range g.preds[dst] {
				if b.To == src {
					g.preds[dst][j].Volume = volume
				}
			}
			return nil
		}
	}
	return fmt.Errorf("%w: (%d,%d)", ErrNoSuchEdge, src, dst)
}

// ScaleVolumes multiplies every edge volume by factor (factor must be >= 0).
// Used by the workload generator to hit a target granularity.
func (g *Graph) ScaleVolumes(factor float64) error {
	if factor < 0 {
		return fmt.Errorf("%w: scale factor %g", ErrNegVolume, factor)
	}
	g.flat.Store(nil)
	for t := range g.succs {
		for i := range g.succs[t] {
			g.succs[t][i].Volume *= factor
		}
		for i := range g.preds[t] {
			g.preds[t][i].Volume *= factor
		}
	}
	return nil
}

// Edges enumerates all edges in (src, then insertion) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.e)
	for t := range g.succs {
		for _, a := range g.succs[t] {
			out = append(out, Edge{Src: TaskID(t), Dst: a.To, Volume: a.Volume})
		}
	}
	return out
}

// Entries returns the entry tasks (no predecessors) in increasing ID order.
func (g *Graph) Entries() []TaskID {
	var out []TaskID
	for t := range g.preds {
		if len(g.preds[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// Exits returns the exit tasks (no successors) in increasing ID order.
func (g *Graph) Exits() []TaskID {
	var out []TaskID
	for t := range g.succs {
		if len(g.succs[t]) == 0 {
			out = append(out, TaskID(t))
		}
	}
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{name: g.name, e: g.e}
	c.succs = make([][]Adj, len(g.succs))
	c.preds = make([][]Adj, len(g.preds))
	for i := range g.succs {
		c.succs[i] = append([]Adj(nil), g.succs[i]...)
		c.preds[i] = append([]Adj(nil), g.preds[i]...)
	}
	return c
}

// Validate checks structural invariants: adjacency symmetry, edge count and
// acyclicity. It returns nil for a well-formed DAG.
func (g *Graph) Validate() error {
	fwd := 0
	for t := range g.succs {
		fwd += len(g.succs[t])
		for _, a := range g.succs[t] {
			if !g.Valid(a.To) {
				return fmt.Errorf("%w: successor %d of %d", ErrNoSuchTask, a.To, t)
			}
			found := false
			for _, b := range g.preds[a.To] {
				if b.To == TaskID(t) {
					if b.Volume != a.Volume {
						return fmt.Errorf("dag: volume mismatch on edge (%d,%d): %g vs %g", t, a.To, a.Volume, b.Volume)
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dag: missing reverse adjacency for edge (%d,%d)", t, a.To)
			}
		}
	}
	if fwd != g.e {
		return fmt.Errorf("dag: edge count %d does not match adjacency size %d", g.e, fwd)
	}
	if _, err := g.TopologicalOrder(); err != nil {
		return err
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("dag %q: %d tasks, %d edges", g.name, g.NumTasks(), g.NumEdges())
}

// SortedSuccs returns Γ+(t) sorted by target ID. It allocates; intended for
// deterministic output paths (serialization, printing), not hot loops.
func (g *Graph) SortedSuccs(t TaskID) []Adj {
	out := append([]Adj(nil), g.succs[t]...)
	sort.Slice(out, func(i, j int) bool { return out[i].To < out[j].To })
	return out
}
