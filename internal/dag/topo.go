package dag

// TopologicalOrder returns a topological ordering of the tasks using Kahn's
// algorithm, or ErrCycle if the graph is not acyclic. The order is
// deterministic: among tasks simultaneously ready it prefers smaller IDs
// (a simple FIFO over increasing insertion keeps this property because tasks
// become ready in ascending scan order).
func (g *Graph) TopologicalOrder() ([]TaskID, error) {
	n := g.NumTasks()
	indeg := make([]int, n)
	for t := 0; t < n; t++ {
		indeg[t] = len(g.preds[t])
	}
	queue := make([]TaskID, 0, n)
	for t := 0; t < n; t++ {
		if indeg[t] == 0 {
			queue = append(queue, TaskID(t))
		}
	}
	order := make([]TaskID, 0, n)
	for len(queue) > 0 {
		t := queue[0]
		queue = queue[1:]
		order = append(order, t)
		for _, a := range g.succs[t] {
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// ReverseTopologicalOrder returns a reverse topological ordering (every task
// appears after all of its successors).
func (g *Graph) ReverseTopologicalOrder() ([]TaskID, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, nil
}

// IsTopologicalOrder reports whether order is a valid topological ordering of
// g (a permutation of all tasks in which every edge goes forward).
func (g *Graph) IsTopologicalOrder(order []TaskID) bool {
	if len(order) != g.NumTasks() {
		return false
	}
	pos := make([]int, g.NumTasks())
	seen := make([]bool, g.NumTasks())
	for i, t := range order {
		if !g.Valid(t) || seen[t] {
			return false
		}
		seen[t] = true
		pos[t] = i
	}
	for t := range g.succs {
		for _, a := range g.succs[t] {
			if pos[t] >= pos[a.To] {
				return false
			}
		}
	}
	return true
}

// Levels returns, for each task, its depth: entry tasks have level 0 and
// every other task has level 1 + max over predecessors. The second return
// value is the number of levels (max level + 1, or 0 for an empty graph).
func (g *Graph) Levels() ([]int, int, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, 0, err
	}
	levels := make([]int, g.NumTasks())
	maxLevel := -1
	for _, t := range order {
		l := 0
		for _, p := range g.preds[t] {
			if levels[p.To]+1 > l {
				l = levels[p.To] + 1
			}
		}
		levels[t] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	return levels, maxLevel + 1, nil
}

// Descendants returns the set of tasks reachable from t (excluding t itself)
// as a boolean slice indexed by TaskID.
func (g *Graph) Descendants(t TaskID) []bool {
	reach := make([]bool, g.NumTasks())
	stack := []TaskID{t}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.succs[u] {
			if !reach[a.To] {
				reach[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return reach
}

// Ancestors returns the set of tasks from which t is reachable (excluding t)
// as a boolean slice indexed by TaskID.
func (g *Graph) Ancestors(t TaskID) []bool {
	reach := make([]bool, g.NumTasks())
	stack := []TaskID{t}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.preds[u] {
			if !reach[a.To] {
				reach[a.To] = true
				stack = append(stack, a.To)
			}
		}
	}
	return reach
}
