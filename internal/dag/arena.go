package dag

import (
	"fmt"
	"sync"
)

// graphArena is the reusable backing storage a Graph decodes into: one flat
// Adj block carved into per-task successor and predecessor rows, plus the
// integer scratch of the validation passes. A service decoding thousands of
// graph-shaped requests reuses one arena per pooled request object, so a
// warm decode performs no graph-shaped heap allocations — the sync.Pool
// discipline of internal/kernel applied to the wire boundary.
type graphArena struct {
	adj   []Adj   // backing for all succ rows, then all pred rows
	ints  []int32 // degree counts and Kahn scratch (2n for degrees, n for indegrees, n for the queue)
	succs [][]Adj // staged row headers, assigned to the graph on success
	preds [][]Adj
}

// growAdj is kernel.Grow for the arena's types (the kernel imports dag, so
// dag keeps local copies).
func growAdj(buf []Adj, n int) []Adj {
	if cap(buf) < n {
		return make([]Adj, n)
	}
	return buf[:n]
}

func growInts(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growRows(buf [][]Adj, n int) [][]Adj {
	if cap(buf) < n {
		return make([][]Adj, n)
	}
	return buf[:n]
}

// rebuild replaces g's contents with the decoded (name, tasks, edges),
// reusing g's arena storage. It enforces the same invariants construction
// via AddTask/AddEdge + Validate does: dense endpoints, no self loops, no
// negative volumes, no duplicate edges, acyclic. On error the receiver is
// reset to the empty graph (its previous contents may alias the arena being
// rebuilt, so they cannot be preserved).
//
// Successor rows are carved with their exact capacity, so a later AddEdge on
// a rebuilt graph appends copy-on-grow and never clobbers a neighbor row.
func (g *Graph) rebuild(name string, tasks int, edges []edgeJSON) error {
	if tasks < 0 {
		return fmt.Errorf("dag: negative task count %d", tasks)
	}
	g.flat.Store(nil)
	g.name, g.succs, g.preds, g.e = name, nil, nil, 0
	if g.arena == nil {
		g.arena = new(graphArena)
	}
	a := g.arena
	n, e := tasks, len(edges)

	// Pass 1: validate endpoints and count degrees.
	deg := growInts(a.ints, 4*n)
	a.ints = deg
	outdeg, indeg := deg[:n], deg[n:2*n]
	clear(outdeg)
	clear(indeg)
	for _, ed := range edges {
		if ed.Src < 0 || int(ed.Src) >= n || ed.Dst < 0 || int(ed.Dst) >= n {
			return fmt.Errorf("%w: edge (%d,%d)", ErrNoSuchTask, ed.Src, ed.Dst)
		}
		if ed.Src == ed.Dst {
			return fmt.Errorf("%w: task %d", ErrSelfLoop, ed.Src)
		}
		if ed.Volume < 0 {
			return fmt.Errorf("%w: edge (%d,%d) volume %g", ErrNegVolume, ed.Src, ed.Dst, ed.Volume)
		}
		outdeg[ed.Src]++
		indeg[ed.Dst]++
	}

	// Carve empty rows with exact capacities from one block.
	block := growAdj(a.adj, 2*e)
	a.adj = block
	succs := growRows(a.succs, n)
	preds := growRows(a.preds, n)
	a.succs, a.preds = succs, preds
	off := 0
	for t := 0; t < n; t++ {
		succs[t] = block[off : off : off+int(outdeg[t])]
		off += int(outdeg[t])
	}
	for t := 0; t < n; t++ {
		preds[t] = block[off : off : off+int(indeg[t])]
		off += int(indeg[t])
	}

	// Pass 2: fill adjacency in edge order (the order AddEdge calls would
	// have run in), rejecting duplicates with the same row scan AddEdge uses.
	for _, ed := range edges {
		row := succs[ed.Src]
		for _, x := range row {
			if x.To == ed.Dst {
				return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, ed.Src, ed.Dst)
			}
		}
		succs[ed.Src] = append(row, Adj{To: ed.Dst, Volume: ed.Volume})
		preds[ed.Dst] = append(preds[ed.Dst], Adj{To: ed.Src, Volume: ed.Volume})
	}

	// Pass 3: acyclicity via Kahn over the arena scratch.
	kahn, queue := deg[2*n:3*n], deg[3*n:4*n]
	for t := 0; t < n; t++ {
		kahn[t] = indeg[t]
	}
	queue = queue[:0]
	for t := 0; t < n; t++ {
		if kahn[t] == 0 {
			queue = append(queue, int32(t))
		}
	}
	seen := 0
	for head := 0; head < len(queue); head++ {
		t := queue[head]
		seen++
		for _, sa := range succs[t] {
			kahn[sa.To]--
			if kahn[sa.To] == 0 {
				queue = append(queue, int32(sa.To))
			}
		}
	}
	if seen != n {
		return ErrCycle
	}

	g.succs, g.preds, g.e = succs, preds, e
	return nil
}

// graphScratchPool recycles the intermediate wire structure of a graph
// decode; json.Unmarshal appends into the pooled Edges backing instead of
// growing a fresh slice per request.
var graphScratchPool = sync.Pool{New: func() any { return new(graphJSON) }}
