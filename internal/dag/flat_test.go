package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// flatCosts materializes closure costs into the flat per-task / per-edge-ID
// slices, using the same closure calls the legacy traversal makes.
func flatCosts(g *Graph, f *Flat, node NodeCost, edge EdgeCost) (nodeS, edgeS []float64) {
	nodeS = make([]float64, f.NumTasks())
	edgeS = make([]float64, f.NumEdges())
	for t := 0; t < f.NumTasks(); t++ {
		nodeS[t] = node(TaskID(t))
		lo := f.SuccEdgeLo(TaskID(t))
		succs := f.SuccIDs(TaskID(t))
		vols := f.SuccVolumes(TaskID(t))
		for i := range succs {
			edgeS[lo+int32(i)] = edge(TaskID(t), TaskID(succs[i]), vols[i])
		}
	}
	return nodeS, edgeS
}

// TestFlatMatchesLegacy is the byte-identity property over a seeded grid:
// the frozen traversals (topological orders, bottom and top levels) agree
// bit for bit with the closure-based Graph traversals on random DAGs.
func TestFlatMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 40)
		fl, err := g.Freeze()
		if err != nil {
			return false
		}
		// Adjacency round-trip, both sides, both orders.
		if fl.NumTasks() != g.NumTasks() || fl.NumEdges() != g.NumEdges() {
			return false
		}
		for tsk := 0; tsk < g.NumTasks(); tsk++ {
			tid := TaskID(tsk)
			succs, vols := fl.SuccIDs(tid), fl.SuccVolumes(tid)
			gs := g.Succs(tid)
			if len(succs) != len(gs) || fl.OutDegree(tid) != len(gs) {
				return false
			}
			for i, a := range gs {
				if TaskID(succs[i]) != a.To || vols[i] != a.Volume {
					return false
				}
			}
			preds, pvols := fl.PredIDs(tid), fl.PredVolumes(tid)
			gp := g.Preds(tid)
			if len(preds) != len(gp) || fl.InDegree(tid) != len(gp) {
				return false
			}
			for i, a := range gp {
				if TaskID(preds[i]) != a.To || pvols[i] != a.Volume {
					return false
				}
			}
			// Pred edge IDs point back at the matching successor slot.
			for i, eid := range fl.PredEdgeIDs(tid) {
				if TaskID(fl.succTo[eid]) != tid || fl.predVol[fl.predOff[tid]+int32(i)] != fl.succVol[eid] {
					return false
				}
			}
		}
		// Topological order is bit-identical to the legacy Kahn pass, and the
		// reverse order plus positions are consistent with it.
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		ft := fl.TopologicalOrder()
		if len(ft) != len(order) {
			return false
		}
		for i := range order {
			if ft[i] != order[i] || fl.TopoPosition(order[i]) != i {
				return false
			}
			if fl.ReverseTopologicalOrder()[len(order)-1-i] != order[i] {
				return false
			}
		}
		// Levels: exact float equality against the closure computation.
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		node := func(TaskID) float64 { return 1 + rng.Float64() }
		nodeVals := make([]float64, g.NumTasks())
		for i := range nodeVals {
			nodeVals[i] = node(TaskID(i))
		}
		nodeFn := func(t TaskID) float64 { return nodeVals[t] }
		edgeFn := func(_, _ TaskID, v float64) float64 { return v * 0.25 }
		wantBL, err := g.BottomLevels(nodeFn, edgeFn)
		if err != nil {
			return false
		}
		wantTL, err := g.TopLevels(nodeFn, edgeFn)
		if err != nil {
			return false
		}
		nodeS, edgeS := flatCosts(g, fl, nodeFn, edgeFn)
		gotBL := fl.BottomLevels(nodeS, edgeS, nil)
		gotTL := fl.TopLevels(nodeS, edgeS, nil)
		for i := range wantBL {
			if gotBL[i] != wantBL[i] || gotTL[i] != wantTL[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFreezeMemoized verifies the frozen view is built once per graph shape
// and invalidated by every mutation path.
func TestFreezeMemoized(t *testing.T) {
	g := randomDAG(7, 20)
	f1, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("Freeze rebuilt an unmutated graph")
	}
	mutations := []struct {
		name string
		do   func(g *Graph)
	}{
		{"AddTask", func(g *Graph) { g.AddTask() }},
		{"AddEdge", func(g *Graph) {
			g.MustAddEdge(TaskID(g.NumTasks()-1), TaskID(g.NumTasks()-2), 1) // reversed: new task has no edges
		}},
		{"SetVolume", func(g *Graph) {
			e := g.Edges()[0]
			if err := g.SetVolume(e.Src, e.Dst, e.Volume+1); err != nil {
				t.Fatal(err)
			}
		}},
		{"ScaleVolumes", func(g *Graph) { g.ScaleVolumes(2) }},
	}
	prev := f1
	for _, m := range mutations {
		m.do(g)
		next, err := g.Freeze()
		if err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if next == prev {
			t.Fatalf("%s did not invalidate the frozen view", m.name)
		}
		prev = next
	}
	// The rebuilt view reflects the mutations.
	if prev.NumTasks() != g.NumTasks() || prev.NumEdges() != g.NumEdges() {
		t.Fatalf("frozen view is stale: %d/%d tasks, %d/%d edges",
			prev.NumTasks(), g.NumTasks(), prev.NumEdges(), g.NumEdges())
	}
}

// TestFreezeCycle verifies freezing reports a cycle instead of succeeding.
func TestFreezeCycle(t *testing.T) {
	g := NewWithTasks("cyc", 3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 0, 1)
	if _, err := g.Freeze(); err != ErrCycle {
		t.Fatalf("Freeze on a cycle: %v, want ErrCycle", err)
	}
}

// TestIncrementalMatchesScratch is the incremental-exactness property:
// repairing bottom levels after random cost perturbations of random dirty
// sets agrees bit for bit with a from-scratch recomputation.
func TestIncrementalMatchesScratch(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 40)
		fl, err := g.Freeze()
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0xd1b7))
		node := make([]float64, fl.NumTasks())
		edge := make([]float64, fl.NumEdges())
		for i := range node {
			node[i] = 1 + rng.Float64()
		}
		for i := range edge {
			edge[i] = rng.Float64() * 10
		}
		bl := fl.BottomLevels(node, edge, nil)
		u := fl.NewBottomLevelUpdater()
		for round := 0; round < 8; round++ {
			// Perturb a random dirty set: node costs and outgoing edges.
			k := 1 + rng.Intn(4)
			dirty := make([]TaskID, 0, k)
			for i := 0; i < k; i++ {
				d := TaskID(rng.Intn(fl.NumTasks()))
				dirty = append(dirty, d)
				node[d] = 1 + rng.Float64()
				lo, hi := fl.SuccEdgeLo(d), fl.SuccEdgeLo(d)+int32(fl.OutDegree(d))
				for e := lo; e < hi; e++ {
					if rng.Intn(2) == 0 {
						edge[e] = rng.Float64() * 10
					}
				}
			}
			u.Update(bl, node, edge, dirty)
			want := fl.BottomLevels(node, edge, nil)
			for i := range want {
				if bl[i] != want[i] {
					return false
				}
			}
		}
		// A clean Update (no cost change) touches only the dirty set itself.
		if n := u.Update(bl, node, edge, []TaskID{0}); n > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// FuzzFreeze feeds arbitrary JSON to the arena-backed decoder; any graph it
// accepts must freeze (acyclicity was validated on decode) and the frozen
// view must round-trip the adjacency exactly.
func FuzzFreeze(f *testing.F) {
	f.Add([]byte(`{"name":"x","tasks":3,"edges":[{"src":0,"dst":1,"volume":2},{"src":1,"dst":2,"volume":1}]}`))
	f.Add([]byte(`{"name":"","tasks":0,"edges":[]}`))
	f.Add([]byte(`{"name":"d","tasks":4,"edges":[{"src":0,"dst":3,"volume":0.5},{"src":0,"dst":1,"volume":1},{"src":1,"dst":3,"volume":4}]}`))
	if data, err := randomDAG(11, 30).MarshalJSON(); err == nil {
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var g Graph
		if err := g.UnmarshalJSON(data); err != nil {
			return // invalid input is the decoder's concern, not Freeze's
		}
		fl, err := g.Freeze()
		if err != nil {
			t.Fatalf("decoded graph does not freeze: %v", err)
		}
		if fl.NumTasks() != g.NumTasks() || fl.NumEdges() != g.NumEdges() {
			t.Fatalf("size mismatch: flat %d/%d, graph %d/%d",
				fl.NumTasks(), fl.NumEdges(), g.NumTasks(), g.NumEdges())
		}
		for tsk := 0; tsk < g.NumTasks(); tsk++ {
			tid := TaskID(tsk)
			succs, vols := fl.SuccIDs(tid), fl.SuccVolumes(tid)
			gs := g.Succs(tid)
			if len(succs) != len(gs) {
				t.Fatalf("task %d: %d flat succs, %d graph succs", tsk, len(succs), len(gs))
			}
			for i, a := range gs {
				if TaskID(succs[i]) != a.To || vols[i] != a.Volume {
					t.Fatalf("task %d succ %d: flat (%d,%g), graph (%d,%g)",
						tsk, i, succs[i], vols[i], a.To, a.Volume)
				}
			}
			preds, pvols := fl.PredIDs(tid), fl.PredVolumes(tid)
			gp := g.Preds(tid)
			if len(preds) != len(gp) {
				t.Fatalf("task %d: %d flat preds, %d graph preds", tsk, len(preds), len(gp))
			}
			for i, a := range gp {
				if TaskID(preds[i]) != a.To || pvols[i] != a.Volume {
					t.Fatalf("task %d pred %d: flat (%d,%g), graph (%d,%g)",
						tsk, i, preds[i], pvols[i], a.To, a.Volume)
				}
			}
		}
		if !g.IsTopologicalOrder(fl.TopologicalOrder()) {
			t.Fatal("frozen topological order is not a topological order")
		}
	})
}
