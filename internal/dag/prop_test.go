package dag

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random DAG from a seed: forward edges only, so it is
// acyclic by construction.
func randomDAG(seed int64, maxN int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	g := NewWithTasks("prop", n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.3 {
				g.MustAddEdge(TaskID(i), TaskID(j), float64(1+rng.Intn(100)))
			}
		}
	}
	return g
}

func TestPropTopologicalOrderAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 40)
		order, err := g.TopologicalOrder()
		if err != nil {
			return false
		}
		return g.IsTopologicalOrder(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropValidateAcceptsGeneratedGraphs(t *testing.T) {
	f := func(seed int64) bool {
		return randomDAG(seed, 40).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropWidthBounds(t *testing.T) {
	// 1 <= width <= v, and width >= number of entry tasks (entries form an
	// antichain), width >= number of exits.
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		w, err := g.Width()
		if err != nil {
			return false
		}
		if w < 1 || w > g.NumTasks() {
			return false
		}
		return w >= len(g.Entries()) && w >= len(g.Exits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropBottomLevelDominatesSuccessors(t *testing.T) {
	// bl(t) >= node(t) + edge(t,s) + bl(s) is an equality for the max
	// successor and >= for the rest; and bl(t) >= node(t) always.
	f := func(seed int64) bool {
		g := randomDAG(seed, 30)
		node := func(TaskID) float64 { return 3 }
		edge := func(_, _ TaskID, v float64) float64 { return v }
		bl, err := g.BottomLevels(node, edge)
		if err != nil {
			return false
		}
		for tsk := 0; tsk < g.NumTasks(); tsk++ {
			tid := TaskID(tsk)
			if bl[tid] < node(tid) {
				return false
			}
			for _, a := range g.Succs(tid) {
				if bl[tid] < node(tid)+edge(tid, a.To, a.Volume)+bl[a.To]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPropCriticalPathIsPathAndLongest(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 25)
		node := UnitNodeCost
		edge := func(_, _ TaskID, v float64) float64 { return v }
		path, length, err := g.CriticalPath(node, edge)
		if err != nil || len(path) == 0 {
			return false
		}
		// Consecutive path entries must be edges, and the path length must
		// re-add to the reported value.
		sum := node(path[0])
		for i := 1; i < len(path); i++ {
			v, err := g.Volume(path[i-1], path[i])
			if err != nil {
				return false
			}
			sum += edge(path[i-1], path[i], v) + node(path[i])
		}
		if diff := sum - length; diff > 1e-9 || diff < -1e-9 {
			return false
		}
		// No bottom level may exceed the critical length.
		bl, err := g.BottomLevels(node, edge)
		if err != nil {
			return false
		}
		tl, err := g.TopLevels(node, edge)
		if err != nil {
			return false
		}
		for tsk := range bl {
			if tl[tsk]+bl[tsk] > length+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 20)
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		var back Graph
		if err := back.UnmarshalJSON(data); err != nil {
			return false
		}
		if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			v, err := back.Volume(e.Src, e.Dst)
			if err != nil || v != e.Volume {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
