package dag

// BottomLevelUpdater performs incremental bottom-level recomputation on a
// frozen graph: given bottom levels that were exact before a set of tasks
// changed their node cost or an outgoing edge cost, Update repairs bl by
// walking only the affected ancestor cone instead of re-running the full
// O(V+E) pass — the primitive the tuner's ε-ladder probes and online
// re-scheduling (recompute priorities for the surviving suffix) both need.
//
// The updater owns reusable scratch (a worklist heap and an in-heap bitmap);
// create one per goroutine and reuse it across Update calls. It is not safe
// for concurrent use.
type BottomLevelUpdater struct {
	f *Flat

	heap   []int32 // binary max-heap of task IDs ordered by topo position
	inHeap []bool  // task -> currently queued
}

// NewBottomLevelUpdater returns an updater bound to the frozen view.
func (f *Flat) NewBottomLevelUpdater() *BottomLevelUpdater {
	return &BottomLevelUpdater{
		f:      f,
		heap:   make([]int32, 0, 64),
		inHeap: make([]bool, f.n),
	}
}

// Update repairs bl in place after the node costs of the dirty tasks or the
// costs of their outgoing edges changed (node and edge are the *current*
// cost slices, in the conventions of Flat.BottomLevels). Every dirty task is
// recomputed; ancestors are recomputed only while values keep changing, so
// the work is O(cone · (log cone + deg)) where cone is the affected ancestor
// set — o(V+E) for small dirty sets on wide graphs. It returns the number of
// tasks recomputed.
//
// Exactness: tasks are processed in strictly decreasing topological position,
// so every successor's bottom level is final when a task recomputes, and the
// recomputation applies the same max recurrence in the same operand order as
// a from-scratch Flat.BottomLevels — repaired and recomputed levels agree bit
// for bit (property-tested).
func (u *BottomLevelUpdater) Update(bl, node, edge []float64, dirty []TaskID) int {
	f := u.f
	f.checkCosts(node, edge)
	if len(bl) != f.n {
		panic("dag: bottom-level slice does not match the frozen graph")
	}
	for _, t := range dirty {
		u.push(int32(t))
	}
	touched := 0
	for len(u.heap) > 0 {
		t := u.pop()
		touched++
		lo, hi := f.succOff[t], f.succOff[t+1]
		var nb float64
		if lo == hi {
			nb = node[t]
		} else {
			for i := lo; i < hi; i++ {
				v := node[t] + edge[i] + bl[f.succTo[i]]
				if v > nb {
					nb = v
				}
			}
		}
		if nb == bl[t] {
			continue
		}
		bl[t] = nb
		for _, p := range f.PredIDs(TaskID(t)) {
			u.push(p)
		}
	}
	return touched
}

// push queues t unless it is already queued.
func (u *BottomLevelUpdater) push(t int32) {
	if u.inHeap[t] {
		return
	}
	u.inHeap[t] = true
	u.heap = append(u.heap, t)
	pos := u.f.topoPos
	i := len(u.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pos[u.heap[parent]] >= pos[u.heap[i]] {
			break
		}
		u.heap[parent], u.heap[i] = u.heap[i], u.heap[parent]
		i = parent
	}
}

// pop removes and returns the queued task with the largest topo position.
func (u *BottomLevelUpdater) pop() int32 {
	pos := u.f.topoPos
	top := u.heap[0]
	last := len(u.heap) - 1
	u.heap[0] = u.heap[last]
	u.heap = u.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && pos[u.heap[l]] > pos[u.heap[big]] {
			big = l
		}
		if r < last && pos[u.heap[r]] > pos[u.heap[big]] {
			big = r
		}
		if big == i {
			break
		}
		u.heap[i], u.heap[big] = u.heap[big], u.heap[i]
		i = big
	}
	u.inHeap[top] = false
	return top
}
