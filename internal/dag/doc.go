// Package dag implements the weighted directed acyclic task-graph model used
// throughout the scheduler: tasks (nodes), precedence constraints (edges) and
// the data volume V(ti,tj) attached to every edge.
//
// The graph lives in two representations:
//
//   - Graph is the mutable build/wire form. Tasks are dense integer IDs in
//     [0, NumTasks); successor and predecessor adjacency rows are both
//     maintained so either direction walks in O(degree). JSON decoding
//     rebuilds into a per-graph arena, so a pooled graph decodes repeated
//     same-shaped payloads without adjacency allocations.
//
//   - Flat is the frozen compute form, obtained from Graph.Freeze: a CSR
//     (compressed sparse row) view with int32 successor/predecessor arrays,
//     contiguous edge volumes in edge-ID order, and the topological order,
//     its reverse, per-task positions and entry/exit lists memoized at
//     freeze time. Freeze is memoized on the graph and invalidated by every
//     mutation; schedulers and the simulator walk Flat on their hot paths.
//
// Longest-path traversals exist in both forms: the closure-based
// Graph.BottomLevels/TopLevels, and the allocation-free
// Flat.BottomLevels/TopLevels over precomputed per-task and per-edge-ID cost
// slices — bit-for-bit equal to the closure form. Flat.NewBottomLevelUpdater
// repairs bottom levels incrementally after cost perturbations, touching
// only the ancestor cone that actually changes.
//
// Beyond the core types the package provides width computation, DOT export
// for visualization, and a validating JSON wire format (graph.json) shared
// by the daggen, ftsched and ftserved tools.
package dag
