// Package dag implements the weighted directed acyclic task-graph model used
// throughout the scheduler: tasks (nodes), precedence constraints (edges) and
// the data volume V(ti,tj) attached to every edge.
//
// The representation is index-based: tasks are identified by dense integer
// IDs in [0, NumTasks). Both successor and predecessor adjacency lists are
// maintained so that schedulers can walk the graph in either direction in
// O(degree).
//
// Beyond the core Graph type the package provides topological ordering,
// longest-path and width computations, DOT export for visualization, and a
// validating JSON wire format (graph.json) shared by the daggen, ftsched and
// ftserved tools.
package dag
