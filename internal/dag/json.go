package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation: a task count plus an edge list.
// Task labels are implicit (dense IDs), matching the paper's anonymous random
// graphs.
type graphJSON struct {
	Name  string     `json:"name"`
	Tasks int        `json:"tasks"`
	Edges []edgeJSON `json:"edges"`
}

type edgeJSON struct {
	Src    TaskID  `json:"src"`
	Dst    TaskID  `json:"dst"`
	Volume float64 `json:"volume"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Name: g.name, Tasks: g.NumTasks(), Edges: make([]edgeJSON, 0, g.e)}
	for t := 0; t < g.NumTasks(); t++ {
		for _, a := range g.SortedSuccs(TaskID(t)) {
			out.Edges = append(out.Edges, edgeJSON{Src: TaskID(t), Dst: a.To, Volume: a.Volume})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded graph.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var in graphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("dag: decoding graph: %w", err)
	}
	if in.Tasks < 0 {
		return fmt.Errorf("dag: negative task count %d", in.Tasks)
	}
	ng := NewWithTasks(in.Name, in.Tasks)
	for _, e := range in.Edges {
		if err := ng.AddEdge(e.Src, e.Dst, e.Volume); err != nil {
			return err
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// WriteTo serializes g as indented JSON.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// Read decodes a graph from JSON produced by WriteTo / MarshalJSON.
func Read(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
