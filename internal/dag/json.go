package dag

import (
	"encoding/json"
	"fmt"
	"io"
)

// graphJSON is the on-disk representation: a task count plus an edge list.
// Task labels are implicit (dense IDs), matching the paper's anonymous random
// graphs.
type graphJSON struct {
	Name  string     `json:"name"`
	Tasks int        `json:"tasks"`
	Edges []edgeJSON `json:"edges"`
}

type edgeJSON struct {
	Src    TaskID  `json:"src"`
	Dst    TaskID  `json:"dst"`
	Volume float64 `json:"volume"`
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{Name: g.name, Tasks: g.NumTasks(), Edges: make([]edgeJSON, 0, g.e)}
	for t := 0; t < g.NumTasks(); t++ {
		for _, a := range g.SortedSuccs(TaskID(t)) {
			out.Edges = append(out.Edges, edgeJSON{Src: TaskID(t), Dst: a.To, Volume: a.Volume})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded graph
// (dense endpoints, no self loops or duplicate edges, non-negative volumes,
// acyclic — the same invariants AddEdge + Validate enforce).
//
// Decoding reuses the receiver's arena storage: a pooled request object that
// is decoded into repeatedly (the serving layer's door) performs no
// graph-shaped heap allocations once warm. On error the receiver is reset to
// the empty graph; its previous contents are not preserved.
func (g *Graph) UnmarshalJSON(data []byte) error {
	in := graphScratchPool.Get().(*graphJSON)
	defer func() {
		in.Name, in.Tasks, in.Edges = "", 0, in.Edges[:0]
		graphScratchPool.Put(in)
	}()
	in.Name, in.Tasks, in.Edges = "", 0, in.Edges[:0]
	if err := json.Unmarshal(data, in); err != nil {
		return fmt.Errorf("dag: decoding graph: %w", err)
	}
	return g.rebuild(in.Name, in.Tasks, in.Edges)
}

// WriteTo serializes g as indented JSON.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// Read decodes a graph from JSON produced by WriteTo / MarshalJSON.
func Read(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, err
	}
	return &g, nil
}
