package dag

import "fmt"

// NodeCost gives the execution-cost contribution of a task when measuring
// path lengths, and EdgeCost the communication contribution of an edge.
// Schedulers plug in platform-derived averages (E̅(t), W̅(ti,tj)); analyses
// can plug unit costs to obtain hop counts.
type (
	NodeCost func(t TaskID) float64
	EdgeCost func(src, dst TaskID, volume float64) float64
)

// UnitNodeCost counts 1 per task.
func UnitNodeCost(TaskID) float64 { return 1 }

// ZeroEdgeCost ignores communications.
func ZeroEdgeCost(TaskID, TaskID, float64) float64 { return 0 }

// BottomLevels computes, for every task, the static bottom level bℓ(t) of the
// paper (Section 4.1):
//
//	bℓ(t) = node(t)                                  if Γ+(t) = ∅
//	bℓ(t) = max over t* in Γ+(t) of
//	          node(t) + edge(t,t*) + bℓ(t*)          otherwise
//
// i.e. the length of the longest path from t to an exit task, counting t's
// own cost and the communications along the path.
func (g *Graph) BottomLevels(node NodeCost, edge EdgeCost) ([]float64, error) {
	rev, err := g.ReverseTopologicalOrder()
	if err != nil {
		return nil, err
	}
	bl := make([]float64, g.NumTasks())
	for _, t := range rev {
		if len(g.succs[t]) == 0 {
			bl[t] = node(t)
			continue
		}
		best := 0.0
		for _, a := range g.succs[t] {
			v := node(t) + edge(t, a.To, a.Volume) + bl[a.To]
			if v > best {
				best = v
			}
		}
		bl[t] = best
	}
	return bl, nil
}

// TopLevels computes the static top level of every task: the length of the
// longest path from an entry task to t, excluding t's own cost:
//
//	tℓ(t) = 0                                        if Γ−(t) = ∅
//	tℓ(t) = max over t* in Γ−(t) of
//	          tℓ(t*) + node(t*) + edge(t*,t)         otherwise
func (g *Graph) TopLevels(node NodeCost, edge EdgeCost) ([]float64, error) {
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	tl := make([]float64, g.NumTasks())
	for _, t := range order {
		best := 0.0
		for _, a := range g.preds[t] {
			v := tl[a.To] + node(a.To) + edge(a.To, t, a.Volume)
			if v > best {
				best = v
			}
		}
		tl[t] = best
	}
	return tl, nil
}

// CriticalPath returns the tasks on a longest entry-to-exit path under the
// given cost functions, together with its length. Ties are broken toward
// smaller task IDs, so the result is deterministic.
func (g *Graph) CriticalPath(node NodeCost, edge EdgeCost) ([]TaskID, float64, error) {
	if g.NumTasks() == 0 {
		return nil, 0, nil
	}
	bl, err := g.BottomLevels(node, edge)
	if err != nil {
		return nil, 0, err
	}
	// The critical path starts at the entry task with the largest bottom level.
	start := TaskID(-1)
	best := -1.0
	for _, t := range g.Entries() {
		if bl[t] > best {
			best = bl[t]
			start = t
		}
	}
	if start < 0 {
		return nil, 0, fmt.Errorf("dag: no entry task in %q", g.name)
	}
	path := []TaskID{start}
	cur := start
	for len(g.succs[cur]) > 0 {
		var next TaskID = -1
		bestNext := -1.0
		for _, a := range g.SortedSuccs(cur) {
			v := edge(cur, a.To, a.Volume) + bl[a.To]
			if v > bestNext {
				bestNext = v
				next = a.To
			}
		}
		path = append(path, next)
		cur = next
	}
	return path, best, nil
}

// LongestPathLength returns the critical-path length only.
func (g *Graph) LongestPathLength(node NodeCost, edge EdgeCost) (float64, error) {
	_, l, err := g.CriticalPath(node, edge)
	return l, err
}

// TotalVolume returns the sum of V over all edges.
func (g *Graph) TotalVolume() float64 {
	sum := 0.0
	for t := range g.succs {
		for _, a := range g.succs[t] {
			sum += a.Volume
		}
	}
	return sum
}
