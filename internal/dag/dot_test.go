package dag

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`digraph "diamond"`,
		"t0 -> t1 [label=\"10\"]",
		"t2 -> t3 [label=\"40\"]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := g.WriteDOT(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("DOT output not deterministic")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildDiamond(t)
	st, err := g.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 4 || st.Edges != 4 {
		t.Errorf("tasks/edges %d/%d", st.Tasks, st.Edges)
	}
	if st.Entries != 1 || st.Exits != 1 {
		t.Errorf("entries/exits %d/%d", st.Entries, st.Exits)
	}
	if st.Levels != 3 || st.Width != 2 {
		t.Errorf("levels/width %d/%d", st.Levels, st.Width)
	}
	if st.MaxInDegree != 2 || st.MaxOutDegree != 2 {
		t.Errorf("degrees %d/%d", st.MaxInDegree, st.MaxOutDegree)
	}
	if st.TotalVolume != 100 {
		t.Errorf("volume %g", st.TotalVolume)
	}
	if st.CriticalPathHops != 3 {
		t.Errorf("hops %d", st.CriticalPathHops)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
	empty := New("e")
	est, err := empty.ComputeStats()
	if err != nil || est.Tasks != 0 {
		t.Errorf("empty stats: %v %v", est, err)
	}
}

func TestSubgraph(t *testing.T) {
	g := buildDiamond(t)
	sub, orig, err := g.Subgraph([]TaskID{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumTasks() != 3 {
		t.Fatalf("tasks = %d", sub.NumTasks())
	}
	// Edges 0->1 and 1->3 survive (as 0->1, 1->2); 0->2, 2->3 dropped.
	if sub.NumEdges() != 2 {
		t.Errorf("edges = %d", sub.NumEdges())
	}
	if v, err := sub.Volume(0, 1); err != nil || v != 10 {
		t.Errorf("volume(0,1) = %g, %v", v, err)
	}
	if v, err := sub.Volume(1, 2); err != nil || v != 30 {
		t.Errorf("volume(1,2) = %g, %v", v, err)
	}
	if orig[2] != 3 {
		t.Errorf("orig mapping %v", orig)
	}
	if _, _, err := g.Subgraph([]TaskID{0, 0}); err == nil {
		t.Error("duplicate selection accepted")
	}
	if _, _, err := g.Subgraph([]TaskID{9}); err == nil {
		t.Error("invalid task accepted")
	}
}
