package dag_test

import (
	"fmt"
	"os"

	"ftsched/internal/dag"
)

// ExampleGraph builds the four-task diamond and inspects its structure.
func ExampleGraph() {
	g := dag.NewWithTasks("diamond", 4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 20)
	g.MustAddEdge(1, 3, 30)
	g.MustAddEdge(2, 3, 40)

	order, _ := g.TopologicalOrder()
	fmt.Println("topological order:", order)
	w, _ := g.Width()
	fmt.Println("width:", w)
	fmt.Println("entries:", g.Entries(), "exits:", g.Exits())
	// Output:
	// topological order: [0 1 2 3]
	// width: 2
	// entries: [0] exits: [3]
}

// ExampleGraph_BottomLevels computes the static bottom levels used as task
// priorities by the schedulers (unit node costs, volumes as edge costs).
func ExampleGraph_BottomLevels() {
	g := dag.NewWithTasks("diamond", 4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(0, 2, 20)
	g.MustAddEdge(1, 3, 30)
	g.MustAddEdge(2, 3, 40)

	bl, _ := g.BottomLevels(
		func(dag.TaskID) float64 { return 1 },
		func(_, _ dag.TaskID, v float64) float64 { return v },
	)
	fmt.Println(bl)
	// Output:
	// [63 32 42 1]
}

// ExampleGraph_WriteDOT emits Graphviz DOT for visual inspection.
func ExampleGraph_WriteDOT() {
	g := dag.NewWithTasks("tiny", 2)
	g.MustAddEdge(0, 1, 5)
	_ = g.WriteDOT(os.Stdout)
	// Output:
	// digraph "tiny" {
	//   rankdir=TB;
	//   node [shape=circle];
	//   t0;
	//   t1;
	//   t0 -> t1 [label="5"];
	// }
}
