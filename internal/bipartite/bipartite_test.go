package bipartite

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaximumMatchingSmall(t *testing.T) {
	// Classic 3x3 with a unique perfect matching.
	g := New(3, 3)
	mustAdd(t, g, 0, 0, 1)
	mustAdd(t, g, 0, 1, 1)
	mustAdd(t, g, 1, 1, 1)
	mustAdd(t, g, 2, 2, 1)
	m := g.MaximumMatching(nil)
	if m.Size() != 3 {
		t.Fatalf("matching size %d, want 3", m.Size())
	}
	if !m.IsPerfect() {
		t.Error("IsPerfect = false")
	}
	// Unique: 0-0, 1-1, 2-2.
	want := Matching{0, 1, 2}
	for i := range want {
		if m[i] != want[i] {
			t.Errorf("m[%d] = %d, want %d", i, m[i], want[i])
		}
	}
}

func mustAdd(t *testing.T, g *Graph, l, r int, w float64) {
	t.Helper()
	if err := g.AddEdge(l, r, w); err != nil {
		t.Fatal(err)
	}
}

func TestNoPerfectMatching(t *testing.T) {
	// Two left vertices competing for one right vertex.
	g := New(2, 2)
	mustAdd(t, g, 0, 0, 1)
	mustAdd(t, g, 1, 0, 1)
	m, ok := g.PerfectMatching()
	if ok {
		t.Error("perfect matching reported where none exists")
	}
	if m.Size() != 1 {
		t.Errorf("maximum matching size %d, want 1", m.Size())
	}
	if _, _, ok := g.BottleneckPerfectMatching(); ok {
		t.Error("bottleneck matching reported where none exists")
	}
}

func TestAddEdgeRange(t *testing.T) {
	g := New(2, 2)
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative left accepted")
	}
	if err := g.AddEdge(0, 2, 1); err == nil {
		t.Error("out-of-range right accepted")
	}
	if g.NumLeft() != 2 || g.NumRight() != 2 || g.NumEdges() != 0 {
		t.Error("dimensions wrong")
	}
}

func TestBottleneckMatchingMinimizesMaxWeight(t *testing.T) {
	// Complete 2x2: identity matching has max weight 10; the swap has 5.
	g := New(2, 2)
	mustAdd(t, g, 0, 0, 10)
	mustAdd(t, g, 0, 1, 5)
	mustAdd(t, g, 1, 0, 4)
	mustAdd(t, g, 1, 1, 10)
	m, bottleneck, ok := g.BottleneckPerfectMatching()
	if !ok {
		t.Fatal("no matching found")
	}
	if bottleneck != 5 {
		t.Errorf("bottleneck = %g, want 5", bottleneck)
	}
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("matching %v, want the swap", m)
	}
}

func TestBottleneckOnEmptyLeft(t *testing.T) {
	g := New(0, 3)
	m, b, ok := g.BottleneckPerfectMatching()
	if !ok || b != 0 || len(m) != 0 {
		t.Errorf("empty left: %v %g %v", m, b, ok)
	}
}

func TestGreedyOrderedMatching(t *testing.T) {
	g := New(2, 2)
	mustAdd(t, g, 0, 0, 1) // edge 0
	mustAdd(t, g, 0, 1, 2) // edge 1
	mustAdd(t, g, 1, 0, 3) // edge 2
	mustAdd(t, g, 1, 1, 4) // edge 3
	// Order by weight: greedy takes 0-0 then 1-1.
	m, ok := g.GreedyOrderedMatching([]int{0, 1, 2, 3})
	if !ok {
		t.Fatal("greedy failed")
	}
	if m[0] != 0 || m[1] != 1 {
		t.Errorf("matching %v", m)
	}
	// Adversarial order that dead-ends: edge 1 (0-1) then edge 3 (1-1)
	// cannot be taken, but edge 2 (1-0) completes it.
	m, ok = g.GreedyOrderedMatching([]int{1, 3, 2, 0})
	if !ok {
		t.Fatal("greedy failed on reordering")
	}
	if m[0] != 1 || m[1] != 0 {
		t.Errorf("matching %v", m)
	}
}

func TestGreedyCanDeadEnd(t *testing.T) {
	// Left 0 connects to both rights; left 1 only to right 0. Taking 0-0
	// first starves left 1.
	g := New(2, 2)
	mustAdd(t, g, 0, 0, 1) // edge 0
	mustAdd(t, g, 0, 1, 1) // edge 1
	mustAdd(t, g, 1, 0, 1) // edge 2
	if _, ok := g.GreedyOrderedMatching([]int{0, 2, 1}); ok {
		t.Error("greedy should dead-end taking 0-0 first")
	}
}

// randomBipartite builds a graph with a guaranteed perfect matching (the
// identity) plus random extra edges.
func randomBipartite(seed int64, n int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, i, rng.Float64()*100) //nolint:errcheck // in-range by construction
		for j := 0; j < n; j++ {
			if j != i && rng.Float64() < 0.4 {
				g.AddEdge(i, j, rng.Float64()*100) //nolint:errcheck
			}
		}
	}
	return g
}

func TestPropMatchingIsValidAndMaximal(t *testing.T) {
	f := func(seed int64) bool {
		n := 1 + int(seed%13+13)%13
		g := randomBipartite(seed, n)
		m := g.MaximumMatching(nil)
		// Validity: matched pairs are edges, rights used at most once.
		usedR := map[int]bool{}
		for l, r := range m {
			if r < 0 {
				continue
			}
			if usedR[r] {
				return false
			}
			usedR[r] = true
			found := false
			for _, e := range g.Edges() {
				if e.L == l && e.R == r {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// The identity edges guarantee a perfect matching exists, and
		// Hopcroft-Karp must find one.
		return m.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropBottleneckIsOptimal(t *testing.T) {
	// The bottleneck value must (a) admit a perfect matching using only
	// edges <= bottleneck and (b) be the smallest edge weight with that
	// property (checked by verifying no perfect matching exists strictly
	// below it).
	f := func(seed int64) bool {
		n := 2 + int(seed%7+7)%7
		g := randomBipartite(seed, n)
		m, b, ok := g.BottleneckPerfectMatching()
		if !ok || m.Size() != n {
			return false
		}
		for l, r := range m {
			// Find the weight actually used; at least one edge l-r must
			// have weight <= b.
			okEdge := false
			for _, e := range g.Edges() {
				if e.L == l && e.R == r && e.W <= b+1e-12 {
					okEdge = true
					break
				}
			}
			if !okEdge {
				return false
			}
		}
		below := g.MaximumMatching(func(e WeightedEdge) bool { return e.W < b })
		return below.Size() < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
