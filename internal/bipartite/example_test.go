package bipartite_test

import (
	"fmt"

	"ftsched/internal/bipartite"
)

// ExampleGraph_BottleneckPerfectMatching finds the assignment minimizing the
// worst edge weight — the exact method of Section 4.2 of the paper.
func ExampleGraph_BottleneckPerfectMatching() {
	g := bipartite.New(2, 2)
	_ = g.AddEdge(0, 0, 10) // expensive
	_ = g.AddEdge(0, 1, 5)
	_ = g.AddEdge(1, 0, 4)
	_ = g.AddEdge(1, 1, 10) // expensive

	m, bottleneck, _ := g.BottleneckPerfectMatching()
	fmt.Println("matching:", m, "bottleneck:", bottleneck)
	// Output:
	// matching: [1 0] bottleneck: 5
}

// ExampleGraph_GreedyOrderedMatching applies the paper's greedy policy:
// edges are offered in a caller-chosen order and kept when both endpoints
// are still free.
func ExampleGraph_GreedyOrderedMatching() {
	g := bipartite.New(2, 2)
	_ = g.AddEdge(0, 0, 1) // edge 0
	_ = g.AddEdge(0, 1, 2) // edge 1
	_ = g.AddEdge(1, 0, 3) // edge 2
	_ = g.AddEdge(1, 1, 4) // edge 3

	m, ok := g.GreedyOrderedMatching([]int{0, 3, 1, 2})
	fmt.Println(m, ok)
	// Output:
	// [0 1] true
}
