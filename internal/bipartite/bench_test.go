package bipartite

import (
	"math/rand"
	"testing"
)

// benchGraph mirrors the MC-FTSA replica graphs: (ε+1)×(ε+1) with forced
// internal edges plus a dense remainder, at the paper's largest ε.
func benchGraph(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.AddEdge(i, j, rng.Float64()*100) //nolint:errcheck
		}
	}
	return g
}

func BenchmarkHopcroftKarp(b *testing.B) {
	g := benchGraph(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := g.MaximumMatching(nil); m.Size() != 64 {
			b.Fatal("incomplete matching")
		}
	}
}

func BenchmarkBottleneckMatching(b *testing.B) {
	g := benchGraph(16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := g.BottleneckPerfectMatching(); !ok {
			b.Fatal("no matching")
		}
	}
}

func BenchmarkGreedyMatching(b *testing.B) {
	g := benchGraph(16, 3)
	order := make([]int, g.NumEdges())
	for i := range order {
		order[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GreedyOrderedMatching(order)
	}
}
