// Package bipartite implements bipartite graphs and the matching algorithms
// the scheduler relies on: Hopcroft–Karp maximum matching, perfect-matching
// tests, bottleneck-optimal perfect matching (binary search over edge
// weights, Section 4.2 of the paper) and the greedy robust matching used by
// MC-FTSA.
//
// Left and right vertices are integers in [0, NumLeft) and [0, NumRight).
// MC-FTSA builds one such graph per precedence edge — left nodes are the
// predecessor's replicas, right nodes the successor's — and the extracted
// perfect matching is what cuts the edge's message count from (ε+1)² to
// ε+1 while preserving the fault-tolerance guarantee.
package bipartite
