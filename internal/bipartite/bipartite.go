package bipartite

import (
	"fmt"
	"math"
	"sort"
)

// WeightedEdge joins left vertex L to right vertex R with weight W.
type WeightedEdge struct {
	L, R int
	W    float64
}

// Graph is a bipartite graph with weighted edges. The zero value is unusable;
// call New.
type Graph struct {
	nLeft, nRight int
	adj           [][]int // adj[l] lists edge indices incident to left vertex l
	edges         []WeightedEdge
}

// New returns an empty bipartite graph with the given part sizes.
func New(nLeft, nRight int) *Graph {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("bipartite: negative part size (%d,%d)", nLeft, nRight))
	}
	return &Graph{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// Reset reinitializes g in place for the given part sizes, keeping the edge
// and adjacency storage of previous uses — the sync.Pool-friendly
// counterpart of New for callers (MC-FTSA's per-edge matchings) that build
// many small graphs back to back.
func (g *Graph) Reset(nLeft, nRight int) {
	if nLeft < 0 || nRight < 0 {
		panic(fmt.Sprintf("bipartite: negative part size (%d,%d)", nLeft, nRight))
	}
	g.nLeft, g.nRight = nLeft, nRight
	if cap(g.adj) < nLeft {
		g.adj = make([][]int, nLeft)
	}
	g.adj = g.adj[:nLeft]
	for l := range g.adj {
		g.adj[l] = g.adj[l][:0]
	}
	g.edges = g.edges[:0]
}

// NumLeft returns the size of the left part.
func (g *Graph) NumLeft() int { return g.nLeft }

// NumRight returns the size of the right part.
func (g *Graph) NumRight() int { return g.nRight }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge inserts an edge l—r with weight w. Parallel edges are allowed
// (callers in this codebase never create them, but the algorithms tolerate
// them).
func (g *Graph) AddEdge(l, r int, w float64) error {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		return fmt.Errorf("bipartite: edge (%d,%d) out of range (%d,%d)", l, r, g.nLeft, g.nRight)
	}
	g.edges = append(g.edges, WeightedEdge{L: l, R: r, W: w})
	g.adj[l] = append(g.adj[l], len(g.edges)-1)
	return nil
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []WeightedEdge { return append([]WeightedEdge(nil), g.edges...) }

// Edge returns the i-th edge.
func (g *Graph) Edge(i int) WeightedEdge { return g.edges[i] }

// Matching maps each left vertex to its matched right vertex, or -1.
type Matching []int

// Size returns the number of matched left vertices.
func (m Matching) Size() int {
	n := 0
	for _, r := range m {
		if r >= 0 {
			n++
		}
	}
	return n
}

// IsPerfect reports whether every left vertex is matched.
func (m Matching) IsPerfect() bool {
	for _, r := range m {
		if r < 0 {
			return false
		}
	}
	return len(m) > 0 || true
}

// MaximumMatching computes a maximum-cardinality matching with Hopcroft–Karp
// in O(E·sqrt(V)). Only edges for which keep returns true participate; pass
// nil to use every edge.
func (g *Graph) MaximumMatching(keep func(WeightedEdge) bool) Matching {
	const inf = math.MaxInt32

	matchL := make([]int, g.nLeft)
	matchR := make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}

	dist := make([]int, g.nLeft)
	queue := make([]int, 0, g.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, ei := range g.adj[l] {
				e := g.edges[ei]
				if keep != nil && !keep(e) {
					continue
				}
				next := matchR[e.R]
				if next == -1 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, ei := range g.adj[l] {
			e := g.edges[ei]
			if keep != nil && !keep(e) {
				continue
			}
			next := matchR[e.R]
			if next == -1 || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = e.R
				matchR[e.R] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	for bfs() {
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == -1 {
				dfs(l)
			}
		}
	}
	return matchL
}

// PerfectMatching returns a matching saturating every left vertex, or false
// if none exists.
func (g *Graph) PerfectMatching() (Matching, bool) {
	m := g.MaximumMatching(nil)
	return m, m.Size() == g.nLeft
}

// BottleneckPerfectMatching returns a perfect matching (saturating the left
// part) minimizing the largest edge weight used, via binary search over the
// sorted set of distinct edge weights — the polynomial method proposed in
// Section 4.2 of the paper. The second return value is the bottleneck value.
// ok is false when no perfect matching exists at all.
func (g *Graph) BottleneckPerfectMatching() (m Matching, bottleneck float64, ok bool) {
	if g.nLeft == 0 {
		return Matching{}, 0, true
	}
	weights := make([]float64, 0, len(g.edges))
	for _, e := range g.edges {
		weights = append(weights, e.W)
	}
	sort.Float64s(weights)
	// Deduplicate.
	uniq := weights[:0]
	for i, w := range weights {
		if i == 0 || w != uniq[len(uniq)-1] {
			uniq = append(uniq, w)
		}
	}
	if len(uniq) == 0 {
		return nil, 0, false
	}
	// Is there a perfect matching at all?
	if m := g.MaximumMatching(nil); m.Size() != g.nLeft {
		return nil, 0, false
	}
	lo, hi := 0, len(uniq)-1
	var best Matching
	bestW := uniq[hi]
	for lo <= hi {
		mid := (lo + hi) / 2
		t := uniq[mid]
		m := g.MaximumMatching(func(e WeightedEdge) bool { return e.W <= t })
		if m.Size() == g.nLeft {
			best, bestW = m, t
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, bestW, true
}
