package bipartite

// GreedyOrderedMatching scans edge indices in the given order and keeps an
// edge exactly when it saturates a previously unmatched left vertex and a
// previously unmatched right vertex. This is the greedy edge-selection rule
// of Section 4.2: the caller encodes the policy (internal communications
// first, then non-decreasing weight) in the order.
//
// The returned matching may be imperfect if the greedy order dead-ends; the
// boolean reports whether every left vertex was saturated. For the replica
// graphs built by MC-FTSA the greedy order always completes (forced internal
// edges are vertex-disjoint and the residual graph is complete bipartite),
// but callers should still check ok.
func (g *Graph) GreedyOrderedMatching(order []int) (Matching, bool) {
	return g.GreedyOrderedMatchingInto(order, nil, nil)
}

// GreedyOrderedMatchingInto is GreedyOrderedMatching writing into caller
// scratch: matchL and usedR are reused when they have the capacity (their
// contents need not be initialized) and reallocated otherwise. MC-FTSA runs
// one matching per precedence edge of every task — the scratch variant keeps
// that loop allocation-free.
func (g *Graph) GreedyOrderedMatchingInto(order []int, matchL Matching, usedR []bool) (Matching, bool) {
	if cap(matchL) < g.nLeft {
		matchL = make(Matching, g.nLeft)
	}
	matchL = matchL[:g.nLeft]
	for i := range matchL {
		matchL[i] = -1
	}
	if cap(usedR) < g.nRight {
		usedR = make([]bool, g.nRight)
	}
	usedR = usedR[:g.nRight]
	clear(usedR)
	for _, ei := range order {
		e := g.edges[ei]
		if matchL[e.L] == -1 && !usedR[e.R] {
			matchL[e.L] = e.R
			usedR[e.R] = true
		}
	}
	return matchL, matchL.Size() == g.nLeft
}
