// Package trace defines the recorded failure-trace format: the JSONL log of
// processor crashes that lets users evaluate schedules against their own
// incident history instead of a synthetic failure law.
//
// A trace is a sequence of events, one JSON object per line:
//
//	{"proc":3,"time":1250.5}
//	{"proc":4,"time":1250.5,"group":"rack-2"}
//	{"proc":9,"time":8100}
//
// proc is the zero-based processor id, time the crash time in schedule time
// units (0 means dead from the start), and group an optional correlation tag:
// events sharing a non-empty group crashed together (one incident — a rack
// power feed, a bad rollout) and are kept together when a trace is bootstrap-
// resampled across Monte-Carlo trials. Blank lines and lines starting with
// '#' are skipped, so traces can carry comments.
//
// The package deliberately knows nothing about schedules or simulation; the
// sim package's trace scenario kind consumes []Event. Note the distinction
// from sim.Trace, which is an *execution* event log produced by a replay —
// this package describes failures fed *into* one.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Event is one recorded processor crash.
type Event struct {
	// Proc is the zero-based processor id that crashed.
	Proc int `json:"proc"`
	// Time is the crash time in schedule time units; 0 means the
	// processor was dead before the schedule started.
	Time float64 `json:"time"`
	// Group optionally names the incident this crash belongs to; events
	// sharing a non-empty group are resampled as one unit.
	Group string `json:"group,omitempty"`
}

// maxEvents bounds a parsed trace. Real incident logs are short (one event
// per crashed processor); the bound exists so a malformed or hostile input
// cannot balloon memory before validation rejects it.
const maxEvents = 1 << 20

// Parse reads a JSONL failure trace, validating every event. Errors carry
// the 1-based line number. Blank lines and '#' comments are skipped; a trace
// with no events at all is an error (there is nothing to replay).
func Parse(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("trace: line %d: trailing data after event", line)
		}
		if err := checkEvent(ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		if len(events) >= maxEvents {
			return nil, fmt.Errorf("trace: line %d: more than %d events", line, maxEvents)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: no events")
	}
	return events, nil
}

// ParseFile reads a JSONL failure trace from a file.
func ParseFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	defer f.Close()
	return Parse(f)
}

func checkEvent(ev Event) error {
	if ev.Proc < 0 {
		return fmt.Errorf("negative processor id %d", ev.Proc)
	}
	if math.IsNaN(ev.Time) || math.IsInf(ev.Time, 0) {
		return fmt.Errorf("non-finite crash time")
	}
	if ev.Time < 0 {
		return fmt.Errorf("negative crash time %g", ev.Time)
	}
	return nil
}

// Check validates a slice of events the way Parse does — the entry point for
// traces that arrive pre-decoded (e.g. embedded in a JSON request body).
func Check(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("trace: no events")
	}
	if len(events) > maxEvents {
		return fmt.Errorf("trace: more than %d events", maxEvents)
	}
	for i, ev := range events {
		if err := checkEvent(ev); err != nil {
			return fmt.Errorf("trace: event %d: %v", i, err)
		}
	}
	return nil
}

// Write renders events in the canonical JSONL form Parse reads, one event
// per line. Parse(Write(events)) round-trips exactly.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: %v", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: %v", err)
	}
	return nil
}

// MaxProc returns the largest processor id in events (-1 when empty) — the
// minimum platform size a trace needs is MaxProc+1.
func MaxProc(events []Event) int {
	max := -1
	for _, ev := range events {
		if ev.Proc > max {
			max = ev.Proc
		}
	}
	return max
}

// Incidents groups events into correlated incidents: events sharing a
// non-empty Group form one incident (in first-appearance order), every
// ungrouped event is its own. Bootstrap resampling draws whole incidents so
// correlated crashes stay correlated.
func Incidents(events []Event) [][]Event {
	var out [][]Event
	byGroup := make(map[string]int)
	for _, ev := range events {
		if ev.Group == "" {
			out = append(out, []Event{ev})
			continue
		}
		i, ok := byGroup[ev.Group]
		if !ok {
			i = len(out)
			byGroup[ev.Group] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], ev)
	}
	return out
}

// FromCSV converts a comma-separated incident log — lines of
// "proc,time[,group]", with an optional header row — into trace events. It
// is the converter for the common spreadsheet/SQL export shape; the result
// passes Check.
func FromCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		fields := strings.Split(raw, ",")
		if line == 1 && looksLikeHeader(fields) {
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("trace: csv line %d: want proc,time[,group], got %d fields", line, len(fields))
		}
		var ev Event
		if _, err := fmt.Sscanf(strings.TrimSpace(fields[0]), "%d", &ev.Proc); err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad processor id %q", line, fields[0])
		}
		if _, err := fmt.Sscanf(strings.TrimSpace(fields[1]), "%g", &ev.Time); err != nil {
			return nil, fmt.Errorf("trace: csv line %d: bad crash time %q", line, fields[1])
		}
		if len(fields) == 3 {
			ev.Group = strings.TrimSpace(fields[2])
		}
		if err := checkEvent(ev); err != nil {
			return nil, fmt.Errorf("trace: csv line %d: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("trace: no events")
	}
	return events, nil
}

func looksLikeHeader(fields []string) bool {
	for _, f := range fields {
		switch strings.ToLower(strings.TrimSpace(f)) {
		case "proc", "processor", "time", "crash_time", "group", "incident":
			return true
		}
	}
	return false
}

// Sorted returns a copy of events ordered by (time, proc, group) — the
// canonical order for display and diffing. Parse preserves file order, which
// resampling depends on, so sorting is explicit and never implicit.
func Sorted(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Proc != out[j].Proc {
			return out[i].Proc < out[j].Proc
		}
		return out[i].Group < out[j].Group
	})
	return out
}
