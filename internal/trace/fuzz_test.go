package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzParseTrace asserts the parser's contract on arbitrary input: it never
// panics, it only ever returns validated events, and a trace it accepts
// round-trips exactly through Write.
func FuzzParseTrace(f *testing.F) {
	f.Add("{\"proc\":3,\"time\":1250.5}\n{\"proc\":4,\"time\":1250.5,\"group\":\"rack-2\"}\n")
	f.Add("# comment\n\n{\"proc\":0,\"time\":0}\n")
	f.Add("{\"proc\":-1,\"time\":2}\n")
	f.Add("{\"proc\":1,\"time\":1e308}\n{\"proc\":1,\"time\":-0}\n")
	f.Add("{\"proc\":1,\"time\":2,\"host\":\"x\"}\n")
	f.Add("[{\"proc\":1,\"time\":2}]")
	f.Add("{\"proc\":1,\"time\":null}")
	f.Fuzz(func(t *testing.T, in string) {
		events, err := Parse(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := Check(events); err != nil {
			t.Fatalf("Parse returned an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, events); err != nil {
			t.Fatalf("Write failed on parsed events: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("re-parse of written trace failed: %v", err)
		}
		if !reflect.DeepEqual(again, events) {
			t.Fatalf("round trip changed events: %+v -> %+v", events, again)
		}
	})
}
