package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseFixture(t *testing.T) {
	events, err := ParseFile("testdata/rack_outage.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Proc: 2, Time: 0},
		{Proc: 4, Time: 1250.5, Group: "rack-1"},
		{Proc: 5, Time: 1250.5, Group: "rack-1"},
		{Proc: 6, Time: 1251, Group: "rack-1"},
		{Proc: 9, Time: 8100},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed %+v, want %+v", events, want)
	}
}

func TestParseRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":         "",
		"comments only": "# nothing here\n\n",
		"bad json":      `{"proc":1,"time":`,
		"unknown field": `{"proc":1,"time":2,"host":"a"}`,
		"negative proc": `{"proc":-1,"time":2}`,
		"negative time": `{"proc":1,"time":-2}`,
		"trailing data": `{"proc":1,"time":2}{"proc":2,"time":3}`,
		"array form":    `[{"proc":1,"time":2}]`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(in)); err == nil {
				t.Fatalf("Parse accepted %q", in)
			}
		})
	}
}

func TestParseErrorCarriesLine(t *testing.T) {
	in := "{\"proc\":1,\"time\":2}\n# fine so far\n{\"proc\":-3,\"time\":2}\n"
	_, err := Parse(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %v does not name line 3", err)
	}
}

func TestWriteRoundTrip(t *testing.T) {
	events := []Event{
		{Proc: 0, Time: 0},
		{Proc: 3, Time: 17.25, Group: "az-b"},
		{Proc: 3, Time: 99, Group: "az-b"},
	}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	again, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, events) {
		t.Fatalf("round trip changed events: %+v -> %+v", events, again)
	}
}

func TestIncidents(t *testing.T) {
	events := []Event{
		{Proc: 1, Time: 5},
		{Proc: 2, Time: 9, Group: "r"},
		{Proc: 3, Time: 7},
		{Proc: 4, Time: 9, Group: "r"},
		{Proc: 5, Time: 20, Group: "s"},
	}
	inc := Incidents(events)
	if len(inc) != 4 {
		t.Fatalf("got %d incidents, want 4", len(inc))
	}
	if len(inc[1]) != 2 || inc[1][0].Proc != 2 || inc[1][1].Proc != 4 {
		t.Fatalf("group incident wrong: %+v", inc[1])
	}
	if len(inc[3]) != 1 || inc[3][0].Proc != 5 {
		t.Fatalf("singleton group incident wrong: %+v", inc[3])
	}
}

func TestFromCSV(t *testing.T) {
	in := "proc,time,group\n2,0,\n4,1250.5,rack-1\n# comment\n9,8100\n"
	events, err := FromCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Proc: 2, Time: 0},
		{Proc: 4, Time: 1250.5, Group: "rack-1"},
		{Proc: 9, Time: 8100},
	}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("parsed %+v, want %+v", events, want)
	}
}

func TestFromCSVRejects(t *testing.T) {
	for name, in := range map[string]string{
		"empty":       "",
		"bad proc":    "x,1\n",
		"bad time":    "1,x\n",
		"one field":   "3\n",
		"four fields": "1,2,g,extra\n",
		"neg time":    "1,-4\n",
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := FromCSV(strings.NewReader(in)); err == nil {
				t.Fatalf("FromCSV accepted %q", in)
			}
		})
	}
}

func TestMaxProc(t *testing.T) {
	if got := MaxProc(nil); got != -1 {
		t.Fatalf("MaxProc(nil) = %d, want -1", got)
	}
	if got := MaxProc([]Event{{Proc: 2}, {Proc: 7}, {Proc: 1}}); got != 7 {
		t.Fatalf("MaxProc = %d, want 7", got)
	}
}

func TestSorted(t *testing.T) {
	events := []Event{{Proc: 5, Time: 9}, {Proc: 1, Time: 9}, {Proc: 8, Time: 2}}
	got := Sorted(events)
	want := []Event{{Proc: 8, Time: 2}, {Proc: 1, Time: 9}, {Proc: 5, Time: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted = %+v, want %+v", got, want)
	}
	if events[0].Proc != 5 {
		t.Fatal("Sorted mutated its input")
	}
}

func TestCheck(t *testing.T) {
	if err := Check([]Event{{Proc: 0, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := Check(nil); err == nil {
		t.Fatal("Check accepted an empty trace")
	}
	if err := Check([]Event{{Proc: -1, Time: 1}}); err == nil {
		t.Fatal("Check accepted a negative processor id")
	}
}
