package sim

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/workload"
)

func instance(t *testing.T, seed int64, procs int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNoFailureReproducesLowerBound(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		inst := instance(t, seed, 10)
		for _, eps := range []int{0, 1, 3} {
			s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s, NoFailures(10), nil)
			if err != nil {
				t.Fatalf("seed %d ε=%d: %v", seed, eps, err)
			}
			if diff := math.Abs(res.Latency - s.LowerBound()); diff > 1e-7 {
				t.Errorf("seed %d ε=%d: failure-free simulated latency %g != lower bound %g",
					seed, eps, res.Latency, s.LowerBound())
			}
		}
	}
}

func TestFTSASurvivesAllCrashSets(t *testing.T) {
	// Theorem 4.1: the schedule remains valid under ANY set of at most ε
	// crashed processors. Enumerate every subset of size <= ε on a small
	// platform and verify the simulation completes within the upper bound.
	inst := instance(t, 3, 6)
	const eps = 2
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	ub := s.UpperBound()
	m := inst.Platform.NumProcs()
	for mask := 0; mask < 1<<m; mask++ {
		var crashed []platform.ProcID
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				crashed = append(crashed, platform.ProcID(j))
			}
		}
		if len(crashed) > eps {
			continue
		}
		sc, err := CrashAtZero(m, crashed...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, sc, nil)
		if err != nil {
			t.Fatalf("crash set %v: %v", crashed, err)
		}
		if res.Latency > ub+1e-7 {
			t.Errorf("crash set %v: latency %g exceeds guaranteed bound %g", crashed, res.Latency, ub)
		}
	}
}

func TestMCFTSASurvivesAllCrashSets(t *testing.T) {
	// Proposition 4.3: the matched communication set resists any ε crashes.
	inst := instance(t, 5, 6)
	const eps = 2
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	m := inst.Platform.NumProcs()
	for mask := 0; mask < 1<<m; mask++ {
		var crashed []platform.ProcID
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				crashed = append(crashed, platform.ProcID(j))
			}
		}
		if len(crashed) > eps {
			continue
		}
		sc, _ := CrashAtZero(m, crashed...)
		if _, err := Run(s, sc, nil); err != nil {
			t.Errorf("MC-FTSA failed under crash set %v: %v", crashed, err)
		}
	}
}

func TestTooManyCrashesCanFail(t *testing.T) {
	// Crashing every processor must fail: no exit task can complete.
	inst := instance(t, 1, 4)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]platform.ProcID, 4)
	for i := range all {
		all[i] = platform.ProcID(i)
	}
	sc, _ := CrashAtZero(4, all...)
	if _, err := Run(s, sc, nil); err == nil {
		t.Fatal("want failure when every processor crashes")
	}
}

func TestCrashLatencyWithinBoundsFTSA(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		inst := instance(t, seed, 12)
		const eps = 3
		s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed + 100))
		for trial := 0; trial < 10; trial++ {
			sc, err := UniformCrashes(rng, 12, eps)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s, sc, nil)
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			if res.Latency > s.UpperBound()+1e-7 {
				t.Errorf("seed %d trial %d: latency %g exceeds upper bound %g",
					seed, trial, res.Latency, s.UpperBound())
			}
			if res.Latency <= 0 {
				t.Errorf("seed %d trial %d: non-positive latency %g", seed, trial, res.Latency)
			}
		}
	}
}

func TestMidExecutionCrashDeliversEarlierWork(t *testing.T) {
	// Two tasks chained on a 2-processor platform, ε=1. Crash P0 after the
	// first task completes but before the second finishes there: the run
	// must still succeed using P1, and results computed before the crash on
	// P0 are usable.
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSA(g, p, cm, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := NoFailures(2)
	if err := sc.Crash(0, 6); err != nil { // task 0 done at 5, task 1 cut at 6
		t.Fatal(err)
	}
	res, err := Run(s, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Task 1 completes only on P1, started at 5 via its local copy: 12.
	if res.Latency != 12 {
		t.Errorf("latency = %g, want 12", res.Latency)
	}
	if !res.Completed[0][0] || !res.Completed[0][1] {
		t.Errorf("task 0 copies should both complete: %v", res.Completed[0])
	}
	done := 0
	for _, ok := range res.Completed[1] {
		if ok {
			done++
		}
	}
	if done != 1 {
		t.Errorf("exactly one copy of task 1 should complete, got %d", done)
	}
}

func TestCommModelsOrdering(t *testing.T) {
	// One-port serializes sends, so it can only delay arrivals relative to
	// the contention-free model; bounded multi-port with large K matches
	// contention-free.
	inst := instance(t, 8, 8)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(s, NoFailures(8), ContentionFree{})
	if err != nil {
		t.Fatal(err)
	}
	onePort, err := Run(s, NoFailures(8), NewOnePort(8))
	if err != nil {
		t.Fatal(err)
	}
	if onePort.Latency < free.Latency-1e-7 {
		t.Errorf("one-port latency %g below contention-free %g", onePort.Latency, free.Latency)
	}
	wide, err := NewBoundedMultiPort(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(s, NoFailures(8), wide)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(multi.Latency-free.Latency) > 1e-7 {
		t.Errorf("64-port latency %g != contention-free %g", multi.Latency, free.Latency)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := CrashAtZero(2, 5); err == nil {
		t.Error("want error for out-of-range processor")
	}
	if _, err := UniformCrashes(rand.New(rand.NewSource(1)), 3, 4); err == nil {
		t.Error("want error for more crashes than processors")
	}
	sc := NoFailures(2)
	if err := sc.Crash(0, -1); err == nil {
		t.Error("want error for negative crash time")
	}
	if got := sc.NumFailed(); got != 0 {
		t.Errorf("NumFailed = %d, want 0", got)
	}
	_ = sc.Crash(1, 3)
	if got := sc.NumFailed(); got != 1 {
		t.Errorf("NumFailed = %d, want 1", got)
	}
}
