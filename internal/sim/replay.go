package sim

import (
	"fmt"
	"math"
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// msgIn is one message a replica waits for, staged before the communication
// model is charged.
type msgIn struct {
	send   float64
	src    int // processor
	volume float64
}

// replayer executes a schedule under failure scenarios, owning all the
// scratch one execution needs. Binding a replayer to a schedule sizes the
// scratch once; replaying a scenario then allocates nothing, which is what
// lets Evaluate run thousands of trials with memory independent of the trial
// count. Replayers come from a sync.Pool (the internal/kernel board
// discipline): one-shot callers like Run reuse storage across calls, and
// each Evaluate worker binds its own, so no synchronization is needed inside.
type replayer struct {
	s       *sched.Schedule
	f       *dag.Flat // frozen CSR view of the schedule's graph
	model   CommModel
	reroute bool

	order      []dag.TaskID // mapping order, copied into pooled scratch at bind time
	exits      []dag.TaskID // exit tasks, aliasing the frozen view
	finishFlat []float64    // replica finish backing store, tasks concatenated
	finish     [][]float64  // per-task views into finishFlat
	complFlat  []bool       // replica completion backing store
	completed  [][]bool     // per-task views into complFlat
	taskFinish []float64    // earliest completed finish per task
	procNext   []float64    // next free time per processor
	incoming   []msgIn      // arrival staging area, reset per replica
}

var replayerPool = sync.Pool{New: func() any { return new(replayer) }}

// newReplayer binds pooled scratch to the schedule. It fails on an
// incomplete schedule; scenario shape is checked per replay.
func newReplayer(s *sched.Schedule, opt Options) (*replayer, error) {
	v := s.Graph.NumTasks()
	f, err := s.Graph.Freeze()
	if err != nil {
		return nil, err
	}
	model := opt.Model
	if model == nil {
		model = ContentionFree{}
	}
	r := replayerPool.Get().(*replayer)
	r.order = s.AppendMappingOrder(r.order[:0])
	if len(r.order) != v {
		replayerPool.Put(r)
		return nil, fmt.Errorf("sim: incomplete schedule (%d of %d tasks mapped)", len(r.order), v)
	}
	r.s = s
	r.f = f
	r.model = model
	r.reroute = !opt.StrictMatched
	r.exits = f.Exits()

	total := 0
	for t := 0; t < v; t++ {
		total += len(s.Replicas(dag.TaskID(t)))
	}
	r.finishFlat = kernel.Grow(r.finishFlat, total)
	r.complFlat = kernel.Grow(r.complFlat, total)
	r.finish = kernel.Grow(r.finish, v)
	r.completed = kernel.Grow(r.completed, v)
	off := 0
	for t := 0; t < v; t++ {
		n := len(s.Replicas(dag.TaskID(t)))
		r.finish[t] = r.finishFlat[off : off+n : off+n]
		r.completed[t] = r.complFlat[off : off+n : off+n]
		off += n
	}
	r.taskFinish = kernel.Grow(r.taskFinish, v)
	r.procNext = kernel.Grow(r.procNext, s.Platform.NumProcs())
	return r, nil
}

// release returns the replayer's storage to the pool. The replayer (and any
// view of its scratch) must not be used afterwards.
func (r *replayer) release() {
	if r == nil {
		return
	}
	// exits aliases the frozen view (not pooled scratch); drop it so the
	// pool does not pin a dead graph.
	r.s, r.f, r.model, r.exits = nil, nil, nil, nil
	replayerPool.Put(r)
}

// replay executes the bound schedule under the failure scenario, leaving
// per-task finish times and completion flags in the replayer's scratch.
// See RunWithOptions for the execution semantics.
//
// A scenario the schedule does not survive reports the first starved exit
// task in badExit (-1 when the run succeeded) instead of a formatted
// ErrNotTolerated, so the batch evaluator's failed trials allocate nothing;
// err is reserved for structural problems.
func (r *replayer) replay(sc Scenario, trace *Trace) (latency float64, delivered int, badExit dag.TaskID, err error) {
	badExit = -1
	s := r.s
	m := s.Platform.NumProcs()
	if len(sc.CrashTime) != m {
		return 0, 0, badExit, fmt.Errorf("sim: scenario covers %d processors, platform has %d", len(sc.CrashTime), m)
	}
	if trace != nil {
		for p, crash := range sc.CrashTime {
			if !math.IsInf(crash, 1) {
				trace.add(Event{Time: crash, Kind: EventCrash, Task: -1, Proc: platform.ProcID(p)})
			}
		}
		defer trace.sortByTime()
	}
	r.model.Reset(m)
	for i := range r.finishFlat {
		r.finishFlat[i] = math.Inf(1)
	}
	clear(r.complFlat)
	for i := range r.taskFinish {
		r.taskFinish[i] = math.Inf(1)
	}
	clear(r.procNext)

	for _, t := range r.order {
		reps := s.Replicas(t)
		for c, rep := range reps {
			crash := sc.CrashTime[rep.Proc]
			if crash <= 0 {
				continue // processor dead from the start
			}
			ready, ok, del := r.arrivalTime(t, c)
			if !ok {
				if trace != nil {
					trace.add(Event{Time: math.Max(ready, r.procNext[rep.Proc]), Kind: EventSkip, Task: t, Copy: c, Proc: rep.Proc})
				}
				continue // some input can never arrive
			}
			start := math.Max(ready, r.procNext[rep.Proc])
			end := start + s.Costs.Cost(t, rep.Proc)
			r.procNext[rep.Proc] = end
			if end > crash {
				if trace != nil {
					trace.add(Event{Time: start, Kind: EventStart, Task: t, Copy: c, Proc: rep.Proc})
					trace.add(Event{Time: crash, Kind: EventKilled, Task: t, Copy: c, Proc: rep.Proc})
				}
				continue // execution cut by the crash: fail-silent, no output
			}
			if trace != nil {
				trace.add(Event{Time: start, Kind: EventStart, Task: t, Copy: c, Proc: rep.Proc})
				trace.add(Event{Time: end, Kind: EventFinish, Task: t, Copy: c, Proc: rep.Proc})
			}
			r.finish[t][c] = end
			r.completed[t][c] = true
			delivered += del
			if end < r.taskFinish[t] {
				r.taskFinish[t] = end
			}
		}
	}

	for _, t := range r.exits {
		if math.IsInf(r.taskFinish[t], 1) {
			return 0, delivered, t, nil
		}
		if r.taskFinish[t] > latency {
			latency = r.taskFinish[t]
		}
	}
	return latency, delivered, badExit, nil
}

// ReplayTaskFinishes replays s under sc and returns every task's earliest
// completed finish time (+Inf for tasks with no surviving replica), reusing
// out's storage when it has the capacity. ok reports whether the schedule
// survived the scenario (every exit task delivered); latency is the makespan
// when it did. Unlike Run, a not-tolerated scenario is not an error — the
// partial finish times are still returned, which is what lets the mission
// controller observe exactly which work completed before a crash it reacts
// to. The replay semantics are RunWithOptions' own, so the mission
// controller's static policy and the batch evaluator agree by construction.
func ReplayTaskFinishes(s *sched.Schedule, sc Scenario, opt Options, out []float64) (finishes []float64, latency float64, ok bool, err error) {
	r, err := newReplayer(s, opt)
	if err != nil {
		return out, 0, false, err
	}
	defer r.release()
	lat, _, badExit, err := r.replay(sc, nil)
	if err != nil {
		return out, 0, false, err
	}
	finishes = kernel.Grow(out, len(r.taskFinish))
	copy(finishes, r.taskFinish)
	return finishes, lat, badExit < 0, nil
}

// arrivalTime computes when all inputs of copy c of task t are available on
// its processor, counting delivered inter-processor messages. ok is false
// when some predecessor has no completed source this copy may consume.
func (r *replayer) arrivalTime(t dag.TaskID, c int) (ready float64, ok bool, delivered int) {
	s := r.s
	dst := s.Replicas(t)[c]
	incoming := r.incoming[:0]
	preds := r.f.PredIDs(t)
	vols := r.f.PredVolumes(t)
	for predIdx, predRaw := range preds {
		pe := dag.TaskID(predRaw)
		vol := vols[predIdx]
		srcReps := s.Replicas(pe)
		useAny := s.CommPattern != sched.PatternMatched
		if s.CommPattern == sched.PatternMatched {
			k, err := s.MatchedSource(t, c, predIdx)
			if err == nil && !math.IsInf(r.finish[pe][k], 1) {
				incoming = append(incoming, msgIn{send: r.finish[pe][k], src: int(srcReps[k].Proc), volume: vol})
				continue
			}
			// The retained link is dead. Under strict semantics the
			// replica is starved; under degraded mode it refetches from
			// any live completed copy.
			if !r.reroute {
				r.incoming = incoming
				return 0, false, 0
			}
			useAny = true
		}
		if useAny { // best completed copy wins
			bestArr := math.Inf(1)
			bestSend := 0.0
			bestSrc := -1
			for k, sr := range srcReps {
				if math.IsInf(r.finish[pe][k], 1) {
					continue
				}
				// Estimate with the stateless delay; stateful models are
				// charged once per consumed message below.
				arr := r.finish[pe][k] + vol*s.Platform.Delay(sr.Proc, dst.Proc)
				if arr < bestArr {
					bestArr, bestSend, bestSrc = arr, r.finish[pe][k], int(sr.Proc)
				}
			}
			if bestSrc < 0 {
				r.incoming = incoming
				return 0, false, 0
			}
			incoming = append(incoming, msgIn{send: bestSend, src: bestSrc, volume: vol})
		}
	}
	// Charge the communication model in non-decreasing send order, which is
	// the natural FIFO order for port-limited senders. Insertion sort keeps
	// the hot loop allocation-free; predecessor lists are short.
	for i := 1; i < len(incoming); i++ {
		for j := i; j > 0 && incoming[j].send < incoming[j-1].send; j-- {
			incoming[j], incoming[j-1] = incoming[j-1], incoming[j]
		}
	}
	for _, mg := range incoming {
		src := platform.ProcID(mg.src)
		arr := r.model.Deliver(s.Platform, src, dst.Proc, mg.volume, mg.send)
		if arr > ready {
			ready = arr
		}
		if src != dst.Proc {
			delivered++
		}
	}
	r.incoming = incoming
	return ready, true, delivered
}
