package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"ftsched/internal/sched"
	"ftsched/internal/stats"
)

// EvalOptions tunes a batch evaluation. The zero value runs with GOMAXPROCS
// workers, base seed 0, the contention-free model, degraded-mode rerouting
// and a 4096-sample quantile window.
type EvalOptions struct {
	// Seed is the base seed; every trial derives its own rng stream from
	// (Seed, trial index), so the result is a pure function of
	// (schedule, generator, trials, Seed) — independent of Workers.
	Seed int64
	// Workers is the replay worker count; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// NewModel, when non-nil, builds one communication model per worker
	// (stateful models must not be shared across goroutines). Nil selects
	// the paper's contention-free model.
	NewModel func() CommModel
	// StrictMatched disables degraded-mode rerouting for PatternMatched
	// schedules, as in Options.StrictMatched.
	StrictMatched bool
	// QuantileWindow is the number of most recent successful-trial
	// latencies backing the p50/p99 report (0: 4096). It is the only
	// per-trial state kept, which is what makes memory O(1) in trials.
	QuantileWindow int
	// OnTrial, when non-nil, observes every trial's outcome in strict trial
	// order (latency is meaningful only when ok is true). Because trial
	// seeds derive from (Seed, trial), two evaluations at one seed see the
	// identical failure scenario at each index; the auto-tuner uses this
	// hook to compare candidates trial-for-trial on their shared draws.
	OnTrial func(trial int, ok bool, latency float64)
}

// defaultQuantileWindow bounds the latency samples retained for quantiles.
const defaultQuantileWindow = 4096

// EvalLatency summarizes the latency of successful trials. Mean/StdDev/
// Min/Max stream over every success; P50/P99 are nearest-rank quantiles over
// the most recent Window successes.
type EvalLatency struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
	// Window is the number of samples backing the quantiles.
	Window int `json:"window"`
}

// FailureBucket is one row of the degradation-vs-failure-count histogram:
// all trials whose scenario crashed exactly Failures processors within the
// schedule's guaranteed mission window [0, M) — crashes landing after the
// upper bound cannot affect the execution, and under a lifetime law every
// crash time is finite, so counting them would collapse the histogram.
type FailureBucket struct {
	Failures  int `json:"failures"`
	Trials    int `json:"trials"`
	Successes int `json:"successes"`
	// SuccessRate is Successes/Trials within the bucket.
	SuccessRate float64 `json:"success_rate"`
	// MeanLatency averages successful-trial latency within the bucket.
	MeanLatency float64 `json:"mean_latency"`
	// MeanDegradation averages (latency − M*)/M* over successful trials,
	// with M* the schedule's no-failure lower bound — how much the crash
	// pattern stretched the execution.
	MeanDegradation float64 `json:"mean_degradation"`
}

// EvalResult aggregates a batch fault-injection evaluation. It is built by
// consuming trials in index order, so equal (schedule, generator, trials,
// seed) inputs produce byte-identical JSON at any worker count.
type EvalResult struct {
	// Trials is the number of scenarios sampled; Successes counts trials
	// where every exit task delivered a result.
	Trials    int `json:"trials"`
	Successes int `json:"successes"`
	// SuccessRate is Successes/Trials; SuccessLow/SuccessHigh bound the
	// true success probability by the 95% Wilson score interval.
	SuccessRate float64 `json:"success_rate"`
	SuccessLow  float64 `json:"success_low"`
	SuccessHigh float64 `json:"success_high"`
	// Latency summarizes successful trials; zero-valued when none succeed.
	Latency EvalLatency `json:"latency"`
	// ByFailures is the degradation histogram, ascending in failure count;
	// empty buckets are omitted.
	ByFailures []FailureBucket `json:"by_failures"`
	// Generator is the canonical spec string of the scenario generator.
	Generator string `json:"generator"`
	// Seed echoes the base seed.
	Seed int64 `json:"seed"`
}

// LatencyMeanInterval returns the z-score confidence interval of the mean
// latency over the evaluation's successful trials, computed from the
// streamed mean and standard deviation (half-width z·σ/√n). ok is false when
// no trial succeeded — there is no latency to bound. It is the interval the
// auto-tuner's conservative pruning compares: a candidate is only discarded
// when another candidate's whole interval beats its whole interval.
func (r *EvalResult) LatencyMeanInterval(z float64) (lo, hi float64, ok bool) {
	if r.Successes == 0 {
		return 0, 0, false
	}
	half := z * r.Latency.StdDev / math.Sqrt(float64(r.Successes))
	return r.Latency.Mean - half, r.Latency.Mean + half, true
}

// TrialSeed derives the rng seed of one Evaluate trial from the base seed by
// FNV-1a over the little-endian encodings — the same stable-hash discipline
// the campaign engine uses for per-cell seeds, inlined so the trial loop
// allocates nothing. It is exported as the contract that lets callers replay
// any single trial of an evaluation through Run.
func TrialSeed(base int64, trial int) int64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for v, i := uint64(base), 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= prime
	}
	for v, i := uint64(trial), 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= prime
	}
	return int64(h &^ (1 << 63))
}

// evalOutcome is one trial's contribution to the aggregate.
type evalOutcome struct {
	trial   int
	ok      bool
	latency float64
	failed  int
	err     error
}

// TrialFunc executes one trial against a drawn scenario, reporting whether
// the mission succeeded and, when it did, its latency. The scenario is
// worker-owned scratch refilled per trial; implementations must not retain
// it past the call.
type TrialFunc func(trial int, sc Scenario) (ok bool, latency float64, err error)

// Evaluate replays the schedule under `trials` failure scenarios drawn from
// gen and streams the outcomes into an EvalResult. Trials are sharded over a
// worker pool; each worker owns one pooled replayer (scratch reused across
// its trials), one rng reseeded per trial from (opt.Seed, trial), and one
// communication model. Aggregation consumes outcomes in trial order behind a
// small reorder buffer, so the result is deterministic for any worker count
// and memory stays O(workers + processors + QuantileWindow) — independent of
// the trial count.
//
// A trial whose scenario exceeds what the schedule tolerates
// (ErrNotTolerated) counts as a failure; any other error aborts the
// evaluation deterministically (first error in trial order wins).
func Evaluate(s *sched.Schedule, gen ScenarioGenerator, trials int, opt EvalOptions) (*EvalResult, error) {
	newModel := opt.NewModel
	if newModel == nil {
		newModel = func() CommModel { return ContentionFree{} }
	}
	newRunner := func() (TrialFunc, func(), error) {
		rp, err := newReplayer(s, Options{Model: newModel(), StrictMatched: opt.StrictMatched})
		if err != nil {
			return nil, nil, err
		}
		run := func(trial int, sc Scenario) (bool, float64, error) {
			lat, _, badExit, err := rp.replay(sc, nil)
			if err != nil {
				return false, 0, err
			}
			// A not-tolerated trial (badExit >= 0) is a failure sample, not
			// an evaluation error.
			return badExit < 0, lat, nil
		}
		return run, rp.release, nil
	}
	return EvaluateScenarios(s.Platform.NumProcs(), s.UpperBound(), s.LowerBound(),
		gen, trials, opt, newRunner)
}

// EvaluateScenarios is the generator → trial → ordered-aggregation engine
// behind Evaluate, generalized over what one trial executes: Evaluate plugs
// in a static-schedule replay, the mission controller plugs in a full online
// re-scheduling run, and both inherit the same determinism contract (the
// result is a pure function of the inputs and opt.Seed, independent of
// opt.Workers). newRunner is called once per worker and returns the worker's
// TrialFunc plus a close function releasing its scratch (may be nil).
//
// m is the platform size the scenarios cover; missionWindow is the failure-
// counting window of the degradation histogram (crashes at or past it cannot
// affect the execution); baseline is the no-failure latency degradation is
// measured against.
func EvaluateScenarios(m int, missionWindow, baseline float64, gen ScenarioGenerator, trials int,
	opt EvalOptions, newRunner func() (TrialFunc, func(), error)) (*EvalResult, error) {
	if gen == nil {
		return nil, fmt.Errorf("sim: Evaluate needs a scenario generator")
	}
	if trials < 1 {
		return nil, fmt.Errorf("sim: need at least one trial, got %d", trials)
	}
	if err := gen.Check(m); err != nil {
		return nil, err
	}
	// Fail fast on runner problems before spawning workers; construction is
	// deterministic, so worker runners can only fail the same way.
	probe, probeClose, err := newRunner()
	if err != nil {
		return nil, err
	}
	_ = probe
	if probeClose != nil {
		probeClose()
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	wcap := opt.QuantileWindow
	if wcap <= 0 {
		wcap = defaultQuantileWindow
	}
	if wcap > trials {
		wcap = trials
	}

	// tokens bounds the trials in flight (issued but not yet consumed in
	// order), which bounds the reorder buffer regardless of how unevenly
	// the scheduler runs the workers.
	inFlight := 4 * workers
	tokens := make(chan struct{}, inFlight)
	workCh := make(chan int)
	outCh := make(chan evalOutcome, workers)
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	defer halt()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run, closeRunner, rerr := newRunner()
			if rerr == nil && closeRunner != nil {
				defer closeRunner()
			}
			src := rand.NewSource(0)
			rng := rand.New(src)
			sc := NewScenario(m)
			var scratch ScenarioScratch
			for i := range workCh {
				o := evalOutcome{trial: i, err: rerr}
				if o.err == nil {
					src.Seed(TrialSeed(opt.Seed, i))
					o.err = gen.FillScenario(rng, &sc, &scratch)
				}
				if o.err == nil {
					o.failed = sc.NumFailedBefore(missionWindow)
					o.ok, o.latency, o.err = run(i, sc)
				}
				select {
				case outCh <- o:
				case <-stop:
					return
				}
			}
		}()
	}
	go func() { // feeder
		defer close(workCh)
		for i := 0; i < trials; i++ {
			select {
			case tokens <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case workCh <- i:
			case <-stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// Streaming aggregation in strict trial order.
	var (
		next     int
		pending  = make(map[int]evalOutcome, inFlight)
		succ     int
		latAcc   stats.Accumulator
		window   = stats.NewWindow(wcap)
		buckets  = make([]failureAcc, m+1)
		firstErr error
	)
	consume := func(o evalOutcome) bool {
		if o.err != nil {
			firstErr = fmt.Errorf("sim: trial %d: %w", o.trial, o.err)
			return false
		}
		if opt.OnTrial != nil {
			opt.OnTrial(o.trial, o.ok, o.latency)
		}
		b := &buckets[o.failed]
		b.trials++
		if o.ok {
			succ++
			latAcc.Add(o.latency)
			window.Add(o.latency)
			b.successes++
			b.latency.Add(o.latency)
			if baseline > 0 {
				b.degradation.Add((o.latency - baseline) / baseline)
			}
		}
		return true
	}
drain:
	for o := range outCh {
		pending[o.trial] = o
		for {
			po, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-tokens
			if !consume(po) {
				halt()
				break drain
			}
		}
		if next == trials {
			halt()
			break
		}
	}
	for range outCh {
		// Drain stragglers so the workers' sends never block forever.
	}
	if firstErr != nil {
		return nil, firstErr
	}

	res := &EvalResult{
		Trials:      trials,
		Successes:   succ,
		SuccessRate: float64(succ) / float64(trials),
		Generator:   gen.Spec().String(),
		Seed:        opt.Seed,
	}
	res.SuccessLow, res.SuccessHigh = stats.Wilson(succ, trials, 1.96)
	if succ > 0 {
		res.Latency = EvalLatency{
			Mean:   latAcc.Mean(),
			StdDev: latAcc.StdDev(),
			Min:    latAcc.Min(),
			Max:    latAcc.Max(),
			P50:    window.Quantile(0.5),
			P99:    window.Quantile(0.99),
			Window: window.Len(),
		}
	}
	for f := range buckets {
		b := &buckets[f]
		if b.trials == 0 {
			continue
		}
		res.ByFailures = append(res.ByFailures, FailureBucket{
			Failures:        f,
			Trials:          b.trials,
			Successes:       b.successes,
			SuccessRate:     float64(b.successes) / float64(b.trials),
			MeanLatency:     b.latency.Mean(),
			MeanDegradation: b.degradation.Mean(),
		})
	}
	return res, nil
}

// failureAcc accumulates one failure-count bucket of the histogram.
type failureAcc struct {
	trials, successes    int
	latency, degradation stats.Accumulator
}
