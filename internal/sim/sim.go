package sim

import (
	"errors"
	"fmt"

	"ftsched/internal/sched"
)

// ErrNotTolerated is returned when some exit task has no surviving completed
// replica — the failure scenario exceeded what the schedule tolerates (more
// than ε crashes, or a broken communication pattern).
var ErrNotTolerated = errors.New("sim: schedule did not survive the failure scenario")

// Result reports one simulated execution.
type Result struct {
	// Latency is the achieved makespan: max over exit tasks of the earliest
	// completed replica finish.
	Latency float64
	// TaskFinish[t] is the earliest completed finish time of task t (+Inf
	// if no replica of t completed).
	TaskFinish []float64
	// Completed[t][c] reports whether copy c of task t ran to completion on
	// a live processor with all of its inputs available.
	Completed [][]bool
	// MessagesDelivered counts inter-processor messages actually consumed.
	MessagesDelivered int
}

// Options tunes the execution semantics of a simulation.
type Options struct {
	// Model is the communication model; nil selects the paper's
	// contention-free model.
	Model CommModel
	// StrictMatched disables degraded-mode rerouting for PatternMatched
	// (MC-FTSA) schedules. Under strict semantics a replica whose matched
	// source never completes is starved, even if other copies of the
	// predecessor survive.
	//
	// Strict mode exposes a reproduction finding: the per-edge robustness
	// of Proposition 4.3 does not compose across precedence chains — a
	// single crash can starve every replica of a deep task because each
	// replica depends on one specific upstream copy per edge, and the
	// union of those chains quickly covers all processors. The paper's
	// crash experiments (Figures 1b-3b) report finite MC-FTSA latencies,
	// which implies the degraded mode: when the retained link is dead, the
	// replica fetches the data from any live completed copy (paying the
	// normal transfer time). That is the default here.
	StrictMatched bool
	// Trace, when non-nil, records every start/finish/skip/kill/crash
	// event of the execution (time-sorted on return).
	Trace *Trace
}

// Run simulates the schedule under the failure scenario with the given
// communication model (nil means the paper's contention-free model) and
// default semantics (degraded-mode rerouting enabled for matched schedules).
func Run(s *sched.Schedule, sc Scenario, model CommModel) (*Result, error) {
	return RunWithOptions(s, sc, Options{Model: model})
}

// RunWithOptions simulates the schedule under the failure scenario.
//
// Execution semantics: tasks are replayed in the scheduler's mapping order
// (a topological order); on each processor replicas execute back to back in
// that order, data-driven — a replica starts at the later of its processor
// becoming free and its required messages arriving, and a replica whose
// inputs can never arrive (all allowed sources dead) is skipped. A replica
// completes only if it finishes strictly within its processor's lifetime.
//
// The replay loop itself runs on pooled scratch (see replayer); this
// one-shot entry point copies the per-task results out before releasing the
// scratch. Batch callers should use Evaluate, which reuses one replayer
// across thousands of trials.
func RunWithOptions(s *sched.Schedule, sc Scenario, opt Options) (*Result, error) {
	r, err := newReplayer(s, opt)
	if err != nil {
		return nil, err
	}
	defer r.release()
	latency, delivered, badExit, err := r.replay(sc, opt.Trace)
	if err != nil {
		return nil, err
	}
	if badExit >= 0 {
		return nil, fmt.Errorf("%w: exit task %d never completed", ErrNotTolerated, badExit)
	}
	v := s.Graph.NumTasks()
	res := &Result{
		Latency:           latency,
		MessagesDelivered: delivered,
		TaskFinish:        append([]float64(nil), r.taskFinish...),
		Completed:         make([][]bool, v),
	}
	for t := range res.Completed {
		res.Completed[t] = append([]bool(nil), r.completed[t]...)
	}
	return res, nil
}
