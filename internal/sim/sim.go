package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// ErrNotTolerated is returned when some exit task has no surviving completed
// replica — the failure scenario exceeded what the schedule tolerates (more
// than ε crashes, or a broken communication pattern).
var ErrNotTolerated = errors.New("sim: schedule did not survive the failure scenario")

// Result reports one simulated execution.
type Result struct {
	// Latency is the achieved makespan: max over exit tasks of the earliest
	// completed replica finish.
	Latency float64
	// TaskFinish[t] is the earliest completed finish time of task t (+Inf
	// if no replica of t completed).
	TaskFinish []float64
	// Completed[t][c] reports whether copy c of task t ran to completion on
	// a live processor with all of its inputs available.
	Completed [][]bool
	// MessagesDelivered counts inter-processor messages actually consumed.
	MessagesDelivered int
}

// Options tunes the execution semantics of a simulation.
type Options struct {
	// Model is the communication model; nil selects the paper's
	// contention-free model.
	Model CommModel
	// StrictMatched disables degraded-mode rerouting for PatternMatched
	// (MC-FTSA) schedules. Under strict semantics a replica whose matched
	// source never completes is starved, even if other copies of the
	// predecessor survive.
	//
	// Strict mode exposes a reproduction finding: the per-edge robustness
	// of Proposition 4.3 does not compose across precedence chains — a
	// single crash can starve every replica of a deep task because each
	// replica depends on one specific upstream copy per edge, and the
	// union of those chains quickly covers all processors. The paper's
	// crash experiments (Figures 1b-3b) report finite MC-FTSA latencies,
	// which implies the degraded mode: when the retained link is dead, the
	// replica fetches the data from any live completed copy (paying the
	// normal transfer time). That is the default here.
	StrictMatched bool
	// Trace, when non-nil, records every start/finish/skip/kill/crash
	// event of the execution (time-sorted on return).
	Trace *Trace
}

// Run simulates the schedule under the failure scenario with the given
// communication model (nil means the paper's contention-free model) and
// default semantics (degraded-mode rerouting enabled for matched schedules).
func Run(s *sched.Schedule, sc Scenario, model CommModel) (*Result, error) {
	return RunWithOptions(s, sc, Options{Model: model})
}

// RunWithOptions simulates the schedule under the failure scenario.
//
// Execution semantics: tasks are replayed in the scheduler's mapping order
// (a topological order); on each processor replicas execute back to back in
// that order, data-driven — a replica starts at the later of its processor
// becoming free and its required messages arriving, and a replica whose
// inputs can never arrive (all allowed sources dead) is skipped. A replica
// completes only if it finishes strictly within its processor's lifetime.
func RunWithOptions(s *sched.Schedule, sc Scenario, opt Options) (*Result, error) {
	model := opt.Model
	m := s.Platform.NumProcs()
	if len(sc.CrashTime) != m {
		return nil, fmt.Errorf("sim: scenario covers %d processors, platform has %d", len(sc.CrashTime), m)
	}
	if model == nil {
		model = ContentionFree{}
	}
	reroute := !opt.StrictMatched
	trace := opt.Trace
	if trace != nil {
		for p, crash := range sc.CrashTime {
			if !math.IsInf(crash, 1) {
				trace.add(Event{Time: crash, Kind: EventCrash, Task: -1, Proc: platform.ProcID(p)})
			}
		}
		defer trace.sortByTime()
	}
	model.Reset(m)

	v := s.Graph.NumTasks()
	res := &Result{
		TaskFinish: make([]float64, v),
		Completed:  make([][]bool, v),
	}
	finish := make([][]float64, v) // per replica simulated finish (+Inf if not completed)
	procNext := make([]float64, m)

	order := s.MappingOrder()
	if len(order) != v {
		return nil, fmt.Errorf("sim: incomplete schedule (%d of %d tasks mapped)", len(order), v)
	}
	for _, t := range order {
		reps := s.Replicas(t)
		res.Completed[t] = make([]bool, len(reps))
		finish[t] = make([]float64, len(reps))
		for c := range finish[t] {
			finish[t][c] = math.Inf(1)
		}
		res.TaskFinish[t] = math.Inf(1)

		for c, r := range reps {
			crash := sc.CrashTime[r.Proc]
			if crash <= 0 {
				continue // processor dead from the start
			}
			ready, ok, delivered := arrivalTime(s, model, t, c, finish, reroute)
			if !ok {
				if trace != nil {
					trace.add(Event{Time: math.Max(ready, procNext[r.Proc]), Kind: EventSkip, Task: t, Copy: c, Proc: r.Proc})
				}
				continue // some input can never arrive
			}
			start := math.Max(ready, procNext[r.Proc])
			end := start + s.Costs.Cost(t, r.Proc)
			procNext[r.Proc] = end
			if end > crash {
				if trace != nil {
					trace.add(Event{Time: start, Kind: EventStart, Task: t, Copy: c, Proc: r.Proc})
					trace.add(Event{Time: crash, Kind: EventKilled, Task: t, Copy: c, Proc: r.Proc})
				}
				continue // execution cut by the crash: fail-silent, no output
			}
			if trace != nil {
				trace.add(Event{Time: start, Kind: EventStart, Task: t, Copy: c, Proc: r.Proc})
				trace.add(Event{Time: end, Kind: EventFinish, Task: t, Copy: c, Proc: r.Proc})
			}
			finish[t][c] = end
			res.Completed[t][c] = true
			res.MessagesDelivered += delivered
			if end < res.TaskFinish[t] {
				res.TaskFinish[t] = end
			}
		}
	}

	latency := 0.0
	for _, t := range s.Graph.Exits() {
		if math.IsInf(res.TaskFinish[t], 1) {
			return nil, fmt.Errorf("%w: exit task %d never completed", ErrNotTolerated, t)
		}
		if res.TaskFinish[t] > latency {
			latency = res.TaskFinish[t]
		}
	}
	res.Latency = latency
	return res, nil
}

// arrivalTime computes when all inputs of copy c of task t are available on
// its processor, counting delivered inter-processor messages. ok is false
// when some predecessor has no completed source this copy may consume.
func arrivalTime(s *sched.Schedule, model CommModel, t dag.TaskID, c int, finish [][]float64, reroute bool) (ready float64, ok bool, delivered int) {
	dst := s.Replicas(t)[c]
	type msg struct {
		send   float64
		src    int // processor
		volume float64
	}
	var incoming []msg
	for predIdx, pe := range s.Graph.Preds(t) {
		srcReps := s.Replicas(pe.To)
		useAny := s.CommPattern != sched.PatternMatched
		if s.CommPattern == sched.PatternMatched {
			k, err := s.MatchedSource(t, c, predIdx)
			if err == nil && !math.IsInf(finish[pe.To][k], 1) {
				incoming = append(incoming, msg{send: finish[pe.To][k], src: int(srcReps[k].Proc), volume: pe.Volume})
				continue
			}
			// The retained link is dead. Under strict semantics the
			// replica is starved; under degraded mode it refetches from
			// any live completed copy.
			if !reroute {
				return 0, false, 0
			}
			useAny = true
		}
		if useAny { // best completed copy wins
			bestArr := math.Inf(1)
			bestSend := 0.0
			bestSrc := -1
			for k, sr := range srcReps {
				if math.IsInf(finish[pe.To][k], 1) {
					continue
				}
				// Estimate with the stateless delay; stateful models are
				// charged once per consumed message below.
				arr := finish[pe.To][k] + pe.Volume*s.Platform.Delay(sr.Proc, dst.Proc)
				if arr < bestArr {
					bestArr, bestSend, bestSrc = arr, finish[pe.To][k], int(sr.Proc)
				}
			}
			if bestSrc < 0 {
				return 0, false, 0
			}
			incoming = append(incoming, msg{send: bestSend, src: bestSrc, volume: pe.Volume})
		}
	}
	// Charge the communication model in non-decreasing send order, which is
	// the natural FIFO order for port-limited senders.
	sort.Slice(incoming, func(i, j int) bool { return incoming[i].send < incoming[j].send })
	for _, mg := range incoming {
		src := platform.ProcID(mg.src)
		arr := model.Deliver(s.Platform, src, dst.Proc, mg.volume, mg.send)
		if arr > ready {
			ready = arr
		}
		if src != dst.Proc {
			delivered++
		}
	}
	return ready, true, delivered
}
