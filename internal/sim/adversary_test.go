package sim

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

// instanceTB is the benchmark-friendly twin of sim_test.go's instance.
func instanceTB(tb testing.TB, seed int64, procs int) *workload.Instance {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return inst
}

func adversarySchedule(t testing.TB, seed int64, procs, eps int) *sched.Schedule {
	t.Helper()
	inst := instanceTB(t, seed, procs)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWorstCaseZeroBudgetIsBaseline(t *testing.T) {
	s := adversarySchedule(t, 1, 6, 1)
	wc, err := WorstCase(s, AdversarySpec{Crashes: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Missed || len(wc.Crashes) != 0 || wc.Evals != 1 || !wc.Exhaustive {
		t.Fatalf("zero-budget worst case %+v", wc)
	}
	if diff := math.Abs(wc.Latency - s.LowerBound()); diff > 1e-7 {
		t.Fatalf("baseline latency %g, lower bound %g", wc.Latency, s.LowerBound())
	}
	if wc.Degradation != 0 {
		t.Fatalf("baseline degradation %g", wc.Degradation)
	}
}

// ε-fault-tolerant schedules survive any ε crashes (Theorem 4.1), so the
// adversary cannot force a miss within that budget — but ε+1 crashes at
// time 0 can defeat a schedule, and the exhaustive phase must find a miss
// whenever one exists in the crash-at-zero space.
func TestWorstCaseRespectsTheorem(t *testing.T) {
	s := adversarySchedule(t, 2, 6, 2)
	wc, err := WorstCase(s, AdversarySpec{Crashes: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Missed {
		t.Fatalf("adversary defeated an ε=2 schedule with 2 crashes: %+v", wc)
	}
	if !wc.Exhaustive {
		t.Fatalf("C(6,2)=15 should be exhaustive within the default budget: %+v", wc)
	}
	if wc.Latency < s.LowerBound()-1e-9 {
		t.Fatalf("worst latency %g below lower bound %g", wc.Latency, s.LowerBound())
	}
	// Crashing every processor defeats any schedule.
	all, err := WorstCase(s, AdversarySpec{Crashes: 6}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !all.Missed {
		t.Fatalf("crashing all 6 processors did not miss: %+v", all)
	}
}

// The exhaustive crash-at-zero phase covers uniform:k's entire support, so
// the reported worst case dominates every Monte-Carlo draw of that shape —
// deterministically, not statistically.
func TestWorstCaseDominatesUniformDraws(t *testing.T) {
	s := adversarySchedule(t, 3, 7, 1)
	const k = 2
	wc, err := WorstCase(s, AdversarySpec{Crashes: k}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Exhaustive {
		t.Fatalf("C(7,2)=21 should be exhaustive: %+v", wc)
	}
	gen := UniformGen{N: k}
	var scratch ScenarioScratch
	sc := NewScenario(7)
	rp, err := newReplayer(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rp.release()
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(TrialSeed(11, trial)))
		if err := gen.FillScenario(rng, &sc, &scratch); err != nil {
			t.Fatal(err)
		}
		lat, _, badExit, err := rp.replay(sc, nil)
		if err != nil {
			t.Fatal(err)
		}
		if badExit >= 0 && !wc.Missed {
			t.Fatalf("trial %d missed but worst case did not", trial)
		}
		if badExit < 0 && !wc.Missed && lat > wc.Latency+1e-9 {
			t.Fatalf("trial %d latency %g beats reported worst %g", trial, lat, wc.Latency)
		}
	}
}

func TestWorstCaseDeterministic(t *testing.T) {
	s := adversarySchedule(t, 4, 8, 1)
	spec := AdversarySpec{Crashes: 3, TimeGrid: 6, MaxEvals: 500}
	a, err := WorstCase(s, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := WorstCase(s, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical searches disagree:\n%+v\n%+v", a, b)
	}
	if a.Evals > 500 {
		t.Fatalf("search spent %d evals over the budget of 500", a.Evals)
	}
}

func TestWorstCaseGroups(t *testing.T) {
	s := adversarySchedule(t, 5, 8, 1)
	wc, err := WorstCase(s, AdversarySpec{Crashes: 1, GroupSize: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One rack of 4 crashes as a unit: the pattern must cover a full
	// aligned rack.
	if len(wc.Crashes) != 4 {
		t.Fatalf("rack attack crashed %d processors, want 4: %+v", len(wc.Crashes), wc.Crashes)
	}
	first := wc.Crashes[0].Proc
	if first%4 != 0 {
		t.Fatalf("rack starts at processor %d, want a multiple of 4", first)
	}
	for i, ev := range wc.Crashes {
		if ev.Proc != first+i || ev.Time != wc.Crashes[0].Time {
			t.Fatalf("rack pattern not aligned/simultaneous: %+v", wc.Crashes)
		}
	}
}

func TestWorstCaseBudgetClamp(t *testing.T) {
	s := adversarySchedule(t, 6, 6, 1)
	// Tiny budget: only the baseline fits; the search degrades to the
	// baseline rather than erroring.
	wc, err := WorstCase(s, AdversarySpec{Crashes: 2, MaxEvals: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wc.Evals != 1 || wc.Missed || len(wc.Crashes) != 0 {
		t.Fatalf("budget-1 search %+v", wc)
	}
	if _, err := WorstCase(s, AdversarySpec{Crashes: -1}, Options{}); err == nil {
		t.Fatal("negative crashes accepted")
	}
	if _, err := WorstCase(s, AdversarySpec{MaxEvals: maxAdversaryEvals + 1}, Options{}); err == nil {
		t.Fatal("over-cap max_evals accepted")
	}
}

func TestAdversarySpecString(t *testing.T) {
	// Defaults canonicalize: an omitted field and its explicit default
	// render identically (the property cache keys need).
	a := AdversarySpec{Crashes: 2}
	b := AdversarySpec{Crashes: 2, GroupSize: 1, TimeGrid: defaultTimeGrid, MaxEvals: defaultMaxEvals}
	if a.String() != b.String() {
		t.Fatalf("default canonicalization broken: %q vs %q", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), "adv:2:") {
		t.Fatalf("unexpected spec form %q", a.String())
	}
	if a.String() == (AdversarySpec{Crashes: 3}).String() {
		t.Fatal("distinct budgets render identically")
	}
}

func BenchmarkAdversarialSearch(b *testing.B) {
	s := adversarySchedule(b, 7, 10, 1)
	spec := AdversarySpec{Crashes: 2, TimeGrid: 4, MaxEvals: 256}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WorstCase(s, spec, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
