package sim_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// evalSchedule builds a deterministic mid-size FTSA schedule for evaluation
// tests.
func evalSchedule(t testing.TB, procs, eps int) *sched.Schedule {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The acceptance criterion: same seed, any worker count, byte-identical
// EvalResult JSON.
func TestEvaluateDeterministicAcrossWorkers(t *testing.T) {
	s := evalSchedule(t, 8, 2)
	gens := []sim.ScenarioGenerator{
		sim.UniformGen{N: 2},
		sim.ExponentialGen{Lambda: 1.0 / s.UpperBound()},
		sim.WeibullGen{Shape: 1.5, Scale: s.UpperBound()},
		sim.GroupGen{Size: 3, Lambda: 1.0 / s.UpperBound()},
		sim.BurstGen{N: 3, Lambda: 2.0 / s.UpperBound(), Spread: s.UpperBound() / 10},
		sim.StaggeredGen{N: 2, Horizon: s.UpperBound()},
	}
	for _, gen := range gens {
		t.Run(gen.Spec().Kind, func(t *testing.T) {
			var want []byte
			for _, workers := range []int{1, 3, 8} {
				res, err := sim.Evaluate(s, gen, 300, sim.EvalOptions{Seed: 7, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				blob, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want = blob
					continue
				}
				if !bytes.Equal(blob, want) {
					t.Fatalf("workers=%d result differs:\n%s\nvs\n%s", workers, blob, want)
				}
			}
		})
	}
}

// Distinct seeds must explore distinct scenario streams.
func TestEvaluateSeedMatters(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	gen := sim.ExponentialGen{Lambda: 2.0 / s.UpperBound()}
	a, err := sim.Evaluate(s, gen, 200, sim.EvalOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Evaluate(s, gen, 200, sim.EvalOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency == b.Latency && a.Successes == b.Successes {
		t.Fatal("two seeds produced identical aggregates; generator looks seed-insensitive")
	}
}

// A schedule tolerating ε crashes must survive every uniform-ε scenario at
// time zero — Evaluate over the guarantee region reports 100% success.
func TestEvaluateWithinGuarantee(t *testing.T) {
	s := evalSchedule(t, 8, 2)
	res, err := sim.Evaluate(s, sim.UniformGen{N: 2}, 250, sim.EvalOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate != 1 || res.Successes != 250 {
		t.Fatalf("ε=2 schedule failed under 2 uniform crashes: %+v", res)
	}
	if res.SuccessLow <= 0.9 || res.SuccessHigh != 1 {
		t.Fatalf("Wilson interval [%g,%g] implausible for 250/250", res.SuccessLow, res.SuccessHigh)
	}
	if res.Latency.Mean < s.LowerBound()-1e-9 || res.Latency.Mean > s.UpperBound()+1e-9 {
		t.Fatalf("mean crash latency %g outside [M*=%g, M=%g]", res.Latency.Mean, s.LowerBound(), s.UpperBound())
	}
	if res.Latency.P50 > res.Latency.P99 || res.Latency.Max > s.UpperBound()+1e-9 {
		t.Fatalf("latency summary inconsistent: %+v", res.Latency)
	}
	// All trials crash exactly 2 processors: one histogram bucket.
	if len(res.ByFailures) != 1 || res.ByFailures[0].Failures != 2 {
		t.Fatalf("histogram %+v, want a single failures=2 bucket", res.ByFailures)
	}
	if res.ByFailures[0].MeanDegradation < 0 {
		t.Fatalf("negative degradation %g", res.ByFailures[0].MeanDegradation)
	}
}

// Beyond the guarantee the success rate must drop below 1 but stay
// consistent with the histogram decomposition.
func TestEvaluateHistogramConserves(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	res, err := sim.Evaluate(s, sim.ExponentialGen{Lambda: 2.0 / s.UpperBound()}, 400, sim.EvalOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	trials, succ := 0, 0
	prev := -1
	for _, b := range res.ByFailures {
		if b.Failures <= prev {
			t.Fatalf("histogram not ascending: %+v", res.ByFailures)
		}
		prev = b.Failures
		trials += b.Trials
		succ += b.Successes
		if b.Successes > b.Trials {
			t.Fatalf("bucket %+v has more successes than trials", b)
		}
	}
	if trials != res.Trials || succ != res.Successes {
		t.Fatalf("histogram sums %d/%d, result says %d/%d", succ, trials, res.Successes, res.Trials)
	}
	if res.SuccessLow > res.SuccessRate || res.SuccessRate > res.SuccessHigh {
		t.Fatalf("Wilson interval [%g,%g] excludes the point estimate %g",
			res.SuccessLow, res.SuccessHigh, res.SuccessRate)
	}
}

// Evaluate agrees with the one-shot simulator trial for trial: replaying the
// same seeded scenario through Run must reproduce each trial's outcome.
func TestEvaluateAgreesWithRun(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	gen := sim.ExponentialGen{Lambda: 1.5 / s.UpperBound()}
	const trials = 64
	res, err := sim.Evaluate(s, gen, trials, sim.EvalOptions{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	latSum := 0.0
	for i := 0; i < trials; i++ {
		rng := rand.New(rand.NewSource(sim.TrialSeed(5, i)))
		sc := sim.NewScenario(8)
		var scratch sim.ScenarioScratch
		if err := gen.FillScenario(rng, &sc, &scratch); err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(s, sc, nil)
		if err != nil {
			continue
		}
		succ++
		latSum += r.Latency
	}
	if succ != res.Successes {
		t.Fatalf("serial replay found %d successes, Evaluate %d", succ, res.Successes)
	}
	if succ > 0 {
		if got := res.Latency.Mean; math.Abs(got-latSum/float64(succ)) > 1e-9*latSum {
			t.Fatalf("mean latency %g, serial replay %g", got, latSum/float64(succ))
		}
	}
}

// Memory must stay flat in the trial count: 16× the trials may not cost
// meaningfully more allocations per Evaluate call.
func TestEvaluateMemoryFlatInTrials(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	gen := sim.ExponentialGen{Lambda: 1.0 / s.UpperBound()}
	measure := func(trials int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := sim.Evaluate(s, gen, trials, sim.EvalOptions{Seed: 1, Workers: 2}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(64), measure(1024)
	// The fixed overhead (goroutines, channels, result) is tens of allocs;
	// anything per-trial would blow the large run past 2× the small one.
	if large > 2*small+64 {
		t.Fatalf("allocs grow with trials: %g at 64 trials, %g at 1024", small, large)
	}
}

func TestEvaluateErrors(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	if _, err := sim.Evaluate(s, nil, 10, sim.EvalOptions{}); err == nil {
		t.Error("want error for nil generator")
	}
	if _, err := sim.Evaluate(s, sim.UniformGen{N: 1}, 0, sim.EvalOptions{}); err == nil {
		t.Error("want error for zero trials")
	}
	if _, err := sim.Evaluate(s, sim.UniformGen{N: 99}, 10, sim.EvalOptions{}); err == nil {
		t.Error("want error for more crashes than processors")
	}
	if _, err := sim.Evaluate(s, sim.ExponentialGen{Lambda: -1}, 10, sim.EvalOptions{}); err == nil {
		t.Error("want error for negative rate")
	}
}

// One worker is plenty to saturate a single-trial evaluation.
func TestEvaluateSingleTrial(t *testing.T) {
	s := evalSchedule(t, 8, 1)
	res, err := sim.Evaluate(s, sim.UniformGen{N: 1}, 1, sim.EvalOptions{Seed: 9, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1 {
		t.Fatalf("trials = %d, want 1", res.Trials)
	}
}

// BenchmarkEvaluate demonstrates the O(1)-in-trials memory contract:
// allocs/op must be essentially identical across the trial counts.
func BenchmarkEvaluate(b *testing.B) {
	s := evalSchedule(b, 8, 1)
	gen := sim.ExponentialGen{Lambda: 1.0 / s.UpperBound()}
	for _, trials := range []int{64, 512, 4096} {
		b.Run(itoa(trials), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Evaluate(s, gen, trials, sim.EvalOptions{Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	blob, _ := json.Marshal(v)
	return "trials-" + string(blob)
}

func TestLatencyMeanInterval(t *testing.T) {
	s := evalSchedule(t, 8, 2)
	res, err := sim.Evaluate(s, sim.UniformGen{N: 1}, 200, sim.EvalOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes == 0 {
		t.Fatal("evaluation produced no successes; pick a friendlier scenario")
	}
	lo, hi, ok := res.LatencyMeanInterval(1.96)
	if !ok {
		t.Fatal("interval not ok despite successes")
	}
	if !(lo <= res.Latency.Mean && res.Latency.Mean <= hi) {
		t.Fatalf("mean %g outside its own interval [%g, %g]", res.Latency.Mean, lo, hi)
	}
	wantHalf := 1.96 * res.Latency.StdDev / math.Sqrt(float64(res.Successes))
	if got := (hi - lo) / 2; math.Abs(got-wantHalf) > 1e-12 {
		t.Fatalf("half-width %g, want %g", got, wantHalf)
	}

	// All processors dead at t=0: nothing can succeed, interval must report !ok.
	dead, err := sim.Evaluate(s, sim.UniformGen{N: 8}, 10, sim.EvalOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dead.Successes != 0 {
		t.Fatalf("crashing every processor still succeeded %d times", dead.Successes)
	}
	if _, _, ok := dead.LatencyMeanInterval(1.96); ok {
		t.Fatal("interval ok with zero successes")
	}
}
