package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"strings"

	"ftsched/internal/trace"
)

// TraceSpec carries a recorded failure trace through a ScenarioSpec — the
// "trace" scenario kind's parameters. The events are the JSONL format of
// internal/trace; Scale stretches or compresses the recorded timeline onto
// the schedule's time units; Resample switches from verbatim replay to
// bootstrap resampling across Monte-Carlo trials.
type TraceSpec struct {
	// Events is the recorded failure log, in file order.
	Events []trace.Event `json:"events"`
	// Scale multiplies every crash time; 0 means 1 (unscaled), so the
	// field can be omitted on the wire.
	Scale float64 `json:"scale,omitempty"`
	// Resample, when true, bootstrap-resamples whole incidents (events
	// sharing a correlation group, singletons otherwise) with replacement
	// per trial — len(incidents) draws, so the expected failure mass
	// matches the trace. When false every trial replays the trace
	// verbatim, making the evaluation a deterministic regression check.
	Resample bool `json:"resample,omitempty"`
}

// scale returns the effective time multiplier.
func (ts TraceSpec) scale() float64 {
	if ts.Scale == 0 {
		return 1
	}
	return ts.Scale
}

// check validates the platform-independent parts of the spec.
func (ts TraceSpec) check() error {
	if err := trace.Check(ts.Events); err != nil {
		return fmt.Errorf("sim: %v", err)
	}
	if math.IsNaN(ts.Scale) || math.IsInf(ts.Scale, 0) || ts.Scale < 0 {
		return fmt.Errorf("sim: trace scale must be a positive finite number, got %g", ts.Scale)
	}
	return nil
}

// String renders the canonical display form: a content digest of the events
// plus the scale and resample switches. Distinct traces must render
// distinctly — the response cache keys on this string — so it hashes every
// event; it is not re-parseable (the file the events came from is gone).
func (ts TraceSpec) String() string {
	h := fnv.New64a()
	var buf [32]byte
	for _, ev := range ts.Events {
		h.Write(fmt.Appendf(buf[:0], "%d|%s|%s\n", ev.Proc, fg(ev.Time), ev.Group))
	}
	s := fmt.Sprintf("trace:%dev#%016x", len(ts.Events), h.Sum64())
	if ts.scale() != 1 {
		s += ":x" + fg(ts.Scale)
	}
	if ts.Resample {
		s += ":resample"
	}
	return s
}

// TraceGen replays a recorded failure trace as a ScenarioGenerator —
// ROADMAP item 5's trace-driven failure model. Without resampling every
// trial sees the identical scenario (the trace itself, time-scaled); with
// resampling each trial draws incidents from the trace with replacement, so
// the Monte-Carlo distribution is the empirical incident distribution.
// Duplicate crashes of one processor keep the earliest time.
type TraceGen struct {
	spec      TraceSpec
	incidents [][]trace.Event // precomputed so the trial loop allocates nothing
	maxProc   int
}

// NewTraceGen validates the spec and precomputes the incident grouping.
func NewTraceGen(ts TraceSpec) (*TraceGen, error) {
	if err := ts.check(); err != nil {
		return nil, err
	}
	return &TraceGen{
		spec:      ts,
		incidents: trace.Incidents(ts.Events),
		maxProc:   trace.MaxProc(ts.Events),
	}, nil
}

// Check implements ScenarioGenerator.
func (g *TraceGen) Check(m int) error {
	if g.maxProc >= m {
		return fmt.Errorf("sim: trace names processor %d, platform has %d", g.maxProc, m)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g *TraceGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	if err := g.Check(len(sc.CrashTime)); err != nil {
		return err
	}
	resetAlive(sc)
	scale := g.spec.scale()
	apply := func(ev trace.Event) {
		if at := ev.Time * scale; at < sc.CrashTime[ev.Proc] {
			sc.CrashTime[ev.Proc] = at
		}
	}
	if !g.spec.Resample {
		for _, ev := range g.spec.Events {
			apply(ev)
		}
		return nil
	}
	k := len(g.incidents)
	for i := 0; i < k; i++ {
		for _, ev := range g.incidents[rng.Intn(k)] {
			apply(ev)
		}
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g *TraceGen) Spec() ScenarioSpec { return ScenarioSpec{Kind: "trace", Trace: &g.spec} }

// loadTraceEvents reads a failure trace from a file, converting from CSV
// when the extension says so — the converter path of the trace:FILE flag
// form.
func loadTraceEvents(path string) ([]trace.Event, error) {
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("trace: %v", err)
		}
		defer f.Close()
		return trace.FromCSV(f)
	}
	return trace.ParseFile(path)
}

// traceScenarioKind is the registry entry of the "trace" kind. The flag
// form reads the trace from disk at parse time (CLI usage); wire requests
// carry the events inline in the spec's trace field, so the server never
// touches the filesystem.
func traceScenarioKind() ScenarioKindReg {
	return ScenarioKindReg{
		Name:     "trace",
		Summary:  "replay a recorded failure trace (JSONL or CSV incident log), optionally time-scaled and bootstrap-resampled",
		FlagForm: "trace:FILE[:SCALE][:resample]",
		Params: []ScenarioParam{
			{Name: "trace.events", Type: "events", Doc: "recorded crashes: {proc, time, group?} per event (JSONL lines in the flag-form file)"},
			{Name: "trace.scale", Type: "float", Doc: "multiplier applied to every crash time; omitted means 1", Optional: true},
			{Name: "trace.resample", Type: "bool", Doc: "bootstrap whole incidents with replacement per trial instead of verbatim replay", Optional: true},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) < 1 || len(args) > 3 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			path := strings.TrimSpace(args[0])
			if path == "" {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			events, err := loadTraceEvents(path)
			if err != nil {
				return ScenarioSpec{}, fmt.Errorf("sim: scenario %q: %v", spec, err)
			}
			ts := &TraceSpec{Events: events}
			for _, arg := range args[1:] {
				arg = strings.TrimSpace(arg)
				if strings.EqualFold(arg, "resample") {
					if ts.Resample {
						return ScenarioSpec{}, fmt.Errorf("sim: scenario %q: duplicate resample", spec)
					}
					ts.Resample = true
					continue
				}
				if ts.Scale != 0 {
					return ScenarioSpec{}, fmt.Errorf("sim: scenario %q: duplicate scale %q", spec, arg)
				}
				if ts.Scale, err = specAtof(spec, arg); err != nil {
					return ScenarioSpec{}, err
				}
				if ts.Scale <= 0 || math.IsInf(ts.Scale, 0) || math.IsNaN(ts.Scale) {
					return ScenarioSpec{}, fmt.Errorf("sim: scenario %q: scale must be a positive finite number, got %s", spec, arg)
				}
			}
			return ScenarioSpec{Kind: "trace", Trace: ts}, nil
		},
		Format: func(sp ScenarioSpec) string {
			if sp.Trace == nil {
				return "trace"
			}
			return sp.Trace.String()
		},
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			if sp.Trace == nil {
				return nil, fmt.Errorf("sim: trace scenario needs trace.events (or the trace:FILE flag form)")
			}
			return NewTraceGen(*sp.Trace)
		},
	}
}
