package sim_test

import (
	"fmt"
	"log"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sim"
)

// ExampleRun schedules a two-task chain with one tolerated failure and
// replays it with and without a crash. Hand-checkable numbers: costs 5 and
// 7, volume 10, unit delays.
func ExampleRun() {
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		log.Fatal(err)
	}
	s, err := core.FTSA(g, p, cm, core.Options{Epsilon: 1})
	if err != nil {
		log.Fatal(err)
	}

	clean, err := sim.Run(s, sim.NoFailures(2), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("no failure:", clean.Latency)

	sc, err := sim.CrashAtZero(2, 1)
	if err != nil {
		log.Fatal(err)
	}
	crashed, err := sim.Run(s, sc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("P1 dead:  ", crashed.Latency)
	// Output:
	// no failure: 12
	// P1 dead:   12
}

// ExampleUniformCrashes draws the paper's crash scenarios: n distinct
// processors chosen uniformly, dead from the start.
func ExampleUniformCrashes() {
	// Deterministic for the doc test.
	sc, err := sim.CrashAtZero(4, 0, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("failed processors:", sc.NumFailed())
	// Output:
	// failed processors: 2
}
