package sim

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/core"
)

func TestGroupCrash(t *testing.T) {
	sc, err := GroupCrash(10, 3, 1, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 10; p++ {
		want := math.Inf(1)
		if p >= 3 && p < 6 {
			want = 5.0
		}
		if sc.CrashTime[p] != want {
			t.Errorf("P%d crash = %g, want %g", p, sc.CrashTime[p], want)
		}
	}
	// Last group may be partial.
	sc, err = GroupCrash(10, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumFailed() != 2 {
		t.Errorf("partial group failed %d, want 2", sc.NumFailed())
	}
	if _, err := GroupCrash(10, 3, 5, 0); err == nil {
		t.Error("out-of-range group accepted")
	}
	if _, err := GroupCrash(10, 0, 0, 0); err == nil {
		t.Error("zero group size accepted")
	}
}

func TestStaggeredCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc, err := StaggeredCrashes(rng, 8, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumFailed() != 3 {
		t.Fatalf("failed %d, want 3", sc.NumFailed())
	}
	// All crash times strictly inside (0, horizon).
	for p, ct := range sc.CrashTime {
		if math.IsInf(ct, 1) {
			continue
		}
		if ct <= 0 || ct >= 100 {
			t.Errorf("P%d crash at %g outside (0,100)", p, ct)
		}
	}
	if _, err := StaggeredCrashes(rng, 4, 5, 100); err == nil {
		t.Error("too many crashes accepted")
	}
	if _, err := StaggeredCrashes(rng, 4, 2, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestExponentialCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc, err := ExponentialCrashes(rng, 50, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Every processor gets a finite crash time; the sample mean should be
	// near 1/λ = 10.
	sum := 0.0
	for _, ct := range sc.CrashTime {
		if math.IsInf(ct, 1) {
			t.Fatal("infinite crash time from exponential sampler")
		}
		sum += ct
	}
	mean := sum / 50
	if mean < 5 || mean > 20 {
		t.Errorf("sample mean %g far from 10", mean)
	}
	if _, err := ExponentialCrashes(rng, 5, 0); err == nil {
		t.Error("λ=0 accepted")
	}
}

func TestScheduleSurvivesGroupCrashWithinEpsilon(t *testing.T) {
	// A rack of 2 dies at time zero; ε=2 must absorb it.
	inst := instance(t, 6, 8)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	for group := 0; group < 4; group++ {
		sc, err := GroupCrash(8, 2, group, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, sc, nil)
		if err != nil {
			t.Fatalf("group %d: %v", group, err)
		}
		if res.Latency > s.UpperBound()+1e-7 {
			t.Errorf("group %d latency %g exceeds bound %g", group, res.Latency, s.UpperBound())
		}
	}
}

func TestStaggeredCrashesLateFailuresCheaper(t *testing.T) {
	// Crashes late in the horizon should hurt less than crash-at-zero on
	// average: compare the same schedule under both.
	inst := instance(t, 7, 10)
	const eps = 3
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	var early, late float64
	const trials = 20
	for i := 0; i < trials; i++ {
		rngE := rand.New(rand.NewSource(int64(100 + i)))
		scE, err := UniformCrashes(rngE, 10, eps)
		if err != nil {
			t.Fatal(err)
		}
		resE, err := Run(s, scE, nil)
		if err != nil {
			t.Fatal(err)
		}
		early += resE.Latency
		rngL := rand.New(rand.NewSource(int64(100 + i)))
		scL, err := StaggeredCrashes(rngL, 10, eps, s.UpperBound()*2)
		if err != nil {
			t.Fatal(err)
		}
		resL, err := Run(s, scL, nil)
		if err != nil {
			t.Fatal(err)
		}
		late += resL.Latency
	}
	if late > early*1.001 {
		t.Errorf("staggered (mostly late) crashes %g should not exceed crash-at-zero %g", late/trials, early/trials)
	}
}
