package sim

import (
	"bytes"
	"strings"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// buildChainSchedule returns the ε=1 FTSA schedule of the hand-computable
// two-task chain (costs 5 and 7, volume 10, two processors, unit delay).
func buildChainSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.FTSA(g, p, cm, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTraceRecordsFullExecution(t *testing.T) {
	inst := instance(t, 1, 6)
	const eps = 1
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	res, err := RunWithOptions(s, NoFailures(6), Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	v := inst.Graph.NumTasks()
	// Without failures every replica starts and finishes.
	starts := tr.Filter(EventStart)
	finishes := tr.Filter(EventFinish)
	if len(starts) != v*(eps+1) || len(finishes) != v*(eps+1) {
		t.Fatalf("starts=%d finishes=%d, want %d each", len(starts), len(finishes), v*(eps+1))
	}
	if len(tr.Filter(EventCrash)) != 0 || len(tr.Filter(EventSkip)) != 0 || len(tr.Filter(EventKilled)) != 0 {
		t.Error("unexpected failure events in a failure-free run")
	}
	// Events are time-sorted and the last finish equals... at least reaches
	// the reported latency.
	last := 0.0
	for i, e := range tr.Events {
		if i > 0 && e.Time < tr.Events[i-1].Time {
			t.Fatalf("trace not sorted at %d", i)
		}
		if e.Kind == EventFinish && e.Time > last {
			last = e.Time
		}
	}
	if last < res.Latency-1e-9 {
		t.Errorf("last finish %g before reported latency %g", last, res.Latency)
	}
}

func TestTraceRecordsCrashes(t *testing.T) {
	inst := instance(t, 2, 6)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := CrashAtZero(6, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := &Trace{}
	if _, err := RunWithOptions(s, sc, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	crashes := tr.Filter(EventCrash)
	if len(crashes) != 2 {
		t.Fatalf("crash events = %d, want 2", len(crashes))
	}
	// Crash-at-zero events sort first.
	if tr.Events[0].Kind != EventCrash || tr.Events[0].Time != 0 {
		t.Errorf("first event %+v", tr.Events[0])
	}
	// No replica may start on a dead processor.
	for _, e := range tr.Filter(EventStart) {
		if e.Proc == 0 || e.Proc == 3 {
			t.Errorf("replica started on crashed processor: %+v", e)
		}
	}
}

func TestTraceMidExecutionKill(t *testing.T) {
	// Reuse the hand-computed chain: P0 crashes at 6, cutting task 1's copy.
	inst := instance(t, 3, 4)
	_ = inst
	tr := &Trace{}
	s := buildChainSchedule(t)
	sc := NoFailures(2)
	if err := sc.Crash(0, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := RunWithOptions(s, sc, Options{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	killed := tr.Filter(EventKilled)
	if len(killed) != 1 || killed[0].Task != 1 || killed[0].Proc != 0 {
		t.Errorf("killed events %+v", killed)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"crash   P0", "killed", "finish"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindString(t *testing.T) {
	kinds := []EventKind{EventStart, EventFinish, EventSkip, EventKilled, EventCrash}
	want := []string{"start", "finish", "skip", "killed", "crash"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("%d: %q", i, k.String())
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind empty")
	}
}
