package sim

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/sched"
)

// AdversarySpec bounds an adversarial scenario search: the attacker may
// crash up to Crashes units (single processors, or aligned racks of
// GroupSize) at times of its choosing, and the search spends at most
// MaxEvals schedule replays finding the most damaging pattern. The zero
// value of every optional field selects a sensible default, and defaults
// are canonicalized before fingerprinting, so an explicit default and an
// omitted field share one cache entry.
type AdversarySpec struct {
	// Crashes is the attack budget: how many units may be crashed. It is
	// clamped to the number of units on the platform.
	Crashes int `json:"crashes"`
	// GroupSize, when > 1, makes the unit of attack an aligned rack of
	// that many consecutive processors (the group scenario's rack
	// structure) instead of a single processor.
	GroupSize int `json:"group_size,omitempty"`
	// TimeGrid caps the candidate crash times per unit: time 0 plus up to
	// TimeGrid-1 replica-finish boundaries from the no-failure replay
	// (crash times between two boundaries kill the same replicas, so only
	// boundaries matter). 0 means 8.
	TimeGrid int `json:"time_grid,omitempty"`
	// MaxEvals is the replay budget of the search, counting the baseline
	// replay. 0 means 4096.
	MaxEvals int `json:"max_evals,omitempty"`
}

const (
	defaultTimeGrid = 8
	defaultMaxEvals = 4096
	// maxAdversaryEvals caps the budget a request can ask for; one replay
	// is cheap but not free, and the search is synchronous on the serving
	// path.
	maxAdversaryEvals = 1 << 20
)

// normalized fills defaults — the shape fingerprints hash, so an explicit
// default and an omitted field produce one cache key.
func (a AdversarySpec) normalized() AdversarySpec {
	if a.GroupSize < 1 {
		a.GroupSize = 1
	}
	if a.TimeGrid < 1 {
		a.TimeGrid = defaultTimeGrid
	}
	if a.MaxEvals < 1 {
		a.MaxEvals = defaultMaxEvals
	}
	return a
}

// Validate rejects a spec no search could run.
func (a AdversarySpec) Validate() error {
	if a.Crashes < 0 {
		return fmt.Errorf("sim: worst case needs crashes >= 0, got %d", a.Crashes)
	}
	if a.GroupSize < 0 {
		return fmt.Errorf("sim: negative worst-case group_size %d", a.GroupSize)
	}
	if a.TimeGrid < 0 {
		return fmt.Errorf("sim: negative worst-case time_grid %d", a.TimeGrid)
	}
	if a.MaxEvals < 0 {
		return fmt.Errorf("sim: negative worst-case max_evals %d", a.MaxEvals)
	}
	if a.MaxEvals > maxAdversaryEvals {
		return fmt.Errorf("sim: worst-case max_evals %d exceeds the cap of %d", a.MaxEvals, maxAdversaryEvals)
	}
	return nil
}

// String renders the normalized spec canonically — the form fingerprints
// and result echoes share.
func (a AdversarySpec) String() string {
	n := a.normalized()
	return fmt.Sprintf("adv:%d:g%d:t%d:e%d", n.Crashes, n.GroupSize, n.TimeGrid, n.MaxEvals)
}

// CrashEvent is one processor crash of a worst-case pattern.
type CrashEvent struct {
	Proc int     `json:"proc"`
	Time float64 `json:"time"`
}

// WorstCaseResult reports the most damaging failure pattern a bounded
// adversarial search found — the deterministic worst-case column next to
// /evaluate's Monte-Carlo mean. Missed reports that the pattern starves an
// exit task (the schedule misses); otherwise Latency/Degradation report how
// far the pattern stretches the execution past the no-failure baseline.
type WorstCaseResult struct {
	// Spec echoes the normalized search budget.
	Spec string `json:"spec"`
	// Crashes is the worst pattern found, ordered by (time, proc).
	Crashes []CrashEvent `json:"crashes"`
	// Missed reports whether the pattern defeats the schedule outright.
	Missed bool `json:"missed"`
	// Latency is the makespan under the pattern (0 when Missed).
	Latency float64 `json:"latency"`
	// Degradation is (Latency - baseline)/baseline against the no-failure
	// replay (0 when Missed).
	Degradation float64 `json:"degradation"`
	// Evals counts replays spent, including the baseline.
	Evals int `json:"evals"`
	// Exhaustive reports that the search covered every crash-at-zero
	// pattern within budget, making the result a certificate over that
	// space rather than a heuristic.
	Exhaustive bool `json:"exhaustive"`
}

// advOutcome orders search outcomes: a miss beats any success, higher
// latency beats lower.
type advOutcome struct {
	missed  bool
	latency float64
}

func (o advOutcome) beats(p advOutcome) bool {
	if o.missed != p.missed {
		return o.missed
	}
	return o.latency > p.latency
}

// WorstCase searches for the failure pattern within spec's budget that does
// the most damage to the schedule: first every crash-at-time-zero pattern
// (exhaustively, when the subset count fits the eval budget — uniform:N's
// entire support, so the worst case provably dominates any Monte-Carlo draw
// of the same shape), then a greedy pass over the crash-time grid seeded by
// the no-failure replay's replica finish boundaries. The search is
// single-threaded and fully deterministic: equal inputs give byte-identical
// results at any worker or shard count.
func WorstCase(s *sched.Schedule, spec AdversarySpec, opt Options) (*WorstCaseResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := spec.normalized()
	m := s.Platform.NumProcs()
	rp, err := newReplayer(s, opt)
	if err != nil {
		return nil, err
	}
	defer rp.release()

	// Baseline no-failure replay: the degradation anchor and the source of
	// the crash-time grid.
	sc := NewScenario(m)
	evals := 0
	eval := func() (advOutcome, error) {
		evals++
		lat, _, badExit, err := rp.replay(sc, nil)
		if err != nil {
			return advOutcome{}, err
		}
		return advOutcome{missed: badExit >= 0, latency: lat}, nil
	}
	base, err := eval()
	if err != nil {
		return nil, err
	}
	if base.missed {
		// The schedule fails with no crashes at all; there is nothing for
		// an adversary to do.
		return &WorstCaseResult{Spec: n.String(), Missed: true, Evals: evals, Exhaustive: true}, nil
	}

	// Units of attack: single processors, or aligned racks of GroupSize.
	units := (m + n.GroupSize - 1) / n.GroupSize
	unitProcs := func(u int) (lo, hi int) {
		lo = u * n.GroupSize
		hi = lo + n.GroupSize
		if hi > m {
			hi = m
		}
		return lo, hi
	}
	k := n.Crashes
	if k > units {
		k = units
	}
	best := base
	bestPattern := []CrashEvent{}
	result := func(exhaustive bool) *WorstCaseResult {
		res := &WorstCaseResult{
			Spec:       n.String(),
			Crashes:    bestPattern,
			Missed:     best.missed,
			Evals:      evals,
			Exhaustive: exhaustive,
		}
		if !best.missed {
			res.Latency = best.latency
			if base.latency > 0 {
				res.Degradation = (best.latency - base.latency) / base.latency
			}
		}
		sort.Slice(res.Crashes, func(i, j int) bool {
			if res.Crashes[i].Time != res.Crashes[j].Time {
				return res.Crashes[i].Time < res.Crashes[j].Time
			}
			return res.Crashes[i].Proc < res.Crashes[j].Proc
		})
		return res
	}
	if k == 0 {
		return result(true), nil
	}

	// Candidate crash times per unit: 0 (dead from the start) plus the
	// baseline replica-finish boundaries on the unit's processors — a crash
	// between two boundaries kills exactly the replicas a crash at the lower
	// boundary kills, so only boundaries change the outcome (later crashes
	// can still interact across processors through rerouting; the grid is
	// the seed, not a proof). The boundary list is subsampled evenly to
	// TimeGrid entries. rp.finish still holds the baseline replay's times.
	times := make([][]float64, units)
	perProc := make([][]float64, m)
	for t := range rp.finish {
		for c, end := range rp.finish[t] {
			if math.IsInf(end, 1) {
				continue
			}
			p := int(s.Replicas(dag.TaskID(t))[c].Proc)
			perProc[p] = append(perProc[p], end)
		}
	}
	for u := 0; u < units; u++ {
		lo, hi := unitProcs(u)
		var b []float64
		for p := lo; p < hi; p++ {
			b = append(b, perProc[p]...)
		}
		sort.Float64s(b)
		// Dedupe and drop the maximum (crashing at or after the last finish
		// kills nothing on the unit).
		dst := 0
		for i, v := range b {
			if i > 0 && v == b[i-1] {
				continue
			}
			b[dst] = v
			dst++
		}
		b = b[:dst]
		if len(b) > 0 {
			b = b[:len(b)-1]
		}
		grid := []float64{0}
		if want := n.TimeGrid - 1; want > 0 && len(b) > 0 {
			switch {
			case len(b) <= want:
				grid = append(grid, b...)
			case want == 1:
				grid = append(grid, b[len(b)-1])
			default:
				for i := 0; i < want; i++ {
					grid = append(grid, b[i*(len(b)-1)/(want-1)])
				}
				grid = dedupeSorted(grid)
			}
		}
		times[u] = grid
	}

	// fill writes the pattern into sc and returns it as crash events.
	fill := func(pattern []unitCrash) []CrashEvent {
		resetAlive(&sc)
		var evs []CrashEvent
		for _, uc := range pattern {
			lo, hi := unitProcs(uc.unit)
			for p := lo; p < hi; p++ {
				sc.CrashTime[p] = uc.time
				evs = append(evs, CrashEvent{Proc: p, Time: uc.time})
			}
		}
		return evs
	}
	try := func(pattern []unitCrash) (stop bool, err error) {
		evs := fill(pattern)
		o, err := eval()
		if err != nil {
			return false, err
		}
		if o.beats(best) {
			best = o
			bestPattern = evs
		}
		return best.missed, nil
	}

	// Phase A: exhaustive crash-at-zero subsets, the support of uniform:k
	// draws, whenever the subset count fits the remaining budget.
	exhaustive := false
	if c, ok := binomial(units, k); ok && c <= int64(n.MaxEvals-evals) {
		exhaustive = true
		pattern := make([]unitCrash, k)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		for {
			for i, u := range idx {
				pattern[i] = unitCrash{unit: u}
			}
			stop, err := try(pattern)
			if err != nil {
				return nil, err
			}
			if stop {
				return result(exhaustive), nil
			}
			// Next k-subset in lexicographic order.
			i := k - 1
			for i >= 0 && idx[i] == units-k+i {
				i--
			}
			if i < 0 {
				break
			}
			idx[i]++
			for j := i + 1; j < k; j++ {
				idx[j] = idx[j-1] + 1
			}
		}
	}

	// Phase B: greedy construction over the time grid — add the single
	// (unit, time) crash that hurts most, k times, within the remaining
	// budget. Enumeration order (unit ascending, time ascending) plus
	// strict improvement makes every tie-break deterministic.
	chosen := make([]unitCrash, 0, k)
	taken := make([]bool, units)
	for step := 0; step < k && evals < n.MaxEvals; step++ {
		stepBest := advOutcome{latency: math.Inf(-1)}
		stepPick := unitCrash{unit: -1}
		for u := 0; u < units && evals < n.MaxEvals; u++ {
			if taken[u] {
				continue
			}
			for _, at := range times[u] {
				if evals >= n.MaxEvals {
					break
				}
				cand := append(chosen, unitCrash{unit: u, time: at})
				evs := fill(cand)
				o, err := eval()
				if err != nil {
					return nil, err
				}
				if o.beats(best) {
					best = o
					bestPattern = evs
				}
				if o.beats(stepBest) {
					stepBest = o
					stepPick = unitCrash{unit: u, time: at}
				}
				if o.missed {
					return result(exhaustive), nil
				}
			}
		}
		if stepPick.unit < 0 {
			break
		}
		chosen = append(chosen, stepPick)
		taken[stepPick.unit] = true
	}
	return result(exhaustive), nil
}

// unitCrash is one chosen (unit, crash time) of the search.
type unitCrash struct {
	unit int
	time float64
}

// binomial returns C(n, k), reporting overflow past 2^62.
func binomial(n, k int) (int64, bool) {
	if k < 0 || k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	c := int64(1)
	for i := 1; i <= k; i++ {
		if c > (1<<62)/int64(n-k+i) {
			return 0, false
		}
		c = c * int64(n-k+i) / int64(i)
	}
	return c, true
}

func dedupeSorted(v []float64) []float64 {
	dst := 0
	for i, x := range v {
		if i > 0 && x == v[i-1] {
			continue
		}
		v[dst] = x
		dst++
	}
	return v[:dst]
}
