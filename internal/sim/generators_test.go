package sim

import (
	"math"
	"math/rand"
	"testing"
)

func TestDrawDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var scratch ScenarioScratch
	for trial := 0; trial < 50; trial++ {
		procs := drawDistinct(rng, &scratch, 10, 4)
		if len(procs) != 4 {
			t.Fatalf("drew %d, want 4", len(procs))
		}
		seen := map[int]bool{}
		for _, p := range procs {
			if p < 0 || p >= 10 {
				t.Fatalf("processor %d outside [0,10)", p)
			}
			if seen[p] {
				t.Fatalf("duplicate processor %d in %v", p, procs)
			}
			seen[p] = true
		}
	}
}

func TestGeneratorsFillShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var scratch ScenarioScratch
	const m = 12
	for _, tc := range []struct {
		gen        ScenarioGenerator
		wantFailed int // -1: any
	}{
		{UniformGen{N: 3}, 3},
		{ExponentialGen{Lambda: 0.01}, m}, // every lifetime finite
		{WeibullGen{Shape: 2, Scale: 100}, m},
		{GroupGen{Size: 4, Lambda: 0.01}, 4},
		{BurstGen{N: 5, Lambda: 0.01, Spread: 10}, 5},
		{StaggeredGen{N: 2, Horizon: 100}, 2},
	} {
		t.Run(tc.gen.Spec().Kind, func(t *testing.T) {
			if err := tc.gen.Check(m); err != nil {
				t.Fatal(err)
			}
			sc := NewScenario(m)
			if err := tc.gen.FillScenario(rng, &sc, &scratch); err != nil {
				t.Fatal(err)
			}
			if got := sc.NumFailed(); got != tc.wantFailed {
				t.Fatalf("%d processors failed, want %d", got, tc.wantFailed)
			}
			for p, at := range sc.CrashTime {
				if at < 0 {
					t.Fatalf("processor %d crashes at negative time %g", p, at)
				}
			}
		})
	}
}

// A group crash must cover one aligned rack, failing together at one time.
func TestGroupGenCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var scratch ScenarioScratch
	gen := GroupGen{Size: 4, Lambda: 0.01}
	for trial := 0; trial < 30; trial++ {
		sc := NewScenario(10) // racks: [0..3], [4..7], [8..9]
		if err := gen.FillScenario(rng, &sc, &scratch); err != nil {
			t.Fatal(err)
		}
		first := -1
		at := math.Inf(1)
		for p, c := range sc.CrashTime {
			if math.IsInf(c, 1) {
				continue
			}
			if first < 0 {
				first, at = p, c
				continue
			}
			if c != at {
				t.Fatalf("rack members crash at %g and %g", at, c)
			}
		}
		if first%4 != 0 {
			t.Fatalf("rack starts at processor %d, want a multiple of 4", first)
		}
		want := 4
		if first == 8 {
			want = 2 // tail rack
		}
		if got := sc.NumFailed(); got != want {
			t.Fatalf("rack at %d lost %d processors, want %d", first, got, want)
		}
	}
}

// Burst crashes must land within [onset, onset+spread).
func TestBurstGenSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var scratch ScenarioScratch
	gen := BurstGen{N: 4, Lambda: 0.01, Spread: 5}
	sc := NewScenario(8)
	if err := gen.FillScenario(rng, &sc, &scratch); err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), 0.0
	for _, c := range sc.CrashTime {
		if math.IsInf(c, 1) {
			continue
		}
		lo, hi = math.Min(lo, c), math.Max(hi, c)
	}
	if hi-lo >= 5 {
		t.Fatalf("burst spans %g, want < spread 5", hi-lo)
	}
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	// With shape 1 the Weibull law degenerates to exponential with rate
	// 1/scale; the two generators consume rng identically, so equal seeds
	// yield equal draws.
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	var scratch ScenarioScratch
	scW, scE := NewScenario(6), NewScenario(6)
	if err := (WeibullGen{Shape: 1, Scale: 50}).FillScenario(a, &scW, &scratch); err != nil {
		t.Fatal(err)
	}
	if err := (ExponentialGen{Lambda: 1.0 / 50}).FillScenario(b, &scE, &scratch); err != nil {
		t.Fatal(err)
	}
	for p := range scW.CrashTime {
		if math.Abs(scW.CrashTime[p]-scE.CrashTime[p]) > 1e-9*scE.CrashTime[p] {
			t.Fatalf("processor %d: weibull(1,50) drew %g, exp(1/50) drew %g",
				p, scW.CrashTime[p], scE.CrashTime[p])
		}
	}
}

func TestScenarioSpecRoundTrip(t *testing.T) {
	for _, in := range []string{
		"uniform:2",
		"exp:0.001",
		"exponential:0.5",
		"weibull:1.5:2000",
		"group:4:0.001",
		"burst:3:0.001:50",
		"burst:3:0.001",
		"staggered:2:1000",
	} {
		sp, err := ParseScenarioSpec(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		gen, err := sp.Generator()
		if err != nil {
			t.Fatalf("materialize %q: %v", in, err)
		}
		// String() must re-parse to an identical spec (canonical form).
		again, err := ParseScenarioSpec(sp.String())
		if err != nil {
			t.Fatalf("re-parse %q (from %q): %v", sp.String(), in, err)
		}
		if again != sp {
			t.Fatalf("round trip changed the spec: %+v -> %q -> %+v", sp, sp.String(), again)
		}
		if gen.Spec().String() != sp.String() {
			t.Fatalf("generator spec %q, parsed spec %q", gen.Spec().String(), sp.String())
		}
	}
}

func TestScenarioSpecErrors(t *testing.T) {
	for _, in := range []string{
		"", "bogus:1", "uniform", "uniform:x", "uniform:-1",
		"exp:0", "exp:-2", "weibull:1", "weibull:0:5", "weibull:2:0",
		"group:0:0.1", "group:4:0", "burst:1:0", "burst:1:0.1:-2",
		"staggered:1:0", "staggered:1",
	} {
		if _, err := ParseScenarioSpec(in); err == nil {
			t.Errorf("ParseScenarioSpec(%q) accepted a malformed spec", in)
		}
	}
}
