// Package sim executes a fault-tolerant schedule under a fail-stop failure
// scenario and reports the achieved latency — the "Crash" curves of
// Figures 1(b), 2(b), 3(b) and 4(a) of the paper. Processors are fail-silent:
// a replica whose execution completes strictly before its processor's crash
// time has delivered its output messages; anything in flight at crash time
// is lost. A replica consumes a predecessor's data per the schedule's
// communication pattern: under PatternAll the earliest message from any
// completed copy ("the task is executed and ignores later incoming data"),
// under PatternMatched only the single matched source retained by MC-FTSA.
//
// Scenarios are crash-time assignments (NoFailures, CrashAtZero,
// UniformCrashes); optional communication models (one-port, bounded
// multi-port) and event tracing refine the replay beyond the paper's
// contention-free model. The experiment layer draws one uniform crash set
// per instance and replays every scheduler's schedule against it.
package sim
