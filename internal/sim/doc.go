// Package sim executes a fault-tolerant schedule under a fail-stop failure
// scenario and reports the achieved latency — the "Crash" curves of
// Figures 1(b), 2(b), 3(b) and 4(a) of the paper. Processors are fail-silent:
// a replica whose execution completes strictly before its processor's crash
// time has delivered its output messages; anything in flight at crash time
// is lost. A replica consumes a predecessor's data per the schedule's
// communication pattern: under PatternAll the earliest message from any
// completed copy ("the task is executed and ignores later incoming data"),
// under PatternMatched only the single matched source retained by MC-FTSA.
//
// Two entry points share one pooled replay core:
//
//   - Run / RunWithOptions replay a single hand-built Scenario (crash-time
//     assignments: NoFailures, CrashAtZero, UniformCrashes, GroupCrash,
//     StaggeredCrashes), with optional communication models (one-port,
//     bounded multi-port) and event tracing.
//   - Evaluate is the batch fault-injection engine: it replays a schedule
//     under thousands of scenarios drawn from a ScenarioGenerator (uniform,
//     exponential, Weibull, correlated rack groups, bursts, rolling
//     outages), sharded over a worker pool with deterministic per-trial
//     seeding (TrialSeed), and streams the outcomes into an EvalResult —
//     success rate with a Wilson interval, latency mean/p50/p99, and a
//     degradation-vs-failure-count histogram — in O(1) memory per trial.
//
// ScenarioSpec is the serializable description of a generator shared by the
// /evaluate service endpoint, the ftexp campaign axis and ftsched -scenario.
//
// The replay core freezes the schedule's graph once (dag.Flat) and walks the
// CSR predecessor arrays per replica; combined with pooled replayer scratch,
// a warm replay allocates nothing (BenchmarkReplay), which is what keeps
// Evaluate O(1) in trials.
package sim
