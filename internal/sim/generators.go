package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ScenarioGenerator draws one failure scenario per trial. Implementations
// write into a caller-owned Scenario and use only the supplied rng and
// scratch, so Evaluate's trial loop stays allocation-free; they must be
// stateless between calls (every trial gets a freshly seeded rng).
type ScenarioGenerator interface {
	// Check validates the generator against a platform of m processors
	// (e.g. "cannot crash 5 of 3"). Evaluate calls it once up front.
	Check(m int) error
	// FillScenario overwrites sc — whose CrashTime must already have
	// length m — with one drawn scenario.
	FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error
	// Spec returns the canonical serializable description of the generator.
	Spec() ScenarioSpec
}

// ScenarioScratch is the reusable temporary storage of a generator. The zero
// value is ready; capacity grows to the platform size on first use.
type ScenarioScratch struct {
	perm []int
}

// drawDistinct returns n distinct processors drawn uniformly from [0, m) by
// a partial Fisher-Yates shuffle over scratch storage. The returned slice
// aliases the scratch and is valid until the next call.
func drawDistinct(rng *rand.Rand, scratch *ScenarioScratch, m, n int) []int {
	p := scratch.perm
	if cap(p) < m {
		p = make([]int, m)
	}
	p = p[:m]
	for i := range p {
		p[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(m-i)
		p[i], p[j] = p[j], p[i]
	}
	scratch.perm = p
	return p[:n]
}

// resetAlive marks every processor of sc as never failing.
func resetAlive(sc *Scenario) {
	for i := range sc.CrashTime {
		sc.CrashTime[i] = math.Inf(1)
	}
}

func checkScenarioLen(sc *Scenario, m int) error {
	if len(sc.CrashTime) != m {
		return fmt.Errorf("sim: scenario buffer covers %d processors, generator expects %d", len(sc.CrashTime), m)
	}
	return nil
}

// UniformGen crashes N distinct uniformly drawn processors at time 0 — the
// paper's adversarial crash experiments ("processors that fail during the
// schedule process are chosen uniformly"), batch form of UniformCrashes.
type UniformGen struct {
	N int
}

// Check implements ScenarioGenerator.
func (g UniformGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g UniformGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	for _, p := range drawDistinct(rng, scratch, m, g.N) {
		sc.CrashTime[p] = 0
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g UniformGen) Spec() ScenarioSpec { return ScenarioSpec{Kind: "uniform", Crashes: g.N} }

// ExponentialGen draws an independent exponential lifetime with rate Lambda
// for every processor — the reliability package's failure law. It is the
// generator reliability.MonteCarlo runs on, so both agree trial-for-trial at
// equal seeds.
type ExponentialGen struct {
	Lambda float64
}

// Check implements ScenarioGenerator.
func (g ExponentialGen) Check(int) error {
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g ExponentialGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	if err := g.Check(len(sc.CrashTime)); err != nil {
		return err
	}
	for p := range sc.CrashTime {
		sc.CrashTime[p] = rng.ExpFloat64() / g.Lambda
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g ExponentialGen) Spec() ScenarioSpec { return ScenarioSpec{Kind: "exp", Lambda: g.Lambda} }

// WeibullGen draws independent Weibull(Shape, Scale) lifetimes — the classic
// hardware-aging law: Shape < 1 models infant mortality, Shape > 1 wear-out,
// Shape = 1 degenerates to exponential with rate 1/Scale. Sampling is by
// inverse transform: Scale · E^(1/Shape) with E standard exponential.
type WeibullGen struct {
	Shape, Scale float64
}

// Check implements ScenarioGenerator.
func (g WeibullGen) Check(int) error {
	if g.Shape <= 0 || g.Scale <= 0 {
		return fmt.Errorf("sim: Weibull shape and scale must be positive, got k=%g λ=%g", g.Shape, g.Scale)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g WeibullGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	if err := g.Check(len(sc.CrashTime)); err != nil {
		return err
	}
	inv := 1 / g.Shape
	for p := range sc.CrashTime {
		sc.CrashTime[p] = g.Scale * math.Pow(rng.ExpFloat64(), inv)
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g WeibullGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "weibull", Shape: g.Shape, Scale: g.Scale}
}

// GroupGen crashes one uniformly drawn group of Size consecutive processors
// (the rack structure of GroupCrash: group g covers [g·Size, (g+1)·Size)) at
// a single exponential time with rate Lambda — correlated failures the way
// real clusters fail: a power feed or top-of-rack switch takes the whole
// rack down at once.
type GroupGen struct {
	Size   int
	Lambda float64
}

// Check implements ScenarioGenerator.
func (g GroupGen) Check(m int) error {
	if g.Size < 1 {
		return fmt.Errorf("sim: group size %d", g.Size)
	}
	if g.Size > m {
		return fmt.Errorf("sim: group size %d exceeds platform of %d processors", g.Size, m)
	}
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g GroupGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	groups := (m + g.Size - 1) / g.Size
	grp := rng.Intn(groups)
	at := rng.ExpFloat64() / g.Lambda
	hi := (grp + 1) * g.Size
	if hi > m {
		hi = m
	}
	for p := grp * g.Size; p < hi; p++ {
		sc.CrashTime[p] = at
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g GroupGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "group", GroupSize: g.Size, Lambda: g.Lambda}
}

// BurstGen crashes N distinct uniformly drawn processors in a burst: the
// burst onset is exponential with rate Lambda, and each crash lands at the
// onset plus an independent uniform jitter in [0, Spread) — a cascading
// outage (thermal event, bad rollout) rather than independent attrition.
// Spread 0 crashes all N at the same instant.
type BurstGen struct {
	N      int
	Lambda float64
	Spread float64
}

// Check implements ScenarioGenerator.
func (g BurstGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	if g.Spread < 0 {
		return fmt.Errorf("sim: negative burst spread %g", g.Spread)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g BurstGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	onset := rng.ExpFloat64() / g.Lambda
	for _, p := range drawDistinct(rng, scratch, m, g.N) {
		at := onset
		if g.Spread > 0 {
			at += rng.Float64() * g.Spread
		}
		sc.CrashTime[p] = at
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g BurstGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "burst", Crashes: g.N, Lambda: g.Lambda, Spread: g.Spread}
}

// StaggeredGen crashes N distinct uniformly drawn processors at evenly
// spaced times across [0, Horizon] — the rolling outage of StaggeredCrashes
// as a batch generator: crash i happens at (i+1)·Horizon/(N+1), so no
// processor is dead at time zero.
type StaggeredGen struct {
	N       int
	Horizon float64
}

// Check implements ScenarioGenerator.
func (g StaggeredGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	if g.Horizon <= 0 && g.N > 0 {
		return fmt.Errorf("sim: non-positive horizon %g", g.Horizon)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g StaggeredGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	for i, p := range drawDistinct(rng, scratch, m, g.N) {
		sc.CrashTime[p] = g.Horizon * float64(i+1) / float64(g.N+1)
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g StaggeredGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "staggered", Crashes: g.N, Horizon: g.Horizon}
}

// ScenarioSpec is the wire/flag description of a scenario generator — the
// shape the /evaluate endpoint, the ftexp campaign axis and ftsched
// -scenario share. Only the fields the Kind uses are meaningful; Generator
// rejects inconsistent specs.
type ScenarioSpec struct {
	// Kind selects the generator: "uniform", "exp", "weibull", "group",
	// "burst" or "staggered".
	Kind string `json:"kind"`
	// Crashes is the crash count of "uniform", "burst" and "staggered".
	Crashes int `json:"crashes,omitempty"`
	// Lambda is the failure rate of "exp", "group" and "burst".
	Lambda float64 `json:"lambda,omitempty"`
	// Shape and Scale parameterize "weibull".
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// GroupSize is the rack size of "group".
	GroupSize int `json:"group_size,omitempty"`
	// Horizon is the rolling-outage window of "staggered".
	Horizon float64 `json:"horizon,omitempty"`
	// Spread is the per-crash jitter width of "burst".
	Spread float64 `json:"spread,omitempty"`
}

// Generator materializes the spec, validating its platform-independent
// parameters (counts are validated against m by the generator's Check).
func (sp ScenarioSpec) Generator() (ScenarioGenerator, error) {
	switch strings.ToLower(sp.Kind) {
	case "uniform":
		if sp.Crashes < 0 {
			return nil, fmt.Errorf("sim: uniform scenario needs crashes >= 0, got %d", sp.Crashes)
		}
		return UniformGen{N: sp.Crashes}, nil
	case "exp", "exponential":
		g := ExponentialGen{Lambda: sp.Lambda}
		if err := g.Check(0); err != nil {
			return nil, err
		}
		return g, nil
	case "weibull":
		g := WeibullGen{Shape: sp.Shape, Scale: sp.Scale}
		if err := g.Check(0); err != nil {
			return nil, err
		}
		return g, nil
	case "group":
		if sp.GroupSize < 1 {
			return nil, fmt.Errorf("sim: group scenario needs group_size >= 1, got %d", sp.GroupSize)
		}
		if sp.Lambda <= 0 {
			return nil, fmt.Errorf("sim: non-positive failure rate %g", sp.Lambda)
		}
		return GroupGen{Size: sp.GroupSize, Lambda: sp.Lambda}, nil
	case "burst":
		g := BurstGen{N: sp.Crashes, Lambda: sp.Lambda, Spread: sp.Spread}
		if sp.Crashes < 0 {
			return nil, fmt.Errorf("sim: burst scenario needs crashes >= 0, got %d", sp.Crashes)
		}
		if sp.Lambda <= 0 {
			return nil, fmt.Errorf("sim: non-positive failure rate %g", sp.Lambda)
		}
		if sp.Spread < 0 {
			return nil, fmt.Errorf("sim: negative burst spread %g", sp.Spread)
		}
		return g, nil
	case "staggered":
		if sp.Crashes < 0 {
			return nil, fmt.Errorf("sim: staggered scenario needs crashes >= 0, got %d", sp.Crashes)
		}
		if sp.Horizon <= 0 && sp.Crashes > 0 {
			return nil, fmt.Errorf("sim: non-positive horizon %g", sp.Horizon)
		}
		return StaggeredGen{N: sp.Crashes, Horizon: sp.Horizon}, nil
	case "":
		return nil, fmt.Errorf("sim: scenario spec missing kind (known: %s)", strings.Join(ScenarioKinds(), ", "))
	default:
		return nil, fmt.Errorf("sim: unknown scenario kind %q (known: %s)", sp.Kind, strings.Join(ScenarioKinds(), ", "))
	}
}

// ScenarioKinds lists the recognized scenario kinds with their flag syntax.
func ScenarioKinds() []string {
	return []string{
		"uniform:N", "exp:LAMBDA", "weibull:SHAPE:SCALE",
		"group:SIZE:LAMBDA", "burst:N:LAMBDA[:SPREAD]", "staggered:N:HORIZON",
	}
}

// String renders the spec in the colon-separated form ParseScenarioSpec
// reads, with shortest-exact float formatting so equal specs render
// identically (the property the response cache keys on).
func (sp ScenarioSpec) String() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch strings.ToLower(sp.Kind) {
	case "uniform":
		return fmt.Sprintf("uniform:%d", sp.Crashes)
	case "exp", "exponential":
		return "exp:" + f(sp.Lambda)
	case "weibull":
		return "weibull:" + f(sp.Shape) + ":" + f(sp.Scale)
	case "group":
		return fmt.Sprintf("group:%d:%s", sp.GroupSize, f(sp.Lambda))
	case "burst":
		return fmt.Sprintf("burst:%d:%s:%s", sp.Crashes, f(sp.Lambda), f(sp.Spread))
	case "staggered":
		return fmt.Sprintf("staggered:%d:%s", sp.Crashes, f(sp.Horizon))
	default:
		return sp.Kind
	}
}

// ParseScenarioSpec reads the colon-separated flag form of a spec, e.g.
// "uniform:2", "exp:0.001", "weibull:1.5:2000", "group:4:0.001",
// "burst:3:0.001:50" or "staggered:2:1000". The parsed spec is validated by
// Generator.
func ParseScenarioSpec(s string) (ScenarioSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	args := parts[1:]
	atoi := func(i int) (int, error) {
		v, err := strconv.Atoi(strings.TrimSpace(args[i]))
		if err != nil {
			return 0, fmt.Errorf("sim: scenario %q: bad integer %q", s, args[i])
		}
		return v, nil
	}
	atof := func(i int) (float64, error) {
		v, err := strconv.ParseFloat(strings.TrimSpace(args[i]), 64)
		if err != nil {
			return 0, fmt.Errorf("sim: scenario %q: bad number %q", s, args[i])
		}
		return v, nil
	}
	wrong := func() (ScenarioSpec, error) {
		return ScenarioSpec{}, fmt.Errorf("sim: scenario %q has the wrong arity (known: %s)",
			s, strings.Join(ScenarioKinds(), ", "))
	}
	var sp ScenarioSpec
	var err error
	switch kind {
	case "uniform":
		if len(args) != 1 {
			return wrong()
		}
		sp.Kind = "uniform"
		if sp.Crashes, err = atoi(0); err != nil {
			return ScenarioSpec{}, err
		}
	case "exp", "exponential":
		if len(args) != 1 {
			return wrong()
		}
		sp.Kind = "exp"
		if sp.Lambda, err = atof(0); err != nil {
			return ScenarioSpec{}, err
		}
	case "weibull":
		if len(args) != 2 {
			return wrong()
		}
		sp.Kind = "weibull"
		if sp.Shape, err = atof(0); err != nil {
			return ScenarioSpec{}, err
		}
		if sp.Scale, err = atof(1); err != nil {
			return ScenarioSpec{}, err
		}
	case "group":
		if len(args) != 2 {
			return wrong()
		}
		sp.Kind = "group"
		if sp.GroupSize, err = atoi(0); err != nil {
			return ScenarioSpec{}, err
		}
		if sp.Lambda, err = atof(1); err != nil {
			return ScenarioSpec{}, err
		}
	case "burst":
		if len(args) != 2 && len(args) != 3 {
			return wrong()
		}
		sp.Kind = "burst"
		if sp.Crashes, err = atoi(0); err != nil {
			return ScenarioSpec{}, err
		}
		if sp.Lambda, err = atof(1); err != nil {
			return ScenarioSpec{}, err
		}
		if len(args) == 3 {
			if sp.Spread, err = atof(2); err != nil {
				return ScenarioSpec{}, err
			}
		}
	case "staggered":
		if len(args) != 2 {
			return wrong()
		}
		sp.Kind = "staggered"
		if sp.Crashes, err = atoi(0); err != nil {
			return ScenarioSpec{}, err
		}
		if sp.Horizon, err = atof(1); err != nil {
			return ScenarioSpec{}, err
		}
	default:
		return ScenarioSpec{}, fmt.Errorf("sim: unknown scenario kind %q (known: %s)",
			kind, strings.Join(ScenarioKinds(), ", "))
	}
	// Round-trip through Generator so a parsed spec is always materializable.
	if _, err := sp.Generator(); err != nil {
		return ScenarioSpec{}, err
	}
	return sp, nil
}

// NewScenario returns a scenario buffer for m processors with every
// processor alive — the shape FillScenario overwrites.
func NewScenario(m int) Scenario {
	sc := Scenario{CrashTime: make([]float64, m)}
	resetAlive(&sc)
	return sc
}
