package sim

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ScenarioGenerator draws one failure scenario per trial. Implementations
// write into a caller-owned Scenario and use only the supplied rng and
// scratch, so Evaluate's trial loop stays allocation-free; they must be
// stateless between calls (every trial gets a freshly seeded rng).
type ScenarioGenerator interface {
	// Check validates the generator against a platform of m processors
	// (e.g. "cannot crash 5 of 3"). Evaluate calls it once up front.
	Check(m int) error
	// FillScenario overwrites sc — whose CrashTime must already have
	// length m — with one drawn scenario.
	FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error
	// Spec returns the canonical serializable description of the generator.
	Spec() ScenarioSpec
}

// ScenarioScratch is the reusable temporary storage of a generator. The zero
// value is ready; capacity grows to the platform size on first use.
type ScenarioScratch struct {
	perm []int
}

// drawDistinct returns n distinct processors drawn uniformly from [0, m) by
// a partial Fisher-Yates shuffle over scratch storage. The returned slice
// aliases the scratch and is valid until the next call.
func drawDistinct(rng *rand.Rand, scratch *ScenarioScratch, m, n int) []int {
	p := scratch.perm
	if cap(p) < m {
		p = make([]int, m)
	}
	p = p[:m]
	for i := range p {
		p[i] = i
	}
	for i := 0; i < n; i++ {
		j := i + rng.Intn(m-i)
		p[i], p[j] = p[j], p[i]
	}
	scratch.perm = p
	return p[:n]
}

// resetAlive marks every processor of sc as never failing.
func resetAlive(sc *Scenario) {
	for i := range sc.CrashTime {
		sc.CrashTime[i] = math.Inf(1)
	}
}

func checkScenarioLen(sc *Scenario, m int) error {
	if len(sc.CrashTime) != m {
		return fmt.Errorf("sim: scenario buffer covers %d processors, generator expects %d", len(sc.CrashTime), m)
	}
	return nil
}

// UniformGen crashes N distinct uniformly drawn processors at time 0 — the
// paper's adversarial crash experiments ("processors that fail during the
// schedule process are chosen uniformly"), batch form of UniformCrashes.
type UniformGen struct {
	N int
}

// Check implements ScenarioGenerator.
func (g UniformGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g UniformGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	for _, p := range drawDistinct(rng, scratch, m, g.N) {
		sc.CrashTime[p] = 0
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g UniformGen) Spec() ScenarioSpec { return ScenarioSpec{Kind: "uniform", Crashes: g.N} }

// ExponentialGen draws an independent exponential lifetime with rate Lambda
// for every processor — the reliability package's failure law. It is the
// generator reliability.MonteCarlo runs on, so both agree trial-for-trial at
// equal seeds.
type ExponentialGen struct {
	Lambda float64
}

// Check implements ScenarioGenerator.
func (g ExponentialGen) Check(int) error {
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g ExponentialGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	if err := g.Check(len(sc.CrashTime)); err != nil {
		return err
	}
	for p := range sc.CrashTime {
		sc.CrashTime[p] = rng.ExpFloat64() / g.Lambda
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g ExponentialGen) Spec() ScenarioSpec { return ScenarioSpec{Kind: "exp", Lambda: g.Lambda} }

// WeibullGen draws independent Weibull(Shape, Scale) lifetimes — the classic
// hardware-aging law: Shape < 1 models infant mortality, Shape > 1 wear-out,
// Shape = 1 degenerates to exponential with rate 1/Scale. Sampling is by
// inverse transform: Scale · E^(1/Shape) with E standard exponential.
type WeibullGen struct {
	Shape, Scale float64
}

// Check implements ScenarioGenerator.
func (g WeibullGen) Check(int) error {
	if g.Shape <= 0 || g.Scale <= 0 {
		return fmt.Errorf("sim: Weibull shape and scale must be positive, got k=%g λ=%g", g.Shape, g.Scale)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g WeibullGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	if err := g.Check(len(sc.CrashTime)); err != nil {
		return err
	}
	inv := 1 / g.Shape
	for p := range sc.CrashTime {
		sc.CrashTime[p] = g.Scale * math.Pow(rng.ExpFloat64(), inv)
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g WeibullGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "weibull", Shape: g.Shape, Scale: g.Scale}
}

// GroupGen crashes one uniformly drawn group of Size consecutive processors
// (the rack structure of GroupCrash: group g covers [g·Size, (g+1)·Size)) at
// a single exponential time with rate Lambda — correlated failures the way
// real clusters fail: a power feed or top-of-rack switch takes the whole
// rack down at once.
type GroupGen struct {
	Size   int
	Lambda float64
}

// Check implements ScenarioGenerator.
func (g GroupGen) Check(m int) error {
	if g.Size < 1 {
		return fmt.Errorf("sim: group size %d", g.Size)
	}
	if g.Size > m {
		return fmt.Errorf("sim: group size %d exceeds platform of %d processors", g.Size, m)
	}
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g GroupGen) FillScenario(rng *rand.Rand, sc *Scenario, _ *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	groups := (m + g.Size - 1) / g.Size
	grp := rng.Intn(groups)
	at := rng.ExpFloat64() / g.Lambda
	hi := (grp + 1) * g.Size
	if hi > m {
		hi = m
	}
	for p := grp * g.Size; p < hi; p++ {
		sc.CrashTime[p] = at
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g GroupGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "group", GroupSize: g.Size, Lambda: g.Lambda}
}

// BurstGen crashes N distinct uniformly drawn processors in a burst: the
// burst onset is exponential with rate Lambda, and each crash lands at the
// onset plus an independent uniform jitter in [0, Spread) — a cascading
// outage (thermal event, bad rollout) rather than independent attrition.
// Spread 0 crashes all N at the same instant.
type BurstGen struct {
	N      int
	Lambda float64
	Spread float64
}

// Check implements ScenarioGenerator.
func (g BurstGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	if g.Lambda <= 0 {
		return fmt.Errorf("sim: non-positive failure rate %g", g.Lambda)
	}
	if g.Spread < 0 {
		return fmt.Errorf("sim: negative burst spread %g", g.Spread)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g BurstGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	onset := rng.ExpFloat64() / g.Lambda
	for _, p := range drawDistinct(rng, scratch, m, g.N) {
		at := onset
		if g.Spread > 0 {
			at += rng.Float64() * g.Spread
		}
		sc.CrashTime[p] = at
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g BurstGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "burst", Crashes: g.N, Lambda: g.Lambda, Spread: g.Spread}
}

// StaggeredGen crashes N distinct uniformly drawn processors at evenly
// spaced times across [0, Horizon] — the rolling outage of StaggeredCrashes
// as a batch generator: crash i happens at (i+1)·Horizon/(N+1), so no
// processor is dead at time zero.
type StaggeredGen struct {
	N       int
	Horizon float64
}

// Check implements ScenarioGenerator.
func (g StaggeredGen) Check(m int) error {
	if g.N < 0 || g.N > m {
		return fmt.Errorf("sim: cannot crash %d of %d processors", g.N, m)
	}
	if g.Horizon <= 0 && g.N > 0 {
		return fmt.Errorf("sim: non-positive horizon %g", g.Horizon)
	}
	return nil
}

// FillScenario implements ScenarioGenerator.
func (g StaggeredGen) FillScenario(rng *rand.Rand, sc *Scenario, scratch *ScenarioScratch) error {
	m := len(sc.CrashTime)
	if err := g.Check(m); err != nil {
		return err
	}
	resetAlive(sc)
	for i, p := range drawDistinct(rng, scratch, m, g.N) {
		sc.CrashTime[p] = g.Horizon * float64(i+1) / float64(g.N+1)
	}
	return nil
}

// Spec implements ScenarioGenerator.
func (g StaggeredGen) Spec() ScenarioSpec {
	return ScenarioSpec{Kind: "staggered", Crashes: g.N, Horizon: g.Horizon}
}

// ScenarioSpec is the wire/flag description of a scenario generator — the
// shape the /evaluate endpoint, the ftexp campaign axis and ftsched
// -scenario share. Only the fields the Kind uses are meaningful; Generator
// rejects inconsistent specs. Kind dispatch (parsing, canonical rendering,
// materialization) delegates to the scenario-kind registry, so new kinds
// plug in via RegisterScenarioKind without touching this type's methods.
type ScenarioSpec struct {
	// Kind selects the generator by registry name: "uniform", "exp",
	// "weibull", "group", "burst", "staggered" or "trace".
	Kind string `json:"kind"`
	// Crashes is the crash count of "uniform", "burst" and "staggered".
	Crashes int `json:"crashes,omitempty"`
	// Lambda is the failure rate of "exp", "group" and "burst".
	Lambda float64 `json:"lambda,omitempty"`
	// Shape and Scale parameterize "weibull".
	Shape float64 `json:"shape,omitempty"`
	Scale float64 `json:"scale,omitempty"`
	// GroupSize is the rack size of "group".
	GroupSize int `json:"group_size,omitempty"`
	// Horizon is the rolling-outage window of "staggered".
	Horizon float64 `json:"horizon,omitempty"`
	// Spread is the per-crash jitter width of "burst".
	Spread float64 `json:"spread,omitempty"`
	// Trace carries the recorded failure log of "trace"; nil for the
	// synthetic kinds, so legacy wire forms are byte-unchanged.
	Trace *TraceSpec `json:"trace,omitempty"`
}

// Generator materializes the spec, validating its platform-independent
// parameters (counts are validated against m by the generator's Check).
func (sp ScenarioSpec) Generator() (ScenarioGenerator, error) {
	if sp.Kind == "" {
		return nil, fmt.Errorf("sim: scenario spec missing kind (known: %s)", strings.Join(ScenarioKinds(), ", "))
	}
	k, ok := LookupScenarioKind(sp.Kind)
	if !ok {
		return nil, unknownScenarioKind(sp.Kind)
	}
	return k.Build(sp)
}

// String renders the spec in the kind's canonical colon-separated form, with
// shortest-exact float formatting so equal specs render identically (the
// property the response cache keys on). An unknown kind renders as its bare
// name.
func (sp ScenarioSpec) String() string {
	k, ok := LookupScenarioKind(sp.Kind)
	if !ok {
		return sp.Kind
	}
	return k.Format(sp)
}

// ParseScenarioSpec reads the colon-separated flag form of a spec, e.g.
// "uniform:2", "exp:0.001", "weibull:1.5:2000", "group:4:0.001",
// "burst:3:0.001:50", "staggered:2:1000" or "trace:failures.jsonl". The kind
// dispatches through the registry and the parsed spec is validated by
// Generator, so a parsed spec is always materializable.
func ParseScenarioSpec(s string) (ScenarioSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	kind := strings.ToLower(strings.TrimSpace(parts[0]))
	k, ok := LookupScenarioKind(kind)
	if !ok {
		return ScenarioSpec{}, unknownScenarioKind(kind)
	}
	sp, err := k.Parse(s, parts[1:])
	if err != nil {
		return ScenarioSpec{}, err
	}
	// Round-trip through Generator so a parsed spec is always materializable.
	if _, err := sp.Generator(); err != nil {
		return ScenarioSpec{}, err
	}
	return sp, nil
}

// NewScenario returns a scenario buffer for m processors with every
// processor alive — the shape FillScenario overwrites.
func NewScenario(m int) Scenario {
	sc := Scenario{CrashTime: make([]float64, m)}
	resetAlive(&sc)
	return sc
}
