package sim

import (
	"errors"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/platform"
)

// TestStrictMatchedStarvation documents a reproduction finding about
// Proposition 4.3 of the paper: the robustness of the matched communication
// set is proved per precedence edge, but it does not compose across chains
// of edges. Each MC-FTSA replica depends on one specific upstream copy per
// edge, so the set of processors that can starve a given replica grows with
// the depth of the graph; for deep graphs a single crash can starve every
// replica of an exit task. Under strict matched-only semantics the schedule
// therefore fails for some (often most) single-crash scenarios, while the
// degraded-mode rerouting semantics (the default, and the only semantics
// consistent with the finite MC-FTSA crash latencies in Figures 1b-3b of
// the paper) always survives ≤ ε crashes.
func TestStrictMatchedStarvation(t *testing.T) {
	inst := instance(t, 5, 6)
	const eps = 2
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: eps}})
	if err != nil {
		t.Fatal(err)
	}
	m := inst.Platform.NumProcs()
	strictFailures := 0
	for j := 0; j < m; j++ {
		sc, err := CrashAtZero(m, platform.ProcID(j))
		if err != nil {
			t.Fatal(err)
		}
		_, serr := RunWithOptions(s, sc, Options{StrictMatched: true})
		if serr != nil {
			if !errors.Is(serr, ErrNotTolerated) {
				t.Fatalf("crash P%d: unexpected error %v", j, serr)
			}
			strictFailures++
		}
		// Degraded mode must always survive a single crash (ε = 2).
		if _, derr := Run(s, sc, nil); derr != nil {
			t.Errorf("crash P%d: degraded mode failed: %v", j, derr)
		}
	}
	if strictFailures == 0 {
		t.Skip("instance happened to be strictly robust; the finding needs a deep graph")
	}
	t.Logf("strict matched semantics starved %d/%d single-crash scenarios", strictFailures, m)
}

// TestStrictMatchedNoFailure verifies strict semantics are exactly the
// optimistic schedule when nothing fails.
func TestStrictMatchedNoFailure(t *testing.T) {
	inst := instance(t, 2, 8)
	s, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		core.MCFTSAOptions{Options: core.Options{Epsilon: 2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWithOptions(s, NoFailures(8), Options{StrictMatched: true})
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.Latency - s.LowerBound(); diff > 1e-7 || diff < -1e-7 {
		t.Errorf("strict no-failure latency %g != lower bound %g", res.Latency, s.LowerBound())
	}
}
