package sim

import (
	"fmt"
	"math"
	"math/rand"

	"ftsched/internal/platform"
)

// Scenario assigns a crash time to every processor; +Inf means the processor
// never fails. A crash time of 0 models the adversarial worst case used by
// the paper's crash experiments: the processor contributes nothing at all.
type Scenario struct {
	CrashTime []float64
}

// NoFailures returns a scenario where all m processors stay alive.
func NoFailures(m int) Scenario {
	s := Scenario{CrashTime: make([]float64, m)}
	for i := range s.CrashTime {
		s.CrashTime[i] = math.Inf(1)
	}
	return s
}

// CrashAtZero returns a scenario where the listed processors fail before
// doing any work and the others never fail.
func CrashAtZero(m int, procs ...platform.ProcID) (Scenario, error) {
	s := NoFailures(m)
	for _, p := range procs {
		if int(p) < 0 || int(p) >= m {
			return Scenario{}, fmt.Errorf("sim: processor %d outside platform of size %d", p, m)
		}
		s.CrashTime[p] = 0
	}
	return s, nil
}

// UniformCrashes draws n distinct processors uniformly (the paper:
// "processors that fail during the schedule process are chosen uniformly")
// and crashes them at time 0.
func UniformCrashes(rng *rand.Rand, m, n int) (Scenario, error) {
	if n < 0 || n > m {
		return Scenario{}, fmt.Errorf("sim: cannot crash %d of %d processors", n, m)
	}
	perm := rng.Perm(m)
	procs := make([]platform.ProcID, n)
	for i := 0; i < n; i++ {
		procs[i] = platform.ProcID(perm[i])
	}
	return CrashAtZero(m, procs...)
}

// Crash sets the crash time of one processor.
func (s *Scenario) Crash(p platform.ProcID, at float64) error {
	if int(p) < 0 || int(p) >= len(s.CrashTime) {
		return fmt.Errorf("sim: processor %d outside platform of size %d", p, len(s.CrashTime))
	}
	if at < 0 {
		return fmt.Errorf("sim: negative crash time %g", at)
	}
	s.CrashTime[p] = at
	return nil
}

// NumFailed counts processors with a finite crash time.
func (s Scenario) NumFailed() int {
	n := 0
	for _, c := range s.CrashTime {
		if !math.IsInf(c, 1) {
			n++
		}
	}
	return n
}

// NumFailedBefore counts processors crashing strictly before time t — the
// failures that can actually affect an execution finishing by t. Under a
// lifetime law every crash time is finite, so NumFailed degenerates to the
// platform size; this is the meaningful count for mission-window histograms.
func (s Scenario) NumFailedBefore(t float64) int {
	n := 0
	for _, c := range s.CrashTime {
		if c < t {
			n++
		}
	}
	return n
}
