package sim

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// ScenarioParam documents one parameter of a scenario kind — the
// self-describing schema the GET /scenarios discovery endpoint and the
// generated docs table render. Name is the wire field of ScenarioSpec the
// parameter travels in.
type ScenarioParam struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // "int", "float", "bool" or "events"
	Doc      string `json:"doc"`
	Optional bool   `json:"optional,omitempty"`
}

// ScenarioKindReg is one entry of the scenario-kind registry: the kind's
// identity and documentation plus the three behaviors every dispatch site
// needs — parsing the colon-separated flag form, rendering the canonical
// string (which response caches key on, so it must be deterministic), and
// materializing a generator from a spec.
type ScenarioKindReg struct {
	// Name is the canonical lower-case kind name ("uniform", "trace", ...).
	Name string
	// Aliases are alternative names accepted case-insensitively ("exp" has
	// alias "exponential").
	Aliases []string
	// Summary is the one-line description used by discovery and docs.
	Summary string
	// FlagForm is the colon-separated syntax, e.g. "burst:N:LAMBDA[:SPREAD]".
	FlagForm string
	// Params documents the spec fields the kind reads.
	Params []ScenarioParam
	// Parse builds a spec from the flag form's arguments (the parts after
	// the kind). spec is the full original string, for error messages.
	Parse func(spec string, args []string) (ScenarioSpec, error)
	// Format renders the canonical string form. It must be a pure function
	// of the spec: equal specs must render byte-identically.
	Format func(sp ScenarioSpec) string
	// Build materializes the generator, validating platform-independent
	// parameters (counts against m are validated by the generator's Check).
	Build func(sp ScenarioSpec) (ScenarioGenerator, error)
}

// scenarioRegistry is the process-global scenario-kind registry, the same
// shape as the scheduler registry in internal/sched: registration happens at
// init time, lookups after init never write.
var scenarioRegistry struct {
	sync.RWMutex
	order   []string                   // canonical names in registration order
	entries map[string]ScenarioKindReg // canonical name -> entry
	byName  map[string]string          // lower-case name/alias -> canonical name
}

// RegisterScenarioKind adds a scenario kind to the registry. It panics on a
// missing behavior or a name collision — registration happens at init time,
// where a panic is a build error, not a runtime hazard.
func RegisterScenarioKind(k ScenarioKindReg) {
	if k.Name == "" || k.Name != strings.ToLower(k.Name) {
		panic(fmt.Sprintf("sim: scenario kind name %q must be non-empty lower-case", k.Name))
	}
	if k.Parse == nil || k.Format == nil || k.Build == nil {
		panic(fmt.Sprintf("sim: scenario kind %q needs Parse, Format and Build", k.Name))
	}
	r := &scenarioRegistry
	r.Lock()
	defer r.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]ScenarioKindReg)
		r.byName = make(map[string]string)
	}
	if _, dup := r.byName[k.Name]; dup {
		panic(fmt.Sprintf("sim: scenario kind %q registered twice", k.Name))
	}
	r.entries[k.Name] = k
	r.byName[k.Name] = k.Name
	r.order = append(r.order, k.Name)
	for _, a := range k.Aliases {
		a = strings.ToLower(a)
		if _, dup := r.byName[a]; dup {
			panic(fmt.Sprintf("sim: scenario kind alias %q collides", a))
		}
		r.byName[a] = k.Name
	}
}

// LookupScenarioKind resolves a kind name or alias (case-insensitively).
func LookupScenarioKind(name string) (ScenarioKindReg, bool) {
	r := &scenarioRegistry
	r.RLock()
	defer r.RUnlock()
	canon, ok := r.byName[strings.ToLower(name)]
	if !ok {
		return ScenarioKindReg{}, false
	}
	return r.entries[canon], true
}

// ScenarioKindNames lists the canonical kind names in registration order.
func ScenarioKindNames() []string {
	r := &scenarioRegistry
	r.RLock()
	defer r.RUnlock()
	return append([]string(nil), r.order...)
}

// ScenarioKindRegs lists the registry entries in registration order — the
// capability surface the /scenarios endpoint and docs table are generated
// from.
func ScenarioKindRegs() []ScenarioKindReg {
	r := &scenarioRegistry
	r.RLock()
	defer r.RUnlock()
	out := make([]ScenarioKindReg, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}

// ScenarioKinds lists the recognized scenario kinds with their flag syntax,
// in registration order — the list unknown-kind errors enumerate.
func ScenarioKinds() []string {
	r := &scenarioRegistry
	r.RLock()
	defer r.RUnlock()
	out := make([]string, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name].FlagForm)
	}
	return out
}

// unknownScenarioKind is the shared unknown-kind error; like scheduler
// lookup errors it enumerates the registry so the list is never stale.
func unknownScenarioKind(kind string) error {
	return fmt.Errorf("sim: unknown scenario kind %q (known: %s)",
		kind, strings.Join(ScenarioKinds(), ", "))
}

// wrongScenarioArity is the shared arity error of flag-form parsing.
func wrongScenarioArity(spec string) error {
	return fmt.Errorf("sim: scenario %q has the wrong arity (known: %s)",
		spec, strings.Join(ScenarioKinds(), ", "))
}

// specAtoi and specAtof parse one flag-form argument with the spec string in
// the error, shared by every kind's Parse.
func specAtoi(spec, arg string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil {
		return 0, fmt.Errorf("sim: scenario %q: bad integer %q", spec, arg)
	}
	return v, nil
}

func specAtof(spec, arg string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
	if err != nil {
		return 0, fmt.Errorf("sim: scenario %q: bad number %q", spec, arg)
	}
	return v, nil
}

// fg formats a float in shortest-exact form — the canonical rendering
// Format implementations share so equal specs render identically (the
// property the response cache keys on).
func fg(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func init() {
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "uniform",
		Summary:  "N distinct uniformly drawn processors crash at time 0 (the paper's adversarial crash experiments)",
		FlagForm: "uniform:N",
		Params: []ScenarioParam{
			{Name: "crashes", Type: "int", Doc: "number of processors crashed at time 0"},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 1 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			n, err := specAtoi(spec, args[0])
			if err != nil {
				return ScenarioSpec{}, err
			}
			return ScenarioSpec{Kind: "uniform", Crashes: n}, nil
		},
		Format: func(sp ScenarioSpec) string { return fmt.Sprintf("uniform:%d", sp.Crashes) },
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			if sp.Crashes < 0 {
				return nil, fmt.Errorf("sim: uniform scenario needs crashes >= 0, got %d", sp.Crashes)
			}
			return UniformGen{N: sp.Crashes}, nil
		},
	})
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "exp",
		Aliases:  []string{"exponential"},
		Summary:  "independent exponential lifetime with rate LAMBDA per processor (the reliability package's failure law)",
		FlagForm: "exp:LAMBDA",
		Params: []ScenarioParam{
			{Name: "lambda", Type: "float", Doc: "failure rate; mean lifetime is 1/lambda"},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 1 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			l, err := specAtof(spec, args[0])
			if err != nil {
				return ScenarioSpec{}, err
			}
			return ScenarioSpec{Kind: "exp", Lambda: l}, nil
		},
		Format: func(sp ScenarioSpec) string { return "exp:" + fg(sp.Lambda) },
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			g := ExponentialGen{Lambda: sp.Lambda}
			if err := g.Check(0); err != nil {
				return nil, err
			}
			return g, nil
		},
	})
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "weibull",
		Summary:  "independent Weibull(SHAPE, SCALE) lifetimes — infant mortality below shape 1, wear-out above",
		FlagForm: "weibull:SHAPE:SCALE",
		Params: []ScenarioParam{
			{Name: "shape", Type: "float", Doc: "Weibull shape k; 1 degenerates to exponential"},
			{Name: "scale", Type: "float", Doc: "Weibull scale (characteristic lifetime)"},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 2 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			shape, err := specAtof(spec, args[0])
			if err != nil {
				return ScenarioSpec{}, err
			}
			scale, err := specAtof(spec, args[1])
			if err != nil {
				return ScenarioSpec{}, err
			}
			return ScenarioSpec{Kind: "weibull", Shape: shape, Scale: scale}, nil
		},
		Format: func(sp ScenarioSpec) string { return "weibull:" + fg(sp.Shape) + ":" + fg(sp.Scale) },
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			g := WeibullGen{Shape: sp.Shape, Scale: sp.Scale}
			if err := g.Check(0); err != nil {
				return nil, err
			}
			return g, nil
		},
	})
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "group",
		Summary:  "one uniformly drawn rack of SIZE consecutive processors fails together at an exponential time",
		FlagForm: "group:SIZE:LAMBDA",
		Params: []ScenarioParam{
			{Name: "group_size", Type: "int", Doc: "rack size; group g covers processors [g*size, (g+1)*size)"},
			{Name: "lambda", Type: "float", Doc: "failure rate of the rack's crash time"},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 2 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			size, err := specAtoi(spec, args[0])
			if err != nil {
				return ScenarioSpec{}, err
			}
			l, err := specAtof(spec, args[1])
			if err != nil {
				return ScenarioSpec{}, err
			}
			return ScenarioSpec{Kind: "group", GroupSize: size, Lambda: l}, nil
		},
		Format: func(sp ScenarioSpec) string {
			return fmt.Sprintf("group:%d:%s", sp.GroupSize, fg(sp.Lambda))
		},
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			if sp.GroupSize < 1 {
				return nil, fmt.Errorf("sim: group scenario needs group_size >= 1, got %d", sp.GroupSize)
			}
			if sp.Lambda <= 0 {
				return nil, fmt.Errorf("sim: non-positive failure rate %g", sp.Lambda)
			}
			return GroupGen{Size: sp.GroupSize, Lambda: sp.Lambda}, nil
		},
	})
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "burst",
		Summary:  "N processors crash in a burst: exponential onset plus uniform jitter in [0, SPREAD) per crash",
		FlagForm: "burst:N:LAMBDA[:SPREAD]",
		Params: []ScenarioParam{
			{Name: "crashes", Type: "int", Doc: "number of processors in the burst"},
			{Name: "lambda", Type: "float", Doc: "failure rate of the burst onset"},
			{Name: "spread", Type: "float", Doc: "per-crash jitter width; 0 crashes all at one instant", Optional: true},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 2 && len(args) != 3 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			sp := ScenarioSpec{Kind: "burst"}
			var err error
			if sp.Crashes, err = specAtoi(spec, args[0]); err != nil {
				return ScenarioSpec{}, err
			}
			if sp.Lambda, err = specAtof(spec, args[1]); err != nil {
				return ScenarioSpec{}, err
			}
			if len(args) == 3 {
				if sp.Spread, err = specAtof(spec, args[2]); err != nil {
					return ScenarioSpec{}, err
				}
			}
			return sp, nil
		},
		Format: func(sp ScenarioSpec) string {
			return fmt.Sprintf("burst:%d:%s:%s", sp.Crashes, fg(sp.Lambda), fg(sp.Spread))
		},
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			if sp.Crashes < 0 {
				return nil, fmt.Errorf("sim: burst scenario needs crashes >= 0, got %d", sp.Crashes)
			}
			if sp.Lambda <= 0 {
				return nil, fmt.Errorf("sim: non-positive failure rate %g", sp.Lambda)
			}
			if sp.Spread < 0 {
				return nil, fmt.Errorf("sim: negative burst spread %g", sp.Spread)
			}
			return BurstGen{N: sp.Crashes, Lambda: sp.Lambda, Spread: sp.Spread}, nil
		},
	})
	RegisterScenarioKind(ScenarioKindReg{
		Name:     "staggered",
		Summary:  "rolling outage: N processors crash at evenly spaced times across [0, HORIZON]",
		FlagForm: "staggered:N:HORIZON",
		Params: []ScenarioParam{
			{Name: "crashes", Type: "int", Doc: "number of processors crashed across the window"},
			{Name: "horizon", Type: "float", Doc: "rolling-outage window; crash i lands at (i+1)*horizon/(n+1)"},
		},
		Parse: func(spec string, args []string) (ScenarioSpec, error) {
			if len(args) != 2 {
				return ScenarioSpec{}, wrongScenarioArity(spec)
			}
			sp := ScenarioSpec{Kind: "staggered"}
			var err error
			if sp.Crashes, err = specAtoi(spec, args[0]); err != nil {
				return ScenarioSpec{}, err
			}
			if sp.Horizon, err = specAtof(spec, args[1]); err != nil {
				return ScenarioSpec{}, err
			}
			return sp, nil
		},
		Format: func(sp ScenarioSpec) string {
			return fmt.Sprintf("staggered:%d:%s", sp.Crashes, fg(sp.Horizon))
		},
		Build: func(sp ScenarioSpec) (ScenarioGenerator, error) {
			if sp.Crashes < 0 {
				return nil, fmt.Errorf("sim: staggered scenario needs crashes >= 0, got %d", sp.Crashes)
			}
			if sp.Horizon <= 0 && sp.Crashes > 0 {
				return nil, fmt.Errorf("sim: non-positive horizon %g", sp.Horizon)
			}
			return StaggeredGen{N: sp.Crashes, Horizon: sp.Horizon}, nil
		},
	})
	RegisterScenarioKind(traceScenarioKind())
}
