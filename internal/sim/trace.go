package sim

import (
	"fmt"
	"io"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// EventKind classifies execution-trace events.
type EventKind int

const (
	// EventStart: a replica began executing.
	EventStart EventKind = iota
	// EventFinish: a replica completed and its outputs were sent.
	EventFinish
	// EventSkip: a replica was skipped — its inputs can never arrive.
	EventSkip
	// EventKilled: a replica's execution was cut by its processor's crash.
	EventKilled
	// EventCrash: a processor failed.
	EventCrash
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventStart:
		return "start"
	case EventFinish:
		return "finish"
	case EventSkip:
		return "skip"
	case EventKilled:
		return "killed"
	case EventCrash:
		return "crash"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of an execution trace.
type Event struct {
	Time float64
	Kind EventKind
	Task dag.TaskID // -1 for EventCrash
	Copy int
	Proc platform.ProcID
}

// Trace is a time-ordered execution log produced by RunTraced.
type Trace struct {
	Events []Event
}

// add appends an event (sorted at the end of the run).
func (tr *Trace) add(e Event) { tr.Events = append(tr.Events, e) }

// sortByTime orders events by time; at equal times crashes come first (a
// crash at t prevents starts at t), then finishes, kills, skips, starts.
func (tr *Trace) sortByTime() {
	rank := func(k EventKind) int {
		switch k {
		case EventCrash:
			return 0
		case EventFinish:
			return 1
		case EventKilled:
			return 2
		case EventSkip:
			return 3
		default: // EventStart
			return 4
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool {
		if tr.Events[i].Time != tr.Events[j].Time {
			return tr.Events[i].Time < tr.Events[j].Time
		}
		if ri, rj := rank(tr.Events[i].Kind), rank(tr.Events[j].Kind); ri != rj {
			return ri < rj
		}
		return tr.Events[i].Task < tr.Events[j].Task
	})
}

// Filter returns the events of one kind.
func (tr *Trace) Filter(kind EventKind) []Event {
	var out []Event
	for _, e := range tr.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// Write renders the trace, one line per event.
func (tr *Trace) Write(w io.Writer) error {
	for _, e := range tr.Events {
		var err error
		switch e.Kind {
		case EventCrash:
			_, err = fmt.Fprintf(w, "%10.3f  crash   P%d\n", e.Time, e.Proc)
		default:
			_, err = fmt.Fprintf(w, "%10.3f  %-7s task %d copy %d on P%d\n", e.Time, e.Kind, e.Task, e.Copy, e.Proc)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
