package sim

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/platform"
	"ftsched/internal/workload"
)

// TestRackFailureOnClusteredPlatform ties the clustered platform generator
// to the rack-failure scenario: ε sized to one full rack, schedules must
// survive the loss of any entire rack.
func TestRackFailureOnClusteredPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const racks, perRack = 4, 2
	p, err := platform.NewClustered(rng, racks, perRack, 0.1, 0.2, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.RandomDAG(rng, workload.RandomDAGConfig{
		MinTasks: 30, MaxTasks: 40,
		MinVolume: 50, MaxVolume: 150,
		ShapeFactor: 1.0, EdgeDensity: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewRandomCostModel(rng, g.NumTasks(), racks*perRack, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	// ε = perRack: losing one whole rack stays within the guarantee.
	s, err := core.FTSA(g, p, cm, core.Options{Epsilon: perRack})
	if err != nil {
		t.Fatal(err)
	}
	for rack := 0; rack < racks; rack++ {
		sc, err := GroupCrash(racks*perRack, perRack, rack, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(s, sc, nil)
		if err != nil {
			t.Fatalf("rack %d: %v", rack, err)
		}
		if res.Latency > s.UpperBound()+1e-7 {
			t.Errorf("rack %d: latency %g exceeds bound %g", rack, res.Latency, s.UpperBound())
		}
	}
	// Losing two racks (2·perRack > ε) may legitimately fail, but the
	// simulator must report it cleanly rather than hang or panic.
	sc, err := GroupCrash(racks*perRack, 2*perRack, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, sc, nil); err == nil {
		t.Log("note: schedule survived a double-rack failure (placement got lucky)")
	}
}
