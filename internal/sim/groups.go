package sim

import (
	"fmt"
	"math/rand"

	"ftsched/internal/platform"
)

// Correlated and staggered failure scenarios — extensions beyond the
// paper's independent uniform crashes, for stress-testing schedules the
// way real clusters fail (whole racks, rolling outages).

// GroupCrash crashes an entire group of processors (e.g. a rack) at the
// given time: group g covers processors [g·size, (g+1)·size) ∩ [0, m).
func GroupCrash(m, size, group int, at float64) (Scenario, error) {
	if size < 1 {
		return Scenario{}, fmt.Errorf("sim: group size %d", size)
	}
	lo := group * size
	hi := lo + size
	if group < 0 || lo >= m {
		return Scenario{}, fmt.Errorf("sim: group %d outside platform of %d processors", group, m)
	}
	if hi > m {
		hi = m
	}
	sc := NoFailures(m)
	for p := lo; p < hi; p++ {
		if err := sc.Crash(platform.ProcID(p), at); err != nil {
			return Scenario{}, err
		}
	}
	return sc, nil
}

// StaggeredCrashes crashes n distinct uniformly drawn processors at evenly
// spaced times across [0, horizon] — a rolling outage. The first crash
// happens at horizon/(n+1), the last at n·horizon/(n+1), so no processor is
// dead at time zero.
func StaggeredCrashes(rng *rand.Rand, m, n int, horizon float64) (Scenario, error) {
	if n < 0 || n > m {
		return Scenario{}, fmt.Errorf("sim: cannot crash %d of %d processors", n, m)
	}
	if horizon <= 0 && n > 0 {
		return Scenario{}, fmt.Errorf("sim: non-positive horizon %g", horizon)
	}
	sc := NoFailures(m)
	perm := rng.Perm(m)
	for i := 0; i < n; i++ {
		at := horizon * float64(i+1) / float64(n+1)
		if err := sc.Crash(platform.ProcID(perm[i]), at); err != nil {
			return Scenario{}, err
		}
	}
	return sc, nil
}

// ExponentialCrashes samples an independent exponential crash time with
// rate lambda for every processor (the reliability package's failure law,
// exposed as a scenario generator).
func ExponentialCrashes(rng *rand.Rand, m int, lambda float64) (Scenario, error) {
	if lambda <= 0 {
		return Scenario{}, fmt.Errorf("sim: non-positive failure rate %g", lambda)
	}
	sc := NoFailures(m)
	for p := 0; p < m; p++ {
		if err := sc.Crash(platform.ProcID(p), rng.ExpFloat64()/lambda); err != nil {
			return Scenario{}, err
		}
	}
	return sc, nil
}
