package sim

import (
	"math"
	"testing"

	"ftsched/internal/platform"
)

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.New(3, 2.0) // d = 2 between distinct processors
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestContentionFreeDelivery(t *testing.T) {
	p := testPlatform(t)
	m := ContentionFree{}
	if got := m.Deliver(p, 0, 1, 5, 10); got != 20 { // 10 + 5·2
		t.Errorf("remote delivery = %g, want 20", got)
	}
	if got := m.Deliver(p, 1, 1, 5, 10); got != 10 { // intra-processor
		t.Errorf("local delivery = %g, want 10", got)
	}
	if m.Name() == "" {
		t.Error("empty name")
	}
}

func TestOnePortSerializesSender(t *testing.T) {
	p := testPlatform(t)
	m := NewOnePort(3)
	// First message: send at 0, occupies P0 until 10 (5·2).
	if got := m.Deliver(p, 0, 1, 5, 0); got != 10 {
		t.Errorf("first = %g, want 10", got)
	}
	// Second message ready at 0 but the port is busy until 10: arrives 16.
	if got := m.Deliver(p, 0, 2, 3, 0); got != 16 {
		t.Errorf("second = %g, want 16", got)
	}
	// Intra-processor messages bypass the port entirely.
	if got := m.Deliver(p, 0, 0, 99, 5); got != 5 {
		t.Errorf("local = %g, want 5", got)
	}
	// A different sender has its own port.
	if got := m.Deliver(p, 1, 0, 1, 0); got != 2 {
		t.Errorf("other sender = %g, want 2", got)
	}
	m.Reset(3)
	if got := m.Deliver(p, 0, 1, 5, 0); got != 10 {
		t.Errorf("after reset = %g, want 10", got)
	}
}

func TestBoundedMultiPortChannels(t *testing.T) {
	p := testPlatform(t)
	m, err := NewBoundedMultiPort(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Two concurrent transfers fit the two ports.
	if got := m.Deliver(p, 0, 1, 5, 0); got != 10 {
		t.Errorf("port 1 = %g", got)
	}
	if got := m.Deliver(p, 0, 2, 5, 0); got != 10 {
		t.Errorf("port 2 = %g", got)
	}
	// The third transfer waits for the earliest port (free at 10).
	if got := m.Deliver(p, 0, 1, 1, 0); got != 12 {
		t.Errorf("queued = %g, want 12", got)
	}
	if _, err := NewBoundedMultiPort(3, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if m.Name() != "2-port" {
		t.Errorf("name %q", m.Name())
	}
}

func TestOnePortNeverBeatsContentionFree(t *testing.T) {
	p := testPlatform(t)
	one := NewOnePort(3)
	free := ContentionFree{}
	send := []struct {
		src, dst platform.ProcID
		vol, at  float64
	}{
		{0, 1, 5, 0}, {0, 2, 2, 1}, {1, 0, 3, 2}, {0, 1, 1, 3},
	}
	for _, s := range send {
		a := one.Deliver(p, s.src, s.dst, s.vol, s.at)
		b := free.Deliver(p, s.src, s.dst, s.vol, s.at)
		if a < b-1e-12 {
			t.Errorf("one-port %g beats contention-free %g", a, b)
		}
		if math.IsNaN(a) || math.IsInf(a, 0) {
			t.Errorf("non-finite arrival %g", a)
		}
	}
}
