package sim

import (
	"fmt"
	"hash/fnv"
)

// DeriveSeed hashes a base seed and a list of coordinate strings into a
// 63-bit stream seed by FNV-1a — stable across runs, platforms and Go
// versions (unlike maphash). It is the coordinate-seeding discipline the
// deterministic layers share: the campaign engine derives per-cell
// instance/scheduler/crash seeds from grid coordinates, and the auto-tuner
// derives per-candidate scheduling seeds and its shared evaluation seed the
// same way. TrialSeed is the allocation-free per-trial specialization of the
// same idea.
func DeriveSeed(base int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", base)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	return int64(h.Sum64() &^ (1 << 63))
}
