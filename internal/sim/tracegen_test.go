package sim

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/trace"
)

func testTraceSpec() TraceSpec {
	return TraceSpec{Events: []trace.Event{
		{Proc: 2, Time: 0},
		{Proc: 4, Time: 10, Group: "rack-1"},
		{Proc: 5, Time: 10, Group: "rack-1"},
		{Proc: 1, Time: 40},
	}}
}

func TestTraceGenVerbatim(t *testing.T) {
	g, err := NewTraceGen(testTraceSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Check(5); err == nil {
		t.Fatal("Check accepted a platform smaller than the trace")
	}
	if err := g.Check(6); err != nil {
		t.Fatal(err)
	}
	var scratch ScenarioScratch
	sc := NewScenario(6)
	// Verbatim replay must be rng-independent: two different rngs, one draw.
	for _, seed := range []int64{1, 99} {
		rng := rand.New(rand.NewSource(seed))
		if err := g.FillScenario(rng, &sc, &scratch); err != nil {
			t.Fatal(err)
		}
		want := []float64{math.Inf(1), 40, 0, math.Inf(1), 10, 10}
		for p, at := range sc.CrashTime {
			if at != want[p] {
				t.Fatalf("seed %d: processor %d crashes at %g, want %g", seed, p, at, want[p])
			}
		}
	}
}

func TestTraceGenScale(t *testing.T) {
	ts := testTraceSpec()
	ts.Scale = 2.5
	g, err := NewTraceGen(ts)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(6)
	var scratch ScenarioScratch
	if err := g.FillScenario(rand.New(rand.NewSource(1)), &sc, &scratch); err != nil {
		t.Fatal(err)
	}
	if sc.CrashTime[1] != 100 || sc.CrashTime[4] != 25 {
		t.Fatalf("scaled crash times wrong: %v", sc.CrashTime)
	}
}

func TestTraceGenDuplicateProcKeepsEarliest(t *testing.T) {
	g, err := NewTraceGen(TraceSpec{Events: []trace.Event{
		{Proc: 0, Time: 50},
		{Proc: 0, Time: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScenario(2)
	var scratch ScenarioScratch
	if err := g.FillScenario(rand.New(rand.NewSource(1)), &sc, &scratch); err != nil {
		t.Fatal(err)
	}
	if sc.CrashTime[0] != 20 {
		t.Fatalf("duplicate crash kept %g, want the earliest 20", sc.CrashTime[0])
	}
}

func TestTraceGenResample(t *testing.T) {
	ts := testTraceSpec()
	ts.Resample = true
	g, err := NewTraceGen(ts)
	if err != nil {
		t.Fatal(err)
	}
	var scratch ScenarioScratch
	sc := NewScenario(6)
	// Incidents: {p2@0}, {p4,p5}@10 (rack-1), {p1@40} — resampling draws 3
	// with replacement, so the rack pair always crashes together.
	sawDifferent := false
	first := ""
	for trial := 0; trial < 64; trial++ {
		rng := rand.New(rand.NewSource(TrialSeed(7, trial)))
		if err := g.FillScenario(rng, &sc, &scratch); err != nil {
			t.Fatal(err)
		}
		if (sc.CrashTime[4] == 10) != (sc.CrashTime[5] == 10) {
			t.Fatalf("trial %d split the rack incident: %v", trial, sc.CrashTime)
		}
		key := ""
		for _, at := range sc.CrashTime {
			key += fgTest(at) + ","
		}
		if first == "" {
			first = key
		} else if key != first {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("64 resampled trials were all identical")
	}
	// Same seed -> same draw: the determinism contract of the trial loop.
	a, b := NewScenario(6), NewScenario(6)
	if err := g.FillScenario(rand.New(rand.NewSource(42)), &a, &scratch); err != nil {
		t.Fatal(err)
	}
	if err := g.FillScenario(rand.New(rand.NewSource(42)), &b, &scratch); err != nil {
		t.Fatal(err)
	}
	for p := range a.CrashTime {
		if a.CrashTime[p] != b.CrashTime[p] {
			t.Fatalf("equal seeds drew different scenarios at processor %d", p)
		}
	}
}

func fgTest(v float64) string { return fg(v) }

func TestTraceSpecStringDistinguishesContent(t *testing.T) {
	a := testTraceSpec()
	b := testTraceSpec()
	b.Events = append([]trace.Event(nil), b.Events...)
	b.Events[3].Time = 41
	sa := ScenarioSpec{Kind: "trace", Trace: &a}
	sb := ScenarioSpec{Kind: "trace", Trace: &b}
	if sa.String() == sb.String() {
		t.Fatalf("distinct traces render identically: %q", sa.String())
	}
	c := testTraceSpec()
	sc := ScenarioSpec{Kind: "trace", Trace: &c}
	if sa.String() != sc.String() {
		t.Fatalf("equal traces render differently: %q vs %q", sa.String(), sc.String())
	}
	scaled := testTraceSpec()
	scaled.Scale = 2
	if s := (ScenarioSpec{Kind: "trace", Trace: &scaled}).String(); s == sa.String() || !strings.Contains(s, ":x2") {
		t.Fatalf("scale not reflected in %q", s)
	}
	res := testTraceSpec()
	res.Resample = true
	if s := (ScenarioSpec{Kind: "trace", Trace: &res}).String(); !strings.Contains(s, ":resample") {
		t.Fatalf("resample not reflected in %q", s)
	}
}

func TestParseTraceFlagForm(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "failures.jsonl")
	if err := os.WriteFile(jsonl, []byte("{\"proc\":0,\"time\":5}\n{\"proc\":2,\"time\":9,\"group\":\"g\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err := ParseScenarioSpec("trace:" + jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != "trace" || sp.Trace == nil || len(sp.Trace.Events) != 2 {
		t.Fatalf("parsed %+v", sp)
	}
	sp, err = ParseScenarioSpec("trace:" + jsonl + ":2.5:resample")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Trace.Scale != 2.5 || !sp.Trace.Resample {
		t.Fatalf("options not parsed: %+v", sp.Trace)
	}
	if _, err := ParseScenarioSpec("trace:" + jsonl + ":resample:2.5"); err != nil {
		t.Fatal(err) // order-independent options
	}
	csv := filepath.Join(dir, "failures.csv")
	if err := os.WriteFile(csv, []byte("proc,time,group\n1,7,\n3,8,rack\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sp, err = ParseScenarioSpec("trace:" + csv)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Trace.Events) != 2 || sp.Trace.Events[1].Group != "rack" {
		t.Fatalf("csv conversion wrong: %+v", sp.Trace.Events)
	}
	for _, bad := range []string{
		"trace",
		"trace:",
		"trace:" + jsonl + ":0", // zero scale is rejected by Build
		"trace:" + jsonl + ":2:2",
		"trace:" + jsonl + ":resample:resample",
		"trace:" + filepath.Join(dir, "missing.jsonl"),
	} {
		if _, err := ParseScenarioSpec(bad); err == nil {
			t.Errorf("ParseScenarioSpec(%q) accepted a malformed spec", bad)
		}
	}
}

func TestTraceGenThroughEvaluateDeterministic(t *testing.T) {
	inst := instance(t, 8, 8)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := testTraceSpec()
	ts.Resample = true
	gen, err := (ScenarioSpec{Kind: "trace", Trace: &ts}).Generator()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Evaluate(s, gen, 200, EvalOptions{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Evaluate(s, gen, 200, EvalOptions{Seed: 5, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r4) {
		t.Fatalf("worker counts disagree: %+v vs %+v", r1, r4)
	}
	if r1.Generator != gen.Spec().String() {
		t.Fatalf("generator echo %q, want %q", r1.Generator, gen.Spec().String())
	}
}

func TestScenarioRegistryUnknownKind(t *testing.T) {
	_, err := ParseScenarioSpec("bogus:1")
	if err == nil || !strings.Contains(err.Error(), "trace:FILE") || !strings.Contains(err.Error(), "uniform:N") {
		t.Fatalf("unknown-kind error does not enumerate the registry: %v", err)
	}
	_, err = (ScenarioSpec{Kind: "bogus"}).Generator()
	if err == nil || !strings.Contains(err.Error(), "known:") {
		t.Fatalf("Generator unknown-kind error: %v", err)
	}
}

func TestScenarioKindRegsCoverLegacyOrder(t *testing.T) {
	names := ScenarioKindNames()
	want := []string{"uniform", "exp", "weibull", "group", "burst", "staggered", "trace"}
	if len(names) != len(want) {
		t.Fatalf("registry has %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry order %v, want %v", names, want)
		}
	}
	// The flag-form list the errors enumerate keeps the legacy prefix.
	kinds := ScenarioKinds()
	legacy := []string{
		"uniform:N", "exp:LAMBDA", "weibull:SHAPE:SCALE",
		"group:SIZE:LAMBDA", "burst:N:LAMBDA[:SPREAD]", "staggered:N:HORIZON",
	}
	for i, k := range legacy {
		if kinds[i] != k {
			t.Fatalf("flag forms %v lost the legacy prefix %v", kinds, legacy)
		}
	}
}
