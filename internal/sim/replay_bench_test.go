package sim

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/workload"
)

// BenchmarkReplay measures one warm replay over a frozen schedule: the
// replayer is built once (CSR freeze, pooled scratch) and each iteration
// replays a crash scenario. The steady-state loop — the unit Evaluate runs
// thousands of times per trial batch — must not allocate.
func BenchmarkReplay(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 10
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	r, err := newReplayer(s, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer r.release()
	sc, err := CrashAtZero(10, 0, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, badExit, err := r.replay(sc, nil); err != nil {
			b.Fatal(err)
		} else if badExit >= 0 {
			b.Fatalf("exit task %d never completed", badExit)
		}
	}
}
