package sim

import (
	"fmt"
	"math"

	"ftsched/internal/platform"
)

// CommModel computes message delivery times. The paper's base model is
// contention-free fully connected links; the one-port and bounded multi-port
// models are the "more realistic communication models" its conclusion plans
// to investigate, provided here as pluggable alternatives (ablation X2 in
// DESIGN.md).
//
// Deliver returns the arrival time of a message of the given volume leaving
// src no earlier than sendTime toward dst. Implementations may be stateful
// (port occupancy); Reset clears state between simulations. Intra-processor
// transfers are free and bypass the model.
type CommModel interface {
	Deliver(p *platform.Platform, src, dst platform.ProcID, volume, sendTime float64) float64
	Reset(m int)
	Name() string
}

// ContentionFree is the paper's communication model: every message occupies
// its dedicated link only, so arrival = sendTime + V·d(src,dst).
type ContentionFree struct{}

// Deliver implements CommModel.
func (ContentionFree) Deliver(p *platform.Platform, src, dst platform.ProcID, volume, sendTime float64) float64 {
	return sendTime + volume*p.Delay(src, dst)
}

// Reset implements CommModel.
func (ContentionFree) Reset(int) {}

// Name implements CommModel.
func (ContentionFree) Name() string { return "contention-free" }

// OnePort serializes the outgoing messages of each processor: a sender
// transmits one message at a time (Bhat et al. / Sinnen-Sousa one-port
// model). Messages are charged in the order Deliver is called, which the
// simulator arranges to be non-decreasing in send time per consumer; this is
// a faithful greedy FIFO approximation of the model.
type OnePort struct {
	senderFree []float64
}

// NewOnePort returns a one-port model for an m-processor platform.
func NewOnePort(m int) *OnePort {
	o := &OnePort{}
	o.Reset(m)
	return o
}

// Deliver implements CommModel.
func (o *OnePort) Deliver(p *platform.Platform, src, dst platform.ProcID, volume, sendTime float64) float64 {
	if src == dst {
		return sendTime
	}
	dur := volume * p.Delay(src, dst)
	start := math.Max(sendTime, o.senderFree[src])
	o.senderFree[src] = start + dur
	return start + dur
}

// Reset implements CommModel.
func (o *OnePort) Reset(m int) { o.senderFree = make([]float64, m) }

// Name implements CommModel.
func (o *OnePort) Name() string { return "one-port" }

// BoundedMultiPort lets each processor drive up to K simultaneous outgoing
// transfers (Hong-Prasanna bounded multi-port model with per-message
// dedicated bandwidth).
type BoundedMultiPort struct {
	K     int
	ports [][]float64 // ports[p][c] = time channel c of sender p frees up
}

// NewBoundedMultiPort returns a K-port model for an m-processor platform.
func NewBoundedMultiPort(m, k int) (*BoundedMultiPort, error) {
	if k < 1 {
		return nil, fmt.Errorf("sim: multi-port degree must be >= 1, got %d", k)
	}
	b := &BoundedMultiPort{K: k}
	b.Reset(m)
	return b, nil
}

// Deliver implements CommModel.
func (b *BoundedMultiPort) Deliver(p *platform.Platform, src, dst platform.ProcID, volume, sendTime float64) float64 {
	if src == dst {
		return sendTime
	}
	dur := volume * p.Delay(src, dst)
	// Use the earliest-free channel of the sender.
	best := 0
	for c := 1; c < b.K; c++ {
		if b.ports[src][c] < b.ports[src][best] {
			best = c
		}
	}
	start := math.Max(sendTime, b.ports[src][best])
	b.ports[src][best] = start + dur
	return start + dur
}

// Reset implements CommModel.
func (b *BoundedMultiPort) Reset(m int) {
	b.ports = make([][]float64, m)
	for i := range b.ports {
		b.ports[i] = make([]float64, b.K)
	}
}

// Name implements CommModel.
func (b *BoundedMultiPort) Name() string { return fmt.Sprintf("%d-port", b.K) }
