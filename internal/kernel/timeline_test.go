package kernel

import (
	"testing"

	"ftsched/internal/sched"
)

// Unit tests for the insertion-slot search, the mechanism distinguishing
// insertion-based placement (HEFT, ftsa-ins) from plain append-only EFT
// scheduling.

func line(slots ...Slot) *Timeline {
	var tl Timeline
	for _, s := range slots {
		tl.Add(s.Start, s.Finish)
	}
	return &tl
}

func TestEarliestFitEmpty(t *testing.T) {
	var tl Timeline
	if got := tl.EarliestFit(7, 3); got != 7 {
		t.Errorf("empty timeline: %g, want 7", got)
	}
}

func TestEarliestFitGapBeforeFirst(t *testing.T) {
	tl := line(Slot{10, 20})
	if got := tl.EarliestFit(0, 5); got != 0 {
		t.Errorf("leading gap: %g, want 0", got)
	}
	// Task too long for the leading gap: goes after the last slot.
	if got := tl.EarliestFit(0, 15); got != 20 {
		t.Errorf("oversized task: %g, want 20", got)
	}
}

func TestEarliestFitMiddleGap(t *testing.T) {
	tl := line(Slot{0, 10}, Slot{20, 30}, Slot{50, 60})
	// Fits in [10,20).
	if got := tl.EarliestFit(5, 8); got != 10 {
		t.Errorf("middle gap: %g, want 10", got)
	}
	// Ready inside the gap.
	if got := tl.EarliestFit(12, 8); got != 12 {
		t.Errorf("ready inside gap: %g, want 12", got)
	}
	// Too long for [10,20) but fits [30,50).
	if got := tl.EarliestFit(5, 15); got != 30 {
		t.Errorf("second gap: %g, want 30", got)
	}
	// Fits nowhere: appended after 60.
	if got := tl.EarliestFit(5, 25); got != 60 {
		t.Errorf("append: %g, want 60", got)
	}
}

func TestAppendModeIgnoresGaps(t *testing.T) {
	// An append-only board (insertion=false) places after the ready time,
	// never in a gap: commit [0,10) and [20,30), then ask for a start that
	// would fit the free [10,20) window.
	b := NewBoard(1, false)
	defer b.Release()
	b.Commit([]sched.Replica{{Proc: 0, StartMin: 0, FinishMin: 10, StartMax: 0, FinishMax: 10}})
	b.Commit([]sched.Replica{{Proc: 0, StartMin: 20, FinishMin: 30, StartMax: 20, FinishMax: 30}})
	if got := b.StartMin(0, 0, 5); got != 30 {
		t.Errorf("append-only: %g, want 30", got)
	}
	if got := b.StartMin(0, 45, 5); got != 45 {
		t.Errorf("append-only late ready: %g, want 45", got)
	}
}

func TestAddKeepsOrder(t *testing.T) {
	var tl Timeline
	for _, s := range []Slot{{20, 30}, {0, 10}, {40, 50}, {10, 20}} {
		tl.Add(s.Start, s.Finish)
	}
	for i := 1; i < len(tl.slots); i++ {
		if tl.slots[i].Start < tl.slots[i-1].Start {
			t.Fatalf("slots out of order: %v", tl.slots)
		}
	}
	if tl.Len() != 4 {
		t.Fatalf("len = %d", tl.Len())
	}
	tl.Reset()
	if tl.Len() != 0 {
		t.Fatalf("len after reset = %d", tl.Len())
	}
}
