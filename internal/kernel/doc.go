// Package kernel is the shared placement machinery under every scheduler in
// this repository. FTSA, MC-FTSA, FTBAR and HEFT all answer the same three
// questions on every step — "when can this task's inputs arrive on each
// processor?", "when can the processor actually run it?", and "which free
// task comes next?" — and before this package existed each scheduler carried
// its own copy of the answers.
//
// The kernel factors them into three pieces:
//
//   - Board: per-processor placement state for one scheduling run —
//     optimistic and pessimistic ready times, arrival-window scratch filled
//     by Arrivals (equations 1 and 3 of the paper), and, when insertion is
//     enabled, one busy Timeline per processor. Boards are pooled via
//     sync.Pool, so a campaign scheduling thousands of instances back to
//     back allocates per-processor state once per worker, not once per run.
//
//   - Timeline: one processor's busy intervals, kept sorted by start time,
//     with insertion-based earliest-slot search (EarliestFit scans the gaps
//     between busy slots; boards created with insertion disabled fall back
//     to append-only placement from the ready times). This is the mechanism
//     behind HEFT's insertion policy and the registry-only "ftsa-ins"
//     variant.
//
//   - Ready lists: PriorityList, the AVL-backed priority list α of Section
//     4.1 (O(log n) push/pop by criticalness, random tie-breaking), and Set,
//     the insertion-ordered free-task set for schedulers that re-evaluate
//     every free task each step (FTBAR's most-urgent-pair scan).
//
// The kernel is deliberately policy-free: processor selection (minimum
// finish time, minimum pressure, top-(ε+1)) stays in the schedulers. What
// the kernel guarantees is that the shared arithmetic — arrival windows,
// ready-time advancement, slot search — is computed once, the same way, with
// pooled storage, for every scheduler in the registry.
//
// Board.Arrivals walks the frozen CSR view (dag.Flat): callers freeze the
// graph once per run and every per-task step indexes flat int32/float64
// predecessor arrays instead of chasing adjacency headers. The package also
// exports the Grow/GrowZero generics the schedulers use for their own pooled
// scratch.
package kernel
