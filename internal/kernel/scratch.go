package kernel

// Grow returns a slice of length n, reusing buf's storage when it is large
// enough. Contents are unspecified; use GrowZero when elements must start
// from their zero value.
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// GrowZero returns a zeroed slice of length n, reusing buf's storage when it
// is large enough.
func GrowZero[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}
