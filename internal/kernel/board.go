package kernel

import (
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Board is the per-processor placement state of one scheduling run:
//
//   - ReadyMin/ReadyMax are r(Pj), the optimistic and pessimistic times at
//     which each processor next becomes free (the append-only view);
//   - ArrMin/ArrMax are the arrival-window scratch filled by Arrivals;
//   - Lines, present only when the board was created with insertion enabled,
//     holds one busy Timeline per processor for gap-aware slot search.
//
// Boards come from a sync.Pool: a campaign scheduling thousands of instances
// back to back reuses the same per-processor slices instead of allocating
// them once per run. The schedule handed back to callers never aliases board
// storage (sched.Place copies replicas), so releasing a board after a run —
// successful or not — is always safe.
type Board struct {
	ReadyMin, ReadyMax []float64
	ArrMin, ArrMax     []float64
	// Lines holds one busy timeline per processor. It is always backed by
	// pooled storage (so a mixed sweep interleaving append-only and
	// insertion runs on one pool never regrows the slot slices), but it is
	// only consulted — by StartMin's gap search and Commit's slot
	// recording — when the board was created with insertion enabled.
	Lines []Timeline

	insertion bool
}

var boardPool = sync.Pool{New: func() any { return new(Board) }}

// NewBoard returns a zeroed board for m processors, reusing pooled storage.
// With insertion enabled, StartMin searches inter-slot gaps of the
// per-processor timelines instead of appending after the ready time.
func NewBoard(m int, insertion bool) *Board {
	b := boardPool.Get().(*Board)
	b.ReadyMin = GrowZero(b.ReadyMin, m)
	b.ReadyMax = GrowZero(b.ReadyMax, m)
	b.ArrMin = GrowZero(b.ArrMin, m)
	b.ArrMax = GrowZero(b.ArrMax, m)
	b.insertion = insertion
	b.Lines = Grow(b.Lines, m)
	for j := range b.Lines {
		b.Lines[j].Reset()
	}
	return b
}

// Release returns the board's storage to the pool. The board must not be
// used afterwards.
func (b *Board) Release() {
	if b == nil {
		return
	}
	boardPool.Put(b)
}

// Arrivals fills ArrMin/ArrMax with, for every processor Pj, the earliest
// (equation 1) and latest (equation 3) time the data of every predecessor of
// t can be available on Pj, given the replicas already placed in s. It walks
// the frozen CSR ranges — the innermost loop of every list scheduler — so
// the caller freezes the graph once per run and shares the view.
func (b *Board) Arrivals(f *dag.Flat, p *platform.Platform, s *sched.Schedule, t dag.TaskID) {
	for j := range b.ArrMin {
		b.ArrMin[j], b.ArrMax[j] = 0, 0
	}
	m := p.NumProcs()
	preds := f.PredIDs(t)
	vols := f.PredVolumes(t)
	for i, pt := range preds {
		srcReps := s.Replicas(dag.TaskID(pt))
		for j := 0; j < m; j++ {
			eMin, eMax := sched.ArrivalWindow(p, srcReps, vols[i], platform.ProcID(j))
			if eMin > b.ArrMin[j] {
				b.ArrMin[j] = eMin
			}
			if eMax > b.ArrMax[j] {
				b.ArrMax[j] = eMax
			}
		}
	}
}

// StartMin returns the earliest optimistic start of a task of duration dur
// on processor j whose inputs arrive at arr: max(arr, r(Pj)) in append mode,
// or the earliest fitting gap when insertion is enabled.
func (b *Board) StartMin(j int, arr, dur float64) float64 {
	if b.insertion {
		return b.Lines[j].EarliestFit(arr, dur)
	}
	if r := b.ReadyMin[j]; r > arr {
		return r
	}
	return arr
}

// StartMax returns the earliest pessimistic start on processor j for inputs
// arriving (pessimistically) at arr. The pessimistic window is always
// append-only: under failures the gap structure of the optimistic timeline
// is not guaranteed, so insertion never applies here.
func (b *Board) StartMax(j int, arr float64) float64 {
	if r := b.ReadyMax[j]; r > arr {
		return r
	}
	return arr
}

// Commit advances the board past the given replicas: ready times move to
// each replica's finish (monotonically — a gap-inserted replica finishing
// early never rewinds them), and, under insertion, the optimistic window is
// recorded in the processor's timeline.
func (b *Board) Commit(reps []sched.Replica) {
	for i := range reps {
		r := &reps[i]
		if r.FinishMin > b.ReadyMin[r.Proc] {
			b.ReadyMin[r.Proc] = r.FinishMin
		}
		if r.FinishMax > b.ReadyMax[r.Proc] {
			b.ReadyMax[r.Proc] = r.FinishMax
		}
		if b.insertion {
			b.Lines[r.Proc].Add(r.StartMin, r.FinishMin)
		}
	}
}
