package kernel

import "sort"

// Slot is one busy interval on a processor, [Start, Finish).
type Slot struct{ Start, Finish float64 }

// Timeline is one processor's busy intervals, kept sorted by start time. The
// zero Timeline is empty and ready to use; Reset empties it again while
// keeping its storage, which is what lets Boards recycle timelines across
// runs.
type Timeline struct {
	slots []Slot
}

// Len returns the number of busy slots.
func (tl *Timeline) Len() int { return len(tl.slots) }

// Reset empties the timeline, keeping the backing storage.
func (tl *Timeline) Reset() { tl.slots = tl.slots[:0] }

// EarliestFit returns the earliest start >= ready at which a task of
// duration dur fits: the first inter-slot gap that can hold it, or after the
// last slot when no gap can. This is the insertion policy of HEFT and of the
// ftsa-ins registry variant.
func (tl *Timeline) EarliestFit(ready, dur float64) float64 {
	busy := tl.slots
	if len(busy) == 0 {
		return ready
	}
	// Gap before the first slot.
	if ready+dur <= busy[0].Start {
		return ready
	}
	for i := 0; i+1 < len(busy); i++ {
		gapStart := ready
		if busy[i].Finish > gapStart {
			gapStart = busy[i].Finish
		}
		if gapStart+dur <= busy[i+1].Start {
			return gapStart
		}
	}
	if last := busy[len(busy)-1].Finish; last > ready {
		return last
	}
	return ready
}

// Add records a busy interval, keeping the slot list sorted by start time.
func (tl *Timeline) Add(start, finish float64) {
	s := Slot{Start: start, Finish: finish}
	i := sort.Search(len(tl.slots), func(i int) bool { return tl.slots[i].Start >= s.Start })
	tl.slots = append(tl.slots, Slot{})
	copy(tl.slots[i+1:], tl.slots[i:])
	tl.slots[i] = s
}
