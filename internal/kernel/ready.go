package kernel

import (
	"ftsched/internal/avl"
	"ftsched/internal/dag"
)

// Item is one entry of a ready list: a task with its list priority and a
// tie-breaking value (drawn at random by the schedulers, matching the
// paper's "ties are broken randomly"; zero falls back to ordering by ID).
type Item struct {
	ID       int
	Priority float64
	Tie      uint64
}

// ReadyList abstracts the free-task collection of a list scheduler: tasks
// become ready as their predecessors are mapped (Push) and the scheduler
// repeatedly extracts the next one to place (Pop).
type ReadyList interface {
	Push(Item)
	Pop() (Item, bool)
	Len() int
}

// PriorityList is the AVL-backed priority list α of Section 4.1: Pop returns
// H(α), the highest-priority item, in O(log n). It is the ready list of FTSA
// and its variants.
type PriorityList struct {
	l *avl.FreeList
}

// NewPriorityList returns an empty priority list.
func NewPriorityList() *PriorityList { return &PriorityList{l: avl.NewFreeList()} }

// Push inserts an item.
func (pl *PriorityList) Push(it Item) {
	pl.l.Push(avl.Entry{Priority: it.Priority, Tie: it.Tie, ID: it.ID})
}

// Pop removes and returns the highest-priority item.
func (pl *PriorityList) Pop() (Item, bool) {
	e, ok := pl.l.PopHead()
	return Item{ID: e.ID, Priority: e.Priority, Tie: e.Tie}, ok
}

// Len returns the number of items.
func (pl *PriorityList) Len() int { return pl.l.Len() }

// Set is the insertion-ordered free-task set for schedulers that re-evaluate
// every free task on every step instead of maintaining static priorities —
// FTBAR scans the whole set for its most-urgent (task, processor) pair.
// Removal is stable, preserving the order of the remaining tasks.
type Set struct {
	ids []dag.TaskID
}

// Add appends a task to the set.
func (s *Set) Add(t dag.TaskID) { s.ids = append(s.ids, t) }

// Remove deletes every occurrence of t (list schedulers hold each free task
// at most once), preserving the order of the remaining tasks.
func (s *Set) Remove(t dag.TaskID) {
	out := s.ids[:0]
	for _, f := range s.ids {
		if f != t {
			out = append(out, f)
		}
	}
	s.ids = out
}

// Tasks returns the set's tasks in insertion order. The slice is owned by
// the set and valid until the next Add or Remove.
func (s *Set) Tasks() []dag.TaskID { return s.ids }

// Len returns the number of tasks in the set.
func (s *Set) Len() int { return len(s.ids) }
