package kernel

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

func testInstance(t testing.TB, seed int64) *workload.Instance {
	t.Helper()
	inst, err := workload.NewInstance(rand.New(rand.NewSource(seed)), workload.DefaultPaperConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestBoardArrivalsMatchesDirect cross-checks Board.Arrivals against a naive
// recomputation from sched.ArrivalWindow on a schedule with a few placed
// replicas.
func TestBoardArrivalsMatchesDirect(t *testing.T) {
	inst := testInstance(t, 3)
	g, p, cm := inst.Graph, inst.Platform, inst.Costs
	s, err := sched.New(g, p, cm, 0, sched.PatternAll, "test")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBoard(p.NumProcs(), false)
	defer b.Release()

	// Place every task greedily on the processor with minimum finish time,
	// checking the board's arrival windows against the direct computation as
	// we go.
	f, err := g.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range order {
		b.Arrivals(f, p, s, task)
		for j := 0; j < p.NumProcs(); j++ {
			wantMin, wantMax := 0.0, 0.0
			for _, pe := range g.Preds(task) {
				eMin, eMax := sched.ArrivalWindow(p, s.Replicas(pe.To), pe.Volume, platform.ProcID(j))
				wantMin = math.Max(wantMin, eMin)
				wantMax = math.Max(wantMax, eMax)
			}
			if b.ArrMin[j] != wantMin || b.ArrMax[j] != wantMax {
				t.Fatalf("task %d proc %d: board (%g,%g), direct (%g,%g)",
					task, j, b.ArrMin[j], b.ArrMax[j], wantMin, wantMax)
			}
		}
		best, bestF := 0, math.Inf(1)
		for j := 0; j < p.NumProcs(); j++ {
			f := b.StartMin(j, b.ArrMin[j], 0) + cm.Cost(task, platform.ProcID(j))
			if f < bestF {
				best, bestF = j, f
			}
		}
		e := cm.Cost(task, platform.ProcID(best))
		sMin := b.StartMin(best, b.ArrMin[best], e)
		sMax := b.StartMax(best, b.ArrMax[best])
		reps := []sched.Replica{{
			Task: task, Copy: 0, Proc: platform.ProcID(best),
			StartMin: sMin, FinishMin: sMin + e,
			StartMax: sMax, FinishMax: sMax + e,
		}}
		if err := s.Place(task, reps); err != nil {
			t.Fatal(err)
		}
		b.Commit(reps)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("greedy board schedule invalid: %v", err)
	}
}

// TestBoardCommitMonotonic verifies that committing a gap-inserted replica
// finishing before the current ready time never rewinds the board.
func TestBoardCommitMonotonic(t *testing.T) {
	b := NewBoard(2, true)
	defer b.Release()
	b.Commit([]sched.Replica{{Proc: 0, StartMin: 10, FinishMin: 20, StartMax: 15, FinishMax: 25}})
	if b.ReadyMin[0] != 20 || b.ReadyMax[0] != 25 {
		t.Fatalf("ready after first commit: (%g,%g)", b.ReadyMin[0], b.ReadyMax[0])
	}
	// A replica inserted into the gap [0,10) finishes before 20.
	b.Commit([]sched.Replica{{Proc: 0, StartMin: 0, FinishMin: 5, StartMax: 30, FinishMax: 35}})
	if b.ReadyMin[0] != 20 {
		t.Fatalf("ReadyMin rewound to %g", b.ReadyMin[0])
	}
	if b.ReadyMax[0] != 35 {
		t.Fatalf("ReadyMax = %g, want 35", b.ReadyMax[0])
	}
	if b.Lines[0].Len() != 2 {
		t.Fatalf("timeline has %d slots, want 2", b.Lines[0].Len())
	}
	// The gap [5,10) is still findable.
	if got := b.Lines[0].EarliestFit(0, 5); got != 5 {
		t.Fatalf("EarliestFit after commits = %g, want 5", got)
	}
}

// TestBoardPoolReuse verifies that a released board comes back zeroed, with
// timelines reset, regardless of its previous run's mode.
func TestBoardPoolReuse(t *testing.T) {
	for i := 0; i < 50; i++ {
		ins := i%2 == 0
		b := NewBoard(4, ins)
		for j := 0; j < 4; j++ {
			if b.ReadyMin[j] != 0 || b.ReadyMax[j] != 0 || b.ArrMin[j] != 0 || b.ArrMax[j] != 0 {
				t.Fatalf("iteration %d: board not zeroed", i)
			}
		}
		// Timeline storage is retained across modes but always comes back
		// reset; dirty it so the next iteration exercises the reset.
		for j := range b.Lines {
			if b.Lines[j].Len() != 0 {
				t.Fatalf("iteration %d: timeline %d not reset", i, j)
			}
			if ins {
				b.Lines[j].Add(float64(j), float64(j)+1)
			}
		}
		b.Commit([]sched.Replica{{Proc: 1, StartMin: 1, FinishMin: 2, StartMax: 3, FinishMax: 4}})
		b.Release()
	}
}

func TestPriorityListOrder(t *testing.T) {
	pl := NewPriorityList()
	pl.Push(Item{ID: 1, Priority: 5})
	pl.Push(Item{ID: 2, Priority: 9})
	pl.Push(Item{ID: 3, Priority: 9, Tie: 1})
	pl.Push(Item{ID: 4, Priority: 1})
	if pl.Len() != 4 {
		t.Fatalf("len = %d", pl.Len())
	}
	var got []int
	for pl.Len() > 0 {
		it, ok := pl.Pop()
		if !ok {
			t.Fatal("pop failed with items left")
		}
		got = append(got, it.ID)
	}
	// Highest priority first; equal priorities broken by higher tie, then ID.
	want := []int{3, 2, 1, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if _, ok := pl.Pop(); ok {
		t.Fatal("pop on empty list succeeded")
	}
}

func TestSetStableRemove(t *testing.T) {
	var s Set
	for _, id := range []dag.TaskID{4, 7, 1, 9} {
		s.Add(id)
	}
	s.Remove(7)
	want := []dag.TaskID{4, 1, 9}
	got := s.Tasks()
	if len(got) != len(want) {
		t.Fatalf("tasks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tasks %v, want %v", got, want)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Remove(42) // absent: no-op
	if s.Len() != 3 {
		t.Fatalf("len after absent remove = %d", s.Len())
	}
}

func TestGrowZero(t *testing.T) {
	buf := []float64{1, 2, 3, 4}
	got := GrowZero(buf[:2], 3)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("got[%d] = %g, want 0", i, v)
		}
	}
	if &got[0] != &buf[0] {
		t.Fatal("GrowZero reallocated despite sufficient capacity")
	}
	grown := GrowZero(buf, 10)
	if len(grown) != 10 {
		t.Fatalf("grown len = %d", len(grown))
	}
}
