package schedulers

import (
	"os"
	"strings"
	"testing"

	"ftsched/internal/sched"
)

const (
	beginMarker = "<!-- BEGIN SCHEDULER TABLE (generated from the registry; do not edit by hand) -->"
	endMarker   = "<!-- END SCHEDULER TABLE -->"
)

// TestAPIDocsSchedulerTable asserts that the scheduler table embedded in
// docs/API.md is exactly sched.RegistryTable() — registering, renaming or
// re-describing a scheduler without regenerating the docs fails the build.
// To regenerate, replace the lines between the markers with the output of:
//
//	go test ./internal/schedulers -run TestAPIDocsSchedulerTable -v
//
// (the failure message prints the wanted table verbatim).
func TestAPIDocsSchedulerTable(t *testing.T) {
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	begin := strings.Index(doc, beginMarker)
	end := strings.Index(doc, endMarker)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("docs/API.md is missing the generated-table markers %q ... %q", beginMarker, endMarker)
	}
	embedded := strings.TrimSpace(doc[begin+len(beginMarker) : end])
	want := strings.TrimSpace(sched.RegistryTable())
	if embedded != want {
		t.Errorf("docs/API.md scheduler table drifted from the registry.\n"+
			"Replace the block between the markers with:\n\n%s\n", want)
	}
}
