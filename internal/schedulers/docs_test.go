// These drift tests live in the external test package so they can import
// the serving layer (which itself blank-imports this package to register
// every scheduler) without an import cycle.
package schedulers_test

import (
	"os"
	"strings"
	"testing"

	"ftsched/internal/coord"
	"ftsched/internal/sched"
	"ftsched/internal/service"
)

const (
	beginMarker = "<!-- BEGIN SCHEDULER TABLE (generated from the registry; do not edit by hand) -->"
	endMarker   = "<!-- END SCHEDULER TABLE -->"

	beginEndpoints = "<!-- BEGIN ENDPOINT TABLE (generated from internal/service; do not edit by hand) -->"
	endEndpoints   = "<!-- END ENDPOINT TABLE -->"

	beginCoord = "<!-- BEGIN COORDINATOR ENDPOINT TABLE (generated from internal/coord; do not edit by hand) -->"
	endCoord   = "<!-- END COORDINATOR ENDPOINT TABLE -->"

	beginScenarios = "<!-- BEGIN SCENARIO KIND TABLE (generated from the scenario-kind registry; do not edit by hand) -->"
	endScenarios   = "<!-- END SCENARIO KIND TABLE -->"
)

// embeddedTable extracts the generated block between two markers in
// docs/API.md.
func embeddedTable(t *testing.T, begin, end string) string {
	t.Helper()
	raw, err := os.ReadFile("../../docs/API.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	b := strings.Index(doc, begin)
	e := strings.Index(doc, end)
	if b < 0 || e < 0 || e < b {
		t.Fatalf("docs/API.md is missing the generated-table markers %q ... %q", begin, end)
	}
	return strings.TrimSpace(doc[b+len(begin) : e])
}

// TestAPIDocsSchedulerTable asserts that the scheduler table embedded in
// docs/API.md is exactly sched.RegistryTable() — registering, renaming or
// re-describing a scheduler without regenerating the docs fails the build.
// To regenerate, replace the lines between the markers with the output of:
//
//	go test ./internal/schedulers -run TestAPIDocsSchedulerTable -v
//
// (the failure message prints the wanted table verbatim).
func TestAPIDocsSchedulerTable(t *testing.T) {
	embedded := embeddedTable(t, beginMarker, endMarker)
	want := strings.TrimSpace(sched.RegistryTable())
	if embedded != want {
		t.Errorf("docs/API.md scheduler table drifted from the registry.\n"+
			"Replace the block between the markers with:\n\n%s\n", want)
	}
}

// TestAPIDocsEndpointTable asserts, the same way, that the endpoint table in
// docs/API.md is exactly service.EndpointTable() — adding a route (like
// /tune) without documenting it, or documenting one that is not served,
// fails the build.
func TestAPIDocsEndpointTable(t *testing.T) {
	embedded := embeddedTable(t, beginEndpoints, endEndpoints)
	want := strings.TrimSpace(service.EndpointTable())
	if embedded != want {
		t.Errorf("docs/API.md endpoint table drifted from the serving layer.\n"+
			"Replace the block between the markers with:\n\n%s\n", want)
	}
}

// TestAPIDocsCoordinatorTable holds the coordinator-mode surface to the same
// standard: the table in docs/API.md must be exactly coord.EndpointTable().
func TestAPIDocsCoordinatorTable(t *testing.T) {
	embedded := embeddedTable(t, beginCoord, endCoord)
	want := strings.TrimSpace(coord.EndpointTable())
	if embedded != want {
		t.Errorf("docs/API.md coordinator endpoint table drifted from internal/coord.\n"+
			"Replace the block between the markers with:\n\n%s\n", want)
	}
}

// TestAPIDocsScenarioKindTable pins the documented scenario-kind list to the
// scenario-kind registry (service.ScenarioKindTable): registering a new kind,
// renaming a parameter or rewording a summary without regenerating docs/API.md
// fails the build.
func TestAPIDocsScenarioKindTable(t *testing.T) {
	embedded := embeddedTable(t, beginScenarios, endScenarios)
	want := strings.TrimSpace(service.ScenarioKindTable())
	if embedded != want {
		t.Errorf("docs/API.md scenario-kind table drifted from the registry.\n"+
			"Replace the block between the markers with:\n\n%s\n", want)
	}
}
