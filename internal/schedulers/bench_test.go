package schedulers

import (
	"testing"

	"ftsched/internal/sched"
)

// BenchmarkSchedule runs every registered scheduler through the registry's
// uniform entry point on the fixed golden instance (≈125 tasks, 20 procs,
// ε=2 for the fault-tolerant schedulers). The allocation counts are the
// scoreboard for the kernel's pooled placement state; pre-kernel baselines
// on this instance were ftsa 332, mcftsa 8206, ftbar 6981, heft 197
// allocs/op.
func BenchmarkSchedule(b *testing.B) {
	inst := goldenInstance(b)
	g, p, cm := inst.Graph, inst.Platform, inst.Costs
	bl, err := sched.AvgBottomLevels(g, cm, p)
	if err != nil {
		b.Fatal(err)
	}
	for _, info := range sched.Registrations() {
		eps := 0
		if info.FaultTolerant {
			eps = 2
		}
		opt := sched.RunOptions{Epsilon: eps, BottomLevels: bl}
		name := info.Name()
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Run(name, g, p, cm, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
