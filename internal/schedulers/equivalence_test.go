package schedulers

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/ftbar"
	"ftsched/internal/heft"
	"ftsched/internal/sched"
	"ftsched/internal/workload"
)

// goldenInstance is the fixed instance every golden file was generated on
// (pre-refactor, seed 42 of the paper's generator at granularity 1.0).
func goldenInstance(t testing.TB) *workload.Instance {
	t.Helper()
	inst, err := workload.NewInstance(rand.New(rand.NewSource(42)), workload.DefaultPaperConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func scheduleJSON(t *testing.T, s *sched.Schedule, err error) []byte {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if verr := s.Validate(); verr != nil {
		t.Fatalf("schedule invalid: %v", verr)
	}
	var buf bytes.Buffer
	if _, werr := s.WriteTo(&buf); werr != nil {
		t.Fatal(werr)
	}
	return buf.Bytes()
}

// TestRegistryEquivalence asserts, for every registered scheduler, that the
// registry's uniform entry point produces byte-identical schedule JSON to
// (a) the scheduler's direct pre-refactor entry point and (b) the golden
// file generated from the pre-refactor tree, on fixed seeds. This is the
// contract that keeps ftserved's fingerprint-keyed response cache stable
// across the registry refactor: same request bytes in, same response bytes
// out.
func TestRegistryEquivalence(t *testing.T) {
	inst := goldenInstance(t)
	g, p, cm := inst.Graph, inst.Platform, inst.Costs
	rng := func(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

	cases := []struct {
		golden string // file under testdata/, "" when the variant predates no golden
		name   string // registry name (or alias) to resolve
		opt    sched.RunOptions
		direct func() (*sched.Schedule, error)
	}{
		{
			golden: "ftsa-eps2", name: "ftsa", opt: sched.RunOptions{Epsilon: 2},
			direct: func() (*sched.Schedule, error) {
				return core.FTSA(g, p, cm, core.Options{Epsilon: 2})
			},
		},
		{
			golden: "ftsa-eps1-seed7", name: "FTSA", opt: sched.RunOptions{Epsilon: 1, Rng: rng(7)},
			direct: func() (*sched.Schedule, error) {
				return core.FTSA(g, p, cm, core.Options{Epsilon: 1, Rng: rng(7)})
			},
		},
		{
			golden: "mcftsa-greedy-eps2", name: "mcftsa", opt: sched.RunOptions{Epsilon: 2},
			direct: func() (*sched.Schedule, error) {
				return core.MCFTSA(g, p, cm, core.MCFTSAOptions{Options: core.Options{Epsilon: 2}})
			},
		},
		{
			golden: "mcftsa-bottleneck-eps2", name: "MC-FTSA",
			opt: sched.RunOptions{Epsilon: 2, Policy: "bottleneck"},
			direct: func() (*sched.Schedule, error) {
				return core.MCFTSA(g, p, cm, core.MCFTSAOptions{
					Options: core.Options{Epsilon: 2}, Policy: core.MatchBottleneck,
				})
			},
		},
		{
			golden: "ftbar-eps2", name: "ftbar", opt: sched.RunOptions{Epsilon: 2},
			direct: func() (*sched.Schedule, error) {
				return ftbar.Schedule(g, p, cm, ftbar.Options{Npf: 2})
			},
		},
		{
			golden: "ftbar-eps1-seed7", name: "FTBAR", opt: sched.RunOptions{Epsilon: 1, Rng: rng(7)},
			direct: func() (*sched.Schedule, error) {
				return ftbar.Schedule(g, p, cm, ftbar.Options{Npf: 1, Rng: rng(7)})
			},
		},
		{
			golden: "heft", name: "heft", opt: sched.RunOptions{},
			direct: func() (*sched.Schedule, error) {
				return heft.Schedule(g, p, cm, heft.Options{})
			},
		},
		{
			golden: "heft-noinsertion", name: "HEFT", opt: sched.RunOptions{Policy: "noinsertion"},
			direct: func() (*sched.Schedule, error) {
				return heft.Schedule(g, p, cm, heft.Options{NoInsertion: true})
			},
		},
		{
			// ftsa-ins is registry-born: no pre-refactor golden, but registry
			// and direct entry points must still agree.
			name: "ftsa-ins", opt: sched.RunOptions{Epsilon: 2},
			direct: func() (*sched.Schedule, error) {
				return core.FTSAIns(g, p, cm, core.Options{Epsilon: 2})
			},
		},
	}

	covered := make(map[string]bool)
	for _, tc := range cases {
		label := tc.golden
		if label == "" {
			label = tc.name
		}
		t.Run(label, func(t *testing.T) {
			regSched, regErr := sched.Run(tc.name, g, p, cm, tc.opt)
			viaRegistry := scheduleJSON(t, regSched, regErr)
			directSched, directErr := tc.direct()
			direct := scheduleJSON(t, directSched, directErr)
			if !bytes.Equal(viaRegistry, direct) {
				t.Fatalf("registry and direct schedules differ (%d vs %d bytes)", len(viaRegistry), len(direct))
			}
			if tc.golden != "" {
				want, err := os.ReadFile(filepath.Join("testdata", tc.golden+".golden.json"))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(viaRegistry, want) {
					t.Fatalf("schedule differs from pre-refactor golden %s (%d vs %d bytes)",
						tc.golden, len(viaRegistry), len(want))
				}
			}
			info, ok := sched.LookupInfo(tc.name)
			if !ok {
				t.Fatalf("LookupInfo(%q) failed", tc.name)
			}
			covered[info.Name()] = true
		})
	}
	// Every registered scheduler must be covered by at least one case, so a
	// future registration cannot silently skip the equivalence gate.
	for _, name := range sched.Names() {
		if !covered[name] {
			t.Errorf("registered scheduler %q has no equivalence case", name)
		}
	}
}

// TestRegistryNames pins the canonical names and aliases the rest of the
// system (HTTP API, campaign grids, CLIs) relies on.
func TestRegistryNames(t *testing.T) {
	want := []string{"ftsa", "mcftsa", "ftsa-ins", "ftbar", "heft"}
	got := sched.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	for alias, canonical := range map[string]string{
		"MC-FTSA": "mcftsa", "mc-ftsa": "mcftsa", "FTSAINS": "ftsa-ins", "Heft": "heft",
	} {
		info, ok := sched.LookupInfo(alias)
		if !ok || info.Name() != canonical {
			t.Errorf("LookupInfo(%q) = %v, %v; want %s", alias, info.Name(), ok, canonical)
		}
	}
}
