package schedulers_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers"
	"ftsched/internal/workload"
)

// TestSchedulerInvariants is the property-based validity checker: every
// registered scheduler runs over a seeded grid of random workloads, and the
// structural invariants of a fault-tolerant schedule are asserted directly
// from the public schedule surface (independently of Schedule.Validate, so a
// validator bug cannot mask a scheduler bug):
//
//   - the mapping order is a topological order covering every task once;
//   - every task carries >= ε+1 replicas on >= ε+1 pairwise distinct
//     processors (Proposition 4.1), with ε drawn from the registry's
//     capability surface (0 for non-fault-tolerant schedulers);
//   - no two executions overlap on one processor, in the optimistic and
//     the pessimistic window alike;
//   - replica windows are consistent (start >= 0, duration == cost);
//   - for schedulers registered with Deadlines support, a run under a
//     latency budget that succeeds honors it: UpperBound <= budget.
//
// The grid stays small enough for -race; the instance set is deterministic,
// so a failure names a reproducible (scheduler, instance, ε) triple.
func TestSchedulerInvariants(t *testing.T) {
	grid := []struct {
		procs, minTasks, maxTasks int
		granularity               float64
	}{
		{4, 12, 18, 0.5},
		{6, 20, 30, 1.0},
		{9, 25, 35, 2.0},
	}
	for _, r := range sched.Registrations() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			epsilons := []int{0}
			if r.FaultTolerant {
				epsilons = []int{0, 1, 2}
			}
			for gi, gspec := range grid {
				for inst := 0; inst < 3; inst++ {
					rng := rand.New(rand.NewSource(int64(1000*gi + inst)))
					cfg := workload.DefaultPaperConfig(gspec.granularity)
					cfg.Procs = gspec.procs
					cfg.DAG.MinTasks, cfg.DAG.MaxTasks = gspec.minTasks, gspec.maxTasks
					in, err := workload.NewInstance(rng, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, eps := range epsilons {
						if eps+1 > gspec.procs {
							continue
						}
						name := fmt.Sprintf("grid%d/inst%d/eps%d", gi, inst, eps)
						s, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs,
							sched.RunOptions{Epsilon: eps, Rng: rand.New(rand.NewSource(int64(inst + 1)))})
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if err := checkInvariants(s, in, eps); err != nil {
							t.Errorf("%s: %v", name, err)
						}
						// The schedule's own validator must agree.
						if err := s.Validate(); err != nil {
							t.Errorf("%s: Validate: %v", name, err)
						}
					}
				}
			}
		})
	}
}

// TestSchedulerDeadlineInvariant covers the Deadlines capability: when a
// deadline-checked run succeeds, the guaranteed upper bound fits the budget;
// an infeasibly tight budget must fail rather than emit a late schedule.
func TestSchedulerDeadlineInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 6
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 20, 30
	in, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sched.Registrations() {
		if !r.Deadlines {
			continue
		}
		t.Run(r.Name(), func(t *testing.T) {
			free, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs,
				sched.RunOptions{Epsilon: 1, Rng: rand.New(rand.NewSource(1))})
			if err != nil {
				t.Fatal(err)
			}
			// A generous budget must be met and honored.
			budget := free.UpperBound() * 2
			s, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs,
				sched.RunOptions{Epsilon: 1, Rng: rand.New(rand.NewSource(1)), Latency: budget})
			if err != nil {
				t.Fatalf("budget 2×UB rejected: %v", err)
			}
			if s.UpperBound() > budget+1e-9 {
				t.Fatalf("deadline run guarantees %g over the %g budget", s.UpperBound(), budget)
			}
			if err := checkInvariants(s, in, 1); err != nil {
				t.Fatal(err)
			}
			// An impossible budget must error, not under-deliver silently.
			if _, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs,
				sched.RunOptions{Epsilon: 1, Rng: rand.New(rand.NewSource(1)), Latency: free.LowerBound() / 1e6}); err == nil {
				t.Fatal("absurdly tight budget produced a schedule")
			}
		})
	}
}

// TestSchedulerCapabilityChecks asserts the registry's capability surface is
// enforced uniformly at dispatch: bad ε, unknown policies and unsupported
// deadlines are rejected by name.
func TestSchedulerCapabilityChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 4
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 8, 12
	in, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sched.Registrations() {
		if !r.FaultTolerant {
			if _, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs, sched.RunOptions{Epsilon: 1}); err == nil {
				t.Errorf("%s: ε=1 accepted by a non-fault-tolerant scheduler", r.Name())
			}
		}
		if _, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs, sched.RunOptions{Policy: "no-such-policy"}); err == nil {
			t.Errorf("%s: unknown policy accepted", r.Name())
		}
		if !r.Deadlines {
			if _, err := sched.Run(r.Name(), in.Graph, in.Platform, in.Costs, sched.RunOptions{Latency: 10}); err == nil {
				t.Errorf("%s: latency budget accepted without Deadlines capability", r.Name())
			}
		}
	}
	if _, err := sched.Run("no-such-scheduler", in.Graph, in.Platform, in.Costs, sched.RunOptions{}); !errors.Is(err, sched.ErrUnknownScheduler) {
		t.Errorf("unknown scheduler error = %v, want ErrUnknownScheduler", err)
	}
}

// checkInvariants asserts the structural schedule invariants from the public
// surface only.
func checkInvariants(s *sched.Schedule, in *workload.Instance, eps int) error {
	g, cm := in.Graph, in.Costs
	v := g.NumTasks()

	order := s.MappingOrder()
	if len(order) != v {
		return fmt.Errorf("mapping order covers %d of %d tasks", len(order), v)
	}
	if !g.IsTopologicalOrder(order) {
		return fmt.Errorf("mapping order is not topological")
	}

	type span struct {
		start, finish float64
		task          dag.TaskID
	}
	minSpans := make(map[platform.ProcID][]span)
	maxSpans := make(map[platform.ProcID][]span)
	for t := 0; t < v; t++ {
		tid := dag.TaskID(t)
		reps := s.Replicas(tid)
		if len(reps) < eps+1 {
			return fmt.Errorf("task %d has %d replicas, want >= %d", t, len(reps), eps+1)
		}
		procs := map[platform.ProcID]bool{}
		for _, rep := range reps {
			procs[rep.Proc] = true
			cost := cm.Cost(tid, rep.Proc)
			if rep.StartMin < -1e-9 || rep.StartMax < rep.StartMin-1e-9 {
				return fmt.Errorf("task %d copy %d has invalid starts (%g, %g)", t, rep.Copy, rep.StartMin, rep.StartMax)
			}
			if d := rep.FinishMin - rep.StartMin; math.Abs(d-cost) > 1e-7 {
				return fmt.Errorf("task %d copy %d Min duration %g != cost %g", t, rep.Copy, d, cost)
			}
			if d := rep.FinishMax - rep.StartMax; math.Abs(d-cost) > 1e-7 {
				return fmt.Errorf("task %d copy %d Max duration %g != cost %g", t, rep.Copy, d, cost)
			}
			minSpans[rep.Proc] = append(minSpans[rep.Proc], span{rep.StartMin, rep.FinishMin, tid})
			maxSpans[rep.Proc] = append(maxSpans[rep.Proc], span{rep.StartMax, rep.FinishMax, tid})
		}
		if len(procs) < eps+1 {
			return fmt.Errorf("task %d uses %d distinct processors, want >= %d (replica space, Prop. 4.1)", t, len(procs), eps+1)
		}
	}
	for kind, spans := range map[string]map[platform.ProcID][]span{"Min": minSpans, "Max": maxSpans} {
		for proc, ss := range spans {
			sort.Slice(ss, func(i, j int) bool { return ss[i].start < ss[j].start })
			for i := 1; i < len(ss); i++ {
				if ss[i].start < ss[i-1].finish-1e-7 {
					return fmt.Errorf("P%d %s window: task %d [%g,%g) overlaps task %d [%g,%g)",
						proc, kind, ss[i-1].task, ss[i-1].start, ss[i-1].finish,
						ss[i].task, ss[i].start, ss[i].finish)
				}
			}
		}
	}

	// Latency bounds must be finite, ordered, and consistent with the
	// replica windows.
	lb, ub := s.LowerBound(), s.UpperBound()
	if math.IsInf(lb, 1) || lb <= 0 || ub < lb-1e-9 {
		return fmt.Errorf("implausible bounds [%g, %g]", lb, ub)
	}
	return nil
}
