package schedulers_test

import (
	"math/rand"
	"testing"

	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// TestWorstCaseDominatesMonteCarlo is the acceptance property of the
// adversarial search: for every registered scheduler, the reported worst
// case is at least as damaging as the worst of N Monte-Carlo uniform:k
// draws on the same replay budget. The guarantee is deterministic, not
// statistical — the search's exhaustive phase covers uniform:k's entire
// support (every k-subset crashed at time 0) whenever it fits the budget,
// which it does here by construction.
func TestWorstCaseDominatesMonteCarlo(t *testing.T) {
	const (
		procs  = 6
		k      = 2
		budget = 300 // >> C(6,2)+1, so the exhaustive phase always runs
	)
	rng := rand.New(rand.NewSource(77))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 20, 30
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sched.Registrations() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			t.Parallel()
			eps := 0
			if r.FaultTolerant {
				eps = 1
			}
			s, err := sched.Run(r.Name(), inst.Graph, inst.Platform, inst.Costs,
				sched.RunOptions{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			wc, err := sim.WorstCase(s, sim.AdversarySpec{Crashes: k, MaxEvals: budget}, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !wc.Exhaustive {
				t.Fatalf("search was not exhaustive within budget %d: %+v", budget, wc)
			}
			if wc.Evals > budget {
				t.Fatalf("search spent %d evals over the budget %d", wc.Evals, budget)
			}
			res, err := sim.Evaluate(s, sim.UniformGen{N: k}, budget, sim.EvalOptions{Seed: 9, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			anyMiss := res.Successes < res.Trials
			if anyMiss && !wc.Missed {
				t.Fatalf("a Monte-Carlo draw missed but the adversary reports no miss: %+v vs %+v", res, wc)
			}
			if !anyMiss && !wc.Missed && res.Latency.Max > wc.Latency+1e-9 {
				t.Fatalf("Monte-Carlo max latency %g beats the reported worst case %g",
					res.Latency.Max, wc.Latency)
			}
		})
	}
}
