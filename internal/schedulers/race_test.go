package schedulers

import (
	"fmt"
	"sync"
	"testing"

	"ftsched/internal/sched"
)

// TestConcurrentDispatch hammers the registry and the kernel's pooled
// placement state from many goroutines at once: every scheduler × several ε
// values, looked up and run concurrently, with results cross-checked against
// a serial pass. Run under -race (CI does), this is the proof that
//
//   - registry lookups are safe against each other (the serving layer
//     resolves per request), and
//   - the kernel's sync.Pool recycling of boards and scratch never leaks
//     state between concurrent runs — every concurrent schedule is
//     byte-equal in its bounds to the serial one.
func TestConcurrentDispatch(t *testing.T) {
	inst := goldenInstance(t)
	g, p, cm := inst.Graph, inst.Platform, inst.Costs

	type job struct {
		name string
		opt  sched.RunOptions
	}
	var jobs []job
	for _, info := range sched.Registrations() {
		epsilons := []int{0}
		if info.FaultTolerant {
			epsilons = []int{0, 1, 2}
		}
		for _, eps := range epsilons {
			jobs = append(jobs, job{name: info.Name(), opt: sched.RunOptions{Epsilon: eps}})
		}
	}

	// Serial reference bounds (deterministic: no RNG in any job).
	type bounds struct{ lower, upper float64 }
	want := make(map[string]bounds, len(jobs))
	key := func(j job) string { return fmt.Sprintf("%s/eps%d", j.name, j.opt.Epsilon) }
	for _, j := range jobs {
		s, err := sched.Run(j.name, g, p, cm, j.opt)
		if err != nil {
			t.Fatalf("%s: %v", key(j), err)
		}
		want[key(j)] = bounds{s.LowerBound(), s.UpperBound()}
	}

	const rounds = 8
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(jobs))
	for r := 0; r < rounds; r++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				if _, ok := sched.Lookup(j.name); !ok {
					errs <- fmt.Errorf("%s: lookup failed", j.name)
					return
				}
				s, err := sched.Run(j.name, g, p, cm, j.opt)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", key(j), err)
					return
				}
				if got := (bounds{s.LowerBound(), s.UpperBound()}); got != want[key(j)] {
					errs <- fmt.Errorf("%s: concurrent bounds %+v != serial %+v — pooled state leaked between runs",
						key(j), got, want[key(j)])
				}
			}(j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
