// Package schedulers links every built-in scheduling algorithm into the
// sched registry. Schedulers register themselves from init functions of
// their own packages; a dispatch site that resolves schedulers by name
// (sched.Lookup / sched.Run) imports this package for side effects:
//
//	import _ "ftsched/internal/schedulers"
//
// The package's tests are also where cross-scheduler properties live: the
// registry-equivalence golden tests (every registered scheduler must produce
// byte-identical schedule JSON to its pre-refactor direct entry point on
// fixed seeds), the concurrent-dispatch race test, the per-scheduler
// BenchmarkSchedule series, and the docs/API.md table drift check.
package schedulers

import (
	// Each blank import registers that package's schedulers at init time.
	// The import order fixes the registry's canonical listing order.
	_ "ftsched/internal/core"  // ftsa, mcftsa, ftsa-ins
	_ "ftsched/internal/ftbar" // ftbar
	_ "ftsched/internal/heft"  // heft
)
