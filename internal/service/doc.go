// Package service is the serving layer of ftsched: a long-running,
// concurrent, fault-tolerant scheduling service wrapping the paper's
// heuristics (FTSA, MC-FTSA, FTBAR and the HEFT reference) behind an HTTP
// JSON API.
//
// Where cmd/ftsched schedules one instance per process and the campaign
// engine sweeps parameter grids offline, this package serves sustained
// request traffic:
//
//   - POST /schedule accepts a problem instance (DAG + platform + cost
//     matrix, the same wire shapes daggen writes to disk) plus scheduler
//     parameters, and returns the schedule, its latency bounds, the paper's
//     metrics (replication overhead, communication volume, utilization),
//     an optional reliability estimate and an optional Gantt timeline.
//   - POST /evaluate accepts the same scheduling problem plus a
//     fault-injection batch (trials, scenario generator spec, evaluation
//     seed) and returns the schedule's behavior under sampled failures:
//     success rate with a 95% Wilson interval, latency mean/p50/p99 and a
//     degradation-vs-failure-count histogram, computed by sim.Evaluate with
//     deterministic per-trial seeding — the response is as cacheable as a
//     schedule.
//   - POST /tune accepts a problem instance plus a scoring scenario, a
//     trial budget and a reliability target, derives the candidate grid
//     from the scheduler registry's capability surface, and runs the
//     Pareto auto-tuner (internal/tune): the response is the frontier of
//     (expected latency, success probability) with a recommended
//     operating point — byte-deterministic, so cached like the others
//     under its own fingerprint domain, guarded by -max-candidates.
//   - GET /healthz is a liveness probe.
//   - GET /stats reports cache hit rate, per-endpoint and per-scheduler
//     counters, queue depth and p50/p99 latency.
//
// Three mechanisms make the service production-shaped:
//
//   - A bounded worker pool (Pool): one scheduling goroutine per core by
//     default, with a bounded queue in front. When the queue is full the
//     handler sheds load with 429 instead of letting goroutines and memory
//     grow without bound — backpressure, not collapse.
//   - A sharded LRU response cache (Cache) keyed by a canonical FNV-1a
//     fingerprint of the entire request (DAG structure and volumes, cost
//     matrix, delay matrix, scheduler, ε, matching policy, seed, response
//     options). Scheduling is deterministic given those inputs, so a cache
//     hit returns the exact bytes a fresh run would produce; repeated
//     requests — the common case under heavy traffic — skip scheduling
//     entirely.
//   - A second, instance-keyed cache of static bottom levels bℓ(t). The
//     criticalness priority depends only on (graph, costs, platform), so two
//     cache-miss requests that differ merely in scheduler, ε or seed share
//     the O(V+E) bottom-level computation via core.Options.BottomLevels —
//     the same memoization the campaign engine uses within one cell.
//
// Responses are pure functions of the request: tie-breaking uses either the
// deterministic task-ID order or the request's explicit seed, and the seed
// participates in the fingerprint. That purity is what makes byte-exact
// caching sound.
package service
