package service

import (
	"fmt"
	"sync"
	"testing"
)

func fpFromInt(i int) Fingerprint {
	var fp Fingerprint
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	fp[2] = byte(i >> 16)
	return fp
}

func TestCachePutGet(t *testing.T) {
	c := NewCache(8, 2)
	key := fpFromInt(1)
	if _, ok := c.Get(key); ok {
		t.Fatal("Get on empty cache reported a hit")
	}
	c.Put(key, []byte("hello"))
	v, ok := c.Get(key)
	if !ok || string(v.([]byte)) != "hello" {
		t.Fatalf("Get = %v, %v; want hello, true", v, ok)
	}
	c.Put(key, []byte("world"))
	if v, _ := c.Get(key); string(v.([]byte)) != "world" {
		t.Fatalf("Put did not replace: got %v", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheEviction(t *testing.T) {
	// One shard so eviction order is exact.
	c := NewCache(2, 1)
	c.Put(fpFromInt(1), 1)
	c.Put(fpFromInt(2), 2)
	// Touch 1 so 2 becomes the LRU entry.
	if _, ok := c.Get(fpFromInt(1)); !ok {
		t.Fatal("entry 1 missing before eviction")
	}
	c.Put(fpFromInt(3), 3)
	if _, ok := c.Get(fpFromInt(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := c.Get(fpFromInt(i)); !ok {
			t.Fatalf("entry %d evicted unexpectedly", i)
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fpFromInt(i % 64)
				c.Put(key, fmt.Sprintf("v%d", i%64))
				if v, ok := c.Get(key); ok {
					if v.(string) != fmt.Sprintf("v%d", i%64) {
						t.Errorf("worker %d read %v for key %d", w, v, i%64)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestCacheShardClamping(t *testing.T) {
	// Degenerate configurations must still work.
	for _, cfg := range []struct{ capacity, shards int }{{0, 0}, {1, 1}, {3, 1000}, {100, 7}} {
		c := NewCache(cfg.capacity, cfg.shards)
		c.Put(fpFromInt(1), "x")
		if _, ok := c.Get(fpFromInt(1)); !ok {
			t.Errorf("NewCache(%d,%d): lost the only entry", cfg.capacity, cfg.shards)
		}
	}
}
