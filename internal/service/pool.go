package service

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBusy reports that the worker pool's queue is full. The HTTP layer maps
// it to 429 Too Many Requests — shedding load at the door keeps latency
// bounded for the requests already admitted.
var ErrBusy = errors.New("service: worker pool queue is full")

// ErrClosed reports a submission to a closed pool.
var ErrClosed = errors.New("service: worker pool is closed")

// Pool is a bounded worker pool: a fixed set of scheduling goroutines
// draining a bounded queue. Scheduling is CPU-bound, so more workers than
// cores only adds context switching; the bounded queue in front absorbs
// short bursts and turns sustained overload into ErrBusy instead of
// unbounded goroutine growth.
//
// Admission is lock-free: TrySubmit is the door hot path (every /schedule,
// /evaluate, /tune and /missions request passes through it), so it must not
// serialize concurrent requests on a global mutex. Close coordinates with
// in-flight submitters through the closed flag and the sending counter
// instead.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	workers int
	// closed refuses new submissions once Close has begun.
	closed atomic.Bool
	// sending counts TrySubmit calls that have passed the closed check but
	// not yet finished their channel send. Close waits for it to reach zero
	// after setting closed, so close(jobs) can never race a send: a
	// submitter either decrements before the close (its send completed) or
	// observes closed and never sends.
	sending   atomic.Int64
	closeOnce sync.Once
	// high is the queue-depth high-water mark: the deepest the pending
	// queue has ever been observed at admission. Under load the
	// instantaneous depth is almost always 0 (drained) or the capacity
	// (rejecting), so capacity reports need the high-water mark to see how
	// close a run came to the 429 cliff.
	high atomic.Int64
}

// NewPool starts workers goroutines (0 means GOMAXPROCS) behind a queue
// holding up to queue pending jobs (0 means 2× workers).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{jobs: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It returns ErrBusy when the
// queue is full and ErrClosed after Close.
func (p *Pool) TrySubmit(job func()) error {
	// Publish intent before checking closed: if the check reads false, the
	// increment is already visible to Close's drain loop, so the channel
	// stays open until the send below completes.
	p.sending.Add(1)
	if p.closed.Load() {
		p.sending.Add(-1)
		return ErrClosed
	}
	select {
	case p.jobs <- job:
		p.sending.Add(-1)
		// Record the depth the queue reached on admission with a CAS max.
		// Workers may have drained concurrently, so this can undercount by
		// a job or two, never overcount — the mark is a floor on the worst
		// depth.
		d := int64(len(p.jobs))
		for {
			cur := p.high.Load()
			if d <= cur || p.high.CompareAndSwap(cur, d) {
				break
			}
		}
		return nil
	default:
		p.sending.Add(-1)
		return ErrBusy
	}
}

// QueueDepth returns the number of jobs waiting (not yet picked up by a
// worker).
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueHighWater returns the deepest queue depth ever observed at
// admission — a floor on the worst backlog this pool has seen. Unlike
// QueueDepth it survives draining, which is what makes it useful in
// capacity reports.
func (p *Pool) QueueHighWater() int { return int(p.high.Load()) }

// QueueCapacity returns the queue bound.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting jobs and waits for queued and running jobs to
// finish. It is idempotent, and safe against concurrent TrySubmit calls:
// submissions that lost the race complete their send before the channel
// closes, later ones get ErrClosed.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.closed.Store(true)
		// Drain in-flight submitters. Any TrySubmit that read closed==false
		// incremented sending first, so this loop observes it and spins
		// until its send resolves; every later TrySubmit sees closed==true.
		for p.sending.Load() != 0 {
			runtime.Gosched()
		}
		close(p.jobs)
	})
	p.wg.Wait()
}
