package service

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrBusy reports that the worker pool's queue is full. The HTTP layer maps
// it to 429 Too Many Requests — shedding load at the door keeps latency
// bounded for the requests already admitted.
var ErrBusy = errors.New("service: worker pool queue is full")

// ErrClosed reports a submission to a closed pool.
var ErrClosed = errors.New("service: worker pool is closed")

// Pool is a bounded worker pool: a fixed set of scheduling goroutines
// draining a bounded queue. Scheduling is CPU-bound, so more workers than
// cores only adds context switching; the bounded queue in front absorbs
// short bursts and turns sustained overload into ErrBusy instead of
// unbounded goroutine growth.
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int
	// high is the queue-depth high-water mark: the deepest the pending
	// queue has ever been observed at admission. Under load the
	// instantaneous depth is almost always 0 (drained) or the capacity
	// (rejecting), so capacity reports need the high-water mark to see how
	// close a run came to the 429 cliff.
	high atomic.Int64
}

// NewPool starts workers goroutines (0 means GOMAXPROCS) behind a queue
// holding up to queue pending jobs (0 means 2× workers).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{jobs: make(chan func(), queue), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// TrySubmit enqueues job without blocking. It returns ErrBusy when the
// queue is full and ErrClosed after Close.
func (p *Pool) TrySubmit(job func()) error {
	// The lock serializes submission against Close: sending on a closed
	// channel panics, and a lost race here would crash the server instead of
	// rejecting one request during shutdown.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- job:
		// Record the depth the queue reached on admission. Workers may
		// have drained concurrently, so this can undercount by a job or
		// two, never overcount — the mark is a floor on the worst depth.
		if d := int64(len(p.jobs)); d > p.high.Load() {
			p.high.Store(d)
		}
		return nil
	default:
		return ErrBusy
	}
}

// QueueDepth returns the number of jobs waiting (not yet picked up by a
// worker).
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueHighWater returns the deepest queue depth ever observed at
// admission — a floor on the worst backlog this pool has seen. Unlike
// QueueDepth it survives draining, which is what makes it useful in
// capacity reports.
func (p *Pool) QueueHighWater() int { return int(p.high.Load()) }

// QueueCapacity returns the queue bound.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting jobs and waits for queued and running jobs to
// finish. It is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
