package service

import (
	"bytes"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
)

// flightWaiters reports how many followers are attached to the in-flight
// computation for fp, or -1 when no flight is registered.
func (s *Server) flightWaiters(fp Fingerprint) int32 {
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if f, ok := s.flights[fp]; ok {
		return f.waiters.Load()
	}
	return -1
}

// TestSingleflightCollapsesConcurrentTunes is the singleflight contract: M
// concurrent identical /tune requests cost exactly ONE backend computation,
// and every caller receives byte-identical bytes. The tune stub blocks until
// all M-1 followers are provably attached to the leader's flight, so the
// assertions are exact, not timing-dependent — and the CI race job runs this
// under -race, which audits the flight map and outcome publication.
func TestSingleflightCollapsesConcurrentTunes(t *testing.T) {
	const m = 32
	srv, ts := startServer(t, Config{Workers: 2, Queue: m})

	var calls atomic.Int32
	release := make(chan struct{})
	stub := []byte(`{"stub":"tune"}` + "\n")
	srv.tuneFn = func(*TuneRequest) ([]byte, error) {
		calls.Add(1)
		<-release
		return stub, nil
	}

	req := testTuneRequest(t)
	body := marshalJSON(t, req)
	fp := TuneFingerprint(req)

	type outcome struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan outcome, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postJSON(t, ts.URL+"/tune", body)
			results <- outcome{resp.StatusCode, resp.Header.Get(CacheStatusHeader), data}
		}()
	}

	// Release only once the leader is computing AND the other m-1 requests
	// are all parked on its flight.
	waitFor(t, func() bool { return calls.Load() == 1 })
	waitFor(t, func() bool { return srv.flightWaiters(fp) == m-1 })
	close(release)
	wg.Wait()
	close(results)

	var hits, misses int
	for r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("status %d, want 200", r.status)
		}
		if !bytes.Equal(r.body, stub) {
			t.Fatalf("caller received %q, want the shared stub bytes", r.body)
		}
		switch r.cache {
		case "hit":
			hits++
		case "miss":
			misses++
		default:
			t.Fatalf("cache status %q", r.cache)
		}
	}
	if misses != 1 || hits != m-1 {
		t.Fatalf("headers: %d misses + %d hits, want 1 + %d", misses, hits, m-1)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend computed %d times for %d identical requests, want 1", got, m)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheMisses != 1 || st.CacheHits != m-1 {
		t.Fatalf("stats: misses %d hits %d, want 1 and %d", st.CacheMisses, st.CacheHits, m-1)
	}
	if st.SingleflightShared != m-1 {
		t.Fatalf("singleflight_shared = %d, want %d", st.SingleflightShared, m-1)
	}
	// The per-scheduler table sees the sweep once per request, hit or miss —
	// singleflight must not change attribution.
	var perSched uint64
	for _, n := range st.SchedulerRequests {
		perSched += n
	}
	if wantAttr := uint64(m * len(st.SchedulerRequests)); perSched != wantAttr {
		t.Fatalf("scheduler_requests sums to %d, want %d", perSched, wantAttr)
	}
	if served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors; served != st.Requests {
		t.Fatalf("conservation: %d served of %d requests", served, st.Requests)
	}

	// The flight is retired: a fresh identical request is a plain cache hit.
	resp, data := postJSON(t, ts.URL+"/tune", body)
	if resp.StatusCode != 200 || resp.Header.Get(CacheStatusHeader) != "hit" || !bytes.Equal(data, stub) {
		t.Fatalf("post-flight request: status %d cache %q body %q", resp.StatusCode, resp.Header.Get(CacheStatusHeader), data)
	}
}

// TestSingleflightPropagatesErrors pins the failure side of the contract:
// when the leader's computation fails, every attached follower receives the
// same 500 (nothing is cached), and a later request retries the computation
// instead of being served a poisoned entry.
func TestSingleflightPropagatesErrors(t *testing.T) {
	const m = 8
	srv, ts := startServer(t, Config{Workers: 2, Queue: m})

	var calls atomic.Int32
	release := make(chan struct{})
	srv.tuneFn = func(*TuneRequest) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-release
			return nil, errors.New("transient tuner failure")
		}
		return []byte("{}\n"), nil
	}

	req := testTuneRequest(t)
	body := marshalJSON(t, req)
	fp := TuneFingerprint(req)

	statuses := make(chan int, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/tune", body)
			statuses <- resp.StatusCode
		}()
	}
	waitFor(t, func() bool { return calls.Load() == 1 })
	waitFor(t, func() bool { return srv.flightWaiters(fp) == m-1 })
	close(release)
	wg.Wait()
	close(statuses)

	for status := range statuses {
		if status != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500 shared by leader and followers", status)
		}
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.InternalErrors != m {
		t.Fatalf("internal_errors = %d, want %d", st.InternalErrors, m)
	}
	if st.CacheMisses != 0 || st.CacheHits != 0 || st.CacheEntries != 0 {
		t.Fatalf("a failed flight must cache nothing: hits %d misses %d entries %d",
			st.CacheHits, st.CacheMisses, st.CacheEntries)
	}
	if served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors; served != st.Requests {
		t.Fatalf("conservation: %d served of %d requests", served, st.Requests)
	}

	// The failed flight is retired, not cached: the next request recomputes.
	resp, _ := postJSON(t, ts.URL+"/tune", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after failed flight: status %d, want 200", resp.StatusCode)
	}
	if calls.Load() != 2 {
		t.Fatalf("backend called %d times, want 2 (one failure, one retry)", calls.Load())
	}
}
