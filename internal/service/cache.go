package service

import (
	"container/list"
	"sync"
)

// Cache is a sharded LRU keyed by Fingerprint. Sharding bounds lock
// contention under concurrent traffic: a Get or Put locks one shard, not the
// whole cache, so goroutines hitting different shards never serialize. The
// fingerprint is an FNV digest — uniformly distributed — so its first byte
// is already a good shard selector.
//
// Values are opaque (the service stores serialized response bytes and
// bottom-level slices); callers must treat stored values as immutable, since
// a value handed out by Get is shared with every other hit on the same key.
type Cache struct {
	shards []cacheShard
	mask   uint8
}

type cacheShard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Fingerprint]*list.Element
}

type cacheEntry struct {
	key Fingerprint
	val any
}

// NewCache creates a cache holding up to capacity entries split over
// nShards shards (rounded up to a power of two, clamped to [1, 256]).
// Capacity is divided evenly; each shard evicts independently, which is the
// usual LRU-approximation trade of sharded caches.
func NewCache(capacity, nShards int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	if nShards < 1 {
		nShards = 1
	}
	if nShards > 256 {
		nShards = 256
	}
	pow := 1
	for pow < nShards {
		pow *= 2
	}
	perShard := (capacity + pow - 1) / pow
	c := &Cache{shards: make([]cacheShard, pow), mask: uint8(pow - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			capacity: perShard,
			ll:       list.New(),
			items:    make(map[Fingerprint]*list.Element, perShard),
		}
	}
	return c
}

func (c *Cache) shard(key Fingerprint) *cacheShard {
	return &c.shards[key[0]&c.mask]
}

// Get returns the value stored under key and promotes it to most recently
// used.
func (c *Cache) Get(key Fingerprint) (any, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Put stores val under key, replacing any existing value and evicting the
// least recently used entry of the shard when it is full.
func (c *Cache) Put(key Fingerprint, val any) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
		}
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, val: val})
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}
