package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// ScheduleRequest is the body of POST /schedule. The graph, platform and
// costs fields use the exact wire shapes daggen writes to graph.json,
// platform.json and costs.json, so an on-disk instance can be pasted into a
// request unchanged.
type ScheduleRequest struct {
	// Graph is the weighted task DAG (validated on decode: dense task IDs,
	// non-negative volumes, acyclic).
	Graph *dag.Graph `json:"graph"`
	// Platform is the delay matrix (validated: square, zero diagonal).
	Platform *platform.Platform `json:"platform"`
	// Costs is the task × processor execution-cost matrix.
	Costs *platform.CostModel `json:"costs"`
	// Scheduler selects the heuristic by scheduler-registry name or alias,
	// matched case-insensitively: "ftsa", "mcftsa" (alias "mc-ftsa"),
	// "ftsa-ins", "ftbar" or "heft". Unknown names are rejected with a 400
	// that enumerates the registered schedulers.
	Scheduler string `json:"scheduler"`
	// Epsilon is ε, the number of tolerated fail-stop failures; every task is
	// replicated on ε+1 distinct processors. Must be 0 for schedulers
	// registered as not fault-tolerant ("heft").
	Epsilon int `json:"epsilon"`
	// Policy selects a scheduler-specific placement policy: "greedy"
	// (default) or "bottleneck" for mcftsa, "noinsertion" for heft,
	// "noduplication" for ftbar. Values a scheduler does not register are
	// rejected.
	Policy string `json:"policy,omitempty"`
	// Seed, when non-zero, seeds random priority tie-breaking as in the
	// paper. Zero (the default) breaks ties deterministically by task ID.
	// The seed is part of the cache fingerprint, so equal requests still
	// produce byte-identical responses.
	Seed int64 `json:"seed,omitempty"`
	// Lambda, when positive, is the exponential failure rate of each
	// processor; the response then carries a survival-probability lower
	// bound over the schedule's guaranteed mission time.
	Lambda float64 `json:"lambda,omitempty"`
	// IncludeGantt adds the per-processor replica timeline to the response.
	IncludeGantt bool `json:"include_gantt,omitempty"`
	// IncludeSchedule adds the full schedule (the ftsched -save wire format)
	// to the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// ScheduleResponse is the body of a successful POST /schedule.
type ScheduleResponse struct {
	// Scheduler is the algorithm's display name (e.g. "MC-FTSA").
	Scheduler string `json:"scheduler"`
	Epsilon   int    `json:"epsilon"`
	Tasks     int    `json:"tasks"`
	Procs     int    `json:"procs"`
	// Pattern is the communication pattern, "all" or "matched".
	Pattern string `json:"pattern"`
	// LowerBound is the latency with no failure (equation 2); UpperBound the
	// latency guaranteed under any ε failures (equation 4).
	LowerBound float64 `json:"lower_bound"`
	UpperBound float64 `json:"upper_bound"`
	// Messages counts inter-processor messages.
	Messages int `json:"messages"`
	// Metrics carries the paper's cost measures.
	Metrics ResponseMetrics `json:"metrics"`
	// Reliability is present when the request set a positive lambda.
	Reliability *ResponseReliability `json:"reliability,omitempty"`
	// Schedule is the full schedule in the ftsched -save wire format,
	// present when include_schedule was set.
	Schedule json.RawMessage `json:"schedule,omitempty"`
	// Gantt is the per-processor timeline, present when include_gantt was
	// set.
	Gantt []ProcTimeline `json:"gantt,omitempty"`
}

// ResponseMetrics mirrors sched.Metrics on the wire.
type ResponseMetrics struct {
	TotalWork         float64 `json:"total_work"`
	Replicas          int     `json:"replicas"`
	ReplicationFactor float64 `json:"replication_factor"`
	CommVolume        float64 `json:"comm_volume"`
	Horizon           float64 `json:"horizon"`
	MeanUtilization   float64 `json:"mean_utilization"`
	MinUtilization    float64 `json:"min_utilization"`
	MaxUtilization    float64 `json:"max_utilization"`
}

// ResponseReliability reports the exponential-failure survival bound.
type ResponseReliability struct {
	// Lambda echoes the request's failure rate.
	Lambda float64 `json:"lambda"`
	// Mission is the window the bound covers: the schedule's upper bound.
	Mission float64 `json:"mission"`
	// SurvivalLowerBound is P(at most ε of m processors fail during the
	// mission) — a lower bound on the success probability.
	SurvivalLowerBound float64 `json:"survival_lower_bound"`
}

// ProcTimeline is one processor's row of the Gantt chart.
type ProcTimeline struct {
	Proc  platform.ProcID `json:"proc"`
	Spans []GanttSpan     `json:"spans"`
}

// GanttSpan is one replica's execution window on a processor. Min times
// assume no failure; Max times are the pessimistic (equation 3) window.
type GanttSpan struct {
	Task      dag.TaskID `json:"task"`
	Copy      int        `json:"copy"`
	StartMin  float64    `json:"start_min"`
	FinishMin float64    `json:"finish_min"`
	StartMax  float64    `json:"start_max"`
	FinishMax float64    `json:"finish_max"`
}

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeScheduleRequest reads and validates one request body. Unknown
// top-level fields are rejected so typos ("epsilom") fail loudly instead of
// silently scheduling with defaults. The returned error is safe to echo to
// the client.
func DecodeScheduleRequest(r io.Reader) (*ScheduleRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ScheduleRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	// A second document in the body is a malformed request, not trailing
	// garbage to ignore.
	if dec.More() {
		return nil, fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate cross-checks the decoded request. The individual graph, platform
// and cost-model decoders have already validated their own invariants.
func (req *ScheduleRequest) Validate() error {
	if req.Graph == nil {
		return fmt.Errorf("missing field %q", "graph")
	}
	if req.Platform == nil {
		return fmt.Errorf("missing field %q", "platform")
	}
	if req.Costs == nil {
		return fmt.Errorf("missing field %q", "costs")
	}
	v, m := req.Graph.NumTasks(), req.Platform.NumProcs()
	if req.Costs.NumTasks() != v {
		return fmt.Errorf("costs cover %d tasks, graph has %d", req.Costs.NumTasks(), v)
	}
	if req.Costs.NumProcs() != m {
		return fmt.Errorf("costs cover %d processors, platform has %d", req.Costs.NumProcs(), m)
	}
	if req.Scheduler == "" {
		return fmt.Errorf("missing field %q (registered schedulers: %s)",
			"scheduler", strings.Join(sched.Names(), ", "))
	}
	info, ok := sched.LookupInfo(req.Scheduler)
	if !ok {
		return sched.UnknownSchedulerError(req.Scheduler)
	}
	// Capability checks (fault tolerance, policy surface) are the registry's;
	// the service only adds the instance-dependent constraints.
	if err := info.Check(sched.RunOptions{Epsilon: req.Epsilon, Policy: req.Policy}); err != nil {
		return err
	}
	if req.Epsilon+1 > m {
		return fmt.Errorf("epsilon %d needs %d distinct processors per task, platform has %d",
			req.Epsilon, req.Epsilon+1, m)
	}
	if req.Lambda < 0 {
		return fmt.Errorf("lambda must be >= 0, got %g", req.Lambda)
	}
	return nil
}

// rejectScheduleOnlyFields rejects the request fields only /schedule serves
// (Gantt chart, embedded schedule, reliability bound). Endpoints that embed a
// ScheduleRequest but render none of those sections call this from their
// Validate so every endpoint reports the unsupported field the same way
// instead of silently dropping it.
func (req *ScheduleRequest) rejectScheduleOnlyFields(endpoint string) error {
	if req.IncludeGantt {
		return fmt.Errorf("include_gantt is not supported by %s", endpoint)
	}
	if req.IncludeSchedule {
		return fmt.Errorf("include_schedule is not supported by %s", endpoint)
	}
	if req.Lambda != 0 {
		return fmt.Errorf("lambda is not supported by %s; pick a scenario kind (e.g. %q) instead", endpoint, "exp")
	}
	return nil
}

// canonicalScheduler resolves the request's scheduler (name or alias, any
// case) to its canonical registry name, falling back to plain lower-casing
// for requests that never passed validation.
func (req *ScheduleRequest) canonicalScheduler() string {
	if info, ok := sched.LookupInfo(req.Scheduler); ok {
		return info.Name()
	}
	return strings.ToLower(req.Scheduler)
}

// describe renders the one-line request summary the verbose log prints.
func (req *ScheduleRequest) describe() string {
	return fmt.Sprintf("%s eps=%d tasks=%d procs=%d",
		req.canonicalScheduler(), req.Epsilon, req.Graph.NumTasks(), req.Platform.NumProcs())
}

// canonicalPolicySeed folds fields whose surface spelling doesn't change the
// response, so equivalent requests share one cache entry. The registry
// declares each scheduler's defaults: an omitted policy means the
// scheduler's default ("greedy" for MC-FTSA), and a scheduler that never
// consumes the tie-break RNG (HEFT) hashes a zero seed.
func (req *ScheduleRequest) canonicalPolicySeed() (policy string, seed int64) {
	policy, seed = req.Policy, req.Seed
	if info, ok := sched.LookupInfo(req.Scheduler); ok {
		if policy == "" {
			policy = info.DefaultPolicy
		}
		if info.IgnoresRng {
			seed = 0
		}
	}
	return policy, seed
}

// marshalResponse serializes a response deterministically (compact JSON,
// struct field order), the property the byte-exact response cache relies on.
func marshalResponse(resp *ScheduleResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
