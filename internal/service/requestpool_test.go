package service

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"ftsched/internal/workload"
)

// TestDecodeIntoMatchesDecode pins the pooled decoder to the plain one: the
// same request struct is reused across every body, and each body must be
// accepted or rejected exactly as DecodeScheduleRequest does — in particular,
// a body missing a field must not inherit that field from the previous decode.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	valid, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(map[string]any)) string {
		var b map[string]any
		if err := json.Unmarshal(valid, &b); err != nil {
			t.Fatal(err)
		}
		f(b)
		s, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		return string(s)
	}
	bodies := []string{
		string(valid),
		"{",
		string(valid) + "{}",
		mutate(func(b map[string]any) { b["epsilom"] = 3 }),
		mutate(func(b map[string]any) { delete(b, "graph") }),
		mutate(func(b map[string]any) { b["graph"] = nil }),
		mutate(func(b map[string]any) { delete(b, "platform") }),
		mutate(func(b map[string]any) { b["platform"] = nil }),
		mutate(func(b map[string]any) { delete(b, "costs") }),
		mutate(func(b map[string]any) { delete(b, "scheduler") }),
		mutate(func(b map[string]any) { b["scheduler"] = "slurm" }),
		mutate(func(b map[string]any) { b["epsilon"] = -1 }),
		string(valid), // valid again after a parade of rejects
	}
	req := AcquireScheduleRequest()
	defer ReleaseScheduleRequest(req)
	for i, body := range bodies {
		want, wantErr := DecodeScheduleRequest(strings.NewReader(body))
		gotErr := DecodeScheduleRequestInto(req, strings.NewReader(body))
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("body %d: fresh decode err %v, pooled decode err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("body %d: fresh error %q, pooled error %q", i, wantErr, gotErr)
			}
			continue
		}
		if RequestFingerprint(req) != RequestFingerprint(want) {
			t.Fatalf("body %d: pooled decode changed the request fingerprint", i)
		}
	}
}

// TestReleaseScheduleRequestZeroes guards the pool against state leaks: a
// released and reacquired request must look factory-fresh.
func TestReleaseScheduleRequestZeroes(t *testing.T) {
	req := AcquireScheduleRequest()
	data, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeScheduleRequestInto(req, bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	ReleaseScheduleRequest(req)
	req2 := AcquireScheduleRequest()
	defer ReleaseScheduleRequest(req2)
	if req2.Scheduler != "" || req2.Epsilon != 0 || req2.Policy != "" || req2.Seed != 0 ||
		req2.Lambda != 0 || req2.IncludeGantt || req2.IncludeSchedule {
		t.Fatalf("reacquired request carries scalar state: %+v", req2)
	}
	if req2.Graph == nil || req2.Platform == nil || req2.Costs == nil {
		t.Fatal("reacquired request missing payload storage")
	}
}

// benchBody builds a paper-sized request body once for the decode benchmarks.
func benchBody(b *testing.B) []byte {
	b.Helper()
	inst, err := workload.NewInstance(rand.New(rand.NewSource(5)), workload.DefaultPaperConfig(1.0))
	if err != nil {
		b.Fatal(err)
	}
	req := &ScheduleRequest{
		Graph: inst.Graph, Platform: inst.Platform, Costs: inst.Costs,
		Scheduler: "ftsa", Epsilon: 1,
	}
	data, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkDecodeSchedule contrasts the per-request decode the service ran
// before pooling (fresh allocations per body) with the pooled warm path the
// handlers and the coordinator door use now.
func BenchmarkDecodeSchedule(b *testing.B) {
	body := benchBody(b)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := DecodeScheduleRequest(bytes.NewReader(body)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pooled", func(b *testing.B) {
		req := AcquireScheduleRequest()
		defer ReleaseScheduleRequest(req)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := DecodeScheduleRequestInto(req, bytes.NewReader(body)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
