package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/tune"
)

func testTuneRequest(t *testing.T) *TuneRequest {
	t.Helper()
	g, p, cm := testInstance(t, "diamond")
	return &TuneRequest{
		Graph:    g,
		Platform: p,
		Costs:    cm,
		Scenario: sim.ScenarioSpec{Kind: "uniform", Crashes: 1},
		Trials:   40,
		Target:   0.9,
		EvalSeed: 7,
	}
}

func postTune(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/tune", body)
}

func TestTuneMissThenHit(t *testing.T) {
	_, ts := startServer(t, Config{})
	body := marshalJSON(t, testTuneRequest(t))

	resp1, data1 := postTune(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get(CacheStatusHeader); got != "miss" {
		t.Fatalf("first request cache status %q, want miss", got)
	}
	resp2, data2 := postTune(t, ts.URL, body)
	if got := resp2.Header.Get(CacheStatusHeader); got != "hit" {
		t.Fatalf("second request cache status %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cache hit returned different bytes:\nmiss: %s\nhit:  %s", data1, data2)
	}

	var out TuneResponse
	if err := json.Unmarshal(data1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tasks != 4 || out.Procs != 3 {
		t.Fatalf("response header fields wrong: %+v", out)
	}
	// The grid must be the registry surface on a 3-processor platform: the
	// default ε ladder truncated to realizable entries.
	want := tune.DeriveCandidates(3, nil)
	if len(out.Result.Candidates) != len(want) {
		t.Fatalf("grid has %d candidates, want %d", len(out.Result.Candidates), len(want))
	}
	for i, c := range out.Result.Candidates {
		if c.Candidate != want[i] {
			t.Fatalf("candidate %d = %+v, want %+v", i, c.Candidate, want[i])
		}
	}
	if len(out.Result.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, i := range out.Result.Frontier {
		if !out.Result.Candidates[i].Frontier {
			t.Fatalf("frontier index %d not marked", i)
		}
	}
	// Under one uniform crash every fault-tolerant candidate succeeds
	// always, so the 0.9 target must be met.
	if !out.Result.TargetMet || out.Result.Recommended < 0 {
		t.Fatalf("target not met: %+v", out.Result)
	}
	best := out.Result.Candidates[out.Result.Recommended]
	if best.Full == nil || best.Full.SuccessRate < 0.9 {
		t.Fatalf("recommended candidate misses the target: %+v", best)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.TuneRequests != 2 || st.Requests != 2 {
		t.Fatalf("tune_requests/requests = %d/%d, want 2/2", st.TuneRequests, st.Requests)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	// Every registered scheduler appears in the per-scheduler table, once
	// per well-formed tune request.
	for _, name := range sched.Names() {
		if st.SchedulerRequests[name] != 2 {
			t.Fatalf("scheduler_requests[%s] = %d, want 2", name, st.SchedulerRequests[name])
		}
	}
}

// The /tune response must be bit-identical whether served fresh or from the
// cache, and across servers (the cache key is a pure function of the body).
func TestTuneDeterministicAcrossServers(t *testing.T) {
	body := marshalJSON(t, testTuneRequest(t))
	var want []byte
	for i := 0; i < 2; i++ {
		_, ts := startServer(t, Config{})
		_, data := postTune(t, ts.URL, body)
		if want == nil {
			want = data
		} else if !bytes.Equal(want, data) {
			t.Fatal("two servers produced different /tune bytes for one request")
		}
	}
}

func TestTuneRejections(t *testing.T) {
	_, ts := startServer(t, Config{MaxTrials: 100, MaxCandidates: 8})
	cases := []struct {
		name   string
		mutate func(*TuneRequest)
		status int
		substr string
	}{
		{"no graph", func(r *TuneRequest) { r.Graph = nil }, 400, "graph"},
		{"zero trials", func(r *TuneRequest) { r.Trials = 0 }, 400, "trials"},
		{"neg screen", func(r *TuneRequest) { r.ScreenTrials = -1 }, 400, "screen_trials"},
		{"bad target", func(r *TuneRequest) { r.Target = 2 }, 400, "target"},
		{"bad scenario", func(r *TuneRequest) { r.Scenario = sim.ScenarioSpec{Kind: "nope"} }, 400, "scenario"},
		{"dup epsilon", func(r *TuneRequest) { r.Epsilons = []int{2, 2} }, 400, "duplicate"},
		{"neg epsilon", func(r *TuneRequest) { r.Epsilons = []int{-1} }, 400, "epsilons"},
		{"too many trials", func(r *TuneRequest) { r.Trials = 101 }, 400, "at most 100"},
		// The default grid on 3 processors (14 points) exceeds the 8-candidate cap.
		{"too many candidates", func(r *TuneRequest) {}, 400, "candidates"},
	}
	for _, c := range cases {
		req := testTuneRequest(t)
		c.mutate(req)
		resp, data := postTune(t, ts.URL, marshalJSON(t, req))
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.status, data)
			continue
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", c.name, data)
			continue
		}
		if !strings.Contains(e.Error, c.substr) {
			t.Errorf("%s: error %q does not mention %q", c.name, e.Error, c.substr)
		}
	}

	// A narrowed ladder shrinks the derived grid under the cap: same server,
	// same instance, one realizable ε level → accepted. The oversized entry
	// is skipped (one ladder serves every platform size), matching
	// DeriveCandidates and the ftexp tune campaign.
	req := testTuneRequest(t)
	req.Epsilons = []int{2, 9}
	req.Trials = 20
	if resp, data := postTune(t, ts.URL, marshalJSON(t, req)); resp.StatusCode != http.StatusOK {
		t.Fatalf("narrowed ladder rejected: %d %s", resp.StatusCode, data)
	}
}

// The worst_case knob flows end to end: per-candidate worst cases in the
// response, a distinct cache key, and robust-mode validation at the door.
func TestTuneWorstCase(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := testTuneRequest(t)
	req.WorstCase = &sim.AdversarySpec{Crashes: 1, MaxEvals: 64}
	req.Robust = true
	resp, data := postTune(t, ts.URL, marshalJSON(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("robust tune: %d %s", resp.StatusCode, data)
	}
	var out TuneResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Result.WorstCase != req.WorstCase.String() || !out.Result.Robust {
		t.Fatalf("result does not echo the adversarial setup: %+v", out.Result)
	}
	seen := false
	for _, c := range out.Result.Candidates {
		if c.Full != nil && c.WorstCase == nil {
			t.Fatalf("full-pass candidate %s has no worst case", c.Candidate)
		}
		seen = seen || c.WorstCase != nil
	}
	if !seen {
		t.Fatal("no candidate carries a worst case")
	}

	// Distinct cache keys: plain, adversarial, and robust requests all differ.
	plain := TuneFingerprint(testTuneRequest(t))
	advReq := testTuneRequest(t)
	advReq.WorstCase = &sim.AdversarySpec{Crashes: 1, MaxEvals: 64}
	adv := TuneFingerprint(advReq)
	advReq.Robust = true
	robust := TuneFingerprint(advReq)
	if plain == adv || adv == robust || plain == robust {
		t.Fatalf("fingerprints collide: plain=%x adv=%x robust=%x", plain, adv, robust)
	}

	// Robust without a budget and a broken budget are wire-level 400s.
	for _, c := range []struct {
		name   string
		mutate func(*TuneRequest)
		substr string
	}{
		{"robust alone", func(r *TuneRequest) { r.Robust = true }, "robust requires worst_case"},
		{"neg crashes", func(r *TuneRequest) { r.WorstCase = &sim.AdversarySpec{Crashes: -1} }, "worst_case"},
	} {
		bad := testTuneRequest(t)
		c.mutate(bad)
		resp, data := postTune(t, ts.URL, marshalJSON(t, bad))
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), c.substr) {
			t.Errorf("%s: got %d %s, want 400 mentioning %q", c.name, resp.StatusCode, data, c.substr)
		}
	}
}

func TestEndpointTableCoversMux(t *testing.T) {
	table := EndpointTable()
	for _, path := range []string{"/schedule", "/evaluate", "/tune", "/healthz", "/stats"} {
		if !strings.Contains(table, "`"+path+"`") {
			t.Errorf("EndpointTable misses %s:\n%s", path, table)
		}
	}
	// Every cached POST endpoint's fingerprint domain must appear, so the
	// table documents how the shared cache keyspace is partitioned.
	for _, domain := range []string{"schedule", "evaluate", "tune"} {
		if !strings.Contains(table, "| "+domain+" |") {
			t.Errorf("EndpointTable misses cache domain %q:\n%s", domain, table)
		}
	}
}
