package service

import (
	"encoding/json"
	"strings"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// A request marshaled and decoded again must describe the same problem:
// this pins the service payload as a faithful carrier of the dag/platform
// wire formats.
func TestScheduleRequestRoundTrip(t *testing.T) {
	orig := testRequest(t)
	orig.Scheduler = "mcftsa"
	orig.Policy = "bottleneck"
	orig.Epsilon = 1
	orig.Seed = 42
	orig.Lambda = 0.001
	orig.IncludeGantt = true
	orig.IncludeSchedule = true

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeScheduleRequest(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}

	if got.Graph.NumTasks() != orig.Graph.NumTasks() || got.Graph.NumEdges() != orig.Graph.NumEdges() {
		t.Fatalf("graph shape changed: %d/%d tasks, %d/%d edges",
			got.Graph.NumTasks(), orig.Graph.NumTasks(), got.Graph.NumEdges(), orig.Graph.NumEdges())
	}
	for tsk := 0; tsk < orig.Graph.NumTasks(); tsk++ {
		want := orig.Graph.SortedSuccs(dag.TaskID(tsk))
		have := got.Graph.SortedSuccs(dag.TaskID(tsk))
		if len(want) != len(have) {
			t.Fatalf("task %d: %d succs decoded, want %d", tsk, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("task %d succ %d: %+v != %+v", tsk, i, have[i], want[i])
			}
		}
	}
	m := orig.Platform.NumProcs()
	if got.Platform.NumProcs() != m {
		t.Fatalf("platform size changed: %d, want %d", got.Platform.NumProcs(), m)
	}
	for k := 0; k < m; k++ {
		for h := 0; h < m; h++ {
			if got.Platform.Delay(platform.ProcID(k), platform.ProcID(h)) !=
				orig.Platform.Delay(platform.ProcID(k), platform.ProcID(h)) {
				t.Fatalf("delay (%d,%d) changed", k, h)
			}
		}
	}
	for tsk := 0; tsk < orig.Graph.NumTasks(); tsk++ {
		for k := 0; k < m; k++ {
			if got.Costs.Cost(dag.TaskID(tsk), platform.ProcID(k)) !=
				orig.Costs.Cost(dag.TaskID(tsk), platform.ProcID(k)) {
				t.Fatalf("cost (%d,%d) changed", tsk, k)
			}
		}
	}
	if got.Scheduler != orig.Scheduler || got.Policy != orig.Policy ||
		got.Epsilon != orig.Epsilon || got.Seed != orig.Seed || got.Lambda != orig.Lambda ||
		got.IncludeGantt != orig.IncludeGantt || got.IncludeSchedule != orig.IncludeSchedule {
		t.Fatalf("scalar fields changed: %+v", got)
	}
	// The fingerprint is the strongest equality check: same cache entry.
	if RequestFingerprint(got) != RequestFingerprint(orig) {
		t.Fatal("round-trip changed the request fingerprint")
	}
}

// validBody returns a well-formed request body that tests mutate.
func validBody(t *testing.T) map[string]any {
	t.Helper()
	data, err := json.Marshal(testRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	return body
}

func TestDecodeScheduleRequestRejects(t *testing.T) {
	cases := []struct {
		name    string
		body    func(t *testing.T) string
		wantSub string
	}{
		{"invalid json", func(t *testing.T) string { return "{" }, "decoding request"},
		{"trailing data", func(t *testing.T) string {
			data, _ := json.Marshal(testRequest(t))
			return string(data) + "{}"
		}, "unexpected data"},
		{"unknown field", func(t *testing.T) string {
			b := validBody(t)
			b["epsilom"] = 3
			s, _ := json.Marshal(b)
			return string(s)
		}, "unknown field"},
		{"missing graph", func(t *testing.T) string {
			b := validBody(t)
			delete(b, "graph")
			s, _ := json.Marshal(b)
			return string(s)
		}, `missing field "graph"`},
		{"missing platform", func(t *testing.T) string {
			b := validBody(t)
			delete(b, "platform")
			s, _ := json.Marshal(b)
			return string(s)
		}, `missing field "platform"`},
		{"missing costs", func(t *testing.T) string {
			b := validBody(t)
			delete(b, "costs")
			s, _ := json.Marshal(b)
			return string(s)
		}, `missing field "costs"`},
		{"missing scheduler", func(t *testing.T) string {
			b := validBody(t)
			delete(b, "scheduler")
			s, _ := json.Marshal(b)
			return string(s)
		}, `missing field "scheduler"`},
		{"unknown scheduler", func(t *testing.T) string {
			b := validBody(t)
			b["scheduler"] = "slurm"
			s, _ := json.Marshal(b)
			return string(s)
		}, "unknown scheduler"},
		{"negative epsilon", func(t *testing.T) string {
			b := validBody(t)
			b["epsilon"] = -1
			s, _ := json.Marshal(b)
			return string(s)
		}, "epsilon must be >= 0"},
		{"epsilon too large", func(t *testing.T) string {
			b := validBody(t)
			b["epsilon"] = 5 // platform has 3 processors
			s, _ := json.Marshal(b)
			return string(s)
		}, "distinct processors"},
		{"heft with replication", func(t *testing.T) string {
			b := validBody(t)
			b["scheduler"] = "heft"
			b["epsilon"] = 1
			s, _ := json.Marshal(b)
			return string(s)
		}, "epsilon must be 0"},
		{"policy on a policy-free scheduler", func(t *testing.T) string {
			b := validBody(t)
			b["policy"] = "greedy"
			s, _ := json.Marshal(b)
			return string(s)
		}, "accepts no policy"},
		{"unknown policy", func(t *testing.T) string {
			b := validBody(t)
			b["scheduler"] = "mcftsa"
			b["policy"] = "fastest"
			s, _ := json.Marshal(b)
			return string(s)
		}, "unknown policy"},
		{"negative lambda", func(t *testing.T) string {
			b := validBody(t)
			b["lambda"] = -0.5
			s, _ := json.Marshal(b)
			return string(s)
		}, "lambda must be >= 0"},
		{"cost dimension mismatch", func(t *testing.T) string {
			b := validBody(t)
			b["costs"] = map[string]any{"cost": [][]float64{{1, 1, 1}}}
			s, _ := json.Marshal(b)
			return string(s)
		}, "costs cover"},
		{"cyclic graph", func(t *testing.T) string {
			b := validBody(t)
			b["graph"] = map[string]any{
				"name": "cycle", "tasks": 2,
				"edges": []map[string]any{
					{"src": 0, "dst": 1, "volume": 1},
					{"src": 1, "dst": 0, "volume": 1},
				},
			}
			s, _ := json.Marshal(b)
			return string(s)
		}, "cycle"},
		{"negative task count", func(t *testing.T) string {
			b := validBody(t)
			b["graph"] = map[string]any{"name": "bad", "tasks": -3, "edges": []any{}}
			s, _ := json.Marshal(b)
			return string(s)
		}, "negative task count"},
		{"bad delay matrix", func(t *testing.T) string {
			b := validBody(t)
			b["platform"] = map[string]any{"procs": 2, "delay": [][]float64{{0, 1}, {1, 5}}}
			s, _ := json.Marshal(b)
			return string(s)
		}, "diagonal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeScheduleRequest(strings.NewReader(c.body(t)))
			if err == nil {
				t.Fatal("decode accepted a malformed request")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
