package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"ftsched/internal/sim"
)

// /evaluate's worst_case mode: the adversarial column rides next to the
// Monte-Carlo mean, deterministically.
func TestEvaluateWorstCase(t *testing.T) {
	_, ts1 := startServer(t, Config{})
	_, ts2 := startServer(t, Config{})
	req := testEvaluateRequest(t)
	req.WorstCase = &sim.AdversarySpec{Crashes: 1}
	body := marshalJSON(t, req)

	resp, data1 := postEvaluate(t, ts1.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data1)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(data1, &out); err != nil {
		t.Fatal(err)
	}
	if out.WorstCase == nil {
		t.Fatalf("response has no worst_case section: %s", data1)
	}
	// ε=1 guarantees any single crash: the adversary must not find a miss,
	// and C(3,1)=3 subsets fit the default budget, so the crash-at-zero
	// space is covered exhaustively.
	if out.WorstCase.Missed || !out.WorstCase.Exhaustive {
		t.Fatalf("worst case %+v, want a survived, exhaustive search", out.WorstCase)
	}
	if out.WorstCase.Spec != req.WorstCase.String() {
		t.Fatalf("spec echoed as %q, want %q", out.WorstCase.Spec, req.WorstCase.String())
	}
	// The worst case bounds the Monte-Carlo draws of the same shape from
	// above (uniform:1 here — same crash count, crash-at-zero support).
	if out.Eval.Latency.Max > out.WorstCase.Latency+1e-9 {
		t.Fatalf("Monte-Carlo max %g beats the adversarial worst %g",
			out.Eval.Latency.Max, out.WorstCase.Latency)
	}

	_, data2 := postEvaluate(t, ts2.URL, body)
	if !bytes.Equal(data1, data2) {
		t.Fatalf("two fresh servers disagree on worst_case:\n%s\nvs\n%s", data1, data2)
	}

	// Without the field the response must not carry the section (and the
	// bytes must match the legacy shape).
	plain := testEvaluateRequest(t)
	_, dataPlain := postEvaluate(t, ts1.URL, marshalJSON(t, plain))
	if bytes.Contains(dataPlain, []byte("worst_case")) {
		t.Fatalf("legacy request grew a worst_case section: %s", dataPlain)
	}
}

func TestEvaluateWorstCaseRejects(t *testing.T) {
	_, ts := startServer(t, Config{})
	cases := map[string]func(*EvaluateRequest){
		"with policies": func(r *EvaluateRequest) {
			r.Policies = []string{"static"}
			r.WorstCase = &sim.AdversarySpec{Crashes: 1}
		},
		"negative crashes": func(r *EvaluateRequest) {
			r.WorstCase = &sim.AdversarySpec{Crashes: -1}
		},
		"over-cap budget": func(r *EvaluateRequest) {
			r.WorstCase = &sim.AdversarySpec{Crashes: 1, MaxEvals: 1 << 21}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			req := testEvaluateRequest(t)
			mutate(req)
			resp, data := postEvaluate(t, ts.URL, marshalJSON(t, req))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
			}
		})
	}
}

// An omitted knob and its explicit default are one cache entry; any
// substantive knob change is a different one.
func TestEvaluateWorstCaseFingerprint(t *testing.T) {
	plain := testEvaluateRequest(t)
	withWC := testEvaluateRequest(t)
	withWC.WorstCase = &sim.AdversarySpec{Crashes: 2}
	if EvaluateFingerprint(plain) == EvaluateFingerprint(withWC) {
		t.Fatal("worst_case does not contribute to the fingerprint")
	}
	explicit := testEvaluateRequest(t)
	explicit.WorstCase = &sim.AdversarySpec{Crashes: 2, GroupSize: 1, TimeGrid: 8, MaxEvals: 4096}
	if EvaluateFingerprint(withWC) != EvaluateFingerprint(explicit) {
		t.Fatal("explicit defaults fingerprint differently from omitted knobs")
	}
	budget := testEvaluateRequest(t)
	budget.WorstCase = &sim.AdversarySpec{Crashes: 2, MaxEvals: 99}
	if EvaluateFingerprint(withWC) == EvaluateFingerprint(budget) {
		t.Fatal("budget change did not change the fingerprint")
	}
}
