package service

import (
	"fmt"
	"strings"
)

// endpoint describes one row of the HTTP surface for the generated
// documentation table. The slice below is the single source of truth the
// docs drift test compares docs/API.md against — adding a route without
// extending it (and regenerating the table) fails the build.
type endpoint struct {
	method, path string
	// domain is the response-cache fingerprint domain, or "—" for uncached
	// endpoints.
	domain      string
	description string
}

// endpoints lists the served routes in documentation order. Keep it in sync
// with the mux registrations in New.
var endpoints = []endpoint{
	{"POST", "/schedule", "schedule",
		"schedule an instance; returns latency bounds, metrics, optional reliability bound / Gantt / full schedule"},
	{"POST", "/schedule/batch", "schedule",
		"schedule one instance under many parameter sets; decoded once, distinct misses computed in one worker job, items cached individually"},
	{"POST", "/evaluate", "evaluate",
		"schedule + Monte-Carlo failure injection; returns success rate (Wilson interval), latency p50/p99, degradation histogram"},
	{"POST", "/tune", "tune",
		"search the registry × ε × policy grid; returns the (latency, success) Pareto frontier and a recommended point for a reliability target"},
	{"POST", "/missions", "mission",
		"create an online mission (async, 202 + id): execute the schedule against one failure scenario, re-planning the surviving suffix per policy"},
	{"GET", "/missions/{id}", "—", "poll mission state; once finished, the byte-deterministic final report"},
	{"GET", "/missions/{id}/events", "—", "stream the mission's ordered event log as chunked JSONL (plan/replan, task, crash, complete/abort)"},
	{"GET", "/scenarios", "—",
		"scenario-kind discovery: every registered failure-scenario kind with its flag form, parameters and docs"},
	{"GET", "/healthz", "—", "liveness probe"},
	{"GET", "/stats", "—", "cache hit rate, per-endpoint and per-scheduler counters, queue depth, latency quantiles"},
}

// EndpointTable renders the HTTP surface as a GitHub-flavored markdown
// table. docs/API.md embeds it between generated-table markers, and a drift
// test asserts the embedded copy matches, so the documented endpoint list
// cannot go stale.
func EndpointTable() string {
	var b strings.Builder
	b.WriteString("| Method | Path | Cache domain | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, e := range endpoints {
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n", e.method, e.path, e.domain, e.description)
	}
	return b.String()
}
