package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/mission"
	"ftsched/internal/sim"
)

// EvaluateRequest is the body of POST /evaluate: a full scheduling request
// plus the fault-injection batch to run against the resulting schedule. The
// response is a pure function of the request (per-trial seeds derive from
// eval_seed), so it is fingerprint-cached exactly like /schedule.
type EvaluateRequest struct {
	ScheduleRequest
	// Trials is the number of failure scenarios to sample (bounded by the
	// server's -max-trials).
	Trials int `json:"trials"`
	// Scenario selects the failure-scenario generator, e.g.
	// {"kind": "uniform", "crashes": 2} or {"kind": "weibull", "shape": 1.5,
	// "scale": 2000}. See sim.ScenarioSpec for every kind.
	Scenario sim.ScenarioSpec `json:"scenario"`
	// EvalSeed is the base seed of the per-trial scenario draws; equal
	// seeds reproduce the evaluation bit for bit at any worker count.
	EvalSeed int64 `json:"eval_seed,omitempty"`
	// Policies, when non-empty, additionally scores each listed mission
	// policy ("static", "reschedule") on the same scenario draws, so the
	// response reports offline-vs-online success and latency side by side.
	// "static" reproduces Eval exactly (a static mission is a replay);
	// "reschedule" re-plans the surviving suffix after every crash.
	Policies []string `json:"policies,omitempty"`
	// WorstCase, when present, additionally runs a budgeted adversarial
	// search over crash patterns and reports the most damaging one found —
	// a deterministic worst-case column next to Eval's Monte-Carlo mean.
	// See sim.AdversarySpec for the budget knobs.
	WorstCase *sim.AdversarySpec `json:"worst_case,omitempty"`
}

// PolicyEvalResult is one mission policy's score inside an /evaluate
// response.
type PolicyEvalResult struct {
	Policy string         `json:"policy"`
	Eval   sim.EvalResult `json:"eval"`
}

// EvaluateResponse is the body of a successful POST /evaluate.
type EvaluateResponse struct {
	// Scheduler is the algorithm's display name (e.g. "MC-FTSA").
	Scheduler string `json:"scheduler"`
	Epsilon   int    `json:"epsilon"`
	Tasks     int    `json:"tasks"`
	Procs     int    `json:"procs"`
	// Pattern is the communication pattern, "all" or "matched".
	Pattern string `json:"pattern"`
	// LowerBound and UpperBound are the schedule's latency bounds
	// (equations 2 and 4) — the frame the simulated latencies live in.
	LowerBound float64 `json:"lower_bound"`
	UpperBound float64 `json:"upper_bound"`
	// Scenario is the canonical spec string of the generator that ran.
	Scenario string `json:"scenario"`
	// Eval is the aggregated fault-injection result: success rate with its
	// Wilson interval, latency summary, degradation histogram.
	Eval sim.EvalResult `json:"eval"`
	// PolicyEval, present when the request listed policies, scores each
	// mission policy on the same scenario draws as Eval, in request order.
	PolicyEval []PolicyEvalResult `json:"policy_eval,omitempty"`
	// WorstCase, present when the request asked for it, is the adversarial
	// search's result: the most damaging crash pattern found within budget.
	WorstCase *sim.WorstCaseResult `json:"worst_case,omitempty"`
}

// DecodeEvaluateRequest reads and validates one /evaluate request body, with
// the same strictness as DecodeScheduleRequest (unknown fields rejected, one
// JSON document only).
func DecodeEvaluateRequest(r io.Reader) (*EvaluateRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req EvaluateRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate cross-checks the decoded request: the scheduling part first, then
// the evaluation batch.
func (req *EvaluateRequest) Validate() error {
	if err := req.ScheduleRequest.Validate(); err != nil {
		return err
	}
	if err := req.rejectScheduleOnlyFields("/evaluate"); err != nil {
		return err
	}
	if req.Trials < 1 {
		return fmt.Errorf("need trials >= 1, got %d", req.Trials)
	}
	gen, err := req.Scenario.Generator()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := gen.Check(req.Platform.NumProcs()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	seen := make(map[string]bool, len(req.Policies))
	for _, p := range req.Policies {
		if p != string(mission.PolicyStatic) && p != string(mission.PolicyReschedule) {
			return fmt.Errorf("policies: unknown policy %q (want %q or %q)",
				p, mission.PolicyStatic, mission.PolicyReschedule)
		}
		if seen[p] {
			return fmt.Errorf("policies: %q listed twice", p)
		}
		seen[p] = true
	}
	if req.WorstCase != nil {
		// The adversarial search replays the static schedule; combining it
		// with mission-policy scoring would silently report a worst case the
		// policies never face, so the combination is rejected outright.
		if len(req.Policies) > 0 {
			return fmt.Errorf("worst_case cannot be combined with policies")
		}
		if err := req.WorstCase.Validate(); err != nil {
			return fmt.Errorf("worst_case: %w", err)
		}
	}
	return nil
}

// EvaluateFingerprint digests everything an /evaluate response depends on:
// the instance, the canonicalized scheduling parameters (policy defaults and
// ignored seeds folded exactly like RequestFingerprint) and the evaluation
// batch. The "evaluate" domain tag keeps the keyspace disjoint from
// /schedule, so the two endpoints share one response cache safely.
func EvaluateFingerprint(req *EvaluateRequest) Fingerprint {
	f := newFingerprinter()
	f.instance(req.Graph, req.Platform, req.Costs)
	f.str("evaluate")
	f.str(req.canonicalScheduler())
	f.i64(int64(req.Epsilon))
	policy, seed := req.canonicalPolicySeed()
	f.str(policy)
	f.i64(seed)
	f.i64(int64(req.Trials))
	f.str(req.Scenario.String())
	f.i64(req.EvalSeed)
	// Only a non-empty policy list contributes, so every pre-existing
	// /evaluate request keeps its fingerprint (cache keys are stable across
	// releases).
	if len(req.Policies) > 0 {
		f.str("policies")
		f.i64(int64(len(req.Policies)))
		for _, p := range req.Policies {
			f.str(p)
		}
	}
	// Same pattern for the adversarial search: only a present worst_case
	// contributes, and its String() is the normalized form, so an omitted
	// knob and its explicit default share one cache entry.
	if req.WorstCase != nil {
		f.str("worst_case")
		f.str(req.WorstCase.String())
	}
	return f.sum()
}

// marshalEvaluateResponse serializes a response deterministically (compact
// JSON, struct field order) — the property the byte-exact cache relies on.
func marshalEvaluateResponse(resp *EvaluateResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
