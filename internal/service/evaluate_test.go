package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ftsched/internal/sim"
)

func testEvaluateRequest(t *testing.T) *EvaluateRequest {
	t.Helper()
	return &EvaluateRequest{
		ScheduleRequest: *testRequest(t),
		Trials:          50,
		Scenario:        sim.ScenarioSpec{Kind: "uniform", Crashes: 1},
		EvalSeed:        7,
	}
}

func marshalJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func postEvaluate(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/evaluate", body)
}

func TestEvaluateMissThenHit(t *testing.T) {
	_, ts := startServer(t, Config{})
	body := marshalJSON(t, testEvaluateRequest(t))

	resp1, data1 := postEvaluate(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get(CacheStatusHeader); got != "miss" {
		t.Fatalf("first request cache status %q, want miss", got)
	}
	resp2, data2 := postEvaluate(t, ts.URL, body)
	if got := resp2.Header.Get(CacheStatusHeader); got != "hit" {
		t.Fatalf("second request cache status %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cache hit returned different bytes:\nmiss: %s\nhit:  %s", data1, data2)
	}

	var out EvaluateResponse
	if err := json.Unmarshal(data1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Scheduler != "FTSA" || out.Epsilon != 1 || out.Tasks != 4 || out.Procs != 3 {
		t.Fatalf("response header fields wrong: %+v", out)
	}
	if out.Scenario != "uniform:1" {
		t.Fatalf("scenario echoed as %q, want uniform:1", out.Scenario)
	}
	// One uniform crash is within the ε=1 guarantee: every trial succeeds.
	if out.Eval.Trials != 50 || out.Eval.SuccessRate != 1 {
		t.Fatalf("eval section %+v, want 50 all-success trials", out.Eval)
	}
	if out.Eval.Latency.Mean < out.LowerBound-1e-9 || out.Eval.Latency.Max > out.UpperBound+1e-9 {
		t.Fatalf("latencies [%g,%g] escape the bounds [%g,%g]",
			out.Eval.Latency.Mean, out.Eval.Latency.Max, out.LowerBound, out.UpperBound)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 2 || st.EvaluateRequests != 2 {
		t.Fatalf("requests/evaluate_requests = %d/%d, want 2/2", st.Requests, st.EvaluateRequests)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.SchedulerRequests["ftsa"] != 2 {
		t.Fatalf("scheduler_requests = %v, want ftsa:2", st.SchedulerRequests)
	}
}

// The evaluation must be reproducible across servers (no hidden process
// state) and across the /schedule response for the same request parameters.
func TestEvaluateDeterministicAcrossServers(t *testing.T) {
	_, ts1 := startServer(t, Config{})
	_, ts2 := startServer(t, Config{})
	body := marshalJSON(t, testEvaluateRequest(t))
	_, data1 := postEvaluate(t, ts1.URL, body)
	_, data2 := postEvaluate(t, ts2.URL, body)
	if !bytes.Equal(data1, data2) {
		t.Fatalf("two fresh servers disagree:\n%s\nvs\n%s", data1, data2)
	}
}

// Different scenarios, trials or eval seeds must not share cache entries.
func TestEvaluateFingerprintSensitivity(t *testing.T) {
	base := EvaluateFingerprint(testEvaluateRequest(t))
	mutations := map[string]func(*EvaluateRequest){
		"trials":    func(r *EvaluateRequest) { r.Trials = 51 },
		"eval_seed": func(r *EvaluateRequest) { r.EvalSeed = 8 },
		"scenario kind": func(r *EvaluateRequest) {
			r.Scenario = sim.ScenarioSpec{Kind: "exp", Lambda: 0.001}
		},
		"scenario param": func(r *EvaluateRequest) { r.Scenario.Crashes = 2 },
		"epsilon":        func(r *EvaluateRequest) { r.Epsilon = 2 },
		"scheduler":      func(r *EvaluateRequest) { r.Scheduler = "ftbar" },
		"sched seed":     func(r *EvaluateRequest) { r.Seed = 3 },
	}
	for name, mutate := range mutations {
		req := testEvaluateRequest(t)
		mutate(req)
		if EvaluateFingerprint(req) == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
	// The /schedule and /evaluate keyspaces are disjoint: the same
	// scheduling parameters never collide across endpoints.
	req := testEvaluateRequest(t)
	if EvaluateFingerprint(req) == RequestFingerprint(&req.ScheduleRequest) {
		t.Error("evaluate fingerprint collides with the schedule fingerprint")
	}
}

func TestEvaluateRejects(t *testing.T) {
	_, ts := startServer(t, Config{MaxTrials: 100})
	cases := map[string]func(*EvaluateRequest){
		"zero trials":      func(r *EvaluateRequest) { r.Trials = 0 },
		"too many trials":  func(r *EvaluateRequest) { r.Trials = 101 },
		"no scenario":      func(r *EvaluateRequest) { r.Scenario = sim.ScenarioSpec{} },
		"bad kind":         func(r *EvaluateRequest) { r.Scenario.Kind = "meteor" },
		"too many crashes": func(r *EvaluateRequest) { r.Scenario.Crashes = 99 },
		"include_gantt":    func(r *EvaluateRequest) { r.IncludeGantt = true },
		"include_schedule": func(r *EvaluateRequest) { r.IncludeSchedule = true },
		"lambda":           func(r *EvaluateRequest) { r.Lambda = 0.1 },
		"unknown sched":    func(r *EvaluateRequest) { r.Scheduler = "slurm" },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			req := testEvaluateRequest(t)
			mutate(req)
			resp, data := postEvaluate(t, ts.URL, marshalJSON(t, req))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("unhelpful 400 body: %s", data)
			}
		})
	}
	// Unknown top-level fields fail loudly, like /schedule.
	resp, _ := postEvaluate(t, ts.URL, []byte(`{"trails": 10}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typo field: status %d, want 400", resp.StatusCode)
	}
}

// Every scenario kind must serve end to end.
func TestEvaluateAllScenarioKinds(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, spec := range []sim.ScenarioSpec{
		{Kind: "uniform", Crashes: 1},
		{Kind: "exp", Lambda: 0.05},
		{Kind: "weibull", Shape: 1.5, Scale: 20},
		{Kind: "group", GroupSize: 2, Lambda: 0.05},
		{Kind: "burst", Crashes: 2, Lambda: 0.05, Spread: 3},
		{Kind: "staggered", Crashes: 1, Horizon: 10},
	} {
		t.Run(spec.Kind, func(t *testing.T) {
			req := testEvaluateRequest(t)
			req.Scenario = spec
			resp, data := postEvaluate(t, ts.URL, marshalJSON(t, req))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var out EvaluateResponse
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			if out.Eval.Trials != req.Trials {
				t.Fatalf("eval ran %d trials, want %d", out.Eval.Trials, req.Trials)
			}
			if out.Eval.Generator != spec.String() {
				t.Fatalf("generator %q, want %q", out.Eval.Generator, spec.String())
			}
			if out.Eval.SuccessRate < out.Eval.SuccessLow-1e-12 || out.Eval.SuccessRate > out.Eval.SuccessHigh+1e-12 {
				t.Fatalf("success rate %g outside its Wilson interval [%g,%g]",
					out.Eval.SuccessRate, out.Eval.SuccessLow, out.Eval.SuccessHigh)
			}
		})
	}
}

// /evaluate agrees with calling the engine directly on the same schedule:
// the service layer adds caching, not semantics.
func TestEvaluateMatchesDirectEngine(t *testing.T) {
	srv, ts := startServer(t, Config{})
	req := testEvaluateRequest(t)
	resp, data := postEvaluate(t, ts.URL, marshalJSON(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	schedule, err := srv.solve(&req.ScheduleRequest)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := req.Scenario.Generator()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Evaluate(schedule, gen, req.Trials, sim.EvalOptions{Seed: req.EvalSeed})
	if err != nil {
		t.Fatal(err)
	}
	got, wantBlob := marshalJSON(t, out.Eval), marshalJSON(t, *want)
	if !bytes.Equal(got, wantBlob) {
		t.Fatalf("served eval differs from direct engine:\n%s\nvs\n%s", got, wantBlob)
	}
}

func TestEvaluateMethodNotAllowed(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/evaluate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /evaluate = %d, want 405", resp.StatusCode)
	}
}

// The request round-trips the wire intact, fingerprint included.
func TestEvaluateRequestRoundTrip(t *testing.T) {
	orig := testEvaluateRequest(t)
	orig.Scenario = sim.ScenarioSpec{Kind: "burst", Crashes: 2, Lambda: 0.01, Spread: 4}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvaluateRequest(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if got.Trials != orig.Trials || got.EvalSeed != orig.EvalSeed || got.Scenario != orig.Scenario {
		t.Fatalf("evaluation fields changed: %+v", got)
	}
	if EvaluateFingerprint(got) != EvaluateFingerprint(orig) {
		t.Fatal("round-trip changed the request fingerprint")
	}
}
