package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// testBatchRequest builds a well-formed batch over the diamond instance:
// four parameter sets of which two are identical, covering two schedulers
// and a reliability-bound item.
func testBatchRequest(t *testing.T) *BatchRequest {
	t.Helper()
	g, p, cm := testInstance(t, "diamond")
	return &BatchRequest{
		Graph:    g,
		Platform: p,
		Costs:    cm,
		Requests: []BatchItem{
			{Scheduler: "ftsa", Epsilon: 1},
			{Scheduler: "mcftsa", Epsilon: 1, Seed: 3},
			{Scheduler: "ftsa", Epsilon: 1}, // duplicate of item 0
			{Scheduler: "ftsa", Epsilon: 2, Lambda: 0.01},
		},
	}
}

func postBatch(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	return postJSON(t, url+"/schedule/batch", body)
}

// TestBatchMatchesIndividualResponses is the batch contract: every item's
// embedded response carries exactly the bytes a standalone /schedule for the
// same parameters returns (modulo the newline JSON re-compaction strips),
// duplicates within the batch are served from one computation, and the
// cache the batch populates is the same cache /schedule reads.
func TestBatchMatchesIndividualResponses(t *testing.T) {
	srv, ts := startServer(t, Config{})
	req := testBatchRequest(t)

	resp, data := postBatch(t, ts.URL, marshalJSON(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get(CacheStatusHeader); got != "miss" {
		t.Fatalf("first batch cache status %q, want miss", got)
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 4 || len(out.Items) != 4 {
		t.Fatalf("count=%d items=%d, want 4/4", out.Count, len(out.Items))
	}
	// 3 distinct parameter sets: the duplicate is a hit that shared its
	// twin's computation.
	if out.CacheMisses != 3 || out.CacheHits != 1 {
		t.Fatalf("batch misses=%d hits=%d, want 3/1", out.CacheMisses, out.CacheHits)
	}
	wantStatus := []string{"miss", "miss", "hit", "miss"}
	for i, item := range out.Items {
		if item.Cache != wantStatus[i] {
			t.Fatalf("item %d cache=%q, want %q", i, item.Cache, wantStatus[i])
		}
	}
	if !bytes.Equal(out.Items[0].Response, out.Items[2].Response) {
		t.Fatal("duplicate items received different bytes")
	}

	// Each embedded response must match the standalone endpoint byte for
	// byte (standalone bodies end in the newline the encoder strips when it
	// re-compacts the RawMessage).
	for i, it := range req.Requests {
		full := &ScheduleRequest{
			Graph: req.Graph, Platform: req.Platform, Costs: req.Costs,
			Scheduler: it.Scheduler, Epsilon: it.Epsilon, Policy: it.Policy,
			Seed: it.Seed, Lambda: it.Lambda,
			IncludeGantt: it.IncludeGantt, IncludeSchedule: it.IncludeSchedule,
		}
		resp, single := postSchedule(t, ts.URL, marshalRequest(t, full))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("standalone item %d: %d %s", i, resp.StatusCode, single)
		}
		// The batch already cached every item.
		if got := resp.Header.Get(CacheStatusHeader); got != "hit" {
			t.Fatalf("standalone item %d after batch: cache %q, want hit", i, got)
		}
		if want := bytes.TrimSuffix(single, []byte("\n")); !bytes.Equal(out.Items[i].Response, want) {
			t.Fatalf("item %d bytes differ from standalone /schedule:\nbatch:      %s\nstandalone: %s",
				i, out.Items[i].Response, want)
		}
	}

	// One instance → one bottom-level memo entry shared by the whole batch.
	if n := srv.blCache.Len(); n != 1 {
		t.Fatalf("bottom-level memo holds %d entries after the batch, want 1", n)
	}

	// A repeated batch is all hits and byte-identical except the summary
	// counters, which are part of the contract: re-marshal with hit counts.
	resp2, data2 := postBatch(t, ts.URL, marshalJSON(t, req))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second batch: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(CacheStatusHeader); got != "hit" {
		t.Fatalf("all-hit batch cache status %q, want hit", got)
	}
	var out2 BatchResponse
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out2.CacheHits != 4 || out2.CacheMisses != 0 {
		t.Fatalf("second batch hits=%d misses=%d, want 4/0", out2.CacheHits, out2.CacheMisses)
	}
	for i := range out.Items {
		if !bytes.Equal(out.Items[i].Response, out2.Items[i].Response) {
			t.Fatalf("item %d bytes changed between batches", i)
		}
	}

	// Counter discipline across both batches plus the 4 standalone requests:
	// 12 logical requests, conservation exact.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.BatchRequests != 2 || st.BatchItems != 8 {
		t.Fatalf("batch_requests=%d batch_items=%d, want 2/8", st.BatchRequests, st.BatchItems)
	}
	if st.Requests != 12 {
		t.Fatalf("requests = %d, want 12 (2×4 batched + 4 standalone)", st.Requests)
	}
	if st.CacheMisses != 3 || st.CacheHits != 9 {
		t.Fatalf("hits=%d misses=%d, want 9/3", st.CacheHits, st.CacheMisses)
	}
	if st.SingleflightShared != 1 {
		t.Fatalf("singleflight_shared = %d, want 1 (the in-batch duplicate)", st.SingleflightShared)
	}
	if served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors; served != st.Requests {
		t.Fatalf("conservation: %d served of %d requests", served, st.Requests)
	}
}

// TestBatchValidation pins the failure envelope: every malformed shape 400s
// as ONE request with a useful error, and the conservation invariant holds
// afterwards.
func TestBatchValidation(t *testing.T) {
	g, p, cm := testInstance(t, "diamond")
	ok := BatchItem{Scheduler: "ftsa", Epsilon: 1}
	cases := []struct {
		name string
		body []byte
		want string
	}{
		{"malformed JSON", []byte(`{"graph": nope`), "decoding request"},
		{"unknown field", marshalJSON(t, map[string]any{
			"graph": g, "platform": p, "costs": cm, "requets": []BatchItem{ok}}), "requets"},
		{"no requests", marshalJSON(t, map[string]any{
			"graph": g, "platform": p, "costs": cm}), "no requests"},
		{"missing instance", marshalJSON(t, map[string]any{
			"requests": []BatchItem{ok}}), "graph"},
		{"invalid item", marshalJSON(t, map[string]any{
			"graph": g, "platform": p, "costs": cm,
			"requests": []BatchItem{ok, {Scheduler: "nope", Epsilon: 1}}}), "requests[1]"},
	}
	_, ts := startServer(t, Config{MaxBatchItems: 4})
	sent := 0
	for _, tc := range cases {
		resp, data := postBatch(t, ts.URL, tc.body)
		sent++
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, data)
		}
		var e ErrorResponse
		if err := json.Unmarshal(data, &e); err != nil || !bytes.Contains([]byte(e.Error), []byte(tc.want)) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.want)
		}
	}

	// Over the item limit: also one 400.
	over := map[string]any{"graph": g, "platform": p, "costs": cm,
		"requests": []BatchItem{ok, ok, ok, ok, ok}}
	resp, data := postBatch(t, ts.URL, marshalJSON(t, over))
	sent++
	if resp.StatusCode != http.StatusBadRequest || !bytes.Contains(data, []byte("at most 4")) {
		t.Fatalf("over-limit batch: status %d body %s, want 400 naming the limit", resp.StatusCode, data)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != uint64(sent) || st.ClientErrors != uint64(sent) {
		t.Fatalf("requests=%d client_errors=%d, want %d each (one per rejected envelope)",
			st.Requests, st.ClientErrors, sent)
	}
	if st.BatchRequests != uint64(sent) || st.BatchItems != 0 {
		t.Fatalf("batch_requests=%d batch_items=%d, want %d/0", st.BatchRequests, st.BatchItems, sent)
	}
	if served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors; served != st.Requests {
		t.Fatalf("conservation: %d served of %d requests", served, st.Requests)
	}
}

// TestBatchBackpressure429 saturates a 1-worker/1-slot pool and asserts a
// rejected batch accounts ALL its items: the conservation invariant must
// hold whether a 429 sheds one request or a whole envelope.
func TestBatchBackpressure429(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.schedule = func(req *ScheduleRequest) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte("{}\n"), nil
	}

	// Occupy the worker and the queue slot with distinct /schedule requests.
	for i := 0; i < 2; i++ {
		req := testRequest(t)
		req.Seed = int64(i + 1)
		body := marshalRequest(t, req)
		go func() {
			resp, err := http.Post(ts.URL+"/schedule", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the blocking request")
	}
	waitFor(t, func() bool { return srv.pool.QueueDepth() == 1 })

	// The batch (4 items, all misses) must shed as one 429 covering all 4.
	resp, data := postBatch(t, ts.URL, marshalJSON(t, testBatchRequest(t)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch status %d, want 429 (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 batch response missing Retry-After")
	}
	close(release)
	waitFor(t, func() bool {
		var st Stats
		getJSON(t, ts.URL+"/stats", &st)
		return st.CacheMisses == 2
	})

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 6 {
		t.Fatalf("requests = %d, want 6 (2 schedule + 4 batched)", st.Requests)
	}
	if st.Rejected != 4 || st.ClientErrors != 4 {
		t.Fatalf("rejected=%d client_errors=%d, want 4/4 (every batched item)", st.Rejected, st.ClientErrors)
	}
	if served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors; served != st.Requests {
		t.Fatalf("conservation: %d served of %d requests", served, st.Requests)
	}
}
