package service

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"

	"ftsched/internal/mission"
	"ftsched/internal/sim"
)

// MissionRequest is the body of POST /missions: a full scheduling request
// plus one failure scenario to execute the mission against and the reaction
// policy. A mission is a single online execution (one scenario draw), not a
// Monte-Carlo batch — /evaluate's policies field is the batch form.
type MissionRequest struct {
	ScheduleRequest
	// Scenario selects the failure-scenario generator the mission draws its
	// one scenario from.
	Scenario sim.ScenarioSpec `json:"scenario"`
	// ScenarioSeed seeds the draw: the mission faces exactly the scenario
	// trial 0 of an /evaluate with eval_seed == scenario_seed would face.
	ScenarioSeed int64 `json:"scenario_seed,omitempty"`
	// MissionPolicy is "static" or "reschedule" (default "reschedule").
	MissionPolicy string `json:"mission_policy,omitempty"`
	// TaskEvents adds one event per task completion to the event log.
	TaskEvents bool `json:"task_events,omitempty"`
}

// DecodeMissionRequest reads and validates one /missions request body, with
// the same strictness as DecodeScheduleRequest (unknown fields rejected,
// one JSON document only).
func DecodeMissionRequest(r io.Reader) (*MissionRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req MissionRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate cross-checks the decoded request: the scheduling part first, then
// the mission parameters.
func (req *MissionRequest) Validate() error {
	if err := req.ScheduleRequest.Validate(); err != nil {
		return err
	}
	if err := req.rejectScheduleOnlyFields("/missions"); err != nil {
		return err
	}
	if _, err := mission.ParsePolicy(req.MissionPolicy); err != nil {
		return err
	}
	gen, err := req.Scenario.Generator()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := gen.Check(req.Platform.NumProcs()); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// MissionFingerprint digests everything a mission's event log and final
// report depend on. The "mission" domain tag keeps the keyspace disjoint
// from the other endpoints; the policy is canonicalized so an omitted
// mission_policy and an explicit "reschedule" name one mission.
func MissionFingerprint(req *MissionRequest) Fingerprint {
	f := newFingerprinter()
	f.instance(req.Graph, req.Platform, req.Costs)
	f.str("mission")
	f.str(req.canonicalScheduler())
	f.i64(int64(req.Epsilon))
	policy, seed := req.canonicalPolicySeed()
	f.str(policy)
	f.i64(seed)
	mp, _ := mission.ParsePolicy(req.MissionPolicy) // validated at decode
	f.str(string(mp))
	f.str(req.Scenario.String())
	f.i64(req.ScenarioSeed)
	if req.TaskEvents {
		f.i64(1)
	} else {
		f.i64(0)
	}
	return f.sum()
}

// MissionID renders a mission fingerprint as the 32-hex-digit identifier
// used in /missions/{id} paths. Deriving the id from the fingerprint makes
// POST /missions idempotent and lets the coordinator route GETs to the
// owning shard without shared state.
func MissionID(fp Fingerprint) string { return hex.EncodeToString(fp[:]) }

// ParseMissionID inverts MissionID; it rejects anything that is not exactly
// 32 hex digits.
func ParseMissionID(id string) (Fingerprint, error) {
	var fp Fingerprint
	if len(id) != 2*len(fp) {
		return fp, fmt.Errorf("mission id must be %d hex digits, got %d bytes", 2*len(fp), len(id))
	}
	if _, err := hex.Decode(fp[:], []byte(id)); err != nil {
		return fp, fmt.Errorf("mission id: %w", err)
	}
	return fp, nil
}

// Mission lifecycle states as reported by GET /missions/{id}.
const (
	MissionRunning = "running"
	MissionDone    = "done"
	MissionFailed  = "failed"
)

// MissionReport is the final body of GET /missions/{id} once the mission
// finished. It is a pure function of the request — byte-identical across
// runs, worker counts and shard counts.
type MissionReport struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Scheduler is the algorithm's display name; MissionPolicy the resolved
	// reaction policy.
	Scheduler     string `json:"scheduler"`
	Epsilon       int    `json:"epsilon"`
	MissionPolicy string `json:"mission_policy"`
	Tasks         int    `json:"tasks"`
	Procs         int    `json:"procs"`
	Scenario      string `json:"scenario"`
	ScenarioSeed  int64  `json:"scenario_seed"`
	// LowerBound and UpperBound are the initial plan's latency bounds — the
	// frame Outcome.Latency lives in.
	LowerBound float64 `json:"lower_bound,omitempty"`
	UpperBound float64 `json:"upper_bound,omitempty"`
	// Outcome is the mission's final report; absent when State is "failed".
	Outcome *mission.Outcome `json:"outcome,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// missionState is one retained mission: an append-only event log plus the
// final report. notify is closed and replaced on every append, so any
// number of streaming readers can wait for "more than N lines" without the
// writer tracking them.
type missionState struct {
	id string

	mu     sync.Mutex
	state  string // MissionRunning/MissionDone/MissionFailed
	lines  [][]byte
	report []byte // final GET body; nil while running
	notify chan struct{}
}

func newMissionState(id string) *missionState {
	return &missionState{id: id, state: MissionRunning, notify: make(chan struct{})}
}

// appendLine records one event-log line (already a complete JSON document).
func (st *missionState) appendLine(line []byte) {
	st.mu.Lock()
	st.lines = append(st.lines, line)
	close(st.notify)
	st.notify = make(chan struct{})
	st.mu.Unlock()
}

// finishMission publishes the final report and wakes streaming readers.
func (st *missionState) finish(state string, report []byte) {
	st.mu.Lock()
	st.state = state
	st.report = report
	close(st.notify)
	st.notify = make(chan struct{})
	st.mu.Unlock()
}

// snapshot returns the lines at or past from, the current state, and the
// channel that signals further appends. Lines are immutable once appended,
// so the caller may write them after releasing the lock.
func (st *missionState) snapshot(from int) (lines [][]byte, state string, notify chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lines[from:], st.state, st.notify
}

// missionAcceptedBody is the fixed POST /missions response: deterministic
// whether the mission was just created or already existed (the cache-status
// header tells them apart).
func missionAcceptedBody(id string) []byte {
	return []byte(`{"id":"` + id + `","state":"accepted"}` + "\n")
}

func (s *Server) handleMissionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.missionRequests.Add(1)
	req, ok := decodeRequest(s, w, r, DecodeMissionRequest,
		func(req *MissionRequest) int { return req.Graph.NumTasks() })
	if !ok {
		return
	}
	s.countScheduler(req.canonicalScheduler())
	id := MissionID(MissionFingerprint(req))

	s.missionMu.Lock()
	if _, exists := s.missions[id]; exists {
		s.missionMu.Unlock()
		// The mission id is a pure function of the request, so an existing
		// state IS the response — an idempotent re-POST is a cache hit.
		s.hits.Add(1)
		s.writeMissionAccepted(w, id, "hit")
		return
	}
	if len(s.missions) >= s.cfg.MaxMissions && !s.evictOldestFinishedLocked() {
		s.missionMu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("all %d retained missions are still running", s.cfg.MaxMissions))
		return
	}
	st := newMissionState(id)
	// Submit before inserting: a failed submit must not leave a phantom
	// mission that would make a retry a no-op "hit". missionMu spans both,
	// and TrySubmit never blocks, so the hold is brief.
	switch err := s.pool.TrySubmit(func() { s.runMission(req, st) }); err {
	case nil:
	case ErrBusy:
		s.missionMu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, ErrBusy)
		return
	default: // ErrClosed during shutdown
		s.missionMu.Unlock()
		s.writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.missions[id] = st
	s.missionOrder = append(s.missionOrder, id)
	s.missionMu.Unlock()
	s.misses.Add(1)
	s.writeMissionAccepted(w, id, "miss")
}

func (s *Server) writeMissionAccepted(w http.ResponseWriter, id, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheStatusHeader, cacheStatus)
	w.WriteHeader(http.StatusAccepted)
	w.Write(missionAcceptedBody(id))
}

// evictOldestFinishedLocked drops the oldest non-running mission, returning
// false when every retained mission is still running. Caller holds
// missionMu.
func (s *Server) evictOldestFinishedLocked() bool {
	for i, id := range s.missionOrder {
		st := s.missions[id]
		st.mu.Lock()
		finished := st.state != MissionRunning
		st.mu.Unlock()
		if finished {
			delete(s.missions, id)
			s.missionOrder = append(s.missionOrder[:i], s.missionOrder[i+1:]...)
			return true
		}
	}
	return false
}

// runMission executes one mission on a pool worker, streaming events into
// the state as they happen.
func (s *Server) runMission(req *MissionRequest, st *missionState) {
	report := MissionReport{
		ID:            st.id,
		Tasks:         req.Graph.NumTasks(),
		Procs:         req.Platform.NumProcs(),
		Scenario:      req.Scenario.String(),
		ScenarioSeed:  req.ScenarioSeed,
		Epsilon:       req.Epsilon,
		MissionPolicy: req.MissionPolicy,
	}
	pol, err := mission.ParsePolicy(req.MissionPolicy)
	if err == nil {
		report.MissionPolicy = string(pol)
	}
	out, ctl, err := s.executeMission(req, pol, st)
	if err != nil {
		report.State = MissionFailed
		report.Error = err.Error()
	} else {
		report.State = MissionDone
		report.Scheduler = ctl.InitialPlan().Algorithm
		report.LowerBound = ctl.InitialPlan().LowerBound()
		report.UpperBound = ctl.InitialPlan().UpperBound()
		report.Outcome = &out
	}
	body, merr := marshalCompact(&report)
	if merr != nil {
		// A flat struct of numbers and strings cannot fail to encode; keep
		// the mission observable anyway.
		body = []byte(`{"id":"` + st.id + `","state":"failed","error":"encoding report"}` + "\n")
		report.State = MissionFailed
	}
	st.finish(report.State, body)
}

// executeMission draws the scenario and runs the controller.
func (s *Server) executeMission(req *MissionRequest, pol mission.Policy, st *missionState) (mission.Outcome, *mission.Controller, error) {
	gen, err := req.Scenario.Generator()
	if err != nil {
		return mission.Outcome{}, nil, err
	}
	m := req.Platform.NumProcs()
	sc := sim.NewScenario(m)
	var scratch sim.ScenarioScratch
	rng := rand.New(rand.NewSource(sim.TrialSeed(req.ScenarioSeed, 0)))
	if err := gen.FillScenario(rng, &sc, &scratch); err != nil {
		return mission.Outcome{}, nil, err
	}
	bl, err := s.bottomLevels(req.Graph, req.Platform, req.Costs)
	if err != nil {
		return mission.Outcome{}, nil, err
	}
	ctl, err := mission.NewController(mission.Spec{
		Graph:        req.Graph,
		Platform:     req.Platform,
		Costs:        req.Costs,
		Scheduler:    req.Scheduler,
		Epsilon:      req.Epsilon,
		SchedPolicy:  req.Policy,
		Seed:         req.Seed,
		Policy:       pol,
		BottomLevels: bl,
		TaskEvents:   req.TaskEvents,
	})
	if err != nil {
		return mission.Outcome{}, nil, err
	}
	out, err := ctl.Run(sc, st.appendLine)
	if err != nil {
		return mission.Outcome{}, nil, err
	}
	return out, ctl, nil
}

// marshalCompact serializes deterministically (compact JSON, struct field
// order, trailing newline) — the same canonical form every cached response
// body uses.
func marshalCompact(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// lookupMission resolves {id}, writing an uncounted 404/400 when absent
// (mission GETs do not count toward Requests, so their errors must not
// count either — see the Stats conservation invariant).
func (s *Server) lookupMission(w http.ResponseWriter, r *http.Request) *missionState {
	id := r.PathValue("id")
	if _, err := ParseMissionID(id); err != nil {
		writeErrorBody(w, http.StatusBadRequest, err)
		return nil
	}
	s.missionMu.Lock()
	st := s.missions[id]
	s.missionMu.Unlock()
	if st == nil {
		writeErrorBody(w, http.StatusNotFound, fmt.Errorf("no mission %s", id))
		return nil
	}
	return st
}

func (s *Server) handleMissionGet(w http.ResponseWriter, r *http.Request) {
	st := s.lookupMission(w, r)
	if st == nil {
		return
	}
	st.mu.Lock()
	state, report, events := st.state, st.report, len(st.lines)
	st.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if state == MissionRunning {
		fmt.Fprintf(w, `{"id":"%s","state":"running","events":%d}%s`, st.id, events, "\n")
		return
	}
	w.Write(report)
}

// handleMissionEvents streams the mission's event log as chunked JSONL:
// every line already emitted, then new lines as they land, until the
// mission finishes or the client disconnects. The bytes (headers aside) are
// exactly the controller's event log — byte-identical for equal requests no
// matter when the stream was opened.
func (s *Server) handleMissionEvents(w http.ResponseWriter, r *http.Request) {
	st := s.lookupMission(w, r)
	if st == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sent := 0
	for {
		lines, state, notify := st.snapshot(sent)
		for _, line := range lines {
			w.Write(line)
			io.WriteString(w, "\n")
			sent++
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if state != MissionRunning {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}
