package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/dag"
	"ftsched/internal/mission"
	"ftsched/internal/platform"
	"ftsched/internal/reliability"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/stats"
)

// CacheStatusHeader is set on every /schedule and /evaluate response: "hit"
// when the response came from the cache, "miss" when it was freshly
// computed. The body is byte-identical either way; only this header
// distinguishes them.
const CacheStatusHeader = "X-Ftserved-Cache"

// Config tunes a Server. The zero value picks serving defaults sized to the
// host.
type Config struct {
	// Workers is the scheduling worker count (0: one per core).
	Workers int
	// Queue bounds the pending-request queue (0: 2× workers). A full queue
	// rejects with 429.
	Queue int
	// CacheEntries bounds the response cache (0: 4096 entries).
	CacheEntries int
	// CacheShards is the response-cache shard count (0: 16).
	CacheShards int
	// BottomLevelEntries bounds the per-instance bottom-level memo
	// (0: 256 entries).
	BottomLevelEntries int
	// MaxBodyBytes limits a request body (0: 32 MiB). Larger bodies get 413.
	MaxBodyBytes int64
	// MaxTasks rejects instances with more tasks (0: unlimited); a cheap
	// guard against a single request monopolizing a worker.
	MaxTasks int
	// MaxTrials bounds the trial count of one /evaluate request and the
	// per-candidate trial count of one /tune request (0: 100000), so a
	// single batch cannot monopolize a worker.
	MaxTrials int
	// MaxCandidates bounds the derived candidate grid of one /tune request
	// (0: 256) — a registry × ε-ladder sweep multiplies the trial cost, so
	// it gets its own guard on top of MaxTrials.
	MaxCandidates int
	// MaxBatchItems bounds the item count of one /schedule/batch envelope
	// (0: 256), so a single batch cannot monopolize a worker.
	MaxBatchItems int
	// MaxMissions bounds the retained mission states (0: 1024). At the
	// bound, creating a mission evicts the oldest finished one; if every
	// retained mission is still running, the create is rejected with 429.
	MaxMissions int
	// Shard, when non-empty, labels this server's GET /stats body. The
	// coordinator sets it to the shard index so per-shard sections of an
	// aggregated /stats response are self-identifying.
	Shard string
	// LatencyWindow is the number of recent /schedule latencies kept for the
	// p50/p99 report (0: 1024).
	LatencyWindow int
	// Log, when non-nil, receives one line per /schedule request.
	Log *log.Logger
}

// Server handles the ftserved HTTP API. Create one with New, mount it as an
// http.Handler, and Close it on shutdown to drain the worker pool.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *Pool
	cache   *Cache // Fingerprint → []byte (serialized response)
	blCache *Cache // instance Fingerprint → []float64 (static bottom levels)

	// schedule, evaluate and tuneFn compute the response bytes for a
	// validated request of the respective endpoint. They are fields so tests
	// can replace them with controllable stubs (e.g. ones that block, to
	// fill the queue deterministically).
	schedule func(*ScheduleRequest) ([]byte, error)
	evaluate func(*EvaluateRequest) ([]byte, error)
	tuneFn   func(*TuneRequest) ([]byte, error)

	requests           atomic.Uint64
	evaluateRequests   atomic.Uint64
	tuneRequests       atomic.Uint64
	batchRequests      atomic.Uint64
	batchItems         atomic.Uint64
	missionRequests    atomic.Uint64
	hits               atomic.Uint64
	misses             atomic.Uint64
	singleflightShared atomic.Uint64
	rejected           atomic.Uint64
	clientErrors       atomic.Uint64
	internalErrors     atomic.Uint64
	cancelled          atomic.Uint64

	// missionMu guards missions (by id) and missionOrder (ids in admission
	// order, the eviction scan order). Mission GETs are uncounted reads;
	// POST /missions holds the mutex across existence check, pool
	// submission and insertion so a failed submit never leaves a phantom
	// mission.
	missionMu    sync.Mutex
	missions     map[string]*missionState
	missionOrder []string

	// flightMu guards flights, the in-flight cache-miss computations keyed
	// by fingerprint. Concurrent requests for one fingerprint collapse onto
	// a single computation (singleflight) instead of each submitting a
	// duplicate job to the pool.
	flightMu sync.Mutex
	flights  map[Fingerprint]*flight

	// schedMu guards schedReqs, the per-scheduler request counts reported
	// by GET /stats (keyed by canonical registry name; every well-formed
	// /schedule request counts, hits and misses alike).
	schedMu   sync.Mutex
	schedReqs map[string]uint64

	latMu sync.Mutex
	lat   *stats.Window
}

// New creates a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.BottomLevelEntries <= 0 {
		cfg.BottomLevelEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.LatencyWindow <= 0 {
		cfg.LatencyWindow = 1024
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 100000
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 256
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.MaxMissions <= 0 {
		cfg.MaxMissions = 1024
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		pool:      NewPool(cfg.Workers, cfg.Queue),
		cache:     NewCache(cfg.CacheEntries, cfg.CacheShards),
		blCache:   NewCache(cfg.BottomLevelEntries, 4),
		flights:   make(map[Fingerprint]*flight),
		missions:  make(map[string]*missionState),
		schedReqs: make(map[string]uint64),
		lat:       stats.NewWindow(cfg.LatencyWindow),
	}
	s.schedule = s.runSchedule
	s.evaluate = s.runEvaluate
	s.tuneFn = s.runTune
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("POST /schedule/batch", s.handleBatch)
	s.mux.HandleFunc("POST /evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /tune", s.handleTune)
	s.mux.HandleFunc("POST /missions", s.handleMissionCreate)
	s.mux.HandleFunc("GET /missions/{id}", s.handleMissionGet)
	s.mux.HandleFunc("GET /missions/{id}/events", s.handleMissionEvents)
	s.mux.HandleFunc("GET /scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool. In-flight and queued requests complete;
// new submissions are rejected.
func (s *Server) Close() { s.pool.Close() }

// Workers returns the effective scheduling worker count after defaulting.
func (s *Server) Workers() int { return s.pool.Workers() }

// QueueCapacity returns the effective request-queue bound after defaulting.
func (s *Server) QueueCapacity() int { return s.pool.QueueCapacity() }

// writeError emits the uniform JSON error body and counts it toward the
// conservation invariant's error buckets.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.internalErrors.Add(1)
	} else {
		s.clientErrors.Add(1)
	}
	writeErrorBody(w, status, err)
}

// writeErrorBody emits the uniform JSON error body without touching any
// counter. Read-only endpoints that do not count toward Requests (the
// mission GETs, like /stats and /healthz) use it directly, so their 404s
// cannot unbalance the requests == hits+misses+errors+cancelled invariant.
func writeErrorBody(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct with a string cannot fail; ignore the error.
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// decodeRequest is the request prologue every POST endpoint shares: bound
// the body, decode (400 on malformed input, 413 past the body limit) and
// apply the instance-size guard. ok is false when an error response was
// written.
func decodeRequest[T any](s *Server, w http.ResponseWriter, r *http.Request,
	decode func(io.Reader) (T, error), tasks func(T) int) (req T, ok bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := decode(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, err)
		return req, false
	}
	if n := tasks(req); s.cfg.MaxTasks > 0 && n > s.cfg.MaxTasks {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("instance has %d tasks, this server accepts at most %d", n, s.cfg.MaxTasks))
		return req, false
	}
	return req, true
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()
	// Decode into a pooled request: the graph lands in a recycled adjacency
	// arena, so the warm decode path allocates nothing proportional to the
	// instance. Nothing built from the request outlives its compute (the
	// response cache stores bytes, the bottom-level memo float slices), but
	// the compute itself may outlive this handler when the client
	// disconnects — serveCached owns the release via its cleanup hook once
	// decoding has succeeded.
	req := AcquireScheduleRequest()
	req, ok := decodeRequest(s, w, r,
		func(body io.Reader) (*ScheduleRequest, error) {
			if err := DecodeScheduleRequestInto(req, body); err != nil {
				return nil, err
			}
			return req, nil
		},
		func(req *ScheduleRequest) int { return req.Graph.NumTasks() })
	if !ok {
		ReleaseScheduleRequest(req)
		return
	}
	s.countScheduler(req.canonicalScheduler())
	desc := ""
	if s.cfg.Log != nil {
		desc = req.describe() // before serveCached: the cleanup hook may release req
	}

	cacheStatus, ok := s.serveCached(w, r, RequestFingerprint(req), "scheduling",
		func() ([]byte, error) { return s.schedule(req) },
		func() { ReleaseScheduleRequest(req) })
	if !ok {
		return
	}
	s.observeLatency(start)
	s.logRequest(r, "/schedule", desc, cacheStatus, start)
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.evaluateRequests.Add(1)
	start := time.Now()
	req, ok := decodeRequest(s, w, r, DecodeEvaluateRequest,
		func(req *EvaluateRequest) int { return req.Graph.NumTasks() })
	if !ok {
		return
	}
	if req.Trials > s.cfg.MaxTrials {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("request asks for %d trials, this server accepts at most %d", req.Trials, s.cfg.MaxTrials))
		return
	}
	s.countScheduler(req.canonicalScheduler())

	cacheStatus, ok := s.serveCached(w, r, EvaluateFingerprint(req), "evaluation",
		func() ([]byte, error) { return s.evaluate(req) }, nil)
	if !ok {
		return
	}
	s.observeLatency(start)
	s.logRequest(r, "/evaluate", req.describe(), cacheStatus, start)
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.tuneRequests.Add(1)
	start := time.Now()
	req, ok := decodeRequest(s, w, r, DecodeTuneRequest,
		func(req *TuneRequest) int { return req.Graph.NumTasks() })
	if !ok {
		return
	}
	if req.Trials > s.cfg.MaxTrials {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("request asks for %d trials per candidate, this server accepts at most %d",
				req.Trials, s.cfg.MaxTrials))
		return
	}
	cands := req.candidates()
	if len(cands) > s.cfg.MaxCandidates {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("request derives %d candidates, this server accepts at most %d",
				len(cands), s.cfg.MaxCandidates))
		return
	}
	// A tune request sweeps the registry: attribute it to every scheduler
	// in its grid, so the /stats table shows which schedulers the search
	// traffic exercises.
	seen := make(map[string]bool)
	for _, c := range cands {
		if !seen[c.Scheduler] {
			seen[c.Scheduler] = true
			s.countScheduler(c.Scheduler)
		}
	}

	cacheStatus, ok := s.serveCached(w, r, TuneFingerprint(req), "tuning",
		func() ([]byte, error) { return s.tuneFn(req) }, nil)
	if !ok {
		return
	}
	s.observeLatency(start)
	s.logRequest(r, "/tune",
		fmt.Sprintf("candidates=%d trials=%d tasks=%d procs=%d",
			len(cands), req.Trials, req.Graph.NumTasks(), req.Platform.NumProcs()),
		cacheStatus, start)
}

// flight is one in-flight cache-miss computation. The first request for a
// fingerprint (the leader) creates the flight and computes; concurrent
// requests for the same fingerprint (followers) wait on done and share the
// outcome — body on success, the leader's error and HTTP status otherwise.
type flight struct {
	done   chan struct{}
	body   []byte
	err    error
	status int // HTTP status of the error outcome; 0 when err is nil
	// ctx is the leader's request context. A dequeued job whose leader is
	// gone and whose flight has no waiters computes for nobody — the pool
	// skips it.
	ctx context.Context
	// waiters counts followers attached and still waiting; tests use it to
	// release a blocked leader only once every concurrent request is
	// provably waiting, and the skip check uses it to keep a computation
	// other requests depend on. A follower that gives up (client gone)
	// decrements.
	waiters atomic.Int32
}

// errCancelled marks a flight whose computation was skipped because the
// leader's client disconnected with nobody else waiting. It never reaches a
// response writer: followers can only exist when waiters > 0, which
// prevents the skip.
var errCancelled = errors.New("service: request cancelled before compute")

// serveCached is the cache → singleflight → worker-pool → respond flow
// /schedule, /evaluate and /tune share. It reports how the response was
// served ("hit"/"miss"); ok is false when an error response was written (or
// the client was gone, in which case nothing is written).
//
// cleanup, when non-nil, is called exactly once — on every path — as soon
// as compute can no longer run; handlers use it to return pooled request
// storage whose compute job may outlive the handler (a cancelled leader
// returns early, but its queued job still runs for followers and the
// cache).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, fp Fingerprint, opName string, compute func() ([]byte, error), cleanup func()) (cacheStatus string, ok bool) {
	release := func() {
		if cleanup != nil {
			cleanup()
		}
	}
	if v, hit := s.cache.Get(fp); hit {
		release()
		s.hits.Add(1)
		s.writeCachedResponse(w, v.([]byte), "hit")
		return "hit", true
	}
	ctx := r.Context()

	// Singleflight: collapse concurrent misses for one fingerprint onto a
	// single computation. Under a zipf-skewed burst, M identical expensive
	// /tune requests cost one pool job, not M.
	s.flightMu.Lock()
	if f, inFlight := s.flights[fp]; inFlight {
		f.waiters.Add(1)
		s.flightMu.Unlock()
		release()
		select {
		case <-f.done:
		case <-ctx.Done():
			// The client is gone; stop waiting and let the skip check see
			// one waiter fewer. The computation itself keeps running — its
			// result still feeds the cache and any remaining waiters.
			f.waiters.Add(-1)
			s.cancelled.Add(1)
			return "", false
		}
		if f.err != nil {
			if f.status == http.StatusTooManyRequests {
				s.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
			}
			s.writeError(w, f.status, f.err)
			return "", false
		}
		// A follower is observably a cache hit: it is served bytes another
		// request computed. SingleflightShared additionally records that the
		// hit came from attaching to a live flight rather than the cache.
		s.hits.Add(1)
		s.singleflightShared.Add(1)
		s.writeCachedResponse(w, f.body, "hit")
		return "hit", true
	}
	// Re-check the cache before becoming the leader: a flight that finished
	// between the miss above and taking flightMu has already published its
	// bytes (finish puts into the cache before retiring the flight), so this
	// second look closes the window — absent eviction, one fingerprint can
	// never be computed twice.
	if v, hit := s.cache.Get(fp); hit {
		s.flightMu.Unlock()
		release()
		s.hits.Add(1)
		s.writeCachedResponse(w, v.([]byte), "hit")
		return "hit", true
	}
	f := &flight{done: make(chan struct{}), ctx: ctx}
	s.flights[fp] = f
	s.flightMu.Unlock()

	// finish publishes the job's outcome: fill the flight, on success the
	// cache, and only then retire the flight — a request that arrives after
	// the delete finds the bytes in the cache, so there is no window in
	// which a successful computation is invisible.
	finish := func(body []byte, err error, status int) {
		f.body, f.err, f.status = body, err, status
		if err == nil {
			s.cache.Put(fp, body)
		}
		s.flightMu.Lock()
		delete(s.flights, fp)
		s.flightMu.Unlock()
		close(f.done)
	}

	// Compute on the bounded pool. The job owns finish: it runs even when
	// the leader's handler has already returned, so followers and the cache
	// always get the outcome. The leader observes it through f.done like a
	// follower would.
	submitErr := s.pool.TrySubmit(func() {
		defer release()
		// Skip a request nobody wants: the leader's client is gone and no
		// follower attached. The check holds flightMu so no follower can
		// attach between the decision and the flight's retirement.
		s.flightMu.Lock()
		if f.ctx.Err() != nil && f.waiters.Load() == 0 {
			delete(s.flights, fp)
			s.flightMu.Unlock()
			f.err, f.status = errCancelled, http.StatusServiceUnavailable
			close(f.done)
			return
		}
		s.flightMu.Unlock()
		body, err := compute()
		if err != nil {
			finish(nil, fmt.Errorf("%s failed: %w", opName, err), http.StatusInternalServerError)
			return
		}
		finish(body, nil, 0)
	})
	switch submitErr {
	case nil:
	case ErrBusy:
		release()
		finish(nil, ErrBusy, http.StatusTooManyRequests)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, ErrBusy)
		return "", false
	default: // ErrClosed during shutdown
		release()
		finish(nil, submitErr, http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable, submitErr)
		return "", false
	}
	select {
	case <-f.done:
	case <-ctx.Done():
		// The client is gone. The queued job still runs (or skips itself);
		// this handler just stops pinning a goroutine on it.
		s.cancelled.Add(1)
		return "", false
	}
	if errors.Is(f.err, errCancelled) {
		// The job observed the dead context before this handler could; the
		// request is cancelled either way.
		s.cancelled.Add(1)
		return "", false
	}
	if f.err != nil {
		s.writeError(w, f.status, f.err)
		return "", false
	}
	s.misses.Add(1)
	s.writeCachedResponse(w, f.body, "miss")
	return "miss", true
}

func (s *Server) writeCachedResponse(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheStatusHeader, cacheStatus)
	w.Write(body)
}

func (s *Server) observeLatency(start time.Time) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	s.latMu.Lock()
	s.lat.Add(ms)
	s.latMu.Unlock()
}

func (s *Server) logRequest(r *http.Request, path, detail, cacheStatus string, start time.Time) {
	if s.cfg.Log == nil {
		return
	}
	s.cfg.Log.Printf("%s %s %s cache=%s took=%s",
		r.RemoteAddr, path, detail, cacheStatus,
		time.Since(start).Round(time.Microsecond))
}

// countScheduler bumps the per-scheduler request counter under its mutex.
func (s *Server) countScheduler(name string) {
	s.schedMu.Lock()
	s.schedReqs[name]++
	s.schedMu.Unlock()
}

// bottomLevels resolves the instance's static bottom levels through the
// instance-keyed memo. They depend only on (graph, costs, platform), and
// every registered scheduler derives its priorities from them, so cache-miss
// requests for the same DAG under different ε, seed, scheduler — or a whole
// /tune sweep — share one computation (the slice is read-only to the
// schedulers, which is what makes sharing race-free).
func (s *Server) bottomLevels(g *dag.Graph, p *platform.Platform, cm *platform.CostModel) ([]float64, error) {
	ifp := InstanceFingerprint(g, p, cm)
	if v, ok := s.blCache.Get(ifp); ok {
		return v.([]float64), nil
	}
	bl, err := sched.AvgBottomLevels(g, cm, p)
	if err != nil {
		return nil, err
	}
	s.blCache.Put(ifp, bl)
	return bl, nil
}

// solve runs the scheduling part shared by /schedule and /evaluate: resolve
// bottom levels from the instance memo, run the requested heuristic through
// the scheduler registry, and validate the result.
func (s *Server) solve(req *ScheduleRequest) (*sched.Schedule, error) {
	g, p, cm := req.Graph, req.Platform, req.Costs
	var rng *rand.Rand
	if req.Seed != 0 {
		rng = rand.New(rand.NewSource(req.Seed))
	}
	bl, err := s.bottomLevels(g, p, cm)
	if err != nil {
		return nil, err
	}
	schedule, err := sched.Run(req.Scheduler, g, p, cm, sched.RunOptions{
		Epsilon:      req.Epsilon,
		Rng:          rng,
		BottomLevels: bl,
		Policy:       req.Policy,
	})
	if err != nil {
		return nil, err
	}
	if err := schedule.Validate(); err != nil {
		return nil, fmt.Errorf("generated schedule failed validation: %w", err)
	}
	return schedule, nil
}

// runSchedule is the /schedule cache-miss path.
func (s *Server) runSchedule(req *ScheduleRequest) ([]byte, error) {
	schedule, err := s.solve(req)
	if err != nil {
		return nil, err
	}
	return buildResponse(req, schedule)
}

// runEvaluate is the /evaluate cache-miss path: schedule, then replay the
// fault-injection batch. Evaluate runs single-worker inside the job —
// request-level parallelism is the serving layer's worker pool, so one
// oversized batch cannot oversubscribe the host; determinism is unaffected
// (the result is worker-count independent by construction).
func (s *Server) runEvaluate(req *EvaluateRequest) ([]byte, error) {
	schedule, err := s.solve(&req.ScheduleRequest)
	if err != nil {
		return nil, err
	}
	gen, err := req.Scenario.Generator()
	if err != nil {
		return nil, err
	}
	res, err := sim.Evaluate(schedule, gen, req.Trials, sim.EvalOptions{
		Seed:    req.EvalSeed,
		Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	resp := &EvaluateResponse{
		Scheduler:  schedule.Algorithm,
		Epsilon:    schedule.Epsilon,
		Tasks:      req.Graph.NumTasks(),
		Procs:      req.Platform.NumProcs(),
		Pattern:    schedule.CommPattern.String(),
		LowerBound: schedule.LowerBound(),
		UpperBound: schedule.UpperBound(),
		Scenario:   req.Scenario.String(),
		Eval:       *res,
	}
	// Policy mode: score each requested mission policy on the same scenario
	// draws (same generator, same per-trial seeds), so static and
	// re-scheduling are compared trial for trial.
	if len(req.Policies) > 0 {
		bl, err := s.bottomLevels(req.Graph, req.Platform, req.Costs)
		if err != nil {
			return nil, err
		}
		spec := mission.Spec{
			Graph:        req.Graph,
			Platform:     req.Platform,
			Costs:        req.Costs,
			Scheduler:    req.Scheduler,
			Epsilon:      req.Epsilon,
			SchedPolicy:  req.Policy,
			Seed:         req.Seed,
			BottomLevels: bl,
		}
		resp.PolicyEval = make([]PolicyEvalResult, 0, len(req.Policies))
		for _, p := range req.Policies {
			spec.Policy = mission.Policy(p)
			pres, err := mission.EvaluatePolicy(spec, gen, req.Trials, sim.EvalOptions{
				Seed:    req.EvalSeed,
				Workers: 1,
			})
			if err != nil {
				return nil, err
			}
			resp.PolicyEval = append(resp.PolicyEval, PolicyEvalResult{Policy: p, Eval: *pres})
		}
	}
	// Adversarial mode: a deterministic worst-case column next to the
	// Monte-Carlo mean. The search is single-threaded and seeds nothing,
	// so the response stays byte-identical at any worker or shard count.
	if req.WorstCase != nil {
		wc, err := sim.WorstCase(schedule, *req.WorstCase, sim.Options{})
		if err != nil {
			return nil, err
		}
		resp.WorstCase = wc
	}
	return marshalEvaluateResponse(resp)
}

// buildResponse turns a validated schedule into the serialized response.
func buildResponse(req *ScheduleRequest, schedule *sched.Schedule) ([]byte, error) {
	m, err := schedule.ComputeMetrics()
	if err != nil {
		return nil, err
	}
	resp := &ScheduleResponse{
		Scheduler:  schedule.Algorithm,
		Epsilon:    schedule.Epsilon,
		Tasks:      req.Graph.NumTasks(),
		Procs:      req.Platform.NumProcs(),
		Pattern:    schedule.CommPattern.String(),
		LowerBound: schedule.LowerBound(),
		UpperBound: schedule.UpperBound(),
		Messages:   schedule.MessageCount(),
		Metrics: ResponseMetrics{
			TotalWork:         m.TotalWork,
			Replicas:          m.Replicas,
			ReplicationFactor: m.ReplicationFactor,
			CommVolume:        m.CommVolume,
			Horizon:           m.Horizon,
			MeanUtilization:   m.MeanUtilization,
			MinUtilization:    m.MinUtilization,
			MaxUtilization:    m.MaxUtilization,
		},
	}
	if req.Lambda > 0 {
		mission := schedule.UpperBound()
		surv, err := reliability.SurvivalLowerBound(
			reliability.Exponential{Lambda: req.Lambda},
			req.Platform.NumProcs(), schedule.Epsilon, mission)
		if err != nil {
			return nil, err
		}
		resp.Reliability = &ResponseReliability{
			Lambda:             req.Lambda,
			Mission:            mission,
			SurvivalLowerBound: surv,
		}
	}
	if req.IncludeSchedule {
		var indented bytes.Buffer
		if _, err := schedule.WriteTo(&indented); err != nil {
			return nil, err
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, indented.Bytes()); err != nil {
			return nil, err
		}
		resp.Schedule = json.RawMessage(compact.Bytes())
	}
	if req.IncludeGantt {
		timelines := schedule.ProcTimelines()
		resp.Gantt = make([]ProcTimeline, len(timelines))
		for proc, line := range timelines {
			row := ProcTimeline{Proc: platform.ProcID(proc), Spans: make([]GanttSpan, 0, len(line))}
			for _, r := range line {
				row.Spans = append(row.Spans, GanttSpan{
					Task: r.Task, Copy: r.Copy,
					StartMin: r.StartMin, FinishMin: r.FinishMin,
					StartMax: r.StartMax, FinishMax: r.FinishMax,
				})
			}
			resp.Gantt[proc] = row
		}
	}
	return marshalResponse(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// Stats is the body of GET /stats.
type Stats struct {
	// Shard labels the server when it runs as one worker of a sharded
	// deployment (Config.Shard); empty for a standalone server.
	Shard string `json:"shard,omitempty"`
	// Requests counts logical requests received, including rejected and
	// malformed ones; EvaluateRequests, TuneRequests and MissionRequests
	// are the /evaluate, /tune and POST /missions shares of that total. A
	// well-formed /schedule/batch envelope counts as one request per item
	// it carries (a malformed one as a single request). The counters
	// conserve: every request ends in exactly one of cache_hits,
	// cache_misses, client_errors, internal_errors or cancelled_requests
	// (429s count under both rejected and client_errors). Mission GETs are
	// uncounted reads, like /stats itself.
	Requests         uint64 `json:"requests"`
	EvaluateRequests uint64 `json:"evaluate_requests"`
	TuneRequests     uint64 `json:"tune_requests"`
	MissionRequests  uint64 `json:"mission_requests"`
	// BatchRequests counts /schedule/batch envelopes received (malformed
	// ones included); BatchItems counts the logical requests that
	// well-formed envelopes carried (each also counted under Requests).
	BatchRequests uint64 `json:"batch_requests"`
	BatchItems    uint64 `json:"batch_items"`
	// CacheHits and CacheMisses count served responses by path, all
	// endpoints together; HitRate is hits/(hits+misses), 0 before any
	// response is served. SingleflightShared is the subset of CacheHits that
	// were served by attaching to an in-flight identical computation
	// (concurrent duplicates collapsed to one pool job, or repeated items
	// inside one batch).
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	SingleflightShared uint64  `json:"singleflight_shared"`
	HitRate            float64 `json:"hit_rate"`
	// CacheEntries is the current response-cache population.
	CacheEntries int `json:"cache_entries"`
	// SchedulerRequests counts well-formed requests by canonical registry
	// scheduler name (hits and misses alike): /schedule and /evaluate bump
	// their one scheduler, and a /tune request bumps every distinct
	// scheduler in its derived candidate grid — the table answers "which
	// schedulers does traffic exercise", so a sweep counts for each.
	// Schedulers never requested are absent.
	SchedulerRequests map[string]uint64 `json:"scheduler_requests"`
	// Rejected counts 429s (queue full); ClientErrors counts 4xx;
	// InternalErrors counts all 5xx, including 503s during shutdown.
	// CancelledRequests counts requests whose client disconnected before a
	// response was computed — they end in no hit, miss or error bucket, so
	// the conservation invariant carries them as their own term.
	Rejected          uint64 `json:"rejected"`
	ClientErrors      uint64 `json:"client_errors"`
	InternalErrors    uint64 `json:"internal_errors"`
	CancelledRequests uint64 `json:"cancelled_requests"`
	// Missions is the retained mission-state population (running and
	// finished), bounded by Config.MaxMissions.
	Missions int `json:"missions"`
	// Queue and worker occupancy at the time of the call. QueueDepth is
	// instantaneous — under load it reads almost always 0 (drained) or the
	// capacity (rejecting) — while QueueHighWater is the deepest admission
	// depth ever observed, the number a capacity report should quote.
	QueueDepth     int `json:"queue_depth"`
	QueueHighWater int `json:"queue_high_water"`
	QueueCapacity  int `json:"queue_capacity"`
	Workers        int `json:"workers"`
	// LatencyMs summarizes recent successful /schedule, /evaluate and /tune
	// round trips (decode through response write), hits and misses alike.
	LatencyMs LatencyStats `json:"latency_ms"`
}

// LatencyStats reports quantiles over the recent-latency window.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.hits.Load(), s.misses.Load()
	s.schedMu.Lock()
	bySched := make(map[string]uint64, len(s.schedReqs))
	for name, n := range s.schedReqs {
		bySched[name] = n
	}
	s.schedMu.Unlock()
	s.missionMu.Lock()
	missionCount := len(s.missions)
	s.missionMu.Unlock()
	st := Stats{
		Shard:              s.cfg.Shard,
		Requests:           s.requests.Load(),
		EvaluateRequests:   s.evaluateRequests.Load(),
		TuneRequests:       s.tuneRequests.Load(),
		MissionRequests:    s.missionRequests.Load(),
		BatchRequests:      s.batchRequests.Load(),
		BatchItems:         s.batchItems.Load(),
		CacheHits:          hits,
		CacheMisses:        misses,
		SingleflightShared: s.singleflightShared.Load(),
		CacheEntries:       s.cache.Len(),
		SchedulerRequests:  bySched,
		Rejected:           s.rejected.Load(),
		ClientErrors:       s.clientErrors.Load(),
		InternalErrors:     s.internalErrors.Load(),
		CancelledRequests:  s.cancelled.Load(),
		Missions:           missionCount,
		QueueDepth:         s.pool.QueueDepth(),
		QueueHighWater:     s.pool.QueueHighWater(),
		QueueCapacity:      s.pool.QueueCapacity(),
		Workers:            s.pool.Workers(),
	}
	if hits+misses > 0 {
		st.HitRate = float64(hits) / float64(hits+misses)
	}
	s.latMu.Lock()
	st.LatencyMs = LatencyStats{
		Count: s.lat.Total(),
		Mean:  s.lat.Mean(),
		P50:   s.lat.Quantile(0.5),
		P99:   s.lat.Quantile(0.99),
		Max:   s.lat.Quantile(1),
	}
	s.latMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}
