package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftsched/internal/platform"
	"ftsched/internal/reliability"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/stats"
)

// CacheStatusHeader is set on every /schedule response: "hit" when the
// response came from the cache, "miss" when it was freshly scheduled. The
// body is byte-identical either way; only this header distinguishes them.
const CacheStatusHeader = "X-Ftserved-Cache"

// Config tunes a Server. The zero value picks serving defaults sized to the
// host.
type Config struct {
	// Workers is the scheduling worker count (0: one per core).
	Workers int
	// Queue bounds the pending-request queue (0: 2× workers). A full queue
	// rejects with 429.
	Queue int
	// CacheEntries bounds the response cache (0: 4096 entries).
	CacheEntries int
	// CacheShards is the response-cache shard count (0: 16).
	CacheShards int
	// BottomLevelEntries bounds the per-instance bottom-level memo
	// (0: 256 entries).
	BottomLevelEntries int
	// MaxBodyBytes limits a request body (0: 32 MiB). Larger bodies get 413.
	MaxBodyBytes int64
	// MaxTasks rejects instances with more tasks (0: unlimited); a cheap
	// guard against a single request monopolizing a worker.
	MaxTasks int
	// LatencyWindow is the number of recent /schedule latencies kept for the
	// p50/p99 report (0: 1024).
	LatencyWindow int
	// Log, when non-nil, receives one line per /schedule request.
	Log *log.Logger
}

// Server handles the ftserved HTTP API. Create one with New, mount it as an
// http.Handler, and Close it on shutdown to drain the worker pool.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *Pool
	cache   *Cache // Fingerprint → []byte (serialized response)
	blCache *Cache // instance Fingerprint → []float64 (static bottom levels)

	// schedule computes the response bytes for a validated request. It is a
	// field so tests can replace it with a controllable stub (e.g. one that
	// blocks, to fill the queue deterministically).
	schedule func(*ScheduleRequest) ([]byte, error)

	requests       atomic.Uint64
	hits           atomic.Uint64
	misses         atomic.Uint64
	rejected       atomic.Uint64
	clientErrors   atomic.Uint64
	internalErrors atomic.Uint64

	// schedMu guards schedReqs, the per-scheduler request counts reported
	// by GET /stats (keyed by canonical registry name; every well-formed
	// /schedule request counts, hits and misses alike).
	schedMu   sync.Mutex
	schedReqs map[string]uint64

	latMu sync.Mutex
	lat   *stats.Window
}

// New creates a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.BottomLevelEntries <= 0 {
		cfg.BottomLevelEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.LatencyWindow <= 0 {
		cfg.LatencyWindow = 1024
	}
	s := &Server{
		cfg:       cfg,
		mux:       http.NewServeMux(),
		pool:      NewPool(cfg.Workers, cfg.Queue),
		cache:     NewCache(cfg.CacheEntries, cfg.CacheShards),
		blCache:   NewCache(cfg.BottomLevelEntries, 4),
		schedReqs: make(map[string]uint64),
		lat:       stats.NewWindow(cfg.LatencyWindow),
	}
	s.schedule = s.runSchedule
	s.mux.HandleFunc("POST /schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the worker pool. In-flight and queued requests complete;
// new submissions are rejected.
func (s *Server) Close() { s.pool.Close() }

// Workers returns the effective scheduling worker count after defaulting.
func (s *Server) Workers() int { return s.pool.Workers() }

// QueueCapacity returns the effective request-queue bound after defaulting.
func (s *Server) QueueCapacity() int { return s.pool.QueueCapacity() }

// writeError emits the uniform JSON error body.
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.internalErrors.Add(1)
	} else {
		s.clientErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct with a string cannot fail; ignore the error.
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	start := time.Now()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := DecodeScheduleRequest(r.Body)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, status, err)
		return
	}
	if s.cfg.MaxTasks > 0 && req.Graph.NumTasks() > s.cfg.MaxTasks {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("instance has %d tasks, this server accepts at most %d", req.Graph.NumTasks(), s.cfg.MaxTasks))
		return
	}
	s.countScheduler(req.canonicalScheduler())

	fp := RequestFingerprint(req)
	if v, ok := s.cache.Get(fp); ok {
		s.hits.Add(1)
		s.writeScheduleResponse(w, v.([]byte), "hit")
		s.observeLatency(start)
		s.logRequest(r, req, "hit", start)
		return
	}

	// Cache miss: schedule on the bounded pool. The job sends exactly one
	// result; the buffered channel keeps the worker from blocking if the
	// client has gone away.
	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	submitErr := s.pool.TrySubmit(func() {
		body, err := s.schedule(req)
		done <- result{body: body, err: err}
	})
	switch submitErr {
	case nil:
	case ErrBusy:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, ErrBusy)
		return
	default: // ErrClosed during shutdown
		s.writeError(w, http.StatusServiceUnavailable, submitErr)
		return
	}
	res := <-done
	if res.err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("scheduling failed: %w", res.err))
		return
	}
	s.misses.Add(1)
	s.cache.Put(fp, res.body)
	s.writeScheduleResponse(w, res.body, "miss")
	s.observeLatency(start)
	s.logRequest(r, req, "miss", start)
}

func (s *Server) writeScheduleResponse(w http.ResponseWriter, body []byte, cacheStatus string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CacheStatusHeader, cacheStatus)
	w.Write(body)
}

func (s *Server) observeLatency(start time.Time) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	s.latMu.Lock()
	s.lat.Add(ms)
	s.latMu.Unlock()
}

func (s *Server) logRequest(r *http.Request, req *ScheduleRequest, cacheStatus string, start time.Time) {
	if s.cfg.Log == nil {
		return
	}
	s.cfg.Log.Printf("%s /schedule %s eps=%d tasks=%d procs=%d cache=%s took=%s",
		r.RemoteAddr, req.canonicalScheduler(), req.Epsilon,
		req.Graph.NumTasks(), req.Platform.NumProcs(), cacheStatus,
		time.Since(start).Round(time.Microsecond))
}

// countScheduler bumps the per-scheduler request counter under its mutex.
func (s *Server) countScheduler(name string) {
	s.schedMu.Lock()
	s.schedReqs[name]++
	s.schedMu.Unlock()
}

// runSchedule is the cache-miss path: resolve bottom levels from the
// instance memo, run the requested heuristic through the scheduler
// registry, and serialize the response.
func (s *Server) runSchedule(req *ScheduleRequest) ([]byte, error) {
	g, p, cm := req.Graph, req.Platform, req.Costs
	var rng *rand.Rand
	if req.Seed != 0 {
		rng = rand.New(rand.NewSource(req.Seed))
	}

	// Static bottom levels depend only on the instance, and every
	// registered scheduler derives its priorities from them, so cache-miss
	// requests for the same DAG under different ε, seed or scheduler share
	// one computation (RunOptions.BottomLevels is read-only to the
	// schedulers, which is what makes sharing race-free).
	var bl []float64
	ifp := InstanceFingerprint(g, p, cm)
	if v, ok := s.blCache.Get(ifp); ok {
		bl = v.([]float64)
	} else {
		var err error
		bl, err = sched.AvgBottomLevels(g, cm, p)
		if err != nil {
			return nil, err
		}
		s.blCache.Put(ifp, bl)
	}
	schedule, err := sched.Run(req.Scheduler, g, p, cm, sched.RunOptions{
		Epsilon:      req.Epsilon,
		Rng:          rng,
		BottomLevels: bl,
		Policy:       req.Policy,
	})
	if err != nil {
		return nil, err
	}
	if err := schedule.Validate(); err != nil {
		return nil, fmt.Errorf("generated schedule failed validation: %w", err)
	}
	return buildResponse(req, schedule)
}

// buildResponse turns a validated schedule into the serialized response.
func buildResponse(req *ScheduleRequest, schedule *sched.Schedule) ([]byte, error) {
	m, err := schedule.ComputeMetrics()
	if err != nil {
		return nil, err
	}
	resp := &ScheduleResponse{
		Scheduler:  schedule.Algorithm,
		Epsilon:    schedule.Epsilon,
		Tasks:      req.Graph.NumTasks(),
		Procs:      req.Platform.NumProcs(),
		Pattern:    schedule.CommPattern.String(),
		LowerBound: schedule.LowerBound(),
		UpperBound: schedule.UpperBound(),
		Messages:   schedule.MessageCount(),
		Metrics: ResponseMetrics{
			TotalWork:         m.TotalWork,
			Replicas:          m.Replicas,
			ReplicationFactor: m.ReplicationFactor,
			CommVolume:        m.CommVolume,
			Horizon:           m.Horizon,
			MeanUtilization:   m.MeanUtilization,
			MinUtilization:    m.MinUtilization,
			MaxUtilization:    m.MaxUtilization,
		},
	}
	if req.Lambda > 0 {
		mission := schedule.UpperBound()
		surv, err := reliability.SurvivalLowerBound(
			reliability.Exponential{Lambda: req.Lambda},
			req.Platform.NumProcs(), schedule.Epsilon, mission)
		if err != nil {
			return nil, err
		}
		resp.Reliability = &ResponseReliability{
			Lambda:             req.Lambda,
			Mission:            mission,
			SurvivalLowerBound: surv,
		}
	}
	if req.IncludeSchedule {
		var indented bytes.Buffer
		if _, err := schedule.WriteTo(&indented); err != nil {
			return nil, err
		}
		var compact bytes.Buffer
		if err := json.Compact(&compact, indented.Bytes()); err != nil {
			return nil, err
		}
		resp.Schedule = json.RawMessage(compact.Bytes())
	}
	if req.IncludeGantt {
		timelines := schedule.ProcTimelines()
		resp.Gantt = make([]ProcTimeline, len(timelines))
		for proc, line := range timelines {
			row := ProcTimeline{Proc: platform.ProcID(proc), Spans: make([]GanttSpan, 0, len(line))}
			for _, r := range line {
				row.Spans = append(row.Spans, GanttSpan{
					Task: r.Task, Copy: r.Copy,
					StartMin: r.StartMin, FinishMin: r.FinishMin,
					StartMax: r.StartMax, FinishMax: r.FinishMax,
				})
			}
			resp.Gantt[proc] = row
		}
	}
	return marshalResponse(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// Stats is the body of GET /stats.
type Stats struct {
	// Requests counts /schedule requests received, including rejected and
	// malformed ones.
	Requests uint64 `json:"requests"`
	// CacheHits and CacheMisses count served schedules by path; HitRate is
	// hits/(hits+misses), 0 before any schedule is served.
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRate     float64 `json:"hit_rate"`
	// CacheEntries is the current response-cache population.
	CacheEntries int `json:"cache_entries"`
	// SchedulerRequests counts well-formed /schedule requests by canonical
	// registry scheduler name (hits and misses alike). Schedulers never
	// requested are absent.
	SchedulerRequests map[string]uint64 `json:"scheduler_requests"`
	// Rejected counts 429s (queue full); ClientErrors counts 4xx;
	// InternalErrors counts all 5xx, including 503s during shutdown.
	Rejected       uint64 `json:"rejected"`
	ClientErrors   uint64 `json:"client_errors"`
	InternalErrors uint64 `json:"internal_errors"`
	// Queue and worker occupancy at the time of the call.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	Workers       int `json:"workers"`
	// LatencyMs summarizes recent successful /schedule round trips
	// (decode through response write), hits and misses alike.
	LatencyMs LatencyStats `json:"latency_ms"`
}

// LatencyStats reports quantiles over the recent-latency window.
type LatencyStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.hits.Load(), s.misses.Load()
	s.schedMu.Lock()
	bySched := make(map[string]uint64, len(s.schedReqs))
	for name, n := range s.schedReqs {
		bySched[name] = n
	}
	s.schedMu.Unlock()
	st := Stats{
		Requests:          s.requests.Load(),
		CacheHits:         hits,
		CacheMisses:       misses,
		CacheEntries:      s.cache.Len(),
		SchedulerRequests: bySched,
		Rejected:          s.rejected.Load(),
		ClientErrors:      s.clientErrors.Load(),
		InternalErrors:    s.internalErrors.Load(),
		QueueDepth:        s.pool.QueueDepth(),
		QueueCapacity:     s.pool.QueueCapacity(),
		Workers:           s.pool.Workers(),
	}
	if hits+misses > 0 {
		st.HitRate = float64(hits) / float64(hits+misses)
	}
	s.latMu.Lock()
	st.LatencyMs = LatencyStats{
		Count: s.lat.Total(),
		Mean:  s.lat.Mean(),
		P50:   s.lat.Quantile(0.5),
		P99:   s.lat.Quantile(0.99),
		Max:   s.lat.Quantile(1),
	}
	s.latMu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}
