package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftsched/internal/sim"
)

func testMissionRequest(t *testing.T) *MissionRequest {
	t.Helper()
	return &MissionRequest{
		ScheduleRequest: *testRequest(t),
		Scenario:        sim.ScenarioSpec{Kind: "uniform", Crashes: 1},
		ScenarioSeed:    5,
	}
}

// doServer replays one request directly against a Server (no listener).
func doServer(s *Server, method, path string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, path, bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, r)
	return rec
}

// awaitMissionDone polls GET /missions/{id} until the mission leaves the
// running state, returning the final report bytes.
func awaitMissionDone(t *testing.T, s *Server, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := doServer(s, http.MethodGet, "/missions/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /missions/%s: %d %s", id, rec.Code, rec.Body.String())
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != MissionRunning {
			return rec.Body.Bytes()
		}
		if time.Now().After(deadline) {
			t.Fatalf("mission %s still running after 30s", id)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMissionLifecycle covers the async contract end to end: 202 + id on
// create, poll to completion, JSONL event stream, idempotent re-POST as a
// cache hit — and the stats discipline (mission reads are uncounted polls;
// the conservation invariant covers the POSTs).
func TestMissionLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	t.Cleanup(s.Close)
	body := marshalJSON(t, testMissionRequest(t))

	rec := doServer(s, http.MethodPost, "/missions", body)
	if rec.Code != http.StatusAccepted || rec.Header().Get(CacheStatusHeader) != "miss" {
		t.Fatalf("POST /missions: %d cache=%q %s", rec.Code, rec.Header().Get(CacheStatusHeader), rec.Body.String())
	}
	var acc struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if len(acc.ID) != 32 || acc.State != "accepted" {
		t.Fatalf("accepted body: %s", rec.Body.String())
	}

	reportBytes := awaitMissionDone(t, s, acc.ID)
	var report MissionReport
	if err := json.Unmarshal(reportBytes, &report); err != nil {
		t.Fatal(err)
	}
	if report.ID != acc.ID || report.State != MissionDone {
		t.Fatalf("final report: %s", reportBytes)
	}
	if report.Outcome == nil || report.Scheduler == "" || report.MissionPolicy != "reschedule" {
		t.Fatalf("report missing fields: %s", reportBytes)
	}
	if report.LowerBound <= 0 || report.UpperBound < report.LowerBound {
		t.Fatalf("report bounds: %s", reportBytes)
	}

	ev := doServer(s, http.MethodGet, "/missions/"+acc.ID+"/events", nil)
	if ev.Code != http.StatusOK || ev.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("GET events: %d %q", ev.Code, ev.Header().Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSuffix(ev.Body.String(), "\n"), "\n")
	if len(lines) != report.Outcome.Events {
		t.Fatalf("event stream has %d lines, outcome reports %d", len(lines), report.Outcome.Events)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("event line %d is not JSON: %q", i, line)
		}
	}

	// Idempotent re-POST: same id, a cache hit, byte-identical body.
	re := doServer(s, http.MethodPost, "/missions", body)
	if re.Code != http.StatusAccepted || re.Header().Get(CacheStatusHeader) != "hit" {
		t.Fatalf("re-POST: %d cache=%q", re.Code, re.Header().Get(CacheStatusHeader))
	}
	if !bytes.Equal(re.Body.Bytes(), rec.Body.Bytes()) {
		t.Fatalf("re-POST body differs: %s vs %s", re.Body.Bytes(), rec.Body.Bytes())
	}

	// Stats: two counted requests (the POSTs; polls and event reads are
	// free), one miss + one hit, one retained mission, and conservation.
	var st Stats
	stRec := doServer(s, http.MethodGet, "/stats", nil)
	if err := json.Unmarshal(stRec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.MissionRequests != 2 || st.Missions != 1 {
		t.Fatalf("stats: requests %d mission_requests %d missions %d, want 2/2/1",
			st.Requests, st.MissionRequests, st.Missions)
	}
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Fatalf("stats: misses %d hits %d, want 1/1", st.CacheMisses, st.CacheHits)
	}
	if sum := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors + st.CancelledRequests; sum != st.Requests {
		t.Fatalf("conservation violated: %d != %d", sum, st.Requests)
	}
}

// Equal requests produce byte-identical reports and event logs on servers
// with different worker counts — the mission analogue of the /evaluate
// determinism guarantee.
func TestMissionDeterministicAcrossServers(t *testing.T) {
	body := marshalJSON(t, testMissionRequest(t))
	var wantReport, wantEvents []byte
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: workers})
		rec := doServer(s, http.MethodPost, "/missions", body)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("workers=%d: POST %d", workers, rec.Code)
		}
		var acc struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
			t.Fatal(err)
		}
		report := awaitMissionDone(t, s, acc.ID)
		events := doServer(s, http.MethodGet, "/missions/"+acc.ID+"/events", nil).Body.Bytes()
		if wantReport == nil {
			wantReport, wantEvents = report, events
		} else {
			if !bytes.Equal(report, wantReport) {
				t.Fatalf("workers=%d: report differs:\n%s\nvs\n%s", workers, report, wantReport)
			}
			if !bytes.Equal(events, wantEvents) {
				t.Fatalf("workers=%d: event log differs:\n%s\nvs\n%s", workers, events, wantEvents)
			}
		}
		s.Close()
	}
}

// Door validation: every malformed mission request dies with a counted 400,
// and the read endpoints reject malformed/unknown ids without counting.
func TestMissionValidation(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)

	bad := map[string][]byte{
		"not json":       []byte(`{"graph": nope`),
		"unknown field":  []byte(`{"surprise": 1}`),
		"include_gantt":  marshalJSON(t, func() *MissionRequest { r := testMissionRequest(t); r.IncludeGantt = true; return r }()),
		"lambda":         marshalJSON(t, func() *MissionRequest { r := testMissionRequest(t); r.Lambda = 0.1; return r }()),
		"unknown policy": marshalJSON(t, func() *MissionRequest { r := testMissionRequest(t); r.MissionPolicy = "hope"; return r }()),
		"bad scenario": marshalJSON(t, func() *MissionRequest {
			r := testMissionRequest(t)
			r.Scenario = sim.ScenarioSpec{Kind: "vibes"}
			return r
		}()),
	}
	for name, body := range bad {
		if rec := doServer(s, http.MethodPost, "/missions", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400 (%s)", name, rec.Code, rec.Body.String())
		}
	}
	var st Stats
	if err := json.Unmarshal(doServer(s, http.MethodGet, "/stats", nil).Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != uint64(len(bad)) || st.ClientErrors != uint64(len(bad)) {
		t.Fatalf("stats after rejects: requests %d client_errors %d, want %d each", st.Requests, st.ClientErrors, len(bad))
	}

	if rec := doServer(s, http.MethodGet, "/missions/zz", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: %d", rec.Code)
	}
	if rec := doServer(s, http.MethodGet, "/missions/0123456789abcdef0123456789abcdef", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d", rec.Code)
	}
	var st2 Stats
	if err := json.Unmarshal(doServer(s, http.MethodGet, "/stats", nil).Body.Bytes(), &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Requests != st.Requests || st2.ClientErrors != st.ClientErrors {
		t.Fatal("mission reads must not move the request counters")
	}
}

// Capacity: with every retained mission still running, a new mission is
// refused 429; once one finishes, it is evicted to admit the newcomer, whose
// id then 404s.
func TestMissionCapacityEviction(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 16, MaxMissions: 1})
	t.Cleanup(s.Close)
	release := occupyWorkers(t, s)

	reqA := testMissionRequest(t)
	bodyA := marshalJSON(t, reqA)
	reqB := testMissionRequest(t)
	reqB.ScenarioSeed = 99
	bodyB := marshalJSON(t, reqB)

	recA := doServer(s, http.MethodPost, "/missions", bodyA)
	if recA.Code != http.StatusAccepted {
		t.Fatalf("POST A: %d", recA.Code)
	}
	var accA struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(recA.Body.Bytes(), &accA); err != nil {
		t.Fatal(err)
	}

	// A is queued behind the blocked worker, so it is running and cannot be
	// evicted: B must be refused with a Retry-After.
	recB := doServer(s, http.MethodPost, "/missions", bodyB)
	if recB.Code != http.StatusTooManyRequests || recB.Header().Get("Retry-After") == "" {
		t.Fatalf("POST B while full of running missions: %d", recB.Code)
	}
	// Re-POST of A is still an idempotent hit, not a capacity error.
	if rec := doServer(s, http.MethodPost, "/missions", bodyA); rec.Code != http.StatusAccepted || rec.Header().Get(CacheStatusHeader) != "hit" {
		t.Fatalf("re-POST A: %d cache=%q", rec.Code, rec.Header().Get(CacheStatusHeader))
	}

	release()
	awaitMissionDone(t, s, accA.ID)

	// Now A is finished: B evicts it.
	recB = doServer(s, http.MethodPost, "/missions", bodyB)
	if recB.Code != http.StatusAccepted || recB.Header().Get(CacheStatusHeader) != "miss" {
		t.Fatalf("POST B after A finished: %d cache=%q %s", recB.Code, recB.Header().Get(CacheStatusHeader), recB.Body.String())
	}
	if rec := doServer(s, http.MethodGet, "/missions/"+accA.ID, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("GET evicted mission: %d", rec.Code)
	}
	var accB struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(recB.Body.Bytes(), &accB); err != nil {
		t.Fatal(err)
	}
	awaitMissionDone(t, s, accB.ID)
}

// The /evaluate policy mode: policies score on the same scenario draws, the
// static policy is bit-identical to the classic Eval section, and the whole
// response stays deterministic and cacheable.
func TestEvaluatePolicies(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := testEvaluateRequest(t)
	req.Scheduler = "mcftsa"
	req.Trials = 60
	req.Scenario = sim.ScenarioSpec{Kind: "uniform", Crashes: 2}
	req.Policies = []string{"static", "reschedule"}
	body := marshalJSON(t, req)

	resp, data := postJSON(t, ts.URL+"/evaluate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /evaluate: %d %s", resp.StatusCode, data)
	}
	var er EvaluateResponse
	if err := json.Unmarshal(data, &er); err != nil {
		t.Fatal(err)
	}
	if len(er.PolicyEval) != 2 || er.PolicyEval[0].Policy != "static" || er.PolicyEval[1].Policy != "reschedule" {
		t.Fatalf("policy_eval: %+v", er.PolicyEval)
	}
	staticBlob := marshalJSON(t, er.PolicyEval[0].Eval)
	evalBlob := marshalJSON(t, er.Eval)
	if !bytes.Equal(staticBlob, evalBlob) {
		t.Fatalf("static policy eval diverges from the classic eval:\n%s\nvs\n%s", staticBlob, evalBlob)
	}
	if rr, rs := er.PolicyEval[1].Eval.SuccessRate, er.PolicyEval[0].Eval.SuccessRate; rr < rs {
		t.Fatalf("re-scheduling success %.3f < static %.3f on the same draws", rr, rs)
	}

	// Cacheable: the repeat is a byte-identical hit.
	resp2, data2 := postJSON(t, ts.URL+"/evaluate", body)
	if resp2.Header.Get(CacheStatusHeader) != "hit" || !bytes.Equal(data, data2) {
		t.Fatalf("repeat policy evaluate: cache=%q, equal=%v", resp2.Header.Get(CacheStatusHeader), bytes.Equal(data, data2))
	}

	// The same request without policies keeps its own (distinct) cache entry
	// and omits the section entirely.
	req.Policies = nil
	resp3, data3 := postJSON(t, ts.URL+"/evaluate", marshalJSON(t, req))
	if resp3.StatusCode != http.StatusOK || resp3.Header.Get(CacheStatusHeader) != "miss" {
		t.Fatalf("plain evaluate after policy evaluate: %d cache=%q", resp3.StatusCode, resp3.Header.Get(CacheStatusHeader))
	}
	if bytes.Contains(data3, []byte("policy_eval")) {
		t.Fatalf("plain evaluate leaked policy_eval: %s", data3)
	}

	// Policy validation errors are 400s.
	req.Policies = []string{"optimistic"}
	if resp, data := postJSON(t, ts.URL+"/evaluate", marshalJSON(t, req)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown policy: %d %s", resp.StatusCode, data)
	}
	req.Policies = []string{"static", "static"}
	if resp, data := postJSON(t, ts.URL+"/evaluate", marshalJSON(t, req)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate policy: %d %s", resp.StatusCode, data)
	}
}
