package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// BatchRequest is the body of POST /schedule/batch: one instance (graph,
// platform, costs — the same wire shapes as /schedule) scheduled under many
// parameter sets. The instance is decoded and validated once, and every
// cache-missing item is computed inside a single worker job, so the whole
// batch shares one admission slot and one bottom-level memo entry.
type BatchRequest struct {
	Graph    *dag.Graph          `json:"graph"`
	Platform *platform.Platform  `json:"platform"`
	Costs    *platform.CostModel `json:"costs"`
	// Requests is the parameter set per item; each combines with the shared
	// instance into a full /schedule request. Must be non-empty.
	Requests []BatchItem `json:"requests"`

	// items is the expansion into full ScheduleRequests, populated by
	// Validate (all sharing the envelope's instance pointers).
	items []*ScheduleRequest
}

// BatchItem is the per-item parameter set of a batch: exactly the
// /schedule fields that are not part of the instance.
type BatchItem struct {
	Scheduler       string  `json:"scheduler"`
	Epsilon         int     `json:"epsilon"`
	Policy          string  `json:"policy,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	Lambda          float64 `json:"lambda,omitempty"`
	IncludeGantt    bool    `json:"include_gantt,omitempty"`
	IncludeSchedule bool    `json:"include_schedule,omitempty"`
}

// BatchResponse is the body of a successful POST /schedule/batch. Items
// appear in request order; each item's response field is byte-identical
// (modulo JSON re-compaction of the trailing newline) to what a standalone
// /schedule for the same parameters returns.
type BatchResponse struct {
	Count       int               `json:"count"`
	CacheHits   int               `json:"cache_hits"`
	CacheMisses int               `json:"cache_misses"`
	Items       []BatchItemResult `json:"items"`
}

// BatchItemResult is one item's outcome: how it was served and the full
// /schedule response body.
type BatchItemResult struct {
	Cache    string          `json:"cache"` // "hit" or "miss"
	Response json.RawMessage `json:"response"`
}

// DecodeBatchRequest reads and validates one batch body with the same
// strictness as DecodeScheduleRequest (unknown fields and trailing documents
// rejected). On success every item has passed full /schedule validation and
// Items returns the expansion.
func DecodeBatchRequest(r io.Reader) (*BatchRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate cross-checks the envelope and expands each item into a full
// ScheduleRequest, running /schedule's own validation on every one. The
// first invalid item fails the whole batch — partial results would make the
// response shape (and the conservation counters) ambiguous.
func (req *BatchRequest) Validate() error {
	if len(req.Requests) == 0 {
		return fmt.Errorf("batch carries no requests")
	}
	req.items = make([]*ScheduleRequest, len(req.Requests))
	for i, it := range req.Requests {
		sr := &ScheduleRequest{
			Graph:           req.Graph,
			Platform:        req.Platform,
			Costs:           req.Costs,
			Scheduler:       it.Scheduler,
			Epsilon:         it.Epsilon,
			Policy:          it.Policy,
			Seed:            it.Seed,
			Lambda:          it.Lambda,
			IncludeGantt:    it.IncludeGantt,
			IncludeSchedule: it.IncludeSchedule,
		}
		if err := sr.Validate(); err != nil {
			return fmt.Errorf("requests[%d]: %w", i, err)
		}
		req.items[i] = sr
	}
	return nil
}

// NumTasks reports the shared instance's task count (0 before validation
// succeeds on a well-formed envelope); it feeds the MaxTasks guard.
func (req *BatchRequest) NumTasks() int {
	if req.Graph == nil {
		return 0
	}
	return req.Graph.NumTasks()
}

// Items returns the batch expanded into full /schedule requests, in request
// order. Populated by Validate (so always set after DecodeBatchRequest).
func (req *BatchRequest) Items() []*ScheduleRequest { return req.items }

// handleBatch serves POST /schedule/batch. Counter discipline: a malformed
// or over-limit envelope counts as ONE request ending in one client error;
// a well-formed envelope counts as len(items) logical requests, every one
// of which ends in exactly one of cache_hits, cache_misses, client_errors
// (429 rejections) or internal_errors — so the /stats conservation
// invariant holds exactly whether traffic is batched or not.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.batchRequests.Add(1)
	start := time.Now()
	req, ok := decodeRequest(s, w, r, DecodeBatchRequest,
		func(req *BatchRequest) int { return req.NumTasks() })
	if !ok {
		s.requests.Add(1)
		return
	}
	items := req.Items()
	if len(items) > s.cfg.MaxBatchItems {
		s.requests.Add(1)
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch carries %d requests, this server accepts at most %d",
				len(items), s.cfg.MaxBatchItems))
		return
	}

	// The envelope is now len(items) logical requests.
	s.requests.Add(uint64(len(items)))
	s.batchItems.Add(uint64(len(items)))
	seen := make(map[string]bool)
	for _, it := range items {
		if name := it.canonicalScheduler(); !seen[name] {
			seen[name] = true
			s.countScheduler(name)
		}
	}

	// Serve phase 1: resolve what the cache already holds. Misses are
	// collected per distinct fingerprint so repeated items cost one
	// computation.
	fps := make([]Fingerprint, len(items))
	bodies := make([][]byte, len(items))
	needed := 0
	for i, it := range items {
		fps[i] = RequestFingerprint(it)
		if v, hit := s.cache.Get(fps[i]); hit {
			bodies[i] = v.([]byte)
		} else if _, dup := firstMissIndex(fps, bodies, i); !dup {
			needed++
		}
	}

	// Serve phase 2: compute every distinct missing fingerprint in ONE pool
	// job — the batch holds one admission slot, and because all items share
	// one instance, the whole job shares one bottom-level memo entry. The
	// counters for the batch's requests are committed only on a terminal
	// outcome, never partially.
	computed := make(map[Fingerprint][]byte, needed)
	if needed > 0 {
		done := make(chan error, 1)
		submitErr := s.pool.TrySubmit(func() {
			done <- func() error {
				for i, it := range items {
					if bodies[i] != nil || computed[fps[i]] != nil {
						continue
					}
					body, err := s.schedule(it)
					if err != nil {
						return fmt.Errorf("requests[%d]: scheduling failed: %w", i, err)
					}
					computed[fps[i]] = body
				}
				return nil
			}()
		})
		switch submitErr {
		case nil:
		case ErrBusy:
			// All len(items) requests are rejected; writeError adds the final
			// client error, the other len-1 are added here.
			s.rejected.Add(uint64(len(items)))
			s.clientErrors.Add(uint64(len(items)) - 1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, ErrBusy)
			return
		default: // ErrClosed during shutdown
			s.internalErrors.Add(uint64(len(items)) - 1)
			s.writeError(w, http.StatusServiceUnavailable, submitErr)
			return
		}
		if err := <-done; err != nil {
			// One failed item fails the batch: all its requests end as
			// internal errors (writeError adds the last one).
			s.internalErrors.Add(uint64(len(items)) - 1)
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
	}

	// Assemble: the first service of a computed fingerprint is the miss;
	// repeats within the batch are hits that shared the computation (the
	// batch-local form of singleflight). Counters commit only after the
	// response marshals, so the terminal outcome is all-hits-and-misses or
	// all-internal-errors, never a mix.
	resp := &BatchResponse{Count: len(items), Items: make([]BatchItemResult, len(items))}
	counted := make(map[Fingerprint]bool, len(computed))
	var shared uint64
	for i := range items {
		status := "hit"
		if bodies[i] == nil {
			bodies[i] = computed[fps[i]]
			if !counted[fps[i]] {
				counted[fps[i]] = true
				status = "miss"
				resp.CacheMisses++
			} else {
				shared++
				resp.CacheHits++
			}
		} else {
			resp.CacheHits++
		}
		resp.Items[i] = BatchItemResult{Cache: status, Response: json.RawMessage(bodies[i])}
	}
	body, err := marshalBatchResponse(resp)
	if err != nil {
		s.internalErrors.Add(uint64(len(items)) - 1)
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	for fp, b := range computed {
		s.cache.Put(fp, b)
	}
	s.hits.Add(uint64(resp.CacheHits))
	s.misses.Add(uint64(resp.CacheMisses))
	s.singleflightShared.Add(shared)
	status := "miss"
	if resp.CacheMisses == 0 {
		status = "hit"
	}
	s.writeCachedResponse(w, body, status)
	s.observeLatency(start)
	s.logRequest(r, "/schedule/batch",
		fmt.Sprintf("items=%d tasks=%d procs=%d", len(items), req.Graph.NumTasks(), req.Platform.NumProcs()),
		status, start)
}

// firstMissIndex reports whether fps[i] already appeared as a miss at an
// earlier index (bodies[j] == nil marks index j as missing).
func firstMissIndex(fps []Fingerprint, bodies [][]byte, i int) (int, bool) {
	for j := 0; j < i; j++ {
		if bodies[j] == nil && fps[j] == fps[i] {
			return j, true
		}
	}
	return -1, false
}

// marshalBatchResponse serializes the batch response with the same
// determinism discipline as marshalResponse. Embedded RawMessage item bodies
// are re-compacted by the encoder, which strips their trailing newline — the
// only byte-level difference from the standalone /schedule bodies.
func marshalBatchResponse(resp *BatchResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
