package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"ftsched/internal/sim"
	"ftsched/internal/trace"
)

func TestScenariosEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{})
	var out ScenariosResponse
	getJSON(t, ts.URL+"/scenarios", &out)
	names := make([]string, 0, len(out.Kinds))
	for _, k := range out.Kinds {
		names = append(names, k.Name)
		if k.Summary == "" || k.FlagForm == "" || len(k.Params) == 0 {
			t.Errorf("kind %q is missing documentation: %+v", k.Name, k)
		}
	}
	want := sim.ScenarioKindNames()
	if len(names) != len(want) {
		t.Fatalf("served kinds %v, registry has %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("served order %v, registry order %v", names, want)
		}
	}
	// /scenarios is an uncounted read, like /stats: it must not disturb the
	// requests == hits+misses+errors+cancelled conservation invariant.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 0 {
		t.Fatalf("GET /scenarios counted toward requests: %d", st.Requests)
	}
	// The endpoint is a GET; POST must 405 like the other read-only routes.
	resp, err := http.Post(ts.URL+"/scenarios", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /scenarios = %d, want 405", resp.StatusCode)
	}
}

func TestScenarioKindTableListsEveryKind(t *testing.T) {
	table := ScenarioKindTable()
	for _, k := range sim.ScenarioKindRegs() {
		if !strings.Contains(table, "`"+k.FlagForm+"`") {
			t.Errorf("table is missing kind %q (flag form %q):\n%s", k.Name, k.FlagForm, table)
		}
	}
	if !strings.Contains(table, "alias exponential") {
		t.Errorf("table does not surface the exp alias:\n%s", table)
	}
}

// A trace scenario serves end to end through /evaluate: events inline on the
// wire, no filesystem involved, byte-identical across servers.
func TestEvaluateTraceScenario(t *testing.T) {
	_, ts1 := startServer(t, Config{})
	_, ts2 := startServer(t, Config{})
	req := testEvaluateRequest(t)
	req.Scenario = sim.ScenarioSpec{Kind: "trace", Trace: &sim.TraceSpec{
		Events:   []trace.Event{{Proc: 0, Time: 0}, {Proc: 2, Time: 5, Group: "rack"}},
		Resample: true,
	}}
	body := marshalJSON(t, req)
	resp, data1 := postEvaluate(t, ts1.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data1)
	}
	var out EvaluateResponse
	if err := json.Unmarshal(data1, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.Scenario, "trace:2ev#") {
		t.Fatalf("scenario echoed as %q, want a trace content digest", out.Scenario)
	}
	if out.Eval.Trials != req.Trials {
		t.Fatalf("eval ran %d trials, want %d", out.Eval.Trials, req.Trials)
	}
	_, data2 := postEvaluate(t, ts2.URL, body)
	if string(data1) != string(data2) {
		t.Fatalf("two fresh servers disagree on a trace evaluation:\n%s\nvs\n%s", data1, data2)
	}
	// A trace naming a processor past the platform is rejected at validation.
	req.Scenario.Trace.Events = append(req.Scenario.Trace.Events, trace.Event{Proc: 99, Time: 1})
	resp, data := postEvaluate(t, ts1.URL, marshalJSON(t, req))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized trace: status %d, want 400 (%s)", resp.StatusCode, data)
	}
}

// Distinct trace contents must not share a cache entry even though the wire
// spec differs only inside the events array.
func TestEvaluateTraceFingerprintSensitivity(t *testing.T) {
	mk := func(at float64) *EvaluateRequest {
		req := testEvaluateRequest(t)
		req.Scenario = sim.ScenarioSpec{Kind: "trace", Trace: &sim.TraceSpec{
			Events: []trace.Event{{Proc: 1, Time: at}},
		}}
		return req
	}
	if EvaluateFingerprint(mk(3)) == EvaluateFingerprint(mk(4)) {
		t.Fatal("distinct trace contents share a fingerprint")
	}
	if EvaluateFingerprint(mk(3)) != EvaluateFingerprint(mk(3)) {
		t.Fatal("equal trace contents disagree on the fingerprint")
	}
}
