package service

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
	"math"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// Fingerprint is a 128-bit FNV-1a digest of a canonical encoding. 128 bits
// (rather than the 64 the campaign checkpoints use) because the response
// cache serves whatever it finds under a key without re-verifying the
// instance, so the collision probability has to stay negligible at
// production request volumes.
type Fingerprint [16]byte

// fingerprinter streams a canonical byte encoding into an FNV-1a hash.
// Every variable-length field is length-prefixed and every section is
// tagged, so distinct structures cannot collide by concatenation.
type fingerprinter struct {
	h   hash.Hash
	buf [8]byte
}

func newFingerprinter() *fingerprinter {
	return &fingerprinter{h: fnv.New128a()}
}

func (f *fingerprinter) u64(v uint64) {
	binary.LittleEndian.PutUint64(f.buf[:], v)
	f.h.Write(f.buf[:])
}

func (f *fingerprinter) i64(v int64) { f.u64(uint64(v)) }

// f64 hashes the exact bit pattern: two costs that differ in the last ulp
// are different instances.
func (f *fingerprinter) f64(v float64) { f.u64(math.Float64bits(v)) }

func (f *fingerprinter) str(s string) {
	f.u64(uint64(len(s)))
	f.h.Write([]byte(s))
}

func (f *fingerprinter) sum() Fingerprint {
	var fp Fingerprint
	f.h.Sum(fp[:0])
	return fp
}

// instance hashes the problem instance: DAG structure and volumes, the cost
// matrix and the delay matrix. The graph's display name is deliberately
// excluded — it affects neither the schedule nor any response field, so
// instances differing only in name share cache entries.
func (f *fingerprinter) instance(g *dag.Graph, p *platform.Platform, cm *platform.CostModel) {
	f.str("graph")
	v := g.NumTasks()
	f.u64(uint64(v))
	for t := 0; t < v; t++ {
		succs := g.SortedSuccs(dag.TaskID(t))
		f.u64(uint64(len(succs)))
		for _, a := range succs {
			f.u64(uint64(a.To))
			f.f64(a.Volume)
		}
	}
	f.str("platform")
	m := p.NumProcs()
	f.u64(uint64(m))
	for k := 0; k < m; k++ {
		for h := 0; h < m; h++ {
			f.f64(p.Delay(platform.ProcID(k), platform.ProcID(h)))
		}
	}
	f.str("costs")
	for t := 0; t < v; t++ {
		for k := 0; k < m; k++ {
			f.f64(cm.Cost(dag.TaskID(t), platform.ProcID(k)))
		}
	}
}

// InstanceFingerprint digests only the problem instance — the key of the
// bottom-level memo, shared by requests that differ in scheduler, ε, seed
// or response options.
func InstanceFingerprint(g *dag.Graph, p *platform.Platform, cm *platform.CostModel) Fingerprint {
	f := newFingerprinter()
	f.instance(g, p, cm)
	return f.sum()
}

// RequestFingerprint digests everything the response depends on: the
// instance plus scheduler, ε, matching policy, tie-break seed, failure rate
// and the response-shaping options. Two requests with equal fingerprints
// produce byte-identical responses, which is what lets the cache serve
// stored bytes directly.
func RequestFingerprint(req *ScheduleRequest) Fingerprint {
	f := newFingerprinter()
	f.instance(req.Graph, req.Platform, req.Costs)
	f.str("params")
	f.str(req.canonicalScheduler())
	f.i64(int64(req.Epsilon))
	// Canonicalization (canonicalPolicySeed) keeps equivalent requests on
	// one cache entry. Pre-registry fingerprints canonicalized the same way
	// with hard-coded names, so existing cache keys are unchanged.
	policy, seed := req.canonicalPolicySeed()
	f.str(policy)
	f.i64(seed)
	f.f64(req.Lambda)
	var opts uint64
	if req.IncludeGantt {
		opts |= 1
	}
	if req.IncludeSchedule {
		opts |= 2
	}
	f.u64(opts)
	return f.sum()
}
