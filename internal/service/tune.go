package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sim"
	"ftsched/internal/tune"
)

// TuneRequest is the body of POST /tune: a problem instance plus a scoring
// scenario and search budget. The candidate grid is derived server-side from
// the scheduler registry's capability surface (every registered scheduler ×
// the ε ladder × its sweep policies), so a client never has to know which
// schedulers this binary serves. The response is a pure function of the
// request and the registry, so it is fingerprint-cached under the "tune"
// domain exactly like /schedule and /evaluate.
type TuneRequest struct {
	// Graph, Platform and Costs use daggen's wire shapes, like /schedule.
	Graph    *dag.Graph          `json:"graph"`
	Platform *platform.Platform  `json:"platform"`
	Costs    *platform.CostModel `json:"costs"`
	// Scenario is the failure scenario every candidate is scored under.
	Scenario sim.ScenarioSpec `json:"scenario"`
	// Trials is the full-fidelity evaluation budget per candidate (bounded
	// by the server's -max-trials).
	Trials int `json:"trials"`
	// ScreenTrials is the successive-halving screening budget; 0 picks
	// Trials/8 (at least 16), >= Trials disables pruning.
	ScreenTrials int `json:"screen_trials,omitempty"`
	// Target is the success probability the recommendation must meet.
	Target float64 `json:"target"`
	// Epsilons is the ε ladder of the derived grid; empty means the default
	// ladder 1, 2, 5 (entries no scheduler can realize on the platform are
	// skipped, so one ladder serves every platform size; duplicates are
	// rejected).
	Epsilons []int `json:"epsilons,omitempty"`
	// EvalSeed is the base seed of the search; equal seeds reproduce the
	// tuning run bit for bit at any worker count.
	EvalSeed int64 `json:"eval_seed,omitempty"`
	// WorstCase, when present, additionally runs a budgeted adversarial
	// search on every candidate that reaches the full pass, reporting the
	// worst crash pattern found next to each Monte-Carlo score.
	WorstCase *sim.AdversarySpec `json:"worst_case,omitempty"`
	// Robust makes the recommendation optimize the adversarial worst case
	// instead of the Monte-Carlo mean; it requires worst_case.
	Robust bool `json:"robust,omitempty"`

	// cands memoizes the derived candidate grid: the guard, the per-scheduler
	// counters, the fingerprint and the search itself all need it, and one
	// request's lifecycle is sequential, so deriving once is safe and keeps
	// the three call sites structurally incapable of disagreeing.
	cands []tune.Candidate
}

// TuneResponse is the body of a successful POST /tune.
type TuneResponse struct {
	Tasks int `json:"tasks"`
	Procs int `json:"procs"`
	// Result is the tuner's full scorecard: every candidate in grid order,
	// the Pareto frontier of (expected latency, success probability) and the
	// recommended operating point for the requested target.
	Result tune.Result `json:"result"`
}

// DecodeTuneRequest reads and validates one /tune request body with the same
// strictness as the other endpoints (unknown fields rejected, one JSON
// document only).
func DecodeTuneRequest(r io.Reader) (*TuneRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req TuneRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Validate cross-checks the decoded request; tune.Run re-validates the
// assembled spec, so this only has to produce good 400s for the wire-level
// mistakes.
func (req *TuneRequest) Validate() error {
	if req.Graph == nil {
		return fmt.Errorf("missing field %q", "graph")
	}
	if req.Platform == nil {
		return fmt.Errorf("missing field %q", "platform")
	}
	if req.Costs == nil {
		return fmt.Errorf("missing field %q", "costs")
	}
	v, m := req.Graph.NumTasks(), req.Platform.NumProcs()
	if req.Costs.NumTasks() != v {
		return fmt.Errorf("costs cover %d tasks, graph has %d", req.Costs.NumTasks(), v)
	}
	if req.Costs.NumProcs() != m {
		return fmt.Errorf("costs cover %d processors, platform has %d", req.Costs.NumProcs(), m)
	}
	if req.Trials < 1 {
		return fmt.Errorf("need trials >= 1, got %d", req.Trials)
	}
	if req.ScreenTrials < 0 {
		return fmt.Errorf("need screen_trials >= 0, got %d", req.ScreenTrials)
	}
	if req.Target < 0 || req.Target > 1 {
		return fmt.Errorf("target must be a probability in [0, 1], got %g", req.Target)
	}
	// Ladder entries no scheduler can realize on the platform are skipped by
	// DeriveCandidates (one ladder serves every platform size), but
	// duplicates would derive duplicate candidates — a client mistake worth
	// a 400, not a deep search error.
	seen := make(map[int]bool, len(req.Epsilons))
	for _, eps := range req.Epsilons {
		if eps < 0 {
			return fmt.Errorf("epsilons must be >= 0, got %d", eps)
		}
		if seen[eps] {
			return fmt.Errorf("epsilons has duplicate entry %d", eps)
		}
		seen[eps] = true
	}
	gen, err := req.Scenario.Generator()
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := gen.Check(m); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if req.WorstCase != nil {
		if err := req.WorstCase.Validate(); err != nil {
			return fmt.Errorf("worst_case: %w", err)
		}
	} else if req.Robust {
		return fmt.Errorf("robust requires worst_case")
	}
	return nil
}

// candidates derives the request's candidate grid — the registry surface
// crossed with the ε ladder — memoized on the request (a request's
// lifecycle is sequential: guard, counters, fingerprint, then the search).
func (req *TuneRequest) candidates() []tune.Candidate {
	if req.cands == nil {
		req.cands = tune.DeriveCandidates(req.Platform.NumProcs(), req.Epsilons)
	}
	return req.cands
}

// TuneFingerprint digests everything a /tune response depends on: the
// instance, the derived candidate grid (which pins the registry contents at
// fingerprint time), the scenario and the search budget. The "tune" domain
// tag keeps the keyspace disjoint from /schedule and /evaluate inside the
// shared response cache.
func TuneFingerprint(req *TuneRequest) Fingerprint {
	f := newFingerprinter()
	f.instance(req.Graph, req.Platform, req.Costs)
	f.str("tune")
	cands := req.candidates()
	f.u64(uint64(len(cands)))
	for _, c := range cands {
		f.str(c.Scheduler)
		f.i64(int64(c.Epsilon))
		f.str(c.Policy)
	}
	f.str(req.Scenario.String())
	f.i64(int64(req.Trials))
	f.i64(int64(req.ScreenTrials))
	f.f64(req.Target)
	f.i64(req.EvalSeed)
	// Only a present worst_case (and an enabled robust switch) contribute,
	// so every pre-existing /tune request keeps its cache key.
	if req.WorstCase != nil {
		f.str("worst_case")
		f.str(req.WorstCase.String())
	}
	if req.Robust {
		f.str("robust")
	}
	return f.sum()
}

// runTune is the /tune cache-miss path: resolve the shared bottom levels
// from the instance memo, run the search, serialize. Like /evaluate, the
// search runs single-worker inside the job — request-level parallelism is
// the serving layer's pool — and the result is worker-count independent by
// construction either way.
func (s *Server) runTune(req *TuneRequest) ([]byte, error) {
	bl, err := s.bottomLevels(req.Graph, req.Platform, req.Costs)
	if err != nil {
		return nil, err
	}
	res, err := tune.Run(tune.Spec{
		Graph:        req.Graph,
		Platform:     req.Platform,
		Costs:        req.Costs,
		Candidates:   req.candidates(),
		Scenario:     req.Scenario,
		Trials:       req.Trials,
		ScreenTrials: req.ScreenTrials,
		Target:       req.Target,
		Seed:         req.EvalSeed,
		Workers:      1,
		BottomLevels: bl,
		WorstCase:    req.WorstCase,
		Robust:       req.Robust,
	})
	if err != nil {
		return nil, err
	}
	return marshalTuneResponse(&TuneResponse{
		Tasks:  req.Graph.NumTasks(),
		Procs:  req.Platform.NumProcs(),
		Result: *res,
	})
}

// marshalTuneResponse serializes a response deterministically (compact JSON,
// struct field order) — the property the byte-exact cache relies on.
func marshalTuneResponse(resp *TuneResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
