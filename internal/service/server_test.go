package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ftsched/internal/sched"
)

// startServer spins up a Server behind an httptest listener.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func marshalRequest(t *testing.T, req *ScheduleRequest) []byte {
	t.Helper()
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postSchedule(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleMissThenHit(t *testing.T) {
	_, ts := startServer(t, Config{})
	body := marshalRequest(t, testRequest(t))

	resp1, data1 := postSchedule(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, data1)
	}
	if got := resp1.Header.Get(CacheStatusHeader); got != "miss" {
		t.Fatalf("first request cache status %q, want miss", got)
	}

	resp2, data2 := postSchedule(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, data2)
	}
	if got := resp2.Header.Get(CacheStatusHeader); got != "hit" {
		t.Fatalf("second request cache status %q, want hit", got)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("cache hit returned different bytes:\nmiss: %s\nhit:  %s", data1, data2)
	}

	var out ScheduleResponse
	if err := json.Unmarshal(data1, &out); err != nil {
		t.Fatal(err)
	}
	if out.Scheduler != "FTSA" || out.Epsilon != 1 || out.Tasks != 4 || out.Procs != 3 {
		t.Fatalf("response header fields wrong: %+v", out)
	}
	if out.LowerBound <= 0 || out.UpperBound < out.LowerBound {
		t.Fatalf("implausible bounds: [%g, %g]", out.LowerBound, out.UpperBound)
	}
	if out.Metrics.Replicas != 4*2 {
		t.Fatalf("replicas = %d, want 8 (4 tasks × ε+1)", out.Metrics.Replicas)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("stats hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %g, want 0.5", st.HitRate)
	}
	if st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d, want 1", st.CacheEntries)
	}
	if st.LatencyMs.Count != 2 {
		t.Fatalf("latency count = %d, want 2", st.LatencyMs.Count)
	}
	if st.LatencyMs.P99 < st.LatencyMs.P50 {
		t.Fatalf("p99 %g < p50 %g", st.LatencyMs.P99, st.LatencyMs.P50)
	}
}

// All four schedulers must serve, and the optional response sections must
// round-trip: the embedded schedule re-loads and re-validates against the
// instance via the sched wire format.
func TestScheduleAllSchedulers(t *testing.T) {
	_, ts := startServer(t, Config{})
	for _, tc := range []struct {
		scheduler string
		epsilon   int
		policy    string
		wantAlgo  string
	}{
		{"ftsa", 1, "", "FTSA"},
		{"mcftsa", 1, "bottleneck", "MC-FTSA"},
		{"ftbar", 1, "", "FTBAR"},
		{"heft", 0, "", "HEFT"},
		{"ftsa-ins", 1, "", "FTSA-ins"}, // registry-only variant
		{"FTSA", 2, "", "FTSA"},         // case-insensitive
		{"MC-FTSA", 1, "", "MC-FTSA"},   // registry alias
	} {
		t.Run(tc.scheduler+"-eps"+fmt.Sprint(tc.epsilon), func(t *testing.T) {
			req := testRequest(t)
			req.Scheduler = tc.scheduler
			req.Epsilon = tc.epsilon
			req.Policy = tc.policy
			req.Lambda = 0.001
			req.IncludeGantt = true
			req.IncludeSchedule = true
			resp, data := postSchedule(t, ts.URL, marshalRequest(t, req))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var out ScheduleResponse
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			if out.Scheduler != tc.wantAlgo {
				t.Fatalf("scheduler %q, want %q", out.Scheduler, tc.wantAlgo)
			}
			if out.Reliability == nil {
				t.Fatal("reliability section missing despite lambda > 0")
			}
			if s := out.Reliability.SurvivalLowerBound; s <= 0 || s > 1 {
				t.Fatalf("survival bound %g outside (0,1]", s)
			}
			if len(out.Gantt) != req.Platform.NumProcs() {
				t.Fatalf("gantt rows = %d, want %d", len(out.Gantt), req.Platform.NumProcs())
			}
			spans := 0
			for _, row := range out.Gantt {
				spans += len(row.Spans)
			}
			if spans != out.Metrics.Replicas {
				t.Fatalf("gantt spans = %d, metrics replicas = %d", spans, out.Metrics.Replicas)
			}
			if len(out.Schedule) == 0 {
				t.Fatal("schedule section missing despite include_schedule")
			}
			loaded, err := sched.ReadSchedule(bytes.NewReader(out.Schedule), req.Graph, req.Platform, req.Costs)
			if err != nil {
				t.Fatalf("embedded schedule does not round-trip: %v", err)
			}
			if loaded.LowerBound() != out.LowerBound || loaded.UpperBound() != out.UpperBound {
				t.Fatalf("round-tripped bounds [%g,%g] != response [%g,%g]",
					loaded.LowerBound(), loaded.UpperBound(), out.LowerBound, out.UpperBound)
			}
		})
	}
}

// The race-clean concurrency requirement: two waves of 64 parallel requests
// over 8 distinct problems. Wave two is guaranteed all-hits, and every
// response for one problem must be byte-identical regardless of path.
func TestScheduleConcurrent(t *testing.T) {
	_, ts := startServer(t, Config{Queue: 256})

	const distinct = 8
	const parallel = 64
	bodies := make([][]byte, distinct)
	for i := range bodies {
		req := testRequest(t)
		req.Epsilon = i%2 + 1
		req.Seed = int64(i/2 + 1)
		bodies[i] = marshalRequest(t, req)
	}

	responses := make([][]byte, 2*parallel)
	runWave := func(wave int) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make(chan error, parallel)
		for i := 0; i < parallel; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, data := postSchedule(t, ts.URL, bodies[i%distinct])
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
					return
				}
				responses[wave*parallel+i] = data
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	runWave(0)
	runWave(1)

	// Byte-identical per problem, across both waves (hit and miss paths).
	for i := 0; i < 2*parallel; i++ {
		want := responses[i%distinct]
		if !bytes.Equal(responses[i], want) {
			t.Fatalf("response %d differs from response %d for the same problem", i, i%distinct)
		}
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheHits == 0 {
		t.Fatal("no cache hits after repeated identical requests")
	}
	if st.CacheHits+st.CacheMisses != 2*parallel {
		t.Fatalf("hits+misses = %d, want %d", st.CacheHits+st.CacheMisses, 2*parallel)
	}
	// Wave two alone guarantees ≥ half the traffic hits.
	if st.HitRate < 0.5 {
		t.Fatalf("hit rate %g < 0.5", st.HitRate)
	}
}

func TestScheduleMalformedReturns400(t *testing.T) {
	_, ts := startServer(t, Config{})
	for name, body := range map[string]string{
		"empty":         "",
		"not json":      "epsilon=1",
		"truncated":     `{"graph": {"name":`,
		"wrong types":   `{"graph": 7, "platform": [], "costs": "x", "scheduler": 1}`,
		"missing graph": `{"scheduler": "ftsa", "epsilon": 1}`,
	} {
		t.Run(name, func(t *testing.T) {
			resp, data := postSchedule(t, ts.URL, []byte(body))
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
			}
			var e ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", data)
			}
			if e.Error == "" {
				t.Fatal("error body has an empty message")
			}
		})
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.ClientErrors != 5 {
		t.Fatalf("client errors = %d, want 5", st.ClientErrors)
	}
}

// An unknown scheduler must be rejected with a 400 whose message enumerates
// the registry — the client sees exactly which names this binary serves.
func TestScheduleUnknownSchedulerListsRegistry(t *testing.T) {
	_, ts := startServer(t, Config{})
	req := testRequest(t)
	req.Scheduler = "slurm"
	resp, data := postSchedule(t, ts.URL, marshalRequest(t, req))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not JSON: %s", data)
	}
	for _, name := range sched.Names() {
		if !strings.Contains(e.Error, name) {
			t.Errorf("400 body %q does not list registered scheduler %q", e.Error, name)
		}
	}
}

// GET /stats must attribute requests to schedulers by canonical registry
// name, counting hits and misses alike and folding aliases together.
func TestStatsPerScheduler(t *testing.T) {
	_, ts := startServer(t, Config{})
	post := func(scheduler string, eps int) {
		t.Helper()
		req := testRequest(t)
		req.Scheduler = scheduler
		req.Epsilon = eps
		resp, data := postSchedule(t, ts.URL, marshalRequest(t, req))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", scheduler, resp.StatusCode, data)
		}
	}
	post("ftsa", 1)
	post("FTSA", 1) // cache hit, same canonical name
	post("mc-ftsa", 1)
	post("MC-FTSA", 1) // alias, folds into mcftsa
	post("ftsa-ins", 1)
	post("heft", 0)

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	want := map[string]uint64{"ftsa": 2, "mcftsa": 2, "ftsa-ins": 1, "heft": 1}
	for name, n := range want {
		if st.SchedulerRequests[name] != n {
			t.Errorf("scheduler_requests[%q] = %d, want %d (all: %v)",
				name, st.SchedulerRequests[name], n, st.SchedulerRequests)
		}
	}
	if _, ok := st.SchedulerRequests["ftbar"]; ok {
		t.Errorf("scheduler_requests contains never-requested ftbar: %v", st.SchedulerRequests)
	}
}

func TestScheduleMethodNotAllowed(t *testing.T) {
	_, ts := startServer(t, Config{})
	resp, err := http.Get(ts.URL + "/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /schedule = %d, want 405", resp.StatusCode)
	}
}

func TestScheduleBodyTooLarge(t *testing.T) {
	_, ts := startServer(t, Config{MaxBodyBytes: 64})
	resp, _ := postSchedule(t, ts.URL, marshalRequest(t, testRequest(t)))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestScheduleMaxTasks(t *testing.T) {
	_, ts := startServer(t, Config{MaxTasks: 2})
	resp, data := postSchedule(t, ts.URL, marshalRequest(t, testRequest(t)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("unhelpful error body: %s", data)
	}
}

// Saturate a 1-worker/1-slot server with a blocking scheduler stub: the
// third concurrent request must shed with 429 instead of queuing unbounded.
func TestScheduleBackpressure429(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	srv.schedule = func(req *ScheduleRequest) ([]byte, error) {
		started <- struct{}{}
		<-release
		return []byte("{}\n"), nil
	}

	// Three requests with distinct fingerprints so none is served from cache.
	distinct := make([][]byte, 3)
	for i := range distinct {
		req := testRequest(t)
		req.Seed = int64(i + 1)
		distinct[i] = marshalRequest(t, req)
	}

	type outcome struct {
		status int
	}
	results := make(chan outcome, 2)
	// Request 1 occupies the worker.
	go func() {
		resp, _ := postSchedule(t, ts.URL, distinct[0])
		results <- outcome{resp.StatusCode}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up request 1")
	}
	// Request 2 occupies the queue slot.
	go func() {
		resp, _ := postSchedule(t, ts.URL, distinct[1])
		results <- outcome{resp.StatusCode}
	}()
	waitFor(t, func() bool { return srv.pool.QueueDepth() == 1 })

	// Request 3 must be rejected immediately.
	resp, data := postSchedule(t, ts.URL, distinct[2])
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.status != http.StatusOK {
				t.Fatalf("admitted request finished with %d", r.status)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted requests never finished")
		}
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// The queue has drained, so the instantaneous depth is 0 again — but
	// the high-water mark must still show the full backlog this run hit.
	// Without it a post-run /stats reads as if the server never queued,
	// which is exactly the misleading capacity signal the mark fixes.
	if st.QueueDepth != 0 {
		t.Fatalf("queue_depth = %d after drain, want 0", st.QueueDepth)
	}
	if st.QueueHighWater != 1 {
		t.Fatalf("queue_high_water = %d, want 1 (queue capacity was 1 and it filled)", st.QueueHighWater)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestScheduleInternalError(t *testing.T) {
	srv, ts := startServer(t, Config{})
	srv.schedule = func(req *ScheduleRequest) ([]byte, error) {
		return nil, errors.New("boom")
	}
	resp, data := postSchedule(t, ts.URL, marshalRequest(t, testRequest(t)))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
		t.Fatalf("unhelpful 500 body: %s", data)
	}
	// A failed run must not poison the cache.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.CacheEntries != 0 || st.CacheMisses != 0 {
		t.Fatalf("failed request left cache state: %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := startServer(t, Config{})
	var out map[string]string
	getJSON(t, ts.URL+"/healthz", &out)
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v", out)
	}
}

// The bottom-level memo must be populated by the first core-scheduler miss
// and shared by subsequent misses on the same instance.
func TestBottomLevelMemo(t *testing.T) {
	srv, ts := startServer(t, Config{})
	reqA := testRequest(t) // ftsa eps=1
	reqB := testRequest(t)
	reqB.Epsilon = 2 // distinct response fingerprint, same instance
	postSchedule(t, ts.URL, marshalRequest(t, reqA))
	if srv.blCache.Len() != 1 {
		t.Fatalf("bottom-level memo has %d entries after one miss, want 1", srv.blCache.Len())
	}
	postSchedule(t, ts.URL, marshalRequest(t, reqB))
	if srv.blCache.Len() != 1 {
		t.Fatalf("bottom-level memo has %d entries after same-instance miss, want 1", srv.blCache.Len())
	}
}
